#pragma once
/// \file timer.hpp
/// \brief Compatibility alias: `Timer` moved to `src/obs/timer.hpp` when
/// the observability layer unified the timing primitives. Include
/// `obs/timer.hpp` (or `obs/trace.hpp` for spans) in new code.

#include "obs/timer.hpp"
