#pragma once
/// \file timer.hpp
/// \brief Wall-clock timer used by the benchmark harness and solver stats.

#include <chrono>

namespace parmis {

/// Monotonic wall-clock stopwatch. `seconds()` returns elapsed time since
/// construction or the last `reset()`.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace parmis
