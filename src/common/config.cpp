#include "common/config.hpp"

// Intentionally empty: config.hpp is constants/aliases only. This
// translation unit exists so the module shows up in the library target.
