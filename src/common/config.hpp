#pragma once
/// \file config.hpp
/// \brief Library-wide index and value type configuration.
///
/// The paper's implementation (Kokkos Kernels) templates on ordinal/offset/
/// scalar types; this reproduction fixes one concrete, widely used
/// configuration to keep the library a plain (non-header-only) build:
/// 32-bit vertex ids, 64-bit row offsets, double-precision values.

#include <cstdint>
#include <limits>

namespace parmis {

/// Vertex/column index type. 32-bit, as in the paper (|V| < 2^31).
using ordinal_t = std::int32_t;

/// Row-offset type. 64-bit so graphs with > 2^31 entries are representable.
using offset_t = std::int64_t;

/// Matrix value type.
using scalar_t = double;

/// Sentinel for "no vertex" / "unassigned".
inline constexpr ordinal_t invalid_ordinal = -1;

/// Largest representable ordinal.
inline constexpr ordinal_t max_ordinal = std::numeric_limits<ordinal_t>::max();

}  // namespace parmis
