#pragma once
/// \file status.hpp
/// \brief The solver failure taxonomy: `SolveStatus`, the structured
/// `FailureInfo` diagnostic, and the `SolveError` exception that carries
/// both through setup paths.
///
/// Before this layer a failed solve had exactly one bit of signal
/// (`IterResult::converged == false`) and a failed *setup* threw a raw
/// `std::runtime_error` out of the hot path. Production serving needs the
/// same contract-hardening the `parmis::check` layer applied to structure,
/// applied to numerics and control flow: every failure is *classified*
/// (one enum the whole stack shares), *located* (stage, iteration,
/// offending index), and *named* (a stable dotted reason id tests and
/// dashboards can match on, mirroring the `check::Result` invariant ids).
///
/// The taxonomy is deliberately closed and small — one value per
/// *recovery-relevant* failure class, because `FallbackPolicy`
/// (policy.hpp) makes decisions on it and decision tables over open sets
/// do not stay deterministic:
///
///   Converged         reached tolerance
///   MaxIterations     ran out of iterations, residual finite
///   Breakdown         a Krylov recurrence denominator hit zero/non-finite
///   Diverged          residual grew past the divergence factor
///   Stagnated         no relative progress over the stagnation window
///   Timeout           wall-clock deadline hit; best iterate returned
///   SetupFailed       preconditioner/workspace setup threw
///   SingularOperator  zero diagonal or singular pivot during setup
///   NonFiniteInput    b or x0 contained NaN/Inf on entry

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace parmis::resilience {

/// Outcome classification of one solve attempt (or of a whole fallback
/// chain: the chain reports its final attempt's status).
enum class SolveStatus : std::uint8_t {
  Converged = 0,
  MaxIterations,
  Breakdown,
  Diverged,
  Stagnated,
  Timeout,
  SetupFailed,
  SingularOperator,
  NonFiniteInput,
};

/// Stable display name ("converged", "max_iterations", ...): the spelling
/// used in `--json` output, CI assertions, and error messages.
[[nodiscard]] const char* to_string(SolveStatus s);

/// Every taxonomy value, declaration order (drivers and the CI fault sweep
/// iterate this to assert coverage).
[[nodiscard]] const std::vector<SolveStatus>& all_statuses();

/// Inverse of `to_string` ("breakdown" → Breakdown): what the
/// `FallbackPolicy` `on:` clause and driver flags parse with. Empty
/// optional on an unknown spelling.
[[nodiscard]] std::optional<SolveStatus> status_from_string(const std::string& name);

/// Anything but Converged counts as a failure for fallback purposes.
[[nodiscard]] constexpr bool is_failure(SolveStatus s) {
  return s != SolveStatus::Converged;
}

/// Structured diagnostic attached to a failed attempt. All strings are
/// pointers to string literals so recording a failure never allocates —
/// the warm-solve zero-allocation contract covers failing solves too.
struct FailureInfo {
  const char* stage = "";   ///< "input" | "setup" | "iterate"
  const char* reason = "";  ///< stable dotted id, e.g. "solver.cg.breakdown.pap"
  int iteration = -1;       ///< iteration the failure was detected at (-1: n/a)
  std::int64_t index = -1;  ///< offending row/column/entry (-1: n/a)

  void clear() { *this = FailureInfo{}; }
};

/// Thrown by setup-stage code (diagonal inversion, dense LU, AMG build)
/// instead of a raw `std::runtime_error`: carries the taxonomy status and
/// the located diagnostic so `SolveHandle` can turn the throw into a
/// classified attempt outcome. Derives from `std::runtime_error`, so
/// pre-taxonomy catch sites keep working unchanged.
class SolveError : public std::runtime_error {
 public:
  SolveError(SolveStatus status, const FailureInfo& info, const std::string& what)
      : std::runtime_error(what), status_(status), info_(info) {}

  [[nodiscard]] SolveStatus status() const { return status_; }
  [[nodiscard]] const FailureInfo& info() const { return info_; }

 private:
  SolveStatus status_;
  FailureInfo info_;
};

}  // namespace parmis::resilience
