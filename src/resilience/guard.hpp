#pragma once
/// \file guard.hpp
/// \brief `IterGuard` — the cheap in-loop failure detector shared by the
/// iterative solvers (CG, GMRES, Chebyshev).
///
/// Each outer solver calls `check(relres, iteration, info)` once per
/// iteration, right after it computes the relative residual it already
/// had to compute. The guard classifies, in priority order:
///
///   non-finite residual            → Breakdown  (solve.residual.nonfinite)
///   growth past divergence_factor  → Diverged   (solve.residual.diverged)
///   no progress over the window    → Stagnated  (solve.residual.stagnated)
///   wall-clock deadline exceeded   → Timeout    (solve.deadline)
///
/// Everything but the deadline depends only on the (deterministic)
/// residual sequence, so detection is bit-identical across backends,
/// thread counts, and schedules. The deadline is the one documented
/// wall-clock decision in the stack; solves that need determinism leave
/// `timeout_ms` at 0.
///
/// Cost per iteration: a few compares and — only when a deadline is set —
/// one steady_clock read. Nothing here touches vectors.

#include <cmath>
#include <limits>

#include "obs/timer.hpp"
#include "resilience/status.hpp"

namespace parmis::resilience {

class IterGuard {
 public:
  /// Knobs, mirrored from `solver::IterOptions` (kept as a plain struct so
  /// this header stays below the solver layer).
  struct Config {
    double timeout_ms = 0;          ///< wall-clock budget; 0 = unbounded
    double divergence_factor = 1e8; ///< relres above factor×max(1, r0) → Diverged; 0 = off
    int stagnation_window = 0;      ///< iterations without progress → Stagnated; 0 = off
    double stagnation_rtol = 1e-3;  ///< required relative improvement to count as progress
  };

  explicit IterGuard(const Config& cfg) : cfg_(cfg) {}

  /// Inspect the residual after `iteration` completed iterations (0 = the
  /// initial residual). Returns Converged when the solve should continue;
  /// any other value is the failure to stop with, and `info` is filled.
  [[nodiscard]] SolveStatus check(double relres, int iteration, FailureInfo& info) {
    if (!std::isfinite(relres)) {
      info = FailureInfo{"iterate", "solve.residual.nonfinite", iteration, -1};
      return SolveStatus::Breakdown;
    }
    // Divergence is judged against the worse of the initial residual and 1
    // (x0 = 0 gives r0/||b|| = 1), so a bad initial guess is not itself
    // "divergence" but any later blowup is.
    if (initial_ < 0) initial_ = relres < 1.0 ? 1.0 : relres;
    if (cfg_.divergence_factor > 0 && relres > cfg_.divergence_factor * initial_) {
      info = FailureInfo{"iterate", "solve.residual.diverged", iteration, -1};
      return SolveStatus::Diverged;
    }
    if (relres < best_ * (1.0 - cfg_.stagnation_rtol)) {
      best_ = relres;
      best_iteration_ = iteration;
    } else if (cfg_.stagnation_window > 0 &&
               iteration - best_iteration_ >= cfg_.stagnation_window) {
      info = FailureInfo{"iterate", "solve.residual.stagnated", iteration, -1};
      return SolveStatus::Stagnated;
    }
    if (cfg_.timeout_ms > 0 && timer_.milliseconds() >= cfg_.timeout_ms) {
      info = FailureInfo{"iterate", "solve.deadline", iteration, -1};
      return SolveStatus::Timeout;
    }
    return SolveStatus::Converged;
  }

 private:
  Config cfg_;
  obs::Timer timer_;
  double initial_ = -1;
  double best_ = std::numeric_limits<double>::infinity();
  int best_iteration_ = 0;
};

}  // namespace parmis::resilience
