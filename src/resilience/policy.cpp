#include "resilience/policy.hpp"

#include <stdexcept>

namespace parmis::resilience {

FallbackPolicy FallbackPolicy::parse(const std::string& spec) {
  FallbackPolicy policy;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace so "amg+cg, jacobi+cg" parses as intended.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) entry.erase(0, 1);
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) entry.pop_back();
    if (entry.empty()) continue;
    const std::size_t plus = entry.find('+');
    if (plus == std::string::npos || plus == 0 || plus + 1 == entry.size() ||
        entry.find('+', plus + 1) != std::string::npos) {
      throw std::invalid_argument("malformed fallback entry '" + entry +
                                  "' (want PREC+SOLVER, e.g. amg+cg)");
    }
    policy.chain.push_back(Attempt{entry.substr(0, plus), entry.substr(plus + 1)});
  }
  return policy;
}

std::string FallbackPolicy::to_string() const {
  std::string out;
  for (const Attempt& a : chain) {
    if (!out.empty()) out += ',';
    out += a.prec + '+' + a.solver;
  }
  return out;
}

}  // namespace parmis::resilience
