#include "resilience/policy.hpp"

#include <stdexcept>

namespace parmis::resilience {

FallbackPolicy FallbackPolicy::parse(const std::string& spec) {
  FallbackPolicy policy;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace so "amg+cg, jacobi+cg" parses as intended.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) entry.erase(0, 1);
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) entry.pop_back();
    if (entry.empty()) continue;
    // Split off the optional status-conditional clause: "amg+cg on:breakdown".
    Attempt attempt;
    const std::size_t on = entry.find(" on:");
    if (on != std::string::npos) {
      std::string statuses = entry.substr(on + 4);
      entry.erase(on);
      while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) entry.pop_back();
      std::size_t sstart = 0;
      while (sstart <= statuses.size()) {
        std::size_t send = statuses.find('|', sstart);
        if (send == std::string::npos) send = statuses.size();
        const std::string name = statuses.substr(sstart, send - sstart);
        sstart = send + 1;
        const std::optional<SolveStatus> s = status_from_string(name);
        if (!s) {
          throw std::invalid_argument("unknown status '" + name +
                                      "' in fallback on: clause (want e.g. breakdown)");
        }
        attempt.retry_on.push_back(*s);
      }
      if (attempt.retry_on.empty()) {
        throw std::invalid_argument("empty on: clause in fallback entry '" + entry + "'");
      }
    }
    const std::size_t plus = entry.find('+');
    if (plus == std::string::npos || plus == 0 || plus + 1 == entry.size() ||
        entry.find('+', plus + 1) != std::string::npos) {
      throw std::invalid_argument("malformed fallback entry '" + entry +
                                  "' (want PREC+SOLVER, e.g. amg+cg)");
    }
    attempt.prec = entry.substr(0, plus);
    attempt.solver = entry.substr(plus + 1);
    policy.chain.push_back(std::move(attempt));
  }
  return policy;
}

std::string FallbackPolicy::to_string() const {
  std::string out;
  for (const Attempt& a : chain) {
    if (!out.empty()) out += ',';
    out += a.prec + '+' + a.solver;
    for (std::size_t i = 0; i < a.retry_on.size(); ++i) {
      out += i == 0 ? " on:" : "|";
      out += resilience::to_string(a.retry_on[i]);
    }
  }
  return out;
}

}  // namespace parmis::resilience
