#include "resilience/status.hpp"

namespace parmis::resilience {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::MaxIterations: return "max_iterations";
    case SolveStatus::Breakdown: return "breakdown";
    case SolveStatus::Diverged: return "diverged";
    case SolveStatus::Stagnated: return "stagnated";
    case SolveStatus::Timeout: return "timeout";
    case SolveStatus::SetupFailed: return "setup_failed";
    case SolveStatus::SingularOperator: return "singular_operator";
    case SolveStatus::NonFiniteInput: return "non_finite_input";
  }
  return "?";
}

const std::vector<SolveStatus>& all_statuses() {
  static const std::vector<SolveStatus> statuses = {
      SolveStatus::Converged,       SolveStatus::MaxIterations, SolveStatus::Breakdown,
      SolveStatus::Diverged,        SolveStatus::Stagnated,     SolveStatus::Timeout,
      SolveStatus::SetupFailed,     SolveStatus::SingularOperator,
      SolveStatus::NonFiniteInput,
  };
  return statuses;
}

std::optional<SolveStatus> status_from_string(const std::string& name) {
  for (SolveStatus s : all_statuses()) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

}  // namespace parmis::resilience
