#pragma once
/// \file policy.hpp
/// \brief `FallbackPolicy` — a declarative, ordered (preconditioner,
/// solver) fallback chain with a retry budget.
///
/// Recovery is configuration, not code: instead of a service hand-writing
/// try/catch ladders around `SolveHandle::solve`, it declares a chain
///
///   FallbackPolicy::parse("amg+cg,jacobi+cg,none+gmres")
///
/// and the handle walks it — attempt 1 is `amg`-preconditioned CG; if that
/// attempt *fails* (any `SolveStatus` but Converged: breakdown, setup
/// throw, stagnation, ...) the next entry retries the same right-hand side
/// from the *original* initial guess (the handle snapshots x0, so a
/// poisoned iterate never leaks into the retry), reusing the handle's
/// scratch. Decisions
/// depend only on the attempt's `SolveStatus`, which is deterministic, so
/// the same chain produces the same attempt sequence — and bit-identical
/// final x — on every backend, thread count, and schedule. (The one
/// documented exception: a wall-clock `timeout_ms` budget can cut the
/// chain at a machine-dependent point.)
///
/// The spec grammar is `PREC+SOLVER[,PREC+SOLVER...]` using registry names
/// (`interface.hpp`); name validation happens in
/// `SolveHandle::set_fallback`, which sees the registries — parse itself
/// only checks shape, so this header stays below the solver layer.

#include <string>
#include <vector>

namespace parmis::resilience {

/// Ordered fallback chain. Empty chain = no fallback (a solve is exactly
/// one attempt with the handle's configured stack — the pre-policy
/// behavior).
struct FallbackPolicy {
  struct Attempt {
    std::string prec;    ///< preconditioner registry name ("none", "jacobi", "amg", ...)
    std::string solver;  ///< solver registry name ("cg", "gmres", "chebyshev")
  };

  std::vector<Attempt> chain;

  /// Retry budget: at most this many attempts run even if the chain is
  /// longer. 0 (default) = the whole chain.
  int max_attempts = 0;

  [[nodiscard]] bool empty() const { return chain.empty(); }

  /// Attempts that may actually run: min(chain length, budget).
  [[nodiscard]] std::size_t budget() const {
    const std::size_t n = chain.size();
    return max_attempts > 0 && static_cast<std::size_t>(max_attempts) < n
               ? static_cast<std::size_t>(max_attempts)
               : n;
  }

  /// Parse `"PREC+SOLVER,PREC+SOLVER,..."` (e.g.
  /// `"amg+cg,jacobi+cg,none+gmres"`). Throws std::invalid_argument on a
  /// malformed entry. Registry names are NOT validated here.
  [[nodiscard]] static FallbackPolicy parse(const std::string& spec);

  /// Round-trip back to the spec string ("" for an empty chain).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace parmis::resilience
