#pragma once
/// \file policy.hpp
/// \brief `FallbackPolicy` — a declarative, ordered (preconditioner,
/// solver) fallback chain with a retry budget.
///
/// Recovery is configuration, not code: instead of a service hand-writing
/// try/catch ladders around `SolveHandle::solve`, it declares a chain
///
///   FallbackPolicy::parse("amg+cg,jacobi+cg,none+gmres")
///
/// and the handle walks it — attempt 1 is `amg`-preconditioned CG; if that
/// attempt *fails* (any `SolveStatus` but Converged: breakdown, setup
/// throw, stagnation, ...) the next entry retries the same right-hand side
/// from the *original* initial guess (the handle snapshots x0, so a
/// poisoned iterate never leaks into the retry), reusing the handle's
/// scratch. Decisions
/// depend only on the attempt's `SolveStatus`, which is deterministic, so
/// the same chain produces the same attempt sequence — and bit-identical
/// final x — on every backend, thread count, and schedule. (The one
/// documented exception: a wall-clock `timeout_ms` budget can cut the
/// chain at a machine-dependent point.)
///
/// The spec grammar is `PREC+SOLVER[ on:STATUS[|STATUS...]][,...]` using
/// registry names (`interface.hpp`) and taxonomy status names
/// (status.hpp). The optional `on:` clause makes an entry's fallback
/// *status-conditional*: the chain proceeds past that entry only when its
/// failure status is in the listed set, e.g.
///
///   "amg+cg on:breakdown|setup_failed,jacobi+cg"
///
/// retries with Jacobi-CG only when the AMG attempt broke down or its
/// setup failed — a stagnating AMG attempt (which Jacobi would stagnate
/// on too, slower) stops the chain there. No clause = any failure
/// proceeds (the historical behavior). Name validation happens in
/// `SolveHandle::set_fallback`, which sees the registries — parse itself
/// only checks shape (status names *are* validated here, the taxonomy is
/// closed), so this header stays below the solver layer.

#include <string>
#include <vector>

#include "resilience/status.hpp"

namespace parmis::resilience {

/// Ordered fallback chain. Empty chain = no fallback (a solve is exactly
/// one attempt with the handle's configured stack — the pre-policy
/// behavior).
struct FallbackPolicy {
  struct Attempt {
    std::string prec;    ///< preconditioner registry name ("none", "jacobi", "amg", ...)
    std::string solver;  ///< solver registry name ("cg", "gmres", "chebyshev")
    /// Statuses this entry falls through on. Empty = every failure (the
    /// unconditional historical behavior).
    std::vector<SolveStatus> retry_on;

    /// May the chain proceed past this entry when it failed with `s`?
    [[nodiscard]] bool allows_retry(SolveStatus s) const {
      if (retry_on.empty()) return true;
      for (SolveStatus r : retry_on) {
        if (r == s) return true;
      }
      return false;
    }
  };

  std::vector<Attempt> chain;

  /// Retry budget: at most this many attempts run even if the chain is
  /// longer. 0 (default) = the whole chain.
  int max_attempts = 0;

  [[nodiscard]] bool empty() const { return chain.empty(); }

  /// Attempts that may actually run: min(chain length, budget).
  [[nodiscard]] std::size_t budget() const {
    const std::size_t n = chain.size();
    return max_attempts > 0 && static_cast<std::size_t>(max_attempts) < n
               ? static_cast<std::size_t>(max_attempts)
               : n;
  }

  /// Parse `"PREC+SOLVER[ on:STATUS|STATUS...],..."` (e.g.
  /// `"amg+cg on:breakdown,jacobi+cg,none+gmres"`). Throws
  /// std::invalid_argument on a malformed entry or an unknown status name.
  /// Registry names are NOT validated here.
  [[nodiscard]] static FallbackPolicy parse(const std::string& spec);

  /// Round-trip back to the spec string ("" for an empty chain).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace parmis::resilience
