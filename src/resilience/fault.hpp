#pragma once
/// \file fault.hpp
/// \brief `PARMIS_FAULT_POINT` — the seeded, deterministic fault-injection
/// registry behind every detection and recovery path in the solver stack.
///
/// A resilience layer that is never exercised is trusted on faith: the
/// breakdown guards, setup reroutes, and fallback chains in this PR all
/// need *failures on demand* to be testable. A fault point is a named site
/// in the code that normally does nothing; when the registry arms the name,
/// the site "fires" on a chosen hit and the surrounding code injects the
/// failure it guards against (a zero pᵀAp, a NaN residual, a singular
/// pivot, a setup throw, an allocation failure).
///
///   scalar_t pap = dot(p, ap);
///   if (PARMIS_FAULT_POINT("cg.pap")) pap = 0;   // injected breakdown
///   if (pap == 0 || !std::isfinite(pap)) { ...   // the real guard fires
///
/// Contract (same shape as `PARMIS_CHECK`):
///  - Compiled **out** unless `PARMIS_CHECK_INVARIANTS` is defined: in a
///    release build the macro is the constant `false` with an unevaluated
///    operand, so the injection branch is dead code with zero cost
///    (timing-pinned by tests/test_resilience.cpp).
///  - Deterministic: a site fires on exactly the Nth hit of its name
///    (`arm_fault(name, N)`), counted in program order at serial points —
///    never inside parallel regions — so the same arming produces the same
///    failure on every backend, thread count, and schedule.
///  - One-shot: after firing, the point is spent. A fallback chain's retry
///    therefore sees the *recovered* world, which is exactly the scenario
///    the chain exists for.
///
/// Arming comes from tests (`arm_fault`), from driver flags
/// (`--fault=name[@N]` via `arm_faults_spec`), or from the environment
/// (`PARMIS_FAULTS="cg.pap@3,amg.setup_throw"` via `arm_faults_from_env`) —
/// the hook the CI fault sweep uses.

#include <cstdint>
#include <string>
#include <vector>

namespace parmis::resilience {

/// True when any point is armed. Always callable — in a release build
/// arming is still recorded (so drivers can parse `--fault` uniformly),
/// but no compiled-out site ever consults the registry or fires.
[[nodiscard]] bool faults_armed();

/// Arm `name` to fire on its `fire_at`-th hit (1-based), once.
void arm_fault(const std::string& name, std::uint64_t fire_at = 1);

/// Arm a comma-separated spec `name[@N],name2[@M]`; entries without an
/// explicit `@N` fire on hit `default_fire_at` (the "fault seed" the CI
/// sweep varies). Returns the number of points armed; throws
/// std::invalid_argument on a malformed entry.
int arm_faults_spec(const std::string& spec, std::uint64_t default_fire_at = 1);

/// Arm from the `PARMIS_FAULTS` environment variable (same spec syntax);
/// returns the number of points armed (0 when unset/empty).
int arm_faults_from_env();

/// Disarm everything and reset all hit counters (test isolation).
void disarm_faults();

/// Cumulative hit count of `name` (counted only in check builds).
[[nodiscard]] std::uint64_t fault_hits(const std::string& name);

/// Called by the macro; not part of the public API surface.
[[nodiscard]] bool fault_fires(const char* name);

/// The canonical fault-point sites compiled into the library and drivers
/// (documentation + the CI sweep's source of truth). Kept by hand next to
/// the sites; tests assert the list is non-empty and duplicate-free.
[[nodiscard]] const std::vector<const char*>& known_fault_points();

}  // namespace parmis::resilience

#ifdef PARMIS_CHECK_INVARIANTS

#define PARMIS_FAULT_ENABLED 1
#define PARMIS_FAULT_POINT(name) (::parmis::resilience::fault_fires(name))

#else  // !PARMIS_CHECK_INVARIANTS

#define PARMIS_FAULT_ENABLED 0
// sizeof keeps the name syntax-checked but unevaluated; the comparison is
// constant false, so the whole injection branch folds away in release.
#define PARMIS_FAULT_POINT(name) (sizeof(name) == 0)

#endif  // PARMIS_CHECK_INVARIANTS
