#include "resilience/fault.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace parmis::resilience {

namespace {

/// One registered point. Points are few (tens) and hit at serial sites, so
/// a flat vector under a mutex is simpler and fast enough; the mutex only
/// exists at all because drivers may arm from one thread while a handle
/// solves on another.
struct Point {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t fire_at = 0;  ///< 0 = not armed
};

struct Registry {
  std::mutex mu;
  std::vector<Point> points;

  /// Lookup by C string without constructing a temporary std::string:
  /// `fault_fires` runs once per solver iteration in check builds, and an
  /// allocating lookup would trip the warm-solve AllocGuard contract.
  Point& find(const char* name) {
    for (Point& p : points) {
      if (p.name == name) return p;
    }
    points.push_back(Point{std::string(name), 0, 0});
    return points.back();
  }
  Point& find(const std::string& name) { return find(name.c_str()); }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

bool faults_armed() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const Point& p : r.points) {
    if (p.fire_at != 0) return true;
  }
  return false;
}

void arm_fault(const std::string& name, std::uint64_t fire_at) {
  if (fire_at == 0) throw std::invalid_argument("arm_fault: fire_at must be >= 1");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  Point& p = r.find(name);
  p.fire_at = fire_at;
  p.hits = 0;
}

int arm_faults_spec(const std::string& spec, std::uint64_t default_fire_at) {
  int armed = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    std::uint64_t fire_at = default_fire_at;
    std::string name = entry;
    if (const std::size_t at = entry.find('@'); at != std::string::npos) {
      name = entry.substr(0, at);
      const std::string n = entry.substr(at + 1);
      char* rest = nullptr;
      fire_at = std::strtoull(n.c_str(), &rest, 10);
      if (n.empty() || (rest != nullptr && *rest != '\0') || fire_at == 0) {
        throw std::invalid_argument("malformed fault spec entry '" + entry +
                                    "' (want name[@N], N >= 1)");
      }
    }
    if (name.empty()) {
      throw std::invalid_argument("malformed fault spec entry '" + entry + "'");
    }
    arm_fault(name, fire_at);
    ++armed;
  }
  return armed;
}

int arm_faults_from_env() {
  const char* env = std::getenv("PARMIS_FAULTS");
  if (env == nullptr || *env == '\0') return 0;
  return arm_faults_spec(env);
}

void disarm_faults() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
}

std::uint64_t fault_hits(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.find(name).hits;
}

bool fault_fires(const char* name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  Point& p = r.find(name);
  ++p.hits;
  const bool fires = p.fire_at != 0 && p.hits == p.fire_at;
  if (fires) p.fire_at = 0;  // one-shot: the retry sees the recovered world
  return fires;
}

const std::vector<const char*>& known_fault_points() {
  static const std::vector<const char*> points = {
      "cg.pap",               // force pᵀAp = 0 → Breakdown (cg.cpp)
      "cg.diverge",           // scale r by 1e30 → Diverged (cg.cpp)
      "cg.poison",            // NaN into r → Breakdown via non-finite (cg.cpp)
      "gmres.poison",         // NaN into the Arnoldi vector → Breakdown (gmres.cpp)
      "chebyshev.poison",     // NaN into the residual → Breakdown (chebyshev.cpp)
      "jacobi.zero_diag",     // treat row 0's diagonal as zero → SingularOperator
      "lu.zero_pivot",        // force a zero pivot → SingularOperator (dense_lu.cpp)
      "amg.setup_throw",      // throw at AMG build entry → SetupFailed (amg.cpp)
      "amg.coarse_singular",  // coarsest LU reported singular → perturb/smoother
      "workspace.alloc",      // std::bad_alloc from the solve workspace pool
      "driver.poison_b",      // NaN into b before the solve (linear_solve)
      "driver.singular_matrix",  // zero out the last row/col of A (linear_solve)
      "multilevel.aggregate_fail",  // throw SetupFailed from Galerkin aggregation (builder.cpp)
      "partition.bisect_fail",      // throw from multilevel bisection (partitioner.cpp)
      "serve.snapshot.corrupt",     // flip a section digest during open() (snapshot.cpp)
  };
  return points;
}

}  // namespace parmis::resilience
