#include "core/serial_mis2.hpp"

#include <cassert>

namespace parmis::core {

Mis2Result serial_mis2(graph::GraphView g) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;

  enum : char { kUndecided = 0, kIn = 1, kOut = 2 };
  std::vector<char> state(static_cast<std::size_t>(n), kUndecided);

  Mis2Result result;
  result.iterations = 1;
  for (ordinal_t v = 0; v < n; ++v) {
    if (state[static_cast<std::size_t>(v)] != kUndecided) continue;
    state[static_cast<std::size_t>(v)] = kIn;
    result.members.push_back(v);
    for (ordinal_t w : g.row(v)) {
      state[static_cast<std::size_t>(w)] = kOut;
      for (ordinal_t u : g.row(w)) {
        if (state[static_cast<std::size_t>(u)] == kUndecided) {
          state[static_cast<std::size_t>(u)] = kOut;
        }
      }
    }
  }

  result.in_set.assign(static_cast<std::size_t>(n), 0);
  for (ordinal_t v : result.members) result.in_set[static_cast<std::size_t>(v)] = 1;
  return result;
}

}  // namespace parmis::core
