#pragma once
/// \file serial_mis2.hpp
/// \brief Serial greedy distance-2 MIS (quality/correctness reference).

#include "core/mis2.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// Greedy sequential MIS-2: scan vertices in index order; an undecided
/// vertex joins the set and knocks out its radius-2 neighborhood.
/// The natural-order greedy answer other implementations are compared
/// against in Table IV-style quality checks. `iterations` is reported as 1.
[[nodiscard]] Mis2Result serial_mis2(graph::GraphView g);

}  // namespace parmis::core
