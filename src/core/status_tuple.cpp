#include "core/status_tuple.hpp"

namespace parmis::core {

// Compile-time checks of the packing claims from paper §V-C / Eq. (1).
namespace {

constexpr TupleCodec<std::uint32_t> codec_small(6);

// 6 vertices need b = ceil(log2(8)) = 3 id bits.
static_assert(codec_small.id_bits() == 3);
static_assert(codec_small.priority_bits() == 29);

// Packed undecided values collide with neither IN nor OUT, for the extreme
// priorities and ids.
static_assert(codec_small.pack(0, 0) != TupleCodec<>::in_value);
static_assert(codec_small.pack(0, 0) != TupleCodec<>::out_value);
static_assert(codec_small.pack(~0ull, 5) != TupleCodec<>::in_value);
static_assert(codec_small.pack(~0ull, 5) != TupleCodec<>::out_value);

// Round trip.
static_assert(codec_small.id(codec_small.pack(0x123456789abcdefull, 4)) == 4);

// Integer order == lexicographic order: same priority, ids break ties.
static_assert(codec_small.pack(42, 1) < codec_small.pack(42, 2));

static_assert(WideTuple::in() < WideTuple::undecided(0, 0));
static_assert(WideTuple::undecided(~0ull, max_ordinal - 1) < WideTuple::out());

}  // namespace

}  // namespace parmis::core
