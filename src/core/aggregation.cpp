#include "core/aggregation.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"

namespace parmis::core {

namespace {

/// Phase 1 of both algorithms: roots = MIS-2 members get aggregate ids in
/// member order; each root claims itself and all its neighbors. Conflict-
/// free: distance-2 independence means no vertex neighbors two roots.
void grow_initial_aggregates(graph::GraphView g, const Mis2Result& mis,
                             std::vector<ordinal_t>& labels) {
  const ordinal_t num_roots = mis.set_size();
  par::parallel_for(num_roots, [&](ordinal_t i) {
    const ordinal_t r = mis.members[static_cast<std::size_t>(i)];
    labels[static_cast<std::size_t>(r)] = i;
    for (ordinal_t w : g.row(r)) {
      labels[static_cast<std::size_t>(w)] = i;
    }
  });
}

}  // namespace

Aggregation aggregate_basic(graph::GraphView g, const Mis2Options& opts) {
  return aggregate_from_mis(g, mis2(g, opts));
}

Aggregation aggregate_from_mis(graph::GraphView g, const Mis2Result& mis) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;

  Aggregation agg;
  agg.phase1_iterations = mis.iterations;
  agg.labels.assign(static_cast<std::size_t>(n), invalid_ordinal);
  agg.roots = mis.members;
  agg.num_aggregates = mis.set_size();
  grow_initial_aggregates(g, mis, agg.labels);

  // Leftovers join the aggregate of the lowest-indexed labeled neighbor
  // ("any neighbor" in the paper; lowest-index makes it deterministic).
  // Maximality guarantees such a neighbor exists: every vertex is within
  // two hops of a root, and the middle vertex of that path is labeled.
  std::vector<ordinal_t> snapshot = agg.labels;
  par::parallel_for(n, [&](ordinal_t v) {
    if (snapshot[static_cast<std::size_t>(v)] != invalid_ordinal) return;
    for (ordinal_t w : g.row(v)) {
      const ordinal_t a = snapshot[static_cast<std::size_t>(w)];
      if (a != invalid_ordinal) {
        agg.labels[static_cast<std::size_t>(v)] = a;
        return;
      }
    }
    assert(false && "maximality violated: leftover vertex with no labeled neighbor");
  });
  return agg;
}

Aggregation aggregate_mis2(graph::GraphView g, const Mis2Options& opts) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;

  // --- Phase 1: initial aggregates from MIS-2 roots + neighbors ---------
  const Mis2Result mis1 = mis2(g, opts);

  Aggregation agg;
  agg.phase1_iterations = mis1.iterations;
  agg.labels.assign(static_cast<std::size_t>(n), invalid_ordinal);
  grow_initial_aggregates(g, mis1, agg.labels);

  // --- Phase 2: secondary aggregates on the leftover-induced subgraph ---
  std::vector<char> active(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    active[static_cast<std::size_t>(v)] =
        agg.labels[static_cast<std::size_t>(v)] == invalid_ordinal ? 1 : 0;
  });

  const Mis2Result mis2_result = mis2_masked(g, active, opts);
  agg.phase2_iterations = mis2_result.iterations;

  auto unagg_neighbors = [&](ordinal_t r) {
    ordinal_t count = 0;
    for (ordinal_t w : g.row(r)) {
      if (active[static_cast<std::size_t>(w)]) ++count;
    }
    return count;
  };

  // Keep only secondary roots with at least 2 leftover neighbors; smaller
  // aggregates would increase fill-in during multigrid smoothing (paper
  // §III-B).
  std::vector<ordinal_t> accepted;
  par::compact_into(
      static_cast<ordinal_t>(mis2_result.members.size()),
      [&](ordinal_t i) {
        return unagg_neighbors(mis2_result.members[static_cast<std::size_t>(i)]) >= 2;
      },
      [&](ordinal_t i) { return mis2_result.members[static_cast<std::size_t>(i)]; }, accepted);

  const ordinal_t base = mis1.set_size();
  par::parallel_for(static_cast<ordinal_t>(accepted.size()), [&](ordinal_t i) {
    const ordinal_t r = accepted[static_cast<std::size_t>(i)];
    const ordinal_t id = base + i;
    agg.labels[static_cast<std::size_t>(r)] = id;
    for (ordinal_t w : g.row(r)) {
      if (active[static_cast<std::size_t>(w)]) {
        agg.labels[static_cast<std::size_t>(w)] = id;
      }
    }
  });

  agg.num_aggregates = base + static_cast<ordinal_t>(accepted.size());
  agg.roots = mis1.members;
  agg.roots.insert(agg.roots.end(), accepted.begin(), accepted.end());

  // --- Phase 3: cleanup against immutable tentative labels ---------------
  const std::vector<ordinal_t> tent = agg.labels;

  // Aggregate sizes under the tentative labels (serial histogram: O(n)
  // integer counting, negligible next to the coupling pass).
  std::vector<ordinal_t> agg_size(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < n; ++v) {
    const ordinal_t a = tent[static_cast<std::size_t>(v)];
    if (a != invalid_ordinal) ++agg_size[static_cast<std::size_t>(a)];
  }

  par::parallel_for(n, [&](ordinal_t v) {
    if (tent[static_cast<std::size_t>(v)] != invalid_ordinal) return;
    // Count coupling to each adjacent aggregate by sorting the (few)
    // labeled neighbor ids and scanning runs.
    thread_local std::vector<ordinal_t> nbr_labels;
    nbr_labels.clear();
    for (ordinal_t w : g.row(v)) {
      const ordinal_t a = tent[static_cast<std::size_t>(w)];
      if (a != invalid_ordinal) nbr_labels.push_back(a);
    }
    assert(!nbr_labels.empty() && "maximality violated in cleanup phase");
    std::sort(nbr_labels.begin(), nbr_labels.end());

    ordinal_t best_agg = invalid_ordinal;
    ordinal_t best_coupling = 0;
    ordinal_t best_size = max_ordinal;
    std::size_t i = 0;
    while (i < nbr_labels.size()) {
      const ordinal_t a = nbr_labels[i];
      std::size_t j = i;
      while (j < nbr_labels.size() && nbr_labels[j] == a) ++j;
      const ordinal_t coupling = static_cast<ordinal_t>(j - i);
      const ordinal_t size = agg_size[static_cast<std::size_t>(a)];
      // Max coupling; tie -> min tentative size; tie -> min id (ids are
      // scanned ascending, so strict inequalities keep the first).
      if (coupling > best_coupling ||
          (coupling == best_coupling && size < best_size)) {
        best_agg = a;
        best_coupling = coupling;
        best_size = size;
      }
      i = j;
    }
    agg.labels[static_cast<std::size_t>(v)] = best_agg;
  });

  return agg;
}

AggregationStats aggregation_stats(const Aggregation& agg) {
  AggregationStats s;
  s.num_aggregates = agg.num_aggregates;
  if (agg.num_aggregates == 0) return s;
  std::vector<ordinal_t> size(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t a : agg.labels) {
    if (a != invalid_ordinal) ++size[static_cast<std::size_t>(a)];
  }
  s.min_size = *std::min_element(size.begin(), size.end());
  s.max_size = *std::max_element(size.begin(), size.end());
  s.avg_size = static_cast<double>(agg.labels.size()) / agg.num_aggregates;
  return s;
}

bool verify_aggregation(graph::GraphView g, const Aggregation& agg) {
  const ordinal_t n = g.num_rows;
  if (agg.labels.size() != static_cast<std::size_t>(n)) return false;
  if (agg.roots.size() != static_cast<std::size_t>(agg.num_aggregates)) return false;

  // Totality and label range.
  for (ordinal_t v = 0; v < n; ++v) {
    const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
    if (a < 0 || a >= agg.num_aggregates) return false;
  }
  // Roots own their aggregates.
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    const ordinal_t r = agg.roots[static_cast<std::size_t>(a)];
    if (r < 0 || r >= n) return false;
    if (agg.labels[static_cast<std::size_t>(r)] != a) return false;
  }

  // Connectivity: BFS from each root restricted to its aggregate must
  // reach every member.
  std::vector<ordinal_t> member_count(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < n; ++v) {
    ++member_count[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)])];
  }
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<ordinal_t> queue;
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    const ordinal_t r = agg.roots[static_cast<std::size_t>(a)];
    queue.clear();
    queue.push_back(r);
    visited[static_cast<std::size_t>(r)] = 1;
    ordinal_t reached = 1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      for (ordinal_t w : g.row(queue[qi])) {
        if (!visited[static_cast<std::size_t>(w)] &&
            agg.labels[static_cast<std::size_t>(w)] == a) {
          visited[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
          ++reached;
        }
      }
    }
    if (reached != member_count[static_cast<std::size_t>(a)]) return false;
  }
  return true;
}

}  // namespace parmis::core
