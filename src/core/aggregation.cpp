#include "core/aggregation.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "check/check.hpp"
#include "check/validate.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "random/hash.hpp"

namespace parmis::core {

namespace {

/// Phase 1 of both algorithms: roots = MIS-2 members get aggregate ids in
/// member order; each root claims itself and all its neighbors. Conflict-
/// free: distance-2 independence means no vertex neighbors two roots.
void grow_initial_aggregates(graph::GraphView g, const Mis2Result& mis,
                             std::vector<ordinal_t>& labels) {
  const ordinal_t num_roots = mis.set_size();
  par::parallel_for(num_roots, [&](ordinal_t i) {
    const ordinal_t r = mis.members[static_cast<std::size_t>(i)];
    labels[static_cast<std::size_t>(r)] = i;
    for (ordinal_t w : g.row(r)) {
      labels[static_cast<std::size_t>(w)] = i;
    }
  });
}

/// Algorithm 2 body on an already-computed MIS-2, writing into `agg` and
/// using `snapshot` as the immutable-label scratch.
void build_basic(graph::GraphView g, const Mis2Result& mis, Aggregation& agg,
                 std::vector<ordinal_t>& snapshot) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;

  agg.phase1_iterations = mis.iterations;
  agg.phase2_iterations = 0;
  agg.labels.assign(static_cast<std::size_t>(n), invalid_ordinal);
  agg.roots.assign(mis.members.begin(), mis.members.end());
  agg.num_aggregates = mis.set_size();
  grow_initial_aggregates(g, mis, agg.labels);

  // Leftovers join the aggregate of the lowest-indexed labeled neighbor
  // ("any neighbor" in the paper; lowest-index makes it deterministic).
  // Maximality guarantees such a neighbor exists: every vertex is within
  // two hops of a root, and the middle vertex of that path is labeled.
  snapshot.assign(agg.labels.begin(), agg.labels.end());
  par::parallel_for(n, [&](ordinal_t v) {
    if (snapshot[static_cast<std::size_t>(v)] != invalid_ordinal) return;
    for (ordinal_t w : g.row(v)) {
      const ordinal_t a = snapshot[static_cast<std::size_t>(w)];
      if (a != invalid_ordinal) {
        agg.labels[static_cast<std::size_t>(v)] = a;
        return;
      }
    }
    assert(false && "maximality violated: leftover vertex with no labeled neighbor");
  });
}

}  // namespace

std::size_t CoarsenHandle::scratch_bytes() const {
  return mis2_.scratch_bytes() + active_.capacity() * sizeof(char) +
         (tent_.capacity() + agg_size_.capacity() + accepted_.capacity() + mate_.capacity() +
          order_.capacity()) *
             sizeof(ordinal_t) +
         flags_.capacity() * sizeof(std::int64_t);
}

void CoarsenHandle::record_run(std::size_t bytes_before) {
  ++stats_.runs;
  stats_.iterations += static_cast<std::uint64_t>(agg_.phase1_iterations) +
                       static_cast<std::uint64_t>(agg_.phase2_iterations);
  if (scratch_bytes() > bytes_before) ++stats_.scratch_grows;
}

const Aggregation& CoarsenHandle::aggregate_basic(graph::GraphView g) {
  Context::Scope scope(context());
  const std::size_t bytes_before = scratch_bytes();
  mis2_.run(g);
  build_basic(g, mis2_.result(), agg_, tent_);
  record_run(bytes_before);
  PARMIS_CHECK_OK(check::validate(agg_, g.num_rows));
  return agg_;
}

const Aggregation& CoarsenHandle::aggregate_mis2(graph::GraphView g) {
  Context::Scope scope(context());
  const std::size_t bytes_before = scratch_bytes();
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;
  Aggregation& agg = agg_;

  // --- Phase 1: initial aggregates from MIS-2 roots + neighbors ---------
  const Mis2Result& mis1 = mis2_.run(g);

  agg.phase1_iterations = mis1.iterations;
  agg.labels.assign(static_cast<std::size_t>(n), invalid_ordinal);
  grow_initial_aggregates(g, mis1, agg.labels);
  // The phase-2 masked run below overwrites the handle's MIS-2 result, so
  // copy out what phase 3 needs from mis1 (roots in member order).
  agg.roots.assign(mis1.members.begin(), mis1.members.end());
  const ordinal_t base = mis1.set_size();

  // --- Phase 2: secondary aggregates on the leftover-induced subgraph ---
  active_.resize(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    active_[static_cast<std::size_t>(v)] =
        agg.labels[static_cast<std::size_t>(v)] == invalid_ordinal ? 1 : 0;
  });

  const Mis2Result& mis2_result = mis2_.run_masked(g, active_);
  agg.phase2_iterations = mis2_result.iterations;

  auto unagg_neighbors = [&](ordinal_t r) {
    ordinal_t count = 0;
    for (ordinal_t w : g.row(r)) {
      if (active_[static_cast<std::size_t>(w)]) ++count;
    }
    return count;
  };

  // Keep only secondary roots with at least 2 leftover neighbors; smaller
  // aggregates would increase fill-in during multigrid smoothing (paper
  // §III-B).
  par::compact_into_scratch(
      static_cast<ordinal_t>(mis2_result.members.size()),
      [&](ordinal_t i) {
        return unagg_neighbors(mis2_result.members[static_cast<std::size_t>(i)]) >= 2;
      },
      [&](ordinal_t i) { return mis2_result.members[static_cast<std::size_t>(i)]; }, accepted_,
      flags_);

  par::parallel_for(static_cast<ordinal_t>(accepted_.size()), [&](ordinal_t i) {
    const ordinal_t r = accepted_[static_cast<std::size_t>(i)];
    const ordinal_t id = base + i;
    agg.labels[static_cast<std::size_t>(r)] = id;
    for (ordinal_t w : g.row(r)) {
      if (active_[static_cast<std::size_t>(w)]) {
        agg.labels[static_cast<std::size_t>(w)] = id;
      }
    }
  });

  agg.num_aggregates = base + static_cast<ordinal_t>(accepted_.size());
  agg.roots.insert(agg.roots.end(), accepted_.begin(), accepted_.end());

  // --- Phase 3: cleanup against immutable tentative labels ---------------
  tent_.assign(agg.labels.begin(), agg.labels.end());
  const std::vector<ordinal_t>& tent = tent_;

  // Aggregate sizes under the tentative labels (serial histogram: O(n)
  // integer counting, negligible next to the coupling pass).
  agg_size_.assign(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < n; ++v) {
    const ordinal_t a = tent[static_cast<std::size_t>(v)];
    if (a != invalid_ordinal) ++agg_size_[static_cast<std::size_t>(a)];
  }

  par::parallel_for(n, [&](ordinal_t v) {
    if (tent[static_cast<std::size_t>(v)] != invalid_ordinal) return;
    // Count coupling to each adjacent aggregate by sorting the (few)
    // labeled neighbor ids and scanning runs.
    thread_local std::vector<ordinal_t> nbr_labels;
    nbr_labels.clear();
    for (ordinal_t w : g.row(v)) {
      const ordinal_t a = tent[static_cast<std::size_t>(w)];
      if (a != invalid_ordinal) nbr_labels.push_back(a);
    }
    assert(!nbr_labels.empty() && "maximality violated in cleanup phase");
    std::sort(nbr_labels.begin(), nbr_labels.end());

    ordinal_t best_agg = invalid_ordinal;
    ordinal_t best_coupling = 0;
    ordinal_t best_size = max_ordinal;
    std::size_t i = 0;
    while (i < nbr_labels.size()) {
      const ordinal_t a = nbr_labels[i];
      std::size_t j = i;
      while (j < nbr_labels.size() && nbr_labels[j] == a) ++j;
      const ordinal_t coupling = static_cast<ordinal_t>(j - i);
      const ordinal_t size = agg_size_[static_cast<std::size_t>(a)];
      // Max coupling; tie -> min tentative size; tie -> min id (ids are
      // scanned ascending, so strict inequalities keep the first).
      if (coupling > best_coupling ||
          (coupling == best_coupling && size < best_size)) {
        best_agg = a;
        best_coupling = coupling;
        best_size = size;
      }
      i = j;
    }
    agg.labels[static_cast<std::size_t>(v)] = best_agg;
  });

  record_run(bytes_before);
  PARMIS_CHECK_OK(check::validate(agg, g.num_rows));
  PARMIS_CHECK_MSG(verify_aggregation(g, agg), "mis2 aggregation has a disconnected aggregate");
  return agg;
}

const Aggregation& CoarsenHandle::aggregate_hem(graph::GraphView g,
                                                std::span<const ordinal_t> edge_weight,
                                                std::uint64_t seed) {
  const std::size_t bytes_before = scratch_bytes();
  assert(g.num_rows == g.num_cols);
  assert(edge_weight.empty() ||
         edge_weight.size() == static_cast<std::size_t>(g.num_entries()));
  const ordinal_t n = g.num_rows;
  Aggregation& agg = agg_;
  agg.phase1_iterations = 0;
  agg.phase2_iterations = 0;

  mate_.assign(static_cast<std::size_t>(n), invalid_ordinal);

  // Hashed visit order decorrelates the matching from vertex numbering.
  order_.resize(static_cast<std::size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(), [&](ordinal_t a, ordinal_t b) {
    const std::uint64_t ha = rng::hash_xorshift_star(seed, static_cast<std::uint64_t>(a));
    const std::uint64_t hb = rng::hash_xorshift_star(seed, static_cast<std::uint64_t>(b));
    return ha != hb ? ha < hb : a < b;
  });

  for (ordinal_t v : order_) {
    if (mate_[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
    ordinal_t best = invalid_ordinal;
    ordinal_t best_w = 0;
    for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
      const ordinal_t u = g.entries[static_cast<std::size_t>(j)];
      if (mate_[static_cast<std::size_t>(u)] != invalid_ordinal) continue;
      const ordinal_t w = edge_weight.empty() ? 1 : edge_weight[static_cast<std::size_t>(j)];
      if (w > best_w || (w == best_w && (best == invalid_ordinal || u < best))) {
        best = u;
        best_w = w;
      }
    }
    if (best != invalid_ordinal) {
      mate_[static_cast<std::size_t>(v)] = best;
      mate_[static_cast<std::size_t>(best)] = v;
    }
  }

  // Assign coarse ids: pairs and singletons in vertex order; the root of
  // each aggregate is its lower-numbered member.
  agg.labels.assign(static_cast<std::size_t>(n), invalid_ordinal);
  agg.roots.clear();
  ordinal_t num_coarse = 0;
  for (ordinal_t v = 0; v < n; ++v) {
    if (agg.labels[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
    const ordinal_t id = num_coarse++;
    agg.labels[static_cast<std::size_t>(v)] = id;
    agg.roots.push_back(v);
    const ordinal_t u = mate_[static_cast<std::size_t>(v)];
    if (u != invalid_ordinal) agg.labels[static_cast<std::size_t>(u)] = id;
  }
  agg.num_aggregates = num_coarse;
  record_run(bytes_before);
  PARMIS_CHECK_OK(check::validate(agg, g.num_rows));
  return agg;
}

Aggregation aggregate_basic(graph::GraphView g, const Mis2Options& opts) {
  CoarsenHandle handle(opts);
  handle.aggregate_basic(g);
  return handle.take_aggregation();
}

Aggregation aggregate_from_mis(graph::GraphView g, const Mis2Result& mis) {
  Aggregation agg;
  std::vector<ordinal_t> snapshot;
  build_basic(g, mis, agg, snapshot);
  return agg;
}

Aggregation aggregate_mis2(graph::GraphView g, const Mis2Options& opts) {
  CoarsenHandle handle(opts);
  handle.aggregate_mis2(g);
  return handle.take_aggregation();
}

AggregationStats aggregation_stats(const Aggregation& agg) {
  AggregationStats s;
  s.num_aggregates = agg.num_aggregates;
  if (agg.num_aggregates == 0) return s;
  std::vector<ordinal_t> size(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t a : agg.labels) {
    if (a != invalid_ordinal) ++size[static_cast<std::size_t>(a)];
  }
  s.min_size = *std::min_element(size.begin(), size.end());
  s.max_size = *std::max_element(size.begin(), size.end());
  s.avg_size = static_cast<double>(agg.labels.size()) / agg.num_aggregates;
  return s;
}

bool verify_aggregation(graph::GraphView g, const Aggregation& agg) {
  const ordinal_t n = g.num_rows;
  if (agg.labels.size() != static_cast<std::size_t>(n)) return false;
  if (agg.roots.size() != static_cast<std::size_t>(agg.num_aggregates)) return false;

  // Totality and label range.
  for (ordinal_t v = 0; v < n; ++v) {
    const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
    if (a < 0 || a >= agg.num_aggregates) return false;
  }
  // Roots own their aggregates.
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    const ordinal_t r = agg.roots[static_cast<std::size_t>(a)];
    if (r < 0 || r >= n) return false;
    if (agg.labels[static_cast<std::size_t>(r)] != a) return false;
  }

  // Connectivity: BFS from each root restricted to its aggregate must
  // reach every member.
  std::vector<ordinal_t> member_count(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < n; ++v) {
    ++member_count[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)])];
  }
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<ordinal_t> queue;
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    const ordinal_t r = agg.roots[static_cast<std::size_t>(a)];
    queue.clear();
    queue.push_back(r);
    visited[static_cast<std::size_t>(r)] = 1;
    ordinal_t reached = 1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      for (ordinal_t w : g.row(queue[qi])) {
        if (!visited[static_cast<std::size_t>(w)] &&
            agg.labels[static_cast<std::size_t>(w)] == a) {
          visited[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
          ++reached;
        }
      }
    }
    if (reached != member_count[static_cast<std::size_t>(a)]) return false;
  }
  return true;
}

}  // namespace parmis::core
