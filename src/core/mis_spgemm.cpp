#include "core/mis_spgemm.hpp"

#include "core/luby_mis1.hpp"
#include "graph/ops.hpp"

namespace parmis::core {

Mis2Result mis2_via_squaring(graph::GraphView g, std::uint64_t seed) {
  const graph::CrsGraph g2 = graph::square(g);
  return luby_mis1(g2, seed);
}

}  // namespace parmis::core
