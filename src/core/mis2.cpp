#include "core/mis2.hpp"

#include <cassert>

#include "check/alloc_guard.hpp"
#include "check/check.hpp"
#include "core/verify.hpp"
#include "obs/trace.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "parallel/simd.hpp"
#include "random/hash.hpp"

namespace parmis::core {

std::size_t Mis2Workspace::capacity_bytes() const {
  return row_packed.capacity() * sizeof(status_word_t) +
         col_packed.capacity() * sizeof(status_word_t) +
         row_wide.capacity() * sizeof(WideTuple) + col_wide.capacity() * sizeof(WideTuple) +
         wl1.capacity() * sizeof(ordinal_t) + wl2.capacity() * sizeof(ordinal_t) +
         compacted.capacity() * sizeof(ordinal_t) + flags.capacity() * sizeof(std::int64_t) +
         wl1_cost.capacity() * sizeof(offset_t) + wl2_cost.capacity() * sizeof(offset_t);
}

namespace {

/// Tuple policy for the compressed single-word representation (§V-C).
struct PackedPolicy {
  using tuple_t = status_word_t;
  static constexpr bool is_packed = true;

  TupleCodec<status_word_t> codec;
  PriorityScheme scheme;
  std::uint64_t seed;

  PackedPolicy(ordinal_t n, const Mis2Options& opts, std::uint64_t ctx_seed)
      : codec(n), scheme(opts.priority), seed(opts.seed ^ ctx_seed) {}

  static std::vector<tuple_t>& rows(Mis2Workspace& ws) { return ws.row_packed; }
  static std::vector<tuple_t>& cols(Mis2Workspace& ws) { return ws.col_packed; }

  [[nodiscard]] tuple_t fresh(ordinal_t v, int iter) const {
    const std::uint64_t it =
        scheme == PriorityScheme::Fixed ? seed : (static_cast<std::uint64_t>(iter) ^ seed);
    const std::uint64_t h = scheme == PriorityScheme::Xorshift
                                ? rng::hash_xorshift(it, static_cast<std::uint64_t>(v))
                                : rng::hash_xorshift_star(it, static_cast<std::uint64_t>(v));
    return codec.pack(h, v);
  }

  [[nodiscard]] static tuple_t in() { return TupleCodec<status_word_t>::in_value; }
  [[nodiscard]] static tuple_t out() { return TupleCodec<status_word_t>::out_value; }
  [[nodiscard]] static bool is_in(tuple_t t) { return TupleCodec<status_word_t>::is_in(t); }
  [[nodiscard]] static bool is_out(tuple_t t) { return TupleCodec<status_word_t>::is_out(t); }
  [[nodiscard]] static bool is_undecided(tuple_t t) {
    return TupleCodec<status_word_t>::is_undecided(t);
  }
  [[nodiscard]] static tuple_t tmin(tuple_t a, tuple_t b) { return b < a ? b : a; }
  [[nodiscard]] static bool eq(tuple_t a, tuple_t b) { return a == b; }
};

/// Tuple policy for the uncompressed 3-field representation (the Fig. 2
/// ablation stages before "Packed Status").
struct WidePolicy {
  using tuple_t = WideTuple;
  static constexpr bool is_packed = false;

  PriorityScheme scheme;
  std::uint64_t seed;

  WidePolicy(ordinal_t, const Mis2Options& opts, std::uint64_t ctx_seed)
      : scheme(opts.priority), seed(opts.seed ^ ctx_seed) {}

  static std::vector<tuple_t>& rows(Mis2Workspace& ws) { return ws.row_wide; }
  static std::vector<tuple_t>& cols(Mis2Workspace& ws) { return ws.col_wide; }

  [[nodiscard]] tuple_t fresh(ordinal_t v, int iter) const {
    const std::uint64_t it =
        scheme == PriorityScheme::Fixed ? seed : (static_cast<std::uint64_t>(iter) ^ seed);
    const std::uint64_t h = scheme == PriorityScheme::Xorshift
                                ? rng::hash_xorshift(it, static_cast<std::uint64_t>(v))
                                : rng::hash_xorshift_star(it, static_cast<std::uint64_t>(v));
    return WideTuple::undecided(h, v);
  }

  [[nodiscard]] static tuple_t in() { return WideTuple::in(); }
  [[nodiscard]] static tuple_t out() { return WideTuple::out(); }
  [[nodiscard]] static bool is_in(const tuple_t& t) { return t.status == WideTuple::kIn; }
  [[nodiscard]] static bool is_out(const tuple_t& t) { return t.status == WideTuple::kOut; }
  [[nodiscard]] static bool is_undecided(const tuple_t& t) {
    return t.status == WideTuple::kUndecided;
  }
  [[nodiscard]] static tuple_t tmin(const tuple_t& a, const tuple_t& b) { return b < a ? b : a; }
  [[nodiscard]] static bool eq(const tuple_t& a, const tuple_t& b) { return a == b; }
};

/// Algorithm 1 body, shared by all option combinations. `Masked` selects
/// induced-subgraph semantics; `P` selects the tuple representation. All
/// scratch lives in `ws` (resized, never reallocated when warm); the
/// result is written into `result` in place.
template <typename P, bool Masked>
void mis2_impl(graph::GraphView g, const Mis2Options& opts, const Context& ctx,
               std::span<const char> active, Mis2Workspace& ws, Mis2Result& result) {
  assert(g.num_rows == g.num_cols);
  if constexpr (Masked) {
    assert(active.size() == static_cast<std::size_t>(g.num_rows));
  }
  PARMIS_SPAN("mis2.run");
  const ordinal_t n = g.num_rows;
  const P pol(n, opts, ctx.seed);
  using tuple_t = typename P::tuple_t;

  auto is_active = [&](ordinal_t v) {
    if constexpr (Masked) {
      return active[static_cast<std::size_t>(v)] != 0;
    } else {
      (void)v;
      return true;
    }
  };

  std::vector<tuple_t>& row_t = P::rows(ws);
  std::vector<tuple_t>& col_m = P::cols(ws);
  row_t.resize(static_cast<std::size_t>(n));
  col_m.resize(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    // Inactive vertices are permanently OUT; their col_m is never consulted
    // because masked neighbor loops skip them entirely.
    const bool act = is_active(v);
    row_t[static_cast<std::size_t>(v)] = act ? pol.fresh(v, 0) : pol.out();
    col_m[static_cast<std::size_t>(v)] = act ? pol.in() : pol.out();
  });

  // Whether the SIMD inner loops are eligible: packed tuples, no mask, and
  // the paper's average-degree heuristic (§V-D) — threshold from the
  // executing context.
  const bool use_simd = [&] {
    if constexpr (P::is_packed && !Masked) {
      return opts.simd && g.avg_degree() >= ctx.simd_degree_threshold;
    } else {
      return false;
    }
  }();

  // --- The three phases -------------------------------------------------

  auto refresh_row = [&](ordinal_t v, int iter) {
    row_t[static_cast<std::size_t>(v)] = pol.fresh(v, iter);
  };

  auto refresh_col = [&](ordinal_t v) {
    tuple_t m = row_t[static_cast<std::size_t>(v)];  // closed neighborhood
    if (use_simd) {
      if constexpr (P::is_packed) {
        m = par::simd_min_gather(row_t.data(), g.entries, g.row_map[v], g.row_map[v + 1], m);
      }
    } else {
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        const ordinal_t w = g.entries[j];
        if constexpr (Masked) {
          if (!is_active(w)) continue;
        }
        m = P::tmin(m, row_t[static_cast<std::size_t>(w)]);
      }
    }
    // An IN minimum means an IN vertex within distance 1: translate to OUT
    // so the decide phase pushes it one more hop (Algorithm 1 lines 19-21).
    col_m[static_cast<std::size_t>(v)] = P::is_in(m) ? pol.out() : m;
  };

  auto decide = [&](ordinal_t v) {
    const tuple_t t = row_t[static_cast<std::size_t>(v)];
    const tuple_t own_m = col_m[static_cast<std::size_t>(v)];
    bool any_out = P::is_out(own_m);
    bool all_eq = P::eq(own_m, t);
    if (use_simd) {
      if constexpr (P::is_packed) {
        const offset_t deg = g.row_map[v + 1] - g.row_map[v];
        any_out = any_out || par::simd_count_equal_gather(col_m.data(), g.entries, g.row_map[v],
                                                          g.row_map[v + 1], pol.out()) > 0;
        if (!any_out && all_eq) {
          all_eq = par::simd_count_equal_gather(col_m.data(), g.entries, g.row_map[v],
                                                g.row_map[v + 1], t) == deg;
        }
      }
    } else {
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        const ordinal_t w = g.entries[j];
        if constexpr (Masked) {
          if (!is_active(w)) continue;
        }
        const tuple_t mw = col_m[static_cast<std::size_t>(w)];
        if (P::is_out(mw)) {
          any_out = true;
          break;
        }
        all_eq = all_eq && P::eq(mw, t);
      }
    }
    if (any_out) {
      row_t[static_cast<std::size_t>(v)] = pol.out();
    } else if (all_eq) {
      row_t[static_cast<std::size_t>(v)] = pol.in();
    }
  };

  // --- Main iteration ----------------------------------------------------

  int iter = 0;
  if (opts.use_worklists) {
    // §V-B: worklist1 = undecided rows, worklist2 = live columns.
    std::vector<ordinal_t>& wl1 = ws.wl1;
    std::vector<ordinal_t>& wl2 = ws.wl2;
    std::vector<ordinal_t>& next = ws.compacted;
    par::compact_into_scratch(
        n, [&](ordinal_t v) { return is_active(v); }, [](ordinal_t v) { return v; }, wl1,
        ws.flags);
    wl2.assign(wl1.begin(), wl1.end());

    // §V-B meets edge balancing: the worklist phases walk each listed
    // vertex's neighbor row, so equal-count chunks serialize on hub-heavy
    // lists. Under EdgeBalanced we keep a degree prefix sum per worklist
    // (rebuilt after every compaction — the lists only shrink, so the
    // buffers are sized once per run) and split the phases into
    // equal-degree chunks instead.
    const bool edge_balanced = par::Execution::schedule() == par::Schedule::EdgeBalanced &&
                               par::Execution::is_parallel();
    auto rebuild_cost = [&](const std::vector<ordinal_t>& wl, std::vector<offset_t>& cost) {
      if (!edge_balanced) return;
      const std::int64_t len = static_cast<std::int64_t>(wl.size());
      cost.resize(static_cast<std::size_t>(len) + 1);
      par::parallel_for(len, [&](std::int64_t i) {
        const ordinal_t v = wl[static_cast<std::size_t>(i)];
        cost[static_cast<std::size_t>(i)] = g.row_map[v + 1] - g.row_map[v] + 1;
      });
      cost[static_cast<std::size_t>(len)] = 0;
      par::exclusive_scan_inplace(std::span<offset_t>(cost.data(), static_cast<std::size_t>(len) + 1));
    };
    auto cost_ptr = [&](const std::vector<offset_t>& cost) -> const offset_t* {
      return edge_balanced ? cost.data() : nullptr;
    };
    rebuild_cost(wl1, ws.wl1_cost);
    if (edge_balanced) ws.wl2_cost.assign(ws.wl1_cost.begin(), ws.wl1_cost.end());

    // Persistent compaction buffers: the scan runs every iteration, so the
    // flag/output storage is sized once per run and reused (worklists only
    // shrink).
    ws.flags.resize(wl1.size());
    next.resize(wl1.size());
    auto filter_worklist = [&](std::vector<ordinal_t>& wl, auto&& keep) {
      const std::int64_t len = static_cast<std::int64_t>(wl.size());
      par::parallel_for(len, [&](std::int64_t i) {
        ws.flags[static_cast<std::size_t>(i)] = keep(wl[static_cast<std::size_t>(i)]) ? 1 : 0;
      });
      const std::int64_t total = par::exclusive_scan_inplace(
          std::span<std::int64_t>(ws.flags.data(), static_cast<std::size_t>(len)));
      par::parallel_for(len, [&](std::int64_t i) {
        const std::int64_t pos = ws.flags[static_cast<std::size_t>(i)];
        const std::int64_t pos_next =
            (i + 1 < len) ? ws.flags[static_cast<std::size_t>(i) + 1] : total;
        if (pos_next != pos) next[static_cast<std::size_t>(pos)] = wl[static_cast<std::size_t>(i)];
      });
      wl.resize(static_cast<std::size_t>(total));
      par::parallel_for(total, [&](std::int64_t i) {
        wl[static_cast<std::size_t>(i)] = next[static_cast<std::size_t>(i)];
      });
    };

    while (!wl1.empty() && iter < opts.max_iterations) {
      obs::Span round("mis2.round");
      const ordinal_t n1 = static_cast<ordinal_t>(wl1.size());
      const ordinal_t n2 = static_cast<ordinal_t>(wl2.size());
      round.arg("worklist", n1);
      round.arg("live_cols", n2);
      {
        // refresh_row is O(1) per vertex — count balancing is already exact.
        PARMIS_SPAN("mis2.refresh_row");
        par::parallel_for(n1,
                          [&](ordinal_t i) { refresh_row(wl1[static_cast<std::size_t>(i)], iter); });
      }
      {
        PARMIS_SPAN("mis2.refresh_col");
        par::balanced_for(n2, cost_ptr(ws.wl2_cost),
                          [&](ordinal_t i) { refresh_col(wl2[static_cast<std::size_t>(i)]); });
      }
      {
        PARMIS_SPAN("mis2.decide");
        par::balanced_for(n1, cost_ptr(ws.wl1_cost),
                          [&](ordinal_t i) { decide(wl1[static_cast<std::size_t>(i)]); });
      }

      filter_worklist(wl1, [&](ordinal_t v) {
        return P::is_undecided(row_t[static_cast<std::size_t>(v)]);
      });
      filter_worklist(wl2, [&](ordinal_t v) {
        return !P::is_out(col_m[static_cast<std::size_t>(v)]);
      });
      rebuild_cost(wl1, ws.wl1_cost);
      rebuild_cost(wl2, ws.wl2_cost);
      ++iter;
    }
  } else {
    // Ablation mode: every vertex processed every iteration (Bell et al.'s
    // approach), with per-vertex guards instead of worklists. Full sweeps
    // balance for free: the graph's own row_map is the degree prefix.
    while (iter < opts.max_iterations) {
      obs::Span round("mis2.round");
      {
        PARMIS_SPAN("mis2.sweep.refresh_row");
        par::parallel_for(n, [&](ordinal_t v) {
          if (is_active(v) && P::is_undecided(row_t[static_cast<std::size_t>(v)])) {
            refresh_row(v, iter);
          }
        });
      }
      {
        PARMIS_SPAN("mis2.sweep.refresh_col");
        par::balanced_for(n, g.row_map, [&](ordinal_t v) {
          if (is_active(v) && !P::is_out(col_m[static_cast<std::size_t>(v)])) refresh_col(v);
        });
      }
      {
        PARMIS_SPAN("mis2.sweep.decide");
        par::balanced_for(n, g.row_map, [&](ordinal_t v) {
          if (is_active(v) && P::is_undecided(row_t[static_cast<std::size_t>(v)])) decide(v);
        });
      }
      ++iter;
      const std::int64_t undecided = par::count_if(n, [&](ordinal_t v) {
        return P::is_undecided(row_t[static_cast<std::size_t>(v)]);
      });
      round.arg("undecided", undecided);
      if (undecided == 0) break;
    }
  }

  // --- Extract result ----------------------------------------------------

  result.iterations = iter;
  result.in_set.assign(static_cast<std::size_t>(n), 0);
  par::parallel_for(n, [&](ordinal_t v) {
    result.in_set[static_cast<std::size_t>(v)] = P::is_in(row_t[static_cast<std::size_t>(v)]) ? 1 : 0;
  });
  par::compact_into_scratch(
      n, [&](ordinal_t v) { return result.in_set[static_cast<std::size_t>(v)] != 0; },
      [](ordinal_t v) { return v; }, result.members, ws.flags);
}

template <bool Masked>
void dispatch(graph::GraphView g, const Mis2Options& opts, const Context& ctx,
              std::span<const char> active, Mis2Workspace& ws, Mis2Result& result) {
  if (opts.packed_tuples) {
    mis2_impl<PackedPolicy, Masked>(g, opts, ctx, active, ws, result);
  } else {
    mis2_impl<WidePolicy, Masked>(g, opts, ctx, active, ws, result);
  }
}

}  // namespace

const Mis2Result& Mis2Handle::run(graph::GraphView g) {
  Context::Scope scope(ctx_);
  PARMIS_CHECK_OK(check::validate(g, {.require_loop_free = true, .require_symmetric = true}));
  const std::size_t bytes_before = ws_.capacity_bytes();
  const std::size_t result_capacity =
      result_.in_set.capacity() + result_.members.capacity() * sizeof(ordinal_t);
  check::AllocGuard guard;
  dispatch<false>(g, opts_, ctx_, {}, ws_, result_);
  ++stats_.runs;
  stats_.iterations += static_cast<std::uint64_t>(result_.iterations);
  const bool grew = ws_.capacity_bytes() > bytes_before ||
                    result_.in_set.capacity() + result_.members.capacity() * sizeof(ordinal_t) >
                        result_capacity;
  if (ws_.capacity_bytes() > bytes_before) ++stats_.scratch_grows;
  // Zero-allocation warm-run contract, enforced at the allocator: a run
  // whose scratch and result capacities both sufficed must not have
  // touched the heap at all. (Tracing is exempt: obs event blocks
  // allocate, orthogonally to the kernel path.)
  PARMIS_CHECK_MSG(grew || obs::tracing_enabled() || guard.allocations() == 0,
                   "mis2 warm run allocated");
  PARMIS_CHECK_MSG(verify_mis2(g, result_.in_set), "mis2 result not a valid MIS-2");
  return result_;
}

const Mis2Result& Mis2Handle::run_masked(graph::GraphView g, std::span<const char> active) {
  Context::Scope scope(ctx_);
  PARMIS_CHECK_OK(check::validate(g, {.require_loop_free = true, .require_symmetric = true}));
  PARMIS_CHECK(active.size() == static_cast<std::size_t>(g.num_rows));
  const std::size_t bytes_before = ws_.capacity_bytes();
  dispatch<true>(g, opts_, ctx_, active, ws_, result_);
  ++stats_.runs;
  stats_.iterations += static_cast<std::uint64_t>(result_.iterations);
  if (ws_.capacity_bytes() > bytes_before) ++stats_.scratch_grows;
  PARMIS_CHECK_MSG(verify_mis2_masked(g, result_.in_set, active),
                   "mis2 result not a valid masked MIS-2");
  return result_;
}

Mis2Result mis2(graph::GraphView g, const Mis2Options& opts) {
  Mis2Handle handle(opts);
  handle.run(g);
  return handle.take_result();
}

Mis2Result mis2_masked(graph::GraphView g, std::span<const char> active,
                       const Mis2Options& opts) {
  Mis2Handle handle(opts);
  handle.run_masked(g, active);
  return handle.take_result();
}

}  // namespace parmis::core
