#include "core/mis2.hpp"

#include <cassert>

#include "core/status_tuple.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "parallel/simd.hpp"
#include "random/hash.hpp"

namespace parmis::core {

namespace {

/// Tuple policy for the compressed single-word representation (§V-C).
struct PackedPolicy {
  using tuple_t = status_word_t;
  static constexpr bool is_packed = true;

  TupleCodec<status_word_t> codec;
  PriorityScheme scheme;
  std::uint64_t seed;

  PackedPolicy(ordinal_t n, const Mis2Options& opts)
      : codec(n), scheme(opts.priority), seed(opts.seed) {}

  [[nodiscard]] tuple_t fresh(ordinal_t v, int iter) const {
    const std::uint64_t it =
        scheme == PriorityScheme::Fixed ? seed : (static_cast<std::uint64_t>(iter) ^ seed);
    const std::uint64_t h = scheme == PriorityScheme::Xorshift
                                ? rng::hash_xorshift(it, static_cast<std::uint64_t>(v))
                                : rng::hash_xorshift_star(it, static_cast<std::uint64_t>(v));
    return codec.pack(h, v);
  }

  [[nodiscard]] static tuple_t in() { return TupleCodec<status_word_t>::in_value; }
  [[nodiscard]] static tuple_t out() { return TupleCodec<status_word_t>::out_value; }
  [[nodiscard]] static bool is_in(tuple_t t) { return TupleCodec<status_word_t>::is_in(t); }
  [[nodiscard]] static bool is_out(tuple_t t) { return TupleCodec<status_word_t>::is_out(t); }
  [[nodiscard]] static bool is_undecided(tuple_t t) {
    return TupleCodec<status_word_t>::is_undecided(t);
  }
  [[nodiscard]] static tuple_t tmin(tuple_t a, tuple_t b) { return b < a ? b : a; }
  [[nodiscard]] static bool eq(tuple_t a, tuple_t b) { return a == b; }
};

/// Tuple policy for the uncompressed 3-field representation (the Fig. 2
/// ablation stages before "Packed Status").
struct WidePolicy {
  using tuple_t = WideTuple;
  static constexpr bool is_packed = false;

  PriorityScheme scheme;
  std::uint64_t seed;

  WidePolicy(ordinal_t, const Mis2Options& opts) : scheme(opts.priority), seed(opts.seed) {}

  [[nodiscard]] tuple_t fresh(ordinal_t v, int iter) const {
    const std::uint64_t it =
        scheme == PriorityScheme::Fixed ? seed : (static_cast<std::uint64_t>(iter) ^ seed);
    const std::uint64_t h = scheme == PriorityScheme::Xorshift
                                ? rng::hash_xorshift(it, static_cast<std::uint64_t>(v))
                                : rng::hash_xorshift_star(it, static_cast<std::uint64_t>(v));
    return WideTuple::undecided(h, v);
  }

  [[nodiscard]] static tuple_t in() { return WideTuple::in(); }
  [[nodiscard]] static tuple_t out() { return WideTuple::out(); }
  [[nodiscard]] static bool is_in(const tuple_t& t) { return t.status == WideTuple::kIn; }
  [[nodiscard]] static bool is_out(const tuple_t& t) { return t.status == WideTuple::kOut; }
  [[nodiscard]] static bool is_undecided(const tuple_t& t) {
    return t.status == WideTuple::kUndecided;
  }
  [[nodiscard]] static tuple_t tmin(const tuple_t& a, const tuple_t& b) { return b < a ? b : a; }
  [[nodiscard]] static bool eq(const tuple_t& a, const tuple_t& b) { return a == b; }
};

/// Algorithm 1 body, shared by all option combinations. `Masked` selects
/// induced-subgraph semantics; `P` selects the tuple representation.
template <typename P, bool Masked>
Mis2Result mis2_impl(graph::GraphView g, const Mis2Options& opts,
                     std::span<const char> active) {
  assert(g.num_rows == g.num_cols);
  if constexpr (Masked) {
    assert(active.size() == static_cast<std::size_t>(g.num_rows));
  }
  const ordinal_t n = g.num_rows;
  const P pol(n, opts);
  using tuple_t = typename P::tuple_t;

  auto is_active = [&](ordinal_t v) {
    if constexpr (Masked) {
      return active[static_cast<std::size_t>(v)] != 0;
    } else {
      (void)v;
      return true;
    }
  };

  std::vector<tuple_t> row_t(static_cast<std::size_t>(n));
  std::vector<tuple_t> col_m(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    // Inactive vertices are permanently OUT; their col_m is never consulted
    // because masked neighbor loops skip them entirely.
    const bool act = is_active(v);
    row_t[static_cast<std::size_t>(v)] = act ? pol.fresh(v, 0) : pol.out();
    col_m[static_cast<std::size_t>(v)] = act ? pol.in() : pol.out();
  });

  // Whether the SIMD inner loops are eligible: packed tuples, no mask, and
  // the paper's average-degree heuristic (§V-D).
  const bool use_simd = [&] {
    if constexpr (P::is_packed && !Masked) {
      return opts.simd && g.avg_degree() >= par::simd_degree_threshold;
    } else {
      return false;
    }
  }();

  // --- The three phases -------------------------------------------------

  auto refresh_row = [&](ordinal_t v, int iter) {
    row_t[static_cast<std::size_t>(v)] = pol.fresh(v, iter);
  };

  auto refresh_col = [&](ordinal_t v) {
    tuple_t m = row_t[static_cast<std::size_t>(v)];  // closed neighborhood
    if (use_simd) {
      if constexpr (P::is_packed) {
        m = par::simd_min_gather(row_t.data(), g.entries, g.row_map[v], g.row_map[v + 1], m);
      }
    } else {
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        const ordinal_t w = g.entries[j];
        if constexpr (Masked) {
          if (!is_active(w)) continue;
        }
        m = P::tmin(m, row_t[static_cast<std::size_t>(w)]);
      }
    }
    // An IN minimum means an IN vertex within distance 1: translate to OUT
    // so the decide phase pushes it one more hop (Algorithm 1 lines 19-21).
    col_m[static_cast<std::size_t>(v)] = P::is_in(m) ? pol.out() : m;
  };

  auto decide = [&](ordinal_t v) {
    const tuple_t t = row_t[static_cast<std::size_t>(v)];
    const tuple_t own_m = col_m[static_cast<std::size_t>(v)];
    bool any_out = P::is_out(own_m);
    bool all_eq = P::eq(own_m, t);
    if (use_simd) {
      if constexpr (P::is_packed) {
        const offset_t deg = g.row_map[v + 1] - g.row_map[v];
        any_out = any_out || par::simd_count_equal_gather(col_m.data(), g.entries, g.row_map[v],
                                                          g.row_map[v + 1], pol.out()) > 0;
        if (!any_out && all_eq) {
          all_eq = par::simd_count_equal_gather(col_m.data(), g.entries, g.row_map[v],
                                                g.row_map[v + 1], t) == deg;
        }
      }
    } else {
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        const ordinal_t w = g.entries[j];
        if constexpr (Masked) {
          if (!is_active(w)) continue;
        }
        const tuple_t mw = col_m[static_cast<std::size_t>(w)];
        if (P::is_out(mw)) {
          any_out = true;
          break;
        }
        all_eq = all_eq && P::eq(mw, t);
      }
    }
    if (any_out) {
      row_t[static_cast<std::size_t>(v)] = pol.out();
    } else if (all_eq) {
      row_t[static_cast<std::size_t>(v)] = pol.in();
    }
  };

  // --- Main iteration ----------------------------------------------------

  int iter = 0;
  if (opts.use_worklists) {
    // §V-B: worklist1 = undecided rows, worklist2 = live columns.
    std::vector<ordinal_t> wl1, wl2, next;
    par::compact_into(
        n, [&](ordinal_t v) { return is_active(v); }, [](ordinal_t v) { return v; }, wl1);
    wl2 = wl1;

    // Persistent compaction buffers: the scan runs every iteration, so the
    // flag/output storage is allocated once and reused (worklists only
    // shrink).
    std::vector<std::int64_t> flags(wl1.size());
    next.resize(wl1.size());
    auto filter_worklist = [&](std::vector<ordinal_t>& wl, auto&& keep) {
      const std::int64_t len = static_cast<std::int64_t>(wl.size());
      par::parallel_for(len, [&](std::int64_t i) {
        flags[static_cast<std::size_t>(i)] = keep(wl[static_cast<std::size_t>(i)]) ? 1 : 0;
      });
      const std::int64_t total = par::exclusive_scan_inplace(
          std::span<std::int64_t>(flags.data(), static_cast<std::size_t>(len)));
      par::parallel_for(len, [&](std::int64_t i) {
        const std::int64_t pos = flags[static_cast<std::size_t>(i)];
        const std::int64_t pos_next = (i + 1 < len) ? flags[static_cast<std::size_t>(i) + 1] : total;
        if (pos_next != pos) next[static_cast<std::size_t>(pos)] = wl[static_cast<std::size_t>(i)];
      });
      wl.resize(static_cast<std::size_t>(total));
      par::parallel_for(total, [&](std::int64_t i) {
        wl[static_cast<std::size_t>(i)] = next[static_cast<std::size_t>(i)];
      });
    };

    while (!wl1.empty() && iter < opts.max_iterations) {
      const ordinal_t n1 = static_cast<ordinal_t>(wl1.size());
      const ordinal_t n2 = static_cast<ordinal_t>(wl2.size());
      par::parallel_for(n1, [&](ordinal_t i) { refresh_row(wl1[static_cast<std::size_t>(i)], iter); });
      par::parallel_for(n2, [&](ordinal_t i) { refresh_col(wl2[static_cast<std::size_t>(i)]); });
      par::parallel_for(n1, [&](ordinal_t i) { decide(wl1[static_cast<std::size_t>(i)]); });

      filter_worklist(wl1, [&](ordinal_t v) {
        return P::is_undecided(row_t[static_cast<std::size_t>(v)]);
      });
      filter_worklist(wl2, [&](ordinal_t v) {
        return !P::is_out(col_m[static_cast<std::size_t>(v)]);
      });
      ++iter;
    }
  } else {
    // Ablation mode: every vertex processed every iteration (Bell et al.'s
    // approach), with per-vertex guards instead of worklists.
    while (iter < opts.max_iterations) {
      par::parallel_for(n, [&](ordinal_t v) {
        if (is_active(v) && P::is_undecided(row_t[static_cast<std::size_t>(v)])) {
          refresh_row(v, iter);
        }
      });
      par::parallel_for(n, [&](ordinal_t v) {
        if (is_active(v) && !P::is_out(col_m[static_cast<std::size_t>(v)])) refresh_col(v);
      });
      par::parallel_for(n, [&](ordinal_t v) {
        if (is_active(v) && P::is_undecided(row_t[static_cast<std::size_t>(v)])) decide(v);
      });
      ++iter;
      const std::int64_t undecided = par::count_if(n, [&](ordinal_t v) {
        return P::is_undecided(row_t[static_cast<std::size_t>(v)]);
      });
      if (undecided == 0) break;
    }
  }

  // --- Extract result ----------------------------------------------------

  Mis2Result result;
  result.iterations = iter;
  result.in_set.assign(static_cast<std::size_t>(n), 0);
  par::parallel_for(n, [&](ordinal_t v) {
    result.in_set[static_cast<std::size_t>(v)] = P::is_in(row_t[static_cast<std::size_t>(v)]) ? 1 : 0;
  });
  par::compact_into(
      n, [&](ordinal_t v) { return result.in_set[static_cast<std::size_t>(v)] != 0; },
      [](ordinal_t v) { return v; }, result.members);
  return result;
}

template <bool Masked>
Mis2Result dispatch(graph::GraphView g, const Mis2Options& opts, std::span<const char> active) {
  if (opts.packed_tuples) {
    return mis2_impl<PackedPolicy, Masked>(g, opts, active);
  }
  return mis2_impl<WidePolicy, Masked>(g, opts, active);
}

}  // namespace

Mis2Result mis2(graph::GraphView g, const Mis2Options& opts) {
  return dispatch<false>(g, opts, {});
}

Mis2Result mis2_masked(graph::GraphView g, std::span<const char> active,
                       const Mis2Options& opts) {
  return dispatch<true>(g, opts, active);
}

}  // namespace parmis::core
