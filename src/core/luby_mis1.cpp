#include "core/luby_mis1.hpp"

#include <cassert>
#include <vector>

#include "core/status_tuple.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "random/hash.hpp"

namespace parmis::core {

Mis2Result luby_mis1(graph::GraphView g, std::uint64_t seed) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;
  const TupleCodec<status_word_t> codec(n);

  std::vector<status_word_t> tuple(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    tuple[static_cast<std::size_t>(v)] = codec.pack(0, v);  // placeholder undecided
  });

  Mis2Result result;
  int round = 0;
  for (;; ++round) {
    const std::int64_t undecided = par::count_if(n, [&](ordinal_t v) {
      return TupleCodec<status_word_t>::is_undecided(tuple[static_cast<std::size_t>(v)]);
    });
    if (undecided == 0) break;

    // Fresh priorities for undecided vertices.
    par::parallel_for(n, [&](ordinal_t v) {
      if (TupleCodec<status_word_t>::is_undecided(tuple[static_cast<std::size_t>(v)])) {
        tuple[static_cast<std::size_t>(v)] = codec.pack(
            rng::hash_xorshift_star(static_cast<std::uint64_t>(round) ^ seed,
                                    static_cast<std::uint64_t>(v)),
            v);
      }
    });

    // A vertex with the closed-neighborhood minimum joins the set. Writing
    // IN here is race-free: only v writes slot v, and two adjacent vertices
    // can't both own the minimum.
    std::vector<char> winner(static_cast<std::size_t>(n), 0);
    par::parallel_for(n, [&](ordinal_t v) {
      const status_word_t t = tuple[static_cast<std::size_t>(v)];
      if (!TupleCodec<status_word_t>::is_undecided(t)) return;
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        if (tuple[static_cast<std::size_t>(g.entries[j])] < t) return;
      }
      winner[static_cast<std::size_t>(v)] = 1;
    });

    // Winners in, their neighbors out.
    par::parallel_for(n, [&](ordinal_t v) {
      if (!TupleCodec<status_word_t>::is_undecided(tuple[static_cast<std::size_t>(v)])) return;
      if (winner[static_cast<std::size_t>(v)]) {
        tuple[static_cast<std::size_t>(v)] = TupleCodec<status_word_t>::in_value;
        return;
      }
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        if (winner[static_cast<std::size_t>(g.entries[j])]) {
          tuple[static_cast<std::size_t>(v)] = TupleCodec<status_word_t>::out_value;
          return;
        }
      }
    });
  }

  result.iterations = round;
  result.in_set.assign(static_cast<std::size_t>(n), 0);
  par::parallel_for(n, [&](ordinal_t v) {
    result.in_set[static_cast<std::size_t>(v)] =
        TupleCodec<status_word_t>::is_in(tuple[static_cast<std::size_t>(v)]) ? 1 : 0;
  });
  par::compact_into(
      n, [&](ordinal_t v) { return result.in_set[static_cast<std::size_t>(v)] != 0; },
      [](ordinal_t v) { return v; }, result.members);
  return result;
}

}  // namespace parmis::core
