#pragma once
/// \file aggregation.hpp
/// \brief MIS-2 based graph aggregation (paper Algorithms 2 and 3).
///
/// An *aggregation* partitions the vertices into disjoint aggregates, each
/// grown around a root vertex. Because roots form an MIS-2, no vertex is
/// adjacent to two roots and every vertex is within two hops of some root,
/// so phase-1 growth is conflict-free and cleanup always finds an adjacent
/// aggregate — the properties that make the construction both parallel and
/// total.
///
/// Two schemes:
///  - `aggregate_basic` (Algorithm 2, Bell et al.): aggregates = roots +
///    their neighbors; leftovers join any adjacent aggregate. Fast but
///    produces ragged aggregates that slow multigrid convergence (Table V's
///    "MIS2 Basic" row).
///  - `aggregate_mis2` (Algorithm 3, the paper's contribution): a second
///    MIS-2 on the subgraph induced by leftover vertices seeds secondary
///    aggregates (kept only when >= 2 leftover neighbors join, to avoid
///    fill-in-inducing tiny aggregates), then remaining vertices join the
///    adjacent aggregate with the strongest coupling (most neighbors in
///    it), ties broken toward the smaller aggregate. Coupling and sizes are
///    evaluated against the immutable phase-2 "tentative" labels, keeping
///    phase 3 deterministic.
///
/// Both schemes are deterministic for any backend/thread count.

#include <vector>

#include "core/mis2.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// A complete aggregation: every vertex carries an aggregate id in
/// [0, num_aggregates).
struct Aggregation {
  std::vector<ordinal_t> labels;  ///< vertex -> aggregate id
  ordinal_t num_aggregates{0};
  std::vector<ordinal_t> roots;  ///< root vertex of each aggregate
  int phase1_iterations{0};      ///< MIS-2 iterations (phase 1)
  int phase2_iterations{0};      ///< masked MIS-2 iterations (Algorithm 3 only)
};

/// Algorithm 2: basic MIS-2 coarsening.
[[nodiscard]] Aggregation aggregate_basic(graph::GraphView g, const Mis2Options& opts = {});

/// Algorithm 2's growth phase on an already-computed MIS-2 (`mis` must be
/// a valid MIS-2 of `g`). Lets benchmarks pair the coarsening with a
/// different MIS-2 implementation (e.g. the Bell baseline, as ViennaCL
/// does).
[[nodiscard]] Aggregation aggregate_from_mis(graph::GraphView g, const Mis2Result& mis);

/// Algorithm 3: two-round MIS-2 aggregation with coupling-based cleanup.
[[nodiscard]] Aggregation aggregate_mis2(graph::GraphView g, const Mis2Options& opts = {});

/// Size distribution summary used by quality checks and Table V analysis.
struct AggregationStats {
  ordinal_t num_aggregates{0};
  ordinal_t min_size{0};
  ordinal_t max_size{0};
  double avg_size{0.0};
};

[[nodiscard]] AggregationStats aggregation_stats(const Aggregation& agg);

/// True iff labels form a valid total aggregation: every vertex labeled
/// with an id < num_aggregates, every aggregate non-empty, every root
/// labeled with its own aggregate, and every aggregate *connected* (each
/// member reaches its root within the aggregate).
[[nodiscard]] bool verify_aggregation(graph::GraphView g, const Aggregation& agg);

}  // namespace parmis::core
