#pragma once
/// \file aggregation.hpp
/// \brief MIS-2 based graph aggregation (paper Algorithms 2 and 3) and the
/// reusable `CoarsenHandle`.
///
/// An *aggregation* partitions the vertices into disjoint aggregates, each
/// grown around a root vertex. Because roots form an MIS-2, no vertex is
/// adjacent to two roots and every vertex is within two hops of some root,
/// so phase-1 growth is conflict-free and cleanup always finds an adjacent
/// aggregate — the properties that make the construction both parallel and
/// total.
///
/// Two MIS-2 schemes:
///  - `aggregate_basic` (Algorithm 2, Bell et al.): aggregates = roots +
///    their neighbors; leftovers join any adjacent aggregate. Fast but
///    produces ragged aggregates that slow multigrid convergence (Table V's
///    "MIS2 Basic" row).
///  - `aggregate_mis2` (Algorithm 3, the paper's contribution): a second
///    MIS-2 on the subgraph induced by leftover vertices seeds secondary
///    aggregates (kept only when >= 2 leftover neighbors join, to avoid
///    fill-in-inducing tiny aggregates), then remaining vertices join the
///    adjacent aggregate with the strongest coupling (most neighbors in
///    it), ties broken toward the smaller aggregate. Coupling and sizes are
///    evaluated against the immutable phase-2 "tentative" labels, keeping
///    phase 3 deterministic.
/// plus heavy-edge matching (`aggregate_hem`), the classical multilevel
/// scheme kept as the comparison point and exposed through the `Coarsener`
/// registry (coarsener.hpp).
///
/// `CoarsenHandle` owns all aggregation scratch (the nested MIS-2 handle,
/// the active mask, tentative-label snapshot, size histogram, matching
/// buffers) and reuses it across calls and across hierarchy levels: warm
/// repeated aggregations allocate nothing beyond the returned labels. The
/// free functions remain as thin wrappers over a transient handle.
///
/// All schemes are deterministic for any backend/thread count.

#include <span>
#include <vector>

#include "core/mis2.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// A complete aggregation: every vertex carries an aggregate id in
/// [0, num_aggregates).
struct Aggregation {
  std::vector<ordinal_t> labels;  ///< vertex -> aggregate id
  ordinal_t num_aggregates{0};
  std::vector<ordinal_t> roots;  ///< root vertex of each aggregate
  int phase1_iterations{0};      ///< MIS-2 iterations (phase 1)
  int phase2_iterations{0};      ///< masked MIS-2 iterations (Algorithm 3 only)
};

/// Reusable coarsening handle: an explicit execution context, a nested
/// `Mis2Handle`, and every scratch buffer Algorithms 2/3 and heavy-edge
/// matching need. Reused across calls and hierarchy levels; warm repeated
/// aggregations perform zero scratch heap allocations. Not thread-safe.
class CoarsenHandle {
 public:
  CoarsenHandle() = default;
  explicit CoarsenHandle(const Mis2Options& opts, const Context& ctx = Context::default_ctx())
      : mis2_(opts, ctx) {}
  explicit CoarsenHandle(const Context& ctx) : mis2_(ctx) {}

  /// Algorithm 3: two-round MIS-2 aggregation with coupling-based cleanup.
  /// The returned reference stays valid until the next call on this handle.
  const Aggregation& aggregate_mis2(graph::GraphView g);

  /// Algorithm 2: basic MIS-2 coarsening.
  const Aggregation& aggregate_basic(graph::GraphView g);

  /// Heavy-edge matching: greedily match each unmatched vertex to its
  /// unmatched neighbor with the heaviest edge (ties: smaller id), visiting
  /// vertices in hashed order; unmatched leftovers become singletons.
  /// `edge_weight` parallels `g.entries` (empty = unit weights). Serial
  /// (the classical formulation), hence trivially deterministic.
  const Aggregation& aggregate_hem(graph::GraphView g, std::span<const ordinal_t> edge_weight,
                                   std::uint64_t seed);

  [[nodiscard]] const Aggregation& aggregation() const { return agg_; }
  /// Move the last aggregation out (leaves the handle valid).
  [[nodiscard]] Aggregation take_aggregation() { return std::move(agg_); }

  /// The nested MIS-2 handle (its options govern both MIS-2 rounds).
  [[nodiscard]] Mis2Handle& mis2_handle() { return mis2_; }
  [[nodiscard]] Mis2Options& mis2_options() { return mis2_.options(); }
  [[nodiscard]] const Context& context() const { return mis2_.context(); }
  void set_context(const Context& ctx) { mis2_.set_context(ctx); }

  /// Heap capacity held by all scratch, including the nested MIS-2
  /// handle's (excludes the aggregation result).
  [[nodiscard]] std::size_t scratch_bytes() const;

  /// Cumulative telemetry: aggregations run, MIS-2 iterations consumed
  /// (phase 1 + phase 2), scratch growths. The nested MIS-2 handle keeps
  /// its own counters (`mis2_handle().stats()`).
  [[nodiscard]] const KernelStats& stats() const { return stats_; }

 private:
  /// Update the telemetry counters at the end of one aggregation.
  void record_run(std::size_t bytes_before);

  Mis2Handle mis2_;
  Aggregation agg_;
  std::vector<char> active_;        ///< leftover mask for Algorithm 3 phase 2
  std::vector<ordinal_t> tent_;     ///< immutable tentative labels (phase 3)
  std::vector<ordinal_t> agg_size_; ///< aggregate-size histogram (phase 3)
  std::vector<ordinal_t> accepted_; ///< accepted secondary roots
  std::vector<ordinal_t> mate_;     ///< HEM partner array
  std::vector<ordinal_t> order_;    ///< HEM hashed visit order
  std::vector<std::int64_t> flags_; ///< compaction scan flags
  KernelStats stats_;
};

/// Algorithm 2: basic MIS-2 coarsening (transient handle).
[[nodiscard]] Aggregation aggregate_basic(graph::GraphView g, const Mis2Options& opts = {});

/// Algorithm 2's growth phase on an already-computed MIS-2 (`mis` must be
/// a valid MIS-2 of `g`). Lets benchmarks pair the coarsening with a
/// different MIS-2 implementation (e.g. the Bell baseline, as ViennaCL
/// does).
[[nodiscard]] Aggregation aggregate_from_mis(graph::GraphView g, const Mis2Result& mis);

/// Algorithm 3: two-round MIS-2 aggregation with coupling-based cleanup
/// (transient handle).
[[nodiscard]] Aggregation aggregate_mis2(graph::GraphView g, const Mis2Options& opts = {});

/// Size distribution summary used by quality checks and Table V analysis.
struct AggregationStats {
  ordinal_t num_aggregates{0};
  ordinal_t min_size{0};
  ordinal_t max_size{0};
  double avg_size{0.0};
};

[[nodiscard]] AggregationStats aggregation_stats(const Aggregation& agg);

/// True iff labels form a valid total aggregation: every vertex labeled
/// with an id < num_aggregates, every aggregate non-empty, every root
/// labeled with its own aggregate, and every aggregate *connected* (each
/// member reaches its root within the aggregate).
[[nodiscard]] bool verify_aggregation(graph::GraphView g, const Aggregation& agg);

}  // namespace parmis::core
