#pragma once
/// \file coarsener.hpp
/// \brief The pluggable coarsening interface: an abstract `Coarsener`, a
/// validated run driver, and a string-keyed algorithm registry.
///
/// PR 1 made partitioning pluggable (`partition/interface.hpp`); this
/// header does the same one layer down, for the coarsening step itself —
/// the component every consumer in this library shares (multilevel
/// coarsening, the multilevel partitioners, AMG setup, cluster
/// Gauss-Seidel). Algorithms sit behind one interface, are selected by
/// name, and run through a reusable `CoarsenHandle` so hierarchies reuse
/// scratch across levels. The registry is where future schemes land:
/// parallel matching (Birn et al.) and spectral-quality coarsening
/// (Brissette et al.) from the ROADMAP both fit this signature.
///
/// Every registered coarsener is deterministic: the labeling is
/// bit-identical on the Serial and OpenMP backends at any thread count.

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// Per-call coarsening configuration (the handle carries only context and
/// scratch; options travel with the call).
struct CoarsenOptions {
  Mis2Options mis2;            ///< MIS-2 configuration (mis2 / mis2-basic)
  std::uint64_t hem_seed = 1;  ///< visit-order seed (hem)
};

/// Abstract base every coarsening scheme implements.
class Coarsener {
 public:
  virtual ~Coarsener() = default;

  /// Registry name of this scheme.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One level of coarsening: aggregate the vertices of `g`. `edge_weight`
  /// parallels `g.entries` (empty = unit weights; only weight-aware
  /// schemes read it). Scratch comes from `handle` and is reused across
  /// calls; the returned reference stays valid until the next call through
  /// the same handle. Implementations must be deterministic across
  /// backends and thread counts.
  virtual const Aggregation& coarsen(graph::GraphView g,
                                     std::span<const ordinal_t> edge_weight,
                                     CoarsenHandle& handle,
                                     const CoarsenOptions& opts) const = 0;

  /// Validated driver: runs coarsen() and checks the labeling is total
  /// (every vertex labeled, every label in [0, num_aggregates)). Throws
  /// std::runtime_error on violation.
  const Aggregation& run(graph::GraphView g, std::span<const ordinal_t> edge_weight,
                         CoarsenHandle& handle, const CoarsenOptions& opts = {}) const;
};

/// Registry entry: a name, a one-line description, and a factory.
struct CoarsenerSpec {
  std::string name;
  std::string description;
  std::function<std::unique_ptr<Coarsener>()> make;
};

/// All registered coarseners, stable order (the paper's scheme first).
const std::vector<CoarsenerSpec>& coarsener_registry();

/// Names of all registered coarseners, registry order.
[[nodiscard]] std::vector<std::string> coarsener_names();

/// Look up one spec by name; throws std::out_of_range if unknown.
const CoarsenerSpec& find_coarsener(const std::string& name);

/// Construct a coarsener by registry name; throws std::out_of_range if
/// unknown.
[[nodiscard]] std::unique_ptr<Coarsener> make_coarsener(const std::string& name);

}  // namespace parmis::core
