#pragma once
/// \file mis_spgemm.hpp
/// \brief MIS-2 via explicit graph squaring (the Tuminaro–Tong / ML path).
///
/// The ML multigrid package computed MIS-2 as MIS-1 of G² (G squared with
/// SpGEMM); Lemma IV.2 of the paper proves the equivalence. Algorithm 1's
/// advantage is avoiding the G² materialization entirely; this module keeps
/// the explicit path as a related-work baseline and as the oracle the test
/// suite validates Algorithm 1 against.

#include <cstdint>

#include "core/mis2.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// MIS-2 of `g` computed as Luby MIS-1 over the materialized distance-≤2
/// graph. Valid by Lemma IV.2; far more memory-hungry than Algorithm 1.
[[nodiscard]] Mis2Result mis2_via_squaring(graph::GraphView g, std::uint64_t seed = 0);

}  // namespace parmis::core
