#pragma once
/// \file bell_misk.hpp
/// \brief Reference implementation of the Bell/Dalton/Olson MIS-k algorithm.
///
/// Bell, Dalton & Olson (SISC 2012) compute a distance-k maximal
/// independent set directly: every vertex carries a (status, random, ID)
/// tuple with status IN < UNDECIDED < OUT; each round the minimum tuple is
/// propagated k hops (so every vertex learns the minimum over its radius-k
/// neighborhood), vertices owning their neighborhood minimum join the set,
/// and vertices whose propagated minimum has status IN are knocked out.
/// Priorities are chosen *once* (not per round), every vertex is processed
/// every round (no worklists), and tuples are kept as 3-field structs —
/// exactly the baseline the paper's Fig. 2 ablation starts from, and the
/// algorithm CUSP and ViennaCL ship (the comparators in Figs. 6-7 and
/// Table IV; see DESIGN.md §4 on this substitution).
///
/// Deterministic: same fixed-priority scheme, order-independent min
/// propagation.

#include <cstdint>

#include "core/mis2.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// Compute a distance-k MIS of `g` (symmetric, loop-free adjacency) using
/// the Bell et al. reference scheme. `iterations` in the result counts
/// rounds (each round performs k min-propagation sweeps).
///
/// `per_round_priorities` re-randomizes undecided vertices' priorities at
/// the start of every round (with xorshift*). This is the first rung of
/// the paper's Fig. 2 optimization ladder: Bell's structure, but with the
/// §V-A priority refresh, which shortens dependency chains and reduces the
/// round count.
[[nodiscard]] Mis2Result bell_misk(graph::GraphView g, int k = 2, std::uint64_t seed = 0,
                                   bool per_round_priorities = false);

}  // namespace parmis::core
