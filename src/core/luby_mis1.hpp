#pragma once
/// \file luby_mis1.hpp
/// \brief Luby's Monte Carlo Algorithm A for distance-1 MIS.
///
/// The distance-1 analogue of Algorithm 1 (paper §IV uses this relationship
/// to bound Algorithm 1's depth): each round every undecided vertex draws a
/// fresh random priority; a vertex holding the minimum over its closed
/// neighborhood joins the set and its neighbors leave. Combined with
/// `graph::square`, this yields the Tuminaro–Tong style MIS-2-via-SpGEMM
/// (see mis_spgemm.hpp) and the Lemma IV.2 cross-check used in tests.

#include <cstdint>

#include "core/mis2.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// Compute a distance-1 MIS of `g` (symmetric, loop-free adjacency).
/// Deterministic (hash-based priorities).
[[nodiscard]] Mis2Result luby_mis1(graph::GraphView g, std::uint64_t seed = 0);

}  // namespace parmis::core
