#include "core/bell_misk.hpp"

#include <cassert>
#include <vector>

#include "core/status_tuple.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "random/hash.hpp"

namespace parmis::core {

Mis2Result bell_misk(graph::GraphView g, int k, std::uint64_t seed,
                     bool per_round_priorities) {
  assert(g.num_rows == g.num_cols);
  assert(k >= 1);
  const ordinal_t n = g.num_rows;

  // Fixed random priorities, chosen once (Bell's scheme).
  std::vector<WideTuple> state(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    state[static_cast<std::size_t>(v)] =
        WideTuple::undecided(rng::xorshift64star(static_cast<std::uint64_t>(v) + seed + 1), v);
  });

  std::vector<WideTuple> prop(static_cast<std::size_t>(n));
  std::vector<WideTuple> prop_next(static_cast<std::size_t>(n));

  Mis2Result result;
  int round = 0;
  // Every round decides at least the global-minimum undecided vertex, so
  // this terminates in at most n rounds (O(log n) expected).
  for (;; ++round) {
    const std::int64_t undecided = par::count_if(n, [&](ordinal_t v) {
      return state[static_cast<std::size_t>(v)].status == WideTuple::kUndecided;
    });
    if (undecided == 0) break;

    if (per_round_priorities) {
      // §V-A refresh applied to the Bell skeleton (Fig. 2's first rung).
      par::parallel_for(n, [&](ordinal_t v) {
        WideTuple& s = state[static_cast<std::size_t>(v)];
        if (s.status == WideTuple::kUndecided) {
          s = WideTuple::undecided(
              rng::hash_xorshift_star(static_cast<std::uint64_t>(round) ^ seed,
                                      static_cast<std::uint64_t>(v)),
              v);
        }
      });
    }

    // k sweeps of closed-neighborhood min propagation.
    prop = state;
    for (int step = 0; step < k; ++step) {
      par::parallel_for(n, [&](ordinal_t v) {
        WideTuple m = prop[static_cast<std::size_t>(v)];
        for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
          const WideTuple& w = prop[static_cast<std::size_t>(g.entries[j])];
          if (w < m) m = w;
        }
        prop_next[static_cast<std::size_t>(v)] = m;
      });
      prop.swap(prop_next);
    }

    // Decide: own minimum -> IN; IN-status minimum -> OUT.
    par::parallel_for(n, [&](ordinal_t v) {
      WideTuple& s = state[static_cast<std::size_t>(v)];
      if (s.status != WideTuple::kUndecided) return;
      const WideTuple& m = prop[static_cast<std::size_t>(v)];
      if (m == s) {
        s.status = WideTuple::kIn;
      } else if (m.status == WideTuple::kIn) {
        s.status = WideTuple::kOut;
      }
    });
  }

  result.iterations = round;
  result.in_set.assign(static_cast<std::size_t>(n), 0);
  par::parallel_for(n, [&](ordinal_t v) {
    result.in_set[static_cast<std::size_t>(v)] =
        state[static_cast<std::size_t>(v)].status == WideTuple::kIn ? 1 : 0;
  });
  par::compact_into(
      n, [&](ordinal_t v) { return result.in_set[static_cast<std::size_t>(v)] != 0; },
      [](ordinal_t v) { return v; }, result.members);
  return result;
}

}  // namespace parmis::core
