#include "core/coarsen.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>

#include "core/coarsener.hpp"
#include "parallel/parallel_for.hpp"

namespace parmis::core {

AggregateMembers aggregate_members(const Aggregation& agg) {
  AggregateMembers m;
  const ordinal_t n = static_cast<ordinal_t>(agg.labels.size());
  m.offsets.assign(static_cast<std::size_t>(agg.num_aggregates) + 1, 0);
  for (ordinal_t v = 0; v < n; ++v) {
    ++m.offsets[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)]) + 1];
  }
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    m.offsets[static_cast<std::size_t>(a) + 1] += m.offsets[static_cast<std::size_t>(a)];
  }
  m.members.resize(static_cast<std::size_t>(n));
  std::vector<offset_t> cursor(m.offsets.begin(), m.offsets.end() - 1);
  // Vertex-order fill keeps each member list sorted ascending.
  for (ordinal_t v = 0; v < n; ++v) {
    m.members[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)])]++)] = v;
  }
  return m;
}

namespace {

/// Stamp-marker workspace for coarse-row deduplication (same pattern as
/// SpGEMM's accumulator).
struct Workspace {
  std::vector<std::uint64_t> stamp_of;
  std::vector<ordinal_t> touched;
  std::uint64_t stamp{0};

  void ensure(ordinal_t ncols) {
    if (stamp_of.size() < static_cast<std::size_t>(ncols)) {
      stamp_of.assign(static_cast<std::size_t>(ncols), 0);
      stamp = 0;
    }
  }
};

thread_local Workspace t_ws;

}  // namespace

graph::CrsGraph coarse_graph(graph::GraphView g, const Aggregation& agg) {
  assert(agg.labels.size() == static_cast<std::size_t>(g.num_rows));
  const AggregateMembers mem = aggregate_members(agg);
  const ordinal_t nc = agg.num_aggregates;

  graph::CrsGraph c;
  c.num_rows = nc;
  c.num_cols = nc;
  c.row_map.assign(static_cast<std::size_t>(nc) + 1, 0);

  auto collect_row = [&](ordinal_t a) {
    Workspace& ws = t_ws;
    ws.ensure(nc);
    ++ws.stamp;
    ws.touched.clear();
    for (offset_t mi = mem.offsets[static_cast<std::size_t>(a)];
         mi < mem.offsets[static_cast<std::size_t>(a) + 1]; ++mi) {
      const ordinal_t v = mem.members[static_cast<std::size_t>(mi)];
      for (ordinal_t w : g.row(v)) {
        const ordinal_t b = agg.labels[static_cast<std::size_t>(w)];
        if (b == a) continue;
        if (ws.stamp_of[static_cast<std::size_t>(b)] != ws.stamp) {
          ws.stamp_of[static_cast<std::size_t>(b)] = ws.stamp;
          ws.touched.push_back(b);
        }
      }
    }
  };

  par::parallel_for(nc, [&](ordinal_t a) {
    collect_row(a);
    c.row_map[static_cast<std::size_t>(a) + 1] = static_cast<offset_t>(t_ws.touched.size());
  });
  for (ordinal_t a = 0; a < nc; ++a) {
    c.row_map[static_cast<std::size_t>(a) + 1] += c.row_map[static_cast<std::size_t>(a)];
  }
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  par::parallel_for(nc, [&](ordinal_t a) {
    collect_row(a);
    std::sort(t_ws.touched.begin(), t_ws.touched.end());
    std::copy(t_ws.touched.begin(), t_ws.touched.end(),
              c.entries.begin() + static_cast<std::ptrdiff_t>(c.row_map[a]));
  });
  return c;
}

MultilevelHierarchy multilevel_coarsen(graph::GraphView g, const MultilevelOptions& opts,
                                       CoarsenHandle& handle) {
  MultilevelHierarchy h;
  graph::GraphView view = g;
  const std::unique_ptr<Coarsener> coarsener = make_coarsener(opts.coarsener);
  CoarsenOptions copts;
  copts.mis2 = opts.mis2;
  copts.hem_seed = opts.mis2.seed + 1;

  for (int level = 0; level < opts.max_levels; ++level) {
    if (view.num_rows <= opts.target_vertices) break;

    CoarsenLevel lvl;
    (void)coarsener->run(view, {}, handle, copts);
    lvl.aggregation = handle.take_aggregation();  // move, not copy: the level owns it
    // Stall guard: require at least 5% reduction to continue.
    if (lvl.aggregation.num_aggregates >= view.num_rows ||
        static_cast<double>(lvl.aggregation.num_aggregates) > 0.95 * view.num_rows) {
      break;
    }
    lvl.graph = coarse_graph(view, lvl.aggregation);
    h.levels.push_back(std::move(lvl));
    // Note: vector reallocation moves the CrsGraph objects but not their
    // heap buffers, so views into the previous level stay valid.
    view = h.levels.back().graph;
  }
  return h;
}

MultilevelHierarchy multilevel_coarsen(graph::GraphView g, const MultilevelOptions& opts) {
  CoarsenHandle handle(opts.mis2);
  return multilevel_coarsen(g, opts, handle);
}

}  // namespace parmis::core
