#include "core/coarsen.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>

#include "check/check.hpp"
#include "check/validate.hpp"
#include "core/coarsener.hpp"
#include "multilevel/builder.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_scan.hpp"

namespace parmis::core {

AggregateMembers aggregate_members(const Aggregation& agg) {
  AggregateMembers m;
  const ordinal_t n = static_cast<ordinal_t>(agg.labels.size());
  const ordinal_t na = agg.num_aggregates;
  m.offsets.assign(static_cast<std::size_t>(na) + 1, 0);
  m.members.resize(static_cast<std::size_t>(n));
  if (n == 0 || na == 0) return m;

  // Parallel counting sort by label over identical contiguous chunks
  // (balanced_chunks repeats its boundaries for identical inputs): chunk
  // histograms, per-label scan across chunks into chunk-local cursors,
  // then placement. Vertex-order fill within ascending chunks keeps each
  // member list sorted ascending, matching the serial build exactly.
  const std::size_t nkeys = static_cast<std::size_t>(na);
  const int nchunks = par::balanced_chunk_count();
  std::vector<offset_t> counts(static_cast<std::size_t>(nchunks) * nkeys, 0);

  par::balanced_chunks(n, static_cast<const offset_t*>(nullptr),
                       [&](int chunk, ordinal_t lo, ordinal_t hi) {
    offset_t* cnt = counts.data() + static_cast<std::size_t>(chunk) * nkeys;
    for (ordinal_t v = lo; v < hi; ++v) {
      ++cnt[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)])];
    }
  });

  par::chunked_cursor_scan(na, nchunks, counts, m.offsets);
  par::inclusive_scan_inplace(
      std::span<offset_t>(m.offsets.data() + 1, static_cast<std::size_t>(na)));

  par::balanced_chunks(n, static_cast<const offset_t*>(nullptr),
                       [&](int chunk, ordinal_t lo, ordinal_t hi) {
    offset_t* cursor = counts.data() + static_cast<std::size_t>(chunk) * nkeys;
    for (ordinal_t v = lo; v < hi; ++v) {
      const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
      m.members[static_cast<std::size_t>(m.offsets[static_cast<std::size_t>(a)] +
                                         cursor[static_cast<std::size_t>(a)]++)] = v;
    }
  });
  return m;
}

namespace {

/// Stamp-marker workspace for coarse-row deduplication (same pattern as
/// SpGEMM's accumulator).
struct Workspace {
  std::vector<std::uint64_t> stamp_of;
  std::vector<ordinal_t> touched;
  std::uint64_t stamp{0};

  void ensure(ordinal_t ncols) {
    if (stamp_of.size() < static_cast<std::size_t>(ncols)) {
      stamp_of.assign(static_cast<std::size_t>(ncols), 0);
      stamp = 0;
    }
  }
};

thread_local Workspace t_ws;

}  // namespace

graph::CrsGraph coarse_graph(graph::GraphView g, const Aggregation& agg) {
  assert(agg.labels.size() == static_cast<std::size_t>(g.num_rows));
  PARMIS_CHECK_OK(check::validate(agg, g.num_rows));
  const AggregateMembers mem = aggregate_members(agg);
  const ordinal_t nc = agg.num_aggregates;

  graph::CrsGraph c;
  c.num_rows = nc;
  c.num_cols = nc;
  c.row_map.assign(static_cast<std::size_t>(nc) + 1, 0);
  if (nc == 0) return c;

  // Per-aggregate collection cost = Σ over members of (degree + 1);
  // aggregates around fine-level hubs dwarf the rest, so split the sweep
  // into equal-cost chunks instead of equal aggregate counts.
  const bool edge_balanced = par::schedule_uses_costs();
  std::vector<offset_t> cost;
  if (edge_balanced) {
    cost.resize(static_cast<std::size_t>(nc) + 1);
    par::parallel_for(nc, [&](ordinal_t a) {
      offset_t w = 1;
      for (offset_t mi = mem.offsets[static_cast<std::size_t>(a)];
           mi < mem.offsets[static_cast<std::size_t>(a) + 1]; ++mi) {
        const ordinal_t v = mem.members[static_cast<std::size_t>(mi)];
        w += g.row_map[v + 1] - g.row_map[v] + 1;
      }
      cost[static_cast<std::size_t>(a)] = w;
    });
    cost[static_cast<std::size_t>(nc)] = 0;
    par::exclusive_scan_inplace(std::span<offset_t>(cost));
  }

  // Single collection pass (the old builder re-ran it to size the rows):
  // each chunk dedups its aggregates' coarse rows into an arena; after the
  // row-length scan a scatter pass copies arenas into the final entries.
  const int nchunks = par::balanced_chunk_count();
  std::vector<std::vector<ordinal_t>> arenas(static_cast<std::size_t>(nchunks));
  std::vector<int> arena_of(static_cast<std::size_t>(nc));
  std::vector<offset_t> arena_off(static_cast<std::size_t>(nc));

  par::balanced_chunks(nc, edge_balanced ? cost.data() : nullptr,
                       [&](int chunk, ordinal_t lo, ordinal_t hi) {
    std::vector<ordinal_t>& arena = arenas[static_cast<std::size_t>(chunk)];
    Workspace& ws = t_ws;
    ws.ensure(nc);
    for (ordinal_t a = lo; a < hi; ++a) {
      ++ws.stamp;
      ws.touched.clear();
      for (offset_t mi = mem.offsets[static_cast<std::size_t>(a)];
           mi < mem.offsets[static_cast<std::size_t>(a) + 1]; ++mi) {
        const ordinal_t v = mem.members[static_cast<std::size_t>(mi)];
        for (ordinal_t w : g.row(v)) {
          const ordinal_t b = agg.labels[static_cast<std::size_t>(w)];
          if (b == a) continue;
          if (ws.stamp_of[static_cast<std::size_t>(b)] != ws.stamp) {
            ws.stamp_of[static_cast<std::size_t>(b)] = ws.stamp;
            ws.touched.push_back(b);
          }
        }
      }
      std::sort(ws.touched.begin(), ws.touched.end());
      arena_of[static_cast<std::size_t>(a)] = chunk;
      arena_off[static_cast<std::size_t>(a)] = static_cast<offset_t>(arena.size());
      arena.insert(arena.end(), ws.touched.begin(), ws.touched.end());
      c.row_map[static_cast<std::size_t>(a) + 1] = static_cast<offset_t>(ws.touched.size());
    }
  });

  par::inclusive_scan_inplace(
      std::span<offset_t>(c.row_map.data() + 1, static_cast<std::size_t>(nc)));
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  par::balanced_for(nc, c.row_map.data(), [&](ordinal_t a) {
    const std::vector<ordinal_t>& arena =
        arenas[static_cast<std::size_t>(arena_of[static_cast<std::size_t>(a)])];
    std::copy_n(arena.begin() + static_cast<std::ptrdiff_t>(arena_off[static_cast<std::size_t>(a)]),
                c.row_map[a + 1] - c.row_map[a],
                c.entries.begin() + static_cast<std::ptrdiff_t>(c.row_map[a]));
  });
  PARMIS_CHECK_OK(check::validate(
      graph::GraphView(c), {.require_sorted = true, .require_unique = true, .require_loop_free = true}));
  return c;
}

MultilevelHierarchy multilevel_coarsen(graph::GraphView g, const MultilevelOptions& opts,
                                       CoarsenHandle& handle) {
  // Thin adapter over the unified multilevel Builder (the one level loop
  // shared with the partitioners and AMG setup). The caller's CoarsenHandle
  // is spliced into the hierarchy handle's workspace for the duration of
  // the build, preserving the historical scratch-reuse contract: repeated
  // hierarchies through one handle stay warm.
  multilevel::Options mo;
  mo.coarsener = opts.coarsener;
  mo.max_levels = opts.max_levels;
  mo.min_coarse_size = opts.target_vertices;
  mo.rate_floor = 0.95;  // the historical 5%-reduction stall guard
  mo.mis2 = opts.mis2;
  mo.seed = opts.mis2.seed + 1;  // the historical HEM visit-order seed

  multilevel::HierarchyHandle hh;
  hh.coarsen_handle() = std::move(handle);
  const multilevel::Builder builder(std::move(mo));
  std::vector<multilevel::Step> steps;
  try {
    (void)builder.build(g, hh);
    steps = hh.take_steps();
  } catch (...) {
    handle = std::move(hh.coarsen_handle());
    throw;
  }
  handle = std::move(hh.coarsen_handle());

  MultilevelHierarchy h;
  h.levels.reserve(steps.size());
  for (multilevel::Step& step : steps) {
    CoarsenLevel lvl;
    lvl.aggregation = std::move(step.aggregation);
    lvl.graph = std::move(step.coarse.graph);
    h.levels.push_back(std::move(lvl));
  }
  return h;
}

MultilevelHierarchy multilevel_coarsen(graph::GraphView g, const MultilevelOptions& opts) {
  CoarsenHandle handle(opts.mis2);
  return multilevel_coarsen(g, opts, handle);
}

}  // namespace parmis::core
