#include "core/coarsener.hpp"

#include <stdexcept>

namespace parmis::core {

const Aggregation& Coarsener::run(graph::GraphView g, std::span<const ordinal_t> edge_weight,
                                  CoarsenHandle& handle, const CoarsenOptions& opts) const {
  const Aggregation& agg = coarsen(g, edge_weight, handle, opts);
  if (agg.labels.size() != static_cast<std::size_t>(g.num_rows)) {
    throw std::runtime_error("coarsener '" + name() + "' returned a labeling of wrong size");
  }
  for (ordinal_t a : agg.labels) {
    if (a < 0 || a >= agg.num_aggregates) {
      throw std::runtime_error("coarsener '" + name() + "' produced an out-of-range label");
    }
  }
  return agg;
}

namespace {

/// Algorithm 3 (the paper's contribution) and Algorithm 2 behind one
/// implementation, selected at registration.
class Mis2Coarsener final : public Coarsener {
 public:
  Mis2Coarsener(std::string name, bool algorithm3) : name_(std::move(name)), alg3_(algorithm3) {}

  [[nodiscard]] std::string name() const override { return name_; }

  const Aggregation& coarsen(graph::GraphView g, std::span<const ordinal_t> /*edge_weight*/,
                             CoarsenHandle& handle, const CoarsenOptions& opts) const override {
    handle.mis2_options() = opts.mis2;
    return alg3_ ? handle.aggregate_mis2(g) : handle.aggregate_basic(g);
  }

 private:
  std::string name_;
  bool alg3_;
};

/// Classical heavy-edge matching (the §II comparison point).
class HemCoarsener final : public Coarsener {
 public:
  [[nodiscard]] std::string name() const override { return "hem"; }

  const Aggregation& coarsen(graph::GraphView g, std::span<const ordinal_t> edge_weight,
                             CoarsenHandle& handle, const CoarsenOptions& opts) const override {
    return handle.aggregate_hem(g, edge_weight, opts.hem_seed);
  }
};

std::vector<CoarsenerSpec> make_registry() {
  std::vector<CoarsenerSpec> specs;
  specs.push_back(
      {"mis2", "two-round MIS-2 aggregation with coupling cleanup (Algorithm 3, the paper)",
       [] { return std::make_unique<Mis2Coarsener>("mis2", true); }});
  specs.push_back(
      {"mis2-basic", "single-round MIS-2 aggregation, roots + neighbors (Algorithm 2, Bell)",
       [] { return std::make_unique<Mis2Coarsener>("mis2-basic", false); }});
  specs.push_back({"hem", "greedy heavy-edge matching, hashed visit order (classical baseline)",
                   [] { return std::make_unique<HemCoarsener>(); }});
  return specs;
}

}  // namespace

const std::vector<CoarsenerSpec>& coarsener_registry() {
  static const std::vector<CoarsenerSpec> registry = make_registry();
  return registry;
}

std::vector<std::string> coarsener_names() {
  std::vector<std::string> names;
  names.reserve(coarsener_registry().size());
  for (const CoarsenerSpec& s : coarsener_registry()) names.push_back(s.name);
  return names;
}

const CoarsenerSpec& find_coarsener(const std::string& name) {
  for (const CoarsenerSpec& s : coarsener_registry()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown coarsener: " + name);
}

std::unique_ptr<Coarsener> make_coarsener(const std::string& name) {
  return find_coarsener(name).make();
}

}  // namespace parmis::core
