#pragma once
/// \file verify.hpp
/// \brief Independence/maximality checkers for distance-k independent sets.
///
/// Used by the test suite (every MIS algorithm must produce a valid MIS-2
/// on every input) and available to users as a cheap post-condition check.

#include <span>

#include "graph/crs.hpp"

namespace parmis::core {

/// True iff no two set members are joined by a path of length <= k.
/// (k = 1 or 2 supported; these are the cases the library computes.)
[[nodiscard]] bool is_distance_k_independent(graph::GraphView g, std::span<const char> in_set,
                                             int k);

/// True iff every non-member is within distance k of some member
/// (i.e. no vertex can be added while preserving independence).
[[nodiscard]] bool is_distance_k_maximal(graph::GraphView g, std::span<const char> in_set, int k);

/// Both checks with k = 2: a valid MIS-2.
[[nodiscard]] bool verify_mis2(graph::GraphView g, std::span<const char> in_set);

/// Both checks with k = 1: a valid MIS-1.
[[nodiscard]] bool verify_mis1(graph::GraphView g, std::span<const char> in_set);

/// Induced-subgraph MIS-2 validity: members must be active, independence
/// counts only paths through active vertices, and maximality is required
/// only of active vertices.
[[nodiscard]] bool verify_mis2_masked(graph::GraphView g, std::span<const char> in_set,
                                      std::span<const char> active);

}  // namespace parmis::core
