#pragma once
/// \file mis2.hpp
/// \brief Algorithm 1: parallel, deterministic distance-2 maximal
/// independent set.
///
/// The algorithm iterates three data-parallel phases until every vertex is
/// decided:
///   1. *Refresh Row*   — assign each undecided vertex a fresh pseudo-random
///      priority tuple `T_v` (hash of iteration number and vertex id, §V-A);
///   2. *Refresh Column* — `M_v = min(T_w : w in N[v])` over the closed
///      neighborhood; an IN minimum is translated to OUT;
///   3. *Decide Set*    — a vertex whose tuple equals `M_w` for *every*
///      `w in N[v]` owns the minimum of its radius-2 neighborhood and joins
///      the set; a vertex seeing any `M_w = OUT` is within distance 2 of an
///      IN vertex and leaves.
/// Worklists of still-relevant vertices are compacted with a parallel scan
/// between iterations (§V-B).
///
/// Every phase writes only to the iterating vertex's own slot, and all
/// reductions are order-independent minima, so the result is deterministic
/// for any backend and thread count — the paper's headline property.
///
/// ## Handles
///
/// The primary entry point is `Mis2Handle` (the KokkosKernels
/// `KernelHandle` shape the paper's implementation lives in): it owns every
/// scratch buffer Algorithm 1 needs — the `row_t`/`col_m` tuple arrays, the
/// two worklists, and the scan/compaction flags — plus the result storage,
/// and reuses all of it across calls. Warm repeated runs on same-sized (or
/// smaller) graphs perform **zero heap allocations**, which is what a
/// multilevel hierarchy or a high-traffic service hits dozens of times per
/// request. The free functions `mis2()` / `mis2_masked()` remain as thin
/// wrappers that construct a transient handle.
///
/// The four §V optimizations are individually toggleable through
/// `Mis2Options` to support the Fig. 2 ablation; the defaults correspond to
/// the full Kokkos Kernels configuration.
///
/// Input adjacency must be symmetric and loop-free (see
/// `graph::symmetrize` / `graph::remove_self_loops`); neighborhoods are
/// treated as closed internally.

#include <cstdint>
#include <span>
#include <vector>

#include "core/status_tuple.hpp"
#include "graph/crs.hpp"
#include "parallel/context.hpp"

namespace parmis::core {

/// Priority-randomization schemes from Table I.
enum class PriorityScheme {
  Fixed,         ///< priorities chosen once (Bell et al.)
  Xorshift,      ///< re-randomized per iteration with plain xorshift (pathological, §V-A)
  XorshiftStar,  ///< re-randomized per iteration with xorshift* (the paper's choice)
};

/// Algorithm 1 configuration. Defaults = all optimizations on.
struct Mis2Options {
  PriorityScheme priority = PriorityScheme::XorshiftStar;
  /// §V-B: track undecided rows / live columns and compact with scans.
  bool use_worklists = true;
  /// §V-C: single-word compressed tuples instead of 3-field structs.
  bool packed_tuples = true;
  /// §V-D: vector-level (SIMD) inner neighbor loops; auto-disabled when the
  /// average degree is below the context's `simd_degree_threshold`, as in
  /// the paper.
  bool simd = true;
  /// Extra seed folded into the hash; 0 reproduces the paper's generator.
  /// XORed with the executing context's seed.
  std::uint64_t seed = 0;
  /// Safety bound on iterations (the algorithm needs O(log V) in
  /// expectation; hitting this indicates a bug or adversarial input).
  int max_iterations = 1 << 20;
};

/// MIS-2 output: membership flags, the sorted member list, and the
/// iteration count (the quantity reported in Tables I and III).
struct Mis2Result {
  std::vector<char> in_set;
  std::vector<ordinal_t> members;
  int iterations = 0;

  [[nodiscard]] ordinal_t set_size() const { return static_cast<ordinal_t>(members.size()); }
};

/// All scratch Algorithm 1 touches, owned by `Mis2Handle` and reused
/// across runs. Buffers are resized (never shrunk-to-fit), so capacities
/// only grow and warm runs stay allocation-free.
struct Mis2Workspace {
  std::vector<status_word_t> row_packed;  ///< row_t, packed representation
  std::vector<status_word_t> col_packed;  ///< col_m, packed representation
  std::vector<WideTuple> row_wide;        ///< row_t, 3-field representation
  std::vector<WideTuple> col_wide;        ///< col_m, 3-field representation
  std::vector<ordinal_t> wl1;             ///< undecided-row worklist (§V-B)
  std::vector<ordinal_t> wl2;             ///< live-column worklist (§V-B)
  std::vector<ordinal_t> compacted;       ///< worklist compaction output
  std::vector<std::int64_t> flags;        ///< scan flags for every compaction
  std::vector<offset_t> wl1_cost;         ///< degree prefix over wl1 (EdgeBalanced)
  std::vector<offset_t> wl2_cost;         ///< degree prefix over wl2 (EdgeBalanced)

  /// Total heap capacity (bytes) currently held. Stable across warm runs:
  /// the zero-allocation reuse contract asserted by the handle tests.
  [[nodiscard]] std::size_t capacity_bytes() const;
};

/// Cumulative per-handle telemetry (service counters shared by the core
/// kernel handles; never reset by the handle itself).
struct KernelStats {
  std::uint64_t runs = 0;           ///< kernel invocations completed
  std::uint64_t iterations = 0;     ///< total algorithm iterations across runs
  std::uint64_t scratch_grows = 0;  ///< runs that grew scratch capacity
};

/// Reusable MIS-2 kernel handle: explicit execution context + options +
/// scratch + result storage. Not thread-safe; use one handle per thread.
class Mis2Handle {
 public:
  Mis2Handle() : Mis2Handle(Mis2Options{}) {}
  explicit Mis2Handle(const Mis2Options& opts, const Context& ctx = Context::default_ctx())
      : opts_(opts), ctx_(ctx) {}
  explicit Mis2Handle(const Context& ctx) : ctx_(ctx) {}

  /// Compute an MIS-2 of `g` (Algorithm 1) under this handle's context.
  /// The returned reference stays valid until the next run on this handle.
  const Mis2Result& run(graph::GraphView g);

  /// Compute an MIS-2 of the subgraph induced by `active` (vertices with
  /// `active[v] == 0` are absent: they can't join the set and paths through
  /// them do not count). Used by Algorithm 3's phase 2.
  const Mis2Result& run_masked(graph::GraphView g, std::span<const char> active);

  [[nodiscard]] const Mis2Result& result() const { return result_; }
  /// Move the last result out (leaves the handle's result empty but valid).
  [[nodiscard]] Mis2Result take_result() { return std::move(result_); }

  [[nodiscard]] Mis2Options& options() { return opts_; }
  [[nodiscard]] const Mis2Options& options() const { return opts_; }
  [[nodiscard]] const Context& context() const { return ctx_; }
  void set_context(const Context& ctx) { ctx_ = ctx; }

  /// Heap capacity held by the scratch arrays (excludes the result).
  [[nodiscard]] std::size_t scratch_bytes() const { return ws_.capacity_bytes(); }

  /// Cumulative telemetry: runs, MIS-2 iterations, scratch growths.
  [[nodiscard]] const KernelStats& stats() const { return stats_; }

 private:
  Mis2Options opts_{};
  Context ctx_ = Context::default_ctx();
  Mis2Workspace ws_;
  Mis2Result result_;
  KernelStats stats_;
};

/// Compute an MIS-2 of `g` (Algorithm 1) with a transient handle.
[[nodiscard]] Mis2Result mis2(graph::GraphView g, const Mis2Options& opts = {});

/// Masked variant of `mis2` (see `Mis2Handle::run_masked`) with a
/// transient handle.
[[nodiscard]] Mis2Result mis2_masked(graph::GraphView g, std::span<const char> active,
                                     const Mis2Options& opts = {});

}  // namespace parmis::core
