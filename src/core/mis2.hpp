#pragma once
/// \file mis2.hpp
/// \brief Algorithm 1: parallel, deterministic distance-2 maximal
/// independent set.
///
/// The algorithm iterates three data-parallel phases until every vertex is
/// decided:
///   1. *Refresh Row*   — assign each undecided vertex a fresh pseudo-random
///      priority tuple `T_v` (hash of iteration number and vertex id, §V-A);
///   2. *Refresh Column* — `M_v = min(T_w : w in N[v])` over the closed
///      neighborhood; an IN minimum is translated to OUT;
///   3. *Decide Set*    — a vertex whose tuple equals `M_w` for *every*
///      `w in N[v]` owns the minimum of its radius-2 neighborhood and joins
///      the set; a vertex seeing any `M_w = OUT` is within distance 2 of an
///      IN vertex and leaves.
/// Worklists of still-relevant vertices are compacted with a parallel scan
/// between iterations (§V-B).
///
/// Every phase writes only to the iterating vertex's own slot, and all
/// reductions are order-independent minima, so the result is deterministic
/// for any backend and thread count — the paper's headline property.
///
/// The four §V optimizations are individually toggleable through
/// `Mis2Options` to support the Fig. 2 ablation; the defaults correspond to
/// the full Kokkos Kernels configuration.
///
/// Input adjacency must be symmetric and loop-free (see
/// `graph::symmetrize` / `graph::remove_self_loops`); neighborhoods are
/// treated as closed internally.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::core {

/// Priority-randomization schemes from Table I.
enum class PriorityScheme {
  Fixed,         ///< priorities chosen once (Bell et al.)
  Xorshift,      ///< re-randomized per iteration with plain xorshift (pathological, §V-A)
  XorshiftStar,  ///< re-randomized per iteration with xorshift* (the paper's choice)
};

/// Algorithm 1 configuration. Defaults = all optimizations on.
struct Mis2Options {
  PriorityScheme priority = PriorityScheme::XorshiftStar;
  /// §V-B: track undecided rows / live columns and compact with scans.
  bool use_worklists = true;
  /// §V-C: single-word compressed tuples instead of 3-field structs.
  bool packed_tuples = true;
  /// §V-D: vector-level (SIMD) inner neighbor loops; auto-disabled when the
  /// average degree is below `par::simd_degree_threshold`, as in the paper.
  bool simd = true;
  /// Extra seed folded into the hash; 0 reproduces the paper's generator.
  std::uint64_t seed = 0;
  /// Safety bound on iterations (the algorithm needs O(log V) in
  /// expectation; hitting this indicates a bug or adversarial input).
  int max_iterations = 1 << 20;
};

/// MIS-2 output: membership flags, the sorted member list, and the
/// iteration count (the quantity reported in Tables I and III).
struct Mis2Result {
  std::vector<char> in_set;
  std::vector<ordinal_t> members;
  int iterations = 0;

  [[nodiscard]] ordinal_t set_size() const { return static_cast<ordinal_t>(members.size()); }
};

/// Compute an MIS-2 of `g` (Algorithm 1).
[[nodiscard]] Mis2Result mis2(graph::GraphView g, const Mis2Options& opts = {});

/// Compute an MIS-2 of the subgraph induced by `active` (vertices with
/// `active[v] == 0` are absent: they can't join the set and paths through
/// them do not count). Used by Algorithm 3's phase 2.
[[nodiscard]] Mis2Result mis2_masked(graph::GraphView g, std::span<const char> active,
                                     const Mis2Options& opts = {});

}  // namespace parmis::core
