#pragma once
/// \file coarsen.hpp
/// \brief Coarse (quotient) graph construction and the recursive
/// multilevel-coarsening driver.
///
/// Given an aggregation, the coarse graph has one vertex per aggregate and
/// an edge between two aggregates whenever any fine edge crosses them.
/// This is the structure Algorithm 4 colors for cluster multicolor
/// Gauss-Seidel, and — applied recursively — the coarsening loop used in
/// multilevel partitioning (Gilbert et al., the paper's §II/VII use case).

#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/mis2.hpp"
#include "graph/crs.hpp"

namespace parmis::core {

/// Quotient graph of `g` under `agg` (symmetric, loop-free, rows sorted).
[[nodiscard]] graph::CrsGraph coarse_graph(graph::GraphView g, const Aggregation& agg);

/// Member lists of an aggregation in CSR layout: members of aggregate `a`
/// are `members[member_offsets[a] .. member_offsets[a+1])`, each list
/// sorted ascending. Used by cluster Gauss-Seidel and the coarse builders.
struct AggregateMembers {
  std::vector<offset_t> offsets;
  std::vector<ordinal_t> members;
};

[[nodiscard]] AggregateMembers aggregate_members(const Aggregation& agg);

/// One level of a multilevel hierarchy.
struct CoarsenLevel {
  Aggregation aggregation;   ///< aggregation of the *previous* (finer) level
  graph::CrsGraph graph;     ///< the coarse graph it produced
};

/// Recursive coarsening: aggregate + contract until the graph has at most
/// `target_vertices` vertices or `max_levels` levels were produced or
/// coarsening stalls (< 5% reduction).
struct MultilevelOptions {
  ordinal_t target_vertices = 64;
  int max_levels = 64;
  /// Registry name of the per-level coarsening scheme (see
  /// `core/coarsener.hpp`): "mis2" (Algorithm 3, the default), "mis2-basic"
  /// (Algorithm 2), "hem", or any future registered scheme.
  std::string coarsener = "mis2";
  Mis2Options mis2;
};

struct MultilevelHierarchy {
  std::vector<CoarsenLevel> levels;

  /// Map a fine vertex of level 0 to its coarse vertex at the last level.
  [[nodiscard]] ordinal_t project(ordinal_t v) const {
    for (const CoarsenLevel& lvl : levels) {
      v = lvl.aggregation.labels[static_cast<std::size_t>(v)];
    }
    return v;
  }
};

/// Recursive coarsening through a caller-provided handle: every level's
/// aggregation reuses the handle's scratch, so only the per-level coarse
/// graphs themselves allocate. Since the unified multilevel engine landed
/// this is a thin adapter over `multilevel::Builder` (topology mode) that
/// splices the caller's handle into the build; hierarchies are unchanged
/// bit-for-bit.
[[nodiscard]] MultilevelHierarchy multilevel_coarsen(graph::GraphView g,
                                                     const MultilevelOptions& opts,
                                                     CoarsenHandle& handle);

/// Recursive coarsening with a transient handle.
[[nodiscard]] MultilevelHierarchy multilevel_coarsen(graph::GraphView g,
                                                     const MultilevelOptions& opts = {});

}  // namespace parmis::core
