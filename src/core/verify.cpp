#include "core/verify.hpp"

#include <cassert>

#include "parallel/parallel_reduce.hpp"

namespace parmis::core {

namespace {

/// Visits every vertex within distance <= k of v (excluding v itself unless
/// reachable by a cycle) until `pred` returns true; returns whether it did.
/// k is 1 or 2, so plain nested loops beat a BFS queue.
template <typename Pred>
bool any_within_k(graph::GraphView g, ordinal_t v, int k, const char* active, Pred&& pred) {
  for (ordinal_t w : g.row(v)) {
    if (active && !active[w]) continue;
    if (pred(w)) return true;
    if (k >= 2) {
      for (ordinal_t u : g.row(w)) {
        if (u == v) continue;
        if (active && !active[u]) continue;
        if (pred(u)) return true;
      }
    }
  }
  return false;
}

bool independent_impl(graph::GraphView g, std::span<const char> in_set, int k,
                      const char* active) {
  const std::int64_t violations = par::count_if(g.num_rows, [&](ordinal_t v) {
    if (!in_set[static_cast<std::size_t>(v)]) return false;
    if (active && !active[v]) return true;  // member outside the active set
    return any_within_k(g, v, k, active,
                        [&](ordinal_t u) { return in_set[static_cast<std::size_t>(u)] != 0; });
  });
  return violations == 0;
}

bool maximal_impl(graph::GraphView g, std::span<const char> in_set, int k, const char* active) {
  const std::int64_t addable = par::count_if(g.num_rows, [&](ordinal_t v) {
    if (in_set[static_cast<std::size_t>(v)]) return false;
    if (active && !active[v]) return false;
    return !any_within_k(g, v, k, active,
                         [&](ordinal_t u) { return in_set[static_cast<std::size_t>(u)] != 0; });
  });
  return addable == 0;
}

}  // namespace

bool is_distance_k_independent(graph::GraphView g, std::span<const char> in_set, int k) {
  assert(k == 1 || k == 2);
  assert(in_set.size() == static_cast<std::size_t>(g.num_rows));
  return independent_impl(g, in_set, k, nullptr);
}

bool is_distance_k_maximal(graph::GraphView g, std::span<const char> in_set, int k) {
  assert(k == 1 || k == 2);
  assert(in_set.size() == static_cast<std::size_t>(g.num_rows));
  return maximal_impl(g, in_set, k, nullptr);
}

bool verify_mis2(graph::GraphView g, std::span<const char> in_set) {
  return is_distance_k_independent(g, in_set, 2) && is_distance_k_maximal(g, in_set, 2);
}

bool verify_mis1(graph::GraphView g, std::span<const char> in_set) {
  return is_distance_k_independent(g, in_set, 1) && is_distance_k_maximal(g, in_set, 1);
}

bool verify_mis2_masked(graph::GraphView g, std::span<const char> in_set,
                        std::span<const char> active) {
  assert(in_set.size() == static_cast<std::size_t>(g.num_rows));
  assert(active.size() == static_cast<std::size_t>(g.num_rows));
  return independent_impl(g, in_set, 2, active.data()) &&
         maximal_impl(g, in_set, 2, active.data());
}

}  // namespace parmis::core
