#pragma once
/// \file status_tuple.hpp
/// \brief Compressed status tuples (paper §V-C).
///
/// Algorithm 1 tracks, per vertex, a 3-tuple (status, priority, ID) with
/// status IN < UNDECIDED < OUT, compared lexicographically. A straight
/// 3-field struct wastes memory and bandwidth; the paper packs the whole
/// tuple into one integer the width of a vertex ID:
///
///   IN  = 0,   OUT = max,   undecided = (priority << b) | (id + 1)
///
/// where b = ceil(log2(|V| + 2)) bits hold the ID (+1) and the remaining
/// high bits hold the priority. Integer comparison is then exactly the
/// lexicographic tuple comparison, ties are impossible (distinct IDs differ
/// in the low bits), and Eq. (1) of the paper shows no packed undecided
/// value can collide with IN or OUT. `TupleCodec` implements the packing;
/// `WideTuple` is the uncompressed layout kept for the Fig. 2 ablation and
/// for the Bell baseline.

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>

#include "common/config.hpp"

namespace parmis::core {

/// Default packed word: same width as vertex IDs, as in the paper.
using status_word_t = std::uint32_t;

/// Packer/unpacker for compressed status tuples over an unsigned `Word`.
template <typename Word = status_word_t>
class TupleCodec {
  static_assert(std::numeric_limits<Word>::is_integer && !std::numeric_limits<Word>::is_signed,
                "status words must be unsigned integers");

 public:
  static constexpr Word in_value = 0;
  static constexpr Word out_value = std::numeric_limits<Word>::max();

  /// Codec for graphs with `num_vertices` vertices. Requires
  /// `num_vertices + 2 <= 2^(bits of Word)` so IDs fit with the +1 offset.
  explicit constexpr TupleCodec(ordinal_t num_vertices)
      : id_bits_(bits_for(num_vertices)),
        id_mask_((id_bits_ >= word_bits) ? out_value : ((Word{1} << id_bits_) - 1)),
        priority_bits_(word_bits - id_bits_) {
    assert(num_vertices >= 0);
  }

  [[nodiscard]] constexpr int id_bits() const { return id_bits_; }
  [[nodiscard]] constexpr int priority_bits() const { return priority_bits_; }

  /// Pack an undecided tuple. The priority is truncated to the available
  /// high bits; the ID acts as the tiebreak in the low bits.
  [[nodiscard]] constexpr Word pack(std::uint64_t priority, ordinal_t id) const {
    const Word pri = priority_bits_ == 0
                         ? Word{0}
                         : static_cast<Word>(priority >> (64 - priority_bits_));
    return static_cast<Word>(pri << id_bits_) | static_cast<Word>(static_cast<Word>(id) + 1);
  }

  [[nodiscard]] constexpr ordinal_t id(Word t) const {
    assert(is_undecided(t));
    return static_cast<ordinal_t>((t & id_mask_) - 1);
  }

  [[nodiscard]] constexpr Word priority(Word t) const {
    assert(is_undecided(t));
    return static_cast<Word>(t >> id_bits_);
  }

  [[nodiscard]] static constexpr bool is_in(Word t) { return t == in_value; }
  [[nodiscard]] static constexpr bool is_out(Word t) { return t == out_value; }
  [[nodiscard]] static constexpr bool is_undecided(Word t) {
    return t != in_value && t != out_value;
  }

 private:
  static constexpr int word_bits = std::numeric_limits<Word>::digits;

  /// b = ceil(log2(n + 2)): smallest b with 2^b >= n + 2.
  static constexpr int bits_for(ordinal_t n) {
    const std::uint64_t need = static_cast<std::uint64_t>(n) + 2;
    return static_cast<int>(std::bit_width(need - 1));
  }

  int id_bits_;
  Word id_mask_;
  int priority_bits_;
};

/// Uncompressed 3-field tuple (status, priority, ID) — the representation
/// Bell's algorithm and the pre-"Packed Status" ablation stages use.
struct WideTuple {
  std::uint8_t status;  ///< 0 = IN, 1 = UNDECIDED, 2 = OUT
  std::uint32_t priority;
  ordinal_t id;

  static constexpr std::uint8_t kIn = 0;
  static constexpr std::uint8_t kUndecided = 1;
  static constexpr std::uint8_t kOut = 2;

  [[nodiscard]] static constexpr WideTuple in() { return {kIn, 0, 0}; }
  [[nodiscard]] static constexpr WideTuple out() {
    return {kOut, std::numeric_limits<std::uint32_t>::max(), max_ordinal};
  }
  [[nodiscard]] static constexpr WideTuple undecided(std::uint64_t priority, ordinal_t id) {
    return {kUndecided, static_cast<std::uint32_t>(priority >> 32), id};
  }

  friend constexpr bool operator==(const WideTuple& a, const WideTuple& b) {
    return a.status == b.status && a.priority == b.priority && a.id == b.id;
  }

  /// Lexicographic (status, priority, ID) order.
  friend constexpr bool operator<(const WideTuple& a, const WideTuple& b) {
    if (a.status != b.status) return a.status < b.status;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.id < b.id;
  }
};

}  // namespace parmis::core
