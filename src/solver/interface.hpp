#pragma once
/// \file interface.hpp
/// \brief The pluggable solver-stack interface: an abstract `Solver`, the
/// shared `SolveWorkspace`, and string-keyed `Solver` / `Preconditioner`
/// registries.
///
/// PR 1 made partitioning pluggable (`partition/interface.hpp`) and PR 2
/// did the same for coarsening (`core/coarsener.hpp`). This header closes
/// the loop one layer up, for the solvers the paper's coarsening exists to
/// serve (Tables V/VI): outer solvers ("cg", "gmres", "chebyshev") and
/// preconditioners ("none", "jacobi", "gs", "cluster-gs", "amg") sit behind
/// one interface each, are selected by name, and run through a reusable
/// `SolveHandle` (handle.hpp) that owns all iteration scratch. The "amg"
/// and "cluster-gs" preconditioners compose with any registered *coarsener*
/// by name, so the three registries stack:
///
///   SolveHandle("cg", "amg")  with  prec_options().amg.coarsener = "hem"
///
/// Every registered solver and preconditioner is deterministic: iteration
/// counts and solution vectors are bit-identical on the Serial and OpenMP
/// backends at any thread count.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mis2.hpp"
#include "graph/crs.hpp"
#include "solver/amg.hpp"
#include "solver/chebyshev.hpp"
#include "solver/options.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// All scratch any registered solver needs, owned by `SolveHandle` and
/// reused across solves. Full-length vectors live in a slot pool whose
/// capacities only grow, so warm solves perform zero heap allocations;
/// `grow_events` counts every capacity growth (the allocation telemetry
/// the zero-allocation tests assert on).
struct SolveWorkspace {
  /// Pool of n-sized vectors (CG state, the GMRES Krylov basis, Chebyshev
  /// temporaries). Slot k keeps its capacity across solves.
  std::vector<std::vector<scalar_t>> pool;
  /// GMRES small dense state (O(restart^2), matrix-size independent).
  std::vector<scalar_t> hess, cs, sn, g, y;
  /// Chebyshev solver state: the smoother built for the current matrix,
  /// invalidated when the matrix or the polynomial configuration changes.
  std::unique_ptr<ChebyshevSmoother> chebyshev;
  const graph::CrsMatrix* chebyshev_matrix = nullptr;
  ordinal_t chebyshev_rows = 0;
  offset_t chebyshev_entries = 0;
  int chebyshev_degree = 0;
  double chebyshev_eig_ratio = 0;

  // --- batched-solve state (block solvers and the looped fallback) -------
  /// Column gather/scatter scratch for the looped default `solve_batch`.
  std::vector<scalar_t> bcol, xcol;
  /// Per-column small state of the block solvers (O(k), solver-partitioned).
  std::vector<scalar_t> batch_scalars;
  /// Per-column integer state (phase machine positions, stop codes).
  std::vector<int> batch_ints;
  /// Per-column active mask handed to the masked multi-vector kernels.
  std::vector<char> batch_active;
  /// Per-column iteration guards (`IterGuard` holds no heap state, so
  /// clearing and refilling this vector is allocation-free once grown).
  std::vector<resilience::IterGuard> batch_guards;

  /// Cumulative allocation-event count: capacity growths of the pool and
  /// small arrays, plus Chebyshev smoother (re)builds (whose memory is
  /// excluded from capacity_bytes()). `SolveHandle` folds any in-solve
  /// movement of this counter into `stats().scratch_grows`.
  std::uint64_t grow_events = 0;

  /// Slot `slot` resized to `n` (capacity-preserving; grows only when the
  /// slot has never been this large). The span is valid until the slot is
  /// resized again.
  std::span<scalar_t> vec(std::size_t slot, std::size_t n);

  /// Capacity-preserving resize for the small dense arrays.
  void ensure_small(std::vector<scalar_t>& v, std::size_t n);
  void ensure_small(std::vector<int>& v, std::size_t n);

  /// Total heap capacity (bytes) currently held, excluding the Chebyshev
  /// smoother state. Stable across warm solves.
  [[nodiscard]] std::size_t capacity_bytes() const;
};

/// Abstract base every outer solver implements. Implementations are
/// stateless; all scratch comes from the workspace and all configuration
/// from the options, so one instance serves any number of handles.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name of this solver.
  [[nodiscard]] virtual std::string name() const = 0;

  /// False when solve() ignores `prec` (e.g. "chebyshev" carries its own
  /// diagonal scaling); `SolveHandle` skips the preconditioner build then.
  [[nodiscard]] virtual bool uses_preconditioner() const { return true; }

  /// Solve `a x = b` from the given initial `x`, writing the outcome into
  /// `result` (reusing its history capacity). `prec` may be null
  /// (unpreconditioned). The caller is responsible for pinning the
  /// execution context (`SolveHandle::solve` does).
  virtual void solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                     std::span<scalar_t> x, const IterOptions& opts,
                     const Preconditioner* prec, SolveWorkspace& ws,
                     IterResult& result) const = 0;

  /// Batched multi-RHS solve: `b` and `x` are n x k_count row-major
  /// multi-vectors, `result` carries one `IterResult` per column. Columns
  /// flagged `result.excluded[c]` are skipped entirely (their result and
  /// their lanes of `x` are left untouched). The default loops `solve`
  /// over gathered columns through workspace scratch — trivially
  /// bit-identical to k single solves; the block solvers override it with
  /// fused SpMM-based cores that preserve that bit-identity per column.
  virtual void solve_batch(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                           std::span<scalar_t> x, int k_count, const IterOptions& opts,
                           const Preconditioner* prec, SolveWorkspace& ws,
                           BatchResult& result) const;
};

/// Registry entry: a name, a one-line description, and a factory.
struct SolverSpec {
  std::string name;
  std::string description;
  std::function<std::unique_ptr<Solver>()> make;
};

/// All registered solvers, stable order (the Table V outer solver first).
const std::vector<SolverSpec>& solver_registry();

/// Names of all registered solvers, registry order.
[[nodiscard]] std::vector<std::string> solver_names();

/// Look up one spec by name; throws std::out_of_range if unknown.
const SolverSpec& find_solver(const std::string& name);

/// Construct a solver by registry name; throws std::out_of_range if unknown.
[[nodiscard]] std::unique_ptr<Solver> make_solver(const std::string& name);

// ------------------------------------------------------- preconditioners

/// Setup-time configuration for the registered preconditioners (each entry
/// reads only its own knobs).
struct PrecOptions {
  int sweeps = 1;                   ///< symmetric-sweep count ("gs", "cluster-gs")
  int jacobi_sweeps = 2;            ///< damped-Jacobi sweeps per apply ("jacobi")
  scalar_t jacobi_omega = 2.0 / 3.0;  ///< damping factor ("jacobi")
  std::string coarsener = "mis2";   ///< core Coarsener registry name ("cluster-gs")
  core::Mis2Options mis2;           ///< MIS-2 configuration ("cluster-gs")
  AmgOptions amg;                   ///< hierarchy configuration ("amg"; its
                                    ///< `coarsener` field composes with the
                                    ///< core registry too)
};

/// Registry entry for a preconditioner: unlike solvers, preconditioners
/// carry matrix-dependent setup state, so the factory takes the matrix,
/// the options, and the execution context the setup runs under.
struct PreconditionerSpec {
  std::string name;
  std::string description;
  /// True when setup runs a coarsening scheme, i.e. the entry composes
  /// with the core `Coarsener` registry (drivers fan these entries out
  /// over --coarseners).
  bool uses_coarsener = false;
  std::function<std::unique_ptr<Preconditioner>(const graph::CrsMatrix&, const PrecOptions&,
                                                const Context&)>
      make;
};

/// All registered preconditioners, stable order ("none" first, then the
/// smoothers, then the paper's cluster method and the multigrid hierarchy).
const std::vector<PreconditionerSpec>& preconditioner_registry();

/// Names of all registered preconditioners, registry order.
[[nodiscard]] std::vector<std::string> preconditioner_names();

/// Look up one spec by name; throws std::out_of_range if unknown.
const PreconditionerSpec& find_preconditioner(const std::string& name);

/// Build a preconditioner for `a` by registry name; throws
/// std::out_of_range if unknown.
[[nodiscard]] std::unique_ptr<Preconditioner> make_preconditioner(
    const std::string& name, const graph::CrsMatrix& a, const PrecOptions& opts = {},
    const Context& ctx = Context::default_ctx());

// ------------------------------------------------- workspace-based cores

/// Shared solve prologue: reset `result` (keeping its history capacity),
/// pre-reserve the history when tracking is on, and handle the zero-rhs
/// early-out (x = 0, converged). Returns false when the solve is already
/// complete; on true, `bnorm` holds ||b|| > 0.
bool begin_solve(const IterOptions& opts, std::span<const scalar_t> b, std::span<scalar_t> x,
                 SolveWorkspace& ws, IterResult& result, scalar_t& bnorm);

/// The solver cores behind the registry entries, operating entirely on
/// workspace scratch (implemented next to their free-function shims in
/// cg.cpp / gmres.cpp / chebyshev.cpp).
void cg_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              const IterOptions& opts, const Preconditioner* prec, SolveWorkspace& ws,
              IterResult& result);
void gmres_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                 std::span<scalar_t> x, const IterOptions& opts, const Preconditioner* prec,
                 SolveWorkspace& ws, IterResult& result);
void chebyshev_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                     std::span<scalar_t> x, const IterOptions& opts, SolveWorkspace& ws,
                     IterResult& result);

/// Fused block Krylov cores behind the "block-cg" / "block-gmres" registry
/// entries (block_krylov.cpp): K right-hand sides advance in lockstep over
/// one SpMM per iteration, each column running its own scalar recurrence so
/// its iterates match the single-RHS core bit for bit. Converged or failed
/// columns are deflated (frozen via the masked multi-vector kernels) and
/// carry per-column status/failure in `result`.
void block_cg_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                    std::span<scalar_t> x, int k_count, const IterOptions& opts,
                    const Preconditioner* prec, SolveWorkspace& ws, BatchResult& result);
void block_gmres_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                       std::span<scalar_t> x, int k_count, const IterOptions& opts,
                       const Preconditioner* prec, SolveWorkspace& ws, BatchResult& result);

}  // namespace parmis::solver
