#pragma once
/// \file vector_ops.hpp
/// \brief Dense vector kernels with deterministic reductions.
///
/// Krylov iteration counts must not drift with the thread count (that would
/// break the determinism property Tables V/VI report), so all dot products
/// and norms go through the fixed-chunk deterministic reduction in
/// `parallel/parallel_reduce.hpp`.

#include <span>
#include <vector>

#include "common/config.hpp"

namespace parmis::solver {

/// Deterministic dot product.
[[nodiscard]] scalar_t dot(std::span<const scalar_t> a, std::span<const scalar_t> b);

/// Deterministic Euclidean norm.
[[nodiscard]] scalar_t norm2(std::span<const scalar_t> a);

/// y = alpha * x + beta * y.
void axpby(scalar_t alpha, std::span<const scalar_t> x, scalar_t beta, std::span<scalar_t> y);

/// y = x.
void copy(std::span<const scalar_t> x, std::span<scalar_t> y);

/// x = value everywhere.
void fill(std::span<scalar_t> x, scalar_t value);

/// x *= alpha.
void scale(std::span<scalar_t> x, scalar_t alpha);

/// Deterministic pseudo-random vector in [-1, 1) (counter-based), for
/// right-hand sides and initial guesses in tests/benches.
[[nodiscard]] std::vector<scalar_t> random_vector(ordinal_t n, std::uint64_t seed);

/// `random_vector` into caller-owned storage — the allocation-free variant
/// the serving runtime uses for per-request right-hand sides.
void random_fill(std::span<scalar_t> v, std::uint64_t seed);

}  // namespace parmis::solver
