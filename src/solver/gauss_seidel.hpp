#pragma once
/// \file gauss_seidel.hpp
/// \brief Gauss-Seidel sweeps: serial reference and point multicolor
/// (Deveci et al., the paper's prior-art preconditioner).
///
/// Classical GS updates `x_i = (b_i - sum_{j != i} a_ij x_j) / a_ii` in row
/// order and is inherently sequential. Point multicolor GS colors the
/// matrix graph and updates each color class in parallel: rows of one color
/// share no off-diagonal coupling, so the parallel update within a class is
/// exactly GS restricted to that ordering. The cost is more solver
/// iterations than sequential GS — the gap cluster multicolor GS
/// (cluster_gs.hpp) closes.

#include <span>
#include <vector>

#include "coloring/d1_coloring.hpp"
#include "graph/crs.hpp"
#include "parallel/context.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

enum class SweepDirection { Forward, Backward };

/// One serial Gauss-Seidel sweep (reference implementation).
void serial_gs_sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                     std::span<scalar_t> x, SweepDirection dir);

/// Point multicolor Gauss-Seidel setup: a distance-1 coloring of A's
/// graph plus the color classes and inverted diagonal.
class PointMulticolorGS {
 public:
  /// Color A's adjacency (parallel, deterministic) and cache the classes;
  /// setup runs under `ctx`.
  explicit PointMulticolorGS(const graph::CrsMatrix& a,
                             const Context& ctx = Context::default_ctx());

  /// One multicolor sweep: colors ascending (Forward) or descending
  /// (Backward); rows within a color update in parallel.
  void sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
             SweepDirection dir) const;

  /// Symmetric sweep (forward then backward) — "point multicolor SGS".
  void symmetric_sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                       std::span<scalar_t> x) const;

  [[nodiscard]] ordinal_t num_colors() const { return coloring_.num_colors; }
  [[nodiscard]] double setup_seconds() const { return setup_seconds_; }

 private:
  coloring::Coloring coloring_;
  coloring::ColorSets sets_;
  std::vector<scalar_t> inv_diag_;
  double setup_seconds_{0};
};

/// Preconditioner adapter: z = M^{-1} r approximated by `sweeps` symmetric
/// point-multicolor GS sweeps on A z = r starting from z = 0.
class PointGsPreconditioner final : public Preconditioner {
 public:
  PointGsPreconditioner(const graph::CrsMatrix& a, int sweeps = 1,
                        const Context& ctx = Context::default_ctx())
      : a_(a), gs_(a, ctx), sweeps_(sweeps) {}

  void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const override;
  [[nodiscard]] std::string name() const override { return "point-multicolor-sgs"; }
  [[nodiscard]] const PointMulticolorGS& gs() const { return gs_; }

 private:
  const graph::CrsMatrix& a_;
  PointMulticolorGS gs_;
  int sweeps_;
};

}  // namespace parmis::solver
