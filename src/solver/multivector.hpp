#pragma once
/// \file multivector.hpp
/// \brief Dense multi-vector kernels for batched (multi-RHS) solving.
///
/// A multi-vector is K column vectors stored row-major: element (i, c) of
/// an n x K multi-vector `v` lives at `v[i * K + c]`. The layout keeps the
/// K values of one row on the same cache line, which is what lets `spmm`
/// amortize its random accesses — and it makes every kernel here trivially
/// columnwise-independent: column c of any result depends only on column c
/// of the inputs.
///
/// Bit-identity contract (the batched analogue of vector_ops.hpp): column c
/// of every kernel produces exactly the bits the corresponding
/// single-vector kernel would produce on the gathered column. For the
/// elementwise ops that is immediate; for `mv_dot`/`mv_norms` it holds
/// because the reduction mirrors `par::parallel_reduce` exactly — the same
/// fixed `reduce_chunk` row chunks, serial in-order accumulation per chunk
/// per column, and a serial per-column combine in ascending chunk order.
///
/// Masked variants take a per-column `active` byte mask and leave inactive
/// columns' lanes untouched — the deflation mechanism of the block Krylov
/// solvers. Freezing is an explicit branch, never a zero coefficient:
/// `x + 0 * p` can flip the sign of a negative zero and `0 * NaN` is NaN,
/// either of which would let a frozen (possibly poisoned) column perturb
/// its own final bits.

#include <span>

#include "common/config.hpp"

namespace parmis::solver {

/// out[c] = dot(a[:,c], b[:,c]) for all K columns in one fused pass.
/// Bit-identical per column to `dot` on the gathered columns.
void mv_dot(std::span<const scalar_t> a, std::span<const scalar_t> b, ordinal_t n, int k_count,
            std::span<scalar_t> out);

/// out[c] = ||a[:,c]||_2, fused; bit-identical per column to `norm2`.
void mv_norms(std::span<const scalar_t> a, ordinal_t n, int k_count, std::span<scalar_t> out);

/// y[:,c] = alpha * x[:,c] + beta * y[:,c] for every column (scalar
/// coefficients). Mirrors `axpby` per lane.
void mv_axpby(scalar_t alpha, std::span<const scalar_t> x, scalar_t beta, std::span<scalar_t> y,
              ordinal_t n, int k_count);

/// Masked `mv_axpby`: only columns with `active[c] != 0` are updated.
void mv_axpby_masked(scalar_t alpha, std::span<const scalar_t> x, scalar_t beta,
                     std::span<scalar_t> y, ordinal_t n, int k_count,
                     std::span<const char> active);

/// y[:,c] = alpha[c] * x[:,c] + y[:,c] for active columns (per-column
/// coefficient; the block-CG x/r update shape).
void mv_axpy_cols(std::span<const scalar_t> alpha, std::span<const scalar_t> x,
                  std::span<scalar_t> y, ordinal_t n, int k_count,
                  std::span<const char> active);

/// y[:,c] = x[:,c] + beta[c] * y[:,c] for active columns (the block-CG
/// direction update p = z + beta p).
void mv_xpay_cols(std::span<const scalar_t> x, std::span<const scalar_t> beta,
                  std::span<scalar_t> y, ordinal_t n, int k_count,
                  std::span<const char> active);

/// y[:,c] *= s[c] for active columns.
void mv_scale_cols(std::span<scalar_t> y, std::span<const scalar_t> s, ordinal_t n, int k_count,
                   std::span<const char> active);

/// y = x (all lanes).
void mv_copy(std::span<const scalar_t> x, std::span<scalar_t> y);

/// y[:,c] = x[:,c] for active columns.
void mv_copy_cols(std::span<const scalar_t> x, std::span<scalar_t> y, ordinal_t n, int k_count,
                  std::span<const char> active);

/// y[:,c] = value for active columns.
void mv_fill_cols(std::span<scalar_t> y, scalar_t value, ordinal_t n, int k_count,
                  std::span<const char> active);

/// y[:,col] = value for one column.
void mv_fill_col(std::span<scalar_t> y, scalar_t value, ordinal_t n, int k_count, int col);

/// out = src[:,col] (contiguous copy of one column).
void gather_column(std::span<const scalar_t> src, ordinal_t n, int k_count, int col,
                   std::span<scalar_t> out);

/// dst[:,col] = in.
void scatter_column(std::span<const scalar_t> in, ordinal_t n, int k_count, int col,
                    std::span<scalar_t> dst);

}  // namespace parmis::solver
