#include "solver/cluster_gs.hpp"

#include <cassert>

#include "common/timer.hpp"
#include "graph/ops.hpp"
#include "parallel/parallel_for.hpp"
#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

ClusterMulticolorGS::ClusterMulticolorGS(const graph::CrsMatrix& a, Coarsening coarsening,
                                         const core::Mis2Options& mis2_opts)
    : ClusterMulticolorGS(a, coarsening == Coarsening::Mis2Agg ? "mis2" : "mis2-basic",
                          mis2_opts) {}

ClusterMulticolorGS::ClusterMulticolorGS(const graph::CrsMatrix& a, const std::string& coarsener,
                                         const core::Mis2Options& mis2_opts, const Context& ctx) {
  assert(a.num_rows == a.num_cols);
  Timer timer;
  Context::Scope scope(ctx);  // coloring + member setup run under ctx too

  // Aggregate over the loop-free adjacency (matrix rows carry diagonals),
  // through the registry-named coarsener.
  const graph::CrsGraph adj = graph::remove_self_loops(graph::GraphView(a));
  core::CoarsenHandle handle(mis2_opts, ctx);
  core::CoarsenOptions copts;
  copts.mis2 = mis2_opts;
  core::find_coarsener(coarsener).make()->run(adj, {}, handle, copts);
  aggregation_ = handle.take_aggregation();
  members_ = core::aggregate_members(aggregation_);

  const graph::CrsGraph coarse = core::coarse_graph(adj, aggregation_);
  coloring_ = coloring::parallel_d1_coloring(coarse);
  cluster_sets_ = coloring::color_sets(coloring_);
  inv_diag_ = inverted_diagonal(a);
  setup_seconds_ = timer.seconds();
}

void ClusterMulticolorGS::sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                                std::span<scalar_t> x, SweepDirection dir) const {
  const ordinal_t nc = coloring_.num_colors;
  for (ordinal_t step = 0; step < nc; ++step) {
    const ordinal_t color = dir == SweepDirection::Forward ? step : nc - 1 - step;
    const offset_t begin = cluster_sets_.offsets[static_cast<std::size_t>(color)];
    const offset_t count = cluster_sets_.offsets[static_cast<std::size_t>(color) + 1] - begin;
    // Clusters of one color share no coupling: parallel across clusters,
    // classical (sequential) GS inside each cluster. Each iteration is a
    // whole cluster, so parallelize even for a handful of them.
    par::parallel_for_grained(static_cast<ordinal_t>(count), 2, [&](ordinal_t k) {
      const ordinal_t cluster =
          cluster_sets_.vertices[static_cast<std::size_t>(begin + k)];
      const offset_t mb = members_.offsets[static_cast<std::size_t>(cluster)];
      const offset_t me = members_.offsets[static_cast<std::size_t>(cluster) + 1];
      if (dir == SweepDirection::Forward) {
        for (offset_t m = mb; m < me; ++m) {
          const ordinal_t i = members_.members[static_cast<std::size_t>(m)];
          scalar_t acc = b[static_cast<std::size_t>(i)];
          for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
            const ordinal_t col = a.entries[static_cast<std::size_t>(j)];
            if (col != i) acc -= a.values[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(col)];
          }
          x[static_cast<std::size_t>(i)] = acc * inv_diag_[static_cast<std::size_t>(i)];
        }
      } else {
        // Row order within the cluster reverses on the backward sweep.
        for (offset_t m = me - 1; m >= mb; --m) {
          const ordinal_t i = members_.members[static_cast<std::size_t>(m)];
          scalar_t acc = b[static_cast<std::size_t>(i)];
          for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
            const ordinal_t col = a.entries[static_cast<std::size_t>(j)];
            if (col != i) acc -= a.values[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(col)];
          }
          x[static_cast<std::size_t>(i)] = acc * inv_diag_[static_cast<std::size_t>(i)];
        }
      }
    });
  }
}

void ClusterMulticolorGS::symmetric_sweep(const graph::CrsMatrix& a,
                                          std::span<const scalar_t> b,
                                          std::span<scalar_t> x) const {
  sweep(a, b, x, SweepDirection::Forward);
  sweep(a, b, x, SweepDirection::Backward);
}

void ClusterGsPreconditioner::apply(std::span<const scalar_t> r,
                                    std::span<scalar_t> z) const {
  fill(z, 0.0);
  for (int s = 0; s < sweeps_; ++s) {
    gs_.symmetric_sweep(a_, r, z);
  }
}

}  // namespace parmis::solver
