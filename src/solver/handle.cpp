#include "solver/handle.hpp"

#include "check/alloc_guard.hpp"
#include "check/check.hpp"
#include "check/validate.hpp"
#include "obs/trace.hpp"

namespace parmis::solver {

SolveHandle::SolveHandle(const std::string& solver, const std::string& prec,
                         const Context& ctx)
    : ctx_(ctx) {
  set_solver(solver);
  set_preconditioner(prec);
}

void SolveHandle::set_solver(const std::string& name) {
  solver_ = make_solver(name);  // validates: throws std::out_of_range if unknown
  solver_name_ = name;
}

void SolveHandle::set_preconditioner(const std::string& name) {
  (void)find_preconditioner(name);  // validate before dropping cached state
  prec_name_ = name;
  invalidate();
}

void SolveHandle::set_context(const Context& ctx) {
  ctx_ = ctx;
  invalidate();
}

void SolveHandle::invalidate() {
  prec_.reset();
  prec_matrix_ = nullptr;
  prec_rows_ = 0;
  prec_entries_ = 0;
  // The Chebyshev smoother is matrix-dependent setup state too (stale
  // inv-diagonal / λmax if the matrix values changed in place).
  ws_.chebyshev.reset();
  ws_.chebyshev_matrix = nullptr;
  ws_.chebyshev_rows = 0;
  ws_.chebyshev_entries = 0;
}

void SolveHandle::ensure_solver() {
  if (!solver_) solver_ = make_solver(solver_name_);
}

void SolveHandle::ensure_preconditioner(const graph::CrsMatrix& a) {
  if (prec_name_ == "none") {
    // The null-prec fast path inside the solvers is bit-identical to
    // applying the identity; skip the object entirely.
    prec_.reset();
    prec_matrix_ = &a;
    prec_rows_ = a.num_rows;
    prec_entries_ = a.num_entries();
    return;
  }
  const bool warm = prec_ && prec_matrix_ == &a && prec_rows_ == a.num_rows &&
                    prec_entries_ == a.num_entries();
  if (warm) return;
  PARMIS_SPAN("solver.prec_setup");
  prec_ = make_preconditioner(prec_name_, a, prec_opts_, ctx_);
  prec_matrix_ = &a;
  prec_rows_ = a.num_rows;
  prec_entries_ = a.num_entries();
  ++stats_.prec_setups;
}

void SolveHandle::setup(const graph::CrsMatrix& a) {
  Context::Scope scope(ctx_);
  ensure_preconditioner(a);
}

const IterResult& SolveHandle::solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                                     std::span<scalar_t> x, const IterOptions& opts) {
  const Context ctx = opts.ctx ? *opts.ctx : ctx_;
  Context::Scope scope(ctx);
  PARMIS_CHECK_OK(check::validate(a, {.structure = {}, .require_finite = true,
                                      .require_square = true}));
  PARMIS_CHECK(b.size() == static_cast<std::size_t>(a.num_rows));
  PARMIS_CHECK(x.size() == static_cast<std::size_t>(a.num_rows));
  ensure_solver();
  // Solvers that ignore preconditioning ("chebyshev") skip the build — an
  // AMG setup nobody applies is the most expensive no-op in the stack.
  if (solver_->uses_preconditioner()) ensure_preconditioner(a);
  const std::size_t bytes_before = scratch_bytes();
  const std::uint64_t grows_before = ws_.grow_events;
  const std::uint64_t setups_before = stats_.prec_setups;
  obs::Span span("solver.solve");
  span.arg("rows", a.num_rows);
  check::AllocGuard guard;
  solver_->solve(a, b, x, opts, prec_.get(), ws_, result_);
  span.arg("iterations", result_.iterations);
  ++stats_.solves;
  stats_.iterations += static_cast<std::uint64_t>(result_.iterations);
  if (result_.converged) ++stats_.converged;
  // grow_events additionally catches allocations capacity_bytes() cannot
  // see (the Chebyshev smoother rebuild).
  const bool grew = scratch_bytes() > bytes_before || ws_.grow_events > grows_before;
  if (grew) ++stats_.scratch_grows;
  // Warm-solve zero-allocation contract, enforced at the allocator: once
  // scratch and preconditioner are warm, a repeat solve must not allocate.
  // (Tracing is exempt: obs event blocks allocate, orthogonally to the
  // solver path.)
  PARMIS_CHECK_MSG(grew || stats_.prec_setups > setups_before || obs::tracing_enabled() ||
                       guard.allocations() == 0,
                   "warm solve allocated");
  // A non-converged solve may legitimately hold a diverged iterate; only a
  // converged result is contractually finite.
  PARMIS_CHECK_MSG(!result_.converged || check::all_finite(x),
                   "converged solve produced non-finite solution entries");
  return result_;
}

std::size_t SolveHandle::scratch_bytes() const {
  return ws_.capacity_bytes() + result_.history.capacity() * sizeof(double);
}

}  // namespace parmis::solver
