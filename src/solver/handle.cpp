#include "solver/handle.hpp"

#include <cmath>
#include <new>
#include <stdexcept>

#include "check/alloc_guard.hpp"
#include "check/check.hpp"
#include "check/validate.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

SolveHandle::SolveHandle(const std::string& solver, const std::string& prec,
                         const Context& ctx)
    : ctx_(ctx) {
  set_solver(solver);
  set_preconditioner(prec);
}

void SolveHandle::set_solver(const std::string& name) {
  solver_ = make_solver(name);  // validates: throws std::out_of_range if unknown
  solver_name_ = name;
}

void SolveHandle::set_preconditioner(const std::string& name) {
  (void)find_preconditioner(name);  // validate before dropping cached state
  prec_name_ = name;
  invalidate();
}

void SolveHandle::set_context(const Context& ctx) {
  ctx_ = ctx;
  invalidate();
}

void SolveHandle::set_fallback(const std::string& spec) {
  set_fallback(resilience::FallbackPolicy::parse(spec));
}

void SolveHandle::set_fallback(resilience::FallbackPolicy policy) {
  // Validate every registry name now, where the registries are visible —
  // a typo should fail at configuration time, not mid-chain.
  for (const resilience::FallbackPolicy::Attempt& entry : policy.chain) {
    (void)find_solver(entry.solver);
    (void)find_preconditioner(entry.prec);
  }
  fallback_ = std::move(policy);
}

void SolveHandle::invalidate() {
  prec_.reset();
  prec_matrix_ = nullptr;
  prec_rows_ = 0;
  prec_entries_ = 0;
  // The Chebyshev smoother is matrix-dependent setup state too (stale
  // inv-diagonal / λmax if the matrix values changed in place).
  ws_.chebyshev.reset();
  ws_.chebyshev_matrix = nullptr;
  ws_.chebyshev_rows = 0;
  ws_.chebyshev_entries = 0;
}

std::unique_ptr<Preconditioner> SolveHandle::release_preconditioner() {
  std::unique_ptr<Preconditioner> out = std::move(prec_);
  invalidate();
  return out;
}

void SolveHandle::adopt_preconditioner(std::unique_ptr<Preconditioner> p,
                                       const graph::CrsMatrix& a) {
  invalidate();
  if (!p) return;
  prec_ = std::move(p);
  prec_matrix_ = &a;
  prec_rows_ = a.num_rows;
  prec_entries_ = a.num_entries();
}

void SolveHandle::ensure_solver() {
  if (!solver_) solver_ = make_solver(solver_name_);
}

void SolveHandle::ensure_preconditioner(const graph::CrsMatrix& a) {
  if (prec_name_ == "none") {
    // The null-prec fast path inside the solvers is bit-identical to
    // applying the identity; skip the object entirely.
    prec_.reset();
    prec_matrix_ = &a;
    prec_rows_ = a.num_rows;
    prec_entries_ = a.num_entries();
    return;
  }
  const bool warm = prec_ && prec_matrix_ == &a && prec_rows_ == a.num_rows &&
                    prec_entries_ == a.num_entries();
  if (warm) return;
  PARMIS_SPAN("solver.prec_setup");
  prec_ = make_preconditioner(prec_name_, a, prec_opts_, ctx_);
  prec_matrix_ = &a;
  prec_rows_ = a.num_rows;
  prec_entries_ = a.num_entries();
  ++stats_.prec_setups;
}

void SolveHandle::setup(const graph::CrsMatrix& a) {
  Context::Scope scope(ctx_);
  ensure_preconditioner(a);
}

resilience::SolveStatus SolveHandle::run_attempt(const graph::CrsMatrix& a,
                                                 std::span<const scalar_t> b,
                                                 std::span<scalar_t> x, const IterOptions& opts,
                                                 const std::string& sname,
                                                 const std::string& pname,
                                                 bool& used_transient) {
  obs::Timer attempt_timer;
  resilience::SolveStatus status = resilience::SolveStatus::MaxIterations;
  resilience::FailureInfo failure;
  bool ran = false;
  try {
    // Resolve the solver: the handle's cached instance when the name
    // matches, a transient otherwise (chain entries diverging from the
    // handle's configuration).
    std::unique_ptr<Solver> transient_solver;
    Solver* solver = nullptr;
    if (sname == solver_name_) {
      ensure_solver();
      solver = solver_.get();
    } else {
      transient_solver = make_solver(sname);
      solver = transient_solver.get();
      used_transient = true;
    }
    // Solvers that ignore preconditioning ("chebyshev") skip the build — an
    // AMG setup nobody applies is the most expensive no-op in the stack.
    std::unique_ptr<Preconditioner> transient_prec;
    const Preconditioner* prec = nullptr;
    if (solver->uses_preconditioner() && pname != "none") {
      if (pname == prec_name_) {
        ensure_preconditioner(a);
        prec = prec_.get();
      } else {
        PARMIS_SPAN("solver.prec_setup.transient");
        transient_prec = make_preconditioner(pname, a, prec_opts_, ctx_);
        prec = transient_prec.get();
        used_transient = true;
        ++stats_.prec_setups;
      }
    }
    solver->solve(a, b, x, opts, prec, ws_, result_);
    status = result_.status;
    failure = result_.failure;
    ran = true;
  } catch (const check::CheckError&) {
    throw;  // invariant violations are bugs, not solve outcomes
  } catch (const resilience::SolveError& e) {
    status = e.status();
    failure = e.info();
  } catch (const std::bad_alloc&) {
    status = resilience::SolveStatus::SetupFailed;
    failure = resilience::FailureInfo{"setup", "setup.allocation", -1, -1};
  } catch (const std::exception&) {
    status = resilience::SolveStatus::SetupFailed;
    failure = resilience::FailureInfo{"setup", "setup.exception", -1, -1};
  }
  AttemptInfo& rec = result_.attempts.emplace_back();
  rec.solver = sname;
  rec.prec = pname;
  rec.status = status;
  rec.failure = failure;
  rec.iterations = ran ? result_.iterations : 0;
  rec.relative_residual = ran ? result_.relative_residual : 0.0;
  rec.seconds = attempt_timer.seconds();
  return status;
}

const IterResult& SolveHandle::solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                                     std::span<scalar_t> x, const IterOptions& opts) {
  const Context ctx = opts.ctx ? *opts.ctx : ctx_;
  Context::Scope scope(ctx);
  PARMIS_CHECK_OK(check::validate(a, {.structure = {}, .require_finite = true,
                                      .require_square = true}));
  PARMIS_CHECK(b.size() == static_cast<std::size_t>(a.num_rows));
  PARMIS_CHECK(x.size() == static_cast<std::size_t>(a.num_rows));
  result_.attempts.clear();  // keeps capacity: warm solves stay allocation-free

  // Up-front input validation: a NaN/Inf in b or the initial guess would
  // otherwise surface as a confusing mid-iteration Breakdown (or worse,
  // converge the zero-rhs early-out against a poisoned norm).
  std::int64_t bad = check::first_non_finite(b);
  const char* reason = "input.b.nonfinite";
  if (bad < 0) {
    bad = check::first_non_finite(x);
    reason = "input.x0.nonfinite";
  }
  if (bad >= 0) {
    result_.iterations = 0;
    result_.relative_residual = 0.0;
    result_.converged = false;
    result_.history.clear();
    result_.status = resilience::SolveStatus::NonFiniteInput;
    result_.failure = resilience::FailureInfo{"input", reason, -1, bad};
    ++stats_.solves;
    ++stats_.failures;
    return result_;
  }

  const std::size_t bytes_before = scratch_bytes();
  const std::uint64_t grows_before = ws_.grow_events;
  const std::uint64_t setups_before = stats_.prec_setups;
  obs::Span span("solver.solve");
  span.arg("rows", a.num_rows);

  // A configured fallback chain replaces the handle's solver/prec
  // selection; retries restart from the original initial guess so a
  // poisoned iterate never leaks into the next attempt.
  const bool chained = !fallback_.empty();
  const std::size_t budget = chained ? fallback_.budget() : 1;
  if (chained) {
    ws_.ensure_small(x0_, x.size());
    copy(x, std::span<scalar_t>(x0_));
  }

  obs::Timer chain_timer;
  bool used_transient = false;
  std::uint64_t total_iterations = 0;
  check::AllocGuard guard;
  for (std::size_t attempt = 0; attempt < budget; ++attempt) {
    const std::string& sname = chained ? fallback_.chain[attempt].solver : solver_name_;
    const std::string& pname = chained ? fallback_.chain[attempt].prec : prec_name_;
    IterOptions aopts = opts;
    if (opts.timeout_ms > 0) {
      // The wall-clock budget covers the whole chain: each attempt gets
      // what is left, and an exhausted budget synthesizes a Timeout
      // attempt without paying for another setup.
      const double left = opts.timeout_ms - chain_timer.milliseconds();
      if (left <= 0) {
        AttemptInfo& rec = result_.attempts.emplace_back();
        rec.solver = sname;
        rec.prec = pname;
        rec.status = resilience::SolveStatus::Timeout;
        rec.failure = resilience::FailureInfo{"setup", "solve.deadline.chain", -1, -1};
        rec.iterations = 0;
        rec.relative_residual = 0.0;
        rec.seconds = 0.0;
        break;
      }
      aopts.timeout_ms = left;
    }
    if (attempt > 0) {
      copy(std::span<const scalar_t>(x0_), x);
      ++stats_.fallback_attempts;
    }
    const resilience::SolveStatus s = run_attempt(a, b, x, aopts, sname, pname, used_transient);
    total_iterations += static_cast<std::uint64_t>(result_.attempts.back().iterations);
    if (s == resilience::SolveStatus::Converged) break;
    // Status-conditional fallback: the entry's on: clause decides whether
    // this failure class is worth retrying down the chain.
    if (chained && !fallback_.chain[attempt].allows_retry(s)) break;
  }

  const AttemptInfo& last = result_.attempts.back();
  result_.status = last.status;
  result_.failure = last.failure;
  result_.converged = last.status == resilience::SolveStatus::Converged;
  result_.iterations = last.iterations;
  result_.relative_residual = last.relative_residual;

  span.arg("iterations", result_.iterations);
  ++stats_.solves;
  stats_.iterations += total_iterations;
  if (result_.converged) {
    ++stats_.converged;
  } else {
    ++stats_.failures;
  }
  // grow_events additionally catches allocations capacity_bytes() cannot
  // see (the Chebyshev smoother rebuild).
  const bool grew = scratch_bytes() > bytes_before || ws_.grow_events > grows_before;
  if (grew) ++stats_.scratch_grows;
  // Warm-solve zero-allocation contract, enforced at the allocator: once
  // scratch and preconditioner are warm, a repeat solve must not allocate.
  // Exempt: tracing (obs event blocks allocate orthogonally), transient
  // chain solvers/preconditioners, and failing solves (exception machinery
  // and error messages allocate — the contract covers the happy path).
  PARMIS_CHECK_MSG(grew || stats_.prec_setups > setups_before || obs::tracing_enabled() ||
                       used_transient || resilience::is_failure(result_.status) ||
                       guard.allocations() == 0,
                   "warm solve allocated");
  // A non-converged solve may legitimately hold a diverged iterate; only a
  // converged result is contractually finite.
  PARMIS_CHECK_MSG(!result_.converged || check::all_finite(x),
                   "converged solve produced non-finite solution entries");
  return result_;
}

const BatchResult& SolveHandle::solve_batch(const graph::CrsMatrix& a,
                                            std::span<const scalar_t> b, std::span<scalar_t> x,
                                            int k_count, const IterOptions& opts) {
  const Context ctx = opts.ctx ? *opts.ctx : ctx_;
  Context::Scope scope(ctx);
  PARMIS_CHECK_OK(check::validate(a, {.structure = {}, .require_finite = true,
                                      .require_square = true}));
  PARMIS_CHECK(k_count > 0);
  const std::size_t n = static_cast<std::size_t>(a.num_rows);
  const std::size_t uk = static_cast<std::size_t>(k_count);
  PARMIS_CHECK(b.size() == n * uk);
  PARMIS_CHECK(x.size() == n * uk);

  batch_result_.reset(k_count);
  for (int c = 0; c < k_count; ++c) {
    batch_result_.results[static_cast<std::size_t>(c)].attempts.clear();
  }

  // Per-column input validation: a poisoned column is excluded — finalized
  // here with NonFiniteInput, lanes left untouched — while its batchmates
  // solve normally (the per-RHS isolation contract).
  for (int c = 0; c < k_count; ++c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    std::int64_t bad = -1;
    const char* reason = "input.b.nonfinite";
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(b[i * uk + sc])) {
        bad = static_cast<std::int64_t>(i);
        break;
      }
    }
    if (bad < 0) {
      reason = "input.x0.nonfinite";
      for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(x[i * uk + sc])) {
          bad = static_cast<std::int64_t>(i);
          break;
        }
      }
    }
    if (bad < 0) continue;
    batch_result_.excluded[sc] = 1;
    IterResult& r = batch_result_.results[sc];
    r.iterations = 0;
    r.relative_residual = 0.0;
    r.converged = false;
    r.history.clear();
    r.status = resilience::SolveStatus::NonFiniteInput;
    r.failure = resilience::FailureInfo{"input", reason, -1, bad};
  }

  const std::size_t bytes_before = scratch_bytes();
  const std::uint64_t grows_before = ws_.grow_events;
  const std::uint64_t setups_before = stats_.prec_setups;
  obs::Span span("solver.solve_batch");
  span.arg("rows", a.num_rows);
  span.arg("batch", k_count);

  obs::Timer timer;
  check::AllocGuard guard;
  ensure_solver();
  bool prec_primed = false;
  if (solver_->uses_preconditioner() && prec_name_ != "none") {
    ensure_preconditioner(a);
    // Pre-size the preconditioner's internal multi-vector scratch for this
    // batch width. A freshly built preconditioner (epoch swap, values
    // refresh) grows it here on its first batch — growth, like the
    // workspace pool's, is exempt from the warm zero-allocation contract.
    if (prec_) prec_primed = prec_->prepare_multi(a.num_rows, k_count);
  }
  try {
    solver_->solve_batch(a, b, x, k_count, opts, prec_.get(), ws_, batch_result_);
  } catch (const check::CheckError&) {
    throw;  // invariant violations are bugs, not solve outcomes
  } catch (const resilience::SolveError& e) {
    // A batch-wide throw (setup/workspace, not per-column iteration) lands
    // on every live column: none of them produced a usable iterate.
    for (int c = 0; c < k_count; ++c) {
      if (batch_result_.excluded[static_cast<std::size_t>(c)]) continue;
      IterResult& r = batch_result_.results[static_cast<std::size_t>(c)];
      r.converged = false;
      r.status = e.status();
      r.failure = e.info();
    }
  } catch (const std::bad_alloc&) {
    for (int c = 0; c < k_count; ++c) {
      if (batch_result_.excluded[static_cast<std::size_t>(c)]) continue;
      IterResult& r = batch_result_.results[static_cast<std::size_t>(c)];
      r.converged = false;
      r.status = resilience::SolveStatus::SetupFailed;
      r.failure = resilience::FailureInfo{"setup", "setup.allocation", -1, -1};
    }
  }
  const double seconds = timer.seconds();

  bool any_failure = false;
  std::uint64_t total_iterations = 0;
  for (int c = 0; c < k_count; ++c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    const IterResult& r = batch_result_.results[sc];
    if (resilience::is_failure(r.status)) any_failure = true;
    if (r.converged) {
      ++stats_.converged;
    } else {
      ++stats_.failures;
    }
    if (batch_result_.excluded[sc]) continue;
    total_iterations += static_cast<std::uint64_t>(r.iterations);
    AttemptInfo& rec = batch_result_.results[sc].attempts.emplace_back();
    rec.solver = solver_name_;
    rec.prec = prec_name_;
    rec.status = r.status;
    rec.failure = r.failure;
    rec.iterations = r.iterations;
    rec.relative_residual = r.relative_residual;
    rec.seconds = seconds;  // whole-batch wall clock: columns solve together
  }
  stats_.solves += static_cast<std::uint64_t>(k_count);
  stats_.iterations += total_iterations;
  span.arg("iterations", static_cast<std::int64_t>(total_iterations));

  const bool grew = scratch_bytes() > bytes_before || ws_.grow_events > grows_before;
  if (grew) ++stats_.scratch_grows;
  // The warm zero-allocation contract of solve(), batched: a repeat batch
  // at a warm width must not allocate. The first batch at a wider K grows
  // the workspace pool (and, for AMG, its multi-vector V-cycle scratch),
  // which `grew` exempts; `prec_primed` exempts the first batch through a
  // freshly built preconditioner, whose internal scratch grows in
  // prepare_multi() above.
  PARMIS_CHECK_MSG(grew || prec_primed || stats_.prec_setups > setups_before ||
                       obs::tracing_enabled() || any_failure || guard.allocations() == 0,
                   "warm batched solve allocated");
  PARMIS_CHECK_MSG(!batch_result_.all_converged() || check::all_finite(x),
                   "converged batched solve produced non-finite solution entries");
  return batch_result_;
}

std::size_t SolveHandle::scratch_bytes() const {
  std::size_t batch_bytes =
      batch_result_.results.capacity() * sizeof(IterResult) + batch_result_.excluded.capacity();
  for (const IterResult& r : batch_result_.results) {
    batch_bytes += r.history.capacity() * sizeof(double) +
                   r.attempts.capacity() * sizeof(AttemptInfo);
  }
  return ws_.capacity_bytes() + result_.history.capacity() * sizeof(double) +
         x0_.capacity() * sizeof(scalar_t) + result_.attempts.capacity() * sizeof(AttemptInfo) +
         batch_bytes;
}

}  // namespace parmis::solver
