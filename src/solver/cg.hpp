#pragma once
/// \file cg.hpp
/// \brief Preconditioned conjugate gradient (the Table V outer solver).
///
/// `IterOptions`/`IterResult` moved to solver/options.hpp; the registry
/// entry ("cg") and the workspace-based core live behind
/// solver/interface.hpp. The free function below remains as a
/// transient-handle shim for migration.

#include <span>

#include "graph/crs.hpp"
#include "solver/options.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// Solve SPD `a x = b` with (preconditioned) CG, starting from the given
/// `x`. `prec` may be null (unpreconditioned). Deterministic for any
/// thread count (all reductions are fixed-order). Shim over a transient
/// `SolveHandle` (see solver/handle.hpp); construct one explicitly where
/// calls repeat.
IterResult cg(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              const IterOptions& opts = {}, const Preconditioner* prec = nullptr);

}  // namespace parmis::solver
