#pragma once
/// \file cg.hpp
/// \brief Preconditioned conjugate gradient (the Table V outer solver).

#include <span>
#include <vector>

#include "graph/crs.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// Shared Krylov-solver configuration.
struct IterOptions {
  int max_iterations = 1000;
  double tolerance = 1e-8;     ///< on ||r|| / ||b||
  bool track_history = false;  ///< record the residual per iteration
};

/// Shared Krylov-solver outcome.
struct IterResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  std::vector<double> history;
};

/// Solve SPD `a x = b` with (preconditioned) CG, starting from the given
/// `x`. `prec` may be null (unpreconditioned). Deterministic for any
/// thread count (all reductions are fixed-order).
IterResult cg(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              const IterOptions& opts = {}, const Preconditioner* prec = nullptr);

}  // namespace parmis::solver
