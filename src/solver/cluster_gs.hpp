#pragma once
/// \file cluster_gs.hpp
/// \brief Cluster multicolor Gauss-Seidel (paper Algorithm 4) — the
/// paper's third contribution.
///
/// Setup: coarsen A's graph with MIS-2 aggregation (Algorithm 3 by
/// default), then color the *coarse* graph. Each color class is a set of
/// clusters with no inter-cluster coupling, so clusters of one color update
/// in parallel while rows *within* a cluster update sequentially — locally
/// exact Gauss-Seidel. This keeps iteration counts close to sequential GS
/// (point multicolor GS's weakness) while the coarse graph is much smaller
/// to color, which is why both setup and apply beat the point method in
/// Table VI.

#include <span>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/coarsen.hpp"
#include "core/coarsener.hpp"
#include "coloring/d1_coloring.hpp"
#include "graph/crs.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// Cluster multicolor GS state (Algorithm 4's setup phase; reusable while
/// A's structure is unchanged).
class ClusterMulticolorGS {
 public:
  /// Choice of coarsening inside setup (maps onto the core `Coarsener`
  /// registry; the string constructor reaches any registered scheme).
  enum class Coarsening { Mis2Agg, Mis2Basic };

  explicit ClusterMulticolorGS(const graph::CrsMatrix& a,
                               Coarsening coarsening = Coarsening::Mis2Agg,
                               const core::Mis2Options& mis2_opts = {});

  /// Setup with a registry-named coarsener ("mis2", "mis2-basic", "hem",
  /// ...) under an explicit execution context.
  ClusterMulticolorGS(const graph::CrsMatrix& a, const std::string& coarsener,
                      const core::Mis2Options& mis2_opts,
                      const Context& ctx = Context::default_ctx());

  /// One cluster multicolor sweep. Backward reverses both the color order
  /// and the row order within each cluster (paper §III-C).
  void sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
             SweepDirection dir) const;

  /// Symmetric sweep — "cluster multicolor SGS".
  void symmetric_sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                       std::span<scalar_t> x) const;

  [[nodiscard]] ordinal_t num_clusters() const { return aggregation_.num_aggregates; }
  [[nodiscard]] ordinal_t num_colors() const { return coloring_.num_colors; }
  [[nodiscard]] double setup_seconds() const { return setup_seconds_; }
  [[nodiscard]] const core::Aggregation& aggregation() const { return aggregation_; }

 private:
  core::Aggregation aggregation_;
  core::AggregateMembers members_;
  coloring::Coloring coloring_;      // of the coarse graph
  coloring::ColorSets cluster_sets_; // clusters grouped by color
  std::vector<scalar_t> inv_diag_;
  double setup_seconds_{0};
};

/// Preconditioner adapter: `sweeps` symmetric cluster-GS sweeps on
/// A z = r from z = 0.
class ClusterGsPreconditioner final : public Preconditioner {
 public:
  ClusterGsPreconditioner(const graph::CrsMatrix& a, int sweeps = 1,
                          ClusterMulticolorGS::Coarsening coarsening =
                              ClusterMulticolorGS::Coarsening::Mis2Agg)
      : a_(a), gs_(a, coarsening), sweeps_(sweeps) {}

  /// Registry-composed setup: any registered coarsener by name, under an
  /// explicit execution context (the "cluster-gs" registry entry's path).
  ClusterGsPreconditioner(const graph::CrsMatrix& a, int sweeps, const std::string& coarsener,
                          const core::Mis2Options& mis2_opts = {},
                          const Context& ctx = Context::default_ctx())
      : a_(a), gs_(a, coarsener, mis2_opts, ctx), sweeps_(sweeps) {}

  void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const override;
  [[nodiscard]] std::string name() const override { return "cluster-multicolor-sgs"; }
  [[nodiscard]] const ClusterMulticolorGS& gs() const { return gs_; }

 private:
  const graph::CrsMatrix& a_;
  ClusterMulticolorGS gs_;
  int sweeps_;
};

}  // namespace parmis::solver
