#pragma once
/// \file amg.hpp
/// \brief Smoothed-aggregation algebraic multigrid (the MueLu analogue for
/// Table V).
///
/// Setup per level: aggregate the matrix graph (one of five schemes — the
/// variable Table V studies), build the tentative piecewise-constant
/// prolongator P̂ with normalized columns, smooth it with one damped-Jacobi
/// step P = (I − ω D⁻¹ A) P̂, and form the Galerkin coarse operator
/// A_c = Pᵀ A P with SpGEMM. Coarsening stops at `coarse_size` rows, on a
/// stall against the coarsening-rate floor, or when the next coarse
/// operator would push the operator complexity past its cap (the guard
/// against pairwise-matching hierarchies densifying on power-law inputs);
/// the coarsest system is LU-factored.
///
/// The level loop itself lives in the unified multilevel engine
/// (`multilevel::Builder`, Galerkin mode); `AmgHierarchy::build` keeps its
/// historical signature as a thin shim over it, and gains a warm
/// `rebuild()` for matrices whose values change but whose structure is
/// fixed (time-stepping): the hierarchy's transfer structures are replayed
/// value-only with zero heap allocations inside the multilevel handle.
///
/// `apply` runs one V-cycle with damped-Jacobi pre/post smoothing from a
/// zero initial guess — the preconditioner configuration of Table V (CG,
/// 2 Jacobi sweeps, tol 1e-12).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/coarsener.hpp"
#include "graph/crs.hpp"
#include "multilevel/builder.hpp"
#include "parallel/context.hpp"
#include "solver/chebyshev.hpp"
#include "solver/dense_lu.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// The five aggregation schemes compared in Table V.
enum class AggregationScheme {
  SerialAgg,   ///< sequential MueLu-style aggregation (deterministic)
  SerialD2C,   ///< serial distance-2 coloring + parallel aggregation
  NBD2C,       ///< parallel distance-2 coloring + parallel aggregation (nondeterministic)
  Mis2Basic,   ///< Algorithm 2 (deterministic)
  Mis2Agg,     ///< Algorithm 3 (deterministic) — the paper's contribution
};

[[nodiscard]] const char* to_string(AggregationScheme s);

/// Level smoother choice. The paper's Table V uses 2-sweep damped Jacobi;
/// Chebyshev is MueLu's production default, kept as an extension.
enum class SmootherType { Jacobi, Chebyshev };

struct AmgOptions {
  AggregationScheme scheme = AggregationScheme::Mis2Agg;
  /// Core `Coarsener` registry name ("mis2", "mis2-basic", "hem", ...).
  /// When non-empty it overrides `scheme`: AMG composes with any registered
  /// coarsening algorithm, including ones registered after this header was
  /// written. Empty (the default) keeps the Table V scheme dispatch.
  std::string coarsener;
  /// Execution context the setup and every V-cycle-level kernel run under.
  /// Unset inherits the ambient configuration (pre-Context behavior).
  std::optional<Context> ctx;
  int max_levels = 10;
  ordinal_t coarse_size = 500;       ///< direct-solve threshold
  /// Coarsening-rate floor: a level producing more than this fraction of
  /// its fine vertices as aggregates counts as stalled and coarsening
  /// stops there (enforced by the multilevel Builder).
  double coarsening_rate_floor = 0.9;
  /// Stop coarsening before `sum(nnz(A_l)) / nnz(A_0)` exceeds this cap —
  /// the guard that keeps AMG+HEM from densifying on power-law inputs.
  /// 0 disables the cap.
  double operator_complexity_cap = 10.0;
  /// Largest coarsest level the V-cycle bottoms out on with a dense LU.
  /// When the rate floor or the complexity cap stops coarsening early, the
  /// coarsest level can be far bigger than `coarse_size`; factoring it
  /// densely would be the new blowup. Above this limit the cycle bottoms
  /// out with smoother sweeps instead. 0 (the default) means
  /// `4 * coarse_size`, so hierarchies that coarsen normally keep their
  /// exact direct solve.
  ordinal_t direct_size_limit = 0;
  scalar_t prolongator_omega = 2.0 / 3.0;
  SmootherType smoother = SmootherType::Jacobi;
  int smoother_sweeps = 2;           ///< pre/post smoother applications
  scalar_t jacobi_omega = 2.0 / 3.0;
  int chebyshev_degree = 2;          ///< polynomial degree per application
  core::Mis2Options mis2;            ///< passed through to MIS-2 aggregation
};

/// One multigrid level — the multilevel engine's Galerkin level: operator,
/// grid transfers to the next-coarser level (empty on the coarsest), the
/// inverted diagonal, and the aggregate count that produced the next
/// level.
using AmgLevel = multilevel::OperatorLevel;

/// A built V-cycle hierarchy, usable directly as a Preconditioner.
class AmgHierarchy final : public Preconditioner {
 public:
  /// Build the hierarchy (the "Setup" phase of Table V). Records
  /// aggregation-only time and total setup time.
  static AmgHierarchy build(graph::CrsMatrix a_fine, const AmgOptions& opts = {});

  /// Adopt externally produced operator levels — deserialized from a
  /// `serve::SnapshotView` or copied from a published serving state —
  /// instead of building them: installs the stack into the handle and runs
  /// only the value-dependent tail of setup (smoothers, coarse
  /// factorization, V-cycle workspaces). Skips every aggregation and
  /// SpGEMM of a cold build — the snapshot economy. The adopted hierarchy
  /// applies/solves immediately; a later `rebuild()` additionally needs
  /// `workspace` (the Galerkin rebuild scratch the snapshot format
  /// preserves) and throws without it. Throws std::invalid_argument on an
  /// empty or inconsistent level stack.
  static AmgHierarchy adopt(
      std::vector<AmgLevel> levels, const AmgOptions& opts = {},
      std::vector<multilevel::SetupWorkspace::GalerkinLevel> workspace = {},
      multilevel::StopReason stop = multilevel::StopReason::CoarseEnough);

  /// Warm value-only rebuild for a matrix with the same structure the
  /// hierarchy was built from but different values: replays the Galerkin
  /// setup into the existing level structures (zero heap allocations
  /// inside the multilevel handle), then refreshes the smoothers and the
  /// coarse LU. Throws std::invalid_argument on a structure mismatch.
  void rebuild(const graph::CrsMatrix& a_fine);

  /// One V-cycle on A z = r from z = 0.
  void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const override;

  /// Grows the per-level multi-vector workspaces to batch width `k_count`
  /// so batched applies up to that width allocate nothing.
  bool prepare_multi(ordinal_t /*n*/, int k_count) override {
    const bool growing = k_count > mwork_k_;
    ensure_mwork(k_count);
    return growing;
  }

  /// Batched V-cycle over n x k_count row-major multi-vectors: every grid
  /// transfer and smoother application is one fused multi-vector kernel,
  /// and column c of the result is bit-identical to `apply` on the
  /// gathered column. Multi-vector workspaces are grown lazily the first
  /// time a given batch width is seen; repeat applications at the same (or
  /// smaller) width allocate nothing.
  void apply_multi(std::span<const scalar_t> r, std::span<scalar_t> z, ordinal_t n,
                   int k_count, std::span<scalar_t> scratch) const override;

  [[nodiscard]] std::string name() const override;

  /// General V-cycle from an arbitrary initial guess (level 0).
  void vcycle(std::span<const scalar_t> b, std::span<scalar_t> x) const;

  [[nodiscard]] int num_levels() const { return static_cast<int>(handle_.ops().size()); }
  [[nodiscard]] const AmgLevel& level(int i) const {
    return handle_.ops()[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double aggregation_seconds() const { return aggregation_seconds_; }
  [[nodiscard]] double setup_seconds() const { return setup_seconds_; }
  [[nodiscard]] double operator_complexity() const;
  [[nodiscard]] double grid_complexity() const;

  /// Telemetry of the underlying multilevel build: levels, per-level
  /// rows/nnz, complexities, stop reason, and build/rebuild timings.
  [[nodiscard]] const multilevel::HierarchyStats& hierarchy_stats() const {
    return handle_.build_stats();
  }

  /// Which bottom-solve variant setup chose: "lu" (plain dense LU),
  /// "lu-perturbed" (LU of a diagonally shifted copy after the plain
  /// factorization found the coarsest block singular), or "smoother"
  /// (sweeps only — coarsest level too large, or even the shifted
  /// factorization failed).
  [[nodiscard]] const char* bottom_solve() const { return bottom_solve_; }

 private:
  void cycle_level(std::size_t lvl, std::span<const scalar_t> b, std::span<scalar_t> x) const;
  void smooth_level(std::size_t lvl, std::span<const scalar_t> rhs,
                    std::span<scalar_t> sol) const;
  void cycle_level_multi(std::size_t lvl, std::span<const scalar_t> b, std::span<scalar_t> x,
                         int k_count) const;
  void smooth_level_multi(std::size_t lvl, std::span<const scalar_t> rhs,
                          std::span<scalar_t> sol, int k_count) const;
  /// Grow the per-level multi-vector workspaces to batch width `k_count`.
  void ensure_mwork(int k_count) const;
  /// Smoothers, coarse LU, and V-cycle workspaces for the current levels.
  void finish_setup();

  multilevel::Builder builder_;
  multilevel::HierarchyHandle handle_;
  std::vector<std::unique_ptr<ChebyshevSmoother>> chebyshev_;  ///< per level iff Chebyshev
  std::unique_ptr<DenseLU> coarse_lu_;
  const char* bottom_solve_ = "smoother";  ///< see bottom_solve()
  AmgOptions opts_;
  double aggregation_seconds_{0};
  double setup_seconds_{0};
  // Per-level work vectors for the V-cycle (sized at build, so apply() and
  // vcycle() perform zero heap allocations — the warm-solve contract).
  mutable std::vector<std::vector<scalar_t>> work_r_, work_bc_, work_xc_;
  // Per-level smoother scratch: s1 is the Jacobi double-buffer (always
  // sized); s2/s3 complete the Chebyshev triple when that smoother is on.
  mutable std::vector<std::vector<scalar_t>> work_s1_, work_s2_, work_s3_;
  // Multi-vector twins of the above, grown lazily by ensure_mwork() to the
  // widest batch seen (apply_multi at width <= mwork_k_ allocates nothing).
  mutable std::vector<std::vector<scalar_t>> mwork_r_, mwork_bc_, mwork_xc_;
  mutable std::vector<std::vector<scalar_t>> mwork_s1_, mwork_s2_, mwork_s3_;
  mutable int mwork_k_ = 0;
};

/// Dispatch helper shared with benches/tests: run the chosen aggregation
/// scheme on an adjacency graph. The MIS-2 schemes route through the core
/// `Coarsener` registry ("mis2" / "mis2-basic") via `handle`, whose
/// scratch is reused across hierarchy levels.
[[nodiscard]] core::Aggregation run_aggregation(graph::GraphView adjacency,
                                                AggregationScheme scheme,
                                                const core::Mis2Options& mis2_opts,
                                                core::CoarsenHandle& handle);

/// `run_aggregation` with a transient handle.
[[nodiscard]] core::Aggregation run_aggregation(graph::GraphView adjacency,
                                                AggregationScheme scheme,
                                                const core::Mis2Options& mis2_opts);

/// Registry-named variant: aggregate with any registered core coarsener
/// (what `AmgOptions::coarsener` routes through). Throws std::out_of_range
/// on an unknown name.
[[nodiscard]] core::Aggregation run_aggregation(graph::GraphView adjacency,
                                                const std::string& coarsener,
                                                const core::Mis2Options& mis2_opts,
                                                core::CoarsenHandle& handle);

}  // namespace parmis::solver
