#pragma once
/// \file dense_lu.hpp
/// \brief Dense LU with partial pivoting, the AMG coarse-level direct solve.

#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::solver {

/// Factorization of a (small) square matrix. Intended for AMG coarsest
/// levels (a few hundred rows); O(n^3) factor, O(n^2) solve.
class DenseLU {
 public:
  /// Factor a sparse matrix densely. Throws std::runtime_error when a zero
  /// pivot makes the matrix numerically singular.
  explicit DenseLU(const graph::CrsMatrix& a);

  /// Solve A x = b.
  void solve(std::span<const scalar_t> b, std::span<scalar_t> x) const;

  [[nodiscard]] ordinal_t size() const { return n_; }

 private:
  ordinal_t n_;
  std::vector<scalar_t> lu_;     // row-major, combined L\U
  std::vector<ordinal_t> perm_;  // row permutation from pivoting
};

}  // namespace parmis::solver
