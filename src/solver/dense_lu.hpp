#pragma once
/// \file dense_lu.hpp
/// \brief Dense LU with partial pivoting, the AMG coarse-level direct solve.

#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::solver {

/// Factorization of a (small) square matrix. Intended for AMG coarsest
/// levels (a few hundred rows); O(n^3) factor, O(n^2) solve.
class DenseLU {
 public:
  /// Factor a sparse matrix densely. `diag_shift` is added to every stored
  /// diagonal entry before factoring (the AMG near-singular perturbation —
  /// applied at fill time, so no shifted matrix copy is ever made). Throws
  /// std::runtime_error when a zero pivot makes the matrix numerically
  /// singular.
  explicit DenseLU(const graph::CrsMatrix& a, scalar_t diag_shift = 0);

  /// Re-factor in place for new matrix values (warm `rebuild_galerkin`):
  /// reuses the dense storage whenever the size matches, so warm rebuilds
  /// never re-allocate the coarsest block. A failed refactor (singular
  /// pivot) throws and leaves the factorization unusable until the next
  /// successful refactor.
  void refactor(const graph::CrsMatrix& a, scalar_t diag_shift = 0);

  /// Solve A x = b.
  void solve(std::span<const scalar_t> b, std::span<scalar_t> x) const;

  /// Batched solve over n x k_count row-major multi-vectors: column c runs
  /// exactly the substitution sequence of `solve` on the gathered column
  /// (bit-identical), with no scratch.
  void solve_multi(std::span<const scalar_t> b, std::span<scalar_t> x, int k_count) const;

  [[nodiscard]] ordinal_t size() const { return n_; }

 private:
  ordinal_t n_;
  std::vector<scalar_t> lu_;     // row-major, combined L\U
  std::vector<ordinal_t> perm_;  // row permutation from pivoting
};

}  // namespace parmis::solver
