#include "solver/jacobi.hpp"

#include <cassert>
#include <cmath>

#include "graph/spgemm.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/parallel_for.hpp"
#include "resilience/fault.hpp"
#include "resilience/status.hpp"

namespace parmis::solver {

namespace {

/// Lane-blocked column group width of the fused multi-vector sweep, the
/// same register-blocking `graph::spmm` uses.
constexpr int kJacobiGroup = 16;

/// One chunk of rows × one column group of a damped-Jacobi sweep: the row
/// traversal feeds KK register accumulators and the write-out applies
/// `x_next = x + omega * inv_diag[i] * (b - acc)` per lane — the exact
/// expression (and evaluation order) of the single-vector sweep, so column
/// c is bit-identical to `jacobi_smooth` on the gathered column. KK = 0
/// selects the runtime-width remainder loop.
template <int KK>
void jacobi_sweep_chunk(const offset_t* row_map, const ordinal_t* entries,
                        const scalar_t* values, const scalar_t* inv_diag,
                        const scalar_t* __restrict b, const scalar_t* __restrict x,
                        scalar_t* __restrict x_next, scalar_t omega, int k_count, int kk,
                        ordinal_t lo, ordinal_t hi) {
  for (ordinal_t i = lo; i < hi; ++i) {
    scalar_t acc[kJacobiGroup] = {};
    const offset_t jhi = row_map[i + 1];
    for (offset_t j = row_map[i]; j < jhi; ++j) {
      const scalar_t v = values[static_cast<std::size_t>(j)];
      const scalar_t* xi = x +
                           static_cast<std::size_t>(entries[static_cast<std::size_t>(j)]) *
                               static_cast<std::size_t>(k_count);
      if constexpr (KK > 0) {
        for (int k = 0; k < KK; ++k) acc[k] += v * xi[k];
      } else {
        for (int k = 0; k < kk; ++k) acc[k] += v * xi[k];
      }
    }
    const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
    const int kw = KK > 0 ? KK : kk;
    for (int k = 0; k < kw; ++k) {
      x_next[base + static_cast<std::size_t>(k)] =
          x[base + static_cast<std::size_t>(k)] +
          omega * inv_diag[static_cast<std::size_t>(i)] *
              (b[base + static_cast<std::size_t>(k)] - acc[k]);
    }
  }
}

/// One chunk of rows × one column group of the FIRST damped-Jacobi sweep
/// from a zero initial guess, with the sweep's input recomputed on the fly:
/// starting from x = 0, the previous pass would have produced
/// `x1[t] = 0.0 + omega * inv_diag[t] * (b[t] - 0.0)`, so instead of
/// materializing x1 to memory and gathering it back, each gathered operand
/// evaluates that exact expression from `b` directly. Every subexpression
/// (including the `0.0 +` prefix) matches the two-pass code, so the output
/// bits are identical while two full multi-vector passes disappear.
template <int KK>
void jacobi_first_sweep_chunk(const offset_t* row_map, const ordinal_t* entries,
                              const scalar_t* values, const scalar_t* inv_diag,
                              const scalar_t* __restrict b, scalar_t* __restrict x_next,
                              scalar_t omega, int k_count, int kk, ordinal_t lo, ordinal_t hi) {
  for (ordinal_t i = lo; i < hi; ++i) {
    scalar_t acc[kJacobiGroup] = {};
    const offset_t jhi = row_map[i + 1];
    for (offset_t j = row_map[i]; j < jhi; ++j) {
      const scalar_t v = values[static_cast<std::size_t>(j)];
      const std::size_t col = static_cast<std::size_t>(entries[static_cast<std::size_t>(j)]);
      const scalar_t t = omega * inv_diag[col];
      const scalar_t* bi = b + col * static_cast<std::size_t>(k_count);
      if constexpr (KK > 0) {
        for (int k = 0; k < KK; ++k) acc[k] += v * (0.0 + t * (bi[k] - 0.0));
      } else {
        for (int k = 0; k < kk; ++k) acc[k] += v * (0.0 + t * (bi[k] - 0.0));
      }
    }
    const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
    const scalar_t ti = omega * inv_diag[static_cast<std::size_t>(i)];
    const int kw = KK > 0 ? KK : kk;
    for (int k = 0; k < kw; ++k) {
      const scalar_t bk = b[base + static_cast<std::size_t>(k)];
      x_next[base + static_cast<std::size_t>(k)] = (0.0 + ti * (bk - 0.0)) + ti * (bk - acc[k]);
    }
  }
}

void jacobi_first_sweep_multi(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                              std::span<const scalar_t> b, std::span<scalar_t> x_next,
                              scalar_t omega, int k_count) {
  const offset_t* row_map = a.row_map.data();
  const ordinal_t* entries = a.entries.data();
  const scalar_t* values = a.values.data();
  par::balanced_chunks(a.num_rows, row_map, [&](int, ordinal_t lo, ordinal_t hi) {
    for (int k0 = 0; k0 < k_count; k0 += kJacobiGroup) {
      const int kk = k_count - k0 < kJacobiGroup ? k_count - k0 : kJacobiGroup;
      const scalar_t* bg = b.data() + static_cast<std::size_t>(k0);
      scalar_t* ng = x_next.data() + static_cast<std::size_t>(k0);
      switch (kk) {
        case 16:
          jacobi_first_sweep_chunk<16>(row_map, entries, values, inv_diag.data(), bg, ng, omega,
                                       k_count, kk, lo, hi);
          break;
        case 8:
          jacobi_first_sweep_chunk<8>(row_map, entries, values, inv_diag.data(), bg, ng, omega,
                                      k_count, kk, lo, hi);
          break;
        case 4:
          jacobi_first_sweep_chunk<4>(row_map, entries, values, inv_diag.data(), bg, ng, omega,
                                      k_count, kk, lo, hi);
          break;
        case 2:
          jacobi_first_sweep_chunk<2>(row_map, entries, values, inv_diag.data(), bg, ng, omega,
                                      k_count, kk, lo, hi);
          break;
        case 1:
          jacobi_first_sweep_chunk<1>(row_map, entries, values, inv_diag.data(), bg, ng, omega,
                                      k_count, kk, lo, hi);
          break;
        default:
          jacobi_first_sweep_chunk<0>(row_map, entries, values, inv_diag.data(), bg, ng, omega,
                                      k_count, kk, lo, hi);
          break;
      }
    }
  });
}

void jacobi_sweep_multi(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                        std::span<const scalar_t> b, std::span<const scalar_t> x,
                        std::span<scalar_t> x_next, scalar_t omega, int k_count) {
  const offset_t* row_map = a.row_map.data();
  const ordinal_t* entries = a.entries.data();
  const scalar_t* values = a.values.data();
  par::balanced_chunks(a.num_rows, row_map, [&](int, ordinal_t lo, ordinal_t hi) {
    for (int k0 = 0; k0 < k_count; k0 += kJacobiGroup) {
      const int kk = k_count - k0 < kJacobiGroup ? k_count - k0 : kJacobiGroup;
      const scalar_t* bg = b.data() + static_cast<std::size_t>(k0);
      const scalar_t* xg = x.data() + static_cast<std::size_t>(k0);
      scalar_t* ng = x_next.data() + static_cast<std::size_t>(k0);
      switch (kk) {
        case 16:
          jacobi_sweep_chunk<16>(row_map, entries, values, inv_diag.data(), bg, xg, ng, omega,
                                 k_count, kk, lo, hi);
          break;
        case 8:
          jacobi_sweep_chunk<8>(row_map, entries, values, inv_diag.data(), bg, xg, ng, omega,
                                k_count, kk, lo, hi);
          break;
        case 4:
          jacobi_sweep_chunk<4>(row_map, entries, values, inv_diag.data(), bg, xg, ng, omega,
                                k_count, kk, lo, hi);
          break;
        case 2:
          jacobi_sweep_chunk<2>(row_map, entries, values, inv_diag.data(), bg, xg, ng, omega,
                                k_count, kk, lo, hi);
          break;
        case 1:
          jacobi_sweep_chunk<1>(row_map, entries, values, inv_diag.data(), bg, xg, ng, omega,
                                k_count, kk, lo, hi);
          break;
        default:
          jacobi_sweep_chunk<0>(row_map, entries, values, inv_diag.data(), bg, xg, ng, omega,
                                k_count, kk, lo, hi);
          break;
      }
    }
  });
}

}  // namespace

std::vector<scalar_t> inverted_diagonal(const graph::CrsMatrix& a) {
  std::vector<scalar_t> d(static_cast<std::size_t>(a.num_rows), 0);
  inverted_diagonal_into(a, d);
  return d;
}

void inverted_diagonal_into(const graph::CrsMatrix& a, std::span<scalar_t> d) {
  graph::extract_diagonal(a, d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    scalar_t v = d[i];
    if (i == 0 && PARMIS_FAULT_POINT("jacobi.zero_diag")) v = 0;  // injected singular diagonal
    if (v == 0 || !std::isfinite(v)) {
      throw resilience::SolveError(
          resilience::SolveStatus::SingularOperator,
          resilience::FailureInfo{"setup", "setup.jacobi.zero_diagonal", -1,
                                  static_cast<std::int64_t>(i)},
          "jacobi: zero or non-finite diagonal entry at row " + std::to_string(i));
    }
    d[i] = 1.0 / v;
  }
}

void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega) {
  std::vector<scalar_t> x_next(static_cast<std::size_t>(a.num_rows));
  jacobi_smooth(a, inv_diag, b, x, sweeps, omega, x_next);
}

void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega, std::span<scalar_t> x_next) {
  assert(b.size() == static_cast<std::size_t>(a.num_rows));
  assert(x.size() == static_cast<std::size_t>(a.num_rows));
  assert(x_next.size() == static_cast<std::size_t>(a.num_rows));
  for (int s = 0; s < sweeps; ++s) {
    par::parallel_for(a.num_rows, [&](ordinal_t i) {
      scalar_t acc = 0;
      for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
        acc += a.values[static_cast<std::size_t>(j)] *
               x[static_cast<std::size_t>(a.entries[static_cast<std::size_t>(j)])];
      }
      x_next[static_cast<std::size_t>(i)] =
          x[static_cast<std::size_t>(i)] +
          omega * inv_diag[static_cast<std::size_t>(i)] * (b[static_cast<std::size_t>(i)] - acc);
    });
    par::parallel_for(a.num_rows, [&](ordinal_t i) {
      x[static_cast<std::size_t>(i)] = x_next[static_cast<std::size_t>(i)];
    });
  }
}

void jacobi_smooth_multi(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                         std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                         scalar_t omega, std::span<scalar_t> x_next, int k_count) {
  const std::size_t uk = static_cast<std::size_t>(k_count);
  const std::size_t nk = static_cast<std::size_t>(a.num_rows) * uk;
  assert(k_count > 0);
  assert(b.size() >= nk && x.size() >= nk && x_next.size() >= nk);
  for (int s = 0; s < sweeps; ++s) {
    jacobi_sweep_multi(a, inv_diag, b, x, x_next, omega, k_count);
    par::parallel_for(static_cast<std::int64_t>(nk), [&](std::int64_t t) {
      x[static_cast<std::size_t>(t)] = x_next[static_cast<std::size_t>(t)];
    });
  }
}

void JacobiPreconditioner::apply(std::span<const scalar_t> r, std::span<scalar_t> z) const {
  const std::size_t un = static_cast<std::size_t>(a_.num_rows);
  if (sweeps_ <= 0) {
    par::parallel_for(a_.num_rows, [&](ordinal_t i) { z[static_cast<std::size_t>(i)] = 0; });
    return;
  }
  // First sweep from z = 0: the traversal's accumulator is exactly +0.0
  // (every term is v * 0.0 and +0.0 + ±0.0 = +0.0), so evaluating the
  // sweep expression with acc = 0 elementwise produces the identical bits
  // without touching the matrix — one full traversal saved per apply.
  // (apply_multi additionally fuses the second sweep's re-read of this
  // vector; for a single right-hand side the recompute costs more than the
  // 8-byte read it saves, so the two-pass form stays.)
  //
  // Buffers ping-pong so the LAST pass writes z directly: the per-sweep
  // copy-back of jacobi_smooth is pure data movement, and the sweep values
  // are identical wherever they land. Odd remaining-sweep counts start the
  // chain in the scratch buffer, even counts in z.
  const int rest = sweeps_ - 1;
  std::span<scalar_t> ping(x_next_.data(), un);
  std::span<scalar_t> cur = (rest % 2 == 1) ? ping : z;
  std::span<scalar_t> nxt = (rest % 2 == 1) ? z : ping;
  par::parallel_for(a_.num_rows, [&](ordinal_t i) {
    const std::size_t at = static_cast<std::size_t>(i);
    cur[at] = 0.0 + omega_ * inv_diag_[at] * (r[at] - 0.0);
  });
  for (int s = 0; s < rest; ++s) {
    par::parallel_for(a_.num_rows, [&](ordinal_t i) {
      scalar_t acc = 0;
      for (offset_t j = a_.row_map[i]; j < a_.row_map[i + 1]; ++j) {
        acc += a_.values[static_cast<std::size_t>(j)] *
               cur[static_cast<std::size_t>(a_.entries[static_cast<std::size_t>(j)])];
      }
      nxt[static_cast<std::size_t>(i)] =
          cur[static_cast<std::size_t>(i)] +
          omega_ * inv_diag_[static_cast<std::size_t>(i)] *
              (r[static_cast<std::size_t>(i)] - acc);
    });
    std::swap(cur, nxt);
  }
}

void JacobiPreconditioner::apply_multi(std::span<const scalar_t> r, std::span<scalar_t> z,
                                       ordinal_t n, int k_count,
                                       std::span<scalar_t> /*scratch*/) const {
  const std::size_t nk = static_cast<std::size_t>(n) * static_cast<std::size_t>(k_count);
  const std::size_t uk = static_cast<std::size_t>(k_count);
  if (x_next_.size() < nk) x_next_.resize(nk);
  if (sweeps_ <= 0) {
    par::parallel_for(static_cast<std::int64_t>(nk),
                      [&](std::int64_t t) { z[static_cast<std::size_t>(t)] = 0; });
    return;
  }
  // Same fused from-zero first+second sweep and copy-free buffer ping-pong
  // as apply(), per lane: the last pass writes z directly.
  if (sweeps_ == 1) {
    par::parallel_for(static_cast<std::int64_t>(nk), [&](std::int64_t t) {
      const std::size_t at = static_cast<std::size_t>(t);
      z[at] = 0.0 + omega_ * inv_diag_[at / uk] * (r[at] - 0.0);
    });
    return;
  }
  const int rest = sweeps_ - 2;
  std::span<scalar_t> ping(x_next_.data(), nk);
  std::span<scalar_t> cur = (rest % 2 == 0) ? z : ping;
  std::span<scalar_t> nxt = (rest % 2 == 0) ? ping : z;
  jacobi_first_sweep_multi(a_, inv_diag_, r, cur, omega_, k_count);
  for (int s = 0; s < rest; ++s) {
    jacobi_sweep_multi(a_, inv_diag_, r, cur, nxt, omega_, k_count);
    std::swap(cur, nxt);
  }
}

}  // namespace parmis::solver
