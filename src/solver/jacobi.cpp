#include "solver/jacobi.hpp"

#include <cassert>
#include <cmath>

#include "graph/spgemm.hpp"
#include "parallel/parallel_for.hpp"
#include "resilience/fault.hpp"
#include "resilience/status.hpp"

namespace parmis::solver {

std::vector<scalar_t> inverted_diagonal(const graph::CrsMatrix& a) {
  std::vector<scalar_t> d = graph::extract_diagonal(a);
  for (std::size_t i = 0; i < d.size(); ++i) {
    scalar_t v = d[i];
    if (i == 0 && PARMIS_FAULT_POINT("jacobi.zero_diag")) v = 0;  // injected singular diagonal
    if (v == 0 || !std::isfinite(v)) {
      throw resilience::SolveError(
          resilience::SolveStatus::SingularOperator,
          resilience::FailureInfo{"setup", "setup.jacobi.zero_diagonal", -1,
                                  static_cast<std::int64_t>(i)},
          "jacobi: zero or non-finite diagonal entry at row " + std::to_string(i));
    }
    d[i] = 1.0 / v;
  }
  return d;
}

void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega) {
  std::vector<scalar_t> x_next(static_cast<std::size_t>(a.num_rows));
  jacobi_smooth(a, inv_diag, b, x, sweeps, omega, x_next);
}

void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega, std::span<scalar_t> x_next) {
  assert(b.size() == static_cast<std::size_t>(a.num_rows));
  assert(x.size() == static_cast<std::size_t>(a.num_rows));
  assert(x_next.size() == static_cast<std::size_t>(a.num_rows));
  for (int s = 0; s < sweeps; ++s) {
    par::parallel_for(a.num_rows, [&](ordinal_t i) {
      scalar_t acc = 0;
      for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
        acc += a.values[static_cast<std::size_t>(j)] *
               x[static_cast<std::size_t>(a.entries[static_cast<std::size_t>(j)])];
      }
      x_next[static_cast<std::size_t>(i)] =
          x[static_cast<std::size_t>(i)] +
          omega * inv_diag[static_cast<std::size_t>(i)] * (b[static_cast<std::size_t>(i)] - acc);
    });
    par::parallel_for(a.num_rows, [&](ordinal_t i) {
      x[static_cast<std::size_t>(i)] = x_next[static_cast<std::size_t>(i)];
    });
  }
}

void JacobiPreconditioner::apply(std::span<const scalar_t> r, std::span<scalar_t> z) const {
  par::parallel_for(a_.num_rows, [&](ordinal_t i) { z[static_cast<std::size_t>(i)] = 0; });
  jacobi_smooth(a_, inv_diag_, r, z, sweeps_, omega_, x_next_);
}

}  // namespace parmis::solver
