/// \file block_krylov.cpp
/// \brief Fused block CG and block GMRES cores ("block-cg"/"block-gmres").
///
/// Both cores advance K right-hand sides in lockstep over one `spmm` per
/// matrix application, while every column runs its *own* scalar recurrence
/// (alpha/beta, Hessenberg column, Givens rotations) computed from its own
/// column of the fused reductions. Because `mv_dot`/`mv_norms` match the
/// single-vector reductions bit for bit per column and every masked update
/// is an explicit branch (never a zero coefficient), each column's iterate
/// sequence — and therefore its digest, iteration count, history, and
/// taxonomy status — is bit-identical to running the single-RHS core on
/// that column alone.
///
/// Deflation: a column that converges, breaks down, or trips its guard is
/// *frozen* — dropped from the active mask so no kernel writes its lanes
/// again — and finalized with the same epilogue the single core runs. The
/// remaining columns keep iterating; this is the per-RHS failure-isolation
/// contract (one poisoned column gets one poisoned status).
///
/// Block GMRES is the interesting one: restarts desynchronize (column c may
/// sit at cycle position j[c] while its neighbor restarts), so the core is
/// a per-column phase machine (NeedStart / InCycle / EndCycle / Done)
/// driven in ticks. Columns share the multi-vector basis slots — column c
/// only ever touches its own lanes of slot j[c] — and orthogonalization
/// runs slot by slot with a fused `mv_dot` masked to the columns deep
/// enough to need it. The w/tmp/op slots are not carried across ticks, so
/// phases may clobber each other's unused lanes freely.

#include <cassert>
#include <cmath>
#include <limits>


#include "graph/spmm.hpp"
#include "obs/trace.hpp"
#include "resilience/fault.hpp"
#include "resilience/guard.hpp"
#include "solver/interface.hpp"
#include "solver/multivector.hpp"

namespace parmis::solver {

namespace {

using resilience::SolveStatus;

/// Per-column solve prologue shared by both block cores: mirrors
/// `begin_solve` for column c (result reset, history pre-reserve, zero-rhs
/// early-out). Returns false when the column is already done (excluded or
/// zero rhs); on true the column is live with bnorm[c] > 0.
bool begin_column(const IterOptions& opts, std::span<scalar_t> x, ordinal_t n, int k_count,
                  int c, scalar_t bnorm_c, SolveWorkspace& ws, BatchResult& result) {
  if (result.excluded[static_cast<std::size_t>(c)]) return false;
  IterResult& r = result.results[static_cast<std::size_t>(c)];
  r.iterations = 0;
  r.relative_residual = 0.0;
  r.converged = false;
  r.status = SolveStatus::MaxIterations;
  r.failure.clear();
  r.history.clear();
  if (opts.track_history) {
    ws.ensure_small(r.history, static_cast<std::size_t>(opts.max_iterations) + 1);
    r.history.clear();
  }
  if (bnorm_c == 0) {
    mv_fill_col(x, 0.0, n, k_count, c);
    r.converged = true;
    r.status = SolveStatus::Converged;
    return false;
  }
  return true;
}

void refill_guards(SolveWorkspace& ws, const IterOptions& opts, int k_count) {
  ws.batch_guards.clear();  // keeps capacity; IterGuard holds no heap state
  for (int c = 0; c < k_count; ++c) ws.batch_guards.emplace_back(opts.guard_config());
}

}  // namespace

// ------------------------------------------------------------- block CG

void block_cg_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                    std::span<scalar_t> x, int k_count, const IterOptions& opts,
                    const Preconditioner* prec, SolveWorkspace& ws, BatchResult& result) {
  assert(a.num_rows == a.num_cols);
  assert(k_count >= 1);
  const ordinal_t n = a.num_rows;
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t uk = static_cast<std::size_t>(k_count);
  const std::size_t nk = un * uk;
  assert(b.size() == nk && x.size() == nk);

  result.ensure(k_count);

  // Per-column small state: [bnorm | rz | rznext | pap | alpha | nalpha |
  // beta | relres], each a K-wide lane.
  ws.ensure_small(ws.batch_scalars, 8 * uk);
  scalar_t* bnorm = ws.batch_scalars.data();
  scalar_t* rz = bnorm + uk;
  scalar_t* rznext = rz + uk;
  scalar_t* pap = rznext + uk;
  scalar_t* alpha = pap + uk;
  scalar_t* nalpha = alpha + uk;
  scalar_t* beta = nalpha + uk;
  scalar_t* relres = beta + uk;
  ws.ensure_small(ws.batch_ints, uk);
  int* stopc = ws.batch_ints.data();
  ws.batch_active.assign(uk, 0);
  std::span<char> active(ws.batch_active.data(), uk);
  refill_guards(ws, opts, k_count);

  mv_norms(b, n, k_count, std::span<scalar_t>(bnorm, uk));
  int num_active = 0;
  for (int c = 0; c < k_count; ++c) {
    if (!begin_column(opts, x, n, k_count, c, bnorm[static_cast<std::size_t>(c)], ws, result)) {
      continue;
    }
    stopc[static_cast<std::size_t>(c)] = static_cast<int>(SolveStatus::Converged);
    active[static_cast<std::size_t>(c)] = 1;
    ++num_active;
  }
  if (num_active == 0) return;

  std::span<scalar_t> r_mv = ws.vec(0, nk);
  std::span<scalar_t> z_mv = ws.vec(1, nk);
  std::span<scalar_t> p_mv = ws.vec(2, nk);
  std::span<scalar_t> ap_mv = ws.vec(3, nk);
  std::span<scalar_t> prec_scratch = ws.vec(4, 2 * un);

  // R = B - A X
  graph::spmm(a, x, r_mv, k_count);
  mv_axpby(1.0, b, -1.0, r_mv, n, k_count);

  auto precondition = [&](std::span<const scalar_t> in, std::span<scalar_t> out) {
    if (prec) {
      prec->apply_multi(in, out, n, k_count, prec_scratch);
    } else {
      mv_copy(in, out);
    }
  };

  precondition(r_mv, z_mv);
  mv_copy(z_mv, p_mv);
  mv_dot(r_mv, z_mv, n, k_count, std::span<scalar_t>(rz, uk));

  // Guard the initial residual too, per column.
  mv_norms(r_mv, n, k_count, std::span<scalar_t>(relres, uk));
  for (int c = 0; c < k_count; ++c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    if (!active[sc]) continue;
    IterResult& r = result.results[sc];
    relres[sc] /= bnorm[sc];
    if (opts.track_history) r.history.push_back(relres[sc]);
    stopc[sc] = static_cast<int>(ws.batch_guards[sc].check(relres[sc], 0, r.failure));
  }

  // Identical to the single-core epilogue; run once per column, at freeze.
  auto finalize = [&](int c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    IterResult& r = result.results[sc];
    if (static_cast<SolveStatus>(stopc[sc]) != SolveStatus::Converged) {
      r.status = static_cast<SolveStatus>(stopc[sc]);
    }
    r.converged = r.converged || relres[sc] <= opts.tolerance;
    if (r.converged) {
      r.status = SolveStatus::Converged;
      r.failure.clear();
    }
    r.relative_residual = relres[sc];
    active[sc] = 0;
    --num_active;
  };

  // `it` doubles as every active column's own iteration index: lockstep
  // columns all advance from iteration 0 together and frozen columns never
  // come back, exactly the single core's counter.
  for (int it = 0; num_active > 0 && it < opts.max_iterations; ++it) {
    for (int c = 0; c < k_count; ++c) {
      const std::size_t sc = static_cast<std::size_t>(c);
      if (!active[sc]) continue;
      if (static_cast<SolveStatus>(stopc[sc]) != SolveStatus::Converged ||
          relres[sc] <= opts.tolerance) {
        finalize(c);
      }
    }
    if (num_active == 0) break;
    obs::Span iter_span("solver.iteration");
    iter_span.arg("iteration", it);
    graph::spmm(a, p_mv, ap_mv, k_count);
    mv_dot(p_mv, ap_mv, n, k_count, std::span<scalar_t>(pap, uk));
    // Injected Krylov breakdown (check builds): poisons column 0 only —
    // the per-RHS isolation contract under test.
    if (PARMIS_FAULT_POINT("cg.pap")) pap[0] = 0;
    for (int c = 0; c < k_count; ++c) {
      const std::size_t sc = static_cast<std::size_t>(c);
      if (!active[sc]) continue;
      if (pap[sc] == 0 || !std::isfinite(pap[sc])) {
        result.results[sc].failure =
            resilience::FailureInfo{"iterate", "solver.cg.breakdown.pap", it, -1};
        stopc[sc] = static_cast<int>(SolveStatus::Breakdown);
        finalize(c);
        continue;
      }
      alpha[sc] = rz[sc] / pap[sc];
      nalpha[sc] = -alpha[sc];
    }
    if (num_active == 0) break;
    mv_axpy_cols(std::span<const scalar_t>(alpha, uk), p_mv, x, n, k_count, active);
    mv_axpy_cols(std::span<const scalar_t>(nalpha, uk), ap_mv, r_mv, n, k_count, active);
    // Injected residual faults, column 0 only (see single core).
    if (PARMIS_FAULT_POINT("cg.diverge") && active[0]) {
      for (std::size_t i = 0; i < un; ++i) r_mv[i * uk] *= 1e30;
    }
    if (PARMIS_FAULT_POINT("cg.poison") && active[0]) {
      r_mv[0] = std::numeric_limits<scalar_t>::quiet_NaN();
    }
    precondition(r_mv, z_mv);
    mv_dot(r_mv, z_mv, n, k_count, std::span<scalar_t>(rznext, uk));
    for (int c = 0; c < k_count; ++c) {
      const std::size_t sc = static_cast<std::size_t>(c);
      if (!active[sc]) continue;
      beta[sc] = rznext[sc] / rz[sc];
      rz[sc] = rznext[sc];
    }
    // p = z + beta p
    mv_xpay_cols(z_mv, std::span<const scalar_t>(beta, uk), p_mv, n, k_count, active);
    mv_norms(r_mv, n, k_count, std::span<scalar_t>(rznext, uk));
    for (int c = 0; c < k_count; ++c) {
      const std::size_t sc = static_cast<std::size_t>(c);
      if (!active[sc]) continue;
      IterResult& r = result.results[sc];
      ++r.iterations;
      relres[sc] = rznext[sc] / bnorm[sc];
      if (opts.track_history) r.history.push_back(relres[sc]);
      stopc[sc] =
          static_cast<int>(ws.batch_guards[sc].check(relres[sc], r.iterations, r.failure));
    }
  }
  for (int c = 0; c < k_count; ++c) {
    if (active[static_cast<std::size_t>(c)]) finalize(c);
  }
}

// ---------------------------------------------------------- block GMRES

namespace {

/// Per-column restart phases of the block GMRES driver.
enum BgPhase : int { kNeedStart = 0, kInCycle = 1, kEndCycle = 2, kDone = 3 };

}  // namespace

void block_gmres_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                       std::span<scalar_t> x, int k_count, const IterOptions& opts,
                       const Preconditioner* prec, SolveWorkspace& ws, BatchResult& result) {
  assert(a.num_rows == a.num_cols);
  assert(k_count >= 1);
  const ordinal_t n = a.num_rows;
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t uk = static_cast<std::size_t>(k_count);
  const std::size_t nk = un * uk;
  assert(b.size() == nk && x.size() == nk);
  const int m = opts.gmres_restart;
  assert(m >= 1);

  result.ensure(k_count);

  // Per-column small state: [bnorm | relres | coefa | coefb]; coefa/coefb
  // are reused as whatever per-column coefficient the current kernel needs
  // (orthogonalization h, its negation, 1/beta, y_i, ...).
  ws.ensure_small(ws.batch_scalars, 4 * uk);
  scalar_t* bnorm = ws.batch_scalars.data();
  scalar_t* relres = bnorm + uk;
  scalar_t* coefa = relres + uk;
  scalar_t* coefb = coefa + uk;
  // Per-column integer state: [phase | j (cycle position) | kcol (columns
  // built this cycle) | stop].
  ws.ensure_small(ws.batch_ints, 4 * uk);
  int* phase = ws.batch_ints.data();
  int* jpos = phase + uk;
  int* kcol = jpos + uk;
  int* stopc = kcol + uk;
  ws.batch_active.assign(uk, 0);
  std::span<char> mask(ws.batch_active.data(), uk);
  refill_guards(ws, opts, k_count);

  // K-strided small dense state in the shared GMRES arrays: the Hessenberg
  // entry (i, j) of column c lives at hess[(j*(m+1) + i)*K + c], and
  // likewise cs/sn/g/y — so each column's cycle state is its own lane.
  ws.ensure_small(ws.hess, static_cast<std::size_t>(m + 1) * static_cast<std::size_t>(m) * uk);
  ws.ensure_small(ws.cs, static_cast<std::size_t>(m) * uk);
  ws.ensure_small(ws.sn, static_cast<std::size_t>(m) * uk);
  ws.ensure_small(ws.g, (static_cast<std::size_t>(m) + 1) * uk);
  ws.ensure_small(ws.y, static_cast<std::size_t>(m) * uk);

  auto h = [&](int i, int j, std::size_t sc) -> scalar_t& {
    return ws.hess[(static_cast<std::size_t>(j) * (static_cast<std::size_t>(m) + 1) +
                    static_cast<std::size_t>(i)) *
                       uk +
                   sc];
  };

  // Multi-vector slots: basis 0..m, then w, tmp, op, preconditioner
  // scratch. Touch them all up front so the pool never reallocates
  // mid-solve (and so the workspace.alloc fault fires here).
  for (int i = 0; i <= m + 3; ++i) ws.vec(static_cast<std::size_t>(i), nk);
  std::span<scalar_t> prec_scratch = ws.vec(static_cast<std::size_t>(m) + 4, 2 * un);
  auto basis = [&](int i) {
    return std::span<scalar_t>(ws.pool[static_cast<std::size_t>(i)].data(), nk);
  };
  std::span<scalar_t> w = basis(m + 1);
  std::span<scalar_t> tmp = basis(m + 2);
  std::span<scalar_t> op = basis(m + 3);

  auto apply_right_prec = [&](std::span<const scalar_t> in, std::span<scalar_t> out) {
    if (prec) {
      prec->apply_multi(in, out, n, k_count, prec_scratch);
    } else {
      mv_copy(in, out);
    }
  };

  mv_norms(b, n, k_count, std::span<scalar_t>(bnorm, uk));
  int num_live = 0;
  for (int c = 0; c < k_count; ++c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    phase[sc] = kDone;
    if (!begin_column(opts, x, n, k_count, c, bnorm[sc], ws, result)) continue;
    stopc[sc] = static_cast<int>(SolveStatus::Converged);
    phase[sc] = kNeedStart;  // provisional; the initial residual may Done it
    ++num_live;
  }

  // Identical to the single-core epilogue; run once per column, at Done.
  auto finalize = [&](int c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    IterResult& r = result.results[sc];
    if (static_cast<SolveStatus>(stopc[sc]) != SolveStatus::Converged) {
      r.status = static_cast<SolveStatus>(stopc[sc]);
    }
    r.relative_residual = relres[sc];
    r.converged = relres[sc] <= opts.tolerance;
    if (r.converged) {
      r.status = SolveStatus::Converged;
      r.failure.clear();
    }
    phase[sc] = kDone;
  };

  // Routing shared by the initial residual and every end-of-cycle: decides
  // whether the column re-enters the outer loop, exactly the single core's
  // `while (stop == Converged && iterations < max && relres > tol)`.
  auto route = [&](int c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    if (static_cast<SolveStatus>(stopc[sc]) != SolveStatus::Converged ||
        relres[sc] <= opts.tolerance ||
        result.results[sc].iterations >= opts.max_iterations) {
      finalize(c);
    } else {
      phase[sc] = kNeedStart;
    }
  };

  if (num_live > 0) {
    // Initial residual for every live column (mirrors the single core's
    // pre-loop block): w = B - A X, relres, history, guard.
    graph::spmm(a, x, w, k_count);
    mv_axpby(1.0, b, -1.0, w, n, k_count);
    mv_norms(w, n, k_count, std::span<scalar_t>(coefa, uk));
    for (int c = 0; c < k_count; ++c) {
      const std::size_t sc = static_cast<std::size_t>(c);
      if (phase[sc] == kDone) continue;
      IterResult& r = result.results[sc];
      relres[sc] = coefa[sc] / bnorm[sc];
      if (opts.track_history) r.history.push_back(relres[sc]);
      stopc[sc] = static_cast<int>(ws.batch_guards[sc].check(relres[sc], 0, r.failure));
      route(c);
    }
  }

  auto any_in_phase = [&](int p) {
    for (int c = 0; c < k_count; ++c) {
      if (phase[static_cast<std::size_t>(c)] == p) return true;
    }
    return false;
  };
  auto set_mask = [&](int p) {
    bool any = false;
    for (int c = 0; c < k_count; ++c) {
      const std::size_t sc = static_cast<std::size_t>(c);
      mask[sc] = phase[sc] == p ? 1 : 0;
      any = any || mask[sc];
    }
    return any;
  };

  int tick = 0;
  while (any_in_phase(kNeedStart) || any_in_phase(kInCycle) || any_in_phase(kEndCycle)) {
    obs::Span iter_span("solver.iteration");
    iter_span.arg("iteration", tick++);

    // --- restart: v0 = (b - A x) / ||b - A x|| for NeedStart columns ----
    if (set_mask(kNeedStart)) {
      mv_copy_cols(x, op, n, k_count, mask);
      graph::spmm(a, op, w, k_count);
      mv_copy_cols(w, basis(0), n, k_count, mask);
      mv_axpby_masked(1.0, b, -1.0, basis(0), n, k_count, mask);
      mv_norms(basis(0), n, k_count, std::span<scalar_t>(coefa, uk));
      for (int c = 0; c < k_count; ++c) {
        const std::size_t sc = static_cast<std::size_t>(c);
        if (!mask[sc]) continue;
        const scalar_t beta = coefa[sc];
        if (beta == 0) {
          relres[sc] = 0;
          mask[sc] = 0;
          finalize(c);
          continue;
        }
        coefb[sc] = 1.0 / beta;
        for (int i = 0; i <= m; ++i) ws.g[static_cast<std::size_t>(i) * uk + sc] = 0.0;
        ws.g[sc] = beta;
        for (int j = 0; j < m; ++j) {
          for (int i = 0; i <= m; ++i) h(i, j, sc) = 0.0;
          ws.cs[static_cast<std::size_t>(j) * uk + sc] = 0.0;
          ws.sn[static_cast<std::size_t>(j) * uk + sc] = 0.0;
        }
        jpos[sc] = 0;
        phase[sc] = kInCycle;
      }
      mv_scale_cols(basis(0), std::span<const scalar_t>(coefb, uk), n, k_count, mask);
    }

    // --- one Arnoldi step for every InCycle column ----------------------
    if (set_mask(kInCycle)) {
      // op lane c = basis(j[c]) lane c (per-column slot, strided copy).
      for (int c = 0; c < k_count; ++c) {
        const std::size_t sc = static_cast<std::size_t>(c);
        if (!mask[sc]) continue;
        std::span<scalar_t> vj = basis(jpos[sc]);
        for (std::size_t i = 0; i < un; ++i) op[i * uk + sc] = vj[i * uk + sc];
      }
      apply_right_prec(op, tmp);
      graph::spmm(a, tmp, w, k_count);
      // Injected NaN (check builds), column 0 only.
      if (PARMIS_FAULT_POINT("gmres.poison") && mask[0]) {
        w[0] = std::numeric_limits<scalar_t>::quiet_NaN();
      }
      int max_j = 0;
      for (int c = 0; c < k_count; ++c) {
        const std::size_t sc = static_cast<std::size_t>(c);
        if (mask[sc] && jpos[sc] > max_j) max_j = jpos[sc];
      }
      // Orthogonalize slot by slot: the fused dot at slot s serves every
      // column whose cycle reaches that deep, then the masked subtract
      // lands before slot s+1's dot — the modified-Gram-Schmidt order of
      // the single core, per column.
      std::span<char> smask = mask;  // reuse: narrow per slot, restore after
      for (int s = 0; s <= max_j; ++s) {
        bool any = false;
        for (int c = 0; c < k_count; ++c) {
          const std::size_t sc = static_cast<std::size_t>(c);
          smask[sc] = (phase[sc] == kInCycle && jpos[sc] >= s) ? 1 : 0;
          any = any || smask[sc];
        }
        if (!any) continue;
        mv_dot(w, basis(s), n, k_count, std::span<scalar_t>(coefa, uk));
        for (int c = 0; c < k_count; ++c) {
          const std::size_t sc = static_cast<std::size_t>(c);
          if (!smask[sc]) continue;
          h(s, jpos[sc], sc) = coefa[sc];
          coefb[sc] = -coefa[sc];
        }
        mv_axpy_cols(std::span<const scalar_t>(coefb, uk), basis(s), w, n, k_count, smask);
      }
      set_mask(kInCycle);  // restore the full InCycle mask
      mv_norms(w, n, k_count, std::span<scalar_t>(coefa, uk));
      for (int c = 0; c < k_count; ++c) {
        const std::size_t sc = static_cast<std::size_t>(c);
        if (!mask[sc]) continue;
        const int j = jpos[sc];
        h(j + 1, j, sc) = coefa[sc];
        if (coefa[sc] != 0) {
          // basis(j+1) lane = w lane / h(j+1, j): copy then scale, exactly
          // the single core's op order.
          std::span<scalar_t> vnext = basis(j + 1);
          const scalar_t inv = 1.0 / coefa[sc];
          for (std::size_t i = 0; i < un; ++i) vnext[i * uk + sc] = w[i * uk + sc];
          for (std::size_t i = 0; i < un; ++i) vnext[i * uk + sc] *= inv;
        }
        IterResult& r = result.results[sc];
        // Apply stored Givens rotations, then form the new one.
        for (int i = 0; i < j; ++i) {
          const scalar_t ci = ws.cs[static_cast<std::size_t>(i) * uk + sc];
          const scalar_t si = ws.sn[static_cast<std::size_t>(i) * uk + sc];
          const scalar_t t = ci * h(i, j, sc) + si * h(i + 1, j, sc);
          h(i + 1, j, sc) = -si * h(i, j, sc) + ci * h(i + 1, j, sc);
          h(i, j, sc) = t;
        }
        const scalar_t denom = std::hypot(h(j, j, sc), h(j + 1, j, sc));
        if (denom == 0 || !std::isfinite(denom)) {
          r.failure = resilience::FailureInfo{"iterate", "solver.gmres.breakdown.hessenberg",
                                              r.iterations, -1};
          stopc[sc] = static_cast<int>(SolveStatus::Breakdown);
          finalize(c);  // abort_cycle: no x update for this column
          continue;
        }
        const scalar_t cj = h(j, j, sc) / denom;
        const scalar_t sj = h(j + 1, j, sc) / denom;
        ws.cs[static_cast<std::size_t>(j) * uk + sc] = cj;
        ws.sn[static_cast<std::size_t>(j) * uk + sc] = sj;
        h(j, j, sc) = cj * h(j, j, sc) + sj * h(j + 1, j, sc);
        h(j + 1, j, sc) = 0;
        ws.g[static_cast<std::size_t>(j + 1) * uk + sc] =
            -sj * ws.g[static_cast<std::size_t>(j) * uk + sc];
        ws.g[static_cast<std::size_t>(j) * uk + sc] =
            cj * ws.g[static_cast<std::size_t>(j) * uk + sc];

        ++r.iterations;
        relres[sc] = std::abs(ws.g[static_cast<std::size_t>(j + 1) * uk + sc]) / bnorm[sc];
        if (opts.track_history) r.history.push_back(relres[sc]);
        if (relres[sc] <= opts.tolerance) {
          kcol[sc] = j + 1;
          phase[sc] = kEndCycle;
          continue;
        }
        stopc[sc] =
            static_cast<int>(ws.batch_guards[sc].check(relres[sc], r.iterations, r.failure));
        if (static_cast<SolveStatus>(stopc[sc]) != SolveStatus::Converged) {
          finalize(c);  // abort_cycle
          continue;
        }
        jpos[sc] = j + 1;
        if (jpos[sc] == m || r.iterations >= opts.max_iterations) {
          kcol[sc] = jpos[sc];
          phase[sc] = kEndCycle;
        }
      }
    }

    // --- end of cycle: x += M^{-1} (V y), true residual, route ----------
    if (set_mask(kEndCycle)) {
      for (int c = 0; c < k_count; ++c) {
        const std::size_t sc = static_cast<std::size_t>(c);
        if (!mask[sc]) continue;
        const int kc = kcol[sc];
        for (int i = kc - 1; i >= 0; --i) {
          scalar_t acc = ws.g[static_cast<std::size_t>(i) * uk + sc];
          for (int j = i + 1; j < kc; ++j) {
            acc -= h(i, j, sc) * ws.y[static_cast<std::size_t>(j) * uk + sc];
          }
          ws.y[static_cast<std::size_t>(i) * uk + sc] = acc / h(i, i, sc);
        }
      }
      mv_fill_cols(w, 0.0, n, k_count, mask);
      int max_k = 0;
      for (int c = 0; c < k_count; ++c) {
        const std::size_t sc = static_cast<std::size_t>(c);
        if (mask[sc] && kcol[sc] > max_k) max_k = kcol[sc];
      }
      std::span<char> imask = mask;  // reuse: narrow per slot, restore after
      for (int i = 0; i < max_k; ++i) {
        bool any = false;
        for (int c = 0; c < k_count; ++c) {
          const std::size_t sc = static_cast<std::size_t>(c);
          imask[sc] = (phase[sc] == kEndCycle && kcol[sc] > i) ? 1 : 0;
          if (imask[sc]) coefa[sc] = ws.y[static_cast<std::size_t>(i) * uk + sc];
          any = any || imask[sc];
        }
        if (!any) continue;
        mv_axpy_cols(std::span<const scalar_t>(coefa, uk), basis(i), w, n, k_count, imask);
      }
      set_mask(kEndCycle);
      apply_right_prec(w, tmp);
      mv_axpby_masked(1.0, tmp, 1.0, x, n, k_count, mask);
      // True residual after the restart update (reusing w and op).
      mv_copy_cols(x, op, n, k_count, mask);
      graph::spmm(a, op, w, k_count);
      mv_axpby_masked(1.0, b, -1.0, w, n, k_count, mask);
      mv_norms(w, n, k_count, std::span<scalar_t>(coefa, uk));
      for (int c = 0; c < k_count; ++c) {
        const std::size_t sc = static_cast<std::size_t>(c);
        if (!mask[sc]) continue;
        IterResult& r = result.results[sc];
        relres[sc] = coefa[sc] / bnorm[sc];
        if (relres[sc] > opts.tolerance) {
          stopc[sc] =
              static_cast<int>(ws.batch_guards[sc].check(relres[sc], r.iterations, r.failure));
        }
        route(c);
      }
    }
  }
}

}  // namespace parmis::solver
