#pragma once
/// \file jacobi.hpp
/// \brief Damped Jacobi smoothing (the Table V multigrid smoother).

#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::solver {

/// Reciprocal diagonal of a; throws std::runtime_error on a zero diagonal.
[[nodiscard]] std::vector<scalar_t> inverted_diagonal(const graph::CrsMatrix& a);

/// `sweeps` iterations of damped Jacobi: x <- x + omega D^{-1} (b - A x).
/// Fully parallel and deterministic.
void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega);

}  // namespace parmis::solver
