#pragma once
/// \file jacobi.hpp
/// \brief Damped Jacobi smoothing (the Table V multigrid smoother) and its
/// preconditioner adapter (the "jacobi" registry entry).

#include <span>
#include <vector>

#include "graph/crs.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// Reciprocal diagonal of a; throws std::runtime_error on a zero diagonal.
[[nodiscard]] std::vector<scalar_t> inverted_diagonal(const graph::CrsMatrix& a);

/// `sweeps` iterations of damped Jacobi: x <- x + omega D^{-1} (b - A x).
/// Fully parallel and deterministic. Allocates its double-buffer; prefer
/// the scratch overload on hot paths.
void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega);

/// Allocation-free variant: `x_next` is the caller-owned double buffer
/// (`a.num_rows` elements). This is what the AMG V-cycle and the "jacobi"
/// preconditioner use for zero-allocation warm applications.
void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega, std::span<scalar_t> x_next);

/// Preconditioner adapter: z = M^{-1} r approximated by `sweeps` damped
/// Jacobi sweeps on A z = r from z = 0. All state (inverted diagonal,
/// sweep double-buffer) is allocated at construction, so apply() performs
/// zero heap allocations.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const graph::CrsMatrix& a, int sweeps = 2,
                                scalar_t omega = 2.0 / 3.0)
      : a_(a), inv_diag_(inverted_diagonal(a)), sweeps_(sweeps), omega_(omega),
        x_next_(static_cast<std::size_t>(a.num_rows)) {}

  void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }
  [[nodiscard]] std::span<const scalar_t> inv_diag() const { return inv_diag_; }

 private:
  const graph::CrsMatrix& a_;
  std::vector<scalar_t> inv_diag_;
  int sweeps_;
  scalar_t omega_;
  mutable std::vector<scalar_t> x_next_;
};

}  // namespace parmis::solver
