#pragma once
/// \file jacobi.hpp
/// \brief Damped Jacobi smoothing (the Table V multigrid smoother) and its
/// preconditioner adapter (the "jacobi" registry entry).

#include <span>
#include <vector>

#include "graph/crs.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// Reciprocal diagonal of a; throws std::runtime_error on a zero diagonal.
[[nodiscard]] std::vector<scalar_t> inverted_diagonal(const graph::CrsMatrix& a);

/// `inverted_diagonal` into a caller-owned buffer of size `num_rows` — the
/// zero-allocation variant warm rebuilds use (Chebyshev eigenvalue
/// re-estimation refreshes its diagonal in place through this). Same
/// values, same singularity classification.
void inverted_diagonal_into(const graph::CrsMatrix& a, std::span<scalar_t> d);

/// `sweeps` iterations of damped Jacobi: x <- x + omega D^{-1} (b - A x).
/// Fully parallel and deterministic. Allocates its double-buffer; prefer
/// the scratch overload on hot paths.
void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega);

/// Allocation-free variant: `x_next` is the caller-owned double buffer
/// (`a.num_rows` elements). This is what the AMG V-cycle and the "jacobi"
/// preconditioner use for zero-allocation warm applications.
void jacobi_smooth(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                   std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                   scalar_t omega, std::span<scalar_t> x_next);

/// Batched damped Jacobi over n x k_count row-major multi-vectors: one
/// matrix traversal per sweep feeds all K columns. Column c is
/// bit-identical to `jacobi_smooth` on the gathered column (per-row
/// accumulation in entry order, identical update expression). `x_next` is
/// the caller-owned double buffer (`a.num_rows * k_count` elements).
void jacobi_smooth_multi(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                         std::span<const scalar_t> b, std::span<scalar_t> x, int sweeps,
                         scalar_t omega, std::span<scalar_t> x_next, int k_count);

/// Preconditioner adapter: z = M^{-1} r approximated by `sweeps` damped
/// Jacobi sweeps on A z = r from z = 0. All state (inverted diagonal,
/// sweep double-buffer) is allocated at construction, so apply() performs
/// zero heap allocations.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const graph::CrsMatrix& a, int sweeps = 2,
                                scalar_t omega = 2.0 / 3.0)
      : a_(a), inv_diag_(inverted_diagonal(a)), sweeps_(sweeps), omega_(omega),
        x_next_(static_cast<std::size_t>(a.num_rows)) {}

  void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const override;
  /// Grows the sweep double buffer to `n * k_count` so batched applies up
  /// to that width allocate nothing.
  bool prepare_multi(ordinal_t n, int k_count) override {
    const std::size_t nk = static_cast<std::size_t>(n) * static_cast<std::size_t>(k_count);
    if (x_next_.size() >= nk) return false;
    x_next_.resize(nk);
    return true;
  }
  /// Fused batched apply: K columns per sweep traversal. The double buffer
  /// grows to `n * k_count` on the first batched apply (callers that skip
  /// `prepare_multi`) and is reused warm thereafter.
  void apply_multi(std::span<const scalar_t> r, std::span<scalar_t> z, ordinal_t n, int k_count,
                   std::span<scalar_t> scratch) const override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }
  [[nodiscard]] std::span<const scalar_t> inv_diag() const { return inv_diag_; }

 private:
  const graph::CrsMatrix& a_;
  std::vector<scalar_t> inv_diag_;
  int sweeps_;
  scalar_t omega_;
  mutable std::vector<scalar_t> x_next_;
};

}  // namespace parmis::solver
