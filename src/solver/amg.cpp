#include "solver/amg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "coloring/d2c_aggregation.hpp"
#include "common/timer.hpp"
#include "graph/ops.hpp"
#include "graph/spgemm.hpp"
#include "graph/spmm.hpp"
#include "graph/spmv.hpp"
#include "parallel/parallel_for.hpp"
#include "resilience/fault.hpp"
#include "resilience/status.hpp"
#include "solver/jacobi.hpp"
#include "solver/multivector.hpp"
#include "solver/serial_aggregation.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

const char* to_string(AggregationScheme s) {
  switch (s) {
    case AggregationScheme::SerialAgg: return "Serial Agg";
    case AggregationScheme::SerialD2C: return "Serial D2C";
    case AggregationScheme::NBD2C: return "NB D2C";
    case AggregationScheme::Mis2Basic: return "MIS2 Basic";
    case AggregationScheme::Mis2Agg: return "MIS2 Agg";
  }
  return "?";
}

core::Aggregation run_aggregation(graph::GraphView adjacency, AggregationScheme scheme,
                                  const core::Mis2Options& mis2_opts,
                                  core::CoarsenHandle& handle) {
  core::CoarsenOptions copts;
  copts.mis2 = mis2_opts;
  switch (scheme) {
    case AggregationScheme::SerialAgg:
      return serial_aggregation(adjacency);
    case AggregationScheme::SerialD2C:
      return coloring::aggregate_d2c(adjacency, coloring::D2cMode::Serial);
    case AggregationScheme::NBD2C:
      return coloring::aggregate_d2c(adjacency, coloring::D2cMode::Parallel);
    case AggregationScheme::Mis2Basic:
      (void)core::find_coarsener("mis2-basic").make()->run(adjacency, {}, handle, copts);
      return handle.take_aggregation();
    case AggregationScheme::Mis2Agg:
      (void)core::find_coarsener("mis2").make()->run(adjacency, {}, handle, copts);
      return handle.take_aggregation();
  }
  throw std::invalid_argument("unknown aggregation scheme");
}

core::Aggregation run_aggregation(graph::GraphView adjacency, AggregationScheme scheme,
                                  const core::Mis2Options& mis2_opts) {
  core::CoarsenHandle handle;
  return run_aggregation(adjacency, scheme, mis2_opts, handle);
}

core::Aggregation run_aggregation(graph::GraphView adjacency, const std::string& coarsener,
                                  const core::Mis2Options& mis2_opts,
                                  core::CoarsenHandle& handle) {
  core::CoarsenOptions copts;
  copts.mis2 = mis2_opts;
  (void)core::find_coarsener(coarsener).make()->run(adjacency, {}, handle, copts);
  return handle.take_aggregation();
}

namespace {

/// Builder configuration for the options: the AMG knobs mapped onto the
/// unified multilevel engine (`max_levels` counts operator levels here,
/// coarsening steps there). Table V schemes that are not registered
/// coarseners plug in through the aggregator hook.
multilevel::Options builder_options(const AmgOptions& opts) {
  multilevel::Options mo;
  mo.max_levels = std::max(0, opts.max_levels - 1);
  mo.min_coarse_size = opts.coarse_size;
  mo.rate_floor = opts.coarsening_rate_floor;
  mo.complexity_cap = opts.operator_complexity_cap;
  mo.prolongator_omega = opts.prolongator_omega;
  mo.mis2 = opts.mis2;
  // Pass the *optional* through unchanged: when unset, the Builder (and
  // any later rebuild()) inherits the then-ambient configuration instead
  // of a stale build-time snapshot.
  mo.ctx = opts.ctx;
  if (!opts.coarsener.empty()) {
    mo.coarsener = opts.coarsener;
  } else if (opts.scheme == AggregationScheme::Mis2Agg) {
    mo.coarsener = "mis2";
  } else if (opts.scheme == AggregationScheme::Mis2Basic) {
    mo.coarsener = "mis2-basic";
  } else {
    const AggregationScheme scheme = opts.scheme;
    const core::Mis2Options mis2 = opts.mis2;
    mo.aggregator = [scheme, mis2](graph::GraphView g, core::CoarsenHandle& handle,
                                   const core::CoarsenOptions&, int /*level*/) {
      return run_aggregation(g, scheme, mis2, handle);
    };
  }
  return mo;
}

}  // namespace

AmgHierarchy AmgHierarchy::build(graph::CrsMatrix a_fine, const AmgOptions& opts) {
  // Injected setup failure (check builds): the classified throw a fallback
  // chain reroutes into a SetupFailed attempt record.
  if (PARMIS_FAULT_POINT("amg.setup_throw")) {
    throw resilience::SolveError(
        resilience::SolveStatus::SetupFailed,
        resilience::FailureInfo{"setup", "setup.amg.injected_fault", -1, -1},
        "amg: injected setup failure (fault point amg.setup_throw)");
  }
  AmgHierarchy h;
  h.opts_ = opts;
  Timer setup_timer;
  // The whole setup (aggregation, SpGEMM, smoother estimation) runs under
  // the options' context; unset inherits the ambient configuration.
  const Context ctx = opts.ctx ? *opts.ctx : Context::default_ctx();
  Context::Scope scope(ctx);

  h.builder_ = multilevel::Builder(builder_options(opts));
  (void)h.builder_.build_galerkin(std::move(a_fine), h.handle_);
  h.aggregation_seconds_ = h.handle_.build_stats().aggregation_seconds;
  h.finish_setup();
  h.setup_seconds_ = setup_timer.seconds();
  return h;
}

AmgHierarchy AmgHierarchy::adopt(
    std::vector<AmgLevel> levels, const AmgOptions& opts,
    std::vector<multilevel::SetupWorkspace::GalerkinLevel> workspace,
    multilevel::StopReason stop) {
  AmgHierarchy h;
  h.opts_ = opts;
  Timer setup_timer;
  const Context ctx = opts.ctx ? *opts.ctx : Context::default_ctx();
  Context::Scope scope(ctx);
  h.builder_ = multilevel::Builder(builder_options(opts));
  multilevel::restore_galerkin(h.handle_, std::move(levels), std::move(workspace), stop);
  h.finish_setup();
  h.setup_seconds_ = setup_timer.seconds();
  return h;
}

namespace {

/// Effective direct-solve limit: explicit when set, else 4x the coarse
/// target (hierarchies that coarsen normally keep their exact LU bottom).
ordinal_t direct_limit(const AmgOptions& opts) {
  return opts.direct_size_limit > 0 ? opts.direct_size_limit : 4 * opts.coarse_size;
}

/// Factor the coarsest operator resiliently. A singular coarsest block
/// (near-null-space aliasing on a singular fine operator, or the injected
/// `amg.coarse_singular` fault) used to throw a raw runtime_error out of
/// the whole setup; instead the bottom solve degrades in two steps:
/// plain LU → LU with a tiny diagonal shift applied at fill time →
/// smoother-only bottom. `bottom` names the variant chosen ("lu",
/// "lu-perturbed", "smoother"). Passing the previous factorization as
/// `reuse` refactors in place (warm `rebuild`: the dense block is never
/// re-allocated, even across a failed plain attempt — `refactor` refills
/// from scratch each try).
std::unique_ptr<DenseLU> factor_bottom(const graph::CrsMatrix& a, const char*& bottom,
                                       std::unique_ptr<DenseLU> reuse = nullptr) {
  std::unique_ptr<DenseLU> lu = std::move(reuse);
  const auto factor = [&](scalar_t shift) {
    if (lu) {
      lu->refactor(a, shift);
    } else {
      lu = std::make_unique<DenseLU>(a, shift);
    }
  };
  if (!PARMIS_FAULT_POINT("amg.coarse_singular")) {
    try {
      factor(0);
      bottom = "lu";
      return lu;
    } catch (const resilience::SolveError&) {
      // fall through to the perturbed retry
    }
  }
  // Shift the diagonal by a tiny multiple of the largest entry: exact for
  // the well-posed part of the operator, well-posed for the null space.
  scalar_t amax = 0;
  for (const scalar_t v : a.values) amax = std::max(amax, std::abs(v));
  const scalar_t shift = (amax > 0 ? amax : scalar_t{1}) * scalar_t{1e-10};
  try {
    factor(shift);
    bottom = "lu-perturbed";
    return lu;
  } catch (const resilience::SolveError&) {
    // Rows with no stored diagonal cannot be fixed by a shift; bottom out
    // with smoother sweeps, which never factor anything.
    bottom = "smoother";
    return nullptr;
  }
}

}  // namespace

void AmgHierarchy::rebuild(const graph::CrsMatrix& a_fine) {
  Timer setup_timer;
  const Context ctx = opts_.ctx ? *opts_.ctx : Context::default_ctx();
  Context::Scope scope(ctx);

  (void)builder_.rebuild_galerkin(a_fine, handle_);
  // Smoothers and the coarse LU are value-dependent; the V-cycle
  // workspaces are structure-shaped and already sized. Both refresh in
  // place: Chebyshev re-runs its power iteration into existing scratch
  // (bit-identical to fresh construction) and the coarse LU refactors its
  // own dense storage, so a warm rebuild allocates nothing here.
  const std::vector<AmgLevel>& levels = handle_.ops();
  if (opts_.smoother == SmootherType::Chebyshev) {
    for (std::size_t i = 0; i < levels.size(); ++i) {
      chebyshev_[i]->reestimate(levels[i].a);
    }
  }
  if (coarse_lu_) {
    coarse_lu_ = factor_bottom(levels.back().a, bottom_solve_, std::move(coarse_lu_));
  }
  setup_seconds_ = setup_timer.seconds();
}

void AmgHierarchy::finish_setup() {
  const std::vector<AmgLevel>& levels = handle_.ops();
  chebyshev_.clear();
  chebyshev_.resize(levels.size());
  if (opts_.smoother == SmootherType::Chebyshev) {
    for (std::size_t i = 0; i < levels.size(); ++i) {
      chebyshev_[i] = std::make_unique<ChebyshevSmoother>(levels[i].a, opts_.chebyshev_degree);
    }
  }
  // Bottom solve: a dense LU when the coarsest level is genuinely coarse;
  // when an early stop (rate floor, complexity cap, stall) left it large,
  // factoring it densely would be the new blowup — bottom out with
  // smoother sweeps instead. The factorization itself degrades through
  // `factor_bottom` when the coarsest block is singular.
  if (levels.back().a.num_rows <= direct_limit(opts_)) {
    coarse_lu_ = factor_bottom(levels.back().a, bottom_solve_);
  } else {
    coarse_lu_ = nullptr;
    bottom_solve_ = "smoother";
  }

  // V-cycle workspaces, including the smoother scratch: apply()/vcycle()
  // never allocate.
  work_r_.resize(levels.size());
  work_bc_.resize(levels.size());
  work_xc_.resize(levels.size());
  work_s1_.resize(levels.size());
  work_s2_.resize(levels.size());
  work_s3_.resize(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const std::size_t n = static_cast<std::size_t>(levels[i].a.num_rows);
    work_r_[i].resize(n);
    work_s1_[i].resize(n);
    if (opts_.smoother == SmootherType::Chebyshev) {
      work_s2_[i].resize(n);
      work_s3_[i].resize(n);
    }
    if (i + 1 < levels.size()) {
      const std::size_t nc = static_cast<std::size_t>(levels[i + 1].a.num_rows);
      work_bc_[i].resize(nc);
      work_xc_[i].resize(nc);
    }
  }
  // Multi-vector workspaces are demand-grown by ensure_mwork(); a fresh
  // setup just resets the width so stale level shapes are never reused.
  mwork_r_.assign(levels.size(), {});
  mwork_bc_.assign(levels.size(), {});
  mwork_xc_.assign(levels.size(), {});
  mwork_s1_.assign(levels.size(), {});
  mwork_s2_.assign(levels.size(), {});
  mwork_s3_.assign(levels.size(), {});
  mwork_k_ = 0;
}

void AmgHierarchy::ensure_mwork(int k_count) const {
  if (k_count <= mwork_k_) return;
  const std::vector<AmgLevel>& levels = handle_.ops();
  const std::size_t uk = static_cast<std::size_t>(k_count);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const std::size_t n = static_cast<std::size_t>(levels[i].a.num_rows);
    mwork_r_[i].resize(n * uk);
    mwork_s1_[i].resize(n * uk);
    if (opts_.smoother == SmootherType::Chebyshev) {
      mwork_s2_[i].resize(n * uk);
      mwork_s3_[i].resize(n * uk);
    }
    if (i + 1 < levels.size()) {
      const std::size_t nc = static_cast<std::size_t>(levels[i + 1].a.num_rows);
      mwork_bc_[i].resize(nc * uk);
      mwork_xc_[i].resize(nc * uk);
    }
  }
  mwork_k_ = k_count;
}

void AmgHierarchy::smooth_level(std::size_t lvl, std::span<const scalar_t> rhs,
                                std::span<scalar_t> sol) const {
  const AmgLevel& level = handle_.ops()[lvl];
  if (chebyshev_[lvl]) {
    for (int s = 0; s < opts_.smoother_sweeps; ++s) {
      chebyshev_[lvl]->smooth(level.a, rhs, sol, work_s1_[lvl], work_s2_[lvl], work_s3_[lvl]);
    }
  } else {
    jacobi_smooth(level.a, level.inv_diag, rhs, sol, opts_.smoother_sweeps, opts_.jacobi_omega,
                  work_s1_[lvl]);
  }
}

void AmgHierarchy::cycle_level(std::size_t lvl, std::span<const scalar_t> b,
                               std::span<scalar_t> x) const {
  const std::vector<AmgLevel>& levels = handle_.ops();
  const AmgLevel& level = levels[lvl];
  if (lvl + 1 == levels.size()) {
    if (coarse_lu_) {
      coarse_lu_->solve(b, x);
    } else {
      smooth_level(lvl, b, x);
    }
    return;
  }

  auto smooth = [&](std::span<const scalar_t> rhs, std::span<scalar_t> sol) {
    smooth_level(lvl, rhs, sol);
  };

  // Pre-smooth.
  smooth(b, x);

  // Coarse-grid correction.
  std::span<scalar_t> r(work_r_[lvl]);
  graph::spmv(level.a, x, r);
  axpby(1.0, b, -1.0, r);  // r = b - A x
  std::span<scalar_t> bc(work_bc_[lvl]);
  graph::spmv(level.r, r, bc);
  std::span<scalar_t> xc(work_xc_[lvl]);
  fill(xc, 0.0);
  cycle_level(lvl + 1, bc, xc);
  // x += P xc
  graph::spmv(1.0, level.p, xc, 0.0, r);
  axpby(1.0, r, 1.0, x);

  // Post-smooth.
  smooth(b, x);
}

void AmgHierarchy::smooth_level_multi(std::size_t lvl, std::span<const scalar_t> rhs,
                                      std::span<scalar_t> sol, int k_count) const {
  const AmgLevel& level = handle_.ops()[lvl];
  const std::size_t nk =
      static_cast<std::size_t>(level.a.num_rows) * static_cast<std::size_t>(k_count);
  if (chebyshev_[lvl]) {
    for (int s = 0; s < opts_.smoother_sweeps; ++s) {
      chebyshev_[lvl]->smooth_multi(level.a, rhs, sol,
                                    std::span<scalar_t>(mwork_s1_[lvl].data(), nk),
                                    std::span<scalar_t>(mwork_s2_[lvl].data(), nk),
                                    std::span<scalar_t>(mwork_s3_[lvl].data(), nk), k_count);
    }
  } else {
    jacobi_smooth_multi(level.a, level.inv_diag, rhs, sol, opts_.smoother_sweeps,
                        opts_.jacobi_omega, std::span<scalar_t>(mwork_s1_[lvl].data(), nk),
                        k_count);
  }
}

void AmgHierarchy::cycle_level_multi(std::size_t lvl, std::span<const scalar_t> b,
                                     std::span<scalar_t> x, int k_count) const {
  const std::vector<AmgLevel>& levels = handle_.ops();
  const AmgLevel& level = levels[lvl];
  const std::size_t uk = static_cast<std::size_t>(k_count);
  if (lvl + 1 == levels.size()) {
    if (coarse_lu_) {
      coarse_lu_->solve_multi(b, x, k_count);
    } else {
      smooth_level_multi(lvl, b, x, k_count);
    }
    return;
  }

  // Pre-smooth.
  smooth_level_multi(lvl, b, x, k_count);

  // Coarse-grid correction — one fused kernel per grid transfer; per
  // column this is exactly the cycle_level op sequence.
  const ordinal_t n = level.a.num_rows;
  std::span<scalar_t> r(mwork_r_[lvl].data(), static_cast<std::size_t>(n) * uk);
  graph::spmm(level.a, x, r, k_count);
  mv_axpby(1.0, b, -1.0, r, n, k_count);  // R = B - A X
  const ordinal_t nc = levels[lvl + 1].a.num_rows;
  std::span<scalar_t> bc(mwork_bc_[lvl].data(), static_cast<std::size_t>(nc) * uk);
  graph::spmm(level.r, r, bc, k_count);
  std::span<scalar_t> xc(mwork_xc_[lvl].data(), static_cast<std::size_t>(nc) * uk);
  fill(xc, 0.0);
  cycle_level_multi(lvl + 1, bc, xc, k_count);
  // X += P Xc
  graph::spmm(1.0, level.p, xc, 0.0, r, k_count);
  mv_axpby(1.0, r, 1.0, x, n, k_count);

  // Post-smooth.
  smooth_level_multi(lvl, b, x, k_count);
}

void AmgHierarchy::vcycle(std::span<const scalar_t> b, std::span<scalar_t> x) const {
  cycle_level(0, b, x);
}

void AmgHierarchy::apply(std::span<const scalar_t> r, std::span<scalar_t> z) const {
  fill(z, 0.0);
  cycle_level(0, r, z);
}

void AmgHierarchy::apply_multi(std::span<const scalar_t> r, std::span<scalar_t> z, ordinal_t n,
                               int k_count, std::span<scalar_t> /*scratch*/) const {
  assert(n == handle_.ops().front().a.num_rows);
  ensure_mwork(k_count);
  const std::size_t nk = static_cast<std::size_t>(n) * static_cast<std::size_t>(k_count);
  fill(std::span<scalar_t>(z.data(), nk), 0.0);
  cycle_level_multi(0, r.subspan(0, nk), std::span<scalar_t>(z.data(), nk), k_count);
}

std::string AmgHierarchy::name() const {
  return std::string("sa-amg(") +
         (opts_.coarsener.empty() ? to_string(opts_.scheme) : opts_.coarsener.c_str()) + ")";
}

double AmgHierarchy::operator_complexity() const {
  return handle_.build_stats().operator_complexity;
}

double AmgHierarchy::grid_complexity() const { return handle_.build_stats().grid_complexity; }

}  // namespace parmis::solver
