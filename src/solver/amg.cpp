#include "solver/amg.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "coloring/d2c_aggregation.hpp"
#include "common/timer.hpp"
#include "graph/ops.hpp"
#include "graph/spgemm.hpp"
#include "graph/spmv.hpp"
#include "parallel/parallel_for.hpp"
#include "solver/jacobi.hpp"
#include "solver/serial_aggregation.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

const char* to_string(AggregationScheme s) {
  switch (s) {
    case AggregationScheme::SerialAgg: return "Serial Agg";
    case AggregationScheme::SerialD2C: return "Serial D2C";
    case AggregationScheme::NBD2C: return "NB D2C";
    case AggregationScheme::Mis2Basic: return "MIS2 Basic";
    case AggregationScheme::Mis2Agg: return "MIS2 Agg";
  }
  return "?";
}

core::Aggregation run_aggregation(graph::GraphView adjacency, AggregationScheme scheme,
                                  const core::Mis2Options& mis2_opts,
                                  core::CoarsenHandle& handle) {
  core::CoarsenOptions copts;
  copts.mis2 = mis2_opts;
  switch (scheme) {
    case AggregationScheme::SerialAgg:
      return serial_aggregation(adjacency);
    case AggregationScheme::SerialD2C:
      return coloring::aggregate_d2c(adjacency, coloring::D2cMode::Serial);
    case AggregationScheme::NBD2C:
      return coloring::aggregate_d2c(adjacency, coloring::D2cMode::Parallel);
    case AggregationScheme::Mis2Basic:
      (void)core::find_coarsener("mis2-basic").make()->run(adjacency, {}, handle, copts);
      return handle.take_aggregation();
    case AggregationScheme::Mis2Agg:
      (void)core::find_coarsener("mis2").make()->run(adjacency, {}, handle, copts);
      return handle.take_aggregation();
  }
  throw std::invalid_argument("unknown aggregation scheme");
}

core::Aggregation run_aggregation(graph::GraphView adjacency, AggregationScheme scheme,
                                  const core::Mis2Options& mis2_opts) {
  core::CoarsenHandle handle;
  return run_aggregation(adjacency, scheme, mis2_opts, handle);
}

core::Aggregation run_aggregation(graph::GraphView adjacency, const std::string& coarsener,
                                  const core::Mis2Options& mis2_opts,
                                  core::CoarsenHandle& handle) {
  core::CoarsenOptions copts;
  copts.mis2 = mis2_opts;
  (void)core::find_coarsener(coarsener).make()->run(adjacency, {}, handle, copts);
  return handle.take_aggregation();
}

namespace {

/// Tentative prolongator: column a = normalized indicator of aggregate a.
/// Exactly one entry per row, so the CRS assembles directly from labels.
graph::CrsMatrix tentative_prolongator(const core::Aggregation& agg) {
  const ordinal_t n = static_cast<ordinal_t>(agg.labels.size());
  std::vector<ordinal_t> agg_size(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < n; ++v) {
    ++agg_size[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)])];
  }

  graph::CrsMatrix p;
  p.num_rows = n;
  p.num_cols = agg.num_aggregates;
  p.row_map.resize(static_cast<std::size_t>(n) + 1);
  for (ordinal_t v = 0; v <= n; ++v) p.row_map[static_cast<std::size_t>(v)] = v;
  p.entries.resize(static_cast<std::size_t>(n));
  p.values.resize(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
    p.entries[static_cast<std::size_t>(v)] = a;
    p.values[static_cast<std::size_t>(v)] =
        1.0 / std::sqrt(static_cast<scalar_t>(agg_size[static_cast<std::size_t>(a)]));
  });
  return p;
}

/// P = (I - omega D^{-1} A) P̂  =  P̂ - omega * rowscale(D^{-1}, A P̂).
graph::CrsMatrix smooth_prolongator(const graph::CrsMatrix& a,
                                    const std::vector<scalar_t>& inv_diag,
                                    const graph::CrsMatrix& phat, scalar_t omega) {
  graph::CrsMatrix ap = graph::spgemm(a, phat);
  par::parallel_for(ap.num_rows, [&](ordinal_t i) {
    const scalar_t scale = inv_diag[static_cast<std::size_t>(i)];
    for (offset_t j = ap.row_map[i]; j < ap.row_map[i + 1]; ++j) {
      ap.values[static_cast<std::size_t>(j)] *= scale;
    }
  });
  return graph::matrix_add(1.0, phat, -omega, ap);
}

}  // namespace

AmgHierarchy AmgHierarchy::build(graph::CrsMatrix a_fine, const AmgOptions& opts) {
  AmgHierarchy h;
  h.opts_ = opts;
  Timer setup_timer;
  // The whole setup (aggregation, SpGEMM, smoother estimation) runs under
  // the options' context; unset inherits the ambient configuration.
  const Context ctx = opts.ctx ? *opts.ctx : Context::default_ctx();
  Context::Scope scope(ctx);

  graph::CrsMatrix current = std::move(a_fine);
  // One coarsening handle for the whole setup: MIS-2 scratch is reused
  // across every level of the hierarchy.
  core::CoarsenHandle coarsen_handle(opts.mis2, ctx);
  for (int lvl = 0; lvl < opts.max_levels; ++lvl) {
    AmgLevel level;
    level.a = std::move(current);
    level.inv_diag = inverted_diagonal(level.a);
    if (opts.smoother == SmootherType::Chebyshev) {
      level.chebyshev = std::make_unique<ChebyshevSmoother>(level.a, opts.chebyshev_degree);
    }

    const bool coarsest =
        level.a.num_rows <= opts.coarse_size || lvl == opts.max_levels - 1;
    if (!coarsest) {
      const graph::CrsGraph adj = graph::remove_self_loops(graph::GraphView(level.a));
      Timer agg_timer;
      const core::Aggregation agg =
          opts.coarsener.empty()
              ? run_aggregation(adj, opts.scheme, opts.mis2, coarsen_handle)
              : run_aggregation(adj, opts.coarsener, opts.mis2, coarsen_handle);
      h.aggregation_seconds_ += agg_timer.seconds();
      level.num_aggregates = agg.num_aggregates;

      // Coarsening stalled: stop here and solve this level directly.
      if (agg.num_aggregates >= level.a.num_rows) {
        h.levels_.push_back(std::move(level));
        break;
      }

      const graph::CrsMatrix phat = tentative_prolongator(agg);
      level.p = smooth_prolongator(level.a, level.inv_diag, phat, opts.prolongator_omega);
      level.r = graph::transpose_matrix(level.p);
      current = graph::spgemm(level.r, graph::spgemm(level.a, level.p));
      h.levels_.push_back(std::move(level));
    } else {
      h.levels_.push_back(std::move(level));
      break;
    }
  }

  h.coarse_lu_ = std::make_unique<DenseLU>(h.levels_.back().a);

  // V-cycle workspaces, including the smoother scratch: apply()/vcycle()
  // never allocate.
  h.work_r_.resize(h.levels_.size());
  h.work_bc_.resize(h.levels_.size());
  h.work_xc_.resize(h.levels_.size());
  h.work_s1_.resize(h.levels_.size());
  h.work_s2_.resize(h.levels_.size());
  h.work_s3_.resize(h.levels_.size());
  for (std::size_t i = 0; i < h.levels_.size(); ++i) {
    const std::size_t n = static_cast<std::size_t>(h.levels_[i].a.num_rows);
    h.work_r_[i].resize(n);
    h.work_s1_[i].resize(n);
    if (opts.smoother == SmootherType::Chebyshev) {
      h.work_s2_[i].resize(n);
      h.work_s3_[i].resize(n);
    }
    if (i + 1 < h.levels_.size()) {
      const std::size_t nc = static_cast<std::size_t>(h.levels_[i + 1].a.num_rows);
      h.work_bc_[i].resize(nc);
      h.work_xc_[i].resize(nc);
    }
  }

  h.setup_seconds_ = setup_timer.seconds();
  return h;
}

void AmgHierarchy::cycle_level(std::size_t lvl, std::span<const scalar_t> b,
                               std::span<scalar_t> x) const {
  const AmgLevel& level = levels_[lvl];
  if (lvl + 1 == levels_.size()) {
    coarse_lu_->solve(b, x);
    return;
  }

  auto smooth = [&](std::span<const scalar_t> rhs, std::span<scalar_t> sol) {
    if (level.chebyshev) {
      for (int s = 0; s < opts_.smoother_sweeps; ++s) {
        level.chebyshev->smooth(level.a, rhs, sol, work_s1_[lvl], work_s2_[lvl],
                                work_s3_[lvl]);
      }
    } else {
      jacobi_smooth(level.a, level.inv_diag, rhs, sol, opts_.smoother_sweeps,
                    opts_.jacobi_omega, work_s1_[lvl]);
    }
  };

  // Pre-smooth.
  smooth(b, x);

  // Coarse-grid correction.
  std::span<scalar_t> r(work_r_[lvl]);
  graph::spmv(level.a, x, r);
  axpby(1.0, b, -1.0, r);  // r = b - A x
  std::span<scalar_t> bc(work_bc_[lvl]);
  graph::spmv(level.r, r, bc);
  std::span<scalar_t> xc(work_xc_[lvl]);
  fill(xc, 0.0);
  cycle_level(lvl + 1, bc, xc);
  // x += P xc
  graph::spmv(1.0, level.p, xc, 0.0, r);
  axpby(1.0, r, 1.0, x);

  // Post-smooth.
  smooth(b, x);
}

void AmgHierarchy::vcycle(std::span<const scalar_t> b, std::span<scalar_t> x) const {
  cycle_level(0, b, x);
}

void AmgHierarchy::apply(std::span<const scalar_t> r, std::span<scalar_t> z) const {
  fill(z, 0.0);
  cycle_level(0, r, z);
}

std::string AmgHierarchy::name() const {
  return std::string("sa-amg(") +
         (opts_.coarsener.empty() ? to_string(opts_.scheme) : opts_.coarsener.c_str()) + ")";
}

double AmgHierarchy::operator_complexity() const {
  double total = 0;
  for (const AmgLevel& l : levels_) total += static_cast<double>(l.a.num_entries());
  return total / static_cast<double>(levels_.front().a.num_entries());
}

}  // namespace parmis::solver
