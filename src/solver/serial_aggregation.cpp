#include "solver/serial_aggregation.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace parmis::solver {

core::Aggregation serial_aggregation(graph::GraphView g) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;

  core::Aggregation agg;
  agg.labels.assign(static_cast<std::size_t>(n), invalid_ordinal);

  auto make_root = [&](ordinal_t v, bool absorb_all) {
    const ordinal_t id = agg.num_aggregates++;
    agg.roots.push_back(v);
    agg.labels[static_cast<std::size_t>(v)] = id;
    for (ordinal_t w : g.row(v)) {
      if (absorb_all || agg.labels[static_cast<std::size_t>(w)] == invalid_ordinal) {
        agg.labels[static_cast<std::size_t>(w)] = id;
      }
    }
  };

  // Phase 1: roots with fully free neighborhoods.
  for (ordinal_t v = 0; v < n; ++v) {
    if (agg.labels[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
    bool all_free = true;
    for (ordinal_t w : g.row(v)) {
      if (agg.labels[static_cast<std::size_t>(w)] != invalid_ordinal) {
        all_free = false;
        break;
      }
    }
    if (all_free) make_root(v, /*absorb_all=*/true);
  }

  // Track sizes for phase 2's tie-break.
  std::vector<ordinal_t> agg_size(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < n; ++v) {
    const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
    if (a != invalid_ordinal) ++agg_size[static_cast<std::size_t>(a)];
  }

  // Phase 2: attach stragglers to the strongest-coupled adjacent aggregate.
  std::vector<ordinal_t> nbr_aggs;
  for (ordinal_t v = 0; v < n; ++v) {
    if (agg.labels[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
    nbr_aggs.clear();
    for (ordinal_t w : g.row(v)) {
      const ordinal_t a = agg.labels[static_cast<std::size_t>(w)];
      if (a != invalid_ordinal) nbr_aggs.push_back(a);
    }
    if (nbr_aggs.empty()) continue;  // handled in phase 3
    std::sort(nbr_aggs.begin(), nbr_aggs.end());
    ordinal_t best = invalid_ordinal, best_coupling = 0, best_size = max_ordinal;
    std::size_t i = 0;
    while (i < nbr_aggs.size()) {
      const ordinal_t a = nbr_aggs[i];
      std::size_t j = i;
      while (j < nbr_aggs.size() && nbr_aggs[j] == a) ++j;
      const ordinal_t coupling = static_cast<ordinal_t>(j - i);
      if (coupling > best_coupling ||
          (coupling == best_coupling && agg_size[static_cast<std::size_t>(a)] < best_size)) {
        best = a;
        best_coupling = coupling;
        best_size = agg_size[static_cast<std::size_t>(a)];
      }
      i = j;
    }
    agg.labels[static_cast<std::size_t>(v)] = best;
    ++agg_size[static_cast<std::size_t>(best)];
  }

  // Phase 3: isolated pockets become their own aggregates.
  for (ordinal_t v = 0; v < n; ++v) {
    if (agg.labels[static_cast<std::size_t>(v)] == invalid_ordinal) {
      make_root(v, /*absorb_all=*/false);
    }
  }

  return agg;
}

}  // namespace parmis::solver
