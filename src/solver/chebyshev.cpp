#include "solver/chebyshev.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "graph/spmm.hpp"
#include "graph/spmv.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "resilience/fault.hpp"
#include "resilience/guard.hpp"
#include "solver/interface.hpp"
#include "solver/jacobi.hpp"
#include "solver/multivector.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

namespace {

/// Deterministic power iteration estimating λmax(D⁻¹A). A few extra
/// percent of headroom guard against underestimation (standard practice:
/// Chebyshev diverges if λmax is under-estimated, only degrades if over-).
/// `z`/`az` are caller-owned scratch (`a.num_rows` elements); the iteration
/// always restarts from the same seeded vector, so re-running it against
/// rebuilt values is bit-identical to a fresh construction.
scalar_t estimate_lambda_max(const graph::CrsMatrix& a, std::span<const scalar_t> inv_diag,
                             std::span<scalar_t> z, std::span<scalar_t> az) {
  const ordinal_t n = a.num_rows;
  random_fill(z, 0x9E3779B9u);
  scalar_t lambda = 1.0;
  for (int it = 0; it < 15; ++it) {
    graph::spmv(a, z, az);
    par::parallel_for(n, [&](ordinal_t i) {
      az[static_cast<std::size_t>(i)] *= inv_diag[static_cast<std::size_t>(i)];
    });
    lambda = norm2(az) / std::max(norm2(z), scalar_t{1e-300});
    std::swap(z, az);
    const scalar_t zn = norm2(z);
    if (zn == 0) break;
    scale(z, 1.0 / zn);
  }
  return 1.1 * lambda;
}

}  // namespace

ChebyshevSmoother::ChebyshevSmoother(const graph::CrsMatrix& a, int degree, scalar_t eig_ratio)
    : inv_diag_(inverted_diagonal(a)), pw_z_(static_cast<std::size_t>(a.num_rows)),
      pw_az_(static_cast<std::size_t>(a.num_rows)), eig_ratio_cfg_(eig_ratio), degree_(degree) {
  assert(degree >= 1 && eig_ratio > 1.0);
  lambda_max_ = estimate_lambda_max(a, inv_diag_, pw_z_, pw_az_);
  lambda_min_ = lambda_max_ / eig_ratio;
}

void ChebyshevSmoother::reestimate(const graph::CrsMatrix& a) {
  assert(static_cast<std::size_t>(a.num_rows) == inv_diag_.size());
  inverted_diagonal_into(a, inv_diag_);
  lambda_max_ = estimate_lambda_max(a, inv_diag_, pw_z_, pw_az_);
  lambda_min_ = lambda_max_ / eig_ratio_cfg_;
}

void ChebyshevSmoother::smooth(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                               std::span<scalar_t> x) const {
  const std::size_t n = static_cast<std::size_t>(a.num_rows);
  std::vector<scalar_t> r(n);   // preconditioned residual
  std::vector<scalar_t> d(n);   // search update
  std::vector<scalar_t> ad(n);  // A d scratch
  smooth(a, b, x, r, d, ad);
}

void ChebyshevSmoother::smooth(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                               std::span<scalar_t> x, std::span<scalar_t> r,
                               std::span<scalar_t> d, std::span<scalar_t> ad) const {
  const ordinal_t n = a.num_rows;
  assert(b.size() == static_cast<std::size_t>(n) && x.size() == static_cast<std::size_t>(n));
  assert(r.size() == static_cast<std::size_t>(n) && d.size() == static_cast<std::size_t>(n) &&
         ad.size() == static_cast<std::size_t>(n));

  // Three-term Chebyshev recurrence on the split-preconditioned system
  // (Saad, "Iterative Methods for Sparse Linear Systems", Alg. 12.1).
  const scalar_t theta = 0.5 * (lambda_max_ + lambda_min_);
  const scalar_t delta = 0.5 * (lambda_max_ - lambda_min_);
  const scalar_t sigma1 = theta / delta;

  // r = D^{-1} (b - A x); d = r / theta; x += d.
  graph::spmv(a, x, r);
  par::parallel_for(n, [&](ordinal_t i) {
    const scalar_t pr = inv_diag_[static_cast<std::size_t>(i)] *
                        (b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)]);
    r[static_cast<std::size_t>(i)] = pr;
    d[static_cast<std::size_t>(i)] = pr / theta;
  });
  axpby(1.0, d, 1.0, x);

  scalar_t rho_prev = 1.0 / sigma1;
  for (int k = 1; k < degree_; ++k) {
    // r -= D^{-1} A d
    graph::spmv(a, d, ad);
    par::parallel_for(n, [&](ordinal_t i) {
      r[static_cast<std::size_t>(i)] -=
          inv_diag_[static_cast<std::size_t>(i)] * ad[static_cast<std::size_t>(i)];
    });
    const scalar_t rho = 1.0 / (2.0 * sigma1 - rho_prev);
    // d = (rho * rho_prev) d + (2 rho / delta) r
    par::parallel_for(n, [&](ordinal_t i) {
      d[static_cast<std::size_t>(i)] = rho * rho_prev * d[static_cast<std::size_t>(i)] +
                                       2.0 * rho / delta * r[static_cast<std::size_t>(i)];
    });
    axpby(1.0, d, 1.0, x);
    rho_prev = rho;
  }
}

void ChebyshevSmoother::smooth_multi(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                                     std::span<scalar_t> x, std::span<scalar_t> r,
                                     std::span<scalar_t> d, std::span<scalar_t> ad,
                                     int k_count) const {
  const ordinal_t n = a.num_rows;
  const std::size_t uk = static_cast<std::size_t>(k_count);
  [[maybe_unused]] const std::size_t nk = static_cast<std::size_t>(n) * uk;
  assert(k_count > 0);
  assert(b.size() >= nk && x.size() >= nk);
  assert(r.size() >= nk && d.size() >= nk && ad.size() >= nk);

  const scalar_t theta = 0.5 * (lambda_max_ + lambda_min_);
  const scalar_t delta = 0.5 * (lambda_max_ - lambda_min_);
  const scalar_t sigma1 = theta / delta;

  // R = D^{-1} (B - A X); D = R / theta; X += D — per lane, so each column
  // runs exactly the single-vector recurrence.
  graph::spmm(a, x, r, k_count);
  par::parallel_for(n, [&](ordinal_t i) {
    const std::size_t base = static_cast<std::size_t>(i) * uk;
    for (int c = 0; c < k_count; ++c) {
      const std::size_t at = base + static_cast<std::size_t>(c);
      const scalar_t pr = inv_diag_[static_cast<std::size_t>(i)] * (b[at] - r[at]);
      r[at] = pr;
      d[at] = pr / theta;
    }
  });
  mv_axpby(1.0, d, 1.0, x, n, k_count);

  scalar_t rho_prev = 1.0 / sigma1;
  for (int k = 1; k < degree_; ++k) {
    graph::spmm(a, d, ad, k_count);
    par::parallel_for(n, [&](ordinal_t i) {
      const std::size_t base = static_cast<std::size_t>(i) * uk;
      for (int c = 0; c < k_count; ++c) {
        const std::size_t at = base + static_cast<std::size_t>(c);
        r[at] -= inv_diag_[static_cast<std::size_t>(i)] * ad[at];
      }
    });
    const scalar_t rho = 1.0 / (2.0 * sigma1 - rho_prev);
    par::parallel_for(n, [&](ordinal_t i) {
      const std::size_t base = static_cast<std::size_t>(i) * uk;
      for (int c = 0; c < k_count; ++c) {
        const std::size_t at = base + static_cast<std::size_t>(c);
        d[at] = rho * rho_prev * d[at] + 2.0 * rho / delta * r[at];
      }
    });
    mv_axpby(1.0, d, 1.0, x, n, k_count);
    rho_prev = rho;
  }
}

void chebyshev_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                     std::span<scalar_t> x, const IterOptions& opts, SolveWorkspace& ws,
                     IterResult& result) {
  assert(a.num_rows == a.num_cols);
  const std::size_t n = static_cast<std::size_t>(a.num_rows);
  assert(b.size() == n && x.size() == n);

  scalar_t bnorm = 0;
  if (!begin_solve(opts, b, x, ws, result, bnorm)) return;

  // Reuse the smoother while the matrix and polynomial are unchanged (its
  // setup runs a power iteration — a cost warm solves must not repay).
  const bool stale = !ws.chebyshev || ws.chebyshev_matrix != &a ||
                     ws.chebyshev_rows != a.num_rows ||
                     ws.chebyshev_entries != a.num_entries() ||
                     ws.chebyshev_degree != opts.chebyshev_degree ||
                     ws.chebyshev_eig_ratio != opts.chebyshev_eig_ratio;
  if (stale) {
    ws.chebyshev = std::make_unique<ChebyshevSmoother>(
        a, opts.chebyshev_degree, static_cast<scalar_t>(opts.chebyshev_eig_ratio));
    ws.chebyshev_matrix = &a;
    ws.chebyshev_rows = a.num_rows;
    ws.chebyshev_entries = a.num_entries();
    ws.chebyshev_degree = opts.chebyshev_degree;
    ws.chebyshev_eig_ratio = opts.chebyshev_eig_ratio;
    ++ws.grow_events;
  }

  std::span<scalar_t> r = ws.vec(0, n);
  std::span<scalar_t> d = ws.vec(1, n);
  std::span<scalar_t> ad = ws.vec(2, n);
  std::span<scalar_t> resid = ws.vec(3, n);

  graph::spmv(a, x, resid);
  axpby(1.0, b, -1.0, resid);  // resid = b - A x
  double relres = norm2(resid) / bnorm;
  if (opts.track_history) result.history.push_back(relres);
  resilience::IterGuard guard(opts.guard_config());
  resilience::SolveStatus stop = guard.check(relres, 0, result.failure);

  while (stop == resilience::SolveStatus::Converged &&
         result.iterations < opts.max_iterations && relres > opts.tolerance) {
    obs::Span iter_span("solver.iteration");
    iter_span.arg("iteration", result.iterations);
    ws.chebyshev->smooth(a, b, x, r, d, ad);
    // Injected NaN (check builds): surfaces in the recomputed residual
    // below, which the guard classifies as Breakdown.
    if (PARMIS_FAULT_POINT("chebyshev.poison"))
      x[0] = std::numeric_limits<scalar_t>::quiet_NaN();
    ++result.iterations;
    graph::spmv(a, x, resid);
    axpby(1.0, b, -1.0, resid);
    relres = norm2(resid) / bnorm;
    if (opts.track_history) result.history.push_back(relres);
    stop = guard.check(relres, result.iterations, result.failure);
  }

  if (stop != resilience::SolveStatus::Converged) result.status = stop;
  result.relative_residual = relres;
  result.converged = relres <= opts.tolerance;
  if (result.converged) {
    result.status = resilience::SolveStatus::Converged;
    result.failure.clear();
  }
}

}  // namespace parmis::solver
