#include "solver/chebyshev.hpp"

#include <cassert>
#include <cmath>

#include "graph/spmv.hpp"
#include "parallel/parallel_for.hpp"
#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

namespace {

/// Deterministic power iteration estimating λmax(D⁻¹A). A few extra
/// percent of headroom guard against underestimation (standard practice:
/// Chebyshev diverges if λmax is under-estimated, only degrades if over-).
scalar_t estimate_lambda_max(const graph::CrsMatrix& a,
                             const std::vector<scalar_t>& inv_diag) {
  const ordinal_t n = a.num_rows;
  std::vector<scalar_t> z = random_vector(n, 0x9E3779B9u);
  std::vector<scalar_t> az(static_cast<std::size_t>(n));
  scalar_t lambda = 1.0;
  for (int it = 0; it < 15; ++it) {
    graph::spmv(a, z, az);
    par::parallel_for(n, [&](ordinal_t i) {
      az[static_cast<std::size_t>(i)] *= inv_diag[static_cast<std::size_t>(i)];
    });
    lambda = norm2(az) / std::max(norm2(z), scalar_t{1e-300});
    z.swap(az);
    const scalar_t zn = norm2(z);
    if (zn == 0) break;
    scale(z, 1.0 / zn);
  }
  return 1.1 * lambda;
}

}  // namespace

ChebyshevSmoother::ChebyshevSmoother(const graph::CrsMatrix& a, int degree, scalar_t eig_ratio)
    : inv_diag_(inverted_diagonal(a)), degree_(degree) {
  assert(degree >= 1 && eig_ratio > 1.0);
  lambda_max_ = estimate_lambda_max(a, inv_diag_);
  lambda_min_ = lambda_max_ / eig_ratio;
}

void ChebyshevSmoother::smooth(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                               std::span<scalar_t> x) const {
  const ordinal_t n = a.num_rows;
  assert(b.size() == static_cast<std::size_t>(n) && x.size() == static_cast<std::size_t>(n));

  // Three-term Chebyshev recurrence on the split-preconditioned system
  // (Saad, "Iterative Methods for Sparse Linear Systems", Alg. 12.1).
  const scalar_t theta = 0.5 * (lambda_max_ + lambda_min_);
  const scalar_t delta = 0.5 * (lambda_max_ - lambda_min_);
  const scalar_t sigma1 = theta / delta;

  std::vector<scalar_t> r(static_cast<std::size_t>(n));   // preconditioned residual
  std::vector<scalar_t> d(static_cast<std::size_t>(n));   // search update
  std::vector<scalar_t> ad(static_cast<std::size_t>(n));  // A d scratch

  // r = D^{-1} (b - A x); d = r / theta; x += d.
  graph::spmv(a, x, r);
  par::parallel_for(n, [&](ordinal_t i) {
    const scalar_t pr = inv_diag_[static_cast<std::size_t>(i)] *
                        (b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)]);
    r[static_cast<std::size_t>(i)] = pr;
    d[static_cast<std::size_t>(i)] = pr / theta;
  });
  axpby(1.0, d, 1.0, x);

  scalar_t rho_prev = 1.0 / sigma1;
  for (int k = 1; k < degree_; ++k) {
    // r -= D^{-1} A d
    graph::spmv(a, d, ad);
    par::parallel_for(n, [&](ordinal_t i) {
      r[static_cast<std::size_t>(i)] -=
          inv_diag_[static_cast<std::size_t>(i)] * ad[static_cast<std::size_t>(i)];
    });
    const scalar_t rho = 1.0 / (2.0 * sigma1 - rho_prev);
    // d = (rho * rho_prev) d + (2 rho / delta) r
    par::parallel_for(n, [&](ordinal_t i) {
      d[static_cast<std::size_t>(i)] = rho * rho_prev * d[static_cast<std::size_t>(i)] +
                                       2.0 * rho / delta * r[static_cast<std::size_t>(i)];
    });
    axpby(1.0, d, 1.0, x);
    rho_prev = rho;
  }
}

}  // namespace parmis::solver
