#pragma once
/// \file handle.hpp
/// \brief `SolveHandle`: the reusable solver-stack handle — registry-named
/// solver + preconditioner, explicit execution context, all iteration
/// scratch, cached preconditioner state, and per-handle telemetry.
///
/// The solver analogue of `core::Mis2Handle`/`core::CoarsenHandle`: a
/// service that answers many solves holds one handle per worker and pays
/// for setup and scratch exactly once. Warm solves — repeated `solve()`
/// calls on the same matrix, or on size-compatible matrices with a
/// matrix-free preconditioner — perform **zero heap allocations**; the
/// capacity-tracking tests assert this through `scratch_bytes()` and
/// `stats().scratch_grows`.
///
///   SolveHandle h("cg", "amg", ctx);
///   h.prec_options().amg.coarsener = "hem";   // any registered coarsener
///   const IterResult& r = h.solve(a, b, x);   // builds AMG once
///   h.solve(a, b2, x2);                       // warm: zero allocations
///
/// Preconditioner state is cached per matrix: a solve against the same
/// matrix (same address and shape) reuses it; a different matrix triggers
/// one rebuild (counted in `stats().prec_setups`). Configuration changes
/// that affect setup (`set_preconditioner`, `set_context`, edits through
/// `prec_options()`) take effect at the next rebuild — call `invalidate()`
/// to force one. Not thread-safe; use one handle per thread.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/crs.hpp"
#include "resilience/policy.hpp"
#include "solver/interface.hpp"

namespace parmis::solver {

/// Cumulative per-handle telemetry (service counters; never reset by the
/// handle itself).
struct SolveStats {
  std::uint64_t solves = 0;         ///< solve() calls completed
  std::uint64_t iterations = 0;     ///< total iterations across all solves
  std::uint64_t converged = 0;      ///< solves that reached tolerance
  std::uint64_t prec_setups = 0;    ///< preconditioner (re)builds
  std::uint64_t scratch_grows = 0;  ///< solve() calls that grew scratch capacity
  std::uint64_t failures = 0;           ///< solves whose final status was a failure
  std::uint64_t fallback_attempts = 0;  ///< extra chain attempts beyond the first
};

/// Reusable solver handle: solver + preconditioner selected by registry
/// name, an explicit execution context, and all iteration scratch.
class SolveHandle {
 public:
  /// Defaults to "cg" with no preconditioning under a snapshot of the
  /// process-global execution configuration.
  SolveHandle() = default;
  explicit SolveHandle(const std::string& solver, const std::string& prec = "none",
                       const Context& ctx = Context::default_ctx());
  explicit SolveHandle(const Context& ctx) : ctx_(ctx) {}

  /// Select the outer solver by registry name; throws std::out_of_range if
  /// unknown. Scratch is kept (the pool is shared across solvers).
  void set_solver(const std::string& name);

  /// Select the preconditioner by registry name; throws std::out_of_range
  /// if unknown. Cached preconditioner state is dropped.
  void set_preconditioner(const std::string& name);

  [[nodiscard]] const std::string& solver_name() const { return solver_name_; }
  [[nodiscard]] const std::string& preconditioner_name() const { return prec_name_; }

  /// Setup-time preconditioner configuration. Edits affect the *next*
  /// preconditioner build; call invalidate() to apply them to a matrix the
  /// handle has already seen.
  [[nodiscard]] PrecOptions& prec_options() { return prec_opts_; }
  [[nodiscard]] const PrecOptions& prec_options() const { return prec_opts_; }

  [[nodiscard]] const Context& context() const { return ctx_; }
  /// Replace the handle's context (governs setup and, unless overridden by
  /// `IterOptions::ctx`, the solves). Cached preconditioner state is
  /// dropped: setup may be context-dependent.
  void set_context(const Context& ctx);

  /// Declare a fallback chain from a `"PREC+SOLVER[ on:STATUS|...],..."`
  /// spec (e.g. `"amg+cg on:breakdown,jacobi+cg"`). While a chain is set it
  /// *replaces* the handle's solver/preconditioner selection: attempt 1 is
  /// the chain's first entry; each failed attempt (any status but
  /// Converged, filtered by the entry's optional `on:` status set) restores
  /// the original initial guess and tries the next entry, within the
  /// chain's retry budget and the solve's `timeout_ms`. Entries naming the
  /// handle's configured solver/preconditioner reuse its cached state;
  /// other entries build transient ones per attempt. Throws
  /// std::invalid_argument on a malformed spec and std::out_of_range on a
  /// name not in the registries. An empty spec clears the chain.
  void set_fallback(const std::string& spec);
  void set_fallback(resilience::FallbackPolicy policy);
  [[nodiscard]] const resilience::FallbackPolicy& fallback() const { return fallback_; }

  /// Solve `a x = b` from the given initial `x` with the configured stack.
  /// Builds (or reuses) the preconditioner for `a`, pins the execution
  /// context (`opts.ctx` if set, else the handle's), runs the solver on
  /// handle-owned scratch, and updates the telemetry counters. The returned
  /// reference stays valid until the next solve on this handle.
  ///
  /// Resilience contract: `b`/`x` are validated for finiteness up front
  /// (`status == NonFiniteInput`, no attempt runs); every attempt's outcome
  /// lands in `result().attempts`; a configured fallback chain is walked as
  /// documented on `set_fallback`. A failing solve never throws for
  /// taxonomy-classified reasons — inspect `result().status`.
  const IterResult& solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                          std::span<scalar_t> x, const IterOptions& opts = {});

  /// Batched multi-RHS solve: `b`/`x` are n x k_count row-major
  /// multi-vectors (element (i, c) at `i * k_count + c`). Runs the
  /// configured solver's `solve_batch` — the fused block core for
  /// "block-cg"/"block-gmres", the looped per-column default otherwise —
  /// under the same context pinning and warm zero-allocation contract as
  /// `solve`: once scratch and preconditioner are warm, a repeat batch of
  /// the same width allocates nothing. Column c of the result is
  /// bit-identical to `solve` on the gathered column.
  ///
  /// Resilience contract: every column is validated for finiteness up
  /// front; a poisoned column is excluded (its `IterResult` carries
  /// NonFiniteInput and its lanes are left untouched) while its batchmates
  /// solve normally. Mid-batch failures are likewise per column — the
  /// block cores deflate a broken column and keep iterating the rest.
  /// Fallback chains are not walked for batches (a chain retry is a
  /// per-column decision; gather the column and call `solve` for that).
  /// The returned reference stays valid until the next batched solve.
  const BatchResult& solve_batch(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                                 std::span<scalar_t> x, int k_count,
                                 const IterOptions& opts = {});

  /// Build the preconditioner for `a` now (idempotent while `a` is
  /// unchanged). Useful to separate setup cost from solve cost.
  void setup(const graph::CrsMatrix& a);

  /// Drop cached preconditioner state; the next solve()/setup() rebuilds.
  void invalidate();

  /// Pool hooks (`serve::HandlePool`): move the cached preconditioner
  /// setup out of the handle — for parking in an LRU keyed by matrix
  /// identity — leaving the handle cold (next solve rebuilds). Returns
  /// null when nothing is cached (including the "none" configuration).
  [[nodiscard]] std::unique_ptr<Preconditioner> release_preconditioner();

  /// Install an externally built (or LRU-parked) setup as the cached
  /// preconditioner for `a`: the next solve against `a` (same address and
  /// shape) is warm, no rebuild, no allocation. `p` must be a setup for a
  /// matrix bit-identical to `a` — the handle can't verify that; the pool
  /// keys its cache by identity to guarantee it. Does not count as a
  /// prec_setup in stats(). A null `p` is equivalent to invalidate().
  void adopt_preconditioner(std::unique_ptr<Preconditioner> p, const graph::CrsMatrix& a);

  /// The cached preconditioner (null until the first setup, and always
  /// null for "none").
  [[nodiscard]] const Preconditioner* preconditioner() const { return prec_.get(); }

  [[nodiscard]] const IterResult& result() const { return result_; }
  [[nodiscard]] const BatchResult& batch_result() const { return batch_result_; }
  [[nodiscard]] const SolveStats& stats() const { return stats_; }

  /// Heap capacity held by the iteration scratch (workspace pool, GMRES
  /// dense state, residual-history storage). Stable across warm solves.
  [[nodiscard]] std::size_t scratch_bytes() const;

 private:
  void ensure_solver();
  void ensure_preconditioner(const graph::CrsMatrix& a);
  /// One chain attempt: resolve solver/prec (cached or transient), run,
  /// classify throws, and append the attempt record. Returns its status.
  resilience::SolveStatus run_attempt(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                                      std::span<scalar_t> x, const IterOptions& opts,
                                      const std::string& sname, const std::string& pname,
                                      bool& used_transient);

  std::string solver_name_ = "cg";
  std::string prec_name_ = "none";
  std::unique_ptr<Solver> solver_;
  PrecOptions prec_opts_;
  Context ctx_ = Context::default_ctx();

  std::unique_ptr<Preconditioner> prec_;
  const graph::CrsMatrix* prec_matrix_ = nullptr;  ///< identity of the cached setup
  ordinal_t prec_rows_ = 0;
  offset_t prec_entries_ = 0;

  resilience::FallbackPolicy fallback_;
  std::vector<scalar_t> x0_;  ///< initial-guess snapshot for chain retries

  SolveWorkspace ws_;
  IterResult result_;
  BatchResult batch_result_;
  SolveStats stats_;
};

}  // namespace parmis::solver
