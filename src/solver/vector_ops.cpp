#include "solver/vector_ops.hpp"

#include <cassert>
#include <cmath>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "random/hash.hpp"

namespace parmis::solver {

scalar_t dot(std::span<const scalar_t> a, std::span<const scalar_t> b) {
  assert(a.size() == b.size());
  return par::reduce_sum<scalar_t>(static_cast<std::int64_t>(a.size()), [&](std::int64_t i) {
    return a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  });
}

scalar_t norm2(std::span<const scalar_t> a) { return std::sqrt(dot(a, a)); }

void axpby(scalar_t alpha, std::span<const scalar_t> x, scalar_t beta, std::span<scalar_t> y) {
  assert(x.size() == y.size());
  par::parallel_for(static_cast<std::int64_t>(x.size()), [&](std::int64_t i) {
    y[static_cast<std::size_t>(i)] =
        alpha * x[static_cast<std::size_t>(i)] + beta * y[static_cast<std::size_t>(i)];
  });
}

void copy(std::span<const scalar_t> x, std::span<scalar_t> y) {
  assert(x.size() == y.size());
  par::parallel_for(static_cast<std::int64_t>(x.size()), [&](std::int64_t i) {
    y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
  });
}

void fill(std::span<scalar_t> x, scalar_t value) {
  par::parallel_for(static_cast<std::int64_t>(x.size()),
                    [&](std::int64_t i) { x[static_cast<std::size_t>(i)] = value; });
}

void scale(std::span<scalar_t> x, scalar_t alpha) {
  par::parallel_for(static_cast<std::int64_t>(x.size()),
                    [&](std::int64_t i) { x[static_cast<std::size_t>(i)] *= alpha; });
}

std::vector<scalar_t> random_vector(ordinal_t n, std::uint64_t seed) {
  std::vector<scalar_t> v(static_cast<std::size_t>(n));
  random_fill(v, seed);
  return v;
}

void random_fill(std::span<scalar_t> v, std::uint64_t seed) {
  par::parallel_for(static_cast<ordinal_t>(v.size()), [&](ordinal_t i) {
    const std::uint64_t z = rng::splitmix64_mix(seed + static_cast<std::uint64_t>(i));
    v[static_cast<std::size_t>(i)] = 2.0 * (static_cast<double>(z >> 11) * 0x1.0p-53) - 1.0;
  });
}

}  // namespace parmis::solver
