#include "solver/multivector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"

namespace parmis::solver {

namespace {

/// Elementwise helper: run `f(i)` over rows through `parallel_for` (safe for
/// any backend — every row's K lanes are written by exactly one iteration).
template <typename F>
void mv_foreach_row(ordinal_t n, F&& f) {
  par::parallel_for(n, std::forward<F>(f));
}

/// Fused dot over rows [lo, hi) with a compile-time lane count: the K
/// accumulators stay in registers and the per-row multiply-add unrolls
/// across lanes. Per lane the accumulation order is the same serial
/// in-row-order sum as the runtime loop — a code-generation choice only.
template <int KK>
void dot_rows(const scalar_t* a, const scalar_t* b, std::int64_t lo, std::int64_t hi, int k_count,
              scalar_t* __restrict acc) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
    for (int c = 0; c < KK; ++c) {
      acc[c] += a[base + static_cast<std::size_t>(c)] * b[base + static_cast<std::size_t>(c)];
    }
  }
}

void dot_rows_rt(const scalar_t* a, const scalar_t* b, std::int64_t lo, std::int64_t hi,
                 int k_count, scalar_t* __restrict acc) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
    for (int c = 0; c < k_count; ++c) {
      acc[c] += a[base + static_cast<std::size_t>(c)] * b[base + static_cast<std::size_t>(c)];
    }
  }
}

void dot_rows_dispatch(const scalar_t* a, const scalar_t* b, std::int64_t lo, std::int64_t hi,
                       int k_count, scalar_t* __restrict acc) {
  switch (k_count) {
    case 16: dot_rows<16>(a, b, lo, hi, k_count, acc); break;
    case 8: dot_rows<8>(a, b, lo, hi, k_count, acc); break;
    case 4: dot_rows<4>(a, b, lo, hi, k_count, acc); break;
    case 2: dot_rows<2>(a, b, lo, hi, k_count, acc); break;
    case 1: dot_rows<1>(a, b, lo, hi, k_count, acc); break;
    default: dot_rows_rt(a, b, lo, hi, k_count, acc); break;
  }
}

bool all_active(std::span<const char> active, int k_count) {
  for (int c = 0; c < k_count; ++c) {
    if (!active[static_cast<std::size_t>(c)]) return false;
  }
  return true;
}

/// Rows-per-chunk of the branch-free fast paths below. The ops are
/// elementwise (each lane written by exactly one iteration), so the
/// partition never affects bits — chunking only amortizes dispatch.
constexpr std::int64_t kMvChunk = 4096;

/// Run `f(lo, hi)` over row chunks through `parallel_for`.
template <typename F>
void mv_row_chunks(ordinal_t n, F&& f) {
  const std::int64_t len = static_cast<std::int64_t>(n);
  const std::int64_t nchunks = (len + kMvChunk - 1) / kMvChunk;
  par::parallel_for(nchunks, [&](std::int64_t chunk) {
    f(chunk * kMvChunk, std::min<std::int64_t>(len, (chunk + 1) * kMvChunk));
  });
}

/// Branch-free y[·,c] = alpha[c]·x[·,c] + y[·,c] over rows [lo, hi): the
/// per-lane expression is exactly the masked loop's, minus the mask test —
/// same bits, but the constant trip count and `__restrict` let it
/// vectorize. Used when every column is still active (the common case
/// before deflation starts).
template <int KK>
void axpy_cols_rows(const scalar_t* __restrict alpha, const scalar_t* __restrict x,
                    scalar_t* __restrict y, std::int64_t lo, std::int64_t hi, int k_count) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
    for (int c = 0; c < KK; ++c) {
      const std::size_t at = base + static_cast<std::size_t>(c);
      y[at] = alpha[static_cast<std::size_t>(c)] * x[at] + y[at];
    }
  }
}

/// Branch-free y[·,c] = x[·,c] + beta[c]·y[·,c] (see axpy_cols_rows).
template <int KK>
void xpay_cols_rows(const scalar_t* __restrict x, const scalar_t* __restrict beta,
                    scalar_t* __restrict y, std::int64_t lo, std::int64_t hi, int k_count) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
    for (int c = 0; c < KK; ++c) {
      const std::size_t at = base + static_cast<std::size_t>(c);
      y[at] = x[at] + beta[static_cast<std::size_t>(c)] * y[at];
    }
  }
}

}  // namespace

void mv_dot(std::span<const scalar_t> a, std::span<const scalar_t> b, ordinal_t n, int k_count,
            std::span<scalar_t> out) {
  assert(k_count > 0);
  assert(a.size() >= static_cast<std::size_t>(n) * static_cast<std::size_t>(k_count));
  assert(b.size() >= static_cast<std::size_t>(n) * static_cast<std::size_t>(k_count));
  assert(out.size() >= static_cast<std::size_t>(k_count));
  const std::size_t k = static_cast<std::size_t>(k_count);
  for (int c = 0; c < k_count; ++c) out[static_cast<std::size_t>(c)] = 0.0;
  if (n <= 0) return;
  // Mirror par::parallel_reduce exactly: same chunking, same per-chunk
  // serial accumulation order, same serial combine in ascending chunk
  // order — so column c matches `dot` on the gathered column bit for bit.
  const std::int64_t len = static_cast<std::int64_t>(n);
  const std::int64_t nchunks = (len + par::reduce_chunk - 1) / par::reduce_chunk;
  if (nchunks == 1) {
    dot_rows_dispatch(a.data(), b.data(), 0, len, k_count, out.data());
    return;
  }
  // Partials live in the same thread-local scratch parallel_reduce uses, so
  // warm solver loops stay allocation-free (the AllocGuard contract).
  scalar_t* partial = reinterpret_cast<scalar_t*>(
      par::detail::reduce_scratch(static_cast<std::size_t>(nchunks) * k * sizeof(scalar_t)));
  par::parallel_for(nchunks, [&](std::int64_t chunk) {
    const std::int64_t lo = chunk * par::reduce_chunk;
    const std::int64_t hi = std::min<std::int64_t>(len, (chunk + 1) * par::reduce_chunk);
    scalar_t* p = partial + static_cast<std::size_t>(chunk) * k;
    for (std::size_t c = 0; c < k; ++c) p[c] = 0.0;  // scratch arrives dirty
    dot_rows_dispatch(a.data(), b.data(), lo, hi, k_count, p);
  });
  for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
    const scalar_t* p = partial + static_cast<std::size_t>(chunk) * k;
    for (int c = 0; c < k_count; ++c) out[static_cast<std::size_t>(c)] += p[c];
  }
}

void mv_norms(std::span<const scalar_t> a, ordinal_t n, int k_count, std::span<scalar_t> out) {
  mv_dot(a, a, n, k_count, out);
  for (int c = 0; c < k_count; ++c) {
    out[static_cast<std::size_t>(c)] = std::sqrt(out[static_cast<std::size_t>(c)]);
  }
}

void mv_axpby(scalar_t alpha, std::span<const scalar_t> x, scalar_t beta, std::span<scalar_t> y,
              ordinal_t n, int k_count) {
  // Unmasked and elementwise with scalar coefficients: the row/lane
  // structure is irrelevant, so run one flat loop over all n*K lanes —
  // identical bits, and the stride-1 form the vectorizer handles best.
  const std::int64_t total = static_cast<std::int64_t>(n) * k_count;
  par::parallel_for(total, [&](std::int64_t t) {
    const std::size_t at = static_cast<std::size_t>(t);
    y[at] = alpha * x[at] + beta * y[at];
  });
}

void mv_axpby_masked(scalar_t alpha, std::span<const scalar_t> x, scalar_t beta,
                     std::span<scalar_t> y, ordinal_t n, int k_count,
                     std::span<const char> active) {
  if (all_active(active, k_count)) {
    // No frozen lanes: identical elementwise expression without the test.
    mv_axpby(alpha, x, beta, y, n, k_count);
    return;
  }
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    const std::size_t base = static_cast<std::size_t>(i) * k;
    for (int c = 0; c < k_count; ++c) {
      if (!active[static_cast<std::size_t>(c)]) continue;
      const std::size_t at = base + static_cast<std::size_t>(c);
      y[at] = alpha * x[at] + beta * y[at];
    }
  });
}

void mv_axpy_cols(std::span<const scalar_t> alpha, std::span<const scalar_t> x,
                  std::span<scalar_t> y, ordinal_t n, int k_count,
                  std::span<const char> active) {
  if (all_active(active, k_count)) {
    const scalar_t* ap = alpha.data();
    const scalar_t* xp = x.data();
    scalar_t* yp = y.data();
    mv_row_chunks(n, [&](std::int64_t lo, std::int64_t hi) {
      switch (k_count) {
        case 16: axpy_cols_rows<16>(ap, xp, yp, lo, hi, k_count); break;
        case 8: axpy_cols_rows<8>(ap, xp, yp, lo, hi, k_count); break;
        case 4: axpy_cols_rows<4>(ap, xp, yp, lo, hi, k_count); break;
        case 2: axpy_cols_rows<2>(ap, xp, yp, lo, hi, k_count); break;
        case 1: axpy_cols_rows<1>(ap, xp, yp, lo, hi, k_count); break;
        default:
          for (std::int64_t i = lo; i < hi; ++i) {
            const std::size_t base =
                static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
            for (int c = 0; c < k_count; ++c) {
              const std::size_t at = base + static_cast<std::size_t>(c);
              yp[at] = ap[static_cast<std::size_t>(c)] * xp[at] + yp[at];
            }
          }
          break;
      }
    });
    return;
  }
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    const std::size_t base = static_cast<std::size_t>(i) * k;
    for (int c = 0; c < k_count; ++c) {
      if (!active[static_cast<std::size_t>(c)]) continue;
      const std::size_t at = base + static_cast<std::size_t>(c);
      // Bit-identical to axpby(alpha[c], x, 1.0, y): 1.0 * y == y exactly.
      y[at] = alpha[static_cast<std::size_t>(c)] * x[at] + y[at];
    }
  });
}

void mv_xpay_cols(std::span<const scalar_t> x, std::span<const scalar_t> beta,
                  std::span<scalar_t> y, ordinal_t n, int k_count,
                  std::span<const char> active) {
  if (all_active(active, k_count)) {
    const scalar_t* xp = x.data();
    const scalar_t* bp = beta.data();
    scalar_t* yp = y.data();
    mv_row_chunks(n, [&](std::int64_t lo, std::int64_t hi) {
      switch (k_count) {
        case 16: xpay_cols_rows<16>(xp, bp, yp, lo, hi, k_count); break;
        case 8: xpay_cols_rows<8>(xp, bp, yp, lo, hi, k_count); break;
        case 4: xpay_cols_rows<4>(xp, bp, yp, lo, hi, k_count); break;
        case 2: xpay_cols_rows<2>(xp, bp, yp, lo, hi, k_count); break;
        case 1: xpay_cols_rows<1>(xp, bp, yp, lo, hi, k_count); break;
        default:
          for (std::int64_t i = lo; i < hi; ++i) {
            const std::size_t base =
                static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
            for (int c = 0; c < k_count; ++c) {
              const std::size_t at = base + static_cast<std::size_t>(c);
              yp[at] = xp[at] + bp[static_cast<std::size_t>(c)] * yp[at];
            }
          }
          break;
      }
    });
    return;
  }
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    const std::size_t base = static_cast<std::size_t>(i) * k;
    for (int c = 0; c < k_count; ++c) {
      if (!active[static_cast<std::size_t>(c)]) continue;
      const std::size_t at = base + static_cast<std::size_t>(c);
      // Bit-identical to axpby(1.0, x, beta[c], y): 1.0 * x == x exactly.
      y[at] = x[at] + beta[static_cast<std::size_t>(c)] * y[at];
    }
  });
}

void mv_scale_cols(std::span<scalar_t> y, std::span<const scalar_t> s, ordinal_t n, int k_count,
                   std::span<const char> active) {
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    const std::size_t base = static_cast<std::size_t>(i) * k;
    for (int c = 0; c < k_count; ++c) {
      if (!active[static_cast<std::size_t>(c)]) continue;
      y[base + static_cast<std::size_t>(c)] *= s[static_cast<std::size_t>(c)];
    }
  });
}

void mv_copy(std::span<const scalar_t> x, std::span<scalar_t> y) {
  assert(y.size() >= x.size());
  par::parallel_for(static_cast<std::int64_t>(x.size()), [&](std::int64_t i) {
    y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
  });
}

void mv_copy_cols(std::span<const scalar_t> x, std::span<scalar_t> y, ordinal_t n, int k_count,
                  std::span<const char> active) {
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    const std::size_t base = static_cast<std::size_t>(i) * k;
    for (int c = 0; c < k_count; ++c) {
      if (!active[static_cast<std::size_t>(c)]) continue;
      y[base + static_cast<std::size_t>(c)] = x[base + static_cast<std::size_t>(c)];
    }
  });
}

void mv_fill_cols(std::span<scalar_t> y, scalar_t value, ordinal_t n, int k_count,
                  std::span<const char> active) {
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    const std::size_t base = static_cast<std::size_t>(i) * k;
    for (int c = 0; c < k_count; ++c) {
      if (!active[static_cast<std::size_t>(c)]) continue;
      y[base + static_cast<std::size_t>(c)] = value;
    }
  });
}

void mv_fill_col(std::span<scalar_t> y, scalar_t value, ordinal_t n, int k_count, int col) {
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    y[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(col)] = value;
  });
}

void gather_column(std::span<const scalar_t> src, ordinal_t n, int k_count, int col,
                   std::span<scalar_t> out) {
  assert(out.size() >= static_cast<std::size_t>(n));
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    out[static_cast<std::size_t>(i)] =
        src[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(col)];
  });
}

void scatter_column(std::span<const scalar_t> in, ordinal_t n, int k_count, int col,
                    std::span<scalar_t> dst) {
  assert(in.size() >= static_cast<std::size_t>(n));
  const std::size_t k = static_cast<std::size_t>(k_count);
  mv_foreach_row(n, [&](ordinal_t i) {
    dst[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(col)] =
        in[static_cast<std::size_t>(i)];
  });
}

}  // namespace parmis::solver
