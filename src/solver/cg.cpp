#include "solver/cg.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "graph/spmv.hpp"
#include "obs/trace.hpp"
#include "resilience/fault.hpp"
#include "resilience/guard.hpp"
#include "solver/interface.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

void cg_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              const IterOptions& opts, const Preconditioner* prec, SolveWorkspace& ws,
              IterResult& result) {
  assert(a.num_rows == a.num_cols);
  const std::size_t n = static_cast<std::size_t>(a.num_rows);
  assert(b.size() == n && x.size() == n);

  scalar_t bnorm = 0;
  if (!begin_solve(opts, b, x, ws, result, bnorm)) return;

  std::span<scalar_t> r = ws.vec(0, n);
  std::span<scalar_t> z = ws.vec(1, n);
  std::span<scalar_t> p = ws.vec(2, n);
  std::span<scalar_t> ap = ws.vec(3, n);

  // r = b - A x
  graph::spmv(a, x, r);
  axpby(1.0, b, -1.0, r);

  auto precondition = [&](std::span<const scalar_t> in, std::span<scalar_t> out) {
    if (prec) {
      prec->apply(in, out);
    } else {
      copy(in, out);
    }
  };

  precondition(r, z);
  copy(z, p);
  scalar_t rz = dot(r, z);

  resilience::IterGuard guard(opts.guard_config());
  double relres = norm2(r) / bnorm;
  if (opts.track_history) result.history.push_back(relres);
  // Guard the initial residual too: a deadline of ~0 or a non-finite r0
  // must not enter the loop at all.
  resilience::SolveStatus stop = guard.check(relres, 0, result.failure);

  for (int it = 0; stop == resilience::SolveStatus::Converged && it < opts.max_iterations;
       ++it) {
    if (relres <= opts.tolerance) {
      result.converged = true;
      break;
    }
    obs::Span iter_span("solver.iteration");
    iter_span.arg("iteration", it);
    graph::spmv(a, p, ap);
    scalar_t pap = dot(p, ap);
    if (PARMIS_FAULT_POINT("cg.pap")) pap = 0;  // injected Krylov breakdown
    if (pap == 0 || !std::isfinite(pap)) {
      result.failure = resilience::FailureInfo{"iterate", "solver.cg.breakdown.pap", it, -1};
      stop = resilience::SolveStatus::Breakdown;
      break;
    }
    const scalar_t alpha = rz / pap;
    axpby(alpha, p, 1.0, x);
    axpby(-alpha, ap, 1.0, r);
    // Injected residual faults (check builds): blow r up past the
    // divergence factor, or poison it with a NaN — the *real* guards below
    // must catch both.
    if (PARMIS_FAULT_POINT("cg.diverge")) scale(r, 1e30);
    if (PARMIS_FAULT_POINT("cg.poison")) r[0] = std::numeric_limits<scalar_t>::quiet_NaN();
    precondition(r, z);
    const scalar_t rz_next = dot(r, z);
    const scalar_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p
    axpby(1.0, z, beta, p);
    ++result.iterations;
    relres = norm2(r) / bnorm;
    if (opts.track_history) result.history.push_back(relres);
    stop = guard.check(relres, result.iterations, result.failure);
  }
  if (stop != resilience::SolveStatus::Converged) result.status = stop;
  result.converged = result.converged || relres <= opts.tolerance;
  if (result.converged) {
    result.status = resilience::SolveStatus::Converged;
    result.failure.clear();
  }
  result.relative_residual = relres;
}

IterResult cg(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              const IterOptions& opts, const Preconditioner* prec) {
  const Context ctx = opts.ctx ? *opts.ctx : Context::default_ctx();
  Context::Scope scope(ctx);
  SolveWorkspace ws;
  IterResult result;
  cg_solve(a, b, x, opts, prec, ws, result);
  return result;
}

}  // namespace parmis::solver
