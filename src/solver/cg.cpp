#include "solver/cg.hpp"

#include <cassert>
#include <cmath>

#include "graph/spmv.hpp"
#include "obs/trace.hpp"
#include "solver/interface.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

void cg_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              const IterOptions& opts, const Preconditioner* prec, SolveWorkspace& ws,
              IterResult& result) {
  assert(a.num_rows == a.num_cols);
  const std::size_t n = static_cast<std::size_t>(a.num_rows);
  assert(b.size() == n && x.size() == n);

  scalar_t bnorm = 0;
  if (!begin_solve(opts, b, x, ws, result, bnorm)) return;

  std::span<scalar_t> r = ws.vec(0, n);
  std::span<scalar_t> z = ws.vec(1, n);
  std::span<scalar_t> p = ws.vec(2, n);
  std::span<scalar_t> ap = ws.vec(3, n);

  // r = b - A x
  graph::spmv(a, x, r);
  axpby(1.0, b, -1.0, r);

  auto precondition = [&](std::span<const scalar_t> in, std::span<scalar_t> out) {
    if (prec) {
      prec->apply(in, out);
    } else {
      copy(in, out);
    }
  };

  precondition(r, z);
  copy(z, p);
  scalar_t rz = dot(r, z);

  double relres = norm2(r) / bnorm;
  if (opts.track_history) result.history.push_back(relres);

  for (int it = 0; it < opts.max_iterations; ++it) {
    if (relres <= opts.tolerance) {
      result.converged = true;
      break;
    }
    obs::Span iter_span("solver.iteration");
    iter_span.arg("iteration", it);
    graph::spmv(a, p, ap);
    const scalar_t pap = dot(p, ap);
    if (pap == 0 || !std::isfinite(pap)) break;  // breakdown
    const scalar_t alpha = rz / pap;
    axpby(alpha, p, 1.0, x);
    axpby(-alpha, ap, 1.0, r);
    precondition(r, z);
    const scalar_t rz_next = dot(r, z);
    const scalar_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p
    axpby(1.0, z, beta, p);
    ++result.iterations;
    relres = norm2(r) / bnorm;
    if (opts.track_history) result.history.push_back(relres);
  }
  result.converged = result.converged || relres <= opts.tolerance;
  result.relative_residual = relres;
}

IterResult cg(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              const IterOptions& opts, const Preconditioner* prec) {
  const Context ctx = opts.ctx ? *opts.ctx : Context::default_ctx();
  Context::Scope scope(ctx);
  SolveWorkspace ws;
  IterResult result;
  cg_solve(a, b, x, opts, prec, ws, result);
  return result;
}

}  // namespace parmis::solver
