#include "solver/gmres.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "graph/spmv.hpp"
#include "obs/trace.hpp"
#include "resilience/fault.hpp"
#include "resilience/guard.hpp"
#include "solver/interface.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

namespace {

void gmres_core(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                std::span<scalar_t> x, const IterOptions& opts, const Preconditioner* prec,
                int restart, SolveWorkspace& ws, IterResult& result) {
  assert(a.num_rows == a.num_cols);
  const std::size_t n = static_cast<std::size_t>(a.num_rows);
  assert(b.size() == n && x.size() == n);
  assert(restart >= 1);

  scalar_t bnorm = 0;
  if (!begin_solve(opts, b, x, ws, result, bnorm)) return;

  const int m = restart;
  // Krylov basis (m+1 pool slots), Hessenberg (column-major, (m+1) x m),
  // Givens rotations, the residual-norm recurrence vector g, and two
  // temporaries — all workspace-owned, so warm solves allocate nothing.
  auto basis = [&](int i) { return ws.vec(static_cast<std::size_t>(i), n); };
  std::span<scalar_t> w = ws.vec(static_cast<std::size_t>(m) + 1, n);
  std::span<scalar_t> tmp = ws.vec(static_cast<std::size_t>(m) + 2, n);
  ws.ensure_small(ws.hess, static_cast<std::size_t>(m + 1) * static_cast<std::size_t>(m));
  ws.ensure_small(ws.cs, static_cast<std::size_t>(m));
  ws.ensure_small(ws.sn, static_cast<std::size_t>(m));
  ws.ensure_small(ws.g, static_cast<std::size_t>(m) + 1);
  ws.ensure_small(ws.y, static_cast<std::size_t>(m));
  std::fill(ws.hess.begin(), ws.hess.end(), 0.0);
  std::fill(ws.cs.begin(), ws.cs.end(), 0.0);
  std::fill(ws.sn.begin(), ws.sn.end(), 0.0);

  auto h = [&](int i, int j) -> scalar_t& {
    return ws.hess[static_cast<std::size_t>(j) * (m + 1) + static_cast<std::size_t>(i)];
  };

  auto apply_right_prec = [&](std::span<const scalar_t> in, std::span<scalar_t> out) {
    if (prec) {
      prec->apply(in, out);
    } else {
      copy(in, out);
    }
  };

  double relres = 0;
  {
    graph::spmv(a, x, w);
    axpby(1.0, b, -1.0, w);  // w = b - A x
    relres = norm2(w) / bnorm;
  }
  if (opts.track_history) result.history.push_back(relres);
  resilience::IterGuard guard(opts.guard_config());
  resilience::SolveStatus stop = guard.check(relres, 0, result.failure);
  // Set when a guard or breakdown stops the solve mid-cycle: the pending
  // partial-cycle x update is skipped, leaving x at the last completed
  // restart's (finite) iterate instead of folding in garbage.
  bool abort_cycle = false;

  while (stop == resilience::SolveStatus::Converged &&
         result.iterations < opts.max_iterations && relres > opts.tolerance) {
    // Outer (restart) cycle: v0 = r / ||r||.
    graph::spmv(a, x, basis(0));
    axpby(1.0, b, -1.0, basis(0));
    const scalar_t beta = norm2(basis(0));
    if (beta == 0) {
      relres = 0;
      break;
    }
    scale(basis(0), 1.0 / beta);
    std::fill(ws.g.begin(), ws.g.end(), 0.0);
    ws.g[0] = beta;

    int k = 0;  // columns built this cycle
    for (; k < m && result.iterations < opts.max_iterations; ++k) {
      obs::Span iter_span("solver.iteration");
      iter_span.arg("iteration", result.iterations);
      // Arnoldi: w = A M^{-1} v_k, orthogonalized against the basis.
      apply_right_prec(basis(k), tmp);
      graph::spmv(a, tmp, w);
      // Injected NaN (check builds): propagates through the Hessenberg
      // column into the Givens residual estimate the guard inspects.
      if (PARMIS_FAULT_POINT("gmres.poison")) w[0] = std::numeric_limits<scalar_t>::quiet_NaN();
      for (int i = 0; i <= k; ++i) {
        h(i, k) = dot(w, basis(i));
        axpby(-h(i, k), basis(i), 1.0, w);
      }
      h(k + 1, k) = norm2(w);
      if (h(k + 1, k) != 0) {
        copy(w, basis(k + 1));
        scale(basis(k + 1), 1.0 / h(k + 1, k));
      }

      // Apply stored Givens rotations to the new column, then form a new
      // rotation to zero h(k+1, k).
      for (int i = 0; i < k; ++i) {
        const scalar_t t = ws.cs[static_cast<std::size_t>(i)] * h(i, k) +
                           ws.sn[static_cast<std::size_t>(i)] * h(i + 1, k);
        h(i + 1, k) = -ws.sn[static_cast<std::size_t>(i)] * h(i, k) +
                      ws.cs[static_cast<std::size_t>(i)] * h(i + 1, k);
        h(i, k) = t;
      }
      const scalar_t denom = std::hypot(h(k, k), h(k + 1, k));
      if (denom == 0 || !std::isfinite(denom)) {
        // A zero column of the rotated Hessenberg means the triangular
        // solve would divide by h(k,k) = 0; previously this silently
        // produced NaN. Classify and stop instead of updating x.
        result.failure = resilience::FailureInfo{"iterate", "solver.gmres.breakdown.hessenberg",
                                                 result.iterations, -1};
        stop = resilience::SolveStatus::Breakdown;
        abort_cycle = true;
        break;
      }
      ws.cs[static_cast<std::size_t>(k)] = h(k, k) / denom;
      ws.sn[static_cast<std::size_t>(k)] = h(k + 1, k) / denom;
      h(k, k) = ws.cs[static_cast<std::size_t>(k)] * h(k, k) +
                ws.sn[static_cast<std::size_t>(k)] * h(k + 1, k);
      h(k + 1, k) = 0;
      ws.g[static_cast<std::size_t>(k) + 1] =
          -ws.sn[static_cast<std::size_t>(k)] * ws.g[static_cast<std::size_t>(k)];
      ws.g[static_cast<std::size_t>(k)] =
          ws.cs[static_cast<std::size_t>(k)] * ws.g[static_cast<std::size_t>(k)];

      ++result.iterations;
      relres = std::abs(ws.g[static_cast<std::size_t>(k) + 1]) / bnorm;
      if (opts.track_history) result.history.push_back(relres);
      if (relres <= opts.tolerance) {
        ++k;
        break;
      }
      stop = guard.check(relres, result.iterations, result.failure);
      if (stop != resilience::SolveStatus::Converged) {
        abort_cycle = true;
        break;
      }
    }
    if (abort_cycle) break;

    // Solve the k x k triangular system and update x += M^{-1} (V y).
    for (int i = k - 1; i >= 0; --i) {
      scalar_t acc = ws.g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        acc -= h(i, j) * ws.y[static_cast<std::size_t>(j)];
      }
      ws.y[static_cast<std::size_t>(i)] = acc / h(i, i);
    }
    fill(w, 0.0);
    for (int i = 0; i < k; ++i) {
      axpby(ws.y[static_cast<std::size_t>(i)], basis(i), 1.0, w);
    }
    apply_right_prec(w, tmp);
    axpby(1.0, tmp, 1.0, x);

    // Recompute the true residual after the restart update, and guard it:
    // a restart whose true residual disagrees badly with the Givens
    // estimate (divergence, stagnation across restarts) stops here.
    graph::spmv(a, x, w);
    axpby(1.0, b, -1.0, w);
    relres = norm2(w) / bnorm;
    if (relres > opts.tolerance) stop = guard.check(relres, result.iterations, result.failure);
  }

  if (stop != resilience::SolveStatus::Converged) result.status = stop;
  result.relative_residual = relres;
  result.converged = relres <= opts.tolerance;
  if (result.converged) {
    result.status = resilience::SolveStatus::Converged;
    result.failure.clear();
  }
}

}  // namespace

void gmres_solve(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                 std::span<scalar_t> x, const IterOptions& opts, const Preconditioner* prec,
                 SolveWorkspace& ws, IterResult& result) {
  gmres_core(a, b, x, opts, prec, opts.gmres_restart, ws, result);
}

IterResult gmres(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                 std::span<scalar_t> x, const IterOptions& opts, const Preconditioner* prec,
                 int restart) {
  const Context ctx = opts.ctx ? *opts.ctx : Context::default_ctx();
  Context::Scope scope(ctx);
  SolveWorkspace ws;
  IterResult result;
  gmres_core(a, b, x, opts, prec, restart > 0 ? restart : opts.gmres_restart, ws, result);
  return result;
}

}  // namespace parmis::solver
