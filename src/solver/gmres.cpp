#include "solver/gmres.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "graph/spmv.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

IterResult gmres(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                 std::span<scalar_t> x, const IterOptions& opts, const Preconditioner* prec,
                 int restart) {
  assert(a.num_rows == a.num_cols);
  const std::size_t n = static_cast<std::size_t>(a.num_rows);
  assert(b.size() == n && x.size() == n);
  assert(restart >= 1);

  IterResult result;
  const scalar_t bnorm = norm2(b);
  if (bnorm == 0) {
    fill(x, 0.0);
    result.converged = true;
    return result;
  }

  const int m = restart;
  // Krylov basis (m+1 vectors), Hessenberg (column-major, (m+1) x m),
  // Givens rotations, and the residual-norm recurrence vector g.
  std::vector<std::vector<scalar_t>> basis(static_cast<std::size_t>(m) + 1,
                                           std::vector<scalar_t>(n));
  std::vector<scalar_t> hess(static_cast<std::size_t>(m + 1) * m, 0);
  std::vector<scalar_t> cs(static_cast<std::size_t>(m), 0), sn(static_cast<std::size_t>(m), 0);
  std::vector<scalar_t> g(static_cast<std::size_t>(m) + 1, 0);
  std::vector<scalar_t> w(n), tmp(n);

  auto h = [&](int i, int j) -> scalar_t& {
    return hess[static_cast<std::size_t>(j) * (m + 1) + static_cast<std::size_t>(i)];
  };

  auto apply_right_prec = [&](std::span<const scalar_t> in, std::span<scalar_t> out) {
    if (prec) {
      prec->apply(in, out);
    } else {
      copy(in, out);
    }
  };

  double relres = 0;
  {
    graph::spmv(a, x, w);
    axpby(1.0, b, -1.0, w);  // w = b - A x
    relres = norm2(w) / bnorm;
  }
  if (opts.track_history) result.history.push_back(relres);

  while (result.iterations < opts.max_iterations && relres > opts.tolerance) {
    // Outer (restart) cycle: v0 = r / ||r||.
    graph::spmv(a, x, basis[0]);
    axpby(1.0, b, -1.0, basis[0]);
    const scalar_t beta = norm2(basis[0]);
    if (beta == 0) {
      relres = 0;
      break;
    }
    scale(basis[0], 1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;  // columns built this cycle
    for (; k < m && result.iterations < opts.max_iterations; ++k) {
      // Arnoldi: w = A M^{-1} v_k, orthogonalized against the basis.
      apply_right_prec(basis[static_cast<std::size_t>(k)], tmp);
      graph::spmv(a, tmp, w);
      for (int i = 0; i <= k; ++i) {
        h(i, k) = dot(w, basis[static_cast<std::size_t>(i)]);
        axpby(-h(i, k), basis[static_cast<std::size_t>(i)], 1.0, w);
      }
      h(k + 1, k) = norm2(w);
      if (h(k + 1, k) != 0) {
        copy(w, basis[static_cast<std::size_t>(k) + 1]);
        scale(basis[static_cast<std::size_t>(k) + 1], 1.0 / h(k + 1, k));
      }

      // Apply stored Givens rotations to the new column, then form a new
      // rotation to zero h(k+1, k).
      for (int i = 0; i < k; ++i) {
        const scalar_t t = cs[static_cast<std::size_t>(i)] * h(i, k) +
                           sn[static_cast<std::size_t>(i)] * h(i + 1, k);
        h(i + 1, k) = -sn[static_cast<std::size_t>(i)] * h(i, k) +
                      cs[static_cast<std::size_t>(i)] * h(i + 1, k);
        h(i, k) = t;
      }
      const scalar_t denom = std::hypot(h(k, k), h(k + 1, k));
      if (denom == 0) {
        cs[static_cast<std::size_t>(k)] = 1;
        sn[static_cast<std::size_t>(k)] = 0;
      } else {
        cs[static_cast<std::size_t>(k)] = h(k, k) / denom;
        sn[static_cast<std::size_t>(k)] = h(k + 1, k) / denom;
      }
      h(k, k) = cs[static_cast<std::size_t>(k)] * h(k, k) +
                sn[static_cast<std::size_t>(k)] * h(k + 1, k);
      h(k + 1, k) = 0;
      g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];

      ++result.iterations;
      relres = std::abs(g[static_cast<std::size_t>(k) + 1]) / bnorm;
      if (opts.track_history) result.history.push_back(relres);
      if (relres <= opts.tolerance) {
        ++k;
        break;
      }
    }

    // Solve the k x k triangular system and update x += M^{-1} (V y).
    std::vector<scalar_t> y(static_cast<std::size_t>(k), 0);
    for (int i = k - 1; i >= 0; --i) {
      scalar_t acc = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        acc -= h(i, j) * y[static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i)] = acc / h(i, i);
    }
    fill(w, 0.0);
    for (int i = 0; i < k; ++i) {
      axpby(y[static_cast<std::size_t>(i)], basis[static_cast<std::size_t>(i)], 1.0, w);
    }
    apply_right_prec(w, tmp);
    axpby(1.0, tmp, 1.0, x);

    // Recompute the true residual after the restart update.
    graph::spmv(a, x, w);
    axpby(1.0, b, -1.0, w);
    relres = norm2(w) / bnorm;
  }

  result.relative_residual = relres;
  result.converged = relres <= opts.tolerance;
  return result;
}

}  // namespace parmis::solver
