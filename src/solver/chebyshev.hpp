#pragma once
/// \file chebyshev.hpp
/// \brief Chebyshev polynomial smoother (MueLu's production smoother; an
/// alternative to the damped Jacobi used in the paper's Table V runs).
///
/// Applies the degree-d Chebyshev polynomial of D⁻¹A targeting the
/// interval [λmax/eig_ratio, λmax], damping the high-frequency error modes
/// multigrid relies on the smoother to remove. λmax is estimated with a
/// deterministic power iteration on D⁻¹A.
///
/// Also usable as a stand-alone relaxation *solver* through the solver
/// registry ("chebyshev", see solver/interface.hpp): repeated polynomial
/// applications until the residual tolerance is met.

#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::solver {

class ChebyshevSmoother {
 public:
  /// Build for `a`; `degree` polynomial degree per application (>= 1),
  /// `eig_ratio` = λmax / λmin of the targeted interval (MueLu default 20).
  explicit ChebyshevSmoother(const graph::CrsMatrix& a, int degree = 2,
                             scalar_t eig_ratio = 20.0);

  /// One application: x <- x + p(D⁻¹A) D⁻¹ (b - A x). Allocates its three
  /// temporaries; prefer the scratch overload on hot paths.
  void smooth(const graph::CrsMatrix& a, std::span<const scalar_t> b,
              std::span<scalar_t> x) const;

  /// Allocation-free application into caller-owned scratch (`r`, `d`, `ad`
  /// must each have `a.num_rows` elements). This is what the AMG V-cycle
  /// and the "chebyshev" registry solver use for zero-allocation warm runs.
  void smooth(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
              std::span<scalar_t> r, std::span<scalar_t> d, std::span<scalar_t> ad) const;

  /// Batched application over n x k_count row-major multi-vectors: every
  /// matrix application is one `spmm` and the recurrence runs per lane, so
  /// column c is bit-identical to `smooth` on the gathered column. Scratch
  /// spans need `a.num_rows * k_count` elements each.
  void smooth_multi(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                    std::span<scalar_t> x, std::span<scalar_t> r, std::span<scalar_t> d,
                    std::span<scalar_t> ad, int k_count) const;

  /// Warm-rebuild hook: refresh the inverted diagonal and re-run the power
  /// iteration against `a` (same shape, new values) without allocating.
  /// Produces exactly the state a freshly constructed smoother would —
  /// the power iteration restarts from the same seeded vector — so warm
  /// `AmgHierarchy::rebuild` is bit-identical to rebuilding from scratch.
  void reestimate(const graph::CrsMatrix& a);

  [[nodiscard]] scalar_t lambda_max() const { return lambda_max_; }
  [[nodiscard]] int degree() const { return degree_; }
  [[nodiscard]] scalar_t eig_ratio() const { return lambda_max_ / lambda_min_; }

 private:
  std::vector<scalar_t> inv_diag_;
  /// Power-iteration scratch, kept so `reestimate` is allocation-free.
  std::vector<scalar_t> pw_z_, pw_az_;
  scalar_t lambda_max_{0};
  scalar_t lambda_min_{0};
  scalar_t eig_ratio_cfg_{20.0};
  int degree_;
};

}  // namespace parmis::solver
