#pragma once
/// \file preconditioner.hpp
/// \brief Abstract preconditioner interface shared by the outer solvers.
///
/// Concrete implementations are selected by name through the
/// string-keyed registry in solver/interface.hpp ("none", "jacobi", "gs",
/// "cluster-gs", "amg") and cached per matrix by `SolveHandle`.

#include <algorithm>
#include <span>
#include <string>

#include "common/config.hpp"

namespace parmis::solver {

/// Applies z = M^{-1} r for some approximation M of the system matrix.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// No-op preconditioner (M = I).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const override {
    std::copy(r.begin(), r.end(), z.begin());
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

}  // namespace parmis::solver
