#pragma once
/// \file preconditioner.hpp
/// \brief Abstract preconditioner interface shared by the outer solvers.
///
/// Concrete implementations are selected by name through the
/// string-keyed registry in solver/interface.hpp ("none", "jacobi", "gs",
/// "cluster-gs", "amg") and cached per matrix by `SolveHandle`.

#include <algorithm>
#include <span>
#include <string>

#include "common/config.hpp"

namespace parmis::solver {

/// Applies z = M^{-1} r for some approximation M of the system matrix.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Batched apply: Z = M^{-1} R columnwise, for n x k_count row-major
  /// multi-vectors (element (i, c) at `i * k_count + c`). Column c of Z is
  /// bit-identical to `apply` on the gathered column — every registered
  /// preconditioner is columnwise-independent, so a NaN-poisoned column
  /// can never contaminate its batchmates. The default gathers each column
  /// through `scratch` (size >= 2 n) and calls `apply`; implementations
  /// with fused multi-vector kernels override it and ignore `scratch`.
  /// Pre-size any internal multi-vector scratch for batches of width
  /// `k_count` on an n-row system, so a subsequent `apply_multi` at that
  /// width (or narrower) allocates nothing. Returns true when scratch
  /// grew — `SolveHandle` calls this before the batched solve's
  /// zero-allocation window and treats growth like workspace growth
  /// (exempt). The default covers implementations without internal
  /// multi-vector state.
  virtual bool prepare_multi(ordinal_t /*n*/, int /*k_count*/) { return false; }

  virtual void apply_multi(std::span<const scalar_t> r, std::span<scalar_t> z, ordinal_t n,
                           int k_count, std::span<scalar_t> scratch) const {
    const std::size_t un = static_cast<std::size_t>(n);
    const std::size_t k = static_cast<std::size_t>(k_count);
    std::span<scalar_t> rc = scratch.subspan(0, un);
    std::span<scalar_t> zc = scratch.subspan(un, un);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t i = 0; i < un; ++i) rc[i] = r[i * k + c];
      apply(rc, zc);
      for (std::size_t i = 0; i < un; ++i) z[i * k + c] = zc[i];
    }
  }
};

/// No-op preconditioner (M = I).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const scalar_t> r, std::span<scalar_t> z) const override {
    std::copy(r.begin(), r.end(), z.begin());
  }
  void apply_multi(std::span<const scalar_t> r, std::span<scalar_t> z, ordinal_t /*n*/,
                   int /*k_count*/, std::span<scalar_t> /*scratch*/) const override {
    std::copy(r.begin(), r.end(), z.begin());
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

}  // namespace parmis::solver
