#include "solver/interface.hpp"

#include <new>
#include <stdexcept>

#include "resilience/fault.hpp"
#include "solver/cluster_gs.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/jacobi.hpp"
#include "solver/multivector.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

// ------------------------------------------------------------- workspace

std::span<scalar_t> SolveWorkspace::vec(std::size_t slot, std::size_t n) {
  // Injected allocation failure (check builds): exercises the chain's
  // bad_alloc → SetupFailed rerouting without actually exhausting memory.
  if (PARMIS_FAULT_POINT("workspace.alloc")) throw std::bad_alloc();
  if (pool.size() <= slot) {
    pool.resize(slot + 1);
    ++grow_events;
  }
  std::vector<scalar_t>& v = pool[slot];
  if (v.capacity() < n) {
    v.reserve(n);
    ++grow_events;
  }
  v.resize(n);
  return v;
}

void SolveWorkspace::ensure_small(std::vector<scalar_t>& v, std::size_t n) {
  if (v.capacity() < n) {
    v.reserve(n);
    ++grow_events;
  }
  v.resize(n);
}

void SolveWorkspace::ensure_small(std::vector<int>& v, std::size_t n) {
  if (v.capacity() < n) {
    v.reserve(n);
    ++grow_events;
  }
  v.resize(n);
}

std::size_t SolveWorkspace::capacity_bytes() const {
  std::size_t bytes = pool.capacity() * sizeof(std::vector<scalar_t>);
  for (const std::vector<scalar_t>& v : pool) bytes += v.capacity() * sizeof(scalar_t);
  bytes += (hess.capacity() + cs.capacity() + sn.capacity() + g.capacity() + y.capacity()) *
           sizeof(scalar_t);
  bytes += (bcol.capacity() + xcol.capacity() + batch_scalars.capacity()) * sizeof(scalar_t);
  bytes += batch_ints.capacity() * sizeof(int);
  bytes += batch_active.capacity() * sizeof(char);
  bytes += batch_guards.capacity() * sizeof(resilience::IterGuard);
  return bytes;
}

// ----------------------------------------------------------- batch result

void BatchResult::reset(int k_count) {
  k = k_count;
  if (results.size() < static_cast<std::size_t>(k_count)) {
    results.resize(static_cast<std::size_t>(k_count));
  }
  excluded.assign(static_cast<std::size_t>(k_count), 0);
}

void BatchResult::ensure(int k_count) {
  k = k_count;
  if (results.size() < static_cast<std::size_t>(k_count)) {
    results.resize(static_cast<std::size_t>(k_count));
  }
  if (excluded.size() != static_cast<std::size_t>(k_count)) {
    excluded.assign(static_cast<std::size_t>(k_count), 0);
  }
}

int BatchResult::converged_count() const {
  int count = 0;
  for (int c = 0; c < k; ++c) count += results[static_cast<std::size_t>(c)].converged ? 1 : 0;
  return count;
}

bool BatchResult::all_converged() const { return converged_count() == k; }

bool begin_solve(const IterOptions& opts, std::span<const scalar_t> b, std::span<scalar_t> x,
                 SolveWorkspace& ws, IterResult& result, scalar_t& bnorm) {
  result.iterations = 0;
  result.relative_residual = 0.0;
  result.converged = false;
  // Default assumption: the loop runs to its iteration budget. Every other
  // exit (convergence, breakdown, guard trip) overwrites this. `attempts`
  // is deliberately NOT touched — it is owned by SolveHandle, which runs
  // several solver calls per chain into the same result.
  result.status = resilience::SolveStatus::MaxIterations;
  result.failure.clear();
  result.history.clear();  // keeps capacity: warm tracked solves stay allocation-free
  if (opts.track_history) {
    ws.ensure_small(result.history, static_cast<std::size_t>(opts.max_iterations) + 1);
    result.history.clear();
  }
  bnorm = norm2(b);
  if (bnorm == 0) {
    fill(x, 0.0);
    result.converged = true;
    result.status = resilience::SolveStatus::Converged;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------- solvers

void Solver::solve_batch(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                         std::span<scalar_t> x, int k_count, const IterOptions& opts,
                         const Preconditioner* prec, SolveWorkspace& ws,
                         BatchResult& result) const {
  result.ensure(k_count);
  const ordinal_t n = a.num_rows;
  ws.ensure_small(ws.bcol, static_cast<std::size_t>(n));
  ws.ensure_small(ws.xcol, static_cast<std::size_t>(n));
  for (int c = 0; c < k_count; ++c) {
    if (result.excluded[static_cast<std::size_t>(c)]) continue;
    gather_column(b, n, k_count, c, ws.bcol);
    gather_column(x, n, k_count, c, ws.xcol);
    solve(a, ws.bcol, ws.xcol, opts, prec, ws, result.results[static_cast<std::size_t>(c)]);
    scatter_column(ws.xcol, n, k_count, c, x);
  }
}

namespace {

class CgSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "cg"; }
  void solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
             const IterOptions& opts, const Preconditioner* prec, SolveWorkspace& ws,
             IterResult& result) const override {
    cg_solve(a, b, x, opts, prec, ws, result);
  }
};

class GmresSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "gmres"; }
  void solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
             const IterOptions& opts, const Preconditioner* prec, SolveWorkspace& ws,
             IterResult& result) const override {
    gmres_solve(a, b, x, opts, prec, ws, result);
  }
};

class ChebyshevSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "chebyshev"; }
  // Polynomial relaxation carries its own diagonal scaling; an outer
  // preconditioner does not compose, so the handle skips building one.
  [[nodiscard]] bool uses_preconditioner() const override { return false; }
  void solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
             const IterOptions& opts, const Preconditioner* /*prec*/, SolveWorkspace& ws,
             IterResult& result) const override {
    chebyshev_solve(a, b, x, opts, ws, result);
  }
};

class BlockCgSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "block-cg"; }
  void solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
             const IterOptions& opts, const Preconditioner* prec, SolveWorkspace& ws,
             IterResult& result) const override {
    cg_solve(a, b, x, opts, prec, ws, result);
  }
  void solve_batch(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                   std::span<scalar_t> x, int k_count, const IterOptions& opts,
                   const Preconditioner* prec, SolveWorkspace& ws,
                   BatchResult& result) const override {
    block_cg_solve(a, b, x, k_count, opts, prec, ws, result);
  }
};

class BlockGmresSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "block-gmres"; }
  void solve(const graph::CrsMatrix& a, std::span<const scalar_t> b, std::span<scalar_t> x,
             const IterOptions& opts, const Preconditioner* prec, SolveWorkspace& ws,
             IterResult& result) const override {
    gmres_solve(a, b, x, opts, prec, ws, result);
  }
  void solve_batch(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                   std::span<scalar_t> x, int k_count, const IterOptions& opts,
                   const Preconditioner* prec, SolveWorkspace& ws,
                   BatchResult& result) const override {
    block_gmres_solve(a, b, x, k_count, opts, prec, ws, result);
  }
};

}  // namespace

const std::vector<SolverSpec>& solver_registry() {
  static const std::vector<SolverSpec> registry = {
      {"cg", "preconditioned conjugate gradient (SPD; the Table V outer solver)",
       [] { return std::unique_ptr<Solver>(std::make_unique<CgSolver>()); }},
      {"gmres",
       "restarted right-preconditioned GMRES (general; the Table VI outer solver)",
       [] { return std::unique_ptr<Solver>(std::make_unique<GmresSolver>()); }},
      {"chebyshev",
       "Chebyshev polynomial relaxation (SPD; ignores the preconditioner — "
       "carries its own diagonal scaling)",
       [] { return std::unique_ptr<Solver>(std::make_unique<ChebyshevSolver>()); }},
      {"block-cg",
       "block conjugate gradient: K RHS in lockstep over fused SpMM, "
       "bit-identical per column to \"cg\"",
       [] { return std::unique_ptr<Solver>(std::make_unique<BlockCgSolver>()); }},
      {"block-gmres",
       "block restarted GMRES: K RHS over fused SpMM with per-column restart "
       "phases, bit-identical per column to \"gmres\"",
       [] { return std::unique_ptr<Solver>(std::make_unique<BlockGmresSolver>()); }},
  };
  return registry;
}

std::vector<std::string> solver_names() {
  std::vector<std::string> names;
  names.reserve(solver_registry().size());
  for (const SolverSpec& spec : solver_registry()) names.push_back(spec.name);
  return names;
}

const SolverSpec& find_solver(const std::string& name) {
  for (const SolverSpec& spec : solver_registry()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown solver '" + name + "'");
}

std::unique_ptr<Solver> make_solver(const std::string& name) { return find_solver(name).make(); }

// ------------------------------------------------------- preconditioners

const std::vector<PreconditionerSpec>& preconditioner_registry() {
  static const std::vector<PreconditionerSpec> registry = {
      {"none", "identity (unpreconditioned)", false,
       [](const graph::CrsMatrix&, const PrecOptions&, const Context&) {
         return std::unique_ptr<Preconditioner>(std::make_unique<IdentityPreconditioner>());
       }},
      {"jacobi", "damped Jacobi sweeps (the Table V smoother)", false,
       [](const graph::CrsMatrix& a, const PrecOptions& opts, const Context& ctx) {
         Context::Scope scope(ctx);
         return std::unique_ptr<Preconditioner>(std::make_unique<JacobiPreconditioner>(
             a, opts.jacobi_sweeps, opts.jacobi_omega));
       }},
      {"gs", "point multicolor symmetric Gauss-Seidel (Deveci et al.)", false,
       [](const graph::CrsMatrix& a, const PrecOptions& opts, const Context& ctx) {
         return std::unique_ptr<Preconditioner>(
             std::make_unique<PointGsPreconditioner>(a, opts.sweeps, ctx));
       }},
      {"cluster-gs",
       "cluster multicolor symmetric Gauss-Seidel (paper Algorithm 4; composes "
       "with any registered coarsener)",
       true,
       [](const graph::CrsMatrix& a, const PrecOptions& opts, const Context& ctx) {
         return std::unique_ptr<Preconditioner>(std::make_unique<ClusterGsPreconditioner>(
             a, opts.sweeps, opts.coarsener, opts.mis2, ctx));
       }},
      {"amg",
       "smoothed-aggregation multigrid V-cycle (Table V; composes with any "
       "registered coarsener)",
       true,
       [](const graph::CrsMatrix& a, const PrecOptions& opts, const Context& ctx) {
         AmgOptions amg = opts.amg;
         if (!amg.ctx) amg.ctx = ctx;
         return std::unique_ptr<Preconditioner>(
             std::make_unique<AmgHierarchy>(AmgHierarchy::build(a, amg)));
       }},
  };
  return registry;
}

std::vector<std::string> preconditioner_names() {
  std::vector<std::string> names;
  names.reserve(preconditioner_registry().size());
  for (const PreconditionerSpec& spec : preconditioner_registry()) names.push_back(spec.name);
  return names;
}

const PreconditionerSpec& find_preconditioner(const std::string& name) {
  for (const PreconditionerSpec& spec : preconditioner_registry()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown preconditioner '" + name + "'");
}

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name,
                                                    const graph::CrsMatrix& a,
                                                    const PrecOptions& opts,
                                                    const Context& ctx) {
  return find_preconditioner(name).make(a, opts, ctx);
}

}  // namespace parmis::solver
