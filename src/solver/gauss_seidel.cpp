#include "solver/gauss_seidel.hpp"

#include <cassert>

#include "common/timer.hpp"
#include "parallel/parallel_for.hpp"
#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::solver {

namespace {

/// GS row update shared by every variant: x_i from the current x.
inline void gs_row_update(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                          std::span<scalar_t> x, scalar_t inv_diag_i, ordinal_t i) {
  scalar_t acc = b[static_cast<std::size_t>(i)];
  for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
    const ordinal_t col = a.entries[static_cast<std::size_t>(j)];
    if (col != i) {
      acc -= a.values[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(col)];
    }
  }
  x[static_cast<std::size_t>(i)] = acc * inv_diag_i;
}

}  // namespace

void serial_gs_sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                     std::span<scalar_t> x, SweepDirection dir) {
  assert(a.num_rows == a.num_cols);
  const std::vector<scalar_t> inv_diag = inverted_diagonal(a);
  if (dir == SweepDirection::Forward) {
    for (ordinal_t i = 0; i < a.num_rows; ++i) {
      gs_row_update(a, b, x, inv_diag[static_cast<std::size_t>(i)], i);
    }
  } else {
    for (ordinal_t i = a.num_rows - 1; i >= 0; --i) {
      gs_row_update(a, b, x, inv_diag[static_cast<std::size_t>(i)], i);
    }
  }
}

PointMulticolorGS::PointMulticolorGS(const graph::CrsMatrix& a, const Context& ctx) {
  assert(a.num_rows == a.num_cols);
  Timer timer;
  Context::Scope scope(ctx);
  // Color the off-diagonal structure; the diagonal is not a coupling.
  coloring_ = coloring::parallel_d1_coloring(graph::GraphView(a));
  sets_ = coloring::color_sets(coloring_);
  inv_diag_ = inverted_diagonal(a);
  setup_seconds_ = timer.seconds();
}

void PointMulticolorGS::sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                              std::span<scalar_t> x, SweepDirection dir) const {
  const ordinal_t nc = coloring_.num_colors;
  for (ordinal_t step = 0; step < nc; ++step) {
    const ordinal_t c = dir == SweepDirection::Forward ? step : nc - 1 - step;
    const offset_t begin = sets_.offsets[static_cast<std::size_t>(c)];
    const offset_t count = sets_.offsets[static_cast<std::size_t>(c) + 1] - begin;
    par::parallel_for(static_cast<ordinal_t>(count), [&](ordinal_t k) {
      const ordinal_t i = sets_.vertices[static_cast<std::size_t>(begin + k)];
      gs_row_update(a, b, x, inv_diag_[static_cast<std::size_t>(i)], i);
    });
  }
}

void PointMulticolorGS::symmetric_sweep(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                                        std::span<scalar_t> x) const {
  sweep(a, b, x, SweepDirection::Forward);
  sweep(a, b, x, SweepDirection::Backward);
}

void PointGsPreconditioner::apply(std::span<const scalar_t> r, std::span<scalar_t> z) const {
  fill(z, 0.0);
  for (int s = 0; s < sweeps_; ++s) {
    gs_.symmetric_sweep(a_, r, z);
  }
}

}  // namespace parmis::solver
