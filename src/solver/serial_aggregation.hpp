#pragma once
/// \file serial_aggregation.hpp
/// \brief Sequential greedy aggregation — the "Serial Agg" baseline of
/// Table V (MueLu's host-side uncoupled aggregation in the spirit of
/// Tuminaro-Tong / Wiesner).
///
/// Three sequential phases over the vertices in natural order:
///  1. a vertex whose entire neighborhood is unaggregated becomes a root
///     and absorbs its neighbors;
///  2. leftover vertices adjacent to an aggregate join the one with the
///     strongest coupling (ties: smaller aggregate, then smaller id);
///  3. remaining vertices (isolated pockets) seed new aggregates with their
///     unaggregated neighbors.
/// Deterministic by construction (fully sequential), but O(|V| + |E|)
/// serial time — the cost Table V's "Agg." column exposes.

#include "core/aggregation.hpp"
#include "graph/crs.hpp"

namespace parmis::solver {

[[nodiscard]] core::Aggregation serial_aggregation(graph::GraphView g);

}  // namespace parmis::solver
