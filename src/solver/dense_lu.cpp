#include "solver/dense_lu.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "resilience/fault.hpp"
#include "resilience/status.hpp"

namespace parmis::solver {

DenseLU::DenseLU(const graph::CrsMatrix& a, scalar_t diag_shift) : n_(0) {
  refactor(a, diag_shift);
}

void DenseLU::refactor(const graph::CrsMatrix& a, scalar_t diag_shift) {
  assert(a.num_rows == a.num_cols);
  n_ = a.num_rows;
  const std::size_t n = static_cast<std::size_t>(n_);
  // assign() reuses the existing buffer when the size is unchanged, so a
  // warm refactor of the same-shape coarse block allocates nothing.
  lu_.assign(n * n, 0);
  perm_.resize(n);
  for (ordinal_t i = 0; i < n_; ++i) {
    perm_[static_cast<std::size_t>(i)] = i;
    for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
      const ordinal_t col = a.entries[static_cast<std::size_t>(j)];
      scalar_t v = a.values[static_cast<std::size_t>(j)];
      if (col == i) v += diag_shift;
      lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(col)] = v;
    }
  }

  for (ordinal_t k = 0; k < n_; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    ordinal_t piv = k;
    scalar_t best = std::abs(lu_[static_cast<std::size_t>(k) * n + static_cast<std::size_t>(k)]);
    for (ordinal_t i = k + 1; i < n_; ++i) {
      const scalar_t cand =
          std::abs(lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(k)]);
      if (cand > best) {
        best = cand;
        piv = i;
      }
    }
    if (k == 0 && PARMIS_FAULT_POINT("lu.zero_pivot")) best = 0;  // injected singular pivot
    if (best == 0 || !std::isfinite(best)) {
      throw resilience::SolveError(
          resilience::SolveStatus::SingularOperator,
          resilience::FailureInfo{"setup", "setup.lu.singular_pivot", -1,
                                  static_cast<std::int64_t>(k)},
          "DenseLU: singular matrix (no usable pivot in column " + std::to_string(k) + ")");
    }
    if (piv != k) {
      for (ordinal_t j = 0; j < n_; ++j) {
        std::swap(lu_[static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)],
                  lu_[static_cast<std::size_t>(piv) * n + static_cast<std::size_t>(j)]);
      }
      std::swap(perm_[static_cast<std::size_t>(k)], perm_[static_cast<std::size_t>(piv)]);
    }
    const scalar_t pivot = lu_[static_cast<std::size_t>(k) * n + static_cast<std::size_t>(k)];
    for (ordinal_t i = k + 1; i < n_; ++i) {
      scalar_t& lik = lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(k)];
      lik /= pivot;
      if (lik == 0) continue;
      for (ordinal_t j = k + 1; j < n_; ++j) {
        lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] -=
            lik * lu_[static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)];
      }
    }
  }
}

void DenseLU::solve(std::span<const scalar_t> b, std::span<scalar_t> x) const {
  assert(b.size() == static_cast<std::size_t>(n_) && x.size() == static_cast<std::size_t>(n_));
  const std::size_t n = static_cast<std::size_t>(n_);

  // Forward substitution on the permuted right-hand side (L has unit diag).
  for (ordinal_t i = 0; i < n_; ++i) {
    scalar_t acc = b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];
    for (ordinal_t j = 0; j < i; ++j) {
      acc -= lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = acc;
  }
  // Back substitution.
  for (ordinal_t i = n_ - 1; i >= 0; --i) {
    scalar_t acc = x[static_cast<std::size_t>(i)];
    for (ordinal_t j = i + 1; j < n_; ++j) {
      acc -= lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] =
        acc / lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)];
  }
}

void DenseLU::solve_multi(std::span<const scalar_t> b, std::span<scalar_t> x,
                          int k_count) const {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t uk = static_cast<std::size_t>(k_count);
  assert(k_count > 0);
  assert(b.size() >= n * uk && x.size() >= n * uk);

  for (std::size_t c = 0; c < uk; ++c) {
    for (ordinal_t i = 0; i < n_; ++i) {
      scalar_t acc =
          b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)]) * uk + c];
      for (ordinal_t j = 0; j < i; ++j) {
        acc -= lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] *
               x[static_cast<std::size_t>(j) * uk + c];
      }
      x[static_cast<std::size_t>(i) * uk + c] = acc;
    }
    for (ordinal_t i = n_ - 1; i >= 0; --i) {
      scalar_t acc = x[static_cast<std::size_t>(i) * uk + c];
      for (ordinal_t j = i + 1; j < n_; ++j) {
        acc -= lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] *
               x[static_cast<std::size_t>(j) * uk + c];
      }
      x[static_cast<std::size_t>(i) * uk + c] =
          acc / lu_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)];
    }
  }
}

}  // namespace parmis::solver
