#pragma once
/// \file gmres.hpp
/// \brief Restarted, right-preconditioned GMRES (the Table VI outer solver).
///
/// Depends only on the shared option types (solver/options.hpp) — the
/// historical include of cg.hpp is gone. The registry entry ("gmres") and
/// the workspace-based core live behind solver/interface.hpp; the free
/// function below remains as a transient-handle shim for migration.

#include <span>

#include "graph/crs.hpp"
#include "solver/options.hpp"
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// Solve `a x = b` with GMRES(restart), right-preconditioned with `prec`
/// (null = unpreconditioned), starting from the given `x`. Right
/// preconditioning keeps the monitored residual equal to the true residual.
/// `restart` overrides `opts.gmres_restart` when positive. Deterministic
/// for any thread count.
IterResult gmres(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                 std::span<scalar_t> x, const IterOptions& opts = {},
                 const Preconditioner* prec = nullptr, int restart = 0);

}  // namespace parmis::solver
