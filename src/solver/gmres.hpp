#pragma once
/// \file gmres.hpp
/// \brief Restarted, right-preconditioned GMRES (the Table VI outer solver).

#include <span>

#include "graph/crs.hpp"
#include "solver/cg.hpp"  // IterOptions / IterResult
#include "solver/preconditioner.hpp"

namespace parmis::solver {

/// Solve `a x = b` with GMRES(restart), right-preconditioned with `prec`
/// (null = unpreconditioned), starting from the given `x`. Right
/// preconditioning keeps the monitored residual equal to the true residual.
/// Deterministic for any thread count.
IterResult gmres(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                 std::span<scalar_t> x, const IterOptions& opts = {},
                 const Preconditioner* prec = nullptr, int restart = 50);

}  // namespace parmis::solver
