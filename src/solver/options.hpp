#pragma once
/// \file options.hpp
/// \brief Shared configuration and outcome types for the iterative solver
/// stack (CG, GMRES, Chebyshev; see interface.hpp for the registry).
///
/// `IterOptions`/`IterResult` historically lived in cg.hpp, which forced
/// gmres.hpp to include the CG header just for the option struct. They are
/// hoisted here so every outer solver shares one header and the per-solver
/// headers depend only on what they use.
///
/// Since the resilience layer, a result carries a full failure
/// classification: `status` (the `resilience::SolveStatus` taxonomy),
/// a located `failure` diagnostic, and — when `SolveHandle` ran a
/// fallback chain — the per-attempt record. The historical `converged`
/// bool is kept in sync (`converged == (status == Converged)`) as the
/// compatibility view.

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "parallel/context.hpp"
#include "resilience/guard.hpp"
#include "resilience/status.hpp"

namespace parmis::solver {

/// Shared Krylov/relaxation-solver configuration.
struct IterOptions {
  int max_iterations = 1000;
  double tolerance = 1e-8;     ///< on ||r|| / ||b||
  bool track_history = false;  ///< record the residual per iteration

  /// Execution context for the solve. Unset (the default) inherits the
  /// ambient configuration — a `SolveHandle`'s own context, or for the free
  /// functions the process-global `par::Execution` state — which is the
  /// exact pre-Context behavior. Set it to pin the solve to a specific
  /// backend/thread count/schedule regardless of the caller's environment.
  std::optional<Context> ctx;

  // --- resilience knobs (read by every iterative solver) -----------------
  /// Wall-clock budget in milliseconds, checked at iteration granularity;
  /// the solve returns `Timeout` with the best iterate so far instead of
  /// running unbounded. Under a `SolveHandle` fallback chain the budget
  /// covers the *whole* chain (setup included). 0 = unbounded. Note this is
  /// the one knob that trades away bit-determinism of the outcome.
  double timeout_ms = 0;
  /// Residual growth past `divergence_factor × max(1, r0/||b||)` is
  /// classified `Diverged`. 0 disables the guard.
  double divergence_factor = 1e8;
  /// `Stagnated` when no iteration in the last `stagnation_window`
  /// improved the residual by at least `stagnation_rtol` (relative).
  /// 0 (default) disables the guard — iteration counts are bit-identical
  /// to the pre-resilience stack unless a guard actually fires.
  int stagnation_window = 0;
  double stagnation_rtol = 1e-3;

  // --- solver-specific knobs (read only by the named solver) -------------
  int gmres_restart = 50;          ///< restart length ("gmres")
  int chebyshev_degree = 2;        ///< polynomial degree per iteration ("chebyshev")
  double chebyshev_eig_ratio = 20.0;  ///< λmax/λmin of the damped interval ("chebyshev")

  /// The in-loop detector configured from the resilience knobs above.
  [[nodiscard]] resilience::IterGuard::Config guard_config() const {
    return resilience::IterGuard::Config{timeout_ms, divergence_factor, stagnation_window,
                                         stagnation_rtol};
  }
};

/// One fallback-chain attempt's outcome (recorded by `SolveHandle`; the
/// registry names here are short enough for SSO, so recording stays
/// allocation-free on warm solves).
struct AttemptInfo {
  std::string solver;
  std::string prec;
  resilience::SolveStatus status = resilience::SolveStatus::MaxIterations;
  int iterations = 0;
  double relative_residual = 0.0;
  double seconds = 0.0;
  resilience::FailureInfo failure;
};

/// Shared solver outcome.
struct IterResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;  ///< compatibility view: status == Converged
  /// Taxonomy classification of the (final) attempt. Defaults to
  /// MaxIterations at loop entry; every early exit overwrites it.
  resilience::SolveStatus status = resilience::SolveStatus::MaxIterations;
  /// Located diagnostic, meaningful when `is_failure(status)`.
  resilience::FailureInfo failure;
  std::vector<double> history;  ///< per-iteration ||r||/||b|| iff track_history
  /// Per-attempt record of the fallback chain, oldest first. Owned by
  /// `SolveHandle` (solvers never touch it); exactly one entry for a
  /// chain-less solve through a handle, empty for the free-function shims.
  std::vector<AttemptInfo> attempts;
};

/// Outcome of one batched multi-RHS solve: one `IterResult` per column, so
/// a diverging or poisoned right-hand side carries its own taxonomy status
/// without touching its batchmates. Storage is grow-only (capacities kept
/// across batches) so warm batched solves stay allocation-free.
struct BatchResult {
  int k = 0;                        ///< live column count of the last batch
  std::vector<IterResult> results;  ///< first `k` entries are live
  /// Per-column input-isolation flags (size `k`), set by the caller before
  /// the solver runs: an excluded column's result is already final (e.g.
  /// NonFiniteInput) and solvers must leave its lanes untouched.
  std::vector<char> excluded;

  /// Full per-batch reset: sizes to `k_count`, clears every exclusion.
  void reset(int k_count);
  /// Size without clearing exclusions (used by solver cores, which must
  /// honor flags the caller set between reset() and the solve).
  void ensure(int k_count);
  [[nodiscard]] int converged_count() const;
  [[nodiscard]] bool all_converged() const;
};

}  // namespace parmis::solver
