#pragma once
/// \file options.hpp
/// \brief Shared configuration and outcome types for the iterative solver
/// stack (CG, GMRES, Chebyshev; see interface.hpp for the registry).
///
/// `IterOptions`/`IterResult` historically lived in cg.hpp, which forced
/// gmres.hpp to include the CG header just for the option struct. They are
/// hoisted here so every outer solver shares one header and the per-solver
/// headers depend only on what they use.

#include <optional>
#include <vector>

#include "common/config.hpp"
#include "parallel/context.hpp"

namespace parmis::solver {

/// Shared Krylov/relaxation-solver configuration.
struct IterOptions {
  int max_iterations = 1000;
  double tolerance = 1e-8;     ///< on ||r|| / ||b||
  bool track_history = false;  ///< record the residual per iteration

  /// Execution context for the solve. Unset (the default) inherits the
  /// ambient configuration — a `SolveHandle`'s own context, or for the free
  /// functions the process-global `par::Execution` state — which is the
  /// exact pre-Context behavior. Set it to pin the solve to a specific
  /// backend/thread count/schedule regardless of the caller's environment.
  std::optional<Context> ctx;

  // --- solver-specific knobs (read only by the named solver) -------------
  int gmres_restart = 50;          ///< restart length ("gmres")
  int chebyshev_degree = 2;        ///< polynomial degree per iteration ("chebyshev")
  double chebyshev_eig_ratio = 20.0;  ///< λmax/λmin of the damped interval ("chebyshev")
};

/// Shared solver outcome.
struct IterResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  std::vector<double> history;  ///< per-iteration ||r||/||b|| iff track_history
};

}  // namespace parmis::solver
