#include "serve/replay.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <thread>

#include "check/digest.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"

namespace parmis::serve {

std::vector<ServeRequest> make_requests(std::size_t n, std::uint64_t seed0,
                                        std::uint64_t epoch0, std::size_t customize_at) {
  std::vector<ServeRequest> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].id = i;
    reqs[i].rhs_seed = seed0 + i;
    reqs[i].epoch = epoch0;
    if (customize_at > 0 && customize_at < n && i >= customize_at) {
      reqs[i].epoch = epoch0 + 1;
    }
  }
  return reqs;
}

ReplayResult replay(Service& service, std::span<const ServeRequest> requests,
                    const ReplayOptions& opts) {
  const std::size_t n = requests.size();
  ReplayResult out;
  out.outcomes.resize(n);
  int threads = opts.threads < 1 ? 1 : opts.threads;
  if (n > 0 && static_cast<std::size_t>(threads) > n) threads = static_cast<int>(n);
  const bool swap = opts.customize_at > 0 && opts.customize_at < n;

  std::atomic<std::size_t> next{0};
  // One slot per worker plus one for the customizer; rethrown after join.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads) + 1);

  // One-shot trigger: the worker that *dispatches* request customize_at-1
  // fires it, so the swap overlaps that request's in-flight solve.
  std::promise<void> trigger;
  std::shared_future<void> triggered = trigger.get_future().share();
  std::atomic<bool> fired{false};
  std::atomic<bool> trigger_cancelled{false};
  auto fire = [&] {
    if (!fired.exchange(true)) trigger.set_value();
  };

  obs::Timer wall;
  std::thread customizer;
  if (swap) {
    customizer = std::thread([&] {
      triggered.wait();
      if (trigger_cancelled.load(std::memory_order_acquire)) return;
      try {
        std::shared_ptr<const ServingState> base = service.current();
        std::vector<scalar_t> scaled(base->a->values);
        for (scalar_t& v : scaled) v *= opts.value_scale;
        (void)service.customize(scaled);
      } catch (...) {
        errors.back() = std::current_exception();
        // The failure is surfaced after join; meanwhile requests pinned
        // to the never-published epoch must not block forever.
        (void)service.republish();
      }
    });
  }

  auto worker = [&](std::size_t wid) {
    try {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        if (swap && i + 1 == opts.customize_at) fire();
        out.outcomes[i] = service.solve(requests[i]);
      }
    } catch (...) {
      errors[wid] = std::current_exception();
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, static_cast<std::size_t>(t));
    }
    for (std::thread& t : pool) t.join();
  }
  if (swap) {
    // Workers are joined, so `fired` is stable: false only when every
    // worker died before dispatching request customize_at-1 — cancel the
    // customizer instead of leaving it waiting forever.
    if (!fired.load(std::memory_order_acquire)) {
      trigger_cancelled.store(true, std::memory_order_release);
      fire();
    }
    customizer.join();
  }
  const double wall_seconds = wall.seconds();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  ReplayStats& st = out.stats;
  st.threads = threads;
  st.requests = n;
  st.wall_seconds = wall_seconds;
  st.final_epoch = service.epoch();
  std::vector<double> lat(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const RequestOutcome& o = out.outcomes[i];
    lat[i] = o.seconds;
    sum += o.seconds;
    if (o.converged) ++st.converged;
    st.combined_digest =
        check::digest_combine(st.combined_digest, static_cast<std::uint64_t>(o.status));
    st.combined_digest = check::digest_combine(st.combined_digest, o.solution_digest);
  }
  std::sort(lat.begin(), lat.end());
  st.p50_ms = obs::percentile(lat, 0.5) * 1e3;
  st.p99_ms = obs::percentile(lat, 0.99) * 1e3;
  st.mean_ms = n > 0 ? sum / static_cast<double>(n) * 1e3 : 0.0;
  st.solves_per_sec = wall_seconds > 0.0 ? static_cast<double>(n) / wall_seconds : 0.0;
  return out;
}

}  // namespace parmis::serve
