#include "serve/replay.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "check/digest.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"
#include "serve/pipeline.hpp"

namespace parmis::serve {

std::vector<ServeRequest> make_requests(std::size_t n, std::uint64_t seed0,
                                        std::uint64_t epoch0, std::size_t customize_at) {
  std::vector<ServeRequest> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].id = i;
    reqs[i].rhs_seed = seed0 + i;
    reqs[i].epoch = epoch0;
    if (customize_at > 0 && customize_at < n && i >= customize_at) {
      reqs[i].epoch = epoch0 + 1;
    }
  }
  return reqs;
}

ReplayResult replay(Service& service, std::span<const ServeRequest> requests,
                    const ReplayOptions& opts) {
  const std::size_t n = requests.size();
  ReplayResult out;
  out.outcomes.resize(n);
  int threads = opts.threads < 1 ? 1 : opts.threads;
  if (n > 0 && static_cast<std::size_t>(threads) > n) threads = static_cast<int>(n);
  const bool swap = opts.customize_at > 0 && opts.customize_at < n;

  std::atomic<std::size_t> next{0};
  // One slot per worker plus one for the customizer; rethrown after join.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads) + 1);

  // One-shot trigger: the worker that *dispatches* request customize_at-1
  // fires it, so the swap overlaps that request's in-flight solve.
  std::promise<void> trigger;
  std::shared_future<void> triggered = trigger.get_future().share();
  std::atomic<bool> fired{false};
  std::atomic<bool> trigger_cancelled{false};
  auto fire = [&] {
    if (!fired.exchange(true)) trigger.set_value();
  };

  const std::size_t step = opts.batch > 1 ? static_cast<std::size_t>(opts.batch) : 1;

  obs::Timer wall;
  // Batched replays route the swap through the async pipeline: submit()
  // returns before the Galerkin replay runs, so the rebuild overlaps the
  // waves still draining the old epoch (the pipeline republishes on
  // failure; its errors are collected after drain).
  std::optional<CustomizePipeline> pipeline;
  if (swap && step > 1) pipeline.emplace(service);
  std::thread customizer;
  if (swap) {
    customizer = std::thread([&] {
      triggered.wait();
      if (trigger_cancelled.load(std::memory_order_acquire)) return;
      try {
        std::shared_ptr<const ServingState> base = service.current();
        std::vector<scalar_t> scaled(base->a->values);
        for (scalar_t& v : scaled) v *= opts.value_scale;
        if (pipeline) {
          (void)pipeline->submit(scaled);
        } else {
          (void)service.customize(scaled);
        }
      } catch (...) {
        errors.back() = std::current_exception();
        // The failure is surfaced after join; meanwhile requests pinned
        // to the never-published epoch must not block forever.
        (void)service.republish();
      }
    });
  }

  auto worker = [&](std::size_t wid) {
    try {
      for (;;) {
        const std::size_t i = next.fetch_add(step, std::memory_order_relaxed);
        if (i >= n) break;
        const std::size_t end = std::min(n, i + step);
        // Fire once the wave holding request customize_at-1 is dispatched
        // (single mode: i + 1 == customize_at, the historical trigger).
        if (swap && i < opts.customize_at && opts.customize_at <= end) fire();
        if (step == 1) {
          out.outcomes[i] = service.solve(requests[i]);
        } else {
          std::vector<RequestOutcome> outs =
              service.solve_batch(requests.subspan(i, end - i), opts.batch);
          for (std::size_t j = 0; j < outs.size(); ++j) {
            out.outcomes[i + j] = std::move(outs[j]);
          }
        }
      }
    } catch (...) {
      errors[wid] = std::current_exception();
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, static_cast<std::size_t>(t));
    }
    for (std::thread& t : pool) t.join();
  }
  if (swap) {
    // Workers are joined, so `fired` is stable: false only when every
    // worker died before dispatching request customize_at-1 — cancel the
    // customizer instead of leaving it waiting forever.
    if (!fired.load(std::memory_order_acquire)) {
      trigger_cancelled.store(true, std::memory_order_release);
      fire();
    }
    customizer.join();
  }
  if (pipeline) {
    pipeline->drain();
    for (const CustomizePipeline::Failure& f : pipeline->failures()) {
      errors.back() = std::make_exception_ptr(std::runtime_error(
          "async customize for epoch " + std::to_string(f.epoch) + " failed: " + f.what));
    }
    pipeline.reset();
  }
  const double wall_seconds = wall.seconds();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  ReplayStats& st = out.stats;
  st.threads = threads;
  st.requests = n;
  st.wall_seconds = wall_seconds;
  st.final_epoch = service.epoch();
  std::vector<double> lat(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const RequestOutcome& o = out.outcomes[i];
    lat[i] = o.seconds;
    sum += o.seconds;
    if (o.converged) ++st.converged;
    st.combined_digest =
        check::digest_combine(st.combined_digest, static_cast<std::uint64_t>(o.status));
    st.combined_digest = check::digest_combine(st.combined_digest, o.solution_digest);
  }
  std::sort(lat.begin(), lat.end());
  st.p50_ms = obs::percentile(lat, 0.5) * 1e3;
  st.p99_ms = obs::percentile(lat, 0.99) * 1e3;
  st.mean_ms = n > 0 ? sum / static_cast<double>(n) * 1e3 : 0.0;
  st.solves_per_sec = wall_seconds > 0.0 ? static_cast<double>(n) / wall_seconds : 0.0;
  return out;
}

}  // namespace parmis::serve
