#include "serve/pool.hpp"

#include <atomic>
#include <utility>

#include "obs/trace.hpp"
#include "solver/amg.hpp"

namespace parmis::serve {

std::unique_ptr<solver::Preconditioner> PrecCache::take(const PrecKey& key) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].key == key) {
      std::unique_ptr<solver::Preconditioner> out = std::move(slots_[i].prec);
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      return out;
    }
  }
  return nullptr;
}

void PrecCache::put(const PrecKey& key, std::unique_ptr<solver::Preconditioner> p) {
  if (!p || capacity_ == 0) return;
  // Replace an existing slot for the same key (shouldn't happen under the
  // take/put discipline, but harmless), else append or evict the LRU.
  for (Slot& s : slots_) {
    if (s.key == key) {
      s.prec = std::move(p);
      s.last_used = ++clock_;
      return;
    }
  }
  if (slots_.size() >= capacity_) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
    }
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(victim));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  Slot s;
  s.key = key;
  s.prec = std::move(p);
  s.last_used = ++clock_;
  slots_.push_back(std::move(s));
}

HandlePool::Entry::Entry(const Config& cfg)
    : handle(cfg.solver, cfg.prec, cfg.ctx), cache(cfg.cache_capacity) {
  handle.prec_options() = cfg.prec_options;
  if (!cfg.fallback.empty()) handle.set_fallback(cfg.fallback);
}

HandlePool::HandlePool(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.size == 0) cfg_.size = 1;
  entries_.reserve(cfg_.size);
  free_.reserve(cfg_.size);
  for (std::size_t i = 0; i < cfg_.size; ++i) {
    entries_.push_back(std::make_unique<Entry>(cfg_));
    free_.push_back(entries_.back().get());
  }
}

HandlePool::Lease HandlePool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !free_.empty(); });
  Entry* e = free_.back();
  free_.pop_back();
  ++acquires_;
  return Lease(this, e);
}

void HandlePool::release_entry(Entry* e) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(e);
  }
  cv_.notify_one();
}

void HandlePool::Lease::release() {
  if (pool_ && entry_) pool_->release_entry(entry_);
  pool_ = nullptr;
  entry_ = nullptr;
}

void HandlePool::ensure(Entry& entry, const PrecKey& key, const graph::CrsMatrix& a,
                        const std::vector<multilevel::OperatorLevel>* levels) {
  if (cfg_.prec == "none") return;  // nothing to cache for the identity
  if (entry.has_current && entry.current == key) {
    // The handle's own per-matrix cache does the rest: same key → same
    // matrix address → warm, no rebuild.
    entry.warm_hits.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Park the displaced setup before installing the new one.
  if (entry.has_current) {
    entry.cache.put(entry.current, entry.handle.release_preconditioner());
    entry.has_current = false;
  }
  if (std::unique_ptr<solver::Preconditioner> parked = entry.cache.take(key)) {
    entry.handle.adopt_preconditioner(std::move(parked), a);
    entry.cache_hits.fetch_add(1, std::memory_order_relaxed);
  } else if (cfg_.prec == "amg" && levels && !levels->empty()) {
    // Snapshot economy: a published level stack turns a cache miss into a
    // copy of arrays instead of aggregation + triple products.
    PARMIS_SPAN("serve.adopt_levels");
    solver::AmgOptions amg_opts = cfg_.prec_options.amg;
    if (!amg_opts.ctx) amg_opts.ctx = cfg_.ctx;
    auto h = std::make_unique<solver::AmgHierarchy>(
        solver::AmgHierarchy::adopt(*levels, amg_opts));
    entry.handle.adopt_preconditioner(std::move(h), a);
    entry.level_adoptions.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Full registry build on the next solve()/setup(); count it here so
    // the telemetry distinguishes builds from adoptions.
    entry.handle.invalidate();
    entry.handle.setup(a);
    entry.prec_builds.fetch_add(1, std::memory_order_relaxed);
  }
  entry.current = key;
  entry.has_current = true;
}

PoolStats HandlePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats s;
  s.acquires = acquires_;
  for (const std::unique_ptr<Entry>& e : entries_) {
    s.warm_hits += e->warm_hits.load(std::memory_order_relaxed);
    s.cache_hits += e->cache_hits.load(std::memory_order_relaxed);
    s.level_adoptions += e->level_adoptions.load(std::memory_order_relaxed);
    s.prec_builds += e->prec_builds.load(std::memory_order_relaxed);
    s.evictions += e->cache.evictions();
  }
  return s;
}

}  // namespace parmis::serve
