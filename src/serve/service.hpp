#pragma once
/// \file service.hpp
/// \brief `serve::Service` — the atomic-swap serving runtime: a published,
/// epoch-versioned `ServingState` (matrix + optional hierarchy level
/// stack) answered by a `HandlePool`, with an osrm-style "customize" path
/// that refreshes matrix values on the fixed topology and publishes the
/// new state while in-flight solves finish on the old one.
///
/// Publication model: each published state is an immutable
/// `shared_ptr<const ServingState>` with a monotonically increasing epoch.
/// `customize(values)` replays the Galerkin hierarchy value-only
/// (`Builder::rebuild_galerkin`, the zero-allocation warm path) on the
/// service's private master handle, then swaps the new state in under a
/// tiny critical section — a pointer swap, nothing more. Requests pin an
/// epoch: an in-flight solve keeps its state alive through the
/// shared_ptr regardless of how many customizes land meanwhile, and a
/// request pinned to a future epoch blocks until that epoch is published.
/// Pinning is what makes a threaded replay bit-identical to a serial one
/// *including across a live swap*: which worker serves a request never
/// affects which operator it sees.
///
/// Determinism: a request's result is a function of (pinned state values,
/// rhs seed, solver configuration) only — all deterministic — so solution
/// digests are bit-identical across worker counts, acquisition order, and
/// customize timing.

#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <span>
#include <string>
#include <vector>

#include "graph/crs.hpp"
#include "multilevel/builder.hpp"
#include "multilevel/hierarchy.hpp"
#include "serve/pool.hpp"
#include "serve/snapshot.hpp"
#include "solver/options.hpp"

namespace parmis::serve {

/// One immutable published state. Solves in flight hold the shared_ptr;
/// the arrays never mutate after publication.
struct ServingState {
  std::uint64_t epoch = 0;
  std::shared_ptr<const graph::CrsMatrix> a;
  /// Published hierarchy level stack (null when the service has none);
  /// what `HandlePool::ensure` adopts AMG setups from.
  std::shared_ptr<const std::vector<multilevel::OperatorLevel>> levels;
  std::uint64_t values_digest = 0;  ///< check::digest of a->values
};

/// One request: solve `A x = b(seed)` from x0 = 0 against the operator
/// published at `epoch`.
struct ServeRequest {
  std::uint64_t id = 0;
  std::uint64_t rhs_seed = 1;  ///< b = solver::random_vector(n, rhs_seed)
  std::uint64_t epoch = 0;     ///< pinned publication epoch
};

/// Everything the driver reports per request (`parmis_serve --json`).
struct RequestOutcome {
  std::uint64_t id = 0;
  std::uint64_t epoch = 0;
  resilience::SolveStatus status = resilience::SolveStatus::Converged;
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;
  double seconds = 0.0;  ///< request latency (epoch wait + lease + solve)
  std::uint64_t solution_digest = 0;
  /// AMG coarse-solve variant of the serving preconditioner ("lu",
  /// "lu-perturbed", "smoother"); "" when the stack is not AMG.
  const char* bottom_solve = "";
  /// Per-attempt resilience telemetry (copy of `IterResult::attempts`);
  /// filled when `Options::record_attempts`.
  std::vector<solver::AttemptInfo> attempts;
};

class Service {
 public:
  struct Options {
    HandlePool::Config pool;
    solver::IterOptions iter;
    /// Copy per-attempt telemetry into every RequestOutcome (telemetry
    /// allocation outside the handle's zero-allocation solve).
    bool record_attempts = true;
    /// Published states kept reachable for epoch-pinned requests; older
    /// epochs expire (a pinned request for an expired epoch throws).
    std::size_t max_history = 8;
  };

  /// Serve `a`. When `levels` is non-empty it becomes the published
  /// hierarchy (AMG setups adopt it instead of rebuilding); `workspace`
  /// (size `levels.size() - 1`) additionally enables the warm
  /// `customize()` replay — without it a customize on an AMG service
  /// throws rather than serving a stale hierarchy.
  Service(Options opts, graph::CrsMatrix a,
          std::vector<multilevel::OperatorLevel> levels = {},
          std::vector<multilevel::SetupWorkspace::GalerkinLevel> workspace = {});

  /// Serve a snapshot: materializes matrix `matrix_name` and, when
  /// present, hierarchy `hierarchy_name` (with its rebuild workspace).
  [[nodiscard]] static Service from_snapshot(Options opts, const SnapshotView& snap,
                                             const std::string& matrix_name = "a",
                                             const std::string& hierarchy_name = "hierarchy");

  /// The newest published state (never blocks).
  [[nodiscard]] std::shared_ptr<const ServingState> current() const;
  /// The state published at `epoch`: returns immediately when already
  /// published, blocks until a customize publishes it otherwise. Throws
  /// std::out_of_range when the epoch has expired from history.
  [[nodiscard]] std::shared_ptr<const ServingState> state(std::uint64_t epoch) const;
  [[nodiscard]] std::uint64_t epoch() const { return current()->epoch; }

  /// The customize path: new values on the fixed topology. Replays the
  /// hierarchy value-only on the master handle (zero allocations inside
  /// the multilevel handle), then publishes the new state — in-flight
  /// solves finish on their pinned epoch. Returns the new epoch. Throws
  /// std::invalid_argument when `values` does not match the topology,
  /// std::logic_error when the service holds a solve-only hierarchy (no
  /// rebuild workspace). Serialized internally; callers may race.
  std::uint64_t customize(std::span<const scalar_t> values);

  /// Publish the current state again under the next epoch — no value
  /// change, no rebuild, just an epoch bump (the arrays are shared with
  /// the previous state). The recovery primitive for drivers whose
  /// customize failed after consumers were already pinned to the next
  /// epoch: those consumers proceed against the unchanged operator
  /// instead of blocking forever. Returns the new epoch.
  std::uint64_t republish();

  /// Serve one request: waits for the pinned epoch, leases a pool entry,
  /// warms it for the state (LRU / level adoption / build), generates
  /// b from the seed into entry-owned storage, solves from x0 = 0, and
  /// digests the solution. When `x_out` is non-empty (size n) the solution
  /// is copied into it.
  RequestOutcome solve(const ServeRequest& req, std::span<scalar_t> x_out = {});

  /// Serve a run of requests in batched waves: consecutive requests pinned
  /// to the same epoch are grouped into multi-RHS waves of at most `max_k`
  /// columns, each wave solved in one `SolveHandle::solve_batch` call on a
  /// single leased entry (one preconditioner warm-up and K fused traversals
  /// instead of K separate solves). Outcomes are returned in request order,
  /// and every outcome — status, iterations, solution digest — is
  /// bit-identical to `solve` on the same request: the rhs is generated
  /// from the same seed, the pinned epoch selects the same operator, and
  /// the batched cores are per-column bit-identical. An epoch boundary in
  /// the run closes the current wave (a wave never mixes operators), so
  /// batching composes with live customize swaps. `seconds` is the wave
  /// wall clock divided evenly over its columns.
  std::vector<RequestOutcome> solve_batch(std::span<const ServeRequest> reqs, int max_k);

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] HandlePool& pool() { return pool_; }
  [[nodiscard]] const HandlePool& pool() const { return pool_; }
  /// Does the service hold a hierarchy that customize() can warm-replay?
  [[nodiscard]] bool can_rebuild() const;

 private:
  void publish(std::shared_ptr<const ServingState> state);
  /// One same-epoch wave of `solve_batch`, appended to `out`.
  void solve_wave(std::span<const ServeRequest> reqs, std::vector<RequestOutcome>& out);

  Options opts_;
  HandlePool pool_;

  /// Customize machinery: the master hierarchy handle (the one with the
  /// Galerkin rebuild workspace) and its builder. Guarded by
  /// customize_mu_; never touched by solve paths (workers only see
  /// published immutable copies).
  std::mutex customize_mu_;
  multilevel::Builder builder_;
  multilevel::HierarchyHandle master_;
  bool has_hierarchy_ = false;

  mutable std::mutex state_mu_;
  mutable std::condition_variable state_cv_;
  std::vector<std::shared_ptr<const ServingState>> states_;  ///< epoch-ascending
};

}  // namespace parmis::serve
