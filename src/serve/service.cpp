#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "check/digest.hpp"
#include "graph/spgemm.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "solver/amg.hpp"
#include "solver/multivector.hpp"
#include "solver/vector_ops.hpp"

namespace parmis::serve {

namespace {

/// The slice of the AMG configuration the customize replay reads:
/// `rebuild_galerkin` re-runs prolongator smoothing and the triple
/// products value-only into existing structures, so only the damping
/// omega and the execution context matter — stopping rules and the
/// coarsening scheme were baked into the structures at build time.
multilevel::Options rebuild_options(const solver::AmgOptions& amg, const Context& ctx) {
  multilevel::Options mo;
  mo.prolongator_omega = amg.prolongator_omega;
  mo.ctx = amg.ctx ? amg.ctx : std::optional<Context>(ctx);
  return mo;
}

}  // namespace

Service::Service(Options opts, graph::CrsMatrix a,
                 std::vector<multilevel::OperatorLevel> levels,
                 std::vector<multilevel::SetupWorkspace::GalerkinLevel> workspace)
    : opts_(std::move(opts)),
      pool_(opts_.pool),
      builder_(rebuild_options(opts_.pool.prec_options.amg, opts_.pool.ctx)) {
  if (opts_.max_history == 0) opts_.max_history = 1;
  auto state = std::make_shared<ServingState>();
  state->epoch = 0;
  state->values_digest = check::digest(a.values);
  if (!levels.empty()) {
    if (levels[0].a.num_rows != a.num_rows || levels[0].a.num_entries() != a.num_entries()) {
      throw std::invalid_argument(
          "serve::Service: hierarchy finest level does not match the serving matrix");
    }
    multilevel::restore_galerkin(master_, std::move(levels), std::move(workspace),
                                 multilevel::StopReason::CoarseEnough);
    has_hierarchy_ = true;
    state->levels =
        std::make_shared<const std::vector<multilevel::OperatorLevel>>(master_.ops());
  }
  state->a = std::make_shared<const graph::CrsMatrix>(std::move(a));
  states_.push_back(std::move(state));
}

Service Service::from_snapshot(Options opts, const SnapshotView& snap,
                               const std::string& matrix_name,
                               const std::string& hierarchy_name) {
  graph::CrsMatrix a = snap.materialize_matrix(matrix_name);
  std::vector<multilevel::OperatorLevel> levels;
  std::vector<multilevel::SetupWorkspace::GalerkinLevel> workspace;
  if (!hierarchy_name.empty() && snap.contains(hierarchy_name)) {
    multilevel::HierarchyHandle h;
    snap.load_hierarchy(hierarchy_name, h);
    levels = h.ops();
    workspace = multilevel::galerkin_workspace(h);
  }
  return Service(std::move(opts), std::move(a), std::move(levels), std::move(workspace));
}

std::shared_ptr<const ServingState> Service::current() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return states_.back();
}

std::shared_ptr<const ServingState> Service::state(std::uint64_t epoch) const {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait(lock, [&] { return states_.back()->epoch >= epoch; });
  for (const std::shared_ptr<const ServingState>& s : states_) {
    if (s->epoch == epoch) return s;
  }
  throw std::out_of_range("serve: epoch " + std::to_string(epoch) +
                          " expired from the published-state history");
}

bool Service::can_rebuild() const {
  if (!has_hierarchy_) return false;
  const std::size_t nlevels = master_.ops().size();
  return nlevels <= 1 || multilevel::galerkin_workspace(master_).size() + 1 == nlevels;
}

std::uint64_t Service::customize(std::span<const scalar_t> values) {
  std::lock_guard<std::mutex> lock(customize_mu_);
  PARMIS_SPAN("serve.customize");
  std::shared_ptr<const ServingState> base = current();
  const graph::CrsMatrix& old_a = *base->a;
  if (values.size() != old_a.values.size()) {
    throw std::invalid_argument("serve::customize: got " + std::to_string(values.size()) +
                                " values for a matrix with " +
                                std::to_string(old_a.values.size()) + " entries");
  }
  // Structure copy with the refreshed values. The copy is what lets
  // in-flight solves keep reading the old state's arrays untouched.
  graph::CrsMatrix a2;
  a2.num_rows = old_a.num_rows;
  a2.num_cols = old_a.num_cols;
  a2.row_map = old_a.row_map;
  a2.entries = old_a.entries;
  a2.values.assign(values.begin(), values.end());

  auto state = std::make_shared<ServingState>();
  state->epoch = base->epoch + 1;  // customizes serialize on customize_mu_
  state->values_digest = check::digest(a2.values);
  if (has_hierarchy_) {
    // The warm path this subsystem exists for: value-only Galerkin replay,
    // zero heap allocations inside the multilevel handle. Throws
    // logic_error when the hierarchy was restored solve-only. The replay's
    // per-thread SpGEMM accumulator must be sized up front: customize is
    // typically called from a thread that never ran a cold build.
    graph::spgemm_warm_thread(a2.num_cols);
    (void)builder_.rebuild_galerkin(a2, master_);
    state->levels =
        std::make_shared<const std::vector<multilevel::OperatorLevel>>(master_.ops());
  }
  state->a = std::make_shared<const graph::CrsMatrix>(std::move(a2));
  const std::uint64_t epoch = state->epoch;
  publish(std::move(state));
  return epoch;
}

std::uint64_t Service::republish() {
  std::lock_guard<std::mutex> lock(customize_mu_);
  std::shared_ptr<const ServingState> base = current();
  auto state = std::make_shared<ServingState>(*base);
  ++state->epoch;
  const std::uint64_t epoch = state->epoch;
  publish(std::move(state));
  return epoch;
}

void Service::publish(std::shared_ptr<const ServingState> state) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    states_.push_back(std::move(state));
    while (states_.size() > opts_.max_history) {
      states_.erase(states_.begin());
    }
  }
  state_cv_.notify_all();
}

RequestOutcome Service::solve(const ServeRequest& req, std::span<scalar_t> x_out) {
  obs::Timer timer;
  PARMIS_SPAN("serve.request");
  std::shared_ptr<const ServingState> st = state(req.epoch);
  HandlePool::Lease lease = pool_.acquire();
  HandlePool::Entry& e = lease.entry();
  pool_.ensure(e, PrecKey{st->epoch, std::string()}, *st->a,
               st->levels ? st->levels.get() : nullptr);

  const std::size_t n = static_cast<std::size_t>(st->a->num_rows);
  if (e.b.size() != n) {
    e.b.resize(n);
    e.x.resize(n);
  }
  solver::random_fill(e.b, req.rhs_seed);
  solver::fill(e.x, 0.0);
  const solver::IterResult& r = e.handle.solve(*st->a, e.b, e.x, opts_.iter);

  RequestOutcome out;
  out.id = req.id;
  out.epoch = st->epoch;
  out.status = r.status;
  out.converged = r.converged;
  out.iterations = r.iterations;
  out.relative_residual = r.relative_residual;
  out.solution_digest = check::digest(e.x);
  if (const auto* amg = dynamic_cast<const solver::AmgHierarchy*>(e.handle.preconditioner())) {
    out.bottom_solve = amg->bottom_solve();
  }
  if (opts_.record_attempts) out.attempts = r.attempts;
  if (!x_out.empty()) {
    if (x_out.size() != n) {
      throw std::invalid_argument("serve::solve: x_out size does not match the matrix");
    }
    solver::copy(e.x, x_out);
  }
  out.seconds = timer.seconds();
  return out;
}

std::vector<RequestOutcome> Service::solve_batch(std::span<const ServeRequest> reqs,
                                                int max_k) {
  if (max_k < 1) {
    throw std::invalid_argument("serve::solve_batch: max_k must be >= 1");
  }
  std::vector<RequestOutcome> out;
  out.reserve(reqs.size());
  std::size_t i = 0;
  while (i < reqs.size()) {
    // Maximal same-epoch run, capped at the batch width: a wave never
    // mixes operators, so batching is transparent to epoch pinning.
    std::size_t j = i + 1;
    while (j < reqs.size() && j - i < static_cast<std::size_t>(max_k) &&
           reqs[j].epoch == reqs[i].epoch) {
      ++j;
    }
    solve_wave(reqs.subspan(i, j - i), out);
    i = j;
  }
  return out;
}

void Service::solve_wave(std::span<const ServeRequest> reqs,
                         std::vector<RequestOutcome>& out) {
  obs::Timer timer;
  PARMIS_SPAN("serve.batch_wave");
  const int wk = static_cast<int>(reqs.size());
  std::shared_ptr<const ServingState> st = state(reqs[0].epoch);
  HandlePool::Lease lease = pool_.acquire();
  HandlePool::Entry& e = lease.entry();
  pool_.ensure(e, PrecKey{st->epoch, std::string()}, *st->a,
               st->levels ? st->levels.get() : nullptr);

  const ordinal_t n = st->a->num_rows;
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t nk = un * static_cast<std::size_t>(wk);
  if (e.b.size() != un) {
    e.b.resize(un);
    e.x.resize(un);
  }
  if (e.bm.size() < nk) {
    e.bm.resize(nk);
    e.xm.resize(nk);
  }
  std::span<scalar_t> bm(e.bm.data(), nk);
  std::span<scalar_t> xm(e.xm.data(), nk);
  for (int c = 0; c < wk; ++c) {
    // Generate column c's rhs exactly as the single path would (same seed,
    // same generator) and lay it into its lane — the digest-equality
    // contract starts with bit-identical inputs.
    solver::random_fill(e.b, reqs[static_cast<std::size_t>(c)].rhs_seed);
    solver::scatter_column(e.b, n, wk, c, bm);
  }
  solver::fill(xm, 0.0);
  const solver::BatchResult& br = e.handle.solve_batch(*st->a, bm, xm, wk, opts_.iter);
  const double seconds = timer.seconds();

  const char* bottom = "";
  if (const auto* amg = dynamic_cast<const solver::AmgHierarchy*>(e.handle.preconditioner())) {
    bottom = amg->bottom_solve();
  }
  for (int c = 0; c < wk; ++c) {
    const solver::IterResult& r = br.results[static_cast<std::size_t>(c)];
    RequestOutcome& o = out.emplace_back();
    o.id = reqs[static_cast<std::size_t>(c)].id;
    o.epoch = st->epoch;
    o.status = r.status;
    o.converged = r.converged;
    o.iterations = r.iterations;
    o.relative_residual = r.relative_residual;
    solver::gather_column(std::span<const scalar_t>(xm), n, wk, c, e.x);
    o.solution_digest = check::digest(e.x);
    o.bottom_solve = bottom;
    if (opts_.record_attempts) o.attempts = r.attempts;
    o.seconds = seconds / wk;
  }
}

}  // namespace parmis::serve
