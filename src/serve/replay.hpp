#pragma once
/// \file replay.hpp
/// \brief Request replay against a `serve::Service`: N worker threads
/// drain a request list, optionally with one live `customize` swap
/// mid-replay, and the harness aggregates latency percentiles and
/// throughput.
///
/// Epoch pinning is what makes the replay a *determinism instrument* and
/// not just a load generator: with `customize_at = K`, requests 0..K-1
/// are pinned to the epoch current when the replay started and requests
/// K.. to the next one, so the set of (operator, rhs) pairs solved is
/// identical at every thread count — the combined solution digest of a
/// 16-thread replay with a swap landing mid-flight must equal the serial
/// one bit for bit. The customizer fires from its own thread once request
/// K-1 has been *dispatched* (not completed), so at `threads > 1` the
/// swap really does overlap in-flight solves on the old epoch.

#include <cstdint>
#include <span>
#include <vector>

#include "serve/service.hpp"

namespace parmis::serve {

struct ReplayOptions {
  int threads = 1;
  /// When > 0 and < the request count: index of the first request pinned
  /// to the post-customize epoch; a customizer thread scales the current
  /// values by `value_scale` and publishes once request
  /// `customize_at - 1` has been dispatched. 0 (or out of range)
  /// disables the swap.
  std::size_t customize_at = 0;
  double value_scale = 1.25;
  /// Batched-wave width: when > 1, workers claim runs of `batch`
  /// consecutive requests and serve each run through
  /// `Service::solve_batch` (waves close early at epoch boundaries), and
  /// the mid-replay customize is submitted through the async
  /// `CustomizePipeline` so the Galerkin replay overlaps the waves still
  /// draining the old epoch. Outcomes, ordering, and the combined digest
  /// are bit-identical to the unbatched replay. <= 1 keeps the
  /// one-request-per-solve path.
  int batch = 1;
};

/// Replay aggregates (latency sample lives in `ReplayResult::outcomes`).
struct ReplayStats {
  int threads = 1;
  std::size_t requests = 0;
  std::uint64_t converged = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double solves_per_sec = 0.0;
  /// Order-sensitive fold of (status, solution digest) over requests in
  /// request order — one word that must match across thread counts.
  std::uint64_t combined_digest = 0;
  std::uint64_t final_epoch = 0;  ///< service epoch after the replay
};

struct ReplayResult {
  std::vector<RequestOutcome> outcomes;  ///< request order (not completion order)
  ReplayStats stats;
};

/// Deterministic request list: ids 0..n-1, rhs seeds `seed0 + id`, epochs
/// pinned per `ReplayOptions::customize_at` against base epoch `epoch0`.
[[nodiscard]] std::vector<ServeRequest> make_requests(std::size_t n, std::uint64_t seed0,
                                                      std::uint64_t epoch0,
                                                      std::size_t customize_at = 0);

/// Run the replay: workers claim requests by atomic index, each outcome
/// lands at its request's slot. Exceptions on a worker are rethrown on
/// the calling thread after join.
[[nodiscard]] ReplayResult replay(Service& service, std::span<const ServeRequest> requests,
                                  const ReplayOptions& opts = {});

}  // namespace parmis::serve
