#pragma once
/// \file snapshot.hpp
/// \brief Versioned, checksummed binary snapshots of the library's
/// expensive-to-build objects — CRS graphs and matrices, partitions, and
/// built Galerkin hierarchies — laid out for zero-copy `mmap` serving.
///
/// The paper's central economy is setup amortization: MIS-2 coarsening and
/// Galerkin triple products are paid once and reused across many solves.
/// A snapshot extends that economy across *processes*: a build job runs
/// the expensive setup offline and `save_snapshot`s it; any number of
/// serving workers `SnapshotView::open` the file read-only and bind spans
/// directly into the mapping — opening a multi-gigabyte hierarchy costs
/// page-table entries, not copies (the osrm-backend storage/customize
/// split, which the ROADMAP names as the exemplar shape).
///
/// File layout (all integers little-endian, native-width as recorded in
/// the header so a reader on a mismatched platform rejects instead of
/// misreading):
///
///   [Header]                 magic "PMISSNAP", format version, endian tag,
///                            element widths, file size, TOC location+digest
///   [section bytes ...]      each section 64-byte aligned
///   [TOC]                    one fixed-size entry per section:
///                            name, kind, offset, size, FNV-1a digest
///
/// Objects are groups of sections sharing a name prefix: a matrix "a" is
/// `a.meta` + `a.row_map` + `a.entries` + `a.values`; a hierarchy "h" is
/// `h.meta` plus per-level operator/transfer matrices and — when the
/// handle kept one — the Galerkin rebuild workspace, so a *loaded*
/// hierarchy still supports the warm zero-allocation `rebuild_galerkin`
/// customize path.
///
/// Integrity: every section carries an FNV-1a digest (`check::digest`),
/// and the TOC itself is digested in the header. `open()` validates magic,
/// version, endianness, element widths, bounds of every section, and (by
/// default) every digest before returning; any mismatch throws a
/// `SnapshotError` that names the file, the section, and the byte range —
/// a truncated or bit-flipped file is rejected up front, never mapped into
/// a solver.

#include <cstdint>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "graph/crs.hpp"
#include "multilevel/hierarchy.hpp"

namespace parmis::serve {

/// Snapshot format version this build writes and reads.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Rejection diagnostic: which file, which section (empty for file-level
/// problems like a bad magic), and what was wrong. The what() string
/// carries all three, e.g.
///   snapshot 'hier.snap': section 'a.values' digest mismatch
///   (stored 0x1234..., computed 0xabcd...)
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(std::string path, std::string section, const std::string& detail);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& section() const { return section_; }

 private:
  std::string path_;
  std::string section_;
};

/// What a section's bytes are: element type tags, so a reader never
/// reinterprets an array at the wrong width even if names collide.
enum class SectionKind : std::uint32_t {
  Meta = 1,          ///< fixed-size object descriptor struct
  OffsetArray = 2,   ///< offset_t[]
  OrdinalArray = 3,  ///< ordinal_t[]
  ScalarArray = 4,   ///< scalar_t[]
};

/// One TOC entry, exactly as stored on disk.
struct SectionInfo {
  char name[40];          ///< NUL-terminated section name
  std::uint32_t kind;     ///< SectionKind
  std::uint32_t reserved; ///< zero
  std::uint64_t offset;   ///< byte offset from file start (64-aligned)
  std::uint64_t size;     ///< byte length
  std::uint64_t digest;   ///< FNV-1a of the section bytes
};
static_assert(sizeof(SectionInfo) == 72);

/// Streaming snapshot writer: add objects, then `finish()` (or let the
/// destructor). Section names derive from the object name you pass
/// ("a" → "a.meta", "a.row_map", ...); names must be unique per file and
/// the full section name must fit 39 characters.
class SnapshotWriter {
 public:
  /// Opens `path` for writing (truncates). Throws SnapshotError on
  /// failure.
  explicit SnapshotWriter(std::string path);
  ~SnapshotWriter() noexcept;
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void add_graph(const std::string& name, const graph::CrsGraph& g);
  void add_matrix(const std::string& name, const graph::CrsMatrix& a);
  /// `labels[v]` = part of vertex v, `num_parts` parts.
  void add_partition(const std::string& name, std::span<const ordinal_t> labels,
                     ordinal_t num_parts);
  /// A built Galerkin hierarchy: operator levels, transfers, inverted
  /// diagonals, and — when the handle holds one — the per-level rebuild
  /// workspace (`phat`/`ap`/`apc`/`tperm`), so the loaded hierarchy keeps
  /// the warm `rebuild_galerkin` contract. Throws std::invalid_argument if
  /// the handle has no Galerkin levels.
  void add_hierarchy(const std::string& name, const multilevel::HierarchyHandle& h);

  /// Write the TOC + header and close. Throws SnapshotError on I/O
  /// failure. Idempotent.
  void finish();

 private:
  void add_section(const std::string& name, SectionKind kind, const void* data,
                   std::uint64_t size);
  template <typename T>
  void add_array(const std::string& name, SectionKind kind, std::span<const T> v) {
    add_section(name, kind, v.data(), v.size() * sizeof(T));
  }
  void add_matrix_like(const std::string& name, const graph::CrsMatrix& a, bool with_values);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t pos_ = 0;
  std::vector<SectionInfo> toc_;
  bool finished_ = false;
};

/// Convenience: write one matrix (named "a") and optionally one built
/// hierarchy (named "hierarchy") — the shape `parmis_serve build` and the
/// serving runtime agree on.
void save_snapshot(const std::string& path, const graph::CrsMatrix& a,
                   const multilevel::HierarchyHandle* hierarchy = nullptr);

/// Non-owning CRS matrix bound into a read-only mapping: spans point at
/// the file bytes, zero copies. Valid only while the SnapshotView that
/// produced it is alive.
struct MatrixView {
  ordinal_t num_rows{0};
  ordinal_t num_cols{0};
  std::span<const offset_t> row_map;
  std::span<const ordinal_t> entries;
  std::span<const scalar_t> values;  ///< empty for a graph section group

  [[nodiscard]] offset_t num_entries() const {
    return row_map.empty() ? 0 : row_map.back();
  }
  /// One owning copy (for consumers that need `graph::CrsMatrix`).
  [[nodiscard]] graph::CrsMatrix materialize() const;
};

/// Read-only mapped snapshot. `open()` maps the file and validates it;
/// every `bind_*` returns spans into the mapping (zero copies), every
/// `load_*`/`materialize_*` makes one owning copy. Movable, not copyable;
/// unmaps on destruction.
class SnapshotView {
 public:
  SnapshotView() = default;
  ~SnapshotView() noexcept;
  SnapshotView(SnapshotView&& other) noexcept;
  SnapshotView& operator=(SnapshotView&& other) noexcept;
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  /// Map `path` read-only and validate: magic, format version, endianness,
  /// element widths, section bounds/alignment, and (unless `verify` is
  /// false) every section digest plus the TOC digest. Throws SnapshotError
  /// naming file + section + byte range on any rejection — a corrupted or
  /// truncated file never escapes this function.
  [[nodiscard]] static SnapshotView open(const std::string& path, bool verify = true);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t file_size() const { return size_; }
  /// All sections, TOC order.
  [[nodiscard]] const std::vector<SectionInfo>& sections() const { return toc_; }
  /// Does a section group (object) with this name exist?
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Bind a stored graph as a kernel-ready `graph::GraphView` whose
  /// pointers land inside the mapping — MIS-2, coarsening, and
  /// partitioning run directly on the file bytes.
  [[nodiscard]] graph::GraphView bind_graph(const std::string& name) const;
  /// Bind a stored matrix (or graph) zero-copy.
  [[nodiscard]] MatrixView bind_matrix(const std::string& name) const;
  /// Bind stored partition labels; `num_parts` (optional out) receives k.
  [[nodiscard]] std::span<const ordinal_t> bind_partition(const std::string& name,
                                                          ordinal_t* num_parts = nullptr) const;

  /// Owning copy of a stored matrix.
  [[nodiscard]] graph::CrsMatrix materialize_matrix(const std::string& name) const;

  /// Number of operator levels of a stored hierarchy.
  [[nodiscard]] int hierarchy_levels(const std::string& name) const;
  /// Did the stored hierarchy keep its Galerkin rebuild workspace?
  [[nodiscard]] bool hierarchy_has_workspace(const std::string& name) const;
  /// Copy a stored hierarchy into `h` (one materialization — level arrays
  /// are owning) via the multilevel bind hook: afterwards `h.ops()` is the
  /// level stack and, if the snapshot kept the workspace, warm
  /// `rebuild_galerkin` works exactly as on the handle that was saved.
  void load_hierarchy(const std::string& name, multilevel::HierarchyHandle& h) const;
  /// The level stack alone (what the serving runtime publishes).
  [[nodiscard]] std::vector<multilevel::OperatorLevel> load_levels(
      const std::string& name) const;

 private:
  [[nodiscard]] const SectionInfo& find(const std::string& name) const;
  [[nodiscard]] const SectionInfo* find_opt(const std::string& name) const;
  [[nodiscard]] const std::byte* section_data(const SectionInfo& s) const;
  template <typename T>
  [[nodiscard]] std::span<const T> array(const std::string& name, SectionKind kind) const;
  [[nodiscard]] MatrixView bind_matrix_like(const std::string& name, bool expect_values) const;
  void unmap() noexcept;

  std::string path_;
  void* map_ = nullptr;
  std::uint64_t size_ = 0;
  std::vector<SectionInfo> toc_;
};

}  // namespace parmis::serve
