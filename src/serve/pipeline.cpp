#include "serve/pipeline.hpp"

#include <exception>
#include <utility>

#include "serve/service.hpp"

namespace parmis::serve {

CustomizePipeline::CustomizePipeline(Service& service)
    : service_(service), base_epoch_(service.epoch()) {
  worker_ = std::thread([this] { worker_loop(); });
}

CustomizePipeline::~CustomizePipeline() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return completed_ == submitted_; });
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::uint64_t CustomizePipeline::submit(std::span<const scalar_t> values) {
  std::unique_lock<std::mutex> lock(mu_);
  // Depth-1 backpressure: wait for the worker to take the previous buffer.
  cv_.wait(lock, [&] { return !pending_.has_value(); });
  pending_.emplace(values.begin(), values.end());
  ++submitted_;
  const std::uint64_t predicted = base_epoch_ + submitted_;
  cv_.notify_all();
  return predicted;
}

void CustomizePipeline::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return completed_ == submitted_; });
}

std::vector<CustomizePipeline::Failure> CustomizePipeline::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

std::uint64_t CustomizePipeline::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t CustomizePipeline::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void CustomizePipeline::worker_loop() {
  for (;;) {
    std::vector<scalar_t> values;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || pending_.has_value(); });
      if (!pending_.has_value()) return;
      values = std::move(*pending_);
      pending_.reset();
    }
    cv_.notify_all();  // the hand-off buffer is free again
    // Publish exactly one epoch per submission: customize on success,
    // republish on failure — consumers pinned to the predicted epoch must
    // never block forever on a refresh that threw.
    try {
      (void)service_.customize(values);
    } catch (const std::exception& e) {
      const std::uint64_t published = service_.republish();
      std::lock_guard<std::mutex> lock(mu_);
      failures_.push_back(Failure{published, e.what()});
    } catch (...) {
      const std::uint64_t published = service_.republish();
      std::lock_guard<std::mutex> lock(mu_);
      failures_.push_back(Failure{published, "unknown customize failure"});
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
    }
    cv_.notify_all();
  }
}

}  // namespace parmis::serve
