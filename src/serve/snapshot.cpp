#include "serve/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "check/digest.hpp"
#include "resilience/fault.hpp"

namespace parmis::serve {

namespace {

constexpr char kMagic[8] = {'P', 'M', 'I', 'S', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kSectionAlign = 64;

/// On-disk file header (fixed 64 bytes at offset 0).
struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint32_t ordinal_bytes;
  std::uint32_t offset_bytes;
  std::uint32_t scalar_bytes;
  std::uint32_t reserved;
  std::uint64_t file_size;
  std::uint64_t toc_offset;
  std::uint64_t toc_count;
  std::uint64_t toc_digest;
};
static_assert(sizeof(Header) == 64);

/// Fixed-size object descriptors (".meta" sections).
struct MatrixMeta {
  ordinal_t num_rows;
  ordinal_t num_cols;
  std::uint64_t num_entries;
  std::uint32_t has_values;
  std::uint32_t pad;
};
static_assert(sizeof(MatrixMeta) == 24);

struct PartitionMeta {
  ordinal_t num_vertices;
  ordinal_t num_parts;
};

struct HierarchyMeta {
  std::int32_t levels;
  std::uint32_t has_workspace;
  std::uint32_t stop;  ///< multilevel::StopReason
  std::uint32_t pad;
};

struct LevelMeta {
  ordinal_t num_aggregates;
  std::uint32_t pad;
};

std::uint64_t digest_bytes(const void* data, std::uint64_t size) {
  check::Digest d;
  d.update(data, static_cast<std::size_t>(size));
  return d.value();
}

std::string level_prefix(const std::string& name, int level) {
  return name + ".L" + std::to_string(level);
}

}  // namespace

SnapshotError::SnapshotError(std::string path, std::string section, const std::string& detail)
    : std::runtime_error("snapshot '" + path + "'" +
                         (section.empty() ? std::string() : ": section '" + section + "'") +
                         ": " + detail),
      path_(std::move(path)),
      section_(std::move(section)) {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

SnapshotWriter::SnapshotWriter(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (!file_) throw SnapshotError(path_, "", "cannot open for writing");
  // Reserve the header slot; the real header is written by finish() once
  // the TOC location and digest are known.
  const Header zero{};
  if (std::fwrite(&zero, sizeof(Header), 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    throw SnapshotError(path_, "", "write failed (header slot)");
  }
  pos_ = sizeof(Header);
}

SnapshotWriter::~SnapshotWriter() noexcept {
  try {
    finish();
  } catch (...) {
    // Destructor best-effort: a failed finish leaves a file open() rejects
    // (header slot still zeroed — bad magic), never a silently valid one.
    if (file_) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }
}

void SnapshotWriter::add_section(const std::string& name, SectionKind kind, const void* data,
                                 std::uint64_t size) {
  if (finished_ || !file_) throw SnapshotError(path_, name, "writer already finished");
  SectionInfo info{};
  if (name.size() >= sizeof(info.name)) {
    throw SnapshotError(path_, name, "section name too long (max 39 characters)");
  }
  for (const SectionInfo& s : toc_) {
    if (name == s.name) throw SnapshotError(path_, name, "duplicate section name");
  }
  // Pad to the section alignment so mmap'ed spans are element-aligned.
  const std::uint64_t aligned = (pos_ + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
  static constexpr char kZeros[kSectionAlign] = {};
  if (aligned > pos_ &&
      std::fwrite(kZeros, 1, static_cast<std::size_t>(aligned - pos_), file_) !=
          static_cast<std::size_t>(aligned - pos_)) {
    throw SnapshotError(path_, name, "write failed (padding)");
  }
  pos_ = aligned;
  if (size > 0 && std::fwrite(data, 1, static_cast<std::size_t>(size), file_) !=
                      static_cast<std::size_t>(size)) {
    throw SnapshotError(path_, name, "write failed (section bytes)");
  }
  std::memcpy(info.name, name.data(), name.size());
  info.kind = static_cast<std::uint32_t>(kind);
  info.offset = pos_;
  info.size = size;
  info.digest = digest_bytes(data, size);
  toc_.push_back(info);
  pos_ += size;
}

void SnapshotWriter::add_matrix_like(const std::string& name, const graph::CrsMatrix& a,
                                     bool with_values) {
  const MatrixMeta meta{a.num_rows, a.num_cols, static_cast<std::uint64_t>(a.num_entries()),
                        with_values ? 1u : 0u, 0u};
  add_section(name + ".meta", SectionKind::Meta, &meta, sizeof(meta));
  add_array<offset_t>(name + ".row_map", SectionKind::OffsetArray, a.row_map);
  add_array<ordinal_t>(name + ".entries", SectionKind::OrdinalArray, a.entries);
  if (with_values) add_array<scalar_t>(name + ".values", SectionKind::ScalarArray, a.values);
}

void SnapshotWriter::add_matrix(const std::string& name, const graph::CrsMatrix& a) {
  add_matrix_like(name, a, /*with_values=*/true);
}

void SnapshotWriter::add_graph(const std::string& name, const graph::CrsGraph& g) {
  const MatrixMeta meta{g.num_rows, g.num_cols, static_cast<std::uint64_t>(g.num_entries()),
                        0u, 0u};
  add_section(name + ".meta", SectionKind::Meta, &meta, sizeof(meta));
  add_array<offset_t>(name + ".row_map", SectionKind::OffsetArray, g.row_map);
  add_array<ordinal_t>(name + ".entries", SectionKind::OrdinalArray, g.entries);
}

void SnapshotWriter::add_partition(const std::string& name, std::span<const ordinal_t> labels,
                                   ordinal_t num_parts) {
  const PartitionMeta meta{static_cast<ordinal_t>(labels.size()), num_parts};
  add_section(name + ".meta", SectionKind::Meta, &meta, sizeof(meta));
  add_array<ordinal_t>(name + ".labels", SectionKind::OrdinalArray, labels);
}

void SnapshotWriter::add_hierarchy(const std::string& name,
                                   const multilevel::HierarchyHandle& h) {
  const std::vector<multilevel::OperatorLevel>& ops = h.ops();
  if (ops.empty()) {
    throw std::invalid_argument("add_hierarchy: handle has no Galerkin levels");
  }
  const std::vector<multilevel::SetupWorkspace::GalerkinLevel>& gws =
      multilevel::galerkin_workspace(h);
  const bool with_ws = gws.size() + 1 == ops.size();
  const HierarchyMeta meta{static_cast<std::int32_t>(ops.size()), with_ws ? 1u : 0u,
                           static_cast<std::uint32_t>(h.build_stats().stop), 0u};
  add_section(name + ".meta", SectionKind::Meta, &meta, sizeof(meta));
  for (std::size_t l = 0; l < ops.size(); ++l) {
    const std::string p = level_prefix(name, static_cast<int>(l));
    const multilevel::OperatorLevel& lvl = ops[l];
    const LevelMeta lmeta{lvl.num_aggregates, 0u};
    add_section(p + ".meta", SectionKind::Meta, &lmeta, sizeof(lmeta));
    add_matrix_like(p + ".a", lvl.a, /*with_values=*/true);
    add_array<scalar_t>(p + ".inv_diag", SectionKind::ScalarArray, lvl.inv_diag);
    if (l + 1 < ops.size()) {
      add_matrix_like(p + ".p", lvl.p, /*with_values=*/true);
      add_matrix_like(p + ".r", lvl.r, /*with_values=*/true);
      if (with_ws) {
        const multilevel::SetupWorkspace::GalerkinLevel& gl = gws[l];
        add_matrix_like(p + ".phat", gl.phat, /*with_values=*/true);
        add_matrix_like(p + ".ap", gl.ap, /*with_values=*/true);
        add_matrix_like(p + ".apc", gl.apc, /*with_values=*/true);
        add_array<offset_t>(p + ".tperm", SectionKind::OffsetArray, gl.tperm);
      }
    }
  }
}

void SnapshotWriter::finish() {
  if (finished_) return;
  if (!file_) throw SnapshotError(path_, "", "writer has no open file");
  const std::uint64_t toc_offset = pos_;
  const std::uint64_t toc_bytes = toc_.size() * sizeof(SectionInfo);
  if (!toc_.empty() && std::fwrite(toc_.data(), 1, static_cast<std::size_t>(toc_bytes),
                                   file_) != static_cast<std::size_t>(toc_bytes)) {
    throw SnapshotError(path_, "", "write failed (TOC)");
  }
  Header hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.version = kSnapshotVersion;
  hdr.endian = kEndianTag;
  hdr.ordinal_bytes = sizeof(ordinal_t);
  hdr.offset_bytes = sizeof(offset_t);
  hdr.scalar_bytes = sizeof(scalar_t);
  hdr.file_size = toc_offset + toc_bytes;
  hdr.toc_offset = toc_offset;
  hdr.toc_count = toc_.size();
  hdr.toc_digest = digest_bytes(toc_.data(), toc_bytes);
  const bool ok = std::fseek(file_, 0, SEEK_SET) == 0 &&
                  std::fwrite(&hdr, sizeof(Header), 1, file_) == 1 &&
                  std::fflush(file_) == 0;
  const int close_rc = std::fclose(file_);
  file_ = nullptr;
  if (!ok || close_rc != 0) throw SnapshotError(path_, "", "write failed (header)");
  finished_ = true;
}

void save_snapshot(const std::string& path, const graph::CrsMatrix& a,
                   const multilevel::HierarchyHandle* hierarchy) {
  SnapshotWriter w(path);
  w.add_matrix("a", a);
  if (hierarchy) w.add_hierarchy("hierarchy", *hierarchy);
  w.finish();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

graph::CrsMatrix MatrixView::materialize() const {
  graph::CrsMatrix a;
  a.num_rows = num_rows;
  a.num_cols = num_cols;
  a.row_map.assign(row_map.begin(), row_map.end());
  a.entries.assign(entries.begin(), entries.end());
  a.values.assign(values.begin(), values.end());
  return a;
}

SnapshotView::~SnapshotView() noexcept { unmap(); }

SnapshotView::SnapshotView(SnapshotView&& other) noexcept
    : path_(std::move(other.path_)),
      map_(other.map_),
      size_(other.size_),
      toc_(std::move(other.toc_)) {
  other.map_ = nullptr;
  other.size_ = 0;
}

SnapshotView& SnapshotView::operator=(SnapshotView&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    map_ = other.map_;
    size_ = other.size_;
    toc_ = std::move(other.toc_);
    other.map_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void SnapshotView::unmap() noexcept {
  if (map_) {
    ::munmap(map_, static_cast<std::size_t>(size_));
    map_ = nullptr;
    size_ = 0;
  }
}

SnapshotView SnapshotView::open(const std::string& path, bool verify) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw SnapshotError(path, "", "cannot open for reading");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw SnapshotError(path, "", "cannot stat");
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (size < sizeof(Header)) {
    ::close(fd);
    throw SnapshotError(path, "", "truncated: " + std::to_string(size) +
                                      " bytes is smaller than the file header (" +
                                      std::to_string(sizeof(Header)) + ")");
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) throw SnapshotError(path, "", "mmap failed");

  SnapshotView v;
  v.path_ = path;
  v.map_ = map;
  v.size_ = size;
  const auto* base = static_cast<const std::byte*>(map);

  Header hdr{};
  std::memcpy(&hdr, base, sizeof(Header));
  if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError(path, "", "bad magic (not a parmis snapshot)");
  }
  if (hdr.version != kSnapshotVersion) {
    throw SnapshotError(path, "", "format version " + std::to_string(hdr.version) +
                                      " unsupported (this build reads version " +
                                      std::to_string(kSnapshotVersion) + ")");
  }
  if (hdr.endian != kEndianTag) {
    throw SnapshotError(path, "", "endianness mismatch (written on an incompatible platform)");
  }
  if (hdr.ordinal_bytes != sizeof(ordinal_t) || hdr.offset_bytes != sizeof(offset_t) ||
      hdr.scalar_bytes != sizeof(scalar_t)) {
    throw SnapshotError(path, "", "element-width mismatch (written with a different "
                                  "ordinal/offset/scalar configuration)");
  }
  if (hdr.file_size != size) {
    throw SnapshotError(path, "", "truncated: header records " +
                                      std::to_string(hdr.file_size) + " bytes, file has " +
                                      std::to_string(size));
  }
  const std::uint64_t toc_bytes = hdr.toc_count * sizeof(SectionInfo);
  if (hdr.toc_offset > size || toc_bytes > size - hdr.toc_offset) {
    throw SnapshotError(path, "", "TOC [offset " + std::to_string(hdr.toc_offset) + ", " +
                                      std::to_string(hdr.toc_count) +
                                      " entries] exceeds file size " + std::to_string(size));
  }
  if (verify && digest_bytes(base + hdr.toc_offset, toc_bytes) != hdr.toc_digest) {
    throw SnapshotError(path, "", "TOC digest mismatch (corrupted table of contents)");
  }
  v.toc_.resize(hdr.toc_count);
  if (toc_bytes > 0) {
    std::memcpy(v.toc_.data(), base + hdr.toc_offset, static_cast<std::size_t>(toc_bytes));
  }
  for (const SectionInfo& s : v.toc_) {
    if (s.name[sizeof(s.name) - 1] != '\0') {
      throw SnapshotError(path, "", "unterminated section name in TOC");
    }
    if (s.offset % alignof(std::max_align_t) != 0 || s.offset > size ||
        s.size > size - s.offset) {
      throw SnapshotError(path, s.name,
                          "truncated: section [offset " + std::to_string(s.offset) +
                              ", size " + std::to_string(s.size) + "] exceeds file size " +
                              std::to_string(size));
    }
    if (verify) {
      std::uint64_t got = digest_bytes(base + s.offset, s.size);
      // Injected corruption (check builds): exercises the rejection path
      // the CI serve job and the fault sweep assert on.
      if (PARMIS_FAULT_POINT("serve.snapshot.corrupt")) got ^= 1;
      if (got != s.digest) {
        throw SnapshotError(path, s.name,
                            "digest mismatch (stored " + check::digest_hex(s.digest) +
                                ", computed " + check::digest_hex(got) + ")");
      }
    }
  }
  return v;
}

const SectionInfo* SnapshotView::find_opt(const std::string& name) const {
  for (const SectionInfo& s : toc_) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

const SectionInfo& SnapshotView::find(const std::string& name) const {
  const SectionInfo* s = find_opt(name);
  if (!s) throw SnapshotError(path_, name, "no such section");
  return *s;
}

const std::byte* SnapshotView::section_data(const SectionInfo& s) const {
  return static_cast<const std::byte*>(map_) + s.offset;
}

bool SnapshotView::contains(const std::string& name) const {
  return find_opt(name + ".meta") != nullptr;
}

template <typename T>
std::span<const T> SnapshotView::array(const std::string& name, SectionKind kind) const {
  const SectionInfo& s = find(name);
  if (s.kind != static_cast<std::uint32_t>(kind)) {
    throw SnapshotError(path_, name, "section kind mismatch");
  }
  if (s.size % sizeof(T) != 0) {
    throw SnapshotError(path_, name, "section size is not a multiple of the element size");
  }
  return {reinterpret_cast<const T*>(section_data(s)), s.size / sizeof(T)};
}

namespace {

/// Bounds validation of a bound CRS structure: a snapshot whose arrays
/// pass the digests can still be *internally* inconsistent if the writer
/// was buggy; rejecting here keeps "no UB on load" unconditional.
void check_crs(const std::string& path, const std::string& name, ordinal_t num_rows,
               ordinal_t num_cols, std::span<const offset_t> row_map,
               std::span<const ordinal_t> entries) {
  if (num_rows < 0 || num_cols < 0 ||
      row_map.size() != static_cast<std::size_t>(num_rows) + 1 || row_map.front() != 0 ||
      row_map.back() != static_cast<offset_t>(entries.size())) {
    throw SnapshotError(path, name, "inconsistent CRS shape");
  }
  for (std::size_t i = 0; i + 1 < row_map.size(); ++i) {
    if (row_map[i] > row_map[i + 1]) {
      throw SnapshotError(path, name, "row_map not monotone at row " + std::to_string(i));
    }
  }
  for (const ordinal_t e : entries) {
    if (e < 0 || e >= num_cols) {
      throw SnapshotError(path, name, "column index out of range");
    }
  }
}

}  // namespace

MatrixView SnapshotView::bind_matrix_like(const std::string& name, bool expect_values) const {
  const SectionInfo& ms = find(name + ".meta");
  if (ms.kind != static_cast<std::uint32_t>(SectionKind::Meta) ||
      ms.size != sizeof(MatrixMeta)) {
    throw SnapshotError(path_, name + ".meta", "not a matrix/graph descriptor");
  }
  MatrixMeta meta{};
  std::memcpy(&meta, section_data(ms), sizeof(meta));
  MatrixView m;
  m.num_rows = meta.num_rows;
  m.num_cols = meta.num_cols;
  m.row_map = array<offset_t>(name + ".row_map", SectionKind::OffsetArray);
  m.entries = array<ordinal_t>(name + ".entries", SectionKind::OrdinalArray);
  if (m.entries.size() != meta.num_entries) {
    throw SnapshotError(path_, name + ".entries", "entry count differs from the descriptor");
  }
  check_crs(path_, name, m.num_rows, m.num_cols, m.row_map, m.entries);
  if (meta.has_values != 0) {
    m.values = array<scalar_t>(name + ".values", SectionKind::ScalarArray);
    if (m.values.size() != m.entries.size()) {
      throw SnapshotError(path_, name + ".values", "value count differs from the entry count");
    }
  } else if (expect_values) {
    throw SnapshotError(path_, name, "stored without values (a graph, not a matrix)");
  }
  return m;
}

MatrixView SnapshotView::bind_matrix(const std::string& name) const {
  return bind_matrix_like(name, /*expect_values=*/false);
}

graph::GraphView SnapshotView::bind_graph(const std::string& name) const {
  const MatrixView m = bind_matrix_like(name, /*expect_values=*/false);
  return {m.num_rows, m.num_cols, m.row_map.data(), m.entries.data()};
}

std::span<const ordinal_t> SnapshotView::bind_partition(const std::string& name,
                                                        ordinal_t* num_parts) const {
  const SectionInfo& ms = find(name + ".meta");
  if (ms.kind != static_cast<std::uint32_t>(SectionKind::Meta) ||
      ms.size != sizeof(PartitionMeta)) {
    throw SnapshotError(path_, name + ".meta", "not a partition descriptor");
  }
  PartitionMeta meta{};
  std::memcpy(&meta, section_data(ms), sizeof(meta));
  const std::span<const ordinal_t> labels =
      array<ordinal_t>(name + ".labels", SectionKind::OrdinalArray);
  if (labels.size() != static_cast<std::size_t>(meta.num_vertices)) {
    throw SnapshotError(path_, name + ".labels", "label count differs from the descriptor");
  }
  for (const ordinal_t p : labels) {
    if (p < 0 || p >= meta.num_parts) {
      throw SnapshotError(path_, name + ".labels", "part label out of range");
    }
  }
  if (num_parts) *num_parts = meta.num_parts;
  return labels;
}

graph::CrsMatrix SnapshotView::materialize_matrix(const std::string& name) const {
  return bind_matrix_like(name, /*expect_values=*/true).materialize();
}

namespace {

HierarchyMeta read_hierarchy_meta(const std::string& path, const SectionInfo& ms,
                                  const std::byte* data) {
  if (ms.kind != static_cast<std::uint32_t>(SectionKind::Meta) ||
      ms.size != sizeof(HierarchyMeta)) {
    throw SnapshotError(path, ms.name, "not a hierarchy descriptor");
  }
  HierarchyMeta meta{};
  std::memcpy(&meta, data, sizeof(meta));
  if (meta.levels <= 0) throw SnapshotError(path, ms.name, "hierarchy has no levels");
  if (meta.stop > static_cast<std::uint32_t>(multilevel::StopReason::ComplexityCapped)) {
    throw SnapshotError(path, ms.name, "unknown stop reason");
  }
  return meta;
}

}  // namespace

int SnapshotView::hierarchy_levels(const std::string& name) const {
  const SectionInfo& ms = find(name + ".meta");
  return read_hierarchy_meta(path_, ms, section_data(ms)).levels;
}

bool SnapshotView::hierarchy_has_workspace(const std::string& name) const {
  const SectionInfo& ms = find(name + ".meta");
  return read_hierarchy_meta(path_, ms, section_data(ms)).has_workspace != 0;
}

std::vector<multilevel::OperatorLevel> SnapshotView::load_levels(
    const std::string& name) const {
  const SectionInfo& ms = find(name + ".meta");
  const HierarchyMeta meta = read_hierarchy_meta(path_, ms, section_data(ms));
  std::vector<multilevel::OperatorLevel> ops(static_cast<std::size_t>(meta.levels));
  for (std::int32_t l = 0; l < meta.levels; ++l) {
    const std::string p = level_prefix(name, l);
    multilevel::OperatorLevel& lvl = ops[static_cast<std::size_t>(l)];
    const SectionInfo& ls = find(p + ".meta");
    if (ls.size != sizeof(LevelMeta)) {
      throw SnapshotError(path_, p + ".meta", "not a level descriptor");
    }
    LevelMeta lmeta{};
    std::memcpy(&lmeta, section_data(ls), sizeof(lmeta));
    lvl.num_aggregates = lmeta.num_aggregates;
    lvl.a = bind_matrix_like(p + ".a", /*expect_values=*/true).materialize();
    const std::span<const scalar_t> inv_diag =
        array<scalar_t>(p + ".inv_diag", SectionKind::ScalarArray);
    if (inv_diag.size() != static_cast<std::size_t>(lvl.a.num_rows)) {
      throw SnapshotError(path_, p + ".inv_diag", "length differs from the level row count");
    }
    lvl.inv_diag.assign(inv_diag.begin(), inv_diag.end());
    if (l + 1 < meta.levels) {
      lvl.p = bind_matrix_like(p + ".p", /*expect_values=*/true).materialize();
      lvl.r = bind_matrix_like(p + ".r", /*expect_values=*/true).materialize();
    }
  }
  return ops;
}

void SnapshotView::load_hierarchy(const std::string& name,
                                  multilevel::HierarchyHandle& h) const {
  const SectionInfo& ms = find(name + ".meta");
  const HierarchyMeta meta = read_hierarchy_meta(path_, ms, section_data(ms));
  std::vector<multilevel::OperatorLevel> ops = load_levels(name);
  std::vector<multilevel::SetupWorkspace::GalerkinLevel> gws;
  if (meta.has_workspace != 0) {
    gws.resize(ops.size() - 1);
    for (std::size_t l = 0; l + 1 < ops.size(); ++l) {
      const std::string p = level_prefix(name, static_cast<int>(l));
      multilevel::SetupWorkspace::GalerkinLevel& gl = gws[l];
      gl.phat = bind_matrix_like(p + ".phat", /*expect_values=*/true).materialize();
      gl.ap = bind_matrix_like(p + ".ap", /*expect_values=*/true).materialize();
      gl.apc = bind_matrix_like(p + ".apc", /*expect_values=*/true).materialize();
      const std::span<const offset_t> tperm =
          array<offset_t>(p + ".tperm", SectionKind::OffsetArray);
      if (tperm.size() != static_cast<std::size_t>(ops[l].p.num_entries())) {
        throw SnapshotError(path_, p + ".tperm",
                            "length differs from the prolongator entry count");
      }
      gl.tperm.assign(tperm.begin(), tperm.end());
    }
  }
  const auto stop = static_cast<multilevel::StopReason>(meta.stop);
  multilevel::restore_galerkin(h, std::move(ops), std::move(gws), stop);
}

}  // namespace parmis::serve
