#pragma once
/// \file pool.hpp
/// \brief `serve::HandlePool` — a thread-safe pool of warm `SolveHandle`s
/// plus a per-entry LRU cache of preconditioner setups keyed by matrix
/// identity (the PR 4 follow-up), for multi-tenant serving.
///
/// Design: the pool hands out whole *entries* (handle + caches + request
/// scratch) under an RAII `Lease`; only acquire/release touch the pool
/// mutex, so concurrent solves run with zero shared mutable state — each
/// leased entry is exactly the "one handle per thread" the `SolveHandle`
/// contract requires, and the per-handle zero-allocation warm contract
/// survives concurrency untouched. Because every solve is deterministic
/// given (matrix values, b, x0, configuration), results are bit-identical
/// to a single-threaded run regardless of which entry serves which
/// request.
///
/// Multi-tenant economics: a handle caches one preconditioner setup (for
/// the matrix it last served). Traffic that alternates between tenants —
/// different matrices, or different epochs of the same matrix — would
/// rebuild on every switch. Each entry therefore parks displaced setups
/// in a small LRU keyed by `PrecKey` (epoch + tenant id): switching back
/// re-adopts the parked setup via
/// `SolveHandle::adopt_preconditioner` with zero rebuild cost. AMG setups
/// additionally short-cut *misses*: when the serving state carries a
/// published hierarchy level stack, a miss adopts (copies) the levels via
/// `AmgHierarchy::adopt` instead of re-running aggregation + SpGEMM.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "multilevel/hierarchy.hpp"
#include "parallel/context.hpp"
#include "solver/handle.hpp"

namespace parmis::serve {

/// Identity of one preconditioner setup: which tenant's matrix, at which
/// publication epoch. Two keys compare equal iff the setups are
/// interchangeable (the pool guarantees one matrix per key).
struct PrecKey {
  std::uint64_t epoch = 0;
  std::string tenant;  ///< "" for the single-tenant default

  [[nodiscard]] bool operator==(const PrecKey& o) const {
    return epoch == o.epoch && tenant == o.tenant;
  }
};

/// Per-entry LRU of parked preconditioner setups. Not thread-safe — it is
/// private to one pool entry and the entry is exclusively leased.
class PrecCache {
 public:
  explicit PrecCache(std::size_t capacity) : capacity_(capacity) {}

  /// Remove and return the setup parked under `key` (null on miss).
  [[nodiscard]] std::unique_ptr<solver::Preconditioner> take(const PrecKey& key);

  /// Park a setup under `key`, evicting the least-recently-used entry when
  /// full. Null or zero-capacity is a no-op.
  void put(const PrecKey& key, std::unique_ptr<solver::Preconditioner> p);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    PrecKey key;
    std::unique_ptr<solver::Preconditioner> prec;
    std::uint64_t last_used = 0;
  };
  std::vector<Slot> slots_;
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  /// Atomic only so `HandlePool::stats()` can aggregate while the owning
  /// entry is leased to another thread; all writes are the lease holder's.
  std::atomic<std::uint64_t> evictions_{0};
};

/// Aggregated pool telemetry (summed over entries under the pool mutex).
struct PoolStats {
  std::uint64_t acquires = 0;        ///< leases handed out
  std::uint64_t warm_hits = 0;       ///< ensure(): setup already installed
  std::uint64_t cache_hits = 0;      ///< ensure(): re-adopted from the LRU
  std::uint64_t level_adoptions = 0; ///< ensure(): AMG built by adopting published levels
  std::uint64_t prec_builds = 0;     ///< ensure(): full registry build
  std::uint64_t evictions = 0;       ///< LRU entries displaced
};

class HandlePool {
 public:
  struct Config {
    std::string solver = "cg";
    std::string prec = "none";
    /// Optional fallback-chain spec (`resilience::FallbackPolicy` grammar,
    /// `on:` clauses included) installed on every entry's handle.
    std::string fallback;
    solver::PrecOptions prec_options;
    /// Context each entry's handle runs under. Serial by default: worker
    /// threads are the parallelism axis in a serving pool; nesting an
    /// OpenMP team under every worker oversubscribes. Determinism makes
    /// this a pure performance knob.
    Context ctx = Context::serial();
    std::size_t size = 4;            ///< concurrent leases
    std::size_t cache_capacity = 4;  ///< parked setups per entry
  };

  /// One pool entry: the handle plus everything a request needs, all
  /// exclusively owned by the current lease.
  struct Entry {
    explicit Entry(const Config& cfg);

    solver::SolveHandle handle;
    PrecCache cache;
    PrecKey current;           ///< identity of the setup installed in the handle
    bool has_current = false;
    std::vector<scalar_t> b;   ///< per-request right-hand side (reused, warm)
    std::vector<scalar_t> x;   ///< per-request solution (reused, warm)
    std::vector<scalar_t> bm;  ///< batched-wave rhs multi-vector (reused, warm)
    std::vector<scalar_t> xm;  ///< batched-wave solution multi-vector (reused, warm)
    // Atomic only so `stats()` can aggregate concurrently with a lease;
    // each counter has exactly one writer (the lease holder).
    std::atomic<std::uint64_t> warm_hits{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> level_adoptions{0};
    std::atomic<std::uint64_t> prec_builds{0};
  };

  explicit HandlePool(Config cfg);

  /// RAII lease of one entry: blocks until an entry is free, returns it on
  /// destruction. Movable.
  class Lease {
   public:
    Lease(HandlePool* pool, Entry* entry) : pool_(pool), entry_(entry) {}
    ~Lease() { release(); }
    Lease(Lease&& o) noexcept : pool_(o.pool_), entry_(o.entry_) {
      o.pool_ = nullptr;
      o.entry_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        entry_ = o.entry_;
        o.pool_ = nullptr;
        o.entry_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] Entry& entry() { return *entry_; }
    [[nodiscard]] solver::SolveHandle& handle() { return entry_->handle; }

   private:
    void release();
    HandlePool* pool_;
    Entry* entry_;
  };

  [[nodiscard]] Lease acquire();

  /// Make `entry.handle` warm for matrix `a` under identity `key`:
  ///   1. `key` already installed → no-op (warm hit);
  ///   2. a setup parked under `key` in the entry's LRU → re-adopted, zero
  ///      rebuild (cache hit); the displaced setup is parked in its place;
  ///   3. otherwise built — by `AmgHierarchy::adopt` of `levels` when the
  ///      configuration is "amg" and the caller published a level stack
  ///      (copies arrays, skips aggregation + SpGEMM), else via the
  ///      registry (`make_preconditioner`).
  /// `a` must stay alive (same address) while any setup keyed `key` can be
  /// served — the serving runtime guarantees this by keeping published
  /// states alive as long as their epoch is reachable.
  void ensure(Entry& entry, const PrecKey& key, const graph::CrsMatrix& a,
              const std::vector<multilevel::OperatorLevel>* levels = nullptr);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Aggregated counters. Safe to call while entries are leased (the
  /// per-entry counters are relaxed atomics with one writer each).
  [[nodiscard]] PoolStats stats() const;

 private:
  friend class Lease;
  void release_entry(Entry* e);

  Config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<Entry*> free_;
  std::uint64_t acquires_ = 0;
};

}  // namespace parmis::serve
