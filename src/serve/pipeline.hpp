#pragma once
/// \file pipeline.hpp
/// \brief `serve::CustomizePipeline` — the async customize path: a
/// double-buffered background worker that overlaps the Galerkin value
/// replay of epoch N+1 with batched solves still draining epoch N.
///
/// `Service::customize` is synchronous: the caller blocks for the whole
/// `rebuild_galerkin`. In a serving loop that alternates value refreshes
/// with solve waves, that rebuild time is dead time — the solves it stalls
/// are pinned to the *previous* epoch and do not need the new operator at
/// all. The pipeline moves the rebuild onto one worker thread:
///
///   CustomizePipeline pipe(service);
///   const std::uint64_t next = pipe.submit(values);  // returns immediately
///   ... solve_batch waves pinned to the current epoch overlap the rebuild
///   requests pinned to `next` block inside `Service::state` until the
///   worker publishes it — epoch pinning already serializes exactly right.
///
/// Depth is 1 (double buffering): `submit` while a rebuild is in flight
/// blocks until the worker takes the previous buffer — backpressure, not
/// an unbounded queue, so a fast producer can never outrun the rebuild by
/// more than one epoch. Epoch prediction is exact: each submission bumps
/// the published epoch by exactly one, either through `customize` (success)
/// or through `republish` (failure recovery — consumers already pinned to
/// the predicted epoch proceed against the unchanged operator instead of
/// blocking forever; the error is recorded and readable via `failures()`).
///
/// Determinism: the published state for a given submission is a function of
/// the submitted values only — the worker runs the same `customize` the
/// synchronous path runs — so solves pinned to predicted epochs are
/// bit-identical to a serial submit-then-solve sequence regardless of how
/// the rebuild overlaps the waves.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"

namespace parmis::serve {

class Service;

class CustomizePipeline {
 public:
  /// One failed submission: which predicted epoch it was, and what the
  /// customize threw. The epoch was still published (via `republish`).
  struct Failure {
    std::uint64_t epoch = 0;
    std::string what;
  };

  /// `service` must outlive the pipeline. The worker thread starts
  /// immediately and idles until the first submit.
  explicit CustomizePipeline(Service& service);
  /// Drains pending work, then joins the worker.
  ~CustomizePipeline();

  CustomizePipeline(const CustomizePipeline&) = delete;
  CustomizePipeline& operator=(const CustomizePipeline&) = delete;

  /// Hand a value refresh to the worker and return the epoch it will
  /// publish (current epoch at construction + total submissions). Copies
  /// `values` into the pending buffer; blocks while a previous submission
  /// is still pending (depth-1 backpressure). Thread-safe against the
  /// worker, not against concurrent submitters.
  std::uint64_t submit(std::span<const scalar_t> values);

  /// Block until every submitted refresh has been published.
  void drain();

  /// Submissions whose customize threw (each still published its predicted
  /// epoch via `republish`). Call after `drain()` for a settled view.
  [[nodiscard]] std::vector<Failure> failures() const;

  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t completed() const;

 private:
  void worker_loop();

  Service& service_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Depth-1 hand-off buffer: engaged = a refresh awaiting the worker.
  std::optional<std::vector<scalar_t>> pending_;
  std::uint64_t base_epoch_ = 0;  ///< published epoch when constructed
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<Failure> failures_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace parmis::serve
