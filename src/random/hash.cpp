#include "random/hash.hpp"

// hash.hpp is constexpr-only; this translation unit anchors the module in
// the library target and hosts compile-time self-checks.

namespace parmis::rng {

// xorshift64 must be a bijection fixing only zero; spot-check a couple of
// algebraic identities at compile time.
static_assert(xorshift64(0) == 0);
static_assert(xorshift64(1) != 0);
static_assert(xorshift64(1) != xorshift64(2));
static_assert(xorshift64star(1) != xorshift64star(2));
static_assert(hash_xorshift_star(0, 5) != hash_xorshift_star(1, 5));

}  // namespace parmis::rng
