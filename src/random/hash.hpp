#pragma once
/// \file hash.hpp
/// \brief Deterministic hash functions used as pseudo-random generators.
///
/// Paper §V-A: Algorithm 1 assigns a fresh pseudo-random priority to every
/// undecided vertex each iteration via `h(iter, v) = f(f(iter) XOR f(v))`.
/// Two candidate `f` are evaluated: Marsaglia's 64-bit xorshift and
/// xorshift* (xorshift followed by a multiplicative step). The paper found
/// plain xorshift to be *correlated* between iterations — it usually needs
/// more iterations than even fixed priorities — while xorshift* is well
/// behaved; Table I quantifies this and `bench/table1_priorities`
/// reproduces it.

#include <cstdint>

namespace parmis::rng {

/// Marsaglia 64-bit xorshift (shift triple 13/7/17). Bijective on nonzero
/// inputs; note f(0) == 0.
[[nodiscard]] constexpr std::uint64_t xorshift64(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

/// Marsaglia xorshift* : xorshift (shift triple 12/25/27) followed by a
/// multiplicative (LCG-style) step. The multiplier is the standard
/// xorshift64* constant.
[[nodiscard]] constexpr std::uint64_t xorshift64star(std::uint64_t x) {
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return x * 0x2545F4914F6CDD1DULL;
}

/// SplitMix64 mixer (Steele/Lea/Flood). Used to seed the synthetic graph
/// generators; statistically strong and stateless.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Per-iteration vertex hash with plain xorshift ("Xor Hash" in Table I).
[[nodiscard]] constexpr std::uint64_t hash_xorshift(std::uint64_t iter, std::uint64_t v) {
  return xorshift64(xorshift64(iter) ^ xorshift64(v));
}

/// Per-iteration vertex hash with xorshift* ("Xor* Hash" in Table I); this
/// is the generator used by Algorithm 1 in all experiments.
[[nodiscard]] constexpr std::uint64_t hash_xorshift_star(std::uint64_t iter, std::uint64_t v) {
  return xorshift64star(xorshift64star(iter) ^ xorshift64star(v));
}

/// Counter-based deterministic RNG stream built on SplitMix64. Every draw
/// depends only on (seed, counter), so streams can be replayed and split.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (bound > 0); uses 64-bit multiply-shift.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  std::uint64_t state_;
};

}  // namespace parmis::rng
