#pragma once
/// \file ops.hpp
/// \brief Structural graph operations: transpose, symmetrize, square,
/// induced subgraphs.
///
/// `square()` materializes the distance-≤2 adjacency G² (with implicit self
/// loops, per Lemma IV.1 of the paper) and is used to cross-validate MIS-2
/// against MIS-1 on G² (Lemma IV.2) and to implement the Tuminaro–Tong
/// SpGEMM-based aggregation baseline.

#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::graph {

/// Transposed structure (column graph). Output rows are sorted.
[[nodiscard]] CrsGraph transpose(GraphView g);

/// Union of g and its transpose with self loops removed; output rows sorted.
/// All MIS/coarsening algorithms in this library require a symmetric,
/// loop-free adjacency; call this on arbitrary input first.
[[nodiscard]] CrsGraph symmetrize(GraphView g);

/// True iff the structure equals its transpose (entries only, not values).
[[nodiscard]] bool is_symmetric(GraphView g);

/// True iff any row contains its own index.
[[nodiscard]] bool has_self_loops(GraphView g);

/// Copy of g with diagonal entries removed.
[[nodiscard]] CrsGraph remove_self_loops(GraphView g);

/// Distance-≤2 neighborhood graph: u~v iff a path of length 1 or 2 joins
/// them in g (self loops excluded from the output). Equivalent to the
/// off-diagonal structure of (G + I)² from Lemma IV.1.
[[nodiscard]] CrsGraph square(GraphView g);

/// Result of `induced_subgraph`: the subgraph plus vertex index mappings.
struct InducedSubgraph {
  CrsGraph graph;
  /// original vertex id of each subgraph vertex (size = subgraph vertices)
  std::vector<ordinal_t> to_original;
  /// subgraph id of each original vertex, invalid_ordinal if not included
  std::vector<ordinal_t> to_sub;
};

/// Subgraph induced by the vertices with `include[v] != 0`.
[[nodiscard]] InducedSubgraph induced_subgraph(GraphView g, const std::vector<char>& include);

/// Copy of g with vertices renamed through the bijection `new_id`
/// (old vertex v becomes `new_id[v]`; `new_id.size() == num_rows`).
/// Output rows sorted. Used to study orderings (degree-sorted, BFS, …)
/// whose degree locality stresses the loop schedulers.
[[nodiscard]] CrsGraph relabel(GraphView g, std::span<const ordinal_t> new_id);

}  // namespace parmis::graph
