#include "graph/rgg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"

namespace parmis::graph {

namespace {

/// Uniform [0,1) coordinate for (seed, point, axis): counter-based SplitMix.
double coord(std::uint64_t seed, std::int64_t point, int axis) {
  const std::uint64_t z =
      rng::splitmix64_mix(seed + static_cast<std::uint64_t>(point) * 3u + static_cast<std::uint64_t>(axis));
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// Torus distance along one axis.
inline double torus_delta(double a, double b) {
  double d = std::abs(a - b);
  return d > 0.5 ? 1.0 - d : d;
}

template <int DIM>
CrsGraph build_rgg(ordinal_t n, double target_avg_degree, std::uint64_t seed) {
  assert(n > 0 && target_avg_degree > 0);
  // Expected degree of a torus RGG: n * vol(ball(r)).
  double r;
  if constexpr (DIM == 3) {
    r = std::cbrt(3.0 * target_avg_degree / (4.0 * std::numbers::pi * n));
  } else {
    r = std::sqrt(target_avg_degree / (std::numbers::pi * n));
  }
  assert(r < 0.25 && "graph too dense for the torus construction");

  // Bucket grid with cell width >= r so neighbor search only scans the
  // 3^DIM adjacent cells.
  const ordinal_t cells_per_axis = std::max<ordinal_t>(1, static_cast<ordinal_t>(1.0 / r));
  const double cell_w = 1.0 / cells_per_axis;
  std::int64_t num_cells = 1;
  for (int d = 0; d < DIM; ++d) num_cells *= cells_per_axis;

  std::vector<double> pts(static_cast<std::size_t>(n) * DIM);
  par::parallel_for(static_cast<std::int64_t>(n), [&](std::int64_t i) {
    for (int d = 0; d < DIM; ++d) {
      pts[static_cast<std::size_t>(i) * DIM + static_cast<std::size_t>(d)] = coord(seed, i, d);
    }
  });

  auto cell_of = [&](std::int64_t i) {
    std::int64_t c = 0;
    for (int d = DIM - 1; d >= 0; --d) {
      ordinal_t k = static_cast<ordinal_t>(
          pts[static_cast<std::size_t>(i) * DIM + static_cast<std::size_t>(d)] / cell_w);
      if (k >= cells_per_axis) k = cells_per_axis - 1;
      c = c * cells_per_axis + k;
    }
    return c;
  };

  // Counting-sort points into cells (serial fill keeps within-cell order by
  // point id, which keeps the whole construction deterministic).
  std::vector<offset_t> cell_start(static_cast<std::size_t>(num_cells) + 1, 0);
  std::vector<std::int64_t> point_cell(static_cast<std::size_t>(n));
  par::parallel_for(static_cast<std::int64_t>(n), [&](std::int64_t i) {
    point_cell[static_cast<std::size_t>(i)] = cell_of(i);
  });
  for (ordinal_t i = 0; i < n; ++i) {
    ++cell_start[static_cast<std::size_t>(point_cell[static_cast<std::size_t>(i)]) + 1];
  }
  for (std::int64_t c = 0; c < num_cells; ++c) {
    cell_start[static_cast<std::size_t>(c) + 1] += cell_start[static_cast<std::size_t>(c)];
  }
  std::vector<ordinal_t> cell_points(static_cast<std::size_t>(n));
  {
    std::vector<offset_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (ordinal_t i = 0; i < n; ++i) {
      cell_points[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(point_cell[static_cast<std::size_t>(i)])]++)] = i;
    }
  }

  const double r2 = r * r;
  auto for_each_neighbor = [&](ordinal_t i, auto&& emit) {
    ordinal_t cc[DIM];
    std::int64_t c = point_cell[static_cast<std::size_t>(i)];
    for (int d = 0; d < DIM; ++d) {
      cc[d] = static_cast<ordinal_t>(c % cells_per_axis);
      c /= cells_per_axis;
    }
    // Scan the 3^DIM neighboring cells with torus wrap.
    const int num_nbr_cells = DIM == 3 ? 27 : 9;
    for (int t = 0; t < num_nbr_cells; ++t) {
      std::int64_t cid = 0;
      int tt = t;
      bool skip = false;
      ordinal_t coords[DIM];
      for (int d = 0; d < DIM; ++d) {
        const int off = tt % 3 - 1;
        tt /= 3;
        ordinal_t k = cc[d] + off;
        if (cells_per_axis >= 3) {
          if (k < 0) k += cells_per_axis;
          if (k >= cells_per_axis) k -= cells_per_axis;
        } else {
          // Degenerate tiny grids: all cells already adjacent; only visit
          // off == 0 to avoid duplicates.
          if (off != 0) skip = true;
          k = cc[d];
        }
        coords[d] = k;
      }
      if (skip) continue;
      for (int d = DIM - 1; d >= 0; --d) cid = cid * cells_per_axis + coords[d];
      for (offset_t p = cell_start[static_cast<std::size_t>(cid)];
           p < cell_start[static_cast<std::size_t>(cid) + 1]; ++p) {
        const ordinal_t j = cell_points[static_cast<std::size_t>(p)];
        if (j == i) continue;
        double dist2 = 0;
        for (int d = 0; d < DIM; ++d) {
          const double dd = torus_delta(pts[static_cast<std::size_t>(i) * DIM + static_cast<std::size_t>(d)],
                                        pts[static_cast<std::size_t>(j) * DIM + static_cast<std::size_t>(d)]);
          dist2 += dd * dd;
        }
        if (dist2 < r2) emit(j);
      }
    }
  };

  CrsGraph g;
  g.num_rows = n;
  g.num_cols = n;
  g.row_map.assign(static_cast<std::size_t>(n) + 1, 0);
  par::parallel_for(n, [&](ordinal_t i) {
    offset_t count = 0;
    for_each_neighbor(i, [&](ordinal_t) { ++count; });
    g.row_map[static_cast<std::size_t>(i) + 1] = count;
  });
  for (ordinal_t i = 0; i < n; ++i) {
    g.row_map[static_cast<std::size_t>(i) + 1] += g.row_map[static_cast<std::size_t>(i)];
  }
  g.entries.resize(static_cast<std::size_t>(g.row_map.back()));
  par::parallel_for(n, [&](ordinal_t i) {
    offset_t o = g.row_map[i];
    const offset_t begin = o;
    for_each_neighbor(i, [&](ordinal_t j) { g.entries[static_cast<std::size_t>(o++)] = j; });
    std::sort(g.entries.begin() + static_cast<std::ptrdiff_t>(begin),
              g.entries.begin() + static_cast<std::ptrdiff_t>(o));
  });
  return g;
}

}  // namespace

CrsGraph random_geometric_3d(ordinal_t n, double target_avg_degree, std::uint64_t seed) {
  return build_rgg<3>(n, target_avg_degree, seed);
}

CrsGraph random_geometric_2d(ordinal_t n, double target_avg_degree, std::uint64_t seed) {
  return build_rgg<2>(n, target_avg_degree, seed);
}

}  // namespace parmis::graph
