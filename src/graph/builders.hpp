#pragma once
/// \file builders.hpp
/// \brief Construct CRS graphs/matrices from edge lists and COO triplets.

#include <utility>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::graph {

/// Undirected edge used by `graph_from_edges`.
using Edge = std::pair<ordinal_t, ordinal_t>;

/// COO triplet used by `matrix_from_coo`.
struct Triplet {
  ordinal_t row;
  ordinal_t col;
  scalar_t value;
};

/// Build an adjacency graph on `n` vertices from an undirected edge list.
/// Each `(u, v)` contributes both `u -> v` and `v -> u`. Self loops are
/// dropped, duplicate edges merged, rows sorted. Intended for tests and
/// examples (serial).
[[nodiscard]] CrsGraph graph_from_edges(ordinal_t n, const std::vector<Edge>& edges);

/// Build an adjacency graph from a *directed* arc list (each pair inserted
/// as given). Self loops dropped, duplicates merged, rows sorted.
[[nodiscard]] CrsGraph graph_from_arcs(ordinal_t n, const std::vector<Edge>& arcs);

/// Build a CRS matrix from COO triplets; duplicate (row, col) entries are
/// summed; rows sorted.
[[nodiscard]] CrsMatrix matrix_from_coo(ordinal_t num_rows, ordinal_t num_cols,
                                        const std::vector<Triplet>& triplets);

}  // namespace parmis::graph
