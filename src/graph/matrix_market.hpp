#pragma once
/// \file matrix_market.hpp
/// \brief Matrix Market (.mtx) coordinate-format reader/writer.
///
/// The paper's 15 SuiteSparse inputs ship in this format; the registry uses
/// synthetic surrogates by default (DESIGN.md §4) but real matrices can be
/// loaded with `read_matrix_market` and passed to every algorithm here.

#include <string>

#include "graph/crs.hpp"

namespace parmis::graph {

/// Read a coordinate-format Matrix Market file. Supports real / integer /
/// pattern fields and general / symmetric symmetry (symmetric inputs are
/// expanded to full storage). Pattern entries get value 1.0.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] CrsMatrix read_matrix_market(const std::string& path);

/// Write a CRS matrix as a general real coordinate Matrix Market file.
void write_matrix_market(const std::string& path, const CrsMatrix& m);

}  // namespace parmis::graph
