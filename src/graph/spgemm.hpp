#pragma once
/// \file spgemm.hpp
/// \brief Sparse general matrix-matrix multiply and related matrix algebra.
///
/// SpGEMM backs two parts of the reproduction: the Galerkin triple product
/// R·A·P in the smoothed-aggregation AMG substrate (Table V) and the
/// Tuminaro–Tong "MIS-1 of G²" aggregation baseline from the related work.
/// Rows are computed independently with a per-thread dense accumulator and
/// emitted sorted, so the product is deterministic for any thread count.
///
/// The product is *single-pass*: each row's inner product runs exactly
/// once, into a per-chunk arena, and a scatter pass copies arenas into the
/// final CRS arrays after the row-length scan (no symbolic/numeric
/// re-traversal). Work is split across threads in equal-*flop* chunks
/// under `Schedule::EdgeBalanced` (see `parallel/balanced_for.hpp`), so a
/// hub row of a skewed input no longer serializes a whole thread's sweep.

#include <cstdint>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::graph {

/// C = A * B. Requires a.num_cols == b.num_rows. Output rows sorted.
[[nodiscard]] CrsMatrix spgemm(const CrsMatrix& a, const CrsMatrix& b);

/// Structure-only product: pattern of A * B (no values).
[[nodiscard]] CrsGraph spgemm_symbolic(GraphView a, GraphView b);

/// C = alpha * A + beta * B (same shape; sorted-row merge). Entries whose
/// sum is exactly zero are kept, preserving the structural union.
[[nodiscard]] CrsMatrix matrix_add(scalar_t alpha, const CrsMatrix& a, scalar_t beta,
                                   const CrsMatrix& b);

/// Transpose with values (used for R = Pᵀ in AMG). Output rows sorted.
[[nodiscard]] CrsMatrix transpose_matrix(const CrsMatrix& a);

/// Diagonal of a square matrix; zero where a row has no diagonal entry.
[[nodiscard]] std::vector<scalar_t> extract_diagonal(const CrsMatrix& a);

/// Instrumentation: number of row inner-products computed by `spgemm` /
/// `spgemm_symbolic` since the last reset (process-wide, relaxed atomic).
/// A single-pass product traverses each output row exactly once, so after
/// one `spgemm(a, b)` the counter advances by exactly `a.num_rows` — the
/// regression guard against reintroducing the two-pass traversal.
[[nodiscard]] std::int64_t spgemm_rows_traversed();

/// Reset the `spgemm_rows_traversed` counter to zero.
void spgemm_reset_stats();

}  // namespace parmis::graph
