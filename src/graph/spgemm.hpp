#pragma once
/// \file spgemm.hpp
/// \brief Sparse general matrix-matrix multiply and related matrix algebra.
///
/// SpGEMM backs two parts of the reproduction: the Galerkin triple product
/// R·A·P in the smoothed-aggregation AMG substrate (Table V) and the
/// Tuminaro–Tong "MIS-1 of G²" aggregation baseline from the related work.
/// Rows are computed independently with a per-thread dense accumulator and
/// emitted sorted, so the product is deterministic for any thread count.
///
/// The product is *single-pass*: each row's inner product runs exactly
/// once, into a per-chunk arena, and a scatter pass copies arenas into the
/// final CRS arrays after the row-length scan (no symbolic/numeric
/// re-traversal). Work is split across threads in equal-*flop* chunks
/// under `Schedule::EdgeBalanced` (see `parallel/balanced_for.hpp`), so a
/// hub row of a skewed input no longer serializes a whole thread's sweep.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::graph {

/// C = A * B. Requires a.num_cols == b.num_rows. Output rows sorted.
[[nodiscard]] CrsMatrix spgemm(const CrsMatrix& a, const CrsMatrix& b);

/// Value-only replay of C = A * B into an existing product: `c` must hold
/// the exact sparsity `spgemm(a, b)` would produce (same row_map/entries);
/// only `c.values` is rewritten, in the same per-row accumulation order as
/// `spgemm`, so the values are bit-identical to a fresh product. Performs
/// zero heap allocations on warm calls — the kernel behind warm multilevel
/// (Galerkin) rebuilds when matrix values change but structure is fixed.
void spgemm_numeric(const CrsMatrix& a, const CrsMatrix& b, CrsMatrix& c);

/// Pre-size the calling thread's SpGEMM accumulator for products with up
/// to `ncols` output columns. The zero-allocation guarantee of
/// `spgemm_numeric` is per *thread*: the dense accumulator is
/// thread_local, so the first product a fresh thread ever runs allocates
/// it. Callers that replay into a guarded warm path from a thread that
/// never ran a cold build (e.g. a serving runtime's customize thread)
/// call this first; on an already-warm thread it is a no-op.
void spgemm_warm_thread(ordinal_t ncols);

/// Structure-only product: pattern of A * B (no values).
[[nodiscard]] CrsGraph spgemm_symbolic(GraphView a, GraphView b);

/// C = alpha * A + beta * B (same shape; sorted-row merge). Entries whose
/// sum is exactly zero are kept, preserving the structural union.
[[nodiscard]] CrsMatrix matrix_add(scalar_t alpha, const CrsMatrix& a, scalar_t beta,
                                   const CrsMatrix& b);

/// Value-only replay of C = alpha * A + beta * B: `c` must hold the exact
/// sparsity `matrix_add(alpha, a, beta, b)` would produce; only `c.values`
/// is rewritten. Zero heap allocations.
void matrix_add_numeric(scalar_t alpha, const CrsMatrix& a, scalar_t beta, const CrsMatrix& b,
                        CrsMatrix& c);

/// Transpose with values (used for R = Pᵀ in AMG). Output rows sorted.
[[nodiscard]] CrsMatrix transpose_matrix(const CrsMatrix& a);

/// Entry permutation of the transpose: entry `j` of `a` lands at entry
/// `perm[j]` of `transpose_matrix(a)`. Lets a caller replay a transpose's
/// values without recomputing its structure.
[[nodiscard]] std::vector<offset_t> transpose_permutation(const CrsMatrix& a);

/// Value-only transpose replay through a permutation from
/// `transpose_permutation`: `t.values[perm[j]] = a.values[j]`. `t` must be
/// the structural transpose of `a`. Zero heap allocations.
void transpose_numeric(const CrsMatrix& a, std::span<const offset_t> perm, CrsMatrix& t);

/// Diagonal of a square matrix; zero where a row has no diagonal entry.
[[nodiscard]] std::vector<scalar_t> extract_diagonal(const CrsMatrix& a);

/// `extract_diagonal` into a caller-owned buffer of size `num_rows` (the
/// zero-allocation variant warm multilevel rebuilds use).
void extract_diagonal(const CrsMatrix& a, std::span<scalar_t> d);

/// Instrumentation: number of row inner-products computed by `spgemm` /
/// `spgemm_symbolic` since the last reset (process-wide, relaxed atomic).
/// A single-pass product traverses each output row exactly once, so after
/// one `spgemm(a, b)` the counter advances by exactly `a.num_rows` — the
/// regression guard against reintroducing the two-pass traversal.
[[nodiscard]] std::int64_t spgemm_rows_traversed();

/// Reset the `spgemm_rows_traversed` counter to zero.
void spgemm_reset_stats();

}  // namespace parmis::graph
