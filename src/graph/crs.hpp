#pragma once
/// \file crs.hpp
/// \brief Compressed-row-storage (CRS) graph and sparse-matrix containers.
///
/// All algorithms in this library operate on the CRS format, matching the
/// paper (§V-D discusses why: adjacency lists are contiguous, so inner-loop
/// neighbor iteration vectorizes/coalesces). `CrsGraph` stores structure
/// only; `CrsMatrix` adds values. `GraphView` is the cheap non-owning
/// structure view every kernel takes, so graphs and matrices can be passed
/// interchangeably.

#include <cassert>
#include <span>
#include <vector>

#include "common/config.hpp"

namespace parmis::graph {

/// Owning CRS adjacency structure. `row_map` has `num_rows + 1` entries;
/// row `v`'s neighbors are `entries[row_map[v] .. row_map[v+1])`.
/// Invariants (checked by `validate()`): offsets are non-decreasing, every
/// entry is a valid column, and rows are sorted ascending with no
/// duplicates (builders in this library always produce sorted rows).
struct CrsGraph {
  ordinal_t num_rows{0};
  ordinal_t num_cols{0};
  std::vector<offset_t> row_map{0};
  std::vector<ordinal_t> entries;

  [[nodiscard]] offset_t num_entries() const {
    return row_map.empty() ? 0 : row_map.back();
  }

  [[nodiscard]] std::span<const ordinal_t> row(ordinal_t v) const {
    assert(v >= 0 && v < num_rows);
    return {entries.data() + row_map[v], static_cast<std::size_t>(row_map[v + 1] - row_map[v])};
  }

  [[nodiscard]] ordinal_t degree(ordinal_t v) const {
    return static_cast<ordinal_t>(row_map[v + 1] - row_map[v]);
  }

  /// Structural validation; returns false (and, with asserts on, fires) on
  /// any broken invariant. Sortedness is required, duplicates are not
  /// (generators never produce them, but user input may).
  [[nodiscard]] bool validate(bool require_sorted = true) const;
};

/// Owning CRS sparse matrix (structure + values).
struct CrsMatrix {
  ordinal_t num_rows{0};
  ordinal_t num_cols{0};
  std::vector<offset_t> row_map{0};
  std::vector<ordinal_t> entries;
  std::vector<scalar_t> values;

  [[nodiscard]] offset_t num_entries() const {
    return row_map.empty() ? 0 : row_map.back();
  }

  [[nodiscard]] std::span<const ordinal_t> row(ordinal_t v) const {
    assert(v >= 0 && v < num_rows);
    return {entries.data() + row_map[v], static_cast<std::size_t>(row_map[v + 1] - row_map[v])};
  }

  [[nodiscard]] std::span<const scalar_t> row_values(ordinal_t v) const {
    assert(v >= 0 && v < num_rows);
    return {values.data() + row_map[v], static_cast<std::size_t>(row_map[v + 1] - row_map[v])};
  }

  [[nodiscard]] ordinal_t degree(ordinal_t v) const {
    return static_cast<ordinal_t>(row_map[v + 1] - row_map[v]);
  }

  /// Copy of the structure as a standalone graph (used when an algorithm
  /// wants to own/modify structure; prefer `GraphView` for read access).
  [[nodiscard]] CrsGraph structure() const {
    return CrsGraph{num_rows, num_cols, row_map, entries};
  }
};

/// Non-owning structure view over a CrsGraph or CrsMatrix.
struct GraphView {
  ordinal_t num_rows{0};
  ordinal_t num_cols{0};
  const offset_t* row_map{nullptr};
  const ordinal_t* entries{nullptr};

  GraphView() = default;
  GraphView(ordinal_t nr, ordinal_t nc, const offset_t* rm, const ordinal_t* e)
      : num_rows(nr), num_cols(nc), row_map(rm), entries(e) {}
  GraphView(const CrsGraph& g)  // NOLINT(google-explicit-constructor)
      : num_rows(g.num_rows), num_cols(g.num_cols), row_map(g.row_map.data()),
        entries(g.entries.data()) {}
  GraphView(const CrsMatrix& a)  // NOLINT(google-explicit-constructor)
      : num_rows(a.num_rows), num_cols(a.num_cols), row_map(a.row_map.data()),
        entries(a.entries.data()) {}

  [[nodiscard]] offset_t num_entries() const { return num_rows == 0 ? 0 : row_map[num_rows]; }

  [[nodiscard]] std::span<const ordinal_t> row(ordinal_t v) const {
    assert(v >= 0 && v < num_rows);
    return {entries + row_map[v], static_cast<std::size_t>(row_map[v + 1] - row_map[v])};
  }

  [[nodiscard]] ordinal_t degree(ordinal_t v) const {
    return static_cast<ordinal_t>(row_map[v + 1] - row_map[v]);
  }

  [[nodiscard]] double avg_degree() const {
    return num_rows == 0 ? 0.0 : static_cast<double>(num_entries()) / num_rows;
  }
};

/// Basic degree statistics (reported in Table II).
struct DegreeStats {
  ordinal_t min_degree{0};
  ordinal_t max_degree{0};
  double avg_degree{0.0};
};

[[nodiscard]] DegreeStats degree_stats(GraphView g);

}  // namespace parmis::graph
