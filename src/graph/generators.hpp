#pragma once
/// \file generators.hpp
/// \brief Structured matrix/graph generators (Trilinos-Galeri analogues).
///
/// The paper generates `Laplace3D_100` (100³ grid, 7-point stencil) and
/// `Elasticity3D_60` (60³ grid, 27-point stencil, 3 dof/point) with Galeri
/// and pulls the rest from SuiteSparse. These generators reproduce the two
/// Galeri problems exactly at the structural level and provide the stencil
/// family used for SuiteSparse surrogates (see DESIGN.md §4).
///
/// All stencil matrices follow the Galeri convention: constant diagonal
/// equal to the full-interior stencil degree, off-diagonals −1, boundary
/// rows truncated. Rows on the boundary are then strictly diagonally
/// dominant, making every generated matrix symmetric positive definite.

#include "graph/crs.hpp"

namespace parmis::graph {

/// 2D stencil shapes.
enum class Stencil2D {
  FivePoint,  ///< von Neumann: 4 neighbors
  NinePoint,  ///< Moore: 8 neighbors
};

/// 3D stencil shapes.
enum class Stencil3D {
  SevenPoint,       ///< faces only: 6 neighbors
  NineteenPoint,    ///< faces + edges: 18 neighbors
  TwentySevenPoint, ///< full Moore: 26 neighbors
};

/// Laplacian-type matrix on an nx × ny 2D grid.
[[nodiscard]] CrsMatrix laplace2d(ordinal_t nx, ordinal_t ny,
                                  Stencil2D stencil = Stencil2D::FivePoint);

/// Laplacian-type matrix on an nx × ny × nz 3D grid ("Laplace3D" in the
/// paper for the 7-point case).
[[nodiscard]] CrsMatrix laplace3d(ordinal_t nx, ordinal_t ny, ordinal_t nz,
                                  Stencil3D stencil = Stencil3D::SevenPoint);

/// Elasticity-like block problem: 27-point stencil with 3 degrees of
/// freedom per grid point ("Elasticity3D" in the paper). Vertex ids are
/// `3 * node + dof`; every dof couples to all dofs of all stencil
/// neighbors. SPD by the same boundary-dominance construction.
[[nodiscard]] CrsMatrix elasticity3d(ordinal_t nx, ordinal_t ny, ordinal_t nz);

/// Graph-Laplacian matrix over an arbitrary loop-free symmetric adjacency:
/// off-diagonal −1 per edge, diagonal `degree(v) + diag_shift`. Positive
/// `diag_shift` makes it SPD; used to attach solver-grade values to the
/// random-geometric surrogates.
[[nodiscard]] CrsMatrix laplacian_matrix(GraphView g, scalar_t diag_shift);

/// Skewed-degree adjacency with a Pareto (power-law) degree target:
/// vertex `v` draws `d_v = min_degree · u^(-1/(exponent-1))` (clamped to
/// `max_degree`) from a counter-based hash of `(seed, v)` and emits `d_v`
/// hashed arcs; the result is symmetrized with duplicates merged and self
/// loops dropped, so realized degrees exceed the draw where hubs attract
/// extra stubs. Deterministic in (n, exponent, min_degree, max_degree,
/// seed); `exponent` must be > 1 (≈2–2.5 gives the heavy hub tail that
/// defeats equal-count scheduling). Construction is serial (test/bench
/// input generator, not a kernel).
[[nodiscard]] CrsGraph power_law_graph(ordinal_t n, double exponent, ordinal_t min_degree,
                                       ordinal_t max_degree, std::uint64_t seed);

/// Maximal-skew scheduling adversary: `hubs` hub vertices joined in a
/// ring, each owning `leaves` private degree-1 leaf vertices. The hubs
/// occupy the contiguous id block `[0, hubs)` (leaf `j` of hub `h` is
/// `hubs + h·leaves + j`), so an equal-*count* contiguous partition of the
/// `hubs · (leaves + 1)` vertices drops every hub row — half the edge
/// endpoints — into the first chunk, while almost all other rows have
/// degree 1. Equal-cost partitions split the hub block instead. Degree
/// locality like this is what degree-sorted real-world orderings exhibit.
[[nodiscard]] CrsGraph star_hub_graph(ordinal_t hubs, ordinal_t leaves);

}  // namespace parmis::graph
