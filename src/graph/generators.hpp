#pragma once
/// \file generators.hpp
/// \brief Structured matrix/graph generators (Trilinos-Galeri analogues).
///
/// The paper generates `Laplace3D_100` (100³ grid, 7-point stencil) and
/// `Elasticity3D_60` (60³ grid, 27-point stencil, 3 dof/point) with Galeri
/// and pulls the rest from SuiteSparse. These generators reproduce the two
/// Galeri problems exactly at the structural level and provide the stencil
/// family used for SuiteSparse surrogates (see DESIGN.md §4).
///
/// All stencil matrices follow the Galeri convention: constant diagonal
/// equal to the full-interior stencil degree, off-diagonals −1, boundary
/// rows truncated. Rows on the boundary are then strictly diagonally
/// dominant, making every generated matrix symmetric positive definite.

#include "graph/crs.hpp"

namespace parmis::graph {

/// 2D stencil shapes.
enum class Stencil2D {
  FivePoint,  ///< von Neumann: 4 neighbors
  NinePoint,  ///< Moore: 8 neighbors
};

/// 3D stencil shapes.
enum class Stencil3D {
  SevenPoint,       ///< faces only: 6 neighbors
  NineteenPoint,    ///< faces + edges: 18 neighbors
  TwentySevenPoint, ///< full Moore: 26 neighbors
};

/// Laplacian-type matrix on an nx × ny 2D grid.
[[nodiscard]] CrsMatrix laplace2d(ordinal_t nx, ordinal_t ny,
                                  Stencil2D stencil = Stencil2D::FivePoint);

/// Laplacian-type matrix on an nx × ny × nz 3D grid ("Laplace3D" in the
/// paper for the 7-point case).
[[nodiscard]] CrsMatrix laplace3d(ordinal_t nx, ordinal_t ny, ordinal_t nz,
                                  Stencil3D stencil = Stencil3D::SevenPoint);

/// Elasticity-like block problem: 27-point stencil with 3 degrees of
/// freedom per grid point ("Elasticity3D" in the paper). Vertex ids are
/// `3 * node + dof`; every dof couples to all dofs of all stencil
/// neighbors. SPD by the same boundary-dominance construction.
[[nodiscard]] CrsMatrix elasticity3d(ordinal_t nx, ordinal_t ny, ordinal_t nz);

/// Graph-Laplacian matrix over an arbitrary loop-free symmetric adjacency:
/// off-diagonal −1 per edge, diagonal `degree(v) + diag_shift`. Positive
/// `diag_shift` makes it SPD; used to attach solver-grade values to the
/// random-geometric surrogates.
[[nodiscard]] CrsMatrix laplacian_matrix(GraphView g, scalar_t diag_shift);

}  // namespace parmis::graph
