#include "graph/builders.hpp"

#include <algorithm>
#include <cassert>

namespace parmis::graph {

namespace {

CrsGraph from_pairs(ordinal_t n, std::vector<Edge> pairs) {
  // Drop self loops, sort lexicographically, dedup, then assemble CRS.
  std::erase_if(pairs, [](const Edge& e) { return e.first == e.second; });
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  CrsGraph g;
  g.num_rows = n;
  g.num_cols = n;
  g.row_map.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : pairs) {
    assert(e.first >= 0 && e.first < n && e.second >= 0 && e.second < n);
    ++g.row_map[static_cast<std::size_t>(e.first) + 1];
  }
  for (ordinal_t v = 0; v < n; ++v) {
    g.row_map[static_cast<std::size_t>(v) + 1] += g.row_map[static_cast<std::size_t>(v)];
  }
  g.entries.resize(pairs.size());
  std::vector<offset_t> cursor(g.row_map.begin(), g.row_map.end() - 1);
  for (const Edge& e : pairs) {
    g.entries[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.first)]++)] = e.second;
  }
  return g;
}

}  // namespace

CrsGraph graph_from_edges(ordinal_t n, const std::vector<Edge>& edges) {
  std::vector<Edge> pairs;
  pairs.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    pairs.push_back(e);
    pairs.emplace_back(e.second, e.first);
  }
  return from_pairs(n, std::move(pairs));
}

CrsGraph graph_from_arcs(ordinal_t n, const std::vector<Edge>& arcs) {
  return from_pairs(n, arcs);
}

CrsMatrix matrix_from_coo(ordinal_t num_rows, ordinal_t num_cols,
                          const std::vector<Triplet>& triplets) {
  std::vector<Triplet> t = triplets;
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CrsMatrix m;
  m.num_rows = num_rows;
  m.num_cols = num_cols;
  m.row_map.assign(static_cast<std::size_t>(num_rows) + 1, 0);

  // Merge duplicates while counting.
  std::size_t out = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    assert(t[i].row >= 0 && t[i].row < num_rows && t[i].col >= 0 && t[i].col < num_cols);
    if (out > 0 && t[out - 1].row == t[i].row && t[out - 1].col == t[i].col) {
      t[out - 1].value += t[i].value;
    } else {
      t[out++] = t[i];
    }
  }
  t.resize(out);

  for (const Triplet& x : t) ++m.row_map[static_cast<std::size_t>(x.row) + 1];
  for (ordinal_t v = 0; v < num_rows; ++v) {
    m.row_map[static_cast<std::size_t>(v) + 1] += m.row_map[static_cast<std::size_t>(v)];
  }
  m.entries.resize(t.size());
  m.values.resize(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    m.entries[i] = t[i].col;
    m.values[i] = t[i].value;
  }
  return m;
}

}  // namespace parmis::graph
