#include "graph/registry.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/rgg.hpp"

namespace parmis::graph {

namespace {

/// Diagonal shift attached to RGG Laplacian surrogates. Small enough that
/// the matrices are ill-conditioned like their FEM originals, large enough
/// to be safely SPD.
constexpr scalar_t kRggShift = 0.05;

ordinal_t scaled(std::int64_t n, double scale, double exponent) {
  const double s = std::pow(scale, exponent);
  return static_cast<ordinal_t>(std::llround(static_cast<double>(n) * s));
}

MatrixSpec rgg_spec(std::string name, PaperStats paper, double degree, std::uint64_t seed) {
  MatrixSpec spec;
  spec.name = std::move(name);
  spec.paper = paper;
  spec.in_table2 = true;
  spec.build = [paper, degree, seed](double scale) {
    const ordinal_t n = scaled(paper.rows, scale, 1.0);
    return laplacian_matrix(random_geometric_3d(n, degree, seed), kRggShift);
  };
  return spec;
}

MatrixSpec grid2d_spec(std::string name, PaperStats paper, ordinal_t nx, ordinal_t ny,
                       Stencil2D stencil = Stencil2D::FivePoint) {
  MatrixSpec spec;
  spec.name = std::move(name);
  spec.paper = paper;
  spec.in_table2 = true;
  spec.build = [nx, ny, stencil](double scale) {
    const double s = std::sqrt(scale);
    return laplace2d(std::max<ordinal_t>(2, static_cast<ordinal_t>(std::llround(nx * s))),
                     std::max<ordinal_t>(2, static_cast<ordinal_t>(std::llround(ny * s))), stencil);
  };
  return spec;
}

MatrixSpec grid3d_spec(std::string name, PaperStats paper, ordinal_t nx, ordinal_t ny,
                       ordinal_t nz, Stencil3D stencil = Stencil3D::SevenPoint) {
  MatrixSpec spec;
  spec.name = std::move(name);
  spec.paper = paper;
  spec.in_table2 = true;
  spec.build = [nx, ny, nz, stencil](double scale) {
    const double s = std::cbrt(scale);
    auto dim = [s](ordinal_t d) {
      return std::max<ordinal_t>(2, static_cast<ordinal_t>(std::llround(d * s)));
    };
    return laplace3d(dim(nx), dim(ny), dim(nz), stencil);
  };
  return spec;
}

std::vector<MatrixSpec> make_registry() {
  std::vector<MatrixSpec> specs;

  // Table II order. Paper stats: {rows, |E| (millions), avg deg, max deg}.
  specs.push_back(rgg_spec("af_shell7", {504855, 9.047, 17.92, 35}, 17.92, 0xAF5E11ull));
  specs.push_back(grid2d_spec("apache2", {715176, 2.767, 3.87, 4}, 846, 845));
  specs.push_back(rgg_spec("audikw_1", {943695, 39.298, 41.64, 114}, 41.64, 0xA0D1ull));
  specs.push_back(grid2d_spec("ecology2", {999999, 2.998, 3.0, 3}, 1000, 1000));

  {
    MatrixSpec spec;
    spec.name = "Elasticity3D_60";
    spec.paper = {648000, 50.758, 78.33, 81};
    spec.in_table2 = true;
    spec.build = [](double scale) {
      const double s = std::cbrt(scale);
      const ordinal_t d = std::max<ordinal_t>(2, static_cast<ordinal_t>(std::llround(60 * s)));
      return elasticity3d(d, d, d);
    };
    specs.push_back(std::move(spec));
  }

  specs.push_back(rgg_spec("Emilia_923", {923136, 20.964, 22.71, 48}, 22.71, 0xE1111Aull));
  specs.push_back(rgg_spec("Fault_639", {638802, 14.627, 22.9, 114}, 22.9, 0xFA017ull));
  specs.push_back(rgg_spec("Geo_1438", {1437960, 32.297, 22.46, 48}, 22.46, 0x6E0ull));
  specs.push_back(rgg_spec("Hook_1498", {1498023, 31.208, 20.83, 57}, 20.83, 0x400Cull));

  {
    MatrixSpec spec;
    spec.name = "Laplace3D_100";
    spec.paper = {1000000, 6.94, 6.94, 7};
    spec.in_table2 = true;
    spec.build = [](double scale) {
      const double s = std::cbrt(scale);
      const ordinal_t d = std::max<ordinal_t>(2, static_cast<ordinal_t>(std::llround(100 * s)));
      return laplace3d(d, d, d);
    };
    specs.push_back(std::move(spec));
  }

  specs.push_back(rgg_spec("ldoor", {952203, 23.737, 24.93, 49}, 24.93, 0x1D002ull));
  specs.push_back(grid2d_spec("parabolic_fem", {525825, 2.1, 3.99, 7}, 725, 725));
  specs.push_back(rgg_spec("PFlow_742", {742793, 18.941, 25.5, 58}, 25.5, 0xBF102ull));
  specs.push_back(rgg_spec("Serena", {1391349, 32.962, 23.69, 201}, 23.69, 0x5E2E4Aull));
  specs.push_back(grid3d_spec("StocF-1465", {1465137, 11.235, 7.67, 80}, 114, 114, 113));
  specs.push_back(grid2d_spec("thermal2", {1228045, 4.904, 3.99, 10}, 1108, 1108));
  specs.push_back(grid2d_spec("tmt_sym", {726713, 2.904, 4.0, 5}, 852, 853));

  // Extras beyond Table II (Table VI uses bodyy5).
  {
    MatrixSpec spec;
    spec.name = "bodyy5";
    spec.paper = {18589, 0.104, 5.61, 8};
    spec.in_table2 = false;
    spec.build = [](double scale) {
      const double s = std::sqrt(scale);
      const ordinal_t d = std::max<ordinal_t>(2, static_cast<ordinal_t>(std::llround(137 * s)));
      return laplace2d(d, d, Stencil2D::NinePoint);
    };
    specs.push_back(std::move(spec));
  }

  return specs;
}

}  // namespace

const std::vector<MatrixSpec>& experiment_matrices() {
  static const std::vector<MatrixSpec> registry = make_registry();
  return registry;
}

std::vector<MatrixSpec> table2_matrices() {
  std::vector<MatrixSpec> out;
  for (const MatrixSpec& s : experiment_matrices()) {
    if (s.in_table2) out.push_back(s);
  }
  return out;
}

const MatrixSpec& find_matrix(const std::string& name) {
  for (const MatrixSpec& s : experiment_matrices()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown experiment matrix: " + name);
}

}  // namespace parmis::graph
