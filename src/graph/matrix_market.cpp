#include "graph/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "check/validate.hpp"
#include "graph/builders.hpp"

namespace parmis::graph {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Strip a trailing CR (CRLF files) and any trailing spaces/tabs.
void rstrip(std::string& s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == ' ' || s.back() == '\t')) {
    s.pop_back();
  }
}

/// True for lines that carry no data: empty/whitespace-only or %-comments.
/// The MM spec only allows comments before the size line, but files in the
/// wild (and SuiteSparse exports passed through editors) put them anywhere.
bool is_blank_or_comment(const std::string& s) {
  for (char c : s) {
    if (c == '%') return true;
    if (c != ' ' && c != '\t') return false;
  }
  return true;  // empty or all whitespace
}

/// Next data line (blank lines, comments, and CR endings removed); false
/// at end of file.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    rstrip(line);
    if (!is_blank_or_comment(line)) return true;
  }
  return false;
}

}  // namespace

CrsMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("matrix_market: cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("matrix_market: empty file " + path);
  rstrip(line);

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || lower(object) != "matrix") {
    throw std::runtime_error("matrix_market: bad banner in " + path);
  }
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (format != "coordinate") {
    throw std::runtime_error("matrix_market: only coordinate format supported");
  }
  if (field != "real" && field != "integer" && field != "pattern") {
    throw std::runtime_error("matrix_market: unsupported field " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw std::runtime_error("matrix_market: unsupported symmetry " + symmetry);
  }

  // Size line: first line after the header that is not blank and not a
  // %-comment (tolerates CRLF endings and stray blank lines).
  if (!next_data_line(in, line)) throw std::runtime_error("matrix_market: missing size line");

  std::istringstream size_line(line);
  std::int64_t nrows = 0, ncols = 0, nnz = 0;
  size_line >> nrows >> ncols >> nnz;
  if (nrows <= 0 || ncols <= 0 || nnz < 0 || nrows > max_ordinal || ncols > max_ordinal) {
    throw std::runtime_error("matrix_market: bad size line");
  }

  // Entries are parsed line by line so blank lines and late comments are
  // skipped rather than corrupting the coordinate stream.
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(symmetry == "symmetric" ? 2 * nnz : nnz));
  for (std::int64_t k = 0; k < nnz; ++k) {
    if (!next_data_line(in, line)) throw std::runtime_error("matrix_market: truncated entries");
    std::istringstream entry(line);
    std::int64_t r = 0, c = 0;
    scalar_t v = 1.0;
    if (!(entry >> r >> c)) throw std::runtime_error("matrix_market: malformed entry line");
    if (field != "pattern") {
      if (!(entry >> v)) throw std::runtime_error("matrix_market: truncated values");
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols) {
      throw std::runtime_error("matrix_market: entry (" + std::to_string(r) + ", " +
                               std::to_string(c) + ") out of range for " +
                               std::to_string(nrows) + " x " + std::to_string(ncols));
    }
    if (!std::isfinite(v)) {
      throw std::runtime_error("matrix_market: non-finite value at entry (" + std::to_string(r) +
                               ", " + std::to_string(c) + ")");
    }
    triplets.push_back({static_cast<ordinal_t>(r - 1), static_cast<ordinal_t>(c - 1), v});
    if (symmetry == "symmetric" && r != c) {
      triplets.push_back({static_cast<ordinal_t>(c - 1), static_cast<ordinal_t>(r - 1), v});
    }
  }
  CrsMatrix m =
      matrix_from_coo(static_cast<ordinal_t>(nrows), static_cast<ordinal_t>(ncols), triplets);
  // Boundary validation is unconditional (not PARMIS_CHECK-gated): corrupt
  // input should be reported here, naming the invariant, instead of
  // constructing a matrix that misbehaves three subsystems later.
  if (const check::Result res = check::validate(m); !res) {
    throw std::runtime_error("matrix_market: " + path + ": " + res.diagnostic());
  }
  return m;
}

void write_matrix_market(const std::string& path, const CrsMatrix& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("matrix_market: cannot write " + path);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.num_rows << ' ' << m.num_cols << ' ' << m.num_entries() << '\n';
  out.precision(17);
  for (ordinal_t i = 0; i < m.num_rows; ++i) {
    for (offset_t j = m.row_map[i]; j < m.row_map[i + 1]; ++j) {
      out << (i + 1) << ' ' << (m.entries[static_cast<std::size_t>(j)] + 1) << ' '
          << m.values[static_cast<std::size_t>(j)] << '\n';
    }
  }
}

}  // namespace parmis::graph
