#include "graph/traversal.hpp"

#include <cassert>

namespace parmis::graph {

std::vector<ordinal_t> bfs_distances(GraphView g, ordinal_t source) {
  assert(source >= 0 && source < g.num_rows);
  std::vector<ordinal_t> dist(static_cast<std::size_t>(g.num_rows), invalid_ordinal);
  std::vector<ordinal_t> frontier{source};
  std::vector<ordinal_t> next;
  dist[static_cast<std::size_t>(source)] = 0;
  ordinal_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (ordinal_t v : frontier) {
      for (ordinal_t w : g.row(v)) {
        if (dist[static_cast<std::size_t>(w)] == invalid_ordinal) {
          dist[static_cast<std::size_t>(w)] = level;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

ordinal_t pseudo_peripheral_vertex(GraphView g, ordinal_t start) {
  ordinal_t current = start;
  ordinal_t ecc = -1;
  // Repeatedly jump to the farthest vertex until eccentricity stops
  // growing; converges in a handful of sweeps on mesh-like graphs.
  for (int sweep = 0; sweep < 8; ++sweep) {
    const std::vector<ordinal_t> dist = bfs_distances(g, current);
    ordinal_t far = current, far_d = 0;
    for (ordinal_t v = 0; v < g.num_rows; ++v) {
      const ordinal_t d = dist[static_cast<std::size_t>(v)];
      if (d != invalid_ordinal && d > far_d) {
        far_d = d;
        far = v;
      }
    }
    if (far_d <= ecc) break;
    ecc = far_d;
    current = far;
  }
  return current;
}

Components connected_components(GraphView g) {
  Components c;
  c.labels.assign(static_cast<std::size_t>(g.num_rows), invalid_ordinal);
  std::vector<ordinal_t> stack;
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    if (c.labels[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
    const ordinal_t id = c.count++;
    stack.push_back(v);
    c.labels[static_cast<std::size_t>(v)] = id;
    while (!stack.empty()) {
      const ordinal_t u = stack.back();
      stack.pop_back();
      for (ordinal_t w : g.row(u)) {
        if (c.labels[static_cast<std::size_t>(w)] == invalid_ordinal) {
          c.labels[static_cast<std::size_t>(w)] = id;
          stack.push_back(w);
        }
      }
    }
  }
  return c;
}

}  // namespace parmis::graph
