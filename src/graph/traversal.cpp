#include "graph/traversal.hpp"

#include <atomic>
#include <cassert>
#include <span>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_scan.hpp"

namespace parmis::graph {

/// Serial frontier expansion, used below the parallel threshold.
namespace {

void bfs_level_serial(GraphView g, std::vector<ordinal_t>& dist,
                      const std::vector<ordinal_t>& frontier, std::vector<ordinal_t>& next,
                      ordinal_t level) {
  next.clear();
  for (ordinal_t v : frontier) {
    for (ordinal_t w : g.row(v)) {
      if (dist[static_cast<std::size_t>(w)] == invalid_ordinal) {
        dist[static_cast<std::size_t>(w)] = level;
        next.push_back(w);
      }
    }
  }
}

/// Frontier size below which the parallel machinery (degree scan + gather
/// + claim + compaction) costs more than the serial loop.
constexpr std::size_t bfs_parallel_threshold = 512;

}  // namespace

void bfs_distances_into(GraphView g, ordinal_t source, std::vector<ordinal_t>& dist,
                        BfsWorkspace& ws) {
  assert(source >= 0 && source < g.num_rows);
  dist.assign(static_cast<std::size_t>(g.num_rows), invalid_ordinal);
  ws.frontier.assign(1, source);
  dist[static_cast<std::size_t>(source)] = 0;
  ordinal_t level = 0;
  while (!ws.frontier.empty()) {
    ++level;
    const std::int64_t m = static_cast<std::int64_t>(ws.frontier.size());
    if (ws.frontier.size() < bfs_parallel_threshold || !par::Execution::is_parallel()) {
      bfs_level_serial(g, dist, ws.frontier, ws.next, level);
      ws.frontier.swap(ws.next);
      continue;
    }

    // 1. Gather every frontier neighbor into one contiguous candidate
    //    array (degree scan + race-free scatter: each frontier vertex owns
    //    a disjoint slice).
    ws.cand_offsets.resize(static_cast<std::size_t>(m));
    par::parallel_for(m, [&](std::int64_t i) {
      const ordinal_t v = ws.frontier[static_cast<std::size_t>(i)];
      ws.cand_offsets[static_cast<std::size_t>(i)] = g.row_map[v + 1] - g.row_map[v];
    });
    const offset_t total = par::exclusive_scan_inplace(
        std::span<offset_t>(ws.cand_offsets.data(), static_cast<std::size_t>(m)));
    ws.candidates.resize(static_cast<std::size_t>(total));
    par::parallel_for(m, [&](std::int64_t i) {
      const ordinal_t v = ws.frontier[static_cast<std::size_t>(i)];
      offset_t o = ws.cand_offsets[static_cast<std::size_t>(i)];
      for (ordinal_t w : g.row(v)) {
        ws.candidates[static_cast<std::size_t>(o++)] = w;
      }
    });

    // 2. Claim undiscovered candidates with a relaxed CAS. Duplicate
    //    candidates race for the claim, but every winner writes the same
    //    value (`level`), so the distance labels are exact BFS levels
    //    regardless of scheduling; only which duplicate *position* enters
    //    the next frontier varies, and nothing downstream observes
    //    frontier order.
    ws.flags.resize(static_cast<std::size_t>(total));
    par::parallel_for(total, [&](offset_t j) {
      const ordinal_t c = ws.candidates[static_cast<std::size_t>(j)];
      std::atomic_ref<ordinal_t> slot(dist[static_cast<std::size_t>(c)]);
      ordinal_t expected = invalid_ordinal;
      const bool won =
          slot.load(std::memory_order_relaxed) == invalid_ordinal &&
          slot.compare_exchange_strong(expected, level, std::memory_order_relaxed);
      ws.flags[static_cast<std::size_t>(j)] = won ? 1 : 0;
    });

    // 3. Compact the winners into the next frontier.
    const std::int64_t nf = par::exclusive_scan_inplace(
        std::span<std::int64_t>(ws.flags.data(), static_cast<std::size_t>(total)));
    ws.next.resize(static_cast<std::size_t>(nf));
    par::parallel_for(total, [&](offset_t j) {
      const std::int64_t pos = ws.flags[static_cast<std::size_t>(j)];
      const std::int64_t pos_next =
          (j + 1 < total) ? ws.flags[static_cast<std::size_t>(j) + 1] : nf;
      if (pos_next != pos) {
        ws.next[static_cast<std::size_t>(pos)] = ws.candidates[static_cast<std::size_t>(j)];
      }
    });
    ws.frontier.swap(ws.next);
  }
}

std::vector<ordinal_t> bfs_distances(GraphView g, ordinal_t source) {
  std::vector<ordinal_t> dist;
  BfsWorkspace ws;
  bfs_distances_into(g, source, dist, ws);
  return dist;
}

ordinal_t pseudo_peripheral_vertex(GraphView g, ordinal_t start) {
  ordinal_t current = start;
  ordinal_t ecc = -1;
  std::vector<ordinal_t> dist;
  BfsWorkspace ws;
  // Repeatedly jump to the farthest vertex until eccentricity stops
  // growing; converges in a handful of sweeps on mesh-like graphs.
  for (int sweep = 0; sweep < 8; ++sweep) {
    bfs_distances_into(g, current, dist, ws);
    ordinal_t far = current, far_d = 0;
    for (ordinal_t v = 0; v < g.num_rows; ++v) {
      const ordinal_t d = dist[static_cast<std::size_t>(v)];
      if (d != invalid_ordinal && d > far_d) {
        far_d = d;
        far = v;
      }
    }
    if (far_d <= ecc) break;
    ecc = far_d;
    current = far;
  }
  return current;
}

Components connected_components(GraphView g) {
  Components c;
  c.labels.assign(static_cast<std::size_t>(g.num_rows), invalid_ordinal);
  std::vector<ordinal_t> stack;
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    if (c.labels[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
    const ordinal_t id = c.count++;
    stack.push_back(v);
    c.labels[static_cast<std::size_t>(v)] = id;
    while (!stack.empty()) {
      const ordinal_t u = stack.back();
      stack.pop_back();
      for (ordinal_t w : g.row(u)) {
        if (c.labels[static_cast<std::size_t>(w)] == invalid_ordinal) {
          c.labels[static_cast<std::size_t>(w)] = id;
          stack.push_back(w);
        }
      }
    }
  }
  return c;
}

}  // namespace parmis::graph
