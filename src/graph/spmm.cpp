#include "graph/spmm.hpp"

#include <cassert>

#include "check/check.hpp"
#include "parallel/balanced_for.hpp"

namespace parmis::graph {

namespace {

/// Register-blocked column group: one row traversal feeds up to this many
/// accumulators. Wider batches traverse the rows once per group; column
/// results are independent of the grouping.
constexpr int kSpmmGroup = 16;

/// One chunk of rows × one column group. `KK` is the compile-time lane
/// count (the runtime remainder widths go through `kk`), and every array
/// is a hoisted raw pointer with `__restrict` on the lanes the loop reads
/// and writes — without it the span-based write-out makes the compiler
/// assume `y` may alias the matrix arrays and it reloads pointers and
/// spills the accumulators on every nonzero (measured ~3x slower). The
/// per-lane accumulation order is exactly the runtime loop's (serial over
/// the row's entries), so the specialization is a code-generation choice,
/// never a bits choice. AXPBY selects `y = alpha*acc + beta*y` over plain
/// assignment at compile time.
template <int KK, bool AXPBY>
void spmm_chunk(const offset_t* row_map, const ordinal_t* entries, const scalar_t* values,
                const scalar_t* __restrict x, scalar_t* __restrict y, scalar_t alpha,
                scalar_t beta, int k_count, int kk, ordinal_t lo, ordinal_t hi) {
  for (ordinal_t i = lo; i < hi; ++i) {
    scalar_t acc[kSpmmGroup] = {};
    const offset_t jhi = row_map[i + 1];
    for (offset_t j = row_map[i]; j < jhi; ++j) {
      const scalar_t v = values[static_cast<std::size_t>(j)];
      const scalar_t* xi = x +
                           static_cast<std::size_t>(entries[static_cast<std::size_t>(j)]) *
                               static_cast<std::size_t>(k_count);
      if constexpr (KK > 0) {
        for (int k = 0; k < KK; ++k) acc[k] += v * xi[k];
      } else {
        for (int k = 0; k < kk; ++k) acc[k] += v * xi[k];
      }
    }
    scalar_t* yi = y + static_cast<std::size_t>(i) * static_cast<std::size_t>(k_count);
    const int kw = KK > 0 ? KK : kk;
    if constexpr (AXPBY) {
      for (int k = 0; k < kw; ++k) yi[k] = alpha * acc[k] + beta * yi[k];
    } else {
      for (int k = 0; k < kw; ++k) yi[k] = acc[k];
    }
  }
}

template <bool AXPBY>
void spmm_run(const CrsMatrix& a, std::span<const scalar_t> x, std::span<scalar_t> y,
              scalar_t alpha, scalar_t beta, int k_count) {
  const offset_t* row_map = a.row_map.data();
  const ordinal_t* entries = a.entries.data();
  const scalar_t* values = a.values.data();
  // Chunks are the same cost-balanced partition `balanced_for` would use,
  // so scheduling determinism is unchanged; dispatching per (chunk, column
  // group) keeps the width switch out of the row loop.
  par::balanced_chunks(a.num_rows, row_map, [&](int, ordinal_t lo, ordinal_t hi) {
    for (int k0 = 0; k0 < k_count; k0 += kSpmmGroup) {
      const int kk = k_count - k0 < kSpmmGroup ? k_count - k0 : kSpmmGroup;
      const scalar_t* xg = x.data() + static_cast<std::size_t>(k0);
      scalar_t* yg = y.data() + static_cast<std::size_t>(k0);
      switch (kk) {
        case 16:
          spmm_chunk<16, AXPBY>(row_map, entries, values, xg, yg, alpha, beta, k_count, kk, lo,
                                hi);
          break;
        case 8:
          spmm_chunk<8, AXPBY>(row_map, entries, values, xg, yg, alpha, beta, k_count, kk, lo,
                               hi);
          break;
        case 4:
          spmm_chunk<4, AXPBY>(row_map, entries, values, xg, yg, alpha, beta, k_count, kk, lo,
                               hi);
          break;
        case 2:
          spmm_chunk<2, AXPBY>(row_map, entries, values, xg, yg, alpha, beta, k_count, kk, lo,
                               hi);
          break;
        case 1:
          spmm_chunk<1, AXPBY>(row_map, entries, values, xg, yg, alpha, beta, k_count, kk, lo,
                               hi);
          break;
        default:
          spmm_chunk<0, AXPBY>(row_map, entries, values, xg, yg, alpha, beta, k_count, kk, lo,
                               hi);
          break;
      }
    }
  });
}

}  // namespace

void spmm(const CrsMatrix& a, std::span<const scalar_t> x, std::span<scalar_t> y, int k_count) {
  assert(k_count > 0);
  assert(x.size() == static_cast<std::size_t>(a.num_cols) * static_cast<std::size_t>(k_count));
  assert(y.size() == static_cast<std::size_t>(a.num_rows) * static_cast<std::size_t>(k_count));
  PARMIS_CHECK(k_count > 0);
  PARMIS_CHECK(x.size() ==
               static_cast<std::size_t>(a.num_cols) * static_cast<std::size_t>(k_count));
  PARMIS_CHECK(y.size() ==
               static_cast<std::size_t>(a.num_rows) * static_cast<std::size_t>(k_count));
  spmm_run<false>(a, x, y, 1.0, 0.0, k_count);
}

void spmm(scalar_t alpha, const CrsMatrix& a, std::span<const scalar_t> x, scalar_t beta,
          std::span<scalar_t> y, int k_count) {
  assert(k_count > 0);
  assert(x.size() == static_cast<std::size_t>(a.num_cols) * static_cast<std::size_t>(k_count));
  assert(y.size() == static_cast<std::size_t>(a.num_rows) * static_cast<std::size_t>(k_count));
  PARMIS_CHECK(k_count > 0);
  PARMIS_CHECK(x.size() ==
               static_cast<std::size_t>(a.num_cols) * static_cast<std::size_t>(k_count));
  PARMIS_CHECK(y.size() ==
               static_cast<std::size_t>(a.num_rows) * static_cast<std::size_t>(k_count));
  spmm_run<true>(a, x, y, alpha, beta, k_count);
}

}  // namespace parmis::graph
