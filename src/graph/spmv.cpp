#include "graph/spmv.hpp"

#include <cassert>

#include "check/check.hpp"
#include "parallel/balanced_for.hpp"

namespace parmis::graph {

void spmv(const CrsMatrix& a, std::span<const scalar_t> x, std::span<scalar_t> y) {
  assert(x.size() == static_cast<std::size_t>(a.num_cols));
  assert(y.size() == static_cast<std::size_t>(a.num_rows));
  PARMIS_CHECK(x.size() == static_cast<std::size_t>(a.num_cols));
  PARMIS_CHECK(y.size() == static_cast<std::size_t>(a.num_rows));
  par::balanced_for(a.num_rows, a.row_map.data(), [&](ordinal_t i) {
    scalar_t acc = 0;
    for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
      acc += a.values[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(a.entries[static_cast<std::size_t>(j)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  });
}

void spmv(scalar_t alpha, const CrsMatrix& a, std::span<const scalar_t> x, scalar_t beta,
          std::span<scalar_t> y) {
  assert(x.size() == static_cast<std::size_t>(a.num_cols));
  assert(y.size() == static_cast<std::size_t>(a.num_rows));
  PARMIS_CHECK(x.size() == static_cast<std::size_t>(a.num_cols));
  PARMIS_CHECK(y.size() == static_cast<std::size_t>(a.num_rows));
  par::balanced_for(a.num_rows, a.row_map.data(), [&](ordinal_t i) {
    scalar_t acc = 0;
    for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
      acc += a.values[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(a.entries[static_cast<std::size_t>(j)])];
    }
    y[static_cast<std::size_t>(i)] = alpha * acc + beta * y[static_cast<std::size_t>(i)];
  });
}

}  // namespace parmis::graph
