#pragma once
/// \file spmv.hpp
/// \brief Sparse matrix-vector product, the solver substrate workhorse.

#include <span>

#include "graph/crs.hpp"

namespace parmis::graph {

/// y = A * x. Parallel over rows; each row accumulates serially in entry
/// order, so the result is deterministic for any thread count.
void spmv(const CrsMatrix& a, std::span<const scalar_t> x, std::span<scalar_t> y);

/// y = alpha * A * x + beta * y.
void spmv(scalar_t alpha, const CrsMatrix& a, std::span<const scalar_t> x, scalar_t beta,
          std::span<scalar_t> y);

}  // namespace parmis::graph
