#pragma once
/// \file traversal.hpp
/// \brief BFS utilities and connected components (substrate for the
/// multilevel partitioner and for structural tests).

#include <vector>

#include "graph/crs.hpp"

namespace parmis::graph {

/// BFS hop distances from `source`; unreachable vertices get -1.
[[nodiscard]] std::vector<ordinal_t> bfs_distances(GraphView g, ordinal_t source);

/// A vertex approximately maximizing eccentricity, found by repeated BFS
/// ("pseudo-peripheral"); the classic seed for graph-growing bisection.
[[nodiscard]] ordinal_t pseudo_peripheral_vertex(GraphView g, ordinal_t start);

/// Connected components.
struct Components {
  std::vector<ordinal_t> labels;  ///< vertex -> component id (compact)
  ordinal_t count{0};
};

[[nodiscard]] Components connected_components(GraphView g);

}  // namespace parmis::graph
