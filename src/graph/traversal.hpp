#pragma once
/// \file traversal.hpp
/// \brief BFS utilities and connected components (substrate for the
/// multilevel partitioner and for structural tests).

#include <cstdint>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::graph {

/// Scratch for the level-synchronous parallel BFS, reusable across
/// traversals (the farthest-point seed sampler runs k of them back to
/// back).
struct BfsWorkspace {
  std::vector<ordinal_t> frontier;
  std::vector<ordinal_t> next;
  std::vector<ordinal_t> candidates;
  std::vector<offset_t> cand_offsets;
  std::vector<std::int64_t> flags;
};

/// BFS hop distances from `source`; unreachable vertices get -1.
[[nodiscard]] std::vector<ordinal_t> bfs_distances(GraphView g, ordinal_t source);

/// BFS hop distances written into `dist` (resized to `g.num_rows`), with
/// caller-provided scratch: warm repeated traversals are allocation-free.
/// Each level expands the whole frontier in parallel; newly discovered
/// vertices are claimed with relaxed atomic compare-and-swap, so only the
/// *order* of the internal frontier depends on the race winner — the
/// distance labels themselves are exact BFS levels and therefore
/// bit-identical for any backend and thread count.
void bfs_distances_into(GraphView g, ordinal_t source, std::vector<ordinal_t>& dist,
                        BfsWorkspace& ws);

/// A vertex approximately maximizing eccentricity, found by repeated BFS
/// ("pseudo-peripheral"); the classic seed for graph-growing bisection.
[[nodiscard]] ordinal_t pseudo_peripheral_vertex(GraphView g, ordinal_t start);

/// Connected components.
struct Components {
  std::vector<ordinal_t> labels;  ///< vertex -> component id (compact)
  ordinal_t count{0};
};

[[nodiscard]] Components connected_components(GraphView g);

}  // namespace parmis::graph
