#pragma once
/// \file spmm.hpp
/// \brief Sparse matrix × dense multi-vector product (SpMM), the batched
/// solving workhorse.
///
/// One matrix traversal feeds K right-hand sides: `x` and `y` are dense
/// row-major multi-vectors (element (i, k) at `i * k_count + k`), so each
/// CRS row read is amortized over K accumulators and the random accesses
/// into `x` touch K consecutive scalars per cache line. Column k of the
/// result is bit-identical to `spmv` on column k alone: each row still
/// accumulates serially in entry order, per column.

#include <span>

#include "graph/crs.hpp"

namespace parmis::graph {

/// Y = A * X for K column vectors stored row-major. Parallel over rows via
/// the same `balanced_for` contract as `spmv` (deterministic for any
/// backend, schedule, and thread count).
void spmm(const CrsMatrix& a, std::span<const scalar_t> x, std::span<scalar_t> y, int k_count);

/// Y = alpha * A * X + beta * Y, row-major multi-vectors.
void spmm(scalar_t alpha, const CrsMatrix& a, std::span<const scalar_t> x, scalar_t beta,
          std::span<scalar_t> y, int k_count);

}  // namespace parmis::graph
