#include "graph/crs.hpp"

#include "parallel/parallel_reduce.hpp"

namespace parmis::graph {

bool CrsGraph::validate(bool require_sorted) const {
  if (num_rows < 0 || num_cols < 0) return false;
  if (row_map.size() != static_cast<std::size_t>(num_rows) + 1) return false;
  if (row_map.front() != 0) return false;
  if (entries.size() != static_cast<std::size_t>(row_map.back())) return false;
  for (ordinal_t v = 0; v < num_rows; ++v) {
    if (row_map[v + 1] < row_map[v]) return false;
    ordinal_t prev = -1;
    for (offset_t j = row_map[v]; j < row_map[v + 1]; ++j) {
      const ordinal_t c = entries[static_cast<std::size_t>(j)];
      if (c < 0 || c >= num_cols) return false;
      if (require_sorted && c <= prev) return false;
      prev = c;
    }
  }
  return true;
}

DegreeStats degree_stats(GraphView g) {
  DegreeStats s;
  if (g.num_rows == 0) return s;
  s.min_degree = par::reduce_min<ordinal_t>(
      g.num_rows, [&](ordinal_t v) { return g.degree(v); }, max_ordinal);
  s.max_degree = par::reduce_max<ordinal_t>(
      g.num_rows, [&](ordinal_t v) { return g.degree(v); }, ordinal_t{0});
  s.avg_degree = g.avg_degree();
  return s;
}

}  // namespace parmis::graph
