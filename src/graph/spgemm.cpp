#include "graph/spgemm.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "parallel/parallel_for.hpp"

namespace parmis::graph {

namespace {

/// Per-thread dense accumulator with stamp-based clearing. `thread_local`
/// so repeated SpGEMM calls reuse the allocation.
struct Workspace {
  std::vector<std::uint64_t> stamp_of;
  std::vector<scalar_t> acc;
  std::vector<ordinal_t> touched;
  std::uint64_t stamp{0};

  void ensure(ordinal_t ncols) {
    if (stamp_of.size() < static_cast<std::size_t>(ncols)) {
      stamp_of.assign(static_cast<std::size_t>(ncols), 0);
      acc.assign(static_cast<std::size_t>(ncols), 0);
      stamp = 0;
    }
  }
};

thread_local Workspace t_ws;

}  // namespace

CrsGraph spgemm_symbolic(GraphView a, GraphView b) {
  assert(a.num_cols == b.num_rows);
  CrsGraph c;
  c.num_rows = a.num_rows;
  c.num_cols = b.num_cols;
  c.row_map.assign(static_cast<std::size_t>(a.num_rows) + 1, 0);

  auto fill_row = [&](ordinal_t i) {
    Workspace& ws = t_ws;
    ws.ensure(b.num_cols);
    ++ws.stamp;
    ws.touched.clear();
    for (ordinal_t k : a.row(i)) {
      for (ordinal_t j : b.row(k)) {
        if (ws.stamp_of[static_cast<std::size_t>(j)] != ws.stamp) {
          ws.stamp_of[static_cast<std::size_t>(j)] = ws.stamp;
          ws.touched.push_back(j);
        }
      }
    }
  };

  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    fill_row(i);
    c.row_map[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(t_ws.touched.size());
  });
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    c.row_map[static_cast<std::size_t>(i) + 1] += c.row_map[static_cast<std::size_t>(i)];
  }
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    fill_row(i);
    std::sort(t_ws.touched.begin(), t_ws.touched.end());
    std::copy(t_ws.touched.begin(), t_ws.touched.end(),
              c.entries.begin() + static_cast<std::ptrdiff_t>(c.row_map[i]));
  });
  return c;
}

CrsMatrix spgemm(const CrsMatrix& a, const CrsMatrix& b) {
  assert(a.num_cols == b.num_rows);
  CrsMatrix c;
  c.num_rows = a.num_rows;
  c.num_cols = b.num_cols;
  c.row_map.assign(static_cast<std::size_t>(a.num_rows) + 1, 0);

  auto accumulate_row = [&](ordinal_t i) {
    Workspace& ws = t_ws;
    ws.ensure(b.num_cols);
    ++ws.stamp;
    ws.touched.clear();
    for (offset_t ja = a.row_map[i]; ja < a.row_map[i + 1]; ++ja) {
      const ordinal_t k = a.entries[static_cast<std::size_t>(ja)];
      const scalar_t av = a.values[static_cast<std::size_t>(ja)];
      for (offset_t jb = b.row_map[k]; jb < b.row_map[k + 1]; ++jb) {
        const ordinal_t j = b.entries[static_cast<std::size_t>(jb)];
        const scalar_t bv = b.values[static_cast<std::size_t>(jb)];
        if (ws.stamp_of[static_cast<std::size_t>(j)] != ws.stamp) {
          ws.stamp_of[static_cast<std::size_t>(j)] = ws.stamp;
          ws.acc[static_cast<std::size_t>(j)] = av * bv;
          ws.touched.push_back(j);
        } else {
          ws.acc[static_cast<std::size_t>(j)] += av * bv;
        }
      }
    }
  };

  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    accumulate_row(i);
    c.row_map[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(t_ws.touched.size());
  });
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    c.row_map[static_cast<std::size_t>(i) + 1] += c.row_map[static_cast<std::size_t>(i)];
  }
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  c.values.resize(static_cast<std::size_t>(c.row_map.back()));

  // Note: the numeric accumulation order within a row is fixed by the entry
  // order of A and B, not by scheduling, so values are bit-deterministic.
  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    accumulate_row(i);
    std::sort(t_ws.touched.begin(), t_ws.touched.end());
    offset_t o = c.row_map[i];
    for (ordinal_t j : t_ws.touched) {
      c.entries[static_cast<std::size_t>(o)] = j;
      c.values[static_cast<std::size_t>(o)] = t_ws.acc[static_cast<std::size_t>(j)];
      ++o;
    }
  });
  return c;
}

CrsMatrix matrix_add(scalar_t alpha, const CrsMatrix& a, scalar_t beta, const CrsMatrix& b) {
  assert(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  CrsMatrix c;
  c.num_rows = a.num_rows;
  c.num_cols = a.num_cols;
  c.row_map.assign(static_cast<std::size_t>(a.num_rows) + 1, 0);

  auto merged_count = [&](ordinal_t i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    std::size_t ia = 0, ib = 0;
    offset_t count = 0;
    while (ia < ra.size() || ib < rb.size()) {
      if (ib >= rb.size() || (ia < ra.size() && ra[ia] < rb[ib])) {
        ++ia;
      } else if (ia >= ra.size() || rb[ib] < ra[ia]) {
        ++ib;
      } else {
        ++ia;
        ++ib;
      }
      ++count;
    }
    return count;
  };

  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    c.row_map[static_cast<std::size_t>(i) + 1] = merged_count(i);
  });
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    c.row_map[static_cast<std::size_t>(i) + 1] += c.row_map[static_cast<std::size_t>(i)];
  }
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  c.values.resize(static_cast<std::size_t>(c.row_map.back()));

  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    auto va = a.row_values(i);
    auto vb = b.row_values(i);
    std::size_t ia = 0, ib = 0;
    offset_t o = c.row_map[i];
    while (ia < ra.size() || ib < rb.size()) {
      ordinal_t col;
      scalar_t val;
      if (ib >= rb.size() || (ia < ra.size() && ra[ia] < rb[ib])) {
        col = ra[ia];
        val = alpha * va[ia];
        ++ia;
      } else if (ia >= ra.size() || rb[ib] < ra[ia]) {
        col = rb[ib];
        val = beta * vb[ib];
        ++ib;
      } else {
        col = ra[ia];
        val = alpha * va[ia] + beta * vb[ib];
        ++ia;
        ++ib;
      }
      c.entries[static_cast<std::size_t>(o)] = col;
      c.values[static_cast<std::size_t>(o)] = val;
      ++o;
    }
  });
  return c;
}

CrsMatrix transpose_matrix(const CrsMatrix& a) {
  CrsMatrix t;
  t.num_rows = a.num_cols;
  t.num_cols = a.num_rows;
  t.row_map.assign(static_cast<std::size_t>(a.num_cols) + 1, 0);
  for (offset_t j = 0; j < a.num_entries(); ++j) {
    ++t.row_map[static_cast<std::size_t>(a.entries[static_cast<std::size_t>(j)]) + 1];
  }
  for (ordinal_t c = 0; c < a.num_cols; ++c) {
    t.row_map[static_cast<std::size_t>(c) + 1] += t.row_map[static_cast<std::size_t>(c)];
  }
  t.entries.resize(static_cast<std::size_t>(a.num_entries()));
  t.values.resize(static_cast<std::size_t>(a.num_entries()));
  std::vector<offset_t> cursor(t.row_map.begin(), t.row_map.end() - 1);
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
      const ordinal_t col = a.entries[static_cast<std::size_t>(j)];
      const offset_t o = cursor[static_cast<std::size_t>(col)]++;
      t.entries[static_cast<std::size_t>(o)] = i;
      t.values[static_cast<std::size_t>(o)] = a.values[static_cast<std::size_t>(j)];
    }
  }
  return t;
}

std::vector<scalar_t> extract_diagonal(const CrsMatrix& a) {
  assert(a.num_rows == a.num_cols);
  std::vector<scalar_t> d(static_cast<std::size_t>(a.num_rows), 0);
  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    auto cols = a.row(i);
    auto it = std::lower_bound(cols.begin(), cols.end(), i);
    if (it != cols.end() && *it == i) {
      d[static_cast<std::size_t>(i)] =
          a.values[static_cast<std::size_t>(a.row_map[i] + (it - cols.begin()))];
    }
  });
  return d;
}

}  // namespace parmis::graph
