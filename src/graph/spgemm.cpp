#include "graph/spgemm.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>

#include "check/check.hpp"
#include "check/validate.hpp"
#include "obs/trace.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_scan.hpp"

namespace parmis::graph {

namespace {

/// Per-thread dense accumulator with stamp-based clearing. `thread_local`
/// so repeated SpGEMM calls reuse the allocation.
struct Workspace {
  std::vector<std::uint64_t> stamp_of;
  std::vector<scalar_t> acc;
  std::vector<ordinal_t> touched;
  std::uint64_t stamp{0};

  void ensure(ordinal_t ncols) {
    if (stamp_of.size() < static_cast<std::size_t>(ncols)) {
      stamp_of.assign(static_cast<std::size_t>(ncols), 0);
      acc.assign(static_cast<std::size_t>(ncols), 0);
      stamp = 0;
    }
  }
};

thread_local Workspace t_ws;

std::atomic<std::int64_t> g_rows_traversed{0};

/// Equal-flop chunking cost: prefix of `1 + Σ_{k ∈ A.row(i)} deg_B(k)` —
/// the exact inner-product work of output row `i`. Only built when the
/// active schedule consults costs.
std::vector<offset_t> product_cost_prefix(GraphView a, const offset_t* b_row_map) {
  std::vector<offset_t> cost(static_cast<std::size_t>(a.num_rows) + 1);
  par::parallel_for(a.num_rows, [&](ordinal_t i) {
    offset_t w = 1;
    for (ordinal_t k : a.row(i)) {
      w += b_row_map[k + 1] - b_row_map[k];
    }
    cost[static_cast<std::size_t>(i)] = w;
  });
  cost[static_cast<std::size_t>(a.num_rows)] = 0;
  par::exclusive_scan_inplace(std::span<offset_t>(cost));
  return cost;
}

/// One arena per chunk: rows land in the arena of the chunk that computed
/// them and are scattered into the final CRS arrays after the length scan.
struct Arena {
  std::vector<ordinal_t> cols;
  std::vector<scalar_t> vals;
};

}  // namespace

CrsGraph spgemm_symbolic(GraphView a, GraphView b) {
  assert(a.num_cols == b.num_rows);
  PARMIS_SPAN("spgemm.symbolic");
  CrsGraph c;
  c.num_rows = a.num_rows;
  c.num_cols = b.num_cols;
  c.row_map.assign(static_cast<std::size_t>(a.num_rows) + 1, 0);
  if (a.num_rows == 0) return c;

  const std::vector<offset_t> cost =
      par::schedule_uses_costs() ? product_cost_prefix(a, b.row_map) : std::vector<offset_t>{};
  const offset_t* cost_ptr = cost.empty() ? nullptr : cost.data();

  std::vector<Arena> arenas(static_cast<std::size_t>(par::balanced_chunk_count()));
  std::vector<int> arena_of(static_cast<std::size_t>(a.num_rows));
  std::vector<offset_t> arena_off(static_cast<std::size_t>(a.num_rows));

  // The single traversal: pattern of each row, deduplicated with the stamp
  // workspace, sorted, appended to the chunk's arena.
  par::balanced_chunks(a.num_rows, cost_ptr, [&](int chunk, ordinal_t lo, ordinal_t hi) {
    Arena& ar = arenas[static_cast<std::size_t>(chunk)];
    Workspace& ws = t_ws;
    ws.ensure(b.num_cols);
    for (ordinal_t i = lo; i < hi; ++i) {
      ++ws.stamp;
      ws.touched.clear();
      for (ordinal_t k : a.row(i)) {
        for (ordinal_t j : b.row(k)) {
          if (ws.stamp_of[static_cast<std::size_t>(j)] != ws.stamp) {
            ws.stamp_of[static_cast<std::size_t>(j)] = ws.stamp;
            ws.touched.push_back(j);
          }
        }
      }
      std::sort(ws.touched.begin(), ws.touched.end());
      arena_of[static_cast<std::size_t>(i)] = chunk;
      arena_off[static_cast<std::size_t>(i)] = static_cast<offset_t>(ar.cols.size());
      ar.cols.insert(ar.cols.end(), ws.touched.begin(), ws.touched.end());
      c.row_map[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(ws.touched.size());
    }
    g_rows_traversed.fetch_add(hi - lo, std::memory_order_relaxed);
  });

  par::inclusive_scan_inplace(
      std::span<offset_t>(c.row_map.data() + 1, static_cast<std::size_t>(a.num_rows)));
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  par::balanced_for(a.num_rows, c.row_map.data(), [&](ordinal_t i) {
    const Arena& ar = arenas[static_cast<std::size_t>(arena_of[static_cast<std::size_t>(i)])];
    const offset_t len = c.row_map[i + 1] - c.row_map[i];
    std::copy_n(ar.cols.begin() + static_cast<std::ptrdiff_t>(arena_off[static_cast<std::size_t>(i)]),
                len, c.entries.begin() + static_cast<std::ptrdiff_t>(c.row_map[i]));
  });
  return c;
}

CrsMatrix spgemm(const CrsMatrix& a, const CrsMatrix& b) {
  assert(a.num_cols == b.num_rows);
  PARMIS_CHECK_MSG(a.num_cols == b.num_rows, "spgemm operand shapes do not chain");
  PARMIS_CHECK_OK(check::validate(a));
  PARMIS_CHECK_OK(check::validate(b));
  obs::Span span("spgemm.numeric");
  span.arg("rows", a.num_rows);
  CrsMatrix c;
  c.num_rows = a.num_rows;
  c.num_cols = b.num_cols;
  c.row_map.assign(static_cast<std::size_t>(a.num_rows) + 1, 0);
  if (a.num_rows == 0) return c;

  const std::vector<offset_t> cost = par::schedule_uses_costs()
                                         ? product_cost_prefix(GraphView(a), b.row_map.data())
                                         : std::vector<offset_t>{};
  const offset_t* cost_ptr = cost.empty() ? nullptr : cost.data();

  std::vector<Arena> arenas(static_cast<std::size_t>(par::balanced_chunk_count()));
  std::vector<int> arena_of(static_cast<std::size_t>(a.num_rows));
  std::vector<offset_t> arena_off(static_cast<std::size_t>(a.num_rows));

  // The single traversal. The accumulation order within a row is fixed by
  // the entry order of A and B (never by scheduling), and columns are
  // emitted sorted, so entries *and values* are bit-deterministic for any
  // chunking.
  par::balanced_chunks(a.num_rows, cost_ptr, [&](int chunk, ordinal_t lo, ordinal_t hi) {
    Arena& ar = arenas[static_cast<std::size_t>(chunk)];
    Workspace& ws = t_ws;
    ws.ensure(b.num_cols);
    for (ordinal_t i = lo; i < hi; ++i) {
      ++ws.stamp;
      ws.touched.clear();
      for (offset_t ja = a.row_map[i]; ja < a.row_map[i + 1]; ++ja) {
        const ordinal_t k = a.entries[static_cast<std::size_t>(ja)];
        const scalar_t av = a.values[static_cast<std::size_t>(ja)];
        for (offset_t jb = b.row_map[k]; jb < b.row_map[k + 1]; ++jb) {
          const ordinal_t j = b.entries[static_cast<std::size_t>(jb)];
          const scalar_t bv = b.values[static_cast<std::size_t>(jb)];
          if (ws.stamp_of[static_cast<std::size_t>(j)] != ws.stamp) {
            ws.stamp_of[static_cast<std::size_t>(j)] = ws.stamp;
            ws.acc[static_cast<std::size_t>(j)] = av * bv;
            ws.touched.push_back(j);
          } else {
            ws.acc[static_cast<std::size_t>(j)] += av * bv;
          }
        }
      }
      std::sort(ws.touched.begin(), ws.touched.end());
      arena_of[static_cast<std::size_t>(i)] = chunk;
      arena_off[static_cast<std::size_t>(i)] = static_cast<offset_t>(ar.cols.size());
      for (ordinal_t j : ws.touched) {
        ar.cols.push_back(j);
        ar.vals.push_back(ws.acc[static_cast<std::size_t>(j)]);
      }
      c.row_map[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(ws.touched.size());
    }
    g_rows_traversed.fetch_add(hi - lo, std::memory_order_relaxed);
  });

  par::inclusive_scan_inplace(
      std::span<offset_t>(c.row_map.data() + 1, static_cast<std::size_t>(a.num_rows)));
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  c.values.resize(static_cast<std::size_t>(c.row_map.back()));
  par::balanced_for(a.num_rows, c.row_map.data(), [&](ordinal_t i) {
    const Arena& ar = arenas[static_cast<std::size_t>(arena_of[static_cast<std::size_t>(i)])];
    const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(arena_off[static_cast<std::size_t>(i)]);
    const offset_t len = c.row_map[i + 1] - c.row_map[i];
    std::copy_n(ar.cols.begin() + src, len,
                c.entries.begin() + static_cast<std::ptrdiff_t>(c.row_map[i]));
    std::copy_n(ar.vals.begin() + src, len,
                c.values.begin() + static_cast<std::ptrdiff_t>(c.row_map[i]));
  });
  PARMIS_CHECK_OK(check::validate(c));
  return c;
}

void spgemm_numeric(const CrsMatrix& a, const CrsMatrix& b, CrsMatrix& c) {
  assert(a.num_cols == b.num_rows);
  assert(c.num_rows == a.num_rows && c.num_cols == b.num_cols);
  PARMIS_CHECK_MSG(a.num_cols == b.num_rows, "spgemm_numeric operand shapes do not chain");
  PARMIS_CHECK_MSG(c.num_rows == a.num_rows && c.num_cols == b.num_cols,
                   "spgemm_numeric product shape does not match operands");
  PARMIS_CHECK(c.values.size() == c.entries.size());
  if (a.num_rows == 0) return;
  obs::Span span("spgemm.replay");
  span.arg("rows", a.num_rows);

  // With the product's sparsity known, each row zeroes its accumulator
  // slots, replays the inner products in the exact entry order of `spgemm`
  // (so values are bit-identical), and reads the row back off the fixed
  // column pattern. A's row_map balances the sweep without building a
  // flop-cost prefix, keeping warm replays allocation-free.
  par::balanced_for(a.num_rows, a.row_map.data(), [&](ordinal_t i) {
    Workspace& ws = t_ws;
    ws.ensure(b.num_cols);
    for (offset_t jc = c.row_map[i]; jc < c.row_map[i + 1]; ++jc) {
      ws.acc[static_cast<std::size_t>(c.entries[static_cast<std::size_t>(jc)])] = 0;
    }
    for (offset_t ja = a.row_map[i]; ja < a.row_map[i + 1]; ++ja) {
      const ordinal_t k = a.entries[static_cast<std::size_t>(ja)];
      const scalar_t av = a.values[static_cast<std::size_t>(ja)];
      for (offset_t jb = b.row_map[k]; jb < b.row_map[k + 1]; ++jb) {
        ws.acc[static_cast<std::size_t>(b.entries[static_cast<std::size_t>(jb)])] +=
            av * b.values[static_cast<std::size_t>(jb)];
      }
    }
    for (offset_t jc = c.row_map[i]; jc < c.row_map[i + 1]; ++jc) {
      c.values[static_cast<std::size_t>(jc)] =
          ws.acc[static_cast<std::size_t>(c.entries[static_cast<std::size_t>(jc)])];
    }
  });
}

void spgemm_warm_thread(ordinal_t ncols) { t_ws.ensure(ncols); }

CrsMatrix matrix_add(scalar_t alpha, const CrsMatrix& a, scalar_t beta, const CrsMatrix& b) {
  assert(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  CrsMatrix c;
  c.num_rows = a.num_rows;
  c.num_cols = a.num_cols;
  c.row_map.assign(static_cast<std::size_t>(a.num_rows) + 1, 0);

  auto merged_count = [&](ordinal_t i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    std::size_t ia = 0, ib = 0;
    offset_t count = 0;
    while (ia < ra.size() || ib < rb.size()) {
      if (ib >= rb.size() || (ia < ra.size() && ra[ia] < rb[ib])) {
        ++ia;
      } else if (ia >= ra.size() || rb[ib] < ra[ia]) {
        ++ib;
      } else {
        ++ia;
        ++ib;
      }
      ++count;
    }
    return count;
  };

  // Per-row merge work is degree-shaped; A's row_map is the (half of the)
  // cost, close enough to balance the sweep.
  par::balanced_for(a.num_rows, a.row_map.data(), [&](ordinal_t i) {
    c.row_map[static_cast<std::size_t>(i) + 1] = merged_count(i);
  });
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    c.row_map[static_cast<std::size_t>(i) + 1] += c.row_map[static_cast<std::size_t>(i)];
  }
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  c.values.resize(static_cast<std::size_t>(c.row_map.back()));

  par::balanced_for(a.num_rows, c.row_map.data(), [&](ordinal_t i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    auto va = a.row_values(i);
    auto vb = b.row_values(i);
    std::size_t ia = 0, ib = 0;
    offset_t o = c.row_map[i];
    while (ia < ra.size() || ib < rb.size()) {
      ordinal_t col;
      scalar_t val;
      if (ib >= rb.size() || (ia < ra.size() && ra[ia] < rb[ib])) {
        col = ra[ia];
        val = alpha * va[ia];
        ++ia;
      } else if (ia >= ra.size() || rb[ib] < ra[ia]) {
        col = rb[ib];
        val = beta * vb[ib];
        ++ib;
      } else {
        col = ra[ia];
        val = alpha * va[ia] + beta * vb[ib];
        ++ia;
        ++ib;
      }
      c.entries[static_cast<std::size_t>(o)] = col;
      c.values[static_cast<std::size_t>(o)] = val;
      ++o;
    }
  });
  return c;
}

void matrix_add_numeric(scalar_t alpha, const CrsMatrix& a, scalar_t beta, const CrsMatrix& b,
                        CrsMatrix& c) {
  assert(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  assert(c.num_rows == a.num_rows);
  par::balanced_for(a.num_rows, c.row_map.data(), [&](ordinal_t i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    auto va = a.row_values(i);
    auto vb = b.row_values(i);
    std::size_t ia = 0, ib = 0;
    offset_t o = c.row_map[i];
    while (ia < ra.size() || ib < rb.size()) {
      scalar_t val;
      if (ib >= rb.size() || (ia < ra.size() && ra[ia] < rb[ib])) {
        val = alpha * va[ia];
        ++ia;
      } else if (ia >= ra.size() || rb[ib] < ra[ia]) {
        val = beta * vb[ib];
        ++ib;
      } else {
        val = alpha * va[ia] + beta * vb[ib];
        ++ia;
        ++ib;
      }
      c.values[static_cast<std::size_t>(o)] = val;
      ++o;
    }
    assert(o == c.row_map[i + 1]);
  });
}

CrsMatrix transpose_matrix(const CrsMatrix& a) {
  PARMIS_SPAN("spgemm.transpose");
  CrsMatrix t;
  t.num_rows = a.num_cols;
  t.num_cols = a.num_rows;
  t.row_map.assign(static_cast<std::size_t>(a.num_cols) + 1, 0);
  t.entries.resize(static_cast<std::size_t>(a.num_entries()));
  t.values.resize(static_cast<std::size_t>(a.num_entries()));
  if (a.num_rows == 0 || a.num_cols == 0 || a.num_entries() == 0) return t;

  // Parallel counting sort. Rows are cut into the same cost-balanced
  // chunks twice (balanced_chunks guarantees identical boundaries for
  // identical inputs); the histogram pass counts each chunk's entries per
  // column, the per-column scan turns counts into chunk-local starting
  // cursors, and the placement pass writes entries at those cursors. A
  // column's entries arrive ordered by (chunk, row-within-chunk) = source
  // row ascending for *any* contiguous chunking, so the result — rows
  // sorted by original row id — is identical to the serial transpose.
  const std::size_t ncols = static_cast<std::size_t>(a.num_cols);
  const int nchunks = par::balanced_chunk_count();
  std::vector<offset_t> counts(static_cast<std::size_t>(nchunks) * ncols, 0);

  par::balanced_chunks(a.num_rows, a.row_map.data(), [&](int chunk, ordinal_t lo, ordinal_t hi) {
    offset_t* cnt = counts.data() + static_cast<std::size_t>(chunk) * ncols;
    for (ordinal_t i = lo; i < hi; ++i) {
      for (ordinal_t col : a.row(i)) {
        ++cnt[static_cast<std::size_t>(col)];
      }
    }
  });

  par::chunked_cursor_scan(a.num_cols, nchunks, counts, t.row_map);
  par::inclusive_scan_inplace(
      std::span<offset_t>(t.row_map.data() + 1, static_cast<std::size_t>(a.num_cols)));

  par::balanced_chunks(a.num_rows, a.row_map.data(), [&](int chunk, ordinal_t lo, ordinal_t hi) {
    offset_t* cursor = counts.data() + static_cast<std::size_t>(chunk) * ncols;
    for (ordinal_t i = lo; i < hi; ++i) {
      for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
        const ordinal_t col = a.entries[static_cast<std::size_t>(j)];
        const offset_t o = t.row_map[static_cast<std::size_t>(col)] +
                           cursor[static_cast<std::size_t>(col)]++;
        t.entries[static_cast<std::size_t>(o)] = i;
        t.values[static_cast<std::size_t>(o)] = a.values[static_cast<std::size_t>(j)];
      }
    }
  });
  return t;
}

std::vector<offset_t> transpose_permutation(const CrsMatrix& a) {
  // Serial counting-sort replay of `transpose_matrix`'s placement: a
  // column's entries arrive in source-row order, so a single ascending
  // sweep with per-column cursors reproduces the transpose's entry
  // positions exactly.
  std::vector<offset_t> perm(static_cast<std::size_t>(a.num_entries()));
  std::vector<offset_t> cursor(static_cast<std::size_t>(a.num_cols) + 1, 0);
  for (const ordinal_t col : a.entries) ++cursor[static_cast<std::size_t>(col) + 1];
  for (ordinal_t c = 0; c < a.num_cols; ++c) {
    cursor[static_cast<std::size_t>(c) + 1] += cursor[static_cast<std::size_t>(c)];
  }
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
      perm[static_cast<std::size_t>(j)] =
          cursor[static_cast<std::size_t>(a.entries[static_cast<std::size_t>(j)])]++;
    }
  }
  return perm;
}

void transpose_numeric(const CrsMatrix& a, std::span<const offset_t> perm, CrsMatrix& t) {
  assert(perm.size() == static_cast<std::size_t>(a.num_entries()));
  assert(t.num_rows == a.num_cols && t.num_cols == a.num_rows);
  par::balanced_for(a.num_rows, a.row_map.data(), [&](ordinal_t i) {
    for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
      t.values[static_cast<std::size_t>(perm[static_cast<std::size_t>(j)])] =
          a.values[static_cast<std::size_t>(j)];
    }
  });
}

std::vector<scalar_t> extract_diagonal(const CrsMatrix& a) {
  std::vector<scalar_t> d(static_cast<std::size_t>(a.num_rows), 0);
  extract_diagonal(a, d);
  return d;
}

void extract_diagonal(const CrsMatrix& a, std::span<scalar_t> d) {
  assert(a.num_rows == a.num_cols);
  assert(d.size() == static_cast<std::size_t>(a.num_rows));
  par::balanced_for(a.num_rows, a.row_map.data(), [&](ordinal_t i) {
    auto cols = a.row(i);
    auto it = std::lower_bound(cols.begin(), cols.end(), i);
    d[static_cast<std::size_t>(i)] =
        (it != cols.end() && *it == i)
            ? a.values[static_cast<std::size_t>(a.row_map[i] + (it - cols.begin()))]
            : 0.0;
  });
}

std::int64_t spgemm_rows_traversed() {
  return g_rows_traversed.load(std::memory_order_relaxed);
}

void spgemm_reset_stats() { g_rows_traversed.store(0, std::memory_order_relaxed); }

}  // namespace parmis::graph
