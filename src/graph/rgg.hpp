#pragma once
/// \file rgg.hpp
/// \brief Random geometric graphs: the SuiteSparse surrogate generator.
///
/// The paper's 15 SuiteSparse inputs are FEM/mesh discretizations: low,
/// spatially local degree with small diameter variation. Those structural
/// properties — not the exact matrices — drive MIS-2 size, iteration count
/// and aggregation quality, so DESIGN.md §4 substitutes each with a random
/// geometric graph (RGG) matched in |V| and average degree: n points
/// uniform in the unit cube (torus metric, so degree is uniform without
/// boundary deficit), vertices connected when within radius r, with
/// r chosen so the expected degree hits the target.
///
/// Construction is deterministic: point coordinates are counter-based
/// hashes of (seed, index), and rows are emitted sorted.

#include <cstdint>

#include "graph/crs.hpp"

namespace parmis::graph {

/// 3D torus random geometric graph with `n` vertices and expected average
/// degree `target_avg_degree` (> 0). No self loops; symmetric by
/// construction.
[[nodiscard]] CrsGraph random_geometric_3d(ordinal_t n, double target_avg_degree,
                                           std::uint64_t seed);

/// 2D variant (used for 2D-mesh-like surrogates in tests).
[[nodiscard]] CrsGraph random_geometric_2d(ordinal_t n, double target_avg_degree,
                                           std::uint64_t seed);

}  // namespace parmis::graph
