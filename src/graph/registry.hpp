#pragma once
/// \file registry.hpp
/// \brief The 17-matrix experiment suite from the paper (Table II), plus
/// bodyy5 (Table VI), as buildable surrogates.
///
/// Two of the paper's inputs (Laplace3D_100, Elasticity3D_60) are generated
/// exactly; the 15 SuiteSparse matrices are replaced by synthetic
/// surrogates matched in |V| and average degree (DESIGN.md §4): 2D/3D
/// stencil grids for the grid-like inputs and 3D random geometric graphs
/// for the unstructured FEM inputs. Paper-reported statistics are carried
/// along so benchmark output can show paper-vs-surrogate side by side.

#include <functional>
#include <string>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::graph {

/// Statistics of the original matrix as reported in Table II of the paper.
struct PaperStats {
  std::int64_t rows;       ///< |V|
  double nnz_millions;     ///< |E| in millions (paper's convention)
  double avg_degree;       ///< average adjacency degree
  ordinal_t max_degree;    ///< maximum adjacency degree
};

/// A buildable experiment matrix.
struct MatrixSpec {
  std::string name;
  PaperStats paper;
  bool in_table2;  ///< member of the 17-matrix Table II suite
  /// Build the surrogate at `scale` (fraction of the paper |V|; 1.0 =
  /// paper scale). Returns an SPD matrix; MIS/coloring benchmarks use only
  /// its structure.
  std::function<CrsMatrix(double scale)> build;
};

/// All experiment matrices, Table II's 17 first (in the paper's row order),
/// then extras (bodyy5).
const std::vector<MatrixSpec>& experiment_matrices();

/// The 17 Table II matrices only.
std::vector<MatrixSpec> table2_matrices();

/// Look up one matrix by name; throws std::out_of_range if unknown.
const MatrixSpec& find_matrix(const std::string& name);

}  // namespace parmis::graph
