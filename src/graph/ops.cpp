#include "graph/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"

namespace parmis::graph {

CrsGraph transpose(GraphView g) {
  CrsGraph t;
  t.num_rows = g.num_cols;
  t.num_cols = g.num_rows;
  t.row_map.assign(static_cast<std::size_t>(g.num_cols) + 1, 0);

  // Count column occurrences (serial counting pass keeps this deterministic
  // and simple; transpose is not on any hot path).
  for (offset_t j = 0; j < g.num_entries(); ++j) {
    ++t.row_map[static_cast<std::size_t>(g.entries[j]) + 1];
  }
  for (ordinal_t c = 0; c < g.num_cols; ++c) {
    t.row_map[static_cast<std::size_t>(c) + 1] += t.row_map[static_cast<std::size_t>(c)];
  }
  t.entries.resize(static_cast<std::size_t>(g.num_entries()));
  std::vector<offset_t> cursor(t.row_map.begin(), t.row_map.end() - 1);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
      const ordinal_t c = g.entries[j];
      t.entries[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] = v;
    }
  }
  // Row-major traversal emits ascending row ids per column: already sorted.
  return t;
}

CrsGraph symmetrize(GraphView g) {
  assert(g.num_rows == g.num_cols);
  const CrsGraph t = transpose(g);
  CrsGraph s;
  s.num_rows = g.num_rows;
  s.num_cols = g.num_cols;
  s.row_map.assign(static_cast<std::size_t>(g.num_rows) + 1, 0);

  // Two passes of a sorted-merge union of row(g) and row(t), minus self.
  auto merged_row_count = [&](ordinal_t v) -> offset_t {
    auto a = g.row(v);
    auto b = GraphView(t).row(v);
    std::size_t i = 0, j = 0;
    offset_t count = 0;
    ordinal_t prev = invalid_ordinal;
    while (i < a.size() || j < b.size()) {
      ordinal_t c;
      if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
        c = a[i++];
      } else {
        c = b[j++];
      }
      if (c != v && c != prev) {
        ++count;
        prev = c;
      }
    }
    return count;
  };

  std::vector<offset_t> counts(static_cast<std::size_t>(g.num_rows) + 1, 0);
  par::parallel_for(g.num_rows, [&](ordinal_t v) {
    counts[static_cast<std::size_t>(v) + 1] = merged_row_count(v);
  });
  for (ordinal_t v = 0; v < g.num_rows; ++v) counts[static_cast<std::size_t>(v) + 1] += counts[static_cast<std::size_t>(v)];
  s.row_map = counts;
  s.entries.resize(static_cast<std::size_t>(s.row_map.back()));

  par::parallel_for(g.num_rows, [&](ordinal_t v) {
    auto a = g.row(v);
    auto b = GraphView(t).row(v);
    std::size_t i = 0, j = 0;
    offset_t out = s.row_map[v];
    ordinal_t prev = invalid_ordinal;
    while (i < a.size() || j < b.size()) {
      ordinal_t c;
      if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
        c = a[i++];
      } else {
        c = b[j++];
      }
      if (c != v && c != prev) {
        s.entries[static_cast<std::size_t>(out++)] = c;
        prev = c;
      }
    }
  });
  return s;
}

bool is_symmetric(GraphView g) {
  if (g.num_rows != g.num_cols) return false;
  const CrsGraph t = transpose(g);
  if (t.num_entries() != g.num_entries()) return false;
  // Both row sets sorted: compare rows directly. (Requires sorted input,
  // which all builders guarantee.)
  const std::int64_t mismatches = par::count_if(g.num_rows, [&](ordinal_t v) {
    auto a = g.row(v);
    auto b = GraphView(t).row(v);
    return !std::equal(a.begin(), a.end(), b.begin(), b.end());
  });
  return mismatches == 0;
}

bool has_self_loops(GraphView g) {
  return par::count_if(g.num_rows, [&](ordinal_t v) {
           auto r = g.row(v);
           return std::binary_search(r.begin(), r.end(), v);
         }) > 0;
}

CrsGraph remove_self_loops(GraphView g) {
  CrsGraph out;
  out.num_rows = g.num_rows;
  out.num_cols = g.num_cols;
  out.row_map.assign(static_cast<std::size_t>(g.num_rows) + 1, 0);
  par::parallel_for(g.num_rows, [&](ordinal_t v) {
    auto r = g.row(v);
    out.row_map[static_cast<std::size_t>(v) + 1] =
        static_cast<offset_t>(r.size()) -
        (std::binary_search(r.begin(), r.end(), v) ? 1 : 0);
  });
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    out.row_map[static_cast<std::size_t>(v) + 1] += out.row_map[static_cast<std::size_t>(v)];
  }
  out.entries.resize(static_cast<std::size_t>(out.row_map.back()));
  par::parallel_for(g.num_rows, [&](ordinal_t v) {
    offset_t o = out.row_map[v];
    for (ordinal_t c : g.row(v)) {
      if (c != v) out.entries[static_cast<std::size_t>(o++)] = c;
    }
  });
  return out;
}

namespace {

/// Collect the sorted distance-≤2 neighborhood of v (excluding v) into
/// `scratch` using a stamp-marker array. Returns the neighborhood size.
std::size_t radius2_row(GraphView g, ordinal_t v, std::vector<ordinal_t>& marker,
                        ordinal_t stamp, std::vector<ordinal_t>& scratch) {
  scratch.clear();
  auto push = [&](ordinal_t u) {
    if (u != v && marker[static_cast<std::size_t>(u)] != stamp) {
      marker[static_cast<std::size_t>(u)] = stamp;
      scratch.push_back(u);
    }
  };
  for (ordinal_t w : g.row(v)) {
    push(w);
    for (ordinal_t u : g.row(w)) push(u);
  }
  std::sort(scratch.begin(), scratch.end());
  return scratch.size();
}

}  // namespace

CrsGraph square(GraphView g) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;
  CrsGraph out;
  out.num_rows = n;
  out.num_cols = n;
  out.row_map.assign(static_cast<std::size_t>(n) + 1, 0);

  // Serial two-pass construction with a stamp-marker; the squared graph is
  // a validation/baseline tool, not a hot path. (Algorithm 1's whole point
  // is to avoid materializing G².)
  std::vector<ordinal_t> marker(static_cast<std::size_t>(n), invalid_ordinal);
  std::vector<ordinal_t> scratch;
  for (ordinal_t v = 0; v < n; ++v) {
    out.row_map[static_cast<std::size_t>(v) + 1] =
        out.row_map[static_cast<std::size_t>(v)] +
        static_cast<offset_t>(radius2_row(g, v, marker, v, scratch));
  }
  out.entries.resize(static_cast<std::size_t>(out.row_map.back()));
  std::fill(marker.begin(), marker.end(), invalid_ordinal);
  for (ordinal_t v = 0; v < n; ++v) {
    radius2_row(g, v, marker, v, scratch);
    std::copy(scratch.begin(), scratch.end(),
              out.entries.begin() + static_cast<std::ptrdiff_t>(out.row_map[v]));
  }
  return out;
}

InducedSubgraph induced_subgraph(GraphView g, const std::vector<char>& include) {
  assert(include.size() == static_cast<std::size_t>(g.num_rows));
  InducedSubgraph result;
  result.to_sub.assign(static_cast<std::size_t>(g.num_rows), invalid_ordinal);

  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    if (include[static_cast<std::size_t>(v)]) {
      result.to_sub[static_cast<std::size_t>(v)] =
          static_cast<ordinal_t>(result.to_original.size());
      result.to_original.push_back(v);
    }
  }

  const ordinal_t sub_n = static_cast<ordinal_t>(result.to_original.size());
  CrsGraph& s = result.graph;
  s.num_rows = sub_n;
  s.num_cols = sub_n;
  s.row_map.assign(static_cast<std::size_t>(sub_n) + 1, 0);
  par::parallel_for(sub_n, [&](ordinal_t sv) {
    const ordinal_t v = result.to_original[static_cast<std::size_t>(sv)];
    offset_t count = 0;
    for (ordinal_t c : g.row(v)) {
      if (include[static_cast<std::size_t>(c)]) ++count;
    }
    s.row_map[static_cast<std::size_t>(sv) + 1] = count;
  });
  for (ordinal_t sv = 0; sv < sub_n; ++sv) {
    s.row_map[static_cast<std::size_t>(sv) + 1] += s.row_map[static_cast<std::size_t>(sv)];
  }
  s.entries.resize(static_cast<std::size_t>(s.row_map.back()));
  par::parallel_for(sub_n, [&](ordinal_t sv) {
    const ordinal_t v = result.to_original[static_cast<std::size_t>(sv)];
    offset_t o = s.row_map[sv];
    for (ordinal_t c : g.row(v)) {
      if (include[static_cast<std::size_t>(c)]) {
        s.entries[static_cast<std::size_t>(o++)] = result.to_sub[static_cast<std::size_t>(c)];
      }
    }
  });
  return result;
}

CrsGraph relabel(GraphView g, std::span<const ordinal_t> new_id) {
  assert(new_id.size() == static_cast<std::size_t>(g.num_rows));
  const ordinal_t n = g.num_rows;
  CrsGraph r;
  r.num_rows = n;
  r.num_cols = g.num_cols;
  r.row_map.assign(static_cast<std::size_t>(n) + 1, 0);
  par::parallel_for(n, [&](ordinal_t v) {
    r.row_map[static_cast<std::size_t>(new_id[static_cast<std::size_t>(v)]) + 1] =
        g.row_map[v + 1] - g.row_map[v];
  });
  for (ordinal_t v = 0; v < n; ++v) {
    r.row_map[static_cast<std::size_t>(v) + 1] += r.row_map[static_cast<std::size_t>(v)];
  }
  r.entries.resize(static_cast<std::size_t>(r.row_map.back()));
  par::parallel_for(n, [&](ordinal_t v) {
    const ordinal_t nv = new_id[static_cast<std::size_t>(v)];
    offset_t o = r.row_map[static_cast<std::size_t>(nv)];
    for (ordinal_t c : g.row(v)) {
      r.entries[static_cast<std::size_t>(o++)] = new_id[static_cast<std::size_t>(c)];
    }
    std::sort(r.entries.begin() + static_cast<std::ptrdiff_t>(r.row_map[static_cast<std::size_t>(nv)]),
              r.entries.begin() + static_cast<std::ptrdiff_t>(o));
  });
  return r;
}

}  // namespace parmis::graph
