#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "graph/builders.hpp"
#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"

namespace parmis::graph {

namespace {

struct Offset3 {
  int dx, dy, dz;
};

/// Stencil offsets in ascending linearized-id order (dz, dy, dx ascending),
/// including (0,0,0), so emitted rows are sorted without a sort pass.
std::vector<Offset3> stencil_offsets_3d(Stencil3D s) {
  std::vector<Offset3> offs;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int manhattan = std::abs(dx) + std::abs(dy) + std::abs(dz);
        bool keep = false;
        switch (s) {
          case Stencil3D::SevenPoint: keep = manhattan <= 1; break;
          case Stencil3D::NineteenPoint: keep = manhattan <= 2; break;
          case Stencil3D::TwentySevenPoint: keep = true; break;
        }
        if (keep) offs.push_back({dx, dy, dz});
      }
    }
  }
  return offs;
}

std::vector<Offset3> stencil_offsets_2d(Stencil2D s) {
  std::vector<Offset3> offs;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const int manhattan = std::abs(dx) + std::abs(dy);
      const bool keep = (s == Stencil2D::FivePoint) ? manhattan <= 1 : true;
      if (keep) offs.push_back({dx, dy, 0});
    }
  }
  return offs;
}

/// Shared stencil assembly over an nx × ny × nz grid (ny = nz = 1 for
/// lower dimensions). Diagonal = stencil size − 1, off-diagonal = −1.
CrsMatrix assemble_stencil(ordinal_t nx, ordinal_t ny, ordinal_t nz,
                           const std::vector<Offset3>& offs) {
  assert(nx > 0 && ny > 0 && nz > 0);
  const std::int64_t n64 = static_cast<std::int64_t>(nx) * ny * nz;
  assert(n64 <= max_ordinal);
  const ordinal_t n = static_cast<ordinal_t>(n64);
  const scalar_t diag = static_cast<scalar_t>(offs.size() - 1);

  CrsMatrix m;
  m.num_rows = n;
  m.num_cols = n;
  m.row_map.assign(static_cast<std::size_t>(n) + 1, 0);

  auto in_grid = [&](ordinal_t x, ordinal_t y, ordinal_t z, const Offset3& o) {
    const ordinal_t X = x + o.dx, Y = y + o.dy, Z = z + o.dz;
    return X >= 0 && X < nx && Y >= 0 && Y < ny && Z >= 0 && Z < nz;
  };

  par::parallel_for(n, [&](ordinal_t v) {
    const ordinal_t x = v % nx;
    const ordinal_t y = (v / nx) % ny;
    const ordinal_t z = static_cast<ordinal_t>(v / (static_cast<std::int64_t>(nx) * ny));
    offset_t count = 0;
    for (const Offset3& o : offs) {
      if (in_grid(x, y, z, o)) ++count;
    }
    m.row_map[static_cast<std::size_t>(v) + 1] = count;
  });
  for (ordinal_t v = 0; v < n; ++v) {
    m.row_map[static_cast<std::size_t>(v) + 1] += m.row_map[static_cast<std::size_t>(v)];
  }
  m.entries.resize(static_cast<std::size_t>(m.row_map.back()));
  m.values.resize(static_cast<std::size_t>(m.row_map.back()));

  par::parallel_for(n, [&](ordinal_t v) {
    const ordinal_t x = v % nx;
    const ordinal_t y = (v / nx) % ny;
    const ordinal_t z = static_cast<ordinal_t>(v / (static_cast<std::int64_t>(nx) * ny));
    offset_t o = m.row_map[v];
    for (const Offset3& off : offs) {
      if (!in_grid(x, y, z, off)) continue;
      const ordinal_t u = static_cast<ordinal_t>(
          (x + off.dx) +
          static_cast<std::int64_t>(nx) * ((y + off.dy) + static_cast<std::int64_t>(ny) * (z + off.dz)));
      m.entries[static_cast<std::size_t>(o)] = u;
      m.values[static_cast<std::size_t>(o)] = (u == v) ? diag : scalar_t{-1};
      ++o;
    }
  });
  return m;
}

}  // namespace

CrsMatrix laplace2d(ordinal_t nx, ordinal_t ny, Stencil2D stencil) {
  return assemble_stencil(nx, ny, 1, stencil_offsets_2d(stencil));
}

CrsMatrix laplace3d(ordinal_t nx, ordinal_t ny, ordinal_t nz, Stencil3D stencil) {
  return assemble_stencil(nx, ny, nz, stencil_offsets_3d(stencil));
}

CrsMatrix elasticity3d(ordinal_t nx, ordinal_t ny, ordinal_t nz) {
  const std::vector<Offset3> offs = stencil_offsets_3d(Stencil3D::TwentySevenPoint);
  const std::int64_t nodes = static_cast<std::int64_t>(nx) * ny * nz;
  assert(nodes * 3 <= max_ordinal);
  const ordinal_t n = static_cast<ordinal_t>(nodes * 3);
  const scalar_t diag = static_cast<scalar_t>(offs.size() * 3 - 1);  // 80

  CrsMatrix m;
  m.num_rows = n;
  m.num_cols = n;
  m.row_map.assign(static_cast<std::size_t>(n) + 1, 0);

  auto in_grid = [&](ordinal_t x, ordinal_t y, ordinal_t z, const Offset3& o) {
    const ordinal_t X = x + o.dx, Y = y + o.dy, Z = z + o.dz;
    return X >= 0 && X < nx && Y >= 0 && Y < ny && Z >= 0 && Z < nz;
  };

  par::parallel_for(n, [&](ordinal_t v) {
    const ordinal_t node = v / 3;
    const ordinal_t x = node % nx;
    const ordinal_t y = (node / nx) % ny;
    const ordinal_t z = static_cast<ordinal_t>(node / (static_cast<std::int64_t>(nx) * ny));
    offset_t count = 0;
    for (const Offset3& o : offs) {
      if (in_grid(x, y, z, o)) count += 3;
    }
    m.row_map[static_cast<std::size_t>(v) + 1] = count;
  });
  for (ordinal_t v = 0; v < n; ++v) {
    m.row_map[static_cast<std::size_t>(v) + 1] += m.row_map[static_cast<std::size_t>(v)];
  }
  m.entries.resize(static_cast<std::size_t>(m.row_map.back()));
  m.values.resize(static_cast<std::size_t>(m.row_map.back()));

  par::parallel_for(n, [&](ordinal_t v) {
    const ordinal_t node = v / 3;
    const ordinal_t x = node % nx;
    const ordinal_t y = (node / nx) % ny;
    const ordinal_t z = static_cast<ordinal_t>(node / (static_cast<std::int64_t>(nx) * ny));
    offset_t o = m.row_map[v];
    for (const Offset3& off : offs) {
      if (!in_grid(x, y, z, off)) continue;
      const ordinal_t nbr = static_cast<ordinal_t>(
          (x + off.dx) +
          static_cast<std::int64_t>(nx) * ((y + off.dy) + static_cast<std::int64_t>(ny) * (z + off.dz)));
      for (ordinal_t d = 0; d < 3; ++d) {
        const ordinal_t u = nbr * 3 + d;
        m.entries[static_cast<std::size_t>(o)] = u;
        m.values[static_cast<std::size_t>(o)] = (u == v) ? diag : scalar_t{-1};
        ++o;
      }
    }
  });
  return m;
}

CrsGraph power_law_graph(ordinal_t n, double exponent, ordinal_t min_degree,
                         ordinal_t max_degree, std::uint64_t seed) {
  assert(n >= 0 && exponent > 1.0 && min_degree >= 1 && max_degree >= min_degree);
  if (n <= 1) return graph_from_edges(n, {});

  // Inverse-transform Pareto draw per vertex from a counter-based hash, so
  // the degree sequence (and every arc endpoint) is a pure function of
  // (seed, vertex) — replayable, thread-free, deterministic.
  const double inv_alpha = 1.0 / (exponent - 1.0);
  std::vector<Edge> arcs;  // undirected: graph_from_edges mirrors each stub
  for (ordinal_t v = 0; v < n; ++v) {
    const std::uint64_t h = rng::hash_xorshift_star(seed, static_cast<std::uint64_t>(v));
    // u in (0, 1]: never zero, so the Pareto transform stays finite.
    const double u =
        (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
    const double draw = static_cast<double>(min_degree) * std::pow(u, -inv_alpha);
    const ordinal_t dv = static_cast<ordinal_t>(std::min<double>(
        static_cast<double>(std::min<ordinal_t>(max_degree, n - 1)), draw));
    rng::SplitMix64 stream(seed ^ (static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ULL) ^
                           0xA5A5A5A5A5A5A5A5ULL);
    for (ordinal_t e = 0; e < dv; ++e) {
      const ordinal_t w = static_cast<ordinal_t>(stream.next_below(static_cast<std::uint64_t>(n)));
      if (w != v) arcs.emplace_back(v, w);
    }
  }
  return graph_from_edges(n, arcs);
}

CrsGraph star_hub_graph(ordinal_t hubs, ordinal_t leaves) {
  assert(hubs >= 1 && leaves >= 0);
  const std::int64_t n64 = static_cast<std::int64_t>(hubs) * (leaves + 1);
  assert(n64 <= max_ordinal);
  const ordinal_t n = static_cast<ordinal_t>(n64);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (ordinal_t h = 0; h < hubs; ++h) {
    if (hubs > 1) {
      edges.emplace_back(h, (h + 1) % hubs);  // ring; hubs==2 duplicates merge
    }
    for (ordinal_t l = 0; l < leaves; ++l) {
      edges.emplace_back(h, hubs + h * leaves + l);
    }
  }
  return graph_from_edges(n, edges);
}

CrsMatrix laplacian_matrix(GraphView g, scalar_t diag_shift) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;
  CrsMatrix m;
  m.num_rows = n;
  m.num_cols = n;
  m.row_map.assign(static_cast<std::size_t>(n) + 1, 0);
  par::parallel_for(n, [&](ordinal_t v) {
    m.row_map[static_cast<std::size_t>(v) + 1] = g.degree(v) + 1;  // +1 for diagonal
  });
  for (ordinal_t v = 0; v < n; ++v) {
    m.row_map[static_cast<std::size_t>(v) + 1] += m.row_map[static_cast<std::size_t>(v)];
  }
  m.entries.resize(static_cast<std::size_t>(m.row_map.back()));
  m.values.resize(static_cast<std::size_t>(m.row_map.back()));
  par::parallel_for(n, [&](ordinal_t v) {
    offset_t o = m.row_map[v];
    bool diag_written = false;
    const scalar_t diag = static_cast<scalar_t>(g.degree(v)) + diag_shift;
    for (ordinal_t c : g.row(v)) {
      assert(c != v && "laplacian_matrix requires a loop-free adjacency");
      if (!diag_written && c > v) {
        m.entries[static_cast<std::size_t>(o)] = v;
        m.values[static_cast<std::size_t>(o)] = diag;
        ++o;
        diag_written = true;
      }
      m.entries[static_cast<std::size_t>(o)] = c;
      m.values[static_cast<std::size_t>(o)] = -1;
      ++o;
    }
    if (!diag_written) {
      m.entries[static_cast<std::size_t>(o)] = v;
      m.values[static_cast<std::size_t>(o)] = diag;
    }
  });
  return m;
}

}  // namespace parmis::graph
