#include "partition/quality.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <vector>

#include "parallel/balanced_for.hpp"
#include "parallel/parallel_reduce.hpp"

namespace parmis::partition {

double QualityReport::cut_fraction() const {
  if (total_edge_weight == 0) return 0.0;
  return static_cast<double>(edge_cut) / static_cast<double>(total_edge_weight);
}

std::string QualityReport::to_json() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"k\":%d,\"num_vertices\":%d,\"num_edges\":%lld,"
                "\"total_edge_weight\":%lld,\"edge_cut\":%lld,"
                "\"cut_fraction\":%.6f,\"comm_volume\":%lld,\"boundary_vertices\":%lld,"
                "\"boundary_fraction\":%.6f,\"max_part_weight\":%lld,\"min_part_weight\":%lld,"
                "\"empty_parts\":%d,\"imbalance\":%.6f}",
                k, num_vertices, static_cast<long long>(num_edges),
                static_cast<long long>(total_edge_weight),
                static_cast<long long>(edge_cut), cut_fraction(),
                static_cast<long long>(comm_volume), static_cast<long long>(boundary_vertices),
                boundary_fraction, static_cast<long long>(max_part_weight),
                static_cast<long long>(min_part_weight), empty_parts, imbalance);
  return buf;
}

QualityReport evaluate_partition(const WeightedGraph& g, std::span<const ordinal_t> part,
                                 ordinal_t k) {
  const ordinal_t n = g.graph.num_rows;
  assert(part.size() == static_cast<std::size_t>(n));
  QualityReport r;
  r.k = k;
  r.num_vertices = n;
  r.num_edges = g.graph.num_entries() / 2;
  if (n == 0 || k <= 0) return r;
  const offset_t* row_cost = g.graph.row_map.data();
  r.total_edge_weight = par::balanced_reduce_sum<std::int64_t>(n, row_cost, [&](ordinal_t v) {
    std::int64_t w = 0;
    for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
      w += g.edge_weight[static_cast<std::size_t>(j)];
    }
    return w;
  }) / 2;

  // Per-vertex contributions are pure functions of (graph, part) and the
  // accumulators are integral (exactly associative), so the cost-balanced
  // reductions are bit-identical on every backend, thread count, and
  // schedule.
  r.edge_cut = par::balanced_reduce_sum<std::int64_t>(n, row_cost, [&](ordinal_t v) {
    const ordinal_t pv = part[static_cast<std::size_t>(v)];
    std::int64_t cut = 0;
    for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
      const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
      if (part[static_cast<std::size_t>(u)] != pv) {
        cut += g.edge_weight[static_cast<std::size_t>(j)];
      }
    }
    return cut;
  }) / 2;

  r.boundary_vertices = par::balanced_count_if(n, row_cost, [&](ordinal_t v) {
    const ordinal_t pv = part[static_cast<std::size_t>(v)];
    for (ordinal_t u : g.graph.row(v)) {
      if (part[static_cast<std::size_t>(u)] != pv) return true;
    }
    return false;
  });
  r.boundary_fraction = static_cast<double>(r.boundary_vertices) / n;

  r.comm_volume = par::balanced_reduce_sum<std::int64_t>(n, row_cost, [&](ordinal_t v) {
    const ordinal_t pv = part[static_cast<std::size_t>(v)];
    // Distinct remote parts adjacent to v — the halo copies a distributed
    // SpMV would ship for this vertex. Reused per-thread scratch; the
    // count is a pure function of (graph, part), so reuse cannot affect
    // the result.
    static thread_local std::vector<ordinal_t> remote;
    remote.clear();
    for (ordinal_t u : g.graph.row(v)) {
      const ordinal_t pu = part[static_cast<std::size_t>(u)];
      if (pu != pv) remote.push_back(pu);
    }
    std::sort(remote.begin(), remote.end());
    return static_cast<std::int64_t>(
        std::unique(remote.begin(), remote.end()) - remote.begin());
  });

  // Part weights: a serial histogram (k is small; determinism is free).
  std::vector<std::int64_t> weight(static_cast<std::size_t>(k), 0);
  std::int64_t total = 0;
  for (ordinal_t v = 0; v < n; ++v) {
    const ordinal_t w = g.vertex_weight[static_cast<std::size_t>(v)];
    weight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] += w;
    total += w;
  }
  r.max_part_weight = *std::max_element(weight.begin(), weight.end());
  r.min_part_weight = *std::min_element(weight.begin(), weight.end());
  for (std::int64_t w : weight) r.empty_parts += w == 0;
  const double ideal = static_cast<double>(total) / k;
  r.imbalance = ideal > 0 ? static_cast<double>(r.max_part_weight) / ideal - 1.0 : 0.0;
  return r;
}

QualityReport evaluate_partition(graph::GraphView g, std::span<const ordinal_t> part,
                                 ordinal_t k) {
  return evaluate_partition(WeightedGraph::unit(g), part, k);
}

}  // namespace parmis::partition
