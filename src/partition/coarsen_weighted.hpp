#pragma once
/// \file coarsen_weighted.hpp
/// \brief Weighted coarsening for multilevel partitioning — now a thin
/// re-export of the shared multilevel layer.
///
/// `WeightedGraph` and `coarsen_weighted` moved to
/// `multilevel/weighted.hpp` when the multilevel `Builder` unified the
/// three level loops (coarsening, partitioning, AMG); every partition-side
/// consumer keeps compiling against the `parmis::partition` names below.
/// Heavy-edge matching stays here: the algorithm itself lives in core
/// (`CoarsenHandle::aggregate_hem`, registry name "hem") and this wrapper
/// only keeps the historical `Matching`-shaped API.

#include <vector>

#include "core/aggregation.hpp"
#include "graph/crs.hpp"
#include "multilevel/weighted.hpp"

namespace parmis::partition {

using multilevel::WeightedGraph;
using multilevel::coarsen_weighted;

/// Heavy-edge matching: greedily match each unmatched vertex to its
/// unmatched neighbor with the heaviest edge (ties: smaller id), visiting
/// vertices in hashed order. Unmatched leftovers become singletons.
/// Returns labels into [0, num_coarse) plus the coarse count — roughly a
/// 2x reduction per level. Serial (the classical formulation).
struct Matching {
  std::vector<ordinal_t> labels;
  ordinal_t num_coarse{0};
};

[[nodiscard]] Matching heavy_edge_matching(const WeightedGraph& g, std::uint64_t seed);

}  // namespace parmis::partition
