#pragma once
/// \file coarsen_weighted.hpp
/// \brief Weighted coarsening for multilevel partitioning.
///
/// Multilevel partitioners (paper §II: Gilbert et al., IPDPS 2021) need
/// coarse graphs that remember how much fine material they stand for:
/// vertex weights (aggregate sizes) so balance is preserved, and edge
/// weights (number of collapsed fine edges) so coarse edge cuts equal fine
/// edge cuts. Two coarsening schemes are provided:
///  - MIS-2 aggregation (Algorithm 3 / Algorithm 2 of the paper), and
///  - heavy-edge matching (HEM), the traditional multilevel scheme the
///    paper's §II cites as the comparison point.

#include <vector>

#include "core/aggregation.hpp"
#include "graph/crs.hpp"

namespace parmis::partition {

/// A graph with per-vertex and per-entry (edge) integer weights. The edge
/// weight array parallels `graph.entries`.
struct WeightedGraph {
  graph::CrsGraph graph;
  std::vector<ordinal_t> vertex_weight;
  std::vector<ordinal_t> edge_weight;

  [[nodiscard]] std::int64_t total_vertex_weight() const {
    std::int64_t total = 0;
    for (ordinal_t w : vertex_weight) total += w;
    return total;
  }

  /// Unit-weight wrapper around an unweighted graph.
  [[nodiscard]] static WeightedGraph unit(graph::CrsGraph g);

  /// Unit-weight deep copy of a structure view. Safe on default-constructed
  /// (null) views: returns an empty weighted graph.
  [[nodiscard]] static WeightedGraph unit(graph::GraphView g);
};

/// Quotient of `fine` under `labels` (an aggregation/matching assignment
/// into [0, num_coarse)): vertex weights sum, parallel edges collapse with
/// summed weights. Deterministic; rows sorted.
[[nodiscard]] WeightedGraph coarsen_weighted(const WeightedGraph& fine,
                                             const std::vector<ordinal_t>& labels,
                                             ordinal_t num_coarse);

/// Heavy-edge matching: greedily match each unmatched vertex to its
/// unmatched neighbor with the heaviest edge (ties: smaller id), visiting
/// vertices in hashed order. Unmatched leftovers become singletons.
/// Returns labels into [0, num_coarse) plus the coarse count — roughly a
/// 2x reduction per level. Serial (the classical formulation).
struct Matching {
  std::vector<ordinal_t> labels;
  ordinal_t num_coarse{0};
};

[[nodiscard]] Matching heavy_edge_matching(const WeightedGraph& g, std::uint64_t seed);

}  // namespace parmis::partition
