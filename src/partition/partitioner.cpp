#include "partition/partitioner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "core/aggregation.hpp"
#include "core/coarsener.hpp"
#include "graph/ops.hpp"
#include "graph/traversal.hpp"
#include "multilevel/builder.hpp"
#include "obs/trace.hpp"
#include "random/hash.hpp"
#include "resilience/fault.hpp"

namespace parmis::partition {

namespace {

/// Per-side weights of a bisection.
struct SideWeights {
  std::int64_t w[2]{0, 0};
};

SideWeights side_weights(const WeightedGraph& g, std::span<const char> side) {
  SideWeights sw;
  for (ordinal_t v = 0; v < g.graph.num_rows; ++v) {
    sw.w[static_cast<int>(side[static_cast<std::size_t>(v)])] +=
        g.vertex_weight[static_cast<std::size_t>(v)];
  }
  return sw;
}

/// Weighted gain of moving v to the other side: (cut edges removed) −
/// (cut edges created).
std::int64_t move_gain(const WeightedGraph& g, std::span<const char> side, ordinal_t v) {
  const char s = side[static_cast<std::size_t>(v)];
  std::int64_t gain = 0;
  for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
    const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
    const std::int64_t w = g.edge_weight[static_cast<std::size_t>(j)];
    gain += side[static_cast<std::size_t>(u)] != s ? w : -w;
  }
  return gain;
}

/// Internal bisection with an arbitrary target fraction for side 0.
Bisection grow_bisection_frac(const WeightedGraph& g, double target_fraction,
                              std::uint64_t seed) {
  const ordinal_t n = g.graph.num_rows;
  Bisection b;
  b.side.assign(static_cast<std::size_t>(n), 1);
  if (n == 0) return b;

  const std::int64_t total = g.total_vertex_weight();
  const std::int64_t target =
      static_cast<std::int64_t>(std::llround(target_fraction * static_cast<double>(total)));

  // BFS-grow side 0 from a pseudo-peripheral seed; jump to a fresh seed if
  // a whole component is consumed before the target weight is reached.
  std::int64_t grown = 0;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<ordinal_t> queue;
  ordinal_t scan = 0;
  const ordinal_t first =
      graph::pseudo_peripheral_vertex(g.graph, static_cast<ordinal_t>(
          rng::hash_xorshift_star(seed, 0) % static_cast<std::uint64_t>(n)));
  queue.push_back(first);
  visited[static_cast<std::size_t>(first)] = 1;
  std::size_t head = 0;
  while (grown < target) {
    if (head == queue.size()) {
      // Find the next unvisited vertex (new component).
      while (scan < n && visited[static_cast<std::size_t>(scan)]) ++scan;
      if (scan == n) break;
      visited[static_cast<std::size_t>(scan)] = 1;
      queue.push_back(scan);
    }
    const ordinal_t v = queue[head++];
    b.side[static_cast<std::size_t>(v)] = 0;
    grown += g.vertex_weight[static_cast<std::size_t>(v)];
    for (ordinal_t u : g.graph.row(v)) {
      if (!visited[static_cast<std::size_t>(u)]) {
        visited[static_cast<std::size_t>(u)] = 1;
        queue.push_back(u);
      }
    }
  }
  b.cut_weight = cut_weight(g, b.side);
  return b;
}

/// Greedy boundary refinement toward per-side weight caps.
std::int64_t refine_frac(const WeightedGraph& g, Bisection& b, int passes,
                         double target_fraction, double tolerance) {
  obs::Span span("partition.refine");
  const ordinal_t n = g.graph.num_rows;
  span.arg("rows", n);
  const std::int64_t total = g.total_vertex_weight();
  const double ideal[2] = {target_fraction * static_cast<double>(total),
                           (1.0 - target_fraction) * static_cast<double>(total)};
  SideWeights sw = side_weights(g, b.side);

  auto overflow = [&](const SideWeights& w) {
    double over = 0;
    for (int s = 0; s < 2; ++s) {
      over += std::max(0.0, static_cast<double>(w.w[s]) - ideal[s] * (1.0 + tolerance));
    }
    return over;
  };

  std::int64_t moved_total = 0;
  std::vector<std::pair<std::int64_t, ordinal_t>> candidates;
  for (int pass = 0; pass < passes; ++pass) {
    // Collect boundary vertices with non-negative gain, best gain first
    // (ties by id: deterministic).
    candidates.clear();
    for (ordinal_t v = 0; v < n; ++v) {
      const std::int64_t gain = move_gain(g, b.side, v);
      if (gain >= 0) candidates.emplace_back(-gain, v);
    }
    std::sort(candidates.begin(), candidates.end());

    std::int64_t moved = 0;
    for (const auto& [neg_gain, v] : candidates) {
      // Re-evaluate: earlier moves in this pass may have changed the gain.
      const std::int64_t gain = move_gain(g, b.side, v);
      if (gain < 0) continue;
      const char s = b.side[static_cast<std::size_t>(v)];
      SideWeights next = sw;
      next.w[static_cast<int>(s)] -= g.vertex_weight[static_cast<std::size_t>(v)];
      next.w[1 - static_cast<int>(s)] += g.vertex_weight[static_cast<std::size_t>(v)];
      const bool balance_ok = overflow(next) <= overflow(sw);
      // Zero-gain moves are allowed only when they strictly improve
      // balance; positive-gain moves only when they don't worsen it.
      if (gain == 0 && overflow(next) >= overflow(sw)) continue;
      if (!balance_ok) continue;
      b.side[static_cast<std::size_t>(v)] = static_cast<char>(1 - s);
      sw = next;
      b.cut_weight -= gain;
      ++moved;
    }
    moved_total += moved;
    if (moved == 0) break;
  }
  span.arg("moved", moved_total);
  assert(b.cut_weight == cut_weight(g, b.side));
  return moved_total;
}

/// Registry name for the options' coarsening scheme: the explicit
/// `coarsener` string when set, the enum mapping otherwise.
const std::string& coarsener_name(const PartitionOptions& opts) {
  static const std::string mis2_name = "mis2";
  static const std::string hem_name = "hem";
  if (!opts.coarsener.empty()) return opts.coarsener;
  return opts.coarsening == CoarseningScheme::HeavyEdgeMatching ? hem_name : mis2_name;
}

/// Builder configuration for the options' multilevel V-cycle: coarsen to
/// `coarse_target`, stop only on a full stall (the historical guard), and
/// derive fresh per-level seeds so successive levels decorrelate.
multilevel::Options builder_options(const PartitionOptions& opts) {
  multilevel::Options mo;
  mo.coarsener = coarsener_name(opts);
  mo.max_levels = opts.max_levels;
  mo.min_coarse_size = opts.coarse_target;
  mo.rate_floor = 1.0;
  mo.mis2 = opts.mis2;
  mo.seed = opts.seed;
  mo.reseed_per_level = true;
  return mo;
}

Bisection multilevel_bisect_frac(const WeightedGraph& fine, double target_fraction,
                                 const PartitionOptions& opts,
                                 const multilevel::Builder& builder,
                                 multilevel::HierarchyHandle& mh) {
  obs::Span span("partition.bisect");
  span.arg("rows", fine.graph.num_rows);
  if (PARMIS_FAULT_POINT("partition.bisect_fail")) {
    throw std::runtime_error("injected fault: multilevel bisection failed");
  }
  // Coarsen all the way down through the unified Builder (one weighted
  // hierarchy per bisection; aggregation scratch, contraction maps, and
  // level storage are all reused across the recursive-bisection tree),
  // bisect the coarsest level, then project back up refining the boundary
  // at every level.
  const std::vector<multilevel::Step>& steps = builder.build_weighted(fine, mh);

  const WeightedGraph& coarsest = steps.empty() ? fine : steps.back().coarse;
  Bisection b = grow_bisection_frac(coarsest, target_fraction, opts.seed);
  refine_frac(coarsest, b, opts.refine_passes, target_fraction, opts.imbalance_tolerance);

  for (std::size_t l = steps.size(); l-- > 0;) {
    const WeightedGraph& fg = l == 0 ? fine : steps[l - 1].coarse;
    const std::vector<ordinal_t>& labels = steps[l].aggregation.labels;
    Bisection up;
    up.side.resize(static_cast<std::size_t>(fg.graph.num_rows));
    for (ordinal_t v = 0; v < fg.graph.num_rows; ++v) {
      up.side[static_cast<std::size_t>(v)] =
          b.side[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])];
    }
    up.cut_weight = cut_weight(fg, up.side);
    refine_frac(fg, up, opts.refine_passes, target_fraction, opts.imbalance_tolerance);
    b = std::move(up);
  }
  return b;
}

void partition_recursive(const WeightedGraph& g, std::span<const ordinal_t> to_parent,
                         ordinal_t k, ordinal_t part_offset, const PartitionOptions& opts,
                         const multilevel::Builder& builder, multilevel::HierarchyHandle& mh,
                         std::vector<ordinal_t>& out) {
  if (k == 1) {
    for (ordinal_t v = 0; v < g.graph.num_rows; ++v) {
      out[static_cast<std::size_t>(to_parent[static_cast<std::size_t>(v)])] = part_offset;
    }
    return;
  }
  const ordinal_t k0 = k / 2;
  const double frac = static_cast<double>(k0) / static_cast<double>(k);
  const Bisection b = multilevel_bisect_frac(g, frac, opts, builder, mh);

  // Split into the two induced weighted subgraphs and recurse.
  for (int s = 0; s < 2; ++s) {
    std::vector<char> keep(static_cast<std::size_t>(g.graph.num_rows));
    for (ordinal_t v = 0; v < g.graph.num_rows; ++v) {
      keep[static_cast<std::size_t>(v)] = b.side[static_cast<std::size_t>(v)] == s;
    }
    const graph::InducedSubgraph sub = graph::induced_subgraph(g.graph, keep);
    WeightedGraph sg;
    sg.graph = sub.graph;
    sg.vertex_weight.resize(static_cast<std::size_t>(sub.graph.num_rows));
    sg.edge_weight.assign(static_cast<std::size_t>(sub.graph.num_entries()), 1);
    // Edge weights of the induced subgraph: match entries by position.
    for (ordinal_t sv = 0; sv < sub.graph.num_rows; ++sv) {
      const ordinal_t v = sub.to_original[static_cast<std::size_t>(sv)];
      sg.vertex_weight[static_cast<std::size_t>(sv)] =
          g.vertex_weight[static_cast<std::size_t>(v)];
      offset_t so = sub.graph.row_map[sv];
      for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
        const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
        if (keep[static_cast<std::size_t>(u)]) {
          sg.edge_weight[static_cast<std::size_t>(so++)] =
              g.edge_weight[static_cast<std::size_t>(j)];
        }
      }
    }
    std::vector<ordinal_t> sub_to_parent(static_cast<std::size_t>(sub.graph.num_rows));
    for (ordinal_t sv = 0; sv < sub.graph.num_rows; ++sv) {
      sub_to_parent[static_cast<std::size_t>(sv)] =
          to_parent[static_cast<std::size_t>(sub.to_original[static_cast<std::size_t>(sv)])];
    }
    partition_recursive(sg, sub_to_parent, s == 0 ? k0 : k - k0,
                        s == 0 ? part_offset : part_offset + k0, opts, builder, mh, out);
  }
}

}  // namespace

std::int64_t cut_weight(const WeightedGraph& g, std::span<const char> side) {
  std::int64_t cut = 0;
  for (ordinal_t v = 0; v < g.graph.num_rows; ++v) {
    for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
      const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
      if (side[static_cast<std::size_t>(u)] != side[static_cast<std::size_t>(v)]) {
        cut += g.edge_weight[static_cast<std::size_t>(j)];
      }
    }
  }
  return cut / 2;
}

std::int64_t edge_cut(graph::GraphView g, std::span<const ordinal_t> part) {
  std::int64_t cut = 0;
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    for (ordinal_t u : g.row(v)) {
      if (part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)]) ++cut;
    }
  }
  return cut / 2;
}

double imbalance(std::span<const ordinal_t> part, ordinal_t k) {
  if (part.empty() || k <= 0) return 0;
  std::vector<std::int64_t> weight(static_cast<std::size_t>(k), 0);
  for (ordinal_t p : part) ++weight[static_cast<std::size_t>(p)];
  const std::int64_t max_w = *std::max_element(weight.begin(), weight.end());
  const double ideal = static_cast<double>(part.size()) / k;
  return static_cast<double>(max_w) / ideal - 1.0;
}

Bisection grow_bisection(const WeightedGraph& g, std::uint64_t seed) {
  return grow_bisection_frac(g, 0.5, seed);
}

std::int64_t refine_bisection(const WeightedGraph& g, Bisection& b, int passes,
                              double imbalance_tolerance) {
  return refine_frac(g, b, passes, 0.5, imbalance_tolerance);
}

Bisection multilevel_bisect(const WeightedGraph& g, const PartitionOptions& opts) {
  const multilevel::Builder builder(builder_options(opts));
  multilevel::HierarchyHandle mh;
  return multilevel_bisect_frac(g, 0.5, opts, builder, mh);
}

std::int64_t cut_weight_kway(const WeightedGraph& g, std::span<const ordinal_t> part) {
  std::int64_t cut = 0;
  for (ordinal_t v = 0; v < g.graph.num_rows; ++v) {
    for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
      const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
      if (part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)]) {
        cut += g.edge_weight[static_cast<std::size_t>(j)];
      }
    }
  }
  return cut / 2;
}

double imbalance_weighted(const WeightedGraph& g, std::span<const ordinal_t> part, ordinal_t k) {
  if (part.empty() || k <= 0) return 0;
  std::vector<std::int64_t> weight(static_cast<std::size_t>(k), 0);
  for (ordinal_t v = 0; v < g.graph.num_rows; ++v) {
    weight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.vertex_weight[static_cast<std::size_t>(v)];
  }
  const std::int64_t max_w = *std::max_element(weight.begin(), weight.end());
  const double ideal = static_cast<double>(g.total_vertex_weight()) / k;
  return ideal > 0 ? static_cast<double>(max_w) / ideal - 1.0 : 0.0;
}

std::vector<ordinal_t> partition_labels_weighted(const WeightedGraph& g, ordinal_t k,
                                                 const PartitionOptions& opts) {
  if (k < 1) throw std::invalid_argument("partition_labels_weighted: k must be >= 1");
  std::vector<ordinal_t> part(static_cast<std::size_t>(g.graph.num_rows), 0);
  if (g.graph.num_rows == 0 || k == 1) return part;

  std::vector<ordinal_t> identity(static_cast<std::size_t>(g.graph.num_rows));
  std::iota(identity.begin(), identity.end(), 0);
  // One Builder + one hierarchy handle for the whole recursive-bisection
  // tree: aggregation scratch, contraction maps, and per-level hierarchy
  // storage are reused across every level of every bisection.
  const multilevel::Builder builder(builder_options(opts));
  multilevel::HierarchyHandle mh;
  partition_recursive(g, identity, k, 0, opts, builder, mh, part);
  return part;
}

Partition partition_weighted(const WeightedGraph& g, ordinal_t k, const PartitionOptions& opts) {
  Partition p;
  p.k = k;
  p.part = partition_labels_weighted(g, k, opts);
  p.edge_cut = cut_weight_kway(g, p.part);
  p.imbalance = imbalance_weighted(g, p.part, k);
  return p;
}

Partition partition_graph(graph::GraphView g, ordinal_t k, const PartitionOptions& opts) {
  // With unit weights the weighted cut and imbalance coincide with the
  // unweighted definitions this entry point has always reported.
  return partition_weighted(WeightedGraph::unit(g), k, opts);
}

}  // namespace parmis::partition
