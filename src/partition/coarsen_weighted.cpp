#include "partition/coarsen_weighted.hpp"

#include "core/aggregation.hpp"

namespace parmis::partition {

Matching heavy_edge_matching(const WeightedGraph& g, std::uint64_t seed) {
  // The algorithm lives in core (CoarsenHandle::aggregate_hem, registry
  // name "hem"); this wrapper keeps the historical Matching-shaped API.
  core::CoarsenHandle handle;
  handle.aggregate_hem(g.graph, g.edge_weight, seed);
  core::Aggregation agg = handle.take_aggregation();
  Matching m;
  m.num_coarse = agg.num_aggregates;
  m.labels = std::move(agg.labels);
  return m;
}

}  // namespace parmis::partition
