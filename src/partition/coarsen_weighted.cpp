#include "partition/coarsen_weighted.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/parallel_for.hpp"

namespace parmis::partition {

WeightedGraph WeightedGraph::unit(graph::CrsGraph g) {
  WeightedGraph w;
  w.vertex_weight.assign(static_cast<std::size_t>(g.num_rows), 1);
  w.edge_weight.assign(static_cast<std::size_t>(g.num_entries()), 1);
  w.graph = std::move(g);
  return w;
}

WeightedGraph WeightedGraph::unit(graph::GraphView g) {
  if (g.num_rows == 0) return unit(graph::CrsGraph{});
  return unit(graph::CrsGraph{
      g.num_rows, g.num_cols,
      std::vector<offset_t>(g.row_map, g.row_map + g.num_rows + 1),
      std::vector<ordinal_t>(g.entries, g.entries + g.num_entries())});
}

WeightedGraph coarsen_weighted(const WeightedGraph& fine, const std::vector<ordinal_t>& labels,
                               ordinal_t num_coarse) {
  const graph::GraphView g = fine.graph;
  assert(labels.size() == static_cast<std::size_t>(g.num_rows));

  // Member lists (counting sort), as in core::aggregate_members.
  std::vector<offset_t> mstart(static_cast<std::size_t>(num_coarse) + 1, 0);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    assert(labels[static_cast<std::size_t>(v)] >= 0 &&
           labels[static_cast<std::size_t>(v)] < num_coarse);
    ++mstart[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)]) + 1];
  }
  for (ordinal_t a = 0; a < num_coarse; ++a) {
    mstart[static_cast<std::size_t>(a) + 1] += mstart[static_cast<std::size_t>(a)];
  }
  std::vector<ordinal_t> members(static_cast<std::size_t>(g.num_rows));
  {
    std::vector<offset_t> cursor(mstart.begin(), mstart.end() - 1);
    for (ordinal_t v = 0; v < g.num_rows; ++v) {
      members[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])]++)] = v;
    }
  }

  WeightedGraph coarse;
  coarse.graph.num_rows = num_coarse;
  coarse.graph.num_cols = num_coarse;
  coarse.graph.row_map.assign(static_cast<std::size_t>(num_coarse) + 1, 0);
  coarse.vertex_weight.assign(static_cast<std::size_t>(num_coarse), 0);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    coarse.vertex_weight[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])] +=
        fine.vertex_weight[static_cast<std::size_t>(v)];
  }

  // Per-coarse-row accumulation with a stamp/accumulator pair (same
  // pattern as SpGEMM); summed weights, sorted columns.
  struct Workspace {
    std::vector<std::uint64_t> stamp_of;
    std::vector<std::int64_t> acc;
    std::vector<ordinal_t> touched;
    std::uint64_t stamp{0};
    void ensure(ordinal_t n) {
      if (stamp_of.size() < static_cast<std::size_t>(n)) {
        stamp_of.assign(static_cast<std::size_t>(n), 0);
        acc.assign(static_cast<std::size_t>(n), 0);
        stamp = 0;
      }
    }
  };
  thread_local Workspace ws;

  auto collect = [&](ordinal_t a) {
    ws.ensure(num_coarse);
    ++ws.stamp;
    ws.touched.clear();
    for (offset_t mi = mstart[static_cast<std::size_t>(a)];
         mi < mstart[static_cast<std::size_t>(a) + 1]; ++mi) {
      const ordinal_t v = members[static_cast<std::size_t>(mi)];
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        const ordinal_t b = labels[static_cast<std::size_t>(g.entries[j])];
        if (b == a) continue;
        const std::int64_t w = fine.edge_weight[static_cast<std::size_t>(j)];
        if (ws.stamp_of[static_cast<std::size_t>(b)] != ws.stamp) {
          ws.stamp_of[static_cast<std::size_t>(b)] = ws.stamp;
          ws.acc[static_cast<std::size_t>(b)] = w;
          ws.touched.push_back(b);
        } else {
          ws.acc[static_cast<std::size_t>(b)] += w;
        }
      }
    }
  };

  par::parallel_for(num_coarse, [&](ordinal_t a) {
    collect(a);
    coarse.graph.row_map[static_cast<std::size_t>(a) + 1] =
        static_cast<offset_t>(ws.touched.size());
  });
  for (ordinal_t a = 0; a < num_coarse; ++a) {
    coarse.graph.row_map[static_cast<std::size_t>(a) + 1] +=
        coarse.graph.row_map[static_cast<std::size_t>(a)];
  }
  coarse.graph.entries.resize(static_cast<std::size_t>(coarse.graph.row_map.back()));
  coarse.edge_weight.resize(static_cast<std::size_t>(coarse.graph.row_map.back()));
  par::parallel_for(num_coarse, [&](ordinal_t a) {
    collect(a);
    std::sort(ws.touched.begin(), ws.touched.end());
    offset_t o = coarse.graph.row_map[a];
    for (ordinal_t b : ws.touched) {
      coarse.graph.entries[static_cast<std::size_t>(o)] = b;
      coarse.edge_weight[static_cast<std::size_t>(o)] =
          static_cast<ordinal_t>(ws.acc[static_cast<std::size_t>(b)]);
      ++o;
    }
  });
  return coarse;
}

Matching heavy_edge_matching(const WeightedGraph& g, std::uint64_t seed) {
  // The algorithm lives in core (CoarsenHandle::aggregate_hem, registry
  // name "hem"); this wrapper keeps the historical Matching-shaped API.
  core::CoarsenHandle handle;
  handle.aggregate_hem(g.graph, g.edge_weight, seed);
  core::Aggregation agg = handle.take_aggregation();
  Matching m;
  m.num_coarse = agg.num_aggregates;
  m.labels = std::move(agg.labels);
  return m;
}

}  // namespace parmis::partition
