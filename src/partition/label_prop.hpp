#pragma once
/// \file label_prop.hpp
/// \brief BFS-region-growing k-way partitioner with label-propagation
/// refinement.
///
/// Grow k regions simultaneously from well-separated seeds (farthest-point
/// sampling over BFS distances, the k-center heuristic), then let the
/// boundary settle with capacity-aware label propagation. Propagation is
/// the workhorse of modern size-constrained clustering/partitioning
/// schemes (Meyerhenke, Sanders, Schulz — see PAPERS.md "Scalable Graph
/// Algorithms"); here it doubles as the refinement stage.
///
/// Every round is Jacobi-style: proposals are computed in parallel from a
/// snapshot of the previous round's labels, then committed serially in
/// vertex order — bit-identical results on every backend and thread count.

#include <vector>

#include "partition/coarsen_weighted.hpp"
#include "partition/partitioner.hpp"

namespace parmis::partition {

/// BFS-region-growing + label-propagation partition of `g` into `k` parts.
/// `opts.seed` seeds the farthest-point sampling; `opts.refine_passes`
/// bounds the propagation refinement rounds; capacity is
/// (1 + opts.imbalance_tolerance) * ideal part weight.
[[nodiscard]] std::vector<ordinal_t> lp_grow_partition(const WeightedGraph& g, ordinal_t k,
                                                       const PartitionOptions& opts);

}  // namespace parmis::partition
