#include "partition/label_prop.hpp"

#include <algorithm>
#include <cmath>

#include "graph/traversal.hpp"
#include "obs/trace.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "partition/part_loads.hpp"
#include "random/hash.hpp"

namespace parmis::partition {

using detail::argmin_load;

namespace {

/// Farthest-point (k-center) seed sampling over BFS hop distances. Seeds
/// land in distinct components first (unreachable counts as infinitely
/// far), then spread within components. Parallel and deterministic: the
/// k BFS sweeps run through the level-synchronous parallel BFS with one
/// reused workspace, the farthest-vertex argmax is a deterministic chunked
/// reduction (ties to the smallest id, matching the serial scan), and the
/// running-minimum distance merge is an own-slot parallel loop.
std::vector<ordinal_t> sample_seeds(const graph::CrsGraph& g, ordinal_t k, std::uint64_t seed) {
  const ordinal_t n = g.num_rows;
  auto far = [](ordinal_t d) { return d == invalid_ordinal ? max_ordinal : d; };

  std::vector<ordinal_t> seeds;
  seeds.reserve(static_cast<std::size_t>(k));
  const ordinal_t first = graph::pseudo_peripheral_vertex(
      g, static_cast<ordinal_t>(rng::hash_xorshift_star(seed, 0) %
                                static_cast<std::uint64_t>(n)));
  seeds.push_back(first);

  graph::BfsWorkspace bfs_ws;
  std::vector<ordinal_t> dist;
  std::vector<ordinal_t> nd;
  graph::bfs_distances_into(g, first, dist, bfs_ws);
  while (static_cast<ordinal_t>(seeds.size()) < k) {
    // Deterministic parallel argmax of far(dist): strictly-greater join
    // keeps the smallest index on ties, exactly like the serial scan.
    using FarthestCandidate = std::pair<ordinal_t, ordinal_t>;  // (far distance, vertex)
    const FarthestCandidate next = par::parallel_reduce<FarthestCandidate>(
        n,
        [&](ordinal_t v) {
          return FarthestCandidate{far(dist[static_cast<std::size_t>(v)]), v};
        },
        [](const FarthestCandidate& a, const FarthestCandidate& b) {
          return b.first > a.first ? b : a;
        },
        FarthestCandidate{-1, 0});
    seeds.push_back(next.second);
    graph::bfs_distances_into(g, next.second, nd, bfs_ws);
    par::parallel_for(n, [&](ordinal_t v) {
      dist[static_cast<std::size_t>(v)] =
          std::min(far(dist[static_cast<std::size_t>(v)]), far(nd[static_cast<std::size_t>(v)]));
    });
  }
  return seeds;
}

}  // namespace

std::vector<ordinal_t> lp_grow_partition(const WeightedGraph& g, ordinal_t k,
                                         const PartitionOptions& opts) {
  const ordinal_t n = g.graph.num_rows;
  std::vector<ordinal_t> part(static_cast<std::size_t>(n), 0);
  if (n == 0 || k <= 1) return part;
  std::fill(part.begin(), part.end(), invalid_ordinal);

  const std::int64_t total = g.total_vertex_weight();
  const std::int64_t capacity = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround((1.0 + opts.imbalance_tolerance) * static_cast<double>(total) / k)));

  std::vector<std::int64_t> load(static_cast<std::size_t>(k), 0);
  const std::vector<ordinal_t> seeds = sample_seeds(g.graph, std::min(k, n), opts.seed);
  for (ordinal_t i = 0; i < static_cast<ordinal_t>(seeds.size()); ++i) {
    const ordinal_t s = seeds[static_cast<std::size_t>(i)];
    part[static_cast<std::size_t>(s)] = i;
    load[static_cast<std::size_t>(i)] += g.vertex_weight[static_cast<std::size_t>(s)];
  }

  // --- synchronous region growth. Each round proposes labels for the
  // unassigned frontier in parallel from the previous round's snapshot,
  // then commits serially in vertex order.
  // The proposal sweeps walk each vertex's neighbor row: degree-shaped
  // work, so they chunk by the row_map cost prefix under EdgeBalanced.
  std::vector<ordinal_t> proposal(static_cast<std::size_t>(n));
  for (;;) {
    obs::Span round("partition.lp_round");
    par::balanced_for(n, g.graph.row_map.data(), [&](ordinal_t v) {
      proposal[static_cast<std::size_t>(v)] = invalid_ordinal;
      if (part[static_cast<std::size_t>(v)] != invalid_ordinal) return;
      // Reused per-thread scratch; proposals are pure functions of the
      // snapshot, so scratch reuse cannot affect the result.
      static thread_local std::vector<std::int64_t> affinity;
      affinity.assign(static_cast<std::size_t>(k), 0);
      bool labeled_neighbor = false;
      for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
        const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
        const ordinal_t pu = part[static_cast<std::size_t>(u)];
        if (pu == invalid_ordinal) continue;
        labeled_neighbor = true;
        affinity[static_cast<std::size_t>(pu)] += g.edge_weight[static_cast<std::size_t>(j)];
      }
      if (!labeled_neighbor) return;
      // Best under-capacity part by affinity; ties to the lighter part,
      // then the smaller id (implicit in the ascending scan).
      ordinal_t best = invalid_ordinal;
      for (ordinal_t p = 0; p < k; ++p) {
        if (affinity[static_cast<std::size_t>(p)] == 0) continue;
        if (load[static_cast<std::size_t>(p)] >= capacity) continue;
        if (best == invalid_ordinal ||
            affinity[static_cast<std::size_t>(p)] > affinity[static_cast<std::size_t>(best)] ||
            (affinity[static_cast<std::size_t>(p)] == affinity[static_cast<std::size_t>(best)] &&
             load[static_cast<std::size_t>(p)] < load[static_cast<std::size_t>(best)])) {
          best = p;
        }
      }
      if (best == invalid_ordinal) {
        // Every adjacent part is at capacity: overflow into the lightest
        // adjacent one so the frontier never wedges; refinement and the
        // capacity check below pull the balance back.
        for (ordinal_t p = 0; p < k; ++p) {
          if (affinity[static_cast<std::size_t>(p)] == 0) continue;
          if (best == invalid_ordinal ||
              load[static_cast<std::size_t>(p)] < load[static_cast<std::size_t>(best)]) {
            best = p;
          }
        }
      }
      proposal[static_cast<std::size_t>(v)] = best;
    });

    bool progress = false;
    for (ordinal_t v = 0; v < n; ++v) {
      const ordinal_t p = proposal[static_cast<std::size_t>(v)];
      if (p == invalid_ordinal || part[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
      part[static_cast<std::size_t>(v)] = p;
      load[static_cast<std::size_t>(p)] += g.vertex_weight[static_cast<std::size_t>(v)];
      progress = true;
    }
    if (!progress) break;
  }

  // Leftovers (vertices in components that hold no seed): lightest part.
  for (ordinal_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] != invalid_ordinal) continue;
    const ordinal_t p = argmin_load(load);
    part[static_cast<std::size_t>(v)] = p;
    load[static_cast<std::size_t>(p)] += g.vertex_weight[static_cast<std::size_t>(v)];
  }

  // --- rebalance. The growth overflow rule can leave parts well over
  // capacity (a region wedged between capped neighbors dumps its whole
  // interior into one part). Overloaded parts shed boundary vertices to
  // their most-connected under-capacity neighbor part; if an overloaded
  // part has no under-capacity neighbor at all, vertices fall back to the
  // globally lightest part. Serial sweeps in vertex order: deterministic.
  {
    std::vector<std::int64_t> affinity(static_cast<std::size_t>(k), 0);
    for (int sweep = 0; sweep < 64; ++sweep) {
      bool overloaded = false;
      for (std::int64_t l : load) overloaded |= l > capacity;
      if (!overloaded) break;
      std::int64_t moved = 0;
      for (ordinal_t v = 0; v < n; ++v) {
        const ordinal_t cur = part[static_cast<std::size_t>(v)];
        if (load[static_cast<std::size_t>(cur)] <= capacity) continue;
        const std::int64_t wv = g.vertex_weight[static_cast<std::size_t>(v)];
        std::fill(affinity.begin(), affinity.end(), 0);
        for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
          const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
          affinity[static_cast<std::size_t>(part[static_cast<std::size_t>(u)])] +=
              g.edge_weight[static_cast<std::size_t>(j)];
        }
        ordinal_t best = invalid_ordinal;
        for (ordinal_t p = 0; p < k; ++p) {
          if (p == cur || affinity[static_cast<std::size_t>(p)] == 0) continue;
          if (load[static_cast<std::size_t>(p)] + wv > capacity) continue;
          if (best == invalid_ordinal ||
              affinity[static_cast<std::size_t>(p)] > affinity[static_cast<std::size_t>(best)]) {
            best = p;
          }
        }
        if (best == invalid_ordinal) continue;
        part[static_cast<std::size_t>(v)] = best;
        load[static_cast<std::size_t>(cur)] -= wv;
        load[static_cast<std::size_t>(best)] += wv;
        ++moved;
      }
      if (moved == 0) {
        // No overloaded part touches an under-capacity one: teleport
        // (disconnected shed) — balance beats contiguity here.
        for (ordinal_t v = 0; v < n; ++v) {
          const ordinal_t cur = part[static_cast<std::size_t>(v)];
          if (load[static_cast<std::size_t>(cur)] <= capacity) continue;
          const std::int64_t wv = g.vertex_weight[static_cast<std::size_t>(v)];
          const ordinal_t p = argmin_load(load);
          if (p == cur || load[static_cast<std::size_t>(p)] + wv > capacity) continue;
          part[static_cast<std::size_t>(v)] = p;
          load[static_cast<std::size_t>(cur)] -= wv;
          load[static_cast<std::size_t>(p)] += wv;
        }
        break;
      }
    }
  }

  // --- capacity-aware label-propagation refinement. The parallel phase
  // only nominates candidates from the snapshot; the serial commit
  // re-evaluates each candidate against the live labeling, so the cut
  // never worsens and the result stays deterministic.
  std::vector<char> candidate(static_cast<std::size_t>(n));
  std::vector<std::int64_t> affinity(static_cast<std::size_t>(k), 0);
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    par::balanced_for(n, g.graph.row_map.data(), [&](ordinal_t v) {
      // Cheap over-approximation from the snapshot: a vertex can only gain
      // by moving if the weight it sends to other parts combined exceeds
      // what stays home. The serial commit re-checks exactly.
      const ordinal_t cur = part[static_cast<std::size_t>(v)];
      std::int64_t cur_aff = 0;
      std::int64_t other_total = 0;
      for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
        const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
        const std::int64_t w = g.edge_weight[static_cast<std::size_t>(j)];
        if (part[static_cast<std::size_t>(u)] == cur) {
          cur_aff += w;
        } else {
          other_total += w;
        }
      }
      candidate[static_cast<std::size_t>(v)] = other_total > cur_aff ? 1 : 0;
    });

    std::int64_t moved = 0;
    for (ordinal_t v = 0; v < n; ++v) {
      if (!candidate[static_cast<std::size_t>(v)]) continue;
      const ordinal_t cur = part[static_cast<std::size_t>(v)];
      std::fill(affinity.begin(), affinity.end(), 0);
      for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
        const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
        affinity[static_cast<std::size_t>(part[static_cast<std::size_t>(u)])] +=
            g.edge_weight[static_cast<std::size_t>(j)];
      }
      const std::int64_t wv = g.vertex_weight[static_cast<std::size_t>(v)];
      ordinal_t best = cur;
      for (ordinal_t p = 0; p < k; ++p) {
        if (p == cur) continue;
        if (load[static_cast<std::size_t>(p)] + wv > capacity) continue;
        if (affinity[static_cast<std::size_t>(p)] > affinity[static_cast<std::size_t>(best)]) {
          best = p;
        }
      }
      if (best != cur) {
        part[static_cast<std::size_t>(v)] = best;
        load[static_cast<std::size_t>(cur)] -= wv;
        load[static_cast<std::size_t>(best)] += wv;
        ++moved;
      }
    }
    if (moved == 0) break;
  }
  return part;
}

}  // namespace parmis::partition
