#pragma once
/// \file quality.hpp
/// \brief Partition quality metrics beyond a single edge-cut number.
///
/// Production partitioners (METIS, KaHIP, the osrm-backend partitioner
/// tool) report a vector of quality measures because different consumers
/// care about different costs: sparse solvers about edge cut, distributed
/// runtimes about communication volume and boundary size, load balancers
/// about per-part weight. `evaluate_partition` computes all of them in one
/// deterministic pass (chunked reductions, so the numbers are identical on
/// every backend and thread count).

#include <span>
#include <string>

#include "graph/crs.hpp"
#include "partition/coarsen_weighted.hpp"

namespace parmis::partition {

/// Quality measures of one k-way partition.
struct QualityReport {
  ordinal_t k{0};
  ordinal_t num_vertices{0};
  std::int64_t num_edges{0};          ///< undirected edge count of the input
  std::int64_t total_edge_weight{0};  ///< sum of undirected edge weights
  /// Sum of edge weights crossing parts, each undirected edge counted once.
  std::int64_t edge_cut{0};
  /// Total communication volume: sum over vertices of (number of distinct
  /// *other* parts adjacent to the vertex) — the count of halo copies a
  /// distributed SpMV would ship.
  std::int64_t comm_volume{0};
  /// Vertices with at least one neighbor in another part.
  std::int64_t boundary_vertices{0};
  double boundary_fraction{0.0};  ///< boundary_vertices / num_vertices
  std::int64_t max_part_weight{0};
  std::int64_t min_part_weight{0};
  ordinal_t empty_parts{0};
  /// max part weight / ideal part weight - 1 (vertex-weighted).
  double imbalance{0.0};

  /// edge_cut / total_edge_weight (0 when the graph has no edges); equals
  /// the fraction of edges cut on unit-weight graphs.
  [[nodiscard]] double cut_fraction() const;

  /// One-line JSON rendering, stable key order.
  [[nodiscard]] std::string to_json() const;
};

/// Evaluate a k-way labeling `part` (values in [0, k)) of a weighted graph.
[[nodiscard]] QualityReport evaluate_partition(const WeightedGraph& g,
                                               std::span<const ordinal_t> part, ordinal_t k);

/// Unit-weight convenience overload for plain adjacency structures.
[[nodiscard]] QualityReport evaluate_partition(graph::GraphView g,
                                               std::span<const ordinal_t> part, ordinal_t k);

}  // namespace parmis::partition
