#include "partition/interface.hpp"

#include <stdexcept>

#include "check/check.hpp"
#include "check/validate.hpp"
#include "common/timer.hpp"
#include "partition/label_prop.hpp"
#include "partition/streaming.hpp"

namespace parmis::partition {

PartitionResult Partitioner::run(const WeightedGraph& g, ordinal_t k,
                                 const PartitionOptions& opts) const {
  if (k < 1) {
    throw std::invalid_argument("partitioner '" + name() + "': k must be >= 1, got " +
                                std::to_string(k));
  }
  Timer t;
  PartitionResult r = partition(g, k, opts);
  r.seconds = t.seconds();
  r.k = k;
  if (r.part.size() != static_cast<std::size_t>(g.graph.num_rows)) {
    throw std::runtime_error("partitioner '" + name() + "' returned a labeling of wrong size");
  }
  for (ordinal_t p : r.part) {
    if (p < 0 || p >= k) {
      throw std::runtime_error("partitioner '" + name() + "' produced an out-of-range label");
    }
  }
  // Nonempty parts are a quality expectation, not a hard API guarantee, so
  // they are only asserted in check builds (and skipped on graphs with
  // fewer vertices than parts, where emptiness is forced).
  PARMIS_CHECK_OK(check::validate_partition(r.part, k, /*require_nonempty_parts=*/true));
  r.quality = evaluate_partition(g, r.part, k);
  return r;
}

namespace {

/// The existing multilevel recursive-bisection path, wrapped as the first
/// registered implementation (one entry per coarsening scheme; the scheme
/// is a core `Coarsener` registry name).
class MultilevelPartitioner final : public Partitioner {
 public:
  MultilevelPartitioner(std::string name, std::string coarsener)
      : name_(std::move(name)), coarsener_(std::move(coarsener)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] PartitionResult partition(const WeightedGraph& g, ordinal_t k,
                                          const PartitionOptions& opts) const override {
    PartitionOptions o = opts;
    o.coarsener = coarsener_;
    PartitionResult r;
    r.part = partition_labels_weighted(g, k, o);
    r.k = k;
    return r;
  }

 private:
  std::string name_;
  std::string coarsener_;
};

/// Adapter for algorithms written as free labeling functions.
class FunctionPartitioner final : public Partitioner {
 public:
  using Fn = std::vector<ordinal_t> (*)(const WeightedGraph&, ordinal_t,
                                        const PartitionOptions&);
  FunctionPartitioner(std::string name, Fn fn) : name_(std::move(name)), fn_(fn) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] PartitionResult partition(const WeightedGraph& g, ordinal_t k,
                                          const PartitionOptions& opts) const override {
    PartitionResult r;
    r.part = fn_(g, k, opts);
    r.k = k;
    return r;
  }

 private:
  std::string name_;
  Fn fn_;
};

PartitionerSpec multilevel_spec(std::string name, std::string description,
                                std::string coarsener) {
  PartitionerSpec spec;
  spec.name = name;
  spec.description = std::move(description);
  spec.make = [name, coarsener]() -> std::unique_ptr<Partitioner> {
    return std::make_unique<MultilevelPartitioner>(name, coarsener);
  };
  return spec;
}

PartitionerSpec function_spec(std::string name, std::string description,
                              FunctionPartitioner::Fn fn) {
  PartitionerSpec spec;
  spec.name = name;
  spec.description = std::move(description);
  spec.make = [name, fn]() -> std::unique_ptr<Partitioner> {
    return std::make_unique<FunctionPartitioner>(name, fn);
  };
  return spec;
}

std::vector<PartitionerSpec> make_registry() {
  std::vector<PartitionerSpec> specs;
  specs.push_back(multilevel_spec(
      "multilevel-mis2",
      "multilevel recursive bisection, MIS-2 aggregation coarsening (the paper's scheme)",
      "mis2"));
  specs.push_back(multilevel_spec(
      "multilevel-hem",
      "multilevel recursive bisection, heavy-edge-matching coarsening (classical baseline)",
      "hem"));
  specs.push_back(multilevel_spec(
      "multilevel-mis2basic",
      "multilevel recursive bisection, basic MIS-2 coarsening (Algorithm 2 ablation)",
      "mis2-basic"));
  specs.push_back(function_spec(
      "ldg", "streaming linear deterministic greedy (Stanton-Kliot), hashed stream order",
      &ldg_partition));
  specs.push_back(function_spec(
      "lp-grow", "BFS region growing from farthest-point seeds + label-propagation refinement",
      &lp_grow_partition));
  specs.push_back(function_spec(
      "block", "contiguous vertex-id blocks balanced by weight (zero-information baseline)",
      &block_partition));
  return specs;
}

}  // namespace

const std::vector<PartitionerSpec>& partitioner_registry() {
  static const std::vector<PartitionerSpec> registry = make_registry();
  return registry;
}

std::vector<std::string> partitioner_names() {
  std::vector<std::string> names;
  names.reserve(partitioner_registry().size());
  for (const PartitionerSpec& s : partitioner_registry()) names.push_back(s.name);
  return names;
}

const PartitionerSpec& find_partitioner(const std::string& name) {
  for (const PartitionerSpec& s : partitioner_registry()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown partitioner: " + name);
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  return find_partitioner(name).make();
}

}  // namespace parmis::partition
