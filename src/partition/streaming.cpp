#include "partition/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"
#include "partition/part_loads.hpp"
#include "random/hash.hpp"

namespace parmis::partition {

using detail::argmin_load;

std::vector<ordinal_t> ldg_partition(const WeightedGraph& g, ordinal_t k,
                                     const PartitionOptions& opts) {
  const ordinal_t n = g.graph.num_rows;
  std::vector<ordinal_t> part(static_cast<std::size_t>(n), 0);
  if (n == 0 || k <= 1) return part;
  std::fill(part.begin(), part.end(), invalid_ordinal);

  // Deterministic hashed stream order: a fixed pseudo-random shuffle keyed
  // by the seed, ties (hash collisions) broken by vertex id.
  std::vector<ordinal_t> order(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> key(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    order[static_cast<std::size_t>(v)] = v;
    key[static_cast<std::size_t>(v)] =
        rng::hash_xorshift_star(opts.seed, static_cast<std::uint64_t>(v));
  });
  std::sort(order.begin(), order.end(), [&](ordinal_t a, ordinal_t b) {
    const std::uint64_t ka = key[static_cast<std::size_t>(a)];
    const std::uint64_t kb = key[static_cast<std::size_t>(b)];
    return ka != kb ? ka < kb : a < b;
  });

  const std::int64_t total = g.total_vertex_weight();
  const double capacity = std::max(
      1.0, (1.0 + opts.imbalance_tolerance) * static_cast<double>(total) / k);
  const std::int64_t capacity_int = static_cast<std::int64_t>(std::llround(capacity));

  std::vector<std::int64_t> load(static_cast<std::size_t>(k), 0);
  std::vector<ordinal_t> choice(static_cast<std::size_t>(ldg_batch_size));
  std::vector<ordinal_t> prev;  // previous pass's assignment (restreams)

  for (int pass = 0; pass <= ldg_restream_passes; ++pass) {
    // Pass 0 scores against the in-progress assignment (earlier batches
    // only); restream passes score against the previous pass's complete
    // labeling, so batch scoring loses no information.
    const std::vector<ordinal_t>& reference = pass == 0 ? part : prev;
    std::fill(load.begin(), load.end(), 0);
    if (pass > 0) std::fill(part.begin(), part.end(), invalid_ordinal);

    for (ordinal_t start = 0; start < n; start += ldg_batch_size) {
      const ordinal_t end = std::min<ordinal_t>(n, start + ldg_batch_size);

      // Score the batch in parallel against a frozen snapshot: `reference`
      // holds either earlier batches (pass 0) or the whole previous pass,
      // and `load` is not updated until the serial commit below, so every
      // score is a pure function of the snapshot — identical on any
      // backend and thread count.
      par::parallel_for_range(start, end, [&](ordinal_t i) {
        const ordinal_t v = order[static_cast<std::size_t>(i)];
        // Reused per-thread scratch: the scores are pure functions of the
        // snapshot, so scratch reuse cannot affect the result.
        static thread_local std::vector<std::int64_t> affinity;
        affinity.assign(static_cast<std::size_t>(k), 0);
        for (offset_t j = g.graph.row_map[v]; j < g.graph.row_map[v + 1]; ++j) {
          const ordinal_t u = g.graph.entries[static_cast<std::size_t>(j)];
          const ordinal_t pu = reference[static_cast<std::size_t>(u)];
          if (pu != invalid_ordinal) {
            affinity[static_cast<std::size_t>(pu)] += g.edge_weight[static_cast<std::size_t>(j)];
          }
        }
        ordinal_t best = invalid_ordinal;
        double best_score = 0.0;
        for (ordinal_t p = 0; p < k; ++p) {
          const std::int64_t lp = load[static_cast<std::size_t>(p)];
          if (lp >= capacity_int) continue;
          if (affinity[static_cast<std::size_t>(p)] == 0) continue;
          const double score = static_cast<double>(affinity[static_cast<std::size_t>(p)]) *
                               (1.0 - static_cast<double>(lp) / capacity);
          // Ties: lighter part first, then smaller id (p ascending means
          // the first strict improvement wins, so both rules are implicit).
          if (best == invalid_ordinal || score > best_score ||
              (score == best_score && lp < load[static_cast<std::size_t>(best)])) {
            best = p;
            best_score = score;
          }
        }
        // No informative neighbor (or every attractive part full): defer
        // to the commit loop, which spreads by live load.
        choice[static_cast<std::size_t>(i - start)] = best;
      });

      // Serial commit in stream order; vertices without a scored choice —
      // and choices the in-batch commits have since filled — go to the
      // lightest part. Deterministic: fixed order, no dependence on how
      // the scoring loop was scheduled.
      for (ordinal_t i = start; i < end; ++i) {
        const ordinal_t v = order[static_cast<std::size_t>(i)];
        ordinal_t p = choice[static_cast<std::size_t>(i - start)];
        const std::int64_t wv = g.vertex_weight[static_cast<std::size_t>(v)];
        if (p == invalid_ordinal || load[static_cast<std::size_t>(p)] + wv > capacity_int) {
          p = argmin_load(load);
        }
        part[static_cast<std::size_t>(v)] = p;
        load[static_cast<std::size_t>(p)] += wv;
      }
    }
    prev = part;
  }
  return part;
}

std::vector<ordinal_t> block_partition(const WeightedGraph& g, ordinal_t k,
                                       const PartitionOptions& opts) {
  (void)opts;
  const ordinal_t n = g.graph.num_rows;
  std::vector<ordinal_t> part(static_cast<std::size_t>(n), 0);
  if (n == 0 || k <= 1) return part;

  // Greedy prefix cut: walk vertices in id order, advancing to the next
  // part once the running weight passes the next ideal boundary.
  const std::int64_t total = g.total_vertex_weight();
  std::int64_t prefix = 0;
  ordinal_t p = 0;
  for (ordinal_t v = 0; v < n; ++v) {
    // Boundary of part p: (p + 1) / k of the total weight.
    while (p + 1 < k &&
           prefix * static_cast<std::int64_t>(k) >= total * static_cast<std::int64_t>(p + 1)) {
      ++p;
    }
    part[static_cast<std::size_t>(v)] = p;
    prefix += g.vertex_weight[static_cast<std::size_t>(v)];
  }
  return part;
}

}  // namespace parmis::partition
