#pragma once
/// \file streaming.hpp
/// \brief Streaming vertex partitioners: linear deterministic greedy (LDG)
/// and the contiguous block baseline.
///
/// LDG (Stanton & Kliot, KDD 2012; the `ldg` algorithm of the
/// GraphPartitioners suite) assigns each vertex of a stream to the part
/// holding most of its already-placed neighbors, damped by how full that
/// part is: score(v, p) = w(N(v) ∩ p) * (1 - load(p) / capacity). No
/// coarsening — the classic cheap-and-good baseline against multilevel.
///
/// This implementation restreams (Nishimura & Ugander, KDD 2013): after
/// the first pass, each pass scores every vertex against the *previous*
/// pass's complete assignment, which both lifts quality far above a single
/// blind pass and makes parallel batch scoring exact. The stream order is
/// the deterministic hashed shuffle of `random/hash.hpp`, and batches are
/// fixed-size snapshots, so the result is bit-identical for every backend
/// and thread count (same scheme as the library's chunked reductions).

#include <vector>

#include "partition/coarsen_weighted.hpp"
#include "partition/partitioner.hpp"

namespace parmis::partition {

/// Vertices scored per parallel round. Fixed (never derived from the
/// thread count) so the snapshot boundaries — and the result — never move.
inline constexpr ordinal_t ldg_batch_size = 512;

/// Restream count: one blind pass plus this many informed passes.
inline constexpr int ldg_restream_passes = 8;

/// Restreaming linear-deterministic-greedy partition of `g` into `k`
/// parts. Stream order is the hashed vertex order seeded by `opts.seed`;
/// capacity is (1 + opts.imbalance_tolerance) * ideal part weight.
[[nodiscard]] std::vector<ordinal_t> ldg_partition(const WeightedGraph& g, ordinal_t k,
                                                   const PartitionOptions& opts);

/// Contiguous block partition balanced by vertex weight: vertex ids are cut
/// into k consecutive ranges of near-equal weight. The zero-information
/// baseline every comparison table needs — good balance, poor cut unless
/// the vertex numbering is already locality-friendly.
[[nodiscard]] std::vector<ordinal_t> block_partition(const WeightedGraph& g, ordinal_t k,
                                                     const PartitionOptions& opts);

}  // namespace parmis::partition
