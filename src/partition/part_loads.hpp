#pragma once
/// \file part_loads.hpp
/// \brief Shared load-balancing helper for the partitioning algorithms.

#include <vector>

#include "common/config.hpp"

namespace parmis::partition::detail {

/// Part with the smallest load, ties to the smaller id. The tie rule is
/// load-bearing for determinism: every algorithm that falls back to "the
/// lightest part" must break ties identically.
inline ordinal_t argmin_load(const std::vector<std::int64_t>& load) {
  ordinal_t best = 0;
  for (ordinal_t p = 1; p < static_cast<ordinal_t>(load.size()); ++p) {
    if (load[static_cast<std::size_t>(p)] < load[static_cast<std::size_t>(best)]) best = p;
  }
  return best;
}

}  // namespace parmis::partition::detail
