#pragma once
/// \file partitioner.hpp
/// \brief Multilevel graph partitioning built on MIS-2 coarsening — the
/// paper's second use case (§II cites Gilbert et al., IPDPS 2021; §VII
/// plans to replace their Bell-style coarsening with this library's).
///
/// Classic multilevel scheme: coarsen recursively (MIS-2 aggregation or
/// heavy-edge matching), bisect the coarsest graph by greedy BFS growing
/// from a pseudo-peripheral seed, then project back up refining the
/// boundary with greedy gain moves at every level. k-way partitions come
/// from recursive bisection.

#include <cstdint>
#include <string>
#include <vector>

#include "core/mis2.hpp"
#include "graph/crs.hpp"
#include "partition/coarsen_weighted.hpp"

namespace parmis::partition {

/// Coarsening scheme used inside the multilevel partitioner. Maps onto the
/// core `Coarsener` registry ("mis2" / "hem"); set
/// `PartitionOptions::coarsener` to reach any other registered scheme.
enum class CoarseningScheme {
  Mis2Aggregation,    ///< Algorithm 3 (the paper's contribution)
  HeavyEdgeMatching,  ///< classical HEM (the §II comparison point)
};

struct PartitionOptions {
  CoarseningScheme coarsening = CoarseningScheme::Mis2Aggregation;
  /// Registry name of the coarsening scheme (core/coarsener.hpp). When
  /// non-empty this overrides `coarsening`, opening the multilevel
  /// partitioner to every registered coarsener.
  std::string coarsener;
  ordinal_t coarse_target = 200;   ///< stop coarsening at this many vertices
  int max_levels = 40;
  int refine_passes = 6;           ///< greedy boundary passes per level
  double imbalance_tolerance = 0.05;  ///< allowed deviation from perfect balance
  std::uint64_t seed = 1;
  core::Mis2Options mis2;
};

/// A two-way split: side[v] in {0, 1}.
struct Bisection {
  std::vector<char> side;
  std::int64_t cut_weight{0};
};

/// A k-way partition: part[v] in [0, k).
struct Partition {
  std::vector<ordinal_t> part;
  ordinal_t k{0};
  std::int64_t edge_cut{0};
  double imbalance{0.0};  ///< max part weight / ideal part weight - 1
};

/// Sum of edge weights crossing the split (each undirected edge counted
/// once).
[[nodiscard]] std::int64_t cut_weight(const WeightedGraph& g, std::span<const char> side);

/// Weighted edge cut of a k-way partition (each undirected edge counted
/// once).
[[nodiscard]] std::int64_t cut_weight_kway(const WeightedGraph& g,
                                           std::span<const ordinal_t> part);

/// Vertex-weighted max-part imbalance of a k-way partition.
[[nodiscard]] double imbalance_weighted(const WeightedGraph& g, std::span<const ordinal_t> part,
                                        ordinal_t k);

/// Edge cut of a k-way partition on an unweighted graph view.
[[nodiscard]] std::int64_t edge_cut(graph::GraphView g, std::span<const ordinal_t> part);

/// Max-part imbalance of a k-way partition with unit vertex weights.
[[nodiscard]] double imbalance(std::span<const ordinal_t> part, ordinal_t k);

/// Greedy BFS-grown bisection of a weighted graph (no refinement).
[[nodiscard]] Bisection grow_bisection(const WeightedGraph& g, std::uint64_t seed);

/// Greedy gain-based boundary refinement of a bisection, respecting the
/// balance tolerance. Returns the number of vertices moved.
std::int64_t refine_bisection(const WeightedGraph& g, Bisection& b, int passes,
                              double imbalance_tolerance);

/// Multilevel two-way partitioning.
[[nodiscard]] Bisection multilevel_bisect(const WeightedGraph& g, const PartitionOptions& opts);

/// Multilevel k-way partitioning by recursive bisection (k need not be a
/// power of two; parts are weight-proportional).
[[nodiscard]] Partition partition_graph(graph::GraphView g, ordinal_t k,
                                        const PartitionOptions& opts = {});

/// Multilevel k-way partitioning of a weighted graph. Cut and imbalance in
/// the result are vertex/edge-weighted.
[[nodiscard]] Partition partition_weighted(const WeightedGraph& g, ordinal_t k,
                                           const PartitionOptions& opts = {});

/// Labels-only variant of `partition_weighted` (no metric pass) — the
/// pluggable `Partitioner` registry (interface.hpp) wraps this and computes
/// the full QualityReport itself, so metrics are evaluated exactly once.
[[nodiscard]] std::vector<ordinal_t> partition_labels_weighted(const WeightedGraph& g, ordinal_t k,
                                                               const PartitionOptions& opts = {});

}  // namespace parmis::partition
