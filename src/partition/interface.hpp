#pragma once
/// \file interface.hpp
/// \brief The pluggable partitioning interface: an abstract `Partitioner`,
/// a timed run driver, and a string-keyed algorithm registry.
///
/// The paper's second headline use case for MIS-2 coarsening is multilevel
/// graph partitioning (§II, §VII). Production partitioning systems
/// (osrm-backend's partitioner tool, GraphPartitioners' `split()`
/// hierarchy, KaHIP) converge on the same shape: algorithms behind one
/// interface, selected by name, compared through shared quality metrics.
/// This header is that shape for this library. Every registered algorithm
/// is deterministic: the labeling is bit-identical on the Serial and
/// OpenMP backends at any thread count.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "partition/coarsen_weighted.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"

namespace parmis::partition {

/// Outcome of one partitioner run: the labeling plus per-run stats.
struct PartitionResult {
  std::vector<ordinal_t> part;  ///< vertex -> part id in [0, k)
  ordinal_t k{0};
  double seconds{0.0};     ///< wall time of the partition call (run() only)
  QualityReport quality;   ///< filled by run()
};

/// Abstract base every partitioning algorithm implements.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Registry name of this algorithm.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Assign every vertex of `g` to a part in [0, k). Implementations must
  /// be deterministic across backends and thread counts.
  [[nodiscard]] virtual PartitionResult partition(const WeightedGraph& g, ordinal_t k,
                                                  const PartitionOptions& opts) const = 0;

  /// Timed driver: runs partition() under a Timer, validates the label
  /// range, and computes the full QualityReport. Throws std::runtime_error
  /// if the algorithm produced an out-of-range label.
  [[nodiscard]] PartitionResult run(const WeightedGraph& g, ordinal_t k,
                                    const PartitionOptions& opts = {}) const;
};

/// Registry entry: a name, a one-line description, and a factory.
struct PartitionerSpec {
  std::string name;
  std::string description;
  std::function<std::unique_ptr<Partitioner>()> make;
};

/// All registered partitioners, stable order (multilevel first, then the
/// streaming and propagation algorithms, then baselines).
const std::vector<PartitionerSpec>& partitioner_registry();

/// Names of all registered partitioners, registry order.
[[nodiscard]] std::vector<std::string> partitioner_names();

/// Look up one spec by name; throws std::out_of_range if unknown.
const PartitionerSpec& find_partitioner(const std::string& name);

/// Construct a partitioner by registry name; throws std::out_of_range if
/// unknown.
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(const std::string& name);

}  // namespace parmis::partition
