#pragma once
/// \file d2_coloring.hpp
/// \brief Distance-2 graph coloring (substrate for the D2C aggregation
/// baselines of Table V).
///
/// A distance-2 coloring assigns different colors to any two vertices
/// joined by a path of length <= 2; each color class is therefore a
/// distance-2 independent set, which is how MueLu's coloring-based
/// aggregation finds its root candidates ("Serial D2C" / "NB D2C" in the
/// paper). `greedy_d2_coloring` is the serial scheme (coloring offloaded to
/// host in the paper); `parallel_d2_coloring` is the on-device parallel
/// net-based analogue, implemented as bulk-synchronous speculation with
/// deterministic distance-2 conflict resolution.

#include "coloring/d1_coloring.hpp"
#include "graph/crs.hpp"

namespace parmis::coloring {

/// Serial first-fit distance-2 coloring.
[[nodiscard]] Coloring greedy_d2_coloring(graph::GraphView g);

/// Parallel speculative distance-2 coloring, deterministic.
[[nodiscard]] Coloring parallel_d2_coloring(graph::GraphView g);

}  // namespace parmis::coloring
