#pragma once
/// \file d1_coloring.hpp
/// \brief Distance-1 graph coloring (substrate for multicolor Gauss-Seidel).
///
/// Point multicolor Gauss-Seidel (Deveci et al., IPDPS 2016 — the paper's
/// [11]) needs the rows of A partitioned into independent color classes;
/// cluster multicolor GS (Algorithm 4) needs the same on the coarse graph.
/// Two implementations:
///  - `greedy_d1_coloring`: serial first-fit, the classic quality baseline;
///  - `parallel_d1_coloring`: bulk-synchronous speculative coloring with
///    deterministic conflict resolution (lower vertex id wins), so the
///    coloring is identical for any thread count.

#include <vector>

#include "graph/crs.hpp"

namespace parmis::coloring {

/// A vertex coloring with compact color ids [0, num_colors).
struct Coloring {
  std::vector<ordinal_t> colors;
  ordinal_t num_colors{0};
  int rounds{1};  ///< speculative rounds used (1 for serial)
};

/// CSR partition of vertices by color: vertices of color `c` are
/// `vertices[offsets[c] .. offsets[c+1])`, each class sorted ascending.
struct ColorSets {
  std::vector<offset_t> offsets;
  std::vector<ordinal_t> vertices;
};

[[nodiscard]] ColorSets color_sets(const Coloring& coloring);

/// Serial first-fit distance-1 coloring.
[[nodiscard]] Coloring greedy_d1_coloring(graph::GraphView g);

/// Parallel speculative distance-1 coloring, deterministic.
[[nodiscard]] Coloring parallel_d1_coloring(graph::GraphView g);

}  // namespace parmis::coloring
