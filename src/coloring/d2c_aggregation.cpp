#include "coloring/d2c_aggregation.hpp"

#include <atomic>
#include <cassert>

#include "coloring/d2_coloring.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"

namespace parmis::coloring {

core::Aggregation aggregate_d2c(graph::GraphView g, D2cMode mode,
                                ordinal_t min_root_neighbors) {
  assert(g.num_rows == g.num_cols);
  const ordinal_t n = g.num_rows;

  const Coloring coloring =
      mode == D2cMode::Serial ? greedy_d2_coloring(g) : parallel_d2_coloring(g);
  const ColorSets sets = color_sets(coloring);

  core::Aggregation agg;
  agg.labels.assign(static_cast<std::size_t>(n), invalid_ordinal);

  // Root growth, one color class at a time. Members of a class are
  // pairwise distance-2 independent, so their neighbor claims can't
  // collide and this loop is deterministic. The compaction scratch is
  // hoisted out of the color loop and reused across rounds.
  std::vector<ordinal_t> accepted;
  std::vector<std::int64_t> flags;
  for (ordinal_t c = 0; c < coloring.num_colors; ++c) {
    const offset_t begin = sets.offsets[static_cast<std::size_t>(c)];
    const offset_t end = sets.offsets[static_cast<std::size_t>(c) + 1];

    // Accept roots: unaggregated vertices of this color with enough
    // unaggregated neighbors; assign compact ids in vertex order.
    par::compact_into_scratch(
        static_cast<ordinal_t>(end - begin),
        [&](ordinal_t i) {
          const ordinal_t v = sets.vertices[static_cast<std::size_t>(begin + i)];
          if (agg.labels[static_cast<std::size_t>(v)] != invalid_ordinal) return false;
          ordinal_t unagg = 0;
          for (ordinal_t w : g.row(v)) {
            if (agg.labels[static_cast<std::size_t>(w)] == invalid_ordinal) ++unagg;
          }
          return unagg >= min_root_neighbors;
        },
        [&](ordinal_t i) { return sets.vertices[static_cast<std::size_t>(begin + i)]; },
        accepted, flags);

    const ordinal_t base = agg.num_aggregates;
    par::parallel_for(static_cast<ordinal_t>(accepted.size()), [&](ordinal_t i) {
      const ordinal_t r = accepted[static_cast<std::size_t>(i)];
      const ordinal_t id = base + i;
      agg.labels[static_cast<std::size_t>(r)] = id;
      for (ordinal_t w : g.row(r)) {
        if (agg.labels[static_cast<std::size_t>(w)] == invalid_ordinal) {
          agg.labels[static_cast<std::size_t>(w)] = id;
        }
      }
    });
    agg.num_aggregates = base + static_cast<ordinal_t>(accepted.size());
    agg.roots.insert(agg.roots.end(), accepted.begin(), accepted.end());
  }

  // Leftover join: first-come atomic claim of any adjacent aggregate,
  // reading labels live — intentionally nondeterministic under concurrent
  // execution (this is the property Table V reports). Repeat until all
  // vertices are aggregated: a leftover may only gain an aggregated
  // neighbor in a later sweep if its whole neighborhood was leftover.
  for (;;) {
    std::atomic<std::int64_t> remaining{0};
    par::parallel_for(n, [&](ordinal_t v) {
      std::atomic_ref<ordinal_t> label_v(agg.labels[static_cast<std::size_t>(v)]);
      if (label_v.load(std::memory_order_relaxed) != invalid_ordinal) return;
      for (ordinal_t w : g.row(v)) {
        std::atomic_ref<ordinal_t> label_w(agg.labels[static_cast<std::size_t>(w)]);
        const ordinal_t a = label_w.load(std::memory_order_relaxed);
        if (a != invalid_ordinal) {
          label_v.store(a, std::memory_order_relaxed);
          return;
        }
      }
      remaining.fetch_add(1, std::memory_order_relaxed);
    });
    if (remaining.load() == 0) break;
    // Guard against a component with no aggregate at all (e.g. a single
    // isolated vertex): promote the lowest-id leftover to a root.
    bool promoted = false;
    for (ordinal_t v = 0; v < n && !promoted; ++v) {
      if (agg.labels[static_cast<std::size_t>(v)] == invalid_ordinal) {
        bool any_labeled_neighbor = false;
        for (ordinal_t w : g.row(v)) {
          if (agg.labels[static_cast<std::size_t>(w)] != invalid_ordinal) {
            any_labeled_neighbor = true;
            break;
          }
        }
        if (!any_labeled_neighbor) {
          agg.labels[static_cast<std::size_t>(v)] = agg.num_aggregates;
          agg.roots.push_back(v);
          ++agg.num_aggregates;
          promoted = true;
        }
      }
    }
  }

  return agg;
}

}  // namespace parmis::coloring
