#include "coloring/d2_coloring.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "random/hash.hpp"

namespace parmis::coloring {

namespace {

/// Stamp-based forbidden-color set (same idea as d1_coloring's, local copy
/// to keep the translation units independent).
class ForbiddenSet {
 public:
  void ensure(std::size_t max_colors) {
    if (stamp_of_.size() < max_colors) stamp_of_.assign(max_colors, 0);
  }
  void begin() { ++stamp_; }
  void forbid(ordinal_t c) {
    if (c != invalid_ordinal) stamp_of_[static_cast<std::size_t>(c)] = stamp_;
  }
  [[nodiscard]] ordinal_t first_allowed() const { return nth_allowed(0); }

  /// The (k+1)-th smallest color not in the forbidden set. Used by the
  /// windowed speculation below: spreading speculators over several
  /// allowed colors instead of all picking the same first-fit color keeps
  /// the per-round conflict sets small on dense graphs.
  [[nodiscard]] ordinal_t nth_allowed(ordinal_t k) const {
    ordinal_t c = 0;
    for (;;) {
      const bool forbidden = static_cast<std::size_t>(c) < stamp_of_.size() &&
                             stamp_of_[static_cast<std::size_t>(c)] == stamp_;
      if (!forbidden) {
        if (k == 0) return c;
        --k;
      }
      ++c;
    }
  }

 private:
  std::vector<std::uint64_t> stamp_of_;
  std::uint64_t stamp_{0};
};

/// Apply `f(u)` to every vertex within distance <= 2 of v, excluding v.
template <typename F>
void for_each_within_2(graph::GraphView g, ordinal_t v, F&& f) {
  for (ordinal_t w : g.row(v)) {
    f(w);
    for (ordinal_t u : g.row(w)) {
      if (u != v) f(u);
    }
  }
}

}  // namespace

Coloring greedy_d2_coloring(graph::GraphView g) {
  const ordinal_t n = g.num_rows;
  Coloring result;
  result.colors.assign(static_cast<std::size_t>(n), invalid_ordinal);

  ForbiddenSet forbidden;
  forbidden.ensure(static_cast<std::size_t>(n) + 1);
  ordinal_t num_colors = 0;
  for (ordinal_t v = 0; v < n; ++v) {
    forbidden.begin();
    for_each_within_2(g, v, [&](ordinal_t u) {
      forbidden.forbid(result.colors[static_cast<std::size_t>(u)]);
    });
    const ordinal_t c = forbidden.first_allowed();
    result.colors[static_cast<std::size_t>(v)] = c;
    num_colors = std::max(num_colors, c + 1);
  }
  result.num_colors = num_colors;
  result.rounds = 1;
  return result;
}

Coloring parallel_d2_coloring(graph::GraphView g) {
  const ordinal_t n = g.num_rows;

  // Speculation pays off only when the graph is large: below this size the
  // serial first-fit sweep is faster than any number of parallel rounds
  // (and AMG's coarse levels, which are small *and* dense, would otherwise
  // trigger a rounds-per-color pathology).
  constexpr ordinal_t serial_cutoff = 50000;
  if (n < serial_cutoff) {
    return greedy_d2_coloring(g);
  }

  Coloring result;
  result.colors.assign(static_cast<std::size_t>(n), invalid_ordinal);

  // Windowed speculation: each vertex picks one of its `window` smallest
  // allowed colors by hash. Spreads dense conflict sets over several
  // colors per round at the cost of a slightly larger final color count.
  constexpr ordinal_t window = 4;

  std::vector<ordinal_t> worklist(static_cast<std::size_t>(n));
  for (ordinal_t v = 0; v < n; ++v) worklist[static_cast<std::size_t>(v)] = v;
  std::vector<ordinal_t> tentative(static_cast<std::size_t>(n), invalid_ordinal);
  std::vector<int> speculated(static_cast<std::size_t>(n), 0);
  std::vector<ordinal_t> next;

  int rounds = 0;
  while (!worklist.empty()) {
    ++rounds;
    par::parallel_for(static_cast<ordinal_t>(worklist.size()), [&](ordinal_t i) {
      const ordinal_t v = worklist[static_cast<std::size_t>(i)];
      thread_local ForbiddenSet forbidden;
      forbidden.ensure(static_cast<std::size_t>(n) + 1 + window);
      forbidden.begin();
      for_each_within_2(g, v, [&](ordinal_t u) {
        forbidden.forbid(result.colors[static_cast<std::size_t>(u)]);
      });
      const ordinal_t slot = static_cast<ordinal_t>(
          rng::hash_xorshift_star(static_cast<std::uint64_t>(rounds),
                                  static_cast<std::uint64_t>(v)) %
          window);
      tentative[static_cast<std::size_t>(v)] = forbidden.nth_allowed(slot);
      speculated[static_cast<std::size_t>(v)] = rounds;
    });

    // Conflict resolution by per-round hashed priority (ties by id), as in
    // d1_coloring.cpp: random priorities commit a large fraction of each
    // conflict set per round instead of serializing along id chains.
    auto priority = [&](ordinal_t u) {
      return rng::hash_xorshift_star(static_cast<std::uint64_t>(rounds),
                                     static_cast<std::uint64_t>(u));
    };
    par::parallel_for(static_cast<ordinal_t>(worklist.size()), [&](ordinal_t i) {
      const ordinal_t v = worklist[static_cast<std::size_t>(i)];
      const ordinal_t tc = tentative[static_cast<std::size_t>(v)];
      const std::uint64_t pv = priority(v);
      bool keep = true;
      for_each_within_2(g, v, [&](ordinal_t u) {
        if (u != v && speculated[static_cast<std::size_t>(u)] == rounds &&
            tentative[static_cast<std::size_t>(u)] == tc) {
          const std::uint64_t pu = priority(u);
          if (pu < pv || (pu == pv && u < v)) keep = false;
        }
      });
      if (keep) {
        result.colors[static_cast<std::size_t>(v)] = tc;
      }
    });

    par::compact_into(
        static_cast<ordinal_t>(worklist.size()),
        [&](ordinal_t i) {
          return result.colors[static_cast<std::size_t>(
                     worklist[static_cast<std::size_t>(i)])] == invalid_ordinal;
        },
        [&](ordinal_t i) { return worklist[static_cast<std::size_t>(i)]; }, next);
    worklist.swap(next);
  }

  result.num_colors =
      1 + par::reduce_max<ordinal_t>(
              n, [&](ordinal_t v) { return result.colors[static_cast<std::size_t>(v)]; },
              ordinal_t{-1});
  result.rounds = rounds;
  return result;
}

}  // namespace parmis::coloring
