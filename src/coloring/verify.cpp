#include "coloring/verify.hpp"

#include "parallel/parallel_reduce.hpp"

namespace parmis::coloring {

namespace {

bool colors_in_range(const Coloring& c) {
  for (ordinal_t col : c.colors) {
    if (col < 0 || col >= c.num_colors) return false;
  }
  return true;
}

}  // namespace

bool verify_d1_coloring(graph::GraphView g, const Coloring& c) {
  if (c.colors.size() != static_cast<std::size_t>(g.num_rows)) return false;
  if (!colors_in_range(c)) return false;
  const std::int64_t conflicts = par::count_if(g.num_rows, [&](ordinal_t v) {
    for (ordinal_t w : g.row(v)) {
      if (c.colors[static_cast<std::size_t>(w)] == c.colors[static_cast<std::size_t>(v)]) {
        return true;
      }
    }
    return false;
  });
  return conflicts == 0;
}

bool verify_d2_coloring(graph::GraphView g, const Coloring& c) {
  if (c.colors.size() != static_cast<std::size_t>(g.num_rows)) return false;
  if (!colors_in_range(c)) return false;
  const std::int64_t conflicts = par::count_if(g.num_rows, [&](ordinal_t v) {
    const ordinal_t cv = c.colors[static_cast<std::size_t>(v)];
    for (ordinal_t w : g.row(v)) {
      if (c.colors[static_cast<std::size_t>(w)] == cv) return true;
      for (ordinal_t u : g.row(w)) {
        if (u != v && c.colors[static_cast<std::size_t>(u)] == cv) return true;
      }
    }
    return false;
  });
  return conflicts == 0;
}

}  // namespace parmis::coloring
