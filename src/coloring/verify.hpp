#pragma once
/// \file verify.hpp
/// \brief Coloring validity checkers.

#include "coloring/d1_coloring.hpp"
#include "graph/crs.hpp"

namespace parmis::coloring {

/// Every vertex colored in [0, num_colors) and no two adjacent vertices
/// share a color.
[[nodiscard]] bool verify_d1_coloring(graph::GraphView g, const Coloring& c);

/// Distance-2 validity: no two vertices within distance <= 2 share a color.
[[nodiscard]] bool verify_d2_coloring(graph::GraphView g, const Coloring& c);

}  // namespace parmis::coloring
