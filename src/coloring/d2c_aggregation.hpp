#pragma once
/// \file d2c_aggregation.hpp
/// \brief Coloring-based aggregation: the "Serial D2C" and "NB D2C"
/// baselines of Table V.
///
/// A distance-2 coloring makes every color class a distance-2 independent
/// set, so MueLu's coloring-based aggregation walks the colors in order and
/// lets each still-unaggregated vertex of the current color become a root
/// (when it has enough unaggregated neighbors, mirroring Algorithm 3's
/// phase-2 rule). Same-color roots can't share neighbors, so root growth is
/// conflict-free within a color round.
///
/// Leftover vertices join *any* adjacent aggregate with a first-come
/// atomic claim — the step that makes this scheme nondeterministic in the
/// paper (no checkmark in Table V's "Det." column); we reproduce that
/// property faithfully rather than fixing it. That nondeterminism is also
/// why this scheme is *not* registered in the core `Coarsener` registry
/// (core/coarsener.hpp), whose contract requires bit-identical labels
/// across backends and thread counts; it stays reachable through
/// `solver::run_aggregation` for the Table V comparison.

#include "core/aggregation.hpp"
#include "graph/crs.hpp"

namespace parmis::coloring {

/// Which coloring feeds the aggregation.
enum class D2cMode {
  Serial,    ///< "Serial D2C": serial greedy coloring, parallel aggregation
  Parallel,  ///< "NB D2C": parallel (net-based analogue) coloring + aggregation
};

/// Coloring-based aggregation. `min_root_neighbors` mirrors Algorithm 3's
/// small-aggregate rejection (default 2).
[[nodiscard]] core::Aggregation aggregate_d2c(graph::GraphView g,
                                              D2cMode mode = D2cMode::Parallel,
                                              ordinal_t min_root_neighbors = 2);

}  // namespace parmis::coloring
