#include "coloring/d1_coloring.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "random/hash.hpp"

namespace parmis::coloring {

namespace {

/// First-fit helper: smallest color not present among `forbidden` colors,
/// tracked in a stamp array.
class ForbiddenSet {
 public:
  void ensure(std::size_t max_colors) {
    if (stamp_of_.size() < max_colors) stamp_of_.assign(max_colors, 0);
  }

  void begin() { ++stamp_; }

  void forbid(ordinal_t c) {
    if (c >= 0 && static_cast<std::size_t>(c) < stamp_of_.size()) {
      stamp_of_[static_cast<std::size_t>(c)] = stamp_;
    }
  }

  [[nodiscard]] ordinal_t first_allowed() const {
    ordinal_t c = 0;
    while (static_cast<std::size_t>(c) < stamp_of_.size() &&
           stamp_of_[static_cast<std::size_t>(c)] == stamp_) {
      ++c;
    }
    return c;
  }

 private:
  std::vector<std::uint64_t> stamp_of_;
  std::uint64_t stamp_{0};
};

void forbid_if_colored(ForbiddenSet& forbidden, const std::vector<ordinal_t>& colors,
                       ordinal_t w) {
  const ordinal_t c = colors[static_cast<std::size_t>(w)];
  if (c != invalid_ordinal) forbidden.forbid(c);
}

}  // namespace

ColorSets color_sets(const Coloring& coloring) {
  ColorSets cs;
  const ordinal_t n = static_cast<ordinal_t>(coloring.colors.size());
  cs.offsets.assign(static_cast<std::size_t>(coloring.num_colors) + 1, 0);
  for (ordinal_t v = 0; v < n; ++v) {
    ++cs.offsets[static_cast<std::size_t>(coloring.colors[static_cast<std::size_t>(v)]) + 1];
  }
  for (ordinal_t c = 0; c < coloring.num_colors; ++c) {
    cs.offsets[static_cast<std::size_t>(c) + 1] += cs.offsets[static_cast<std::size_t>(c)];
  }
  cs.vertices.resize(static_cast<std::size_t>(n));
  std::vector<offset_t> cursor(cs.offsets.begin(), cs.offsets.end() - 1);
  for (ordinal_t v = 0; v < n; ++v) {
    cs.vertices[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(coloring.colors[static_cast<std::size_t>(v)])]++)] = v;
  }
  return cs;
}

Coloring greedy_d1_coloring(graph::GraphView g) {
  const ordinal_t n = g.num_rows;
  Coloring result;
  result.colors.assign(static_cast<std::size_t>(n), invalid_ordinal);

  ForbiddenSet forbidden;
  forbidden.ensure(static_cast<std::size_t>(n) + 1);
  ordinal_t num_colors = 0;
  for (ordinal_t v = 0; v < n; ++v) {
    forbidden.begin();
    for (ordinal_t w : g.row(v)) {
      forbid_if_colored(forbidden, result.colors, w);
    }
    const ordinal_t c = forbidden.first_allowed();
    result.colors[static_cast<std::size_t>(v)] = c;
    num_colors = std::max(num_colors, c + 1);
  }
  result.num_colors = num_colors;
  result.rounds = 1;
  return result;
}

Coloring parallel_d1_coloring(graph::GraphView g) {
  const ordinal_t n = g.num_rows;
  Coloring result;
  result.colors.assign(static_cast<std::size_t>(n), invalid_ordinal);

  std::vector<ordinal_t> worklist(static_cast<std::size_t>(n));
  for (ordinal_t v = 0; v < n; ++v) worklist[static_cast<std::size_t>(v)] = v;
  std::vector<ordinal_t> tentative(static_cast<std::size_t>(n), invalid_ordinal);
  // Round in which a vertex last speculated; lets the resolve phase test
  // "was w uncolored at the start of this round" without racing against
  // the commits happening in the same phase.
  std::vector<int> speculated(static_cast<std::size_t>(n), 0);
  std::vector<ordinal_t> next;

  int rounds = 0;
  while (!worklist.empty()) {
    ++rounds;
    // Speculate: first-fit against the committed colors snapshot.
    par::parallel_for(static_cast<ordinal_t>(worklist.size()), [&](ordinal_t i) {
      const ordinal_t v = worklist[static_cast<std::size_t>(i)];
      thread_local ForbiddenSet forbidden;
      forbidden.ensure(static_cast<std::size_t>(n) + 1);
      forbidden.begin();
      for (ordinal_t w : g.row(v)) {
        forbid_if_colored(forbidden, result.colors, w);
      }
      tentative[static_cast<std::size_t>(v)] = forbidden.first_allowed();
      speculated[static_cast<std::size_t>(v)] = rounds;
    });

    // Resolve: v keeps its speculative color unless a conflicting neighbor
    // (same tentative color this round) carries a smaller per-round hash
    // priority (ties by id). Random priorities keep the committed set a
    // large fraction of the conflicts (Luby-style) instead of serializing
    // along id chains. Reads only `tentative` / `speculated` (frozen this
    // phase), writes only colors[v]: race-free and deterministic; the
    // globally smallest-priority vertex always commits, so rounds
    // terminate.
    auto priority = [&](ordinal_t u) {
      return rng::hash_xorshift_star(static_cast<std::uint64_t>(rounds),
                                     static_cast<std::uint64_t>(u));
    };
    par::parallel_for(static_cast<ordinal_t>(worklist.size()), [&](ordinal_t i) {
      const ordinal_t v = worklist[static_cast<std::size_t>(i)];
      const ordinal_t tc = tentative[static_cast<std::size_t>(v)];
      const std::uint64_t pv = priority(v);
      bool keep = true;
      for (ordinal_t w : g.row(v)) {
        if (w != v && speculated[static_cast<std::size_t>(w)] == rounds &&
            tentative[static_cast<std::size_t>(w)] == tc) {
          const std::uint64_t pw = priority(w);
          if (pw < pv || (pw == pv && w < v)) {
            keep = false;
            break;
          }
        }
      }
      if (keep) {
        result.colors[static_cast<std::size_t>(v)] = tc;
      }
    });

    par::compact_into(
        static_cast<ordinal_t>(worklist.size()),
        [&](ordinal_t i) {
          return result.colors[static_cast<std::size_t>(
                     worklist[static_cast<std::size_t>(i)])] == invalid_ordinal;
        },
        [&](ordinal_t i) { return worklist[static_cast<std::size_t>(i)]; }, next);
    worklist.swap(next);
  }

  result.num_colors =
      1 + par::reduce_max<ordinal_t>(
              n, [&](ordinal_t v) { return result.colors[static_cast<std::size_t>(v)]; },
              ordinal_t{-1});
  result.rounds = rounds;
  return result;
}

}  // namespace parmis::coloring
