#pragma once
/// \file builder.hpp
/// \brief `multilevel::Builder`: the one level loop behind every multilevel
/// consumer in this library.
///
/// Before this layer existed, `core::multilevel_coarsen`, the multilevel
/// partitioners (`partition/partitioner.cpp`), and `solver::AmgHierarchy`
/// each drove their own aggregate → contract loop, with their own stopping
/// rules and their own per-build allocations. The Builder drives that loop
/// once, in three contraction modes:
///
///  - **topology**  (`build`): coarse adjacency graphs only — what
///    `multilevel_coarsen` returns;
///  - **weighted**  (`build_weighted`): vertex/edge-weighted quotients —
///    what the multilevel partitioners refine through;
///  - **Galerkin**  (`build_galerkin`): smoothed-aggregation operator
///    levels A, P, R = Pᵀ with the triple product A_c = R·A·P — what AMG
///    setup wraps.
///
/// All three share the stopping rules of `multilevel::Options`
/// (`min_coarse_size`, `max_levels`, the coarsening-rate floor) and the
/// Galerkin mode adds the operator-complexity cap that stops coarsening
/// instead of densifying — the guard that fixes the AMG+HEM blowup on
/// power-law inputs.
///
/// Hierarchies land in a `HierarchyHandle` whose `SetupWorkspace` owns all
/// per-level scratch, and Galerkin hierarchies support a warm value-only
/// `rebuild_galerkin` that performs zero heap allocations when only the
/// matrix values changed (time-stepping).

#include "graph/crs.hpp"
#include "multilevel/hierarchy.hpp"
#include "multilevel/options.hpp"
#include "multilevel/weighted.hpp"

namespace parmis::multilevel {

class Builder {
 public:
  Builder() = default;
  explicit Builder(Options opts) : opts_(std::move(opts)) {}

  [[nodiscard]] Options& options() { return opts_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Topology mode: recursively aggregate and contract `g` (symmetric,
  /// loop-free adjacency). Steps land in `handle`; the returned reference
  /// stays valid until the next build on the same handle.
  const std::vector<Step>& build(graph::GraphView g, HierarchyHandle& handle) const;

  /// Weighted mode: like `build`, but coarse vertex/edge weights are the
  /// sums of the fine material they stand for (the partitioning contract).
  /// `g` must outlive the returned steps only for the duration of the
  /// call.
  const std::vector<Step>& build_weighted(const WeightedGraph& g,
                                          HierarchyHandle& handle) const;

  /// Galerkin mode: build smoothed-aggregation operator levels from the
  /// fine matrix (taken by value: the hierarchy owns its finest operator).
  /// Every level's transfers, intermediates, and transpose permutations
  /// are retained in the handle's workspace for warm rebuilds.
  const std::vector<OperatorLevel>& build_galerkin(graph::CrsMatrix a_fine,
                                                   HierarchyHandle& handle) const;

  /// Warm value-only rebuild of the handle's Galerkin hierarchy for a
  /// matrix with the **same structure** as the one `build_galerkin` saw
  /// but different values: replays the prolongator smoothing and the
  /// triple products numerically into the existing structures. Zero heap
  /// allocations; results are identical to a cold `build_galerkin` on the
  /// new matrix. Throws std::logic_error when no Galerkin hierarchy has
  /// been built on `handle`, std::invalid_argument on a structure
  /// mismatch.
  const std::vector<OperatorLevel>& rebuild_galerkin(const graph::CrsMatrix& a_fine,
                                                     HierarchyHandle& handle) const;

 private:
  const std::vector<Step>& build_steps(graph::GraphView g0, const WeightedGraph* weighted,
                                       HierarchyHandle& h) const;

  Options opts_;
};

}  // namespace parmis::multilevel
