#include "multilevel/weighted.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/parallel_for.hpp"

namespace parmis::multilevel {

WeightedGraph WeightedGraph::unit(graph::CrsGraph g) {
  WeightedGraph w;
  w.vertex_weight.assign(static_cast<std::size_t>(g.num_rows), 1);
  w.edge_weight.assign(static_cast<std::size_t>(g.num_entries()), 1);
  w.graph = std::move(g);
  return w;
}

WeightedGraph WeightedGraph::unit(graph::GraphView g) {
  if (g.num_rows == 0) return unit(graph::CrsGraph{});
  return unit(graph::CrsGraph{
      g.num_rows, g.num_cols,
      std::vector<offset_t>(g.row_map, g.row_map + g.num_rows + 1),
      std::vector<ordinal_t>(g.entries, g.entries + g.num_entries())});
}

std::size_t ContractionWorkspace::capacity_bytes() const {
  return member_offsets.capacity() * sizeof(offset_t) +
         members.capacity() * sizeof(ordinal_t) + cursor.capacity() * sizeof(offset_t);
}

void coarsen_weighted(const WeightedGraph& fine, std::span<const ordinal_t> labels,
                      ordinal_t num_coarse, WeightedGraph& coarse, ContractionWorkspace& ws) {
  const graph::GraphView g = fine.graph;
  assert(labels.size() == static_cast<std::size_t>(g.num_rows));

  // Contraction maps (counting sort by label), built into the reusable
  // workspace: `assign`/`resize` keep capacity, so warm contractions on
  // same-sized levels allocate nothing.
  ws.member_offsets.assign(static_cast<std::size_t>(num_coarse) + 1, 0);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    assert(labels[static_cast<std::size_t>(v)] >= 0 &&
           labels[static_cast<std::size_t>(v)] < num_coarse);
    ++ws.member_offsets[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)]) + 1];
  }
  for (ordinal_t a = 0; a < num_coarse; ++a) {
    ws.member_offsets[static_cast<std::size_t>(a) + 1] +=
        ws.member_offsets[static_cast<std::size_t>(a)];
  }
  ws.members.resize(static_cast<std::size_t>(g.num_rows));
  ws.cursor.assign(ws.member_offsets.begin(), ws.member_offsets.end() - 1);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    ws.members[static_cast<std::size_t>(
        ws.cursor[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])]++)] = v;
  }

  coarse.graph.num_rows = num_coarse;
  coarse.graph.num_cols = num_coarse;
  coarse.graph.row_map.assign(static_cast<std::size_t>(num_coarse) + 1, 0);
  coarse.vertex_weight.assign(static_cast<std::size_t>(num_coarse), 0);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    coarse.vertex_weight[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])] +=
        fine.vertex_weight[static_cast<std::size_t>(v)];
  }

  // Per-coarse-row accumulation with a stamp/accumulator pair (same
  // pattern as SpGEMM); summed weights, sorted columns.
  struct Accumulator {
    std::vector<std::uint64_t> stamp_of;
    std::vector<std::int64_t> acc;
    std::vector<ordinal_t> touched;
    std::uint64_t stamp{0};
    void ensure(ordinal_t n) {
      if (stamp_of.size() < static_cast<std::size_t>(n)) {
        stamp_of.assign(static_cast<std::size_t>(n), 0);
        acc.assign(static_cast<std::size_t>(n), 0);
        stamp = 0;
      }
    }
  };
  thread_local Accumulator t_acc;

  auto collect = [&](ordinal_t a) {
    t_acc.ensure(num_coarse);
    ++t_acc.stamp;
    t_acc.touched.clear();
    for (offset_t mi = ws.member_offsets[static_cast<std::size_t>(a)];
         mi < ws.member_offsets[static_cast<std::size_t>(a) + 1]; ++mi) {
      const ordinal_t v = ws.members[static_cast<std::size_t>(mi)];
      for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
        const ordinal_t b = labels[static_cast<std::size_t>(g.entries[j])];
        if (b == a) continue;
        const std::int64_t w = fine.edge_weight[static_cast<std::size_t>(j)];
        if (t_acc.stamp_of[static_cast<std::size_t>(b)] != t_acc.stamp) {
          t_acc.stamp_of[static_cast<std::size_t>(b)] = t_acc.stamp;
          t_acc.acc[static_cast<std::size_t>(b)] = w;
          t_acc.touched.push_back(b);
        } else {
          t_acc.acc[static_cast<std::size_t>(b)] += w;
        }
      }
    }
  };

  par::parallel_for(num_coarse, [&](ordinal_t a) {
    collect(a);
    coarse.graph.row_map[static_cast<std::size_t>(a) + 1] =
        static_cast<offset_t>(t_acc.touched.size());
  });
  for (ordinal_t a = 0; a < num_coarse; ++a) {
    coarse.graph.row_map[static_cast<std::size_t>(a) + 1] +=
        coarse.graph.row_map[static_cast<std::size_t>(a)];
  }
  coarse.graph.entries.resize(static_cast<std::size_t>(coarse.graph.row_map.back()));
  coarse.edge_weight.resize(static_cast<std::size_t>(coarse.graph.row_map.back()));
  par::parallel_for(num_coarse, [&](ordinal_t a) {
    collect(a);
    std::sort(t_acc.touched.begin(), t_acc.touched.end());
    offset_t o = coarse.graph.row_map[a];
    for (ordinal_t b : t_acc.touched) {
      coarse.graph.entries[static_cast<std::size_t>(o)] = b;
      coarse.edge_weight[static_cast<std::size_t>(o)] =
          static_cast<ordinal_t>(t_acc.acc[static_cast<std::size_t>(b)]);
      ++o;
    }
  });
}

WeightedGraph coarsen_weighted(const WeightedGraph& fine, const std::vector<ordinal_t>& labels,
                               ordinal_t num_coarse) {
  WeightedGraph coarse;
  ContractionWorkspace ws;
  coarsen_weighted(fine, labels, num_coarse, coarse, ws);
  return coarse;
}

}  // namespace parmis::multilevel
