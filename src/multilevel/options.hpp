#pragma once
/// \file options.hpp
/// \brief `multilevel::Options`: the one configuration every multilevel
/// level loop in this library shares.
///
/// Before the `Builder` existed, three consumers each carried their own
/// copy of these knobs under different names — `core::MultilevelOptions`
/// (`target_vertices`), `partition::PartitionOptions` (`coarse_target`),
/// and `solver::AmgOptions` (`coarse_size`) — and each enforced a
/// different subset of the quality guards. This struct is the deduped
/// union: the per-level coarsening scheme, the three stopping rules
/// (size, level count, coarsening-rate floor), and the Galerkin-mode
/// operator-complexity cap that keeps pairwise-matching hierarchies from
/// densifying on power-law inputs. The legacy option structs remain as
/// thin adapters that map onto this one.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/aggregation.hpp"
#include "core/coarsener.hpp"
#include "graph/crs.hpp"
#include "parallel/context.hpp"

namespace parmis::multilevel {

/// Custom per-level aggregation hook: consumers whose coarsening scheme is
/// not (yet) a registered `Coarsener` — e.g. the Table V serial/D2C
/// schemes in AMG setup — plug in here. `level` is the 0-based coarsening
/// step. When set, `Options::coarsener` is ignored.
using Aggregator = std::function<core::Aggregation(
    graph::GraphView g, core::CoarsenHandle& handle, const core::CoarsenOptions& opts,
    int level)>;

struct Options {
  /// Registry name of the per-level coarsening scheme
  /// (`core/coarsener.hpp`): "mis2" (Algorithm 3, the default),
  /// "mis2-basic" (Algorithm 2), "hem", or any future registered scheme.
  std::string coarsener = "mis2";

  /// Custom aggregation hook; overrides `coarsener` when set.
  Aggregator aggregator;

  /// Maximum number of coarsening *steps* (a hierarchy of `max_levels`
  /// steps has `max_levels + 1` operator levels).
  int max_levels = 64;

  /// Stop coarsening once a level has at most this many vertices.
  ordinal_t min_coarse_size = 64;

  /// Coarsening-rate floor: a step producing more than
  /// `rate_floor * n` aggregates from `n` vertices counts as stalled and
  /// the loop stops (a step that fails to shrink at all always stops).
  /// 0.95 is the historical multilevel-coarsening stall guard; 1.0
  /// disables the floor short of a full stall.
  double rate_floor = 0.95;

  /// Galerkin mode only: reject a coarse operator that would push
  /// `sum(nnz(A_l)) / nnz(A_0)` past this cap and stop coarsening instead
  /// of densifying (the AMG+HEM power-law guard). 0 disables the cap.
  double complexity_cap = 0.0;

  /// Galerkin mode only: damping of the one Jacobi prolongator-smoothing
  /// step P = (I - omega D^-1 A) P̂.
  scalar_t prolongator_omega = 2.0 / 3.0;

  /// MIS-2 configuration passed to every level's aggregation.
  core::Mis2Options mis2;

  /// Visit-order seed for order-dependent coarseners (HEM).
  std::uint64_t seed = 1;

  /// Derive fresh per-level seeds (the multilevel-partitioning behavior:
  /// each level xors a level-salted constant into the MIS-2 seed and
  /// offsets the HEM seed) instead of reusing the same seeds at every
  /// level.
  bool reseed_per_level = false;

  /// Execution context the whole build runs under. Unset inherits the
  /// ambient configuration.
  std::optional<Context> ctx;
};

}  // namespace parmis::multilevel
