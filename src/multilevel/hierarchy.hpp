#pragma once
/// \file hierarchy.hpp
/// \brief Hierarchy level types, per-build statistics, and the reusable
/// `HierarchyHandle`/`SetupWorkspace` pair behind the multilevel `Builder`.
///
/// The handle is the multilevel analogue of `core::Mis2Handle` /
/// `solver::SolveHandle`: it owns the built hierarchy *and* every piece of
/// setup scratch (the nested `CoarsenHandle`, the weighted contraction
/// maps, and — in Galerkin mode — the per-level tentative prolongators,
/// SpGEMM intermediates, and transpose permutations). Because the scratch
/// survives between builds, a *warm rebuild* of a hierarchy whose
/// structure is fixed but whose matrix values changed (time-stepping)
/// replays the Galerkin products value-only and performs **zero heap
/// allocations** — asserted by the capacity-tracking tests through
/// `scratch_bytes()` and `stats().scratch_grows`, exactly the
/// `SolveHandle` contract.

#include <vector>

#include "core/aggregation.hpp"
#include "core/mis2.hpp"
#include "graph/crs.hpp"
#include "multilevel/weighted.hpp"

namespace parmis::multilevel {

class Builder;

/// One coarsening step: the aggregation of the finer level and the coarse
/// graph it produced (`coarse.vertex_weight`/`edge_weight` are filled in
/// weighted mode, empty in topology mode).
struct Step {
  core::Aggregation aggregation;
  WeightedGraph coarse;
};

/// One operator level of a Galerkin hierarchy, finest first. The coarsest
/// level has empty transfers.
struct OperatorLevel {
  graph::CrsMatrix a;
  graph::CrsMatrix p;  ///< prolongator (this level rows x coarse cols)
  graph::CrsMatrix r;  ///< restriction = pᵀ
  std::vector<scalar_t> inv_diag;
  ordinal_t num_aggregates{0};
};

/// Why the level loop stopped.
enum class StopReason {
  Empty,           ///< no build has run on this handle yet
  CoarseEnough,    ///< reached `min_coarse_size`
  MaxLevels,       ///< produced `max_levels` coarsening steps
  Stalled,         ///< a step violated the coarsening-rate floor
  ComplexityCapped ///< the next Galerkin operator would exceed the cap
};

[[nodiscard]] const char* to_string(StopReason r);

/// Per-build summary, reset by every cold build (warm rebuilds update only
/// the timing fields — the structure they describe is unchanged).
struct HierarchyStats {
  int levels = 0;                        ///< operator levels (steps + 1)
  std::vector<ordinal_t> level_rows;     ///< rows per level, finest first
  std::vector<offset_t> level_entries;   ///< stored entries per level
  /// sum(nnz(A_l)) / nnz(A_0) — Galerkin mode; topology/weighted builds
  /// report the same ratio over coarse-graph edges.
  double operator_complexity = 1.0;
  double grid_complexity = 1.0;          ///< sum(rows_l) / rows_0
  StopReason stop = StopReason::Empty;
  double aggregation_seconds = 0.0;      ///< coarsening time within the build
  double build_seconds = 0.0;            ///< last cold build wall time
  double rebuild_seconds = 0.0;          ///< last warm rebuild wall time
};

/// All scratch the Builder's level loop touches, owned by
/// `HierarchyHandle` and reused across builds. Galerkin per-level entries
/// keep the structures a warm value-only rebuild replays into.
struct SetupWorkspace {
  /// Aggregation scratch (nested MIS-2 handle, HEM buffers), shared by
  /// every level of every build.
  core::CoarsenHandle coarsen;

  /// Weighted-mode contraction maps, shared across levels.
  ContractionWorkspace contraction;

  /// Parking slot for the step a stalled build aggregated into but did not
  /// keep: its buffers (size-n labels) are recycled by the next build
  /// instead of being freed — the warm-reuse contract for the
  /// recursive-bisection workload, where stalls are routine.
  Step spare_step;

  /// Galerkin per-level scratch: everything a value-only rebuild needs.
  struct GalerkinLevel {
    graph::CrsMatrix phat;          ///< tentative prolongator (values fixed by structure)
    graph::CrsMatrix ap;            ///< D⁻¹-scaled A·P̂ (structure fixed, values replayed)
    graph::CrsMatrix apc;           ///< A·P (structure fixed, values replayed)
    std::vector<offset_t> tperm;    ///< entry j of P lands at R entry tperm[j]
  };
  std::vector<GalerkinLevel> galerkin;

  /// Total heap capacity (bytes) currently held by the workspace alone
  /// (the handle adds the hierarchy buffers on top).
  [[nodiscard]] std::size_t capacity_bytes() const;
};

/// Reusable multilevel hierarchy handle: owns the built hierarchy (steps
/// or operator levels), the setup workspace, the per-build statistics, and
/// cumulative telemetry. Driven by `multilevel::Builder`; not thread-safe
/// (one handle per thread).
class HierarchyHandle {
 public:
  HierarchyHandle() = default;

  /// Coarsening steps of the last topology/weighted build (empty after a
  /// Galerkin build).
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  /// Move the steps out (leaves the handle valid; scratch is retained).
  [[nodiscard]] std::vector<Step> take_steps() { return std::move(steps_); }

  /// Operator levels of the last Galerkin build (empty otherwise).
  [[nodiscard]] const std::vector<OperatorLevel>& ops() const { return ops_; }
  [[nodiscard]] std::vector<OperatorLevel> take_ops() { return std::move(ops_); }

  /// Summary of the last build on this handle.
  [[nodiscard]] const HierarchyStats& build_stats() const { return build_stats_; }

  /// Cumulative telemetry: `runs` counts builds + rebuilds, `iterations`
  /// the total operator levels produced, `scratch_grows` the builds that
  /// grew any owned capacity (cold builds; never warm rebuilds).
  [[nodiscard]] const core::KernelStats& stats() const { return stats_; }

  /// The nested aggregation handle (exposes MIS-2 telemetry and lets
  /// adapters splice in caller-owned scratch).
  [[nodiscard]] core::CoarsenHandle& coarsen_handle() { return ws_.coarsen; }

  /// Heap capacity (bytes) held by the workspace *and* the hierarchy
  /// buffers. Stable across warm rebuilds: the zero-allocation contract.
  [[nodiscard]] std::size_t scratch_bytes() const;

 private:
  friend class Builder;
  friend void restore_galerkin(HierarchyHandle& h, std::vector<OperatorLevel> ops,
                               std::vector<SetupWorkspace::GalerkinLevel> workspace,
                               StopReason stop);
  friend const std::vector<SetupWorkspace::GalerkinLevel>& galerkin_workspace(
      const HierarchyHandle& h);

  SetupWorkspace ws_;
  std::vector<Step> steps_;
  std::vector<OperatorLevel> ops_;
  HierarchyStats build_stats_;
  core::KernelStats stats_;
};

/// Snapshot bind hooks (the `parmis::serve` layer). `restore_galerkin`
/// installs externally produced operator levels — deserialized from a
/// snapshot, or copied from a published serving state — into `h` exactly
/// as if `Builder::build_galerkin` had produced them: the per-build stats
/// are recomputed from the levels and the handle solves immediately. When
/// `workspace` is supplied (size `ops.size() - 1`, the per-level Galerkin
/// rebuild scratch the snapshot format preserves) the handle additionally
/// keeps the warm zero-allocation `rebuild_galerkin` contract; an empty
/// workspace restores a solve-only hierarchy and a later `rebuild_galerkin`
/// throws instead of replaying into missing structures. Throws
/// std::invalid_argument on an empty or shape-inconsistent level stack.
void restore_galerkin(HierarchyHandle& h, std::vector<OperatorLevel> ops,
                      std::vector<SetupWorkspace::GalerkinLevel> workspace,
                      StopReason stop);

/// Read access to the per-level Galerkin rebuild workspace (what
/// `serve::SnapshotWriter::add_hierarchy` serializes alongside the
/// levels). Size is `ops().size() - 1` after a Galerkin build, 0 when the
/// handle holds none.
[[nodiscard]] const std::vector<SetupWorkspace::GalerkinLevel>& galerkin_workspace(
    const HierarchyHandle& h);

}  // namespace parmis::multilevel
