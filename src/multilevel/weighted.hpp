#pragma once
/// \file weighted.hpp
/// \brief Weighted graphs and weighted contraction for multilevel methods.
///
/// Multilevel algorithms (partitioning, and any scheme that must remember
/// how much fine material a coarse vertex stands for) need coarse graphs
/// with vertex weights (aggregate sizes, so balance is preserved) and edge
/// weights (collapsed fine-edge counts, so coarse cuts equal fine cuts).
/// These types historically lived in the partition stack
/// (`partition/coarsen_weighted.hpp`, which now re-exports them); they
/// moved here when the multilevel `Builder` unified the three level loops,
/// because weighted contraction is a property of the hierarchy, not of any
/// one consumer.
///
/// `coarsen_weighted` is deterministic for any backend/thread count; the
/// workspace overload reuses the contraction maps (member offsets/lists and
/// per-aggregate cursors) across hierarchy levels and across builds.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::multilevel {

/// A graph with per-vertex and per-entry (edge) integer weights. The edge
/// weight array parallels `graph.entries`.
struct WeightedGraph {
  graph::CrsGraph graph;
  std::vector<ordinal_t> vertex_weight;
  std::vector<ordinal_t> edge_weight;

  [[nodiscard]] std::int64_t total_vertex_weight() const {
    std::int64_t total = 0;
    for (ordinal_t w : vertex_weight) total += w;
    return total;
  }

  /// Unit-weight wrapper around an unweighted graph.
  [[nodiscard]] static WeightedGraph unit(graph::CrsGraph g);

  /// Unit-weight deep copy of a structure view. Safe on default-constructed
  /// (null) views: returns an empty weighted graph.
  [[nodiscard]] static WeightedGraph unit(graph::GraphView g);
};

/// Reusable scratch for `coarsen_weighted`: the contraction maps (CSR
/// member lists of the labeling and the per-aggregate placement cursors).
/// Capacities only grow, so repeated contractions on same-sized (or
/// smaller) levels allocate nothing here.
struct ContractionWorkspace {
  std::vector<offset_t> member_offsets;  ///< aggregate -> member range (nc + 1)
  std::vector<ordinal_t> members;        ///< member lists, label-sorted
  std::vector<offset_t> cursor;          ///< placement cursors (nc)

  /// Total heap capacity (bytes) currently held.
  [[nodiscard]] std::size_t capacity_bytes() const;
};

/// Quotient of `fine` under `labels` (an aggregation/matching assignment
/// into [0, num_coarse)): vertex weights sum, parallel edges collapse with
/// summed weights. Deterministic; rows sorted. The result is written into
/// `coarse` reusing its buffer capacity; contraction maps come from `ws`.
void coarsen_weighted(const WeightedGraph& fine, std::span<const ordinal_t> labels,
                      ordinal_t num_coarse, WeightedGraph& coarse, ContractionWorkspace& ws);

/// `coarsen_weighted` into a fresh result with transient scratch.
[[nodiscard]] WeightedGraph coarsen_weighted(const WeightedGraph& fine,
                                             const std::vector<ordinal_t>& labels,
                                             ordinal_t num_coarse);

}  // namespace parmis::multilevel
