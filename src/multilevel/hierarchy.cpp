#include "multilevel/hierarchy.hpp"

namespace parmis::multilevel {

namespace {

std::size_t bytes_of(const std::vector<scalar_t>& v) { return v.capacity() * sizeof(scalar_t); }
std::size_t bytes_of(const std::vector<ordinal_t>& v) { return v.capacity() * sizeof(ordinal_t); }
std::size_t bytes_of(const std::vector<offset_t>& v) { return v.capacity() * sizeof(offset_t); }

std::size_t bytes_of(const graph::CrsGraph& g) {
  return bytes_of(g.row_map) + bytes_of(g.entries);
}

std::size_t bytes_of(const graph::CrsMatrix& m) {
  return bytes_of(m.row_map) + bytes_of(m.entries) + bytes_of(m.values);
}

}  // namespace

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::Empty: return "empty";
    case StopReason::CoarseEnough: return "coarse-enough";
    case StopReason::MaxLevels: return "max-levels";
    case StopReason::Stalled: return "stalled";
    case StopReason::ComplexityCapped: return "complexity-capped";
  }
  return "?";
}

namespace {

std::size_t bytes_of(const Step& s) {
  return bytes_of(s.aggregation.labels) + bytes_of(s.aggregation.roots) +
         bytes_of(s.coarse.graph) + bytes_of(s.coarse.vertex_weight) +
         bytes_of(s.coarse.edge_weight);
}

}  // namespace

std::size_t SetupWorkspace::capacity_bytes() const {
  std::size_t total = coarsen.scratch_bytes() + contraction.capacity_bytes() +
                      bytes_of(spare_step);
  for (const GalerkinLevel& l : galerkin) {
    total += bytes_of(l.phat) + bytes_of(l.ap) + bytes_of(l.apc) + bytes_of(l.tperm);
  }
  return total;
}

std::size_t HierarchyHandle::scratch_bytes() const {
  std::size_t total = ws_.capacity_bytes();
  for (const Step& s : steps_) {
    total += bytes_of(s.aggregation.labels) + bytes_of(s.aggregation.roots) +
             bytes_of(s.coarse.graph) + bytes_of(s.coarse.vertex_weight) +
             bytes_of(s.coarse.edge_weight);
  }
  for (const OperatorLevel& l : ops_) {
    total += bytes_of(l.a) + bytes_of(l.p) + bytes_of(l.r) + bytes_of(l.inv_diag);
  }
  return total;
}

}  // namespace parmis::multilevel
