#include "multilevel/hierarchy.hpp"

#include <stdexcept>

#include "check/validate.hpp"

namespace parmis::multilevel {

namespace {

std::size_t bytes_of(const std::vector<scalar_t>& v) { return v.capacity() * sizeof(scalar_t); }
std::size_t bytes_of(const std::vector<ordinal_t>& v) { return v.capacity() * sizeof(ordinal_t); }
std::size_t bytes_of(const std::vector<offset_t>& v) { return v.capacity() * sizeof(offset_t); }

std::size_t bytes_of(const graph::CrsGraph& g) {
  return bytes_of(g.row_map) + bytes_of(g.entries);
}

std::size_t bytes_of(const graph::CrsMatrix& m) {
  return bytes_of(m.row_map) + bytes_of(m.entries) + bytes_of(m.values);
}

}  // namespace

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::Empty: return "empty";
    case StopReason::CoarseEnough: return "coarse-enough";
    case StopReason::MaxLevels: return "max-levels";
    case StopReason::Stalled: return "stalled";
    case StopReason::ComplexityCapped: return "complexity-capped";
  }
  return "?";
}

namespace {

std::size_t bytes_of(const Step& s) {
  return bytes_of(s.aggregation.labels) + bytes_of(s.aggregation.roots) +
         bytes_of(s.coarse.graph) + bytes_of(s.coarse.vertex_weight) +
         bytes_of(s.coarse.edge_weight);
}

}  // namespace

std::size_t SetupWorkspace::capacity_bytes() const {
  std::size_t total = coarsen.scratch_bytes() + contraction.capacity_bytes() +
                      bytes_of(spare_step);
  for (const GalerkinLevel& l : galerkin) {
    total += bytes_of(l.phat) + bytes_of(l.ap) + bytes_of(l.apc) + bytes_of(l.tperm);
  }
  return total;
}

std::size_t HierarchyHandle::scratch_bytes() const {
  std::size_t total = ws_.capacity_bytes();
  for (const Step& s : steps_) {
    total += bytes_of(s.aggregation.labels) + bytes_of(s.aggregation.roots) +
             bytes_of(s.coarse.graph) + bytes_of(s.coarse.vertex_weight) +
             bytes_of(s.coarse.edge_weight);
  }
  for (const OperatorLevel& l : ops_) {
    total += bytes_of(l.a) + bytes_of(l.p) + bytes_of(l.r) + bytes_of(l.inv_diag);
  }
  return total;
}

void restore_galerkin(HierarchyHandle& h, std::vector<OperatorLevel> ops,
                      std::vector<SetupWorkspace::GalerkinLevel> workspace,
                      StopReason stop) {
  if (ops.empty()) {
    throw std::invalid_argument("restore_galerkin: empty level stack");
  }
  if (!workspace.empty() && workspace.size() + 1 != ops.size()) {
    throw std::invalid_argument(
        "restore_galerkin: workspace must have one entry per coarsening step (ops - 1)");
  }
  // Unconditional structural validation — restored levels come from
  // outside the Builder (a file, another process), so this is input
  // validation, not an internal invariant, and stays on in release.
  const check::Result r = check::validate_hierarchy(ops);
  if (!r) throw std::invalid_argument("restore_galerkin: " + r.diagnostic());

  h.steps_.clear();
  h.ops_ = std::move(ops);
  h.ws_.galerkin = std::move(workspace);

  // Recompute the per-build summary from the levels: a restored hierarchy
  // reports the same stats a cold build of the same stack would (timings
  // excepted — nothing was built here).
  HierarchyStats& st = h.build_stats_;
  st = HierarchyStats{};
  st.levels = static_cast<int>(h.ops_.size());
  st.stop = stop;
  double rows = 0;
  double nnz = 0;
  for (const OperatorLevel& l : h.ops_) {
    st.level_rows.push_back(l.a.num_rows);
    st.level_entries.push_back(l.a.num_entries());
    rows += static_cast<double>(l.a.num_rows);
    nnz += static_cast<double>(l.a.num_entries());
  }
  const double rows0 = static_cast<double>(st.level_rows.front());
  const double nnz0 = static_cast<double>(st.level_entries.front());
  st.grid_complexity = rows0 > 0 ? rows / rows0 : 1.0;
  st.operator_complexity = nnz0 > 0 ? nnz / nnz0 : 1.0;

  ++h.stats_.runs;
  h.stats_.iterations += static_cast<std::uint64_t>(st.levels);
}

const std::vector<SetupWorkspace::GalerkinLevel>& galerkin_workspace(
    const HierarchyHandle& h) {
  return h.ws_.galerkin;
}

}  // namespace parmis::multilevel
