#include "multilevel/builder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "check/alloc_guard.hpp"
#include "check/check.hpp"
#include "check/validate.hpp"
#include "core/coarsen.hpp"
#include "core/coarsener.hpp"
#include "graph/ops.hpp"
#include "graph/spgemm.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/parallel_for.hpp"
#include "resilience/fault.hpp"
#include "resilience/status.hpp"

namespace parmis::multilevel {

namespace {

/// Per-level coarsening configuration under the options' seed policy.
core::CoarsenOptions level_coarsen_options(const Options& o, int level) {
  core::CoarsenOptions copts;
  copts.mis2 = o.mis2;
  copts.hem_seed = o.seed;
  if (o.reseed_per_level) {
    copts.mis2.seed ^= static_cast<std::uint64_t>(level + 1) * 0x9E3779B97F4A7C15ull;
    copts.hem_seed = o.seed + static_cast<std::uint64_t>(level);
  }
  return copts;
}

/// One level of aggregation into `out` (capacity-preserving copy from the
/// handle, or the custom hook's result).
void aggregate_level(const Options& o, const core::Coarsener* coarsener, graph::GraphView g,
                     std::span<const ordinal_t> edge_weight, core::CoarsenHandle& handle,
                     int level, core::Aggregation& out) {
  const core::CoarsenOptions copts = level_coarsen_options(o, level);
  if (o.aggregator) {
    out = o.aggregator(g, handle, copts, level);
    return;
  }
  (void)coarsener->run(g, edge_weight, handle, copts);
  const core::Aggregation& agg = handle.aggregation();
  out.labels.assign(agg.labels.begin(), agg.labels.end());
  out.roots.assign(agg.roots.begin(), agg.roots.end());
  out.num_aggregates = agg.num_aggregates;
  out.phase1_iterations = agg.phase1_iterations;
  out.phase2_iterations = agg.phase2_iterations;
}

/// Coarsening-rate floor: a step that fails to shrink, or shrinks by less
/// than the floor allows, counts as stalled.
bool step_stalled(const Options& o, ordinal_t num_coarse, ordinal_t num_fine) {
  return num_coarse >= num_fine ||
         static_cast<double>(num_coarse) > o.rate_floor * static_cast<double>(num_fine);
}

/// Tentative prolongator into an existing matrix: column a = normalized
/// indicator of aggregate a; exactly one entry per row.
void tentative_prolongator(const core::Aggregation& agg, graph::CrsMatrix& p) {
  const ordinal_t n = static_cast<ordinal_t>(agg.labels.size());
  std::vector<ordinal_t> agg_size(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < n; ++v) {
    ++agg_size[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)])];
  }

  p.num_rows = n;
  p.num_cols = agg.num_aggregates;
  p.row_map.resize(static_cast<std::size_t>(n) + 1);
  for (ordinal_t v = 0; v <= n; ++v) p.row_map[static_cast<std::size_t>(v)] = v;
  p.entries.resize(static_cast<std::size_t>(n));
  p.values.resize(static_cast<std::size_t>(n));
  par::parallel_for(n, [&](ordinal_t v) {
    const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
    p.entries[static_cast<std::size_t>(v)] = a;
    p.values[static_cast<std::size_t>(v)] =
        1.0 / std::sqrt(static_cast<scalar_t>(agg_size[static_cast<std::size_t>(a)]));
  });
}

/// Inverted diagonal into an existing buffer (capacity-preserving; zero
/// allocations warm). Same extraction and inversion as
/// `solver::inverted_diagonal`, so values are identical.
void invert_diagonal(const graph::CrsMatrix& a, std::vector<scalar_t>& inv) {
  inv.resize(static_cast<std::size_t>(a.num_rows));
  graph::extract_diagonal(a, inv);
  for (std::size_t i = 0; i < inv.size(); ++i) {
    const scalar_t v = inv[i];
    if (v == 0 || !std::isfinite(v)) {
      throw resilience::SolveError(
          resilience::SolveStatus::SingularOperator,
          resilience::FailureInfo{"setup", "setup.multilevel.zero_diagonal", -1,
                                  static_cast<std::int64_t>(i)},
          "multilevel: zero or non-finite diagonal entry at row " + std::to_string(i));
    }
    inv[i] = 1.0 / v;
  }
}

/// Row-scale `m` by `scale` in place (the D⁻¹ of prolongator smoothing).
void scale_rows(graph::CrsMatrix& m, std::span<const scalar_t> scale) {
  par::parallel_for(m.num_rows, [&](ordinal_t i) {
    const scalar_t s = scale[static_cast<std::size_t>(i)];
    for (offset_t j = m.row_map[i]; j < m.row_map[i + 1]; ++j) {
      m.values[static_cast<std::size_t>(j)] *= s;
    }
  });
}

double ratio(double num, double den) { return den > 0 ? num / den : 1.0; }

}  // namespace

const std::vector<Step>& Builder::build_steps(graph::GraphView g0, const WeightedGraph* weighted,
                                              HierarchyHandle& h) const {
  Timer build_timer;
  const Context ctx = opts_.ctx ? *opts_.ctx : Context::default_ctx();
  Context::Scope scope(ctx);
  PARMIS_SPAN("multilevel.build");
  if (opts_.ctx) h.ws_.coarsen.set_context(ctx);
  const std::size_t bytes_before = h.scratch_bytes();

  h.ops_.clear();
  h.ws_.galerkin.clear();
  HierarchyStats& st = h.build_stats_;
  st.level_rows.clear();
  st.level_entries.clear();
  st.aggregation_seconds = 0;
  st.rebuild_seconds = 0;

  std::unique_ptr<core::Coarsener> coarsener;
  if (!opts_.aggregator) coarsener = core::make_coarsener(opts_.coarsener);

  const graph::GraphView fine_view = weighted ? graph::GraphView(weighted->graph) : g0;
  st.level_rows.push_back(fine_view.num_rows);
  st.level_entries.push_back(fine_view.num_entries());

  StopReason stop = StopReason::MaxLevels;
  int nsteps = 0;
  for (int level = 0; level < opts_.max_levels; ++level) {
    // Step slots are reused across builds on the same handle (their buffer
    // capacities persist), so a warm weighted build — the recursive-
    // bisection workload — touches the allocator only when a level
    // outgrows every predecessor. A fresh slot recycles the spare parked
    // by the last stalled build.
    if (static_cast<std::size_t>(level) == h.steps_.size()) {
      h.steps_.push_back(std::move(h.ws_.spare_step));
      h.ws_.spare_step = Step{};
    }
    Step& step = h.steps_[static_cast<std::size_t>(level)];
    const WeightedGraph* cur =
        weighted ? (level == 0 ? weighted : &h.steps_[static_cast<std::size_t>(level) - 1].coarse)
                 : nullptr;
    const graph::GraphView view =
        level == 0 ? fine_view
                   : graph::GraphView(h.steps_[static_cast<std::size_t>(level) - 1].coarse.graph);
    if (view.num_rows <= opts_.min_coarse_size) {
      stop = StopReason::CoarseEnough;
      break;
    }
    const std::span<const ordinal_t> edge_weight =
        cur ? std::span<const ordinal_t>(cur->edge_weight) : std::span<const ordinal_t>{};

    obs::Span level_span("multilevel.level");
    level_span.arg("level", level);
    level_span.arg("rows", view.num_rows);
    Timer agg_timer;
    {
      PARMIS_SPAN("multilevel.aggregate");
      aggregate_level(opts_, coarsener.get(), view, edge_weight, h.ws_.coarsen, level,
                      step.aggregation);
    }
    st.aggregation_seconds += agg_timer.seconds();
    if (step_stalled(opts_, step.aggregation.num_aggregates, view.num_rows)) {
      stop = StopReason::Stalled;
      break;
    }

    {
      PARMIS_SPAN("multilevel.contract");
      if (weighted) {
        coarsen_weighted(*cur, step.aggregation.labels, step.aggregation.num_aggregates,
                         step.coarse, h.ws_.contraction);
      } else {
        step.coarse.graph = core::coarse_graph(view, step.aggregation);
        step.coarse.vertex_weight.clear();
        step.coarse.edge_weight.clear();
      }
    }
    st.level_rows.push_back(step.coarse.graph.num_rows);
    st.level_entries.push_back(step.coarse.graph.num_entries());
    ++nsteps;
  }
  if (h.steps_.size() > static_cast<std::size_t>(nsteps)) {
    // Park the first dropped step (the one a stall just aggregated into)
    // so its buffers survive for the next build on this handle.
    h.ws_.spare_step = std::move(h.steps_[static_cast<std::size_t>(nsteps)]);
    h.steps_.resize(static_cast<std::size_t>(nsteps));
  }

  st.levels = nsteps + 1;
  st.stop = stop;
  double rows = 0, entries = 0;
  for (std::size_t l = 0; l < st.level_rows.size(); ++l) {
    rows += st.level_rows[l];
    entries += static_cast<double>(st.level_entries[l]);
  }
  st.grid_complexity = ratio(rows, st.level_rows.front());
  st.operator_complexity = ratio(entries, static_cast<double>(st.level_entries.front()));
  st.build_seconds = build_timer.seconds();

  ++h.stats_.runs;
  h.stats_.iterations += static_cast<std::uint64_t>(st.levels);
  if (h.scratch_bytes() > bytes_before) ++h.stats_.scratch_grows;
  PARMIS_CHECK_OK(check::validate_steps(fine_view.num_rows, h.steps_));
  return h.steps_;
}

const std::vector<Step>& Builder::build(graph::GraphView g, HierarchyHandle& handle) const {
  return build_steps(g, nullptr, handle);
}

const std::vector<Step>& Builder::build_weighted(const WeightedGraph& g,
                                                 HierarchyHandle& handle) const {
  return build_steps(graph::GraphView(g.graph), &g, handle);
}

const std::vector<OperatorLevel>& Builder::build_galerkin(graph::CrsMatrix a_fine,
                                                          HierarchyHandle& h) const {
  Timer build_timer;
  const Context ctx = opts_.ctx ? *opts_.ctx : Context::default_ctx();
  Context::Scope scope(ctx);
  PARMIS_SPAN("multilevel.build_galerkin");
  if (opts_.ctx) h.ws_.coarsen.set_context(ctx);
  const std::size_t bytes_before = h.scratch_bytes();

  h.steps_.clear();
  HierarchyStats& st = h.build_stats_;
  st.level_rows.clear();
  st.level_entries.clear();
  st.aggregation_seconds = 0;
  st.rebuild_seconds = 0;

  std::unique_ptr<core::Coarsener> coarsener;
  if (!opts_.aggregator) coarsener = core::make_coarsener(opts_.coarsener);

  std::vector<OperatorLevel>& ops = h.ops_;
  std::vector<SetupWorkspace::GalerkinLevel>& gws = h.ws_.galerkin;
  graph::CrsMatrix current = std::move(a_fine);
  const double nnz0 = static_cast<double>(current.num_entries());
  double total_nnz = 0;
  core::Aggregation agg;
  StopReason stop = StopReason::MaxLevels;
  const int max_steps = std::max(0, opts_.max_levels);
  std::size_t nlevels = 0;
  for (int level = 0;; ++level) {
    if (static_cast<std::size_t>(level) == ops.size()) ops.emplace_back();
    OperatorLevel& lvl = ops[static_cast<std::size_t>(level)];
    lvl.a = std::move(current);
    lvl.num_aggregates = 0;
    invert_diagonal(lvl.a, lvl.inv_diag);
    total_nnz += static_cast<double>(lvl.a.num_entries());
    st.level_rows.push_back(lvl.a.num_rows);
    st.level_entries.push_back(lvl.a.num_entries());
    nlevels = static_cast<std::size_t>(level) + 1;

    const bool small_enough = lvl.a.num_rows <= opts_.min_coarse_size;
    if (small_enough || level == max_steps) {
      stop = small_enough ? StopReason::CoarseEnough : StopReason::MaxLevels;
      lvl.p = graph::CrsMatrix{};
      lvl.r = graph::CrsMatrix{};
      break;
    }

    obs::Span level_span("multilevel.level");
    level_span.arg("level", level);
    level_span.arg("rows", lvl.a.num_rows);
    const graph::CrsGraph adj = graph::remove_self_loops(graph::GraphView(lvl.a));
    Timer agg_timer;
    {
      PARMIS_SPAN("multilevel.aggregate_galerkin");
      if (PARMIS_FAULT_POINT("multilevel.aggregate_fail")) {
        resilience::FailureInfo info;
        info.stage = "setup";
        info.reason = "setup.multilevel.injected_fault";
        throw resilience::SolveError(resilience::SolveStatus::SetupFailed, info,
                                     "injected fault: multilevel aggregation failed at level " +
                                         std::to_string(level));
      }
      aggregate_level(opts_, coarsener.get(), adj, {}, h.ws_.coarsen, level, agg);
    }
    st.aggregation_seconds += agg_timer.seconds();
    lvl.num_aggregates = agg.num_aggregates;
    if (step_stalled(opts_, agg.num_aggregates, lvl.a.num_rows)) {
      stop = StopReason::Stalled;
      lvl.p = graph::CrsMatrix{};
      lvl.r = graph::CrsMatrix{};
      break;
    }

    if (static_cast<std::size_t>(level) == gws.size()) gws.emplace_back();
    SetupWorkspace::GalerkinLevel& gl = gws[static_cast<std::size_t>(level)];
    graph::CrsMatrix next;
    {
      PARMIS_SPAN("multilevel.triple_product");
      tentative_prolongator(agg, gl.phat);
      PARMIS_CHECK_OK(check::validate_prolongator(gl.phat, lvl.a.num_rows, agg.num_aggregates,
                                                  /*require_column_partition=*/true));
      // P = (I - omega D^{-1} A) P̂: ap holds the D⁻¹-scaled product so the
      // warm rebuild can replay the same three steps value-only.
      gl.ap = graph::spgemm(lvl.a, gl.phat);
      scale_rows(gl.ap, lvl.inv_diag);
      lvl.p = graph::matrix_add(1.0, gl.phat, -opts_.prolongator_omega, gl.ap);
      lvl.r = graph::transpose_matrix(lvl.p);
      gl.tperm = graph::transpose_permutation(lvl.p);
      gl.apc = graph::spgemm(lvl.a, lvl.p);
      next = graph::spgemm(lvl.r, gl.apc);
    }

    // Operator-complexity cap: accepting `next` would blow the budget, so
    // stop coarsening here instead of densifying (the AMG+HEM power-law
    // guard). The transfers just built are discarded.
    if (opts_.complexity_cap > 0 &&
        ratio(total_nnz + static_cast<double>(next.num_entries()), nnz0) >
            opts_.complexity_cap) {
      stop = StopReason::ComplexityCapped;
      lvl.p = graph::CrsMatrix{};
      lvl.r = graph::CrsMatrix{};
      break;
    }
    current = std::move(next);
  }
  ops.resize(nlevels);
  gws.resize(nlevels > 0 ? nlevels - 1 : 0);

  st.levels = static_cast<int>(nlevels);
  st.stop = stop;
  double rows = 0;
  for (const ordinal_t r : st.level_rows) rows += r;
  st.grid_complexity = ratio(rows, st.level_rows.front());
  st.operator_complexity = ratio(total_nnz, nnz0);
  st.build_seconds = build_timer.seconds();

  ++h.stats_.runs;
  h.stats_.iterations += static_cast<std::uint64_t>(st.levels);
  if (h.scratch_bytes() > bytes_before) ++h.stats_.scratch_grows;
  PARMIS_CHECK_OK(check::validate_hierarchy(ops));
  return ops;
}

const std::vector<OperatorLevel>& Builder::rebuild_galerkin(const graph::CrsMatrix& a_fine,
                                                            HierarchyHandle& h) const {
  if (h.ops_.empty()) {
    throw std::logic_error("rebuild_galerkin: no Galerkin hierarchy on this handle");
  }
  if (h.ops_.size() > 1 && h.ws_.galerkin.size() + 1 != h.ops_.size()) {
    // A hierarchy restored without its Galerkin workspace (solve-only
    // snapshot) has nothing to replay values into.
    throw std::logic_error(
        "rebuild_galerkin: hierarchy has no rebuild workspace (restored solve-only?)");
  }
  OperatorLevel& fine = h.ops_.front();
  // Full sparsity check, not just shapes: replaying values into a stale
  // pattern would produce a silently wrong hierarchy. O(nnz), negligible
  // next to the triple products below.
  if (a_fine.num_rows != fine.a.num_rows || a_fine.num_cols != fine.a.num_cols ||
      a_fine.row_map != fine.a.row_map || a_fine.entries != fine.a.entries) {
    throw std::invalid_argument("rebuild_galerkin: matrix structure differs from the build");
  }

  Timer rebuild_timer;
  const Context ctx = opts_.ctx ? *opts_.ctx : Context::default_ctx();
  Context::Scope scope(ctx);
  PARMIS_SPAN("multilevel.rebuild");
  const std::size_t bytes_before = h.scratch_bytes();

  std::copy(a_fine.values.begin(), a_fine.values.end(), fine.a.values.begin());
  // The rebuild is a value-only replay into buffers sized by the cold
  // build; its documented contract is zero allocations. Enforce that at
  // the allocator, not just via scratch_bytes accounting.
  check::AllocGuard guard;
  const std::size_t nlevels = h.ops_.size();
  for (std::size_t l = 0; l < nlevels; ++l) {
    OperatorLevel& lvl = h.ops_[l];
    obs::Span level_span("multilevel.rebuild_level");
    level_span.arg("level", static_cast<std::int64_t>(l));
    invert_diagonal(lvl.a, lvl.inv_diag);
    if (l + 1 == nlevels) break;
    SetupWorkspace::GalerkinLevel& gl = h.ws_.galerkin[l];
    // Value-only replay of the setup: P̂'s values depend only on aggregate
    // sizes (unchanged), so smoothing and the triple product recompute in
    // place, in the cold build's exact accumulation order.
    graph::spgemm_numeric(lvl.a, gl.phat, gl.ap);
    scale_rows(gl.ap, lvl.inv_diag);
    graph::matrix_add_numeric(1.0, gl.phat, -opts_.prolongator_omega, gl.ap, lvl.p);
    graph::transpose_numeric(lvl.p, gl.tperm, lvl.r);
    graph::spgemm_numeric(lvl.a, lvl.p, gl.apc);
    graph::spgemm_numeric(lvl.r, gl.apc, h.ops_[l + 1].a);
  }

  PARMIS_CHECK_MSG(obs::tracing_enabled() || guard.allocations() == 0,
                   "rebuild_galerkin warm replay allocated");
  h.build_stats_.rebuild_seconds = rebuild_timer.seconds();
  ++h.stats_.runs;
  h.stats_.iterations += static_cast<std::uint64_t>(nlevels);
  if (h.scratch_bytes() > bytes_before) ++h.stats_.scratch_grows;
  PARMIS_CHECK_OK(check::validate_hierarchy(h.ops_));
  return h.ops_;
}

}  // namespace parmis::multilevel
