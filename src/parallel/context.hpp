#pragma once
/// \file context.hpp
/// \brief Explicit, value-type execution contexts.
///
/// The library's parallel primitives historically read one global
/// configuration (`par::Execution`). That singleton still exists — it is
/// what `Context::default_ctx()` snapshots — but the core algorithms now
/// take a `Context` by value and *pin* it for the duration of a call with
/// `Context::Scope`, so two callers (a multilevel hierarchy on OpenMP and a
/// service thread forced Serial, say) no longer fight over process-global
/// state. A `Context` is cheap to copy, compare, and store inside handles
/// (`core::Mis2Handle`, `core::CoarsenHandle`).
///
/// Determinism contract: every algorithm in this library produces
/// bit-identical results under any `Context`, so the context only selects
/// *how* the work runs (backend, thread count, loop schedule, SIMD
/// eligibility), never *what* it computes. Two exceptions: `seed` is
/// deliberately part of the result (folded into the priority hashes so
/// distinct seeds give distinct but individually reproducible outputs),
/// and `schedule = Dynamic` opts out of reproducible work *placement*
/// (own-slot kernels still give identical results, but Dynamic is excluded
/// from the determinism tests — see `par::Schedule`).

#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "parallel/execution.hpp"
#include "parallel/simd.hpp"

namespace parmis {

/// Value-type execution configuration, threaded explicitly through the
/// core API (MIS-2, aggregation, coarsening, and everything built on them).
struct Context {
  /// Requested backend. May silently be unavailable in this build; use
  /// `validate()` to learn what will actually run.
  par::Backend backend =
#ifdef PARMIS_HAVE_OPENMP
      par::Backend::OpenMP;
#else
      par::Backend::Serial;
#endif

  /// OpenMP worker-thread count; `<= 0` means the hardware default.
  int num_threads = 0;

  /// How parallel loops partition work across threads. `EdgeBalanced`
  /// splits degree-shaped loops into equal-*cost* chunks (the fast default
  /// on skewed-degree inputs); `Static` reproduces the historical
  /// equal-count partition; `Dynamic` is the non-reproducible opt-out.
  /// Never changes results for Static/EdgeBalanced.
  par::Schedule schedule = par::Schedule::EdgeBalanced;

  /// Average-degree threshold for the vector-level (SIMD) inner loops
  /// (paper §V-D). Kernels compare `avg_degree() >= simd_degree_threshold`.
  double simd_degree_threshold = par::simd_degree_threshold;

  /// Extra seed folded into every priority hash issued under this context
  /// (XORed with per-call option seeds). 0 reproduces the paper's
  /// generator.
  std::uint64_t seed = 0;

  /// Tracing for the scope (`obs::TraceOptions`). The default `Inherit`
  /// leaves the ambient (process-global) tracing state untouched, so
  /// contexts that never mention tracing keep composing exactly as before;
  /// `On`/`Off` pin it for the scope and restore on exit. Tracing is
  /// observational only — it never changes results.
  obs::TraceOptions trace{};

  /// Snapshot of the process-global `par::Execution` configuration — the
  /// migration bridge: code that never mentions contexts keeps its exact
  /// pre-Context behavior.
  [[nodiscard]] static Context default_ctx();

  /// Single-threaded reference context.
  [[nodiscard]] static Context serial();

  /// OpenMP context with `threads` workers (`<= 0` = hardware default).
  /// In builds without PARMIS_HAVE_OPENMP this request falls back to
  /// Serial at activation; `validate()` reports the fallback.
  [[nodiscard]] static Context openmp(int threads = 0);

  /// What this context resolves to in the current build.
  struct Validation {
    par::Backend requested{par::Backend::Serial};  ///< what the context asked for
    par::Backend effective{par::Backend::Serial};  ///< what will actually run
    int effective_threads{1};  ///< resolved worker count (>= 1)
    bool fell_back{false};     ///< requested backend unavailable in this build
    std::string message;       ///< human-readable summary (non-empty iff fell_back)
  };

  /// Resolve the requested configuration against compiled-in backend
  /// support without mutating any global state.
  [[nodiscard]] Validation validate() const;

  /// RAII activation: pins the global execution configuration to this
  /// context for the current scope, restoring the previous configuration
  /// on destruction. This is how explicit contexts reach the
  /// `parallel_for`/`reduce`/`scan` primitive layer.
  class Scope {
   public:
    explicit Scope(const Context& ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    par::Backend saved_backend_;
    int saved_threads_;
    par::Schedule saved_schedule_;
    obs::TraceState saved_trace_{};
    bool trace_pinned_ = false;
  };

  friend bool operator==(const Context&, const Context&) = default;
};

}  // namespace parmis
