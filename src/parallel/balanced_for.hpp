#pragma once
/// \file balanced_for.hpp
/// \brief Cost-aware (edge-balanced) loop partitioning.
///
/// `parallel_for` splits an index range into equal *counts* per thread —
/// fine when every iteration costs the same, pathological when iteration
/// `i` walks row `i` of a skewed-degree graph: one thread draws the hub
/// rows and serializes the sweep. The primitives here split by equal
/// *cost* instead: the caller hands a prefix-sum cost array (usually just
/// `row_map`, whose differences are the row degrees), and chunk boundaries
/// are found by binary search into it — the merge-path partition.
///
/// Determinism: chunk boundaries are a pure function of
/// (range, cost array, chunk count), never of thread timing, and every
/// loop body in this library writes only its own slot, so results stay
/// bit-identical across backends and thread counts under `Static` and
/// `EdgeBalanced`. `Schedule::Dynamic` opts out of reproducible work
/// *placement* (results of own-slot bodies are still identical); it is
/// excluded from the determinism contract.
///
/// The policy is selected through `Execution::schedule()` — thread-local,
/// pinned by `Context::Scope` like the backend — so a kernel written
/// against `balanced_for` serves all three schedules with one body.

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "parallel/execution.hpp"
#include "parallel/parallel_for.hpp"

#ifdef PARMIS_HAVE_OPENMP
#include <omp.h>
#endif

namespace parmis::par {

/// Number of chunks `balanced_chunks` will create under the current
/// configuration. Stable between consecutive calls on the same thread with
/// unchanged configuration — callers allocate per-chunk scratch (arenas,
/// histograms) against this count.
inline int balanced_chunk_count() {
  return Execution::is_parallel() ? Execution::num_threads() : 1;
}

/// Boundary `t` of the cost-balanced partition of `[0, n)` into `nchunks`
/// chunks: chunk `c` is `[bound(c), bound(c+1))`. `prefix` has `n + 1`
/// non-decreasing entries (`prefix[i+1] - prefix[i]` = cost of iteration
/// `i`; a CRS `row_map` qualifies verbatim). Boundary `t` is the smallest
/// index whose prefix cost reaches `t/nchunks` of the total, so zero-cost
/// runs (empty rows) attach to the chunk on their right and a giant row
/// occupies its chunk alone once its cost exceeds the per-chunk target.
/// Falls back to the equal-count partition when the total cost is zero.
template <typename Index, typename Cost>
Index balanced_chunk_bound(Index n, const Cost* prefix, int nchunks, int t) {
  if (t <= 0) return Index{0};
  if (t >= nchunks) return n;
  const std::int64_t total = static_cast<std::int64_t>(prefix[n]) - prefix[0];
  if (total <= 0) {
    return static_cast<Index>((static_cast<std::int64_t>(n) * t) / nchunks);
  }
  const std::int64_t target =
      static_cast<std::int64_t>(prefix[0]) + (total * t) / nchunks;
  const Cost* it = std::lower_bound(prefix, prefix + n + 1, target,
                                    [](Cost a, std::int64_t b) {
                                      return static_cast<std::int64_t>(a) < b;
                                    });
  return static_cast<Index>(it - prefix);
}

/// Execute `f(chunk, begin, end)` over a contiguous, ascending partition of
/// `[0, n)` into `balanced_chunk_count()` chunks, one chunk per thread.
/// Boundaries are cost-balanced through `prefix` (see
/// `balanced_chunk_bound`), or equal-count when `prefix` is null or the
/// schedule is `Static`. Chunks are disjoint and each runs entirely on one
/// thread, so per-chunk scratch indexed by the chunk id is race-free.
///
/// Two consecutive calls with the same (n, prefix, configuration) produce
/// identical boundaries — the counting-sort builders rely on this to pair
/// a histogram pass with a placement pass.
template <typename Index, typename Cost, typename F>
void balanced_chunks(Index n, const Cost* prefix, F&& f) {
  if (n <= 0) return;
  // Per-chunk wall-time spans, decimated by TraceOptions::chunk_sample_every
  // — the measured-cost feedback the work-stealing ROADMAP item needs.
  // One sampling decision per loop, taken before the parallel region so
  // every chunk of a sampled loop records.
  const bool sample_chunks = obs::chunk_sampling_due();
#ifdef PARMIS_HAVE_OPENMP
  if (Execution::is_parallel() && static_cast<std::int64_t>(n) >= parallel_for_grain) {
    const int nchunks = balanced_chunk_count();
    const bool by_cost = prefix != nullptr && Execution::schedule() != Schedule::Static;
#pragma omp parallel num_threads(nchunks)
    {
      // The runtime may grant fewer threads than requested; stride so all
      // nchunks chunks run regardless (boundaries never depend on the
      // granted count).
      const int granted = omp_get_num_threads();
      for (int c = omp_get_thread_num(); c < nchunks; c += granted) {
        const Index lo = by_cost
                             ? balanced_chunk_bound(n, prefix, nchunks, c)
                             : static_cast<Index>((static_cast<std::int64_t>(n) * c) / nchunks);
        const Index hi = by_cost
                             ? balanced_chunk_bound(n, prefix, nchunks, c + 1)
                             : static_cast<Index>((static_cast<std::int64_t>(n) * (c + 1)) / nchunks);
        if (lo < hi) {
          if (sample_chunks) {
            obs::Span span("par.chunk");
            span.arg("chunk", c);
            span.arg("items", static_cast<std::int64_t>(hi - lo));
            f(c, lo, hi);
          } else {
            f(c, lo, hi);
          }
        }
      }
    }
    return;
  }
#endif
  (void)prefix;
  if (sample_chunks) {
    obs::Span span("par.chunk");
    span.arg("chunk", 0);
    span.arg("items", static_cast<std::int64_t>(n));
    f(0, Index{0}, n);
  } else {
    f(0, Index{0}, n);
  }
}

/// Execute `f(i)` for every `i` in `[0, n)` under the active `Schedule`:
/// `Static` = equal-count chunks (the `parallel_for` partition),
/// `EdgeBalanced` = equal-cost chunks through `prefix`, `Dynamic` = OpenMP
/// dynamic scheduling. Iterations must be independent, exactly as for
/// `parallel_for`. Pass the cost prefix of the per-iteration work — for a
/// loop that walks row `i` of a CRS structure, that is the `row_map`
/// itself. A null `prefix` degrades EdgeBalanced to Static.
template <typename Index, typename Cost, typename F>
void balanced_for(Index n, const Cost* prefix, F&& f) {
  if (n <= 0) return;
#ifdef PARMIS_HAVE_OPENMP
  if (Execution::is_parallel() && static_cast<std::int64_t>(n) >= parallel_for_grain &&
      Execution::schedule() == Schedule::Dynamic) {
    const int nt = Execution::num_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt)
    for (Index i = 0; i < n; ++i) {
      f(i);
    }
    return;
  }
#endif
  balanced_chunks(n, prefix, [&](int, Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) f(i);
  });
}

/// Cost-balanced sum of `f(i)` over `[0, n)`. Integral accumulators only:
/// chunk boundaries vary with the thread count, so only exactly-associative
/// sums are invariant under them (floating-point reductions must keep using
/// the fixed-chunk `reduce_sum`).
template <typename T, typename Index, typename Cost, typename F>
T balanced_reduce_sum(Index n, const Cost* prefix, F&& f) {
  static_assert(std::is_integral_v<T>,
                "balanced_reduce_sum requires an exactly-associative (integral) "
                "accumulator; use par::reduce_sum for floating point");
  if (n <= 0) return T{0};
  std::vector<T> partial(static_cast<std::size_t>(balanced_chunk_count()), T{0});
  balanced_chunks(n, prefix, [&](int c, Index lo, Index hi) {
    T acc{0};
    for (Index i = lo; i < hi; ++i) acc += f(i);
    partial[static_cast<std::size_t>(c)] = acc;
  });
  T acc{0};
  for (const T& p : partial) acc += p;
  return acc;
}

/// Cost-balanced count of indices satisfying `pred`.
template <typename Index, typename Cost, typename Pred>
std::int64_t balanced_count_if(Index n, const Cost* prefix, Pred&& pred) {
  return balanced_reduce_sum<std::int64_t>(
      n, prefix, [&](Index i) -> std::int64_t { return pred(i) ? 1 : 0; });
}

/// True when the active configuration will consult a cost prefix — the
/// guard kernels use to skip *building* one (a Static or serial run never
/// reads it).
inline bool schedule_uses_costs() {
  return Execution::schedule() != Schedule::Static && Execution::is_parallel();
}

/// Cross-chunk cursor scan shared by the two-pass chunked counting sorts
/// (transpose, aggregate-member grouping). On entry
/// `counts[q * nkeys + k]` holds chunk `q`'s occurrence count of key `k`
/// (from a histogram pass over `balanced_chunks`); on exit it holds chunk
/// `q`'s starting cursor *within* key `k`'s output segment, and
/// `offsets[k + 1]` the total occurrences of `k` (`offsets[0]` is left
/// untouched; callers prefix-scan `offsets` afterwards). The placement
/// pass must then re-run `balanced_chunks` with identical inputs — its
/// boundary-repeatability guarantee is what pairs the two passes.
template <typename Index, typename C>
void chunked_cursor_scan(Index nkeys, int nchunks, std::vector<C>& counts,
                         std::vector<C>& offsets) {
  parallel_for(nkeys, [&](Index k) {
    C run{0};
    for (int q = 0; q < nchunks; ++q) {
      C& slot = counts[static_cast<std::size_t>(q) * static_cast<std::size_t>(nkeys) +
                       static_cast<std::size_t>(k)];
      const C v = slot;
      slot = run;
      run += v;
    }
    offsets[static_cast<std::size_t>(k) + 1] = run;
  });
}

}  // namespace parmis::par
