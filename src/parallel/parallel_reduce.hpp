#pragma once
/// \file parallel_reduce.hpp
/// \brief Deterministic parallel reductions.
///
/// Floating-point addition is not associative, so a naive
/// `#pragma omp parallel for reduction(+:...)` produces results that depend
/// on the thread count. Determinism across backends and thread counts is a
/// headline property of the paper, and the solvers in this repository
/// (CG/GMRES iteration counts!) must not drift when threads change.
///
/// The scheme here: the range is cut into fixed-size chunks (independent of
/// the thread count), each chunk is reduced serially left-to-right, and the
/// per-chunk partials are combined serially in chunk order. Every partial is
/// computed identically no matter which thread ran it, so the final value is
/// bit-reproducible.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "parallel/execution.hpp"
#include "parallel/parallel_for.hpp"

namespace parmis::par {

/// Chunk width for deterministic reductions. Fixed (never derived from the
/// thread count) so the combine tree is invariant.
inline constexpr std::int64_t reduce_chunk = 4096;

namespace detail {

/// Thread-local growable buffer for the per-chunk partials of
/// `parallel_reduce`. Reductions are called from warm solver loops that
/// promise zero heap allocations per call (`SolveHandle`'s AllocGuard
/// contract); a per-call `std::vector` would break that promise the first
/// time n exceeds `reduce_chunk`. The buffer grows monotonically and is
/// reused by every reduction on the thread; only the calling thread touches
/// it (the inner `parallel_for` workers write through the pointer, which is
/// safe: slots are disjoint per chunk).
inline std::byte* reduce_scratch(std::size_t bytes) {
  thread_local std::vector<std::byte> buf;
  if (buf.size() < bytes) buf.resize(bytes);
  return buf.data();
}

}  // namespace detail

/// Deterministic reduction of `f(i)` over `i in [0, n)` with a binary
/// `join` and an `identity` element. `join` need not be commutative; the
/// combine order is always ascending index order.
template <typename T, typename Index, typename F, typename Join>
T parallel_reduce(Index n, F&& f, Join&& join, T identity) {
  const std::int64_t len = static_cast<std::int64_t>(n);
  if (len <= 0) return identity;

  const std::int64_t nchunks = (len + reduce_chunk - 1) / reduce_chunk;
  if (nchunks == 1) {
    T acc = identity;
    for (Index i = 0; i < n; ++i) acc = join(acc, f(i));
    return acc;
  }

  // The chunked combine runs even on the serial backend so the reduction
  // tree — and therefore the floating-point result — is identical for
  // every backend and thread count. Trivial accumulator types (every
  // solver reduction) stage their partials in the thread-local scratch so
  // warm reductions allocate nothing; other types fall back to a vector.
  const auto run = [&](T* partial) {
    parallel_for(nchunks, [&](std::int64_t c) {
      const Index lo = static_cast<Index>(c * reduce_chunk);
      const Index hi = static_cast<Index>(std::min<std::int64_t>(len, (c + 1) * reduce_chunk));
      T acc = identity;
      for (Index i = lo; i < hi; ++i) acc = join(acc, f(i));
      partial[static_cast<std::size_t>(c)] = acc;
    });
    T acc = identity;
    for (std::int64_t c = 0; c < nchunks; ++c) acc = join(acc, partial[c]);
    return acc;
  };
  if constexpr (std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>) {
    return run(reinterpret_cast<T*>(
        detail::reduce_scratch(static_cast<std::size_t>(nchunks) * sizeof(T))));
  } else {
    std::vector<T> partial(static_cast<std::size_t>(nchunks), identity);
    return run(partial.data());
  }
}

/// Deterministic sum of `f(i)` over `[0, n)`.
template <typename T, typename Index, typename F>
T reduce_sum(Index n, F&& f) {
  return parallel_reduce<T>(
      n, f, [](T a, T b) { return a + b; }, T{0});
}

/// Deterministic minimum of `f(i)` over `[0, n)`; returns `identity` when
/// the range is empty.
template <typename T, typename Index, typename F>
T reduce_min(Index n, F&& f, T identity) {
  return parallel_reduce<T>(
      n, f, [](T a, T b) { return b < a ? b : a; }, identity);
}

/// Deterministic maximum of `f(i)` over `[0, n)`.
template <typename T, typename Index, typename F>
T reduce_max(Index n, F&& f, T identity) {
  return parallel_reduce<T>(
      n, f, [](T a, T b) { return a < b ? b : a; }, identity);
}

/// Deterministic count of indices satisfying a predicate.
template <typename Index, typename Pred>
std::int64_t count_if(Index n, Pred&& pred) {
  return reduce_sum<std::int64_t>(n, [&](Index i) -> std::int64_t { return pred(i) ? 1 : 0; });
}

}  // namespace parmis::par
