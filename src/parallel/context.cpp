#include "parallel/context.hpp"

namespace parmis {

Context Context::default_ctx() {
  Context ctx;
  ctx.backend = par::Execution::backend();
  ctx.num_threads = par::Execution::thread_setting();
  ctx.schedule = par::Execution::schedule();
  return ctx;
}

Context Context::serial() {
  Context ctx;
  ctx.backend = par::Backend::Serial;
  ctx.num_threads = 1;
  return ctx;
}

Context Context::openmp(int threads) {
  Context ctx;
  ctx.backend = par::Backend::OpenMP;
  ctx.num_threads = threads;
  return ctx;
}

Context::Validation Context::validate() const {
  Validation v;
  v.requested = backend;
  v.effective = backend;
#ifndef PARMIS_HAVE_OPENMP
  if (backend == par::Backend::OpenMP) {
    v.effective = par::Backend::Serial;
    v.fell_back = true;
    v.message = "OpenMP backend requested but this build has no PARMIS_HAVE_OPENMP; "
                "falling back to Serial";
  }
#endif
  if (v.effective == par::Backend::Serial) {
    v.effective_threads = 1;
  } else {
    v.effective_threads = num_threads > 0 ? num_threads : par::Execution::max_threads();
  }
  return v;
}

Context::Scope::Scope(const Context& ctx)
    // Save the *requested* backend, not the effective one: restoring
    // through set_backend() then reproduces both fields exactly, so a
    // surrounding fallback (requested OpenMP, effective Serial) stays
    // visible through requested_backend() after the scope exits.
    : saved_backend_(par::Execution::requested_backend()),
      saved_threads_(par::Execution::thread_setting()),
      saved_schedule_(par::Execution::schedule()) {
  par::Execution::set_backend(ctx.backend);
  par::Execution::set_num_threads(ctx.num_threads);
  par::Execution::set_schedule(ctx.schedule);
  // Tracing state is only touched when the context asks for a change —
  // `Inherit` keeps an enclosing traced region visible through handles
  // whose contexts were snapshotted before tracing was enabled.
  if (ctx.trace.mode != obs::TraceOptions::Mode::Inherit) {
    saved_trace_ = obs::trace_state();
    trace_pinned_ = true;
    obs::set_tracing(ctx.trace.mode == obs::TraceOptions::Mode::On,
                     ctx.trace.chunk_sample_every);
  }
}

Context::Scope::~Scope() {
  if (trace_pinned_) obs::restore_tracing(saved_trace_);
  par::Execution::set_backend(saved_backend_);
  par::Execution::set_num_threads(saved_threads_);
  par::Execution::set_schedule(saved_schedule_);
}

}  // namespace parmis
