#pragma once
/// \file execution.hpp
/// \brief Portable execution-space configuration (the Kokkos-analogue layer).
///
/// The paper implements its algorithms on top of Kokkos so one source runs on
/// CUDA, HIP, OpenMP and Serial backends. This library provides the same
/// separation at laptop scale: every parallel kernel is written against the
/// primitives in this directory (`parallel_for`, `parallel_reduce`,
/// `parallel_scan`, SIMD inner reductions) and executes on either the Serial
/// or the OpenMP backend, selected at runtime. All primitives are
/// deterministic: results are bit-identical for any backend and thread count.

namespace parmis::par {

/// Available execution backends ("execution spaces" in Kokkos terms).
enum class Backend {
  Serial,  ///< single-threaded reference backend
  OpenMP,  ///< multi-threaded host backend
};

/// How parallel loops partition their iteration space across threads.
///
/// `Static` and `EdgeBalanced` are fully deterministic: the chunk
/// boundaries are a pure function of the range (and, for `EdgeBalanced`,
/// the caller-supplied cost array), never of thread timing. `Dynamic` is
/// the explicit opt-out — OpenMP hands chunks to whichever thread is free,
/// so the work *assignment* is timing-dependent (results of the library's
/// own kernels are still bit-identical because every loop body writes only
/// its own slot, but Dynamic is excluded from the determinism contract and
/// tests).
enum class Schedule {
  Static,        ///< equal iteration counts per chunk (the historical partition)
  EdgeBalanced,  ///< equal *cost* per chunk via binary search into a prefix-sum array
  Dynamic,       ///< OpenMP dynamic scheduling (work stealing; opt-out, see above)
};

/// Runtime execution configuration, *per OS thread* (thread-local): each
/// thread that enters the library owns its own backend/thread-count
/// setting, so concurrent callers pinning different `Context`s never race.
/// A freshly spawned thread starts from the build default, not from the
/// spawning thread's setting — capture a `Context` and activate it on the
/// new thread to hand the configuration over.
///
/// Defaults to the OpenMP backend with all hardware threads when compiled
/// with PARMIS_HAVE_OPENMP, otherwise Serial.
class Execution {
 public:
  /// Currently selected (effective) backend.
  static Backend backend();

  /// The backend most recently *requested* through set_backend. Differs
  /// from backend() exactly when the request fell back (OpenMP requested
  /// in a build without PARMIS_HAVE_OPENMP).
  static Backend requested_backend();

  /// Select the backend. Selecting OpenMP without PARMIS_HAVE_OPENMP falls
  /// back to Serial; the fallback is surfaced through the return value
  /// (the backend that will actually run) and requested_backend().
  static Backend set_backend(Backend b);

  /// Number of worker threads the OpenMP backend will use.
  static int num_threads();

  /// Set OpenMP worker-thread count; `n <= 0` restores the hardware default.
  static void set_num_threads(int n);

  /// The raw thread setting as last passed to set_num_threads (0 =
  /// hardware default), before backend resolution. Save/restore this, not
  /// num_threads(), to round-trip the configuration exactly.
  static int thread_setting();

  /// Loop-partitioning policy consulted by `balanced_for` and the other
  /// cost-aware primitives (`parallel_for` is always Static-partitioned).
  static Schedule schedule();

  /// Select the loop-partitioning policy (thread-local, like the backend).
  static void set_schedule(Schedule s);

  /// Number of hardware threads available to the OpenMP backend.
  static int max_threads();

  /// True if the current configuration executes loops concurrently.
  static bool is_parallel();
};

/// RAII guard that pins backend + thread count for a scope (used heavily by
/// determinism tests and the strong-scaling benchmarks).
class ScopedExecution {
 public:
  /// Pin backend + thread count; the schedule is left as-is (but still
  /// restored on exit, so a nested set_schedule cannot leak).
  ScopedExecution(Backend b, int threads);
  /// Pin backend + thread count + schedule.
  ScopedExecution(Backend b, int threads, Schedule s);
  ~ScopedExecution();
  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

 private:
  Backend saved_backend_;
  Backend saved_requested_;
  int saved_threads_;
  Schedule saved_schedule_;
};

}  // namespace parmis::par
