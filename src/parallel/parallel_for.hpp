#pragma once
/// \file parallel_for.hpp
/// \brief Data-parallel loop over an index range (Kokkos `parallel_for`
/// analogue).

#include <cstdint>
#include <utility>

#include "parallel/execution.hpp"

namespace parmis::par {

/// Minimum trip count before the OpenMP backend spawns a parallel region.
/// Short loops run serially; this threshold never changes results because
/// every functor used in this library is race-free by construction.
inline constexpr std::int64_t parallel_for_grain = 512;

/// Execute `f(i)` for every `i` in `[0, n)` with an explicit parallel
/// threshold: loops shorter than `grain` run serially. Use a small grain
/// when each iteration is heavyweight (e.g. one whole cluster per
/// iteration in cluster Gauss-Seidel).
///
/// Iterations must be independent (no iteration may observe another's
/// writes). Scheduling is static so the work partition is reproducible,
/// though correctness never depends on it.
template <typename Index, typename F>
void parallel_for_grained(Index n, std::int64_t grain, F&& f) {
#ifdef PARMIS_HAVE_OPENMP
  if (Execution::backend() == Backend::OpenMP && static_cast<std::int64_t>(n) >= grain) {
    const int nt = Execution::num_threads();
#pragma omp parallel for schedule(static) num_threads(nt)
    for (Index i = 0; i < n; ++i) {
      f(i);
    }
    return;
  }
#endif
  for (Index i = 0; i < n; ++i) {
    f(i);
  }
}

/// `parallel_for_grained` with the default grain for light-weight bodies.
template <typename Index, typename F>
void parallel_for(Index n, F&& f) {
  parallel_for_grained(n, parallel_for_grain, std::forward<F>(f));
}

/// Execute `f(i)` for every `i` in `[begin, end)`.
template <typename Index, typename F>
void parallel_for_range(Index begin, Index end, F&& f) {
  if (end <= begin) return;
  parallel_for(end - begin, [&, begin](Index i) { f(static_cast<Index>(begin + i)); });
}

}  // namespace parmis::par
