#pragma once
/// \file parallel_scan.hpp
/// \brief Deterministic blocked parallel prefix sum ("scan").
///
/// Algorithm 1 compacts its two worklists every iteration with a parallel
/// prefix sum (paper §V-B); the theoretical analysis (§IV) charges
/// O(log V) depth and O(n log n) work to it. The implementation here is the
/// classic three-phase blocked scan: (1) per-block partial sums in parallel,
/// (2) serial exclusive scan of the (few) block totals, (3) per-block
/// refill in parallel. The block size is a fixed constant, so the result —
/// and even the intermediate block decomposition — is independent of the
/// thread count.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/execution.hpp"
#include "parallel/parallel_for.hpp"

namespace parmis::par {

/// Block width for the blocked scan; fixed for determinism.
inline constexpr std::int64_t scan_block = 8192;

/// In-place exclusive prefix sum over `data`; returns the grand total.
/// `data[i]` becomes `sum(data[0..i-1])`, `data[0]` becomes 0.
template <typename T>
T exclusive_scan_inplace(std::span<T> data) {
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  if (n == 0) return T{0};

  const std::int64_t nblocks = (n + scan_block - 1) / scan_block;
  if (nblocks == 1 || !Execution::is_parallel()) {
    T running{0};
    for (std::int64_t i = 0; i < n; ++i) {
      T v = data[i];
      data[i] = running;
      running += v;
    }
    return running;
  }

  std::vector<T> block_total(static_cast<std::size_t>(nblocks));
  parallel_for(nblocks, [&](std::int64_t b) {
    const std::int64_t lo = b * scan_block;
    const std::int64_t hi = std::min(n, lo + scan_block);
    T acc{0};
    for (std::int64_t i = lo; i < hi; ++i) acc += data[i];
    block_total[static_cast<std::size_t>(b)] = acc;
  });

  T running{0};
  for (std::int64_t b = 0; b < nblocks; ++b) {
    T v = block_total[static_cast<std::size_t>(b)];
    block_total[static_cast<std::size_t>(b)] = running;
    running += v;
  }

  parallel_for(nblocks, [&](std::int64_t b) {
    const std::int64_t lo = b * scan_block;
    const std::int64_t hi = std::min(n, lo + scan_block);
    T acc = block_total[static_cast<std::size_t>(b)];
    for (std::int64_t i = lo; i < hi; ++i) {
      T v = data[i];
      data[i] = acc;
      acc += v;
    }
  });
  return running;
}

/// In-place inclusive prefix sum; returns the grand total.
template <typename T>
T inclusive_scan_inplace(std::span<T> data) {
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  if (n == 0) return T{0};

  const std::int64_t nblocks = (n + scan_block - 1) / scan_block;
  if (nblocks == 1 || !Execution::is_parallel()) {
    T running{0};
    for (std::int64_t i = 0; i < n; ++i) {
      running += data[i];
      data[i] = running;
    }
    return running;
  }

  std::vector<T> block_total(static_cast<std::size_t>(nblocks));
  parallel_for(nblocks, [&](std::int64_t b) {
    const std::int64_t lo = b * scan_block;
    const std::int64_t hi = std::min(n, lo + scan_block);
    T acc{0};
    for (std::int64_t i = lo; i < hi; ++i) acc += data[i];
    block_total[static_cast<std::size_t>(b)] = acc;
  });

  T running{0};
  for (std::int64_t b = 0; b < nblocks; ++b) {
    T v = block_total[static_cast<std::size_t>(b)];
    block_total[static_cast<std::size_t>(b)] = running;
    running += v;
  }

  parallel_for(nblocks, [&](std::int64_t b) {
    const std::int64_t lo = b * scan_block;
    const std::int64_t hi = std::min(n, lo + scan_block);
    T acc = block_total[static_cast<std::size_t>(b)];
    for (std::int64_t i = lo; i < hi; ++i) {
      acc += data[i];
      data[i] = acc;
    }
  });
  return running;
}

/// Stable parallel stream compaction with caller-provided flag scratch:
/// appends to `out` every `i in [0, n)` for which `pred(i)` holds, mapped
/// through `make(i)`, preserving index order. `flags` is resized to `n`
/// (reusing its capacity); pass the same vector across calls to make warm
/// compactions allocation-free. This is the worklist-maintenance primitive
/// from paper §V-B.
///
/// Deterministic: the output order equals the serial filter order.
template <typename Index, typename Out, typename Pred, typename Make>
void compact_into_scratch(Index n, Pred&& pred, Make&& make, std::vector<Out>& out,
                          std::vector<std::int64_t>& flags) {
  const std::int64_t len = static_cast<std::int64_t>(n);
  out.clear();
  if (len == 0) return;

  flags.resize(static_cast<std::size_t>(len));
  parallel_for(len, [&](std::int64_t i) {
    flags[static_cast<std::size_t>(i)] = pred(static_cast<Index>(i)) ? 1 : 0;
  });
  const std::int64_t total = exclusive_scan_inplace(
      std::span<std::int64_t>(flags.data(), static_cast<std::size_t>(len)));
  out.resize(static_cast<std::size_t>(total));
  parallel_for(len, [&](std::int64_t i) {
    const bool keep = (i + 1 < len ? flags[static_cast<std::size_t>(i) + 1] : total) !=
                      flags[static_cast<std::size_t>(i)];
    if (keep) {
      out[static_cast<std::size_t>(flags[static_cast<std::size_t>(i)])] =
          make(static_cast<Index>(i));
    }
  });
}

/// `compact_into_scratch` with throwaway flag scratch.
template <typename Index, typename Out, typename Pred, typename Make>
void compact_into(Index n, Pred&& pred, Make&& make, std::vector<Out>& out) {
  std::vector<std::int64_t> flags;
  compact_into_scratch(n, std::forward<Pred>(pred), std::forward<Make>(make), out, flags);
}

}  // namespace parmis::par
