#include "parallel/execution.hpp"

#ifdef PARMIS_HAVE_OPENMP
#include <omp.h>
#endif

namespace parmis::par {

namespace {

// Thread-local: each OS thread owns its execution configuration, so two
// threads pinning different Contexts (one handle per thread) never race or
// observe each other's backend mid-run. OpenMP worker threads spawned by a
// parallel region never consult this state — only the thread entering the
// region does.
#ifdef PARMIS_HAVE_OPENMP
thread_local Backend g_backend = Backend::OpenMP;
#else
thread_local Backend g_backend = Backend::Serial;
#endif

thread_local Backend g_requested = g_backend;

thread_local int g_threads = 0;  // 0 = hardware default

thread_local Schedule g_schedule = Schedule::EdgeBalanced;

int hardware_threads() {
#ifdef PARMIS_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

Backend Execution::backend() { return g_backend; }

Backend Execution::requested_backend() { return g_requested; }

Backend Execution::set_backend(Backend b) {
  g_requested = b;
#ifndef PARMIS_HAVE_OPENMP
  b = Backend::Serial;
#endif
  g_backend = b;
  return g_backend;
}

int Execution::num_threads() {
  if (g_backend == Backend::Serial) return 1;
  return g_threads > 0 ? g_threads : hardware_threads();
}

void Execution::set_num_threads(int n) { g_threads = n > 0 ? n : 0; }

int Execution::thread_setting() { return g_threads; }

Schedule Execution::schedule() { return g_schedule; }

void Execution::set_schedule(Schedule s) { g_schedule = s; }

int Execution::max_threads() { return hardware_threads(); }

bool Execution::is_parallel() {
  return g_backend == Backend::OpenMP && num_threads() > 1;
}

ScopedExecution::ScopedExecution(Backend b, int threads)
    : saved_backend_(Execution::backend()), saved_requested_(g_requested),
      saved_threads_(g_threads), saved_schedule_(g_schedule) {
  Execution::set_backend(b);
  Execution::set_num_threads(threads);
}

ScopedExecution::ScopedExecution(Backend b, int threads, Schedule s)
    : ScopedExecution(b, threads) {
  Execution::set_schedule(s);
}

ScopedExecution::~ScopedExecution() {
  g_backend = saved_backend_;
  g_requested = saved_requested_;
  g_threads = saved_threads_;
  g_schedule = saved_schedule_;
}

}  // namespace parmis::par
