#include "parallel/execution.hpp"

#ifdef PARMIS_HAVE_OPENMP
#include <omp.h>
#endif

namespace parmis::par {

namespace {

#ifdef PARMIS_HAVE_OPENMP
Backend g_backend = Backend::OpenMP;
#else
Backend g_backend = Backend::Serial;
#endif

int g_threads = 0;  // 0 = hardware default

int hardware_threads() {
#ifdef PARMIS_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

Backend Execution::backend() { return g_backend; }

void Execution::set_backend(Backend b) {
#ifndef PARMIS_HAVE_OPENMP
  b = Backend::Serial;
#endif
  g_backend = b;
}

int Execution::num_threads() {
  if (g_backend == Backend::Serial) return 1;
  return g_threads > 0 ? g_threads : hardware_threads();
}

void Execution::set_num_threads(int n) { g_threads = n > 0 ? n : 0; }

int Execution::max_threads() { return hardware_threads(); }

bool Execution::is_parallel() {
  return g_backend == Backend::OpenMP && num_threads() > 1;
}

ScopedExecution::ScopedExecution(Backend b, int threads)
    : saved_backend_(Execution::backend()), saved_threads_(g_threads) {
  Execution::set_backend(b);
  Execution::set_num_threads(threads);
}

ScopedExecution::~ScopedExecution() {
  g_backend = saved_backend_;
  g_threads = saved_threads_;
}

}  // namespace parmis::par
