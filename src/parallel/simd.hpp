#pragma once
/// \file simd.hpp
/// \brief Inner-loop SIMD reductions over contiguous adjacency lists.
///
/// Paper §V-D: the innermost loops of Algorithm 1 iterate over a vertex's
/// neighbors computing `min`, `forall`, and `exists` reductions. On GPUs
/// Kokkos maps these to warp/wavefront ("vector level") parallelism; the
/// host-CPU analogue is SIMD vectorization of the same contiguous CRS rows.
/// The paper enables the vector level only when the average degree is at
/// least 16 (`simd_degree_threshold`); below that the per-row setup overhead
/// outweighs the gain. These helpers are branch-free single loops annotated
/// with `omp simd` so the compiler can vectorize the reduction.

#include <cstdint>

#include "common/config.hpp"

namespace parmis::par {

/// Average-degree threshold from paper §V-D: vector-level parallelism is
/// profitable only for rows of at least ~16 entries.
inline constexpr double simd_degree_threshold = 16.0;

/// Minimum of `values[entries[j]]` over `j in [begin, end)`, starting from
/// `init`. Used for the Refresh-Column min-tuple gather (Algorithm 1 line 18).
template <typename Word>
inline Word simd_min_gather(const Word* values, const ordinal_t* entries, offset_t begin,
                            offset_t end, Word init) {
  Word m = init;
#if defined(_OPENMP)
#pragma omp simd reduction(min : m)
#endif
  for (offset_t j = begin; j < end; ++j) {
    const Word w = values[entries[j]];
    m = w < m ? w : m;
  }
  return m;
}

/// Count of `j in [begin, end)` with `values[entries[j]] == match`.
/// `forall(== match)` is `count == end - begin`; `exists(== match)` is
/// `count != 0` (Algorithm 1 lines 25 and 28).
template <typename Word>
inline offset_t simd_count_equal_gather(const Word* values, const ordinal_t* entries,
                                        offset_t begin, offset_t end, Word match) {
  offset_t count = 0;
#if defined(_OPENMP)
#pragma omp simd reduction(+ : count)
#endif
  for (offset_t j = begin; j < end; ++j) {
    count += values[entries[j]] == match ? 1 : 0;
  }
  return count;
}

}  // namespace parmis::par
