#pragma once
/// \file report.hpp
/// \brief `obs::Report` — the one JSON telemetry schema for the whole
/// stack.
///
/// Before this layer, `linear_solve --json`, `graph_partition --json`, and
/// each bench hand-assembled JSON with snprintf, and the same hierarchy
/// quantity was spelled `rebuild_seconds` in one file and
/// `warm_rebuild_seconds` in another. A Report is an insertion-ordered
/// list of key → pre-rendered-JSON-value pairs with typed setters; the
/// telemetry adapters (telemetry.hpp) populate it from the stats structs,
/// so every driver and bench emits the same keys for the same quantities.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace parmis::obs {

/// Insertion-ordered flat JSON object builder. Setting an existing key
/// overwrites its value in place (first-insertion position wins), so
/// adapters can layer defaults then refinements.
class Report {
 public:
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::uint64_t value);
  void set(const std::string& key, int value) { set(key, static_cast<std::int64_t>(value)); }
  void set(const std::string& key, double value);  ///< %.9g — round-trips telemetry doubles
  void set(const std::string& key, bool value);
  void set(const std::string& key, const std::string& value);  ///< JSON-escaped
  void set(const std::string& key, const char* value) { set(key, std::string(value)); }
  void set(const std::string& key, const std::vector<std::int64_t>& values);
  void set(const std::string& key, const std::vector<double>& values);

  /// Insert a value that is already valid JSON (nested object/array).
  void set_raw(const std::string& key, std::string json_value);

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// The report as a single-line JSON object (no trailing newline).
  [[nodiscard]] std::string to_json() const;

 private:
  void put(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// JSON-escape `s` (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Streams a JSON array of objects to a file: `[` on open, comma-separated
/// rows, `]` on close. The shared writer behind every bench's
/// `BENCH_*.json` and the drivers' `--json-file` outputs.
class JsonArrayWriter {
 public:
  /// Opens `path` for writing; `ok()` is false on failure.
  explicit JsonArrayWriter(const std::string& path);
  ~JsonArrayWriter();
  JsonArrayWriter(const JsonArrayWriter&) = delete;
  JsonArrayWriter& operator=(const JsonArrayWriter&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  /// Append one row (a rendered JSON value, typically `Report::to_json()`).
  void row(const std::string& json);

  /// Write the closing bracket and flush. Called by the destructor if not
  /// called explicitly; returns false if any write failed.
  bool close();

 private:
  std::FILE* file_ = nullptr;
  bool first_ = true;
  bool failed_ = false;
};

}  // namespace parmis::obs
