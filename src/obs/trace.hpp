#pragma once
/// \file trace.hpp
/// \brief Low-overhead tracing: RAII spans into per-thread lock-free event
/// buffers, with Chrome-trace and aggregated-summary exporters.
///
/// The paper's evidence is per-phase (Fig. 2's optimization breakdown,
/// Table II's timing splits, the per-level coarsening profiles), so knowing
/// where time goes *inside* a run is a first-class requirement. This layer
/// provides it without perturbing what it measures:
///
///  - `PARMIS_SPAN("mis2.refresh_col")` opens an RAII span. When tracing
///    is disabled (the default) the constructor is a single relaxed atomic
///    load and a branch — no clock read, no allocation, no store. When
///    enabled, a span costs two `steady_clock` reads plus one append to the
///    *current thread's* event buffer.
///  - Event buffers are thread-owned and append-only: fixed-size blocks
///    reached through release-stored pointers and a release-published
///    count, so a reader draining after the parallel work finished sees a
///    consistent prefix without locks on the hot path (and TSan agrees).
///  - Exporters: Chrome trace-event JSON (`chrome://tracing` / Perfetto)
///    and a flat per-span-name summary (count/total/min/max) for machine
///    diffing.
///
/// Tracing never changes results: spans only read clocks and write to
/// buffers the algorithms never consult — the determinism contract is
/// asserted by the tracing-on/off bit-equality tests.
///
/// Enablement is process-global (worker threads spawned inside a traced
/// region must see it), toggled directly with `set_tracing()` or scoped
/// through `parmis::Context` (`Context::trace`, applied by
/// `Context::Scope`). Define `PARMIS_OBS_DISABLE` to compile every span
/// site down to nothing.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace parmis::obs {

/// Tracing configuration carried by `parmis::Context`. `Inherit` (the
/// default) leaves the process-global state alone, so contexts that never
/// mention tracing compose transparently with an enclosing traced region.
struct TraceOptions {
  enum class Mode : std::uint8_t {
    Inherit,  ///< keep the ambient tracing state (the default)
    Off,      ///< disable tracing for the scope
    On,       ///< enable tracing for the scope
  };
  Mode mode = Mode::Inherit;
  /// Per-chunk span sampling for `par::balanced_chunks`: record the chunk
  /// spans of every Nth chunked loop (1 = every loop, 0 = none). The
  /// measured per-chunk cost feed the work-stealing scheduler needs.
  int chunk_sample_every = 0;
  friend bool operator==(const TraceOptions&, const TraceOptions&) = default;
};

/// Snapshot of the process-global tracing state (for save/restore by
/// `Context::Scope`).
struct TraceState {
  bool enabled = false;
  int chunk_sample_every = 0;
};

namespace detail {
extern std::atomic<bool> g_enabled;

/// Monotonic nanoseconds (steady_clock raw ticks; exporters rebase to the
/// trace's own start, so only differences matter).
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void record_span(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                 const char* arg_name[2], const std::int64_t arg_val[2], int nargs);
}  // namespace detail

/// True when span sites record. A single relaxed load — the entire
/// disabled-path cost of a span.
inline bool tracing_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Enable/disable tracing process-wide. `chunk_sample_every` gates the
/// per-chunk spans of `par::balanced_chunks` (0 = off).
void set_tracing(bool enabled, int chunk_sample_every = 0);

/// Current process-global tracing state.
[[nodiscard]] TraceState trace_state();

/// Restore a state captured with `trace_state()`.
void restore_tracing(const TraceState& s);

/// True when the *next* chunked loop should record per-chunk spans, and
/// advances the sampling counter. Called once per `balanced_chunks`
/// invocation, never per element.
[[nodiscard]] bool chunk_sampling_due();

#ifndef PARMIS_OBS_DISABLE

/// RAII span. Construct with a **string literal** (the name pointer is
/// stored, not copied); attach up to two named integer args before the
/// scope closes. Inactive spans (tracing disabled at construction) cost
/// nothing on destruction.
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      start_ns_ = detail::now_ns();
    }
  }
  ~Span() {
    if (start_ns_ >= 0) {
      detail::record_span(name_, start_ns_, detail::now_ns() - start_ns_, arg_name_, arg_val_,
                          nargs_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a named integer argument (string literal; max 2, extras are
  /// dropped). No-op when the span is inactive.
  void arg(const char* name, std::int64_t value) {
    if (start_ns_ >= 0 && nargs_ < 2) {
      arg_name_[nargs_] = name;
      arg_val_[nargs_] = value;
      ++nargs_;
    }
  }

  /// True when this span is recording (tracing was on at construction).
  [[nodiscard]] bool active() const { return start_ns_ >= 0; }

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = -1;
  const char* arg_name_[2] = {nullptr, nullptr};
  std::int64_t arg_val_[2] = {0, 0};
  int nargs_ = 0;
};

#else  // PARMIS_OBS_DISABLE: every span site compiles to nothing.

class Span {
 public:
  explicit Span(const char*) {}
  void arg(const char*, std::int64_t) {}
  [[nodiscard]] bool active() const { return false; }
};

#endif

/// Record an instant counter sample (Chrome trace "C" event). No-op when
/// tracing is disabled. `name` must be a string literal.
void counter(const char* name, std::int64_t value);

#define PARMIS_OBS_CONCAT2(a, b) a##b
#define PARMIS_OBS_CONCAT(a, b) PARMIS_OBS_CONCAT2(a, b)
/// Open an RAII span for the rest of the enclosing scope.
#define PARMIS_SPAN(name) \
  ::parmis::obs::Span PARMIS_OBS_CONCAT(parmis_obs_span_, __COUNTER__)(name)

// ------------------------------------------------------------- inspection

/// One drained event (spans have `dur_ns >= 0`; counters `dur_ns == -1`).
struct TraceEvent {
  const char* name;
  std::uint32_t tid;       ///< dense per-thread id, registration order
  std::int64_t start_ns;   ///< steady_clock ns (rebase against the minimum)
  std::int64_t dur_ns;     ///< span duration, or -1 for a counter sample
  const char* arg_name[2];
  std::int64_t arg_val[2];
  int nargs;
};

/// Drain a snapshot of every thread's buffer, sorted by (tid, start).
/// Call only while no traced work is in flight.
[[nodiscard]] std::vector<TraceEvent> collect_events();

/// Total events currently buffered across all threads.
[[nodiscard]] std::uint64_t total_events();

/// Events dropped because a thread's buffer hit its block limit.
[[nodiscard]] std::uint64_t dropped_events();

/// Bytes of event-block storage allocated since process start. Never
/// advances while tracing is disabled — the zero-allocation contract the
/// obs tests assert.
[[nodiscard]] std::uint64_t allocated_bytes();

/// Reset all buffered events (block storage is retained for reuse).
void clear_events();

// -------------------------------------------------------------- exporters

/// Chrome trace-event JSON of everything buffered: one complete ("X")
/// event per span, one counter ("C") event per counter sample, timestamps
/// rebased to the earliest event. Loadable in chrome://tracing / Perfetto.
[[nodiscard]] std::string chrome_trace_json();

/// `chrome_trace_json()` to a file; false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Flat per-span-name aggregate — the machine-diffable summary.
struct SpanSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

/// Aggregate every buffered span by name, sorted by name.
[[nodiscard]] std::vector<SpanSummary> summarize_spans();

}  // namespace parmis::obs
