#include "obs/report.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace parmis::obs {

namespace {

std::string render_double(double value) {
  // JSON has no NaN/Inf literal; emit null (a failed solve legitimately
  // reports a non-finite residual, and the row must stay machine-valid).
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Report::put(const std::string& key, std::string rendered) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  entries_.emplace_back(key, std::move(rendered));
}

void Report::set(const std::string& key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  put(key, buf);
}

void Report::set(const std::string& key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  put(key, buf);
}

void Report::set(const std::string& key, double value) { put(key, render_double(value)); }

void Report::set(const std::string& key, bool value) { put(key, value ? "true" : "false"); }

void Report::set(const std::string& key, const std::string& value) {
  put(key, '"' + json_escape(value) + '"');
}

void Report::set(const std::string& key, const std::vector<std::int64_t>& values) {
  std::string out = "[";
  char buf[32];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof buf, "%" PRId64, values[i]);
    out += buf;
  }
  out += ']';
  put(key, std::move(out));
}

void Report::set(const std::string& key, const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += render_double(values[i]);
  }
  out += ']';
  put(key, std::move(out));
}

void Report::set_raw(const std::string& key, std::string json_value) {
  put(key, std::move(json_value));
}

std::string Report::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\": ";
    out += v;
  }
  out += '}';
  return out;
}

JsonArrayWriter::JsonArrayWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_) std::fputs("[\n", file_);
}

JsonArrayWriter::~JsonArrayWriter() { close(); }

void JsonArrayWriter::row(const std::string& json) {
  if (!file_) return;
  if (!first_) std::fputs(",\n", file_);
  first_ = false;
  if (std::fputs(json.c_str(), file_) < 0) failed_ = true;
}

bool JsonArrayWriter::close() {
  if (!file_) return !failed_;
  if (std::fputs("\n]\n", file_) < 0) failed_ = true;
  if (std::fclose(file_) != 0) failed_ = true;
  file_ = nullptr;
  return !failed_;
}

}  // namespace parmis::obs
