#pragma once
/// \file timer.hpp
/// \brief Wall-clock stopwatch — the simplest member of the obs layer.
///
/// Moved here from `src/common/timer.hpp` (which remains as a
/// compatibility alias) so all timing primitives live under `src/obs/`:
/// `Timer` for coarse phase timings that land in stats structs, `Span`
/// (trace.hpp) for everything that should show up in a trace.

#include <chrono>

namespace parmis::obs {

/// Monotonic wall-clock stopwatch. `seconds()` returns elapsed time since
/// construction or the last `reset()`.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace parmis::obs

namespace parmis {
/// Historical spelling — `parmis::Timer` predates the obs layer.
using Timer = obs::Timer;
}  // namespace parmis
