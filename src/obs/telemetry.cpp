#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "core/mis2.hpp"
#include "graph/spgemm.hpp"
#include "multilevel/hierarchy.hpp"
#include "solver/handle.hpp"
#include "solver/options.hpp"

namespace parmis::obs {

void add_graph(Report& r, const std::string& name, std::int64_t num_rows,
               std::int64_t num_entries) {
  r.set("graph", name);
  r.set("num_rows", num_rows);
  r.set("num_entries", num_entries);
}

void add_kernel_stats(Report& r, const core::KernelStats& s) {
  r.set("runs", s.runs);
  r.set("kernel_iterations", s.iterations);
  r.set("scratch_grows", s.scratch_grows);
}

void add_solve_stats(Report& r, const solver::SolveStats& s) {
  r.set("solves", s.solves);
  r.set("total_iterations", s.iterations);
  r.set("converged_solves", s.converged);
  r.set("prec_setups", s.prec_setups);
  r.set("scratch_grows", s.scratch_grows);
  r.set("failed_solves", s.failures);
  r.set("fallback_attempts", s.fallback_attempts);
}

void add_iter_result(Report& r, const solver::IterResult& res) {
  r.set("iterations", res.iterations);
  r.set("converged", res.converged);
  r.set("relative_residual", res.relative_residual);
  r.set("status", std::string(resilience::to_string(res.status)));
  if (resilience::is_failure(res.status) && res.failure.reason[0] != '\0') {
    r.set("failure_reason", std::string(res.failure.reason));
    r.set("failure_stage", std::string(res.failure.stage));
    r.set("failure_iteration", res.failure.iteration);
    r.set("failure_index", res.failure.index);
  }
  // The fallback-chain attempt records, same nested-array shape as
  // add_span_summary: one row per attempt, oldest first.
  if (!res.attempts.empty()) {
    std::string out = "[";
    Report row;
    for (std::size_t i = 0; i < res.attempts.size(); ++i) {
      const solver::AttemptInfo& at = res.attempts[i];
      if (i) out += ", ";
      row = Report();
      row.set("solver", at.solver);
      row.set("prec", at.prec);
      row.set("status", std::string(resilience::to_string(at.status)));
      row.set("iterations", at.iterations);
      row.set("relative_residual", at.relative_residual);
      row.set("seconds", at.seconds);
      if (resilience::is_failure(at.status) && at.failure.reason[0] != '\0') {
        row.set("failure_reason", std::string(at.failure.reason));
      }
      out += row.to_json();
    }
    out += ']';
    r.set_raw("attempts", std::move(out));
  }
}

void add_hierarchy(Report& r, const multilevel::HierarchyStats& s) {
  r.set("levels", s.levels);
  std::vector<std::int64_t> rows(s.level_rows.begin(), s.level_rows.end());
  std::vector<std::int64_t> entries(s.level_entries.begin(), s.level_entries.end());
  r.set("level_rows", rows);
  r.set("level_entries", entries);
  r.set("operator_complexity", s.operator_complexity);
  r.set("grid_complexity", s.grid_complexity);
  r.set("stop", std::string(multilevel::to_string(s.stop)));
  r.set("aggregation_seconds", s.aggregation_seconds);
  r.set("cold_build_seconds", s.build_seconds);
  r.set("warm_rebuild_seconds", s.rebuild_seconds);
}

void add_spgemm_counters(Report& r) {
  r.set("spgemm_rows_traversed", graph::spgemm_rows_traversed());
}

void add_span_summary(Report& r) {
  const std::vector<SpanSummary> spans = summarize_spans();
  if (spans.empty()) return;
  std::string out = "[";
  Report row;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i) out += ", ";
    row = Report();
    row.set("name", spans[i].name);
    row.set("count", spans[i].count);
    row.set("total_seconds", spans[i].total_seconds);
    row.set("min_seconds", spans[i].min_seconds);
    row.set("max_seconds", spans[i].max_seconds);
    out += row.to_json();
  }
  out += ']';
  r.set_raw("spans", std::move(out));
}

double percentile(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  // Nearest-rank: the ⌈q·n⌉-th smallest observation (1-based).
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void add_latency_stats(Report& r, std::span<const double> seconds, double wall_seconds) {
  std::vector<double> sorted(seconds.begin(), seconds.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double s : sorted) sum += s;
  const double n = static_cast<double>(sorted.size());
  r.set("requests", static_cast<std::int64_t>(sorted.size()));
  r.set("p50_ms", percentile(sorted, 0.5) * 1e3);
  r.set("p99_ms", percentile(sorted, 0.99) * 1e3);
  r.set("mean_ms", (sorted.empty() ? 0.0 : sum / n) * 1e3);
  r.set("max_ms", (sorted.empty() ? 0.0 : sorted.back()) * 1e3);
  r.set("wall_seconds", wall_seconds);
  r.set("solves_per_sec", wall_seconds > 0.0 ? n / wall_seconds : 0.0);
}

}  // namespace parmis::obs
