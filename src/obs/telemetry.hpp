#pragma once
/// \file telemetry.hpp
/// \brief Adapters from the stack's stats structs into `obs::Report`.
///
/// One function per telemetry source, each owning the canonical key names
/// for its quantities. Drivers and benches compose these instead of
/// spelling keys by hand, which is what keeps `linear_solve --json`,
/// `graph_partition --json`, and every `BENCH_*.json` on a single schema:
///
///   graph, num_rows, num_entries                       add_graph
///   runs, kernel_iterations, scratch_grows             add_kernel_stats
///   solves, total_iterations, converged_solves,
///   prec_setups, scratch_grows, failed_solves,
///   fallback_attempts                                  add_solve_stats
///   iterations, converged, relative_residual,
///   status, failure_* (when failed),
///   attempts (nested array, when chained)              add_iter_result
///   levels, level_rows, level_entries,
///   operator_complexity, grid_complexity, stop,
///   aggregation_seconds, cold_build_seconds,
///   warm_rebuild_seconds                               add_hierarchy
///   spgemm_rows_traversed                              add_spgemm_counters
///   spans (nested array of per-name aggregates)        add_span_summary

#include <span>
#include <string>

#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace parmis::core {
struct KernelStats;
}
namespace parmis::solver {
struct SolveStats;
struct IterResult;
}  // namespace parmis::solver
namespace parmis::multilevel {
struct HierarchyStats;
}

namespace parmis::obs {

/// Identify the input graph/matrix: `graph` (label), `num_rows`,
/// `num_entries`.
void add_graph(Report& r, const std::string& name, std::int64_t num_rows,
               std::int64_t num_entries);

/// Kernel-handle counters (`Mis2Handle`, `CoarsenHandle`): `runs`,
/// `kernel_iterations`, `scratch_grows`.
void add_kernel_stats(Report& r, const core::KernelStats& s);

/// Solve-handle counters: `solves`, `total_iterations`, `converged_solves`,
/// `prec_setups`, `scratch_grows`, `failed_solves`, `fallback_attempts`.
void add_solve_stats(Report& r, const solver::SolveStats& s);

/// One solve's outcome: `iterations`, `converged`, `relative_residual`,
/// the taxonomy `status`, `failure_reason`/`failure_stage`/
/// `failure_iteration`/`failure_index` when the solve failed, and the
/// nested `attempts` array when a fallback chain ran
/// (`[{"solver":..,"prec":..,"status":..,"iterations":..,
/// "relative_residual":..,"seconds":..}, ...]`).
void add_iter_result(Report& r, const solver::IterResult& res);

/// Hierarchy telemetry under the unified names: `levels`, `level_rows`,
/// `level_entries`, `operator_complexity`, `grid_complexity`, `stop`,
/// `aggregation_seconds`, `cold_build_seconds`, `warm_rebuild_seconds`.
/// (Previously linear_solve said `setup_seconds`/`rebuild_seconds` while
/// hierarchy_ablation said `cold_build_seconds`/`warm_rebuild_seconds` for
/// the same quantities — the drift this adapter removes.)
void add_hierarchy(Report& r, const multilevel::HierarchyStats& s);

/// Process-wide SpGEMM traversal counter: `spgemm_rows_traversed`.
void add_spgemm_counters(Report& r);

/// Buffered span aggregates as a nested `spans` array
/// (`[{"name":..,"count":..,"total_seconds":..,"min_seconds":..,
/// "max_seconds":..}, ...]`). No-op when nothing is buffered.
void add_span_summary(Report& r);

/// The `q`-th percentile (0 ≤ q ≤ 1) of an **ascending-sorted** sample by
/// the nearest-rank method (q = 0.5 → median position ⌈0.5·n⌉). Returns 0
/// for an empty sample. Nearest-rank keeps the result an actual observed
/// latency, which is what a serving SLO quotes.
[[nodiscard]] double percentile(std::span<const double> sorted, double q);

/// Latency aggregates of a replayed request stream: `requests`, `p50_ms`,
/// `p99_ms`, `mean_ms`, `max_ms`, `wall_seconds`, `solves_per_sec`.
/// `seconds` is the per-request latency sample (any order; sorted
/// internally), `wall_seconds` the end-to-end wall time the throughput is
/// computed against.
void add_latency_stats(Report& r, std::span<const double> seconds, double wall_seconds);

}  // namespace parmis::obs
