#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace parmis::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::atomic<int> g_chunk_sample_every{0};
std::atomic<std::uint64_t> g_chunk_loop_counter{0};
std::atomic<std::uint64_t> g_allocated_bytes{0};

/// One recorded event. `dur_ns == -1` marks a counter sample.
struct Event {
  const char* name;
  std::int64_t start_ns;
  std::int64_t dur_ns;
  const char* arg_name[2];
  std::int64_t arg_val[2];
  std::uint8_t nargs;
};

constexpr std::size_t kBlockEvents = 4096;
/// Hard per-thread cap (blocks * events ≈ 2M events ≈ 160 MB across 16
/// threads worst case); past it events are counted as dropped, never lost
/// silently.
constexpr std::size_t kMaxBlocks = 512;

struct Block {
  Event events[kBlockEvents];
};

/// Append-only per-thread buffer. The owning thread is the only writer:
/// it installs blocks with release stores and publishes each event with a
/// release store of `count`. Readers (collect/summarize, called between
/// parallel regions) acquire `count` then acquire the block pointers, so
/// every event below the loaded count is fully visible — no locks on the
/// record path, and TSan sees the release/acquire edges.
class EventBuffer {
 public:
  void record(const Event& e) {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    const std::size_t block_idx = static_cast<std::size_t>(n / kBlockEvents);
    if (block_idx >= kMaxBlocks) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Block* b = blocks_[block_idx].load(std::memory_order_relaxed);
    if (!b) {
      b = new Block;
      g_allocated_bytes.fetch_add(sizeof(Block), std::memory_order_relaxed);
      blocks_[block_idx].store(b, std::memory_order_release);
    }
    b->events[n % kBlockEvents] = e;
    count_.store(n + 1, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Read event `i` (must be < count()).
  [[nodiscard]] const Event& at(std::uint64_t i) const {
    Block* b = blocks_[static_cast<std::size_t>(i / kBlockEvents)].load(
        std::memory_order_acquire);
    return b->events[i % kBlockEvents];
  }

  /// Reset the count, keeping allocated blocks for reuse. Only safe while
  /// the owner thread is not recording (same contract as the readers).
  void clear() {
    count_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<Block*> blocks_[kMaxBlocks] = {};
};

/// Global registry of every thread's buffer. Buffers are created on a
/// thread's first traced event (a one-time mutex hit) and never destroyed:
/// OpenMP reuses its worker threads, and keeping buffers alive makes the
/// thread_local fast-path pointer safe for the process lifetime.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<EventBuffer>> buffers;  // index == dense tid
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

EventBuffer& local_buffer() {
  thread_local EventBuffer* buf = nullptr;
  if (!buf) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(std::make_unique<EventBuffer>());
    buf = r.buffers.back().get();
  }
  return *buf;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

namespace detail {

void record_span(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                 const char* arg_name[2], const std::int64_t arg_val[2], int nargs) {
  Event e{};
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  e.nargs = static_cast<std::uint8_t>(nargs);
  for (int i = 0; i < nargs; ++i) {
    e.arg_name[i] = arg_name[i];
    e.arg_val[i] = arg_val[i];
  }
  local_buffer().record(e);
}

}  // namespace detail

void set_tracing(bool enabled, int chunk_sample_every) {
  g_chunk_sample_every.store(enabled ? chunk_sample_every : 0, std::memory_order_relaxed);
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

TraceState trace_state() {
  return TraceState{detail::g_enabled.load(std::memory_order_relaxed),
                    g_chunk_sample_every.load(std::memory_order_relaxed)};
}

void restore_tracing(const TraceState& s) {
  g_chunk_sample_every.store(s.chunk_sample_every, std::memory_order_relaxed);
  detail::g_enabled.store(s.enabled, std::memory_order_relaxed);
}

bool chunk_sampling_due() {
  const int every = g_chunk_sample_every.load(std::memory_order_relaxed);
  if (every <= 0 || !tracing_enabled()) return false;
  const std::uint64_t n = g_chunk_loop_counter.fetch_add(1, std::memory_order_relaxed);
  return n % static_cast<std::uint64_t>(every) == 0;
}

void counter(const char* name, std::int64_t value) {
  if (!tracing_enabled()) return;
  Event e{};
  e.name = name;
  e.start_ns = detail::now_ns();
  e.dur_ns = -1;
  e.arg_name[0] = "value";
  e.arg_val[0] = value;
  e.nargs = 1;
  local_buffer().record(e);
}

std::vector<TraceEvent> collect_events() {
  std::vector<TraceEvent> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t tid = 0; tid < r.buffers.size(); ++tid) {
    const EventBuffer& buf = *r.buffers[tid];
    const std::uint64_t n = buf.count();
    for (std::uint64_t i = 0; i < n; ++i) {
      const Event& e = buf.at(i);
      TraceEvent t{};
      t.name = e.name;
      t.tid = static_cast<std::uint32_t>(tid);
      t.start_ns = e.start_ns;
      t.dur_ns = e.dur_ns;
      t.nargs = e.nargs;
      for (int a = 0; a < e.nargs; ++a) {
        t.arg_name[a] = e.arg_name[a];
        t.arg_val[a] = e.arg_val[a];
      }
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::uint64_t total_events() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t n = 0;
  for (const auto& buf : r.buffers) n += buf->count();
  return n;
}

std::uint64_t dropped_events() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t n = 0;
  for (const auto& buf : r.buffers) n += buf->dropped();
  return n;
}

std::uint64_t allocated_bytes() {
  return g_allocated_bytes.load(std::memory_order_relaxed);
}

void clear_events() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buf : r.buffers) buf->clear();
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = collect_events();
  std::int64_t t0 = 0;
  for (const TraceEvent& e : events) {
    if (t0 == 0 || e.start_ns < t0) t0 = e.start_ns;
  }
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    // Chrome trace timestamps are microseconds; keep sub-µs as fraction.
    const double ts_us = static_cast<double>(e.start_ns - t0) / 1000.0;
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    if (e.dur_ns >= 0) {
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      std::snprintf(buf, sizeof buf,
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f", e.tid,
                    ts_us, dur_us);
    } else {
      std::snprintf(buf, sizeof buf, "\",\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                    e.tid, ts_us);
    }
    out += buf;
    if (e.nargs > 0) {
      out += ",\"args\":{";
      for (int a = 0; a < e.nargs; ++a) {
        if (a) out += ',';
        out += '"';
        append_json_escaped(out, e.arg_name[a]);
        std::snprintf(buf, sizeof buf, "\":%" PRId64, e.arg_val[a]);
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = chrome_trace_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  return ok;
}

std::vector<SpanSummary> summarize_spans() {
  // std::map keys on the name *text* (distinct literal addresses for the
  // same name merge) and yields the sorted order directly.
  std::map<std::string, SpanSummary> agg;
  for (const TraceEvent& e : collect_events()) {
    if (e.dur_ns < 0) continue;  // counters are not spans
    const double s = static_cast<double>(e.dur_ns) * 1e-9;
    auto [it, inserted] = agg.try_emplace(e.name);
    SpanSummary& sum = it->second;
    if (inserted) {
      sum.name = e.name;
      sum.min_seconds = s;
      sum.max_seconds = s;
    } else {
      sum.min_seconds = std::min(sum.min_seconds, s);
      sum.max_seconds = std::max(sum.max_seconds, s);
    }
    ++sum.count;
    sum.total_seconds += s;
  }
  std::vector<SpanSummary> out;
  out.reserve(agg.size());
  for (auto& [name, sum] : agg) out.push_back(std::move(sum));
  return out;
}

}  // namespace parmis::obs
