#pragma once
/// \file check.hpp
/// \brief The `PARMIS_CHECK` invariant-assertion macro family and its
/// failure machinery.
///
/// The library's load-bearing contracts — bit-identical results across
/// backends, structurally valid CRS everywhere, zero-allocation warm
/// handles — were historically enforced only by scattered test assertions.
/// This header is the runtime half of the `parmis::check` correctness
/// layer: debug-mode invariant checks inserted at the entry and exit of
/// every hot path, compiled to **nothing** unless the build opts in.
///
///  - Configure with `-DPARMIS_CHECK_INVARIANTS=ON` (a CMake option that
///    defines the same-named macro) to arm every check site.
///  - In a default (release) build each `PARMIS_CHECK*` expands to an
///    unevaluated-operand no-op: arguments are syntax-checked but never
///    executed, so a check may call an O(E) validator with zero release
///    cost (pinned by the zero-overhead tests in tests/test_check.cpp).
///  - A failing check throws `check::CheckError` naming the source
///    location and the violated invariant, so tests can assert on the
///    diagnostic and services can turn one corrupt request into an error
///    response instead of undefined behavior downstream.
///
/// Macro family:
///   PARMIS_CHECK(cond)            boolean invariant
///   PARMIS_CHECK_MSG(cond, msg)   boolean invariant with extra context
///   PARMIS_CHECK_OK(expr)         expr yields a `check::Result`; failure
///                                 reuses the validator's own diagnostic
///
/// `PARMIS_CHECK_ENABLED` is 1/0 for the rare site that needs to branch
/// (e.g. to compute a value only a check consumes).

#include <stdexcept>
#include <string>

#include "check/validate.hpp"

namespace parmis::check {

/// Thrown by an armed `PARMIS_CHECK*` on violation. `what()` carries
/// "file:line: invariant violated: <diagnostic>".
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void fail(const char* file, int line, const std::string& diagnostic);

}  // namespace parmis::check

#ifdef PARMIS_CHECK_INVARIANTS

#define PARMIS_CHECK_ENABLED 1

#define PARMIS_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) ::parmis::check::fail(__FILE__, __LINE__, #cond);  \
  } while (0)

#define PARMIS_CHECK_MSG(cond, msg)                                                          \
  do {                                                                                       \
    if (!(cond)) ::parmis::check::fail(__FILE__, __LINE__, std::string(#cond) + ": " + (msg)); \
  } while (0)

#define PARMIS_CHECK_OK(expr)                                                    \
  do {                                                                           \
    const ::parmis::check::Result parmis_check_r_ = (expr);                      \
    if (!parmis_check_r_.ok) {                                                   \
      ::parmis::check::fail(__FILE__, __LINE__, parmis_check_r_.diagnostic());   \
    }                                                                            \
  } while (0)

#else  // !PARMIS_CHECK_INVARIANTS

#define PARMIS_CHECK_ENABLED 0

// sizeof of a parenthesized comma expression: the operand is syntax- and
// type-checked but *unevaluated*, so release builds pay nothing — not even
// the argument evaluation (asserted by tests/test_check.cpp).
#define PARMIS_CHECK(cond) static_cast<void>(sizeof((cond), 0))
#define PARMIS_CHECK_MSG(cond, msg) static_cast<void>(sizeof((cond), (msg), 0))
#define PARMIS_CHECK_OK(expr) static_cast<void>(sizeof((expr), 0))

#endif  // PARMIS_CHECK_INVARIANTS
