#include "check/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace parmis::check {

namespace {

std::string at_row(ordinal_t v) { return "row " + std::to_string(v) + ": "; }

/// Binary search for `c` in the sorted row of `g` at `v` (symmetry check).
bool row_contains(graph::GraphView g, ordinal_t v, ordinal_t c) {
  const std::span<const ordinal_t> row = g.row(v);
  return std::binary_search(row.begin(), row.end(), c);
}

}  // namespace

std::string Result::diagnostic() const {
  if (ok) return "ok";
  return "invariant violated: " + invariant + ": " + message;
}

Result validate(graph::GraphView g, const GraphChecks& opts) {
  if (g.num_rows < 0 || g.num_cols < 0) {
    return Result::failure("crs.shape.nonnegative",
                           "num_rows " + std::to_string(g.num_rows) + ", num_cols " +
                               std::to_string(g.num_cols));
  }
  if (g.num_rows > 0 && g.row_map == nullptr) {
    return Result::failure("crs.row_map.present",
                           "null row_map with num_rows " + std::to_string(g.num_rows));
  }
  if (g.num_rows >= 0 && g.row_map != nullptr && g.row_map[0] != 0) {
    return Result::failure("crs.row_map.front_zero",
                           "row_map[0] = " + std::to_string(g.row_map[0]));
  }
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    if (g.row_map[v + 1] < g.row_map[v]) {
      return Result::failure("crs.row_map.monotone",
                             at_row(v) + "offset " + std::to_string(g.row_map[v + 1]) +
                                 " < previous " + std::to_string(g.row_map[v]));
    }
  }
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    ordinal_t prev = invalid_ordinal;
    for (offset_t j = g.row_map[v]; j < g.row_map[v + 1]; ++j) {
      const ordinal_t c = g.entries[j];
      if (c < 0 || c >= g.num_cols) {
        return Result::failure("crs.entries.in_range",
                               at_row(v) + "entry " + std::to_string(c) +
                                   " outside [0, " + std::to_string(g.num_cols) + ")");
      }
      if (opts.require_sorted && prev != invalid_ordinal && c < prev) {
        return Result::failure("crs.entries.sorted",
                               at_row(v) + "entry " + std::to_string(c) + " after " +
                                   std::to_string(prev));
      }
      if (opts.require_unique && prev != invalid_ordinal && c == prev) {
        return Result::failure("crs.entries.unique",
                               at_row(v) + "duplicate entry " + std::to_string(c));
      }
      if (opts.require_loop_free && c == v) {
        return Result::failure("crs.entries.loop_free", at_row(v) + "self loop");
      }
      prev = c;
    }
  }
  if (opts.require_symmetric) {
    if (g.num_rows != g.num_cols) {
      return Result::failure("crs.symmetric",
                             "non-square: " + std::to_string(g.num_rows) + " x " +
                                 std::to_string(g.num_cols));
    }
    for (ordinal_t v = 0; v < g.num_rows; ++v) {
      for (const ordinal_t c : g.row(v)) {
        if (!row_contains(g, c, v)) {
          return Result::failure("crs.symmetric",
                                 at_row(v) + "entry " + std::to_string(c) +
                                     " has no transpose mate");
        }
      }
    }
  }
  return Result::pass();
}

Result validate(const graph::CrsMatrix& a, const MatrixChecks& opts) {
  if (a.row_map.size() != static_cast<std::size_t>(a.num_rows) + 1) {
    return Result::failure("crs.row_map.size",
                           "row_map has " + std::to_string(a.row_map.size()) +
                               " entries for " + std::to_string(a.num_rows) + " rows");
  }
  if (a.entries.size() != static_cast<std::size_t>(a.num_entries())) {
    return Result::failure("crs.entries.size",
                           std::to_string(a.entries.size()) + " entries stored, row_map ends at " +
                               std::to_string(a.num_entries()));
  }
  if (a.values.size() != a.entries.size()) {
    return Result::failure("matrix.values.parallel",
                           std::to_string(a.values.size()) + " values for " +
                               std::to_string(a.entries.size()) + " entries");
  }
  if (opts.require_square && a.num_rows != a.num_cols) {
    return Result::failure("matrix.square",
                           std::to_string(a.num_rows) + " x " + std::to_string(a.num_cols));
  }
  if (const Result r = validate(graph::GraphView(a), opts.structure); !r.ok) return r;
  if (opts.require_finite) {
    for (ordinal_t v = 0; v < a.num_rows; ++v) {
      for (offset_t j = a.row_map[v]; j < a.row_map[v + 1]; ++j) {
        if (!std::isfinite(a.values[static_cast<std::size_t>(j)])) {
          return Result::failure("matrix.values.finite",
                                 at_row(v) + "non-finite value at column " +
                                     std::to_string(a.entries[static_cast<std::size_t>(j)]));
        }
      }
    }
  }
  return Result::pass();
}

Result validate(const core::Aggregation& agg, ordinal_t num_fine) {
  if (agg.labels.size() != static_cast<std::size_t>(num_fine)) {
    return Result::failure("aggregation.labels.size",
                           std::to_string(agg.labels.size()) + " labels for " +
                               std::to_string(num_fine) + " vertices");
  }
  if (agg.num_aggregates < 0 || (num_fine > 0 && agg.num_aggregates == 0)) {
    return Result::failure("aggregation.count.positive",
                           "num_aggregates " + std::to_string(agg.num_aggregates));
  }
  std::vector<char> hit(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t v = 0; v < num_fine; ++v) {
    const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
    if (a < 0 || a >= agg.num_aggregates) {
      return Result::failure("aggregation.labels.in_range",
                             "vertex " + std::to_string(v) + ": label " + std::to_string(a) +
                                 " outside [0, " + std::to_string(agg.num_aggregates) + ")");
    }
    hit[static_cast<std::size_t>(a)] = 1;
  }
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    if (!hit[static_cast<std::size_t>(a)]) {
      return Result::failure("aggregation.surjective",
                             "aggregate " + std::to_string(a) + " is empty");
    }
  }
  if (!agg.roots.empty()) {
    if (agg.roots.size() != static_cast<std::size_t>(agg.num_aggregates)) {
      return Result::failure("aggregation.roots.size",
                             std::to_string(agg.roots.size()) + " roots for " +
                                 std::to_string(agg.num_aggregates) + " aggregates");
    }
    for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
      const ordinal_t r = agg.roots[static_cast<std::size_t>(a)];
      if (r < 0 || r >= num_fine) {
        return Result::failure("aggregation.roots.in_range",
                               "aggregate " + std::to_string(a) + ": root " +
                                   std::to_string(r) + " outside [0, " +
                                   std::to_string(num_fine) + ")");
      }
      if (agg.labels[static_cast<std::size_t>(r)] != a) {
        return Result::failure("aggregation.roots.labeled",
                               "aggregate " + std::to_string(a) + ": root " +
                                   std::to_string(r) + " labeled " +
                                   std::to_string(agg.labels[static_cast<std::size_t>(r)]));
      }
    }
  }
  return Result::pass();
}

Result validate_partition(std::span<const ordinal_t> part, ordinal_t k,
                          bool require_nonempty_parts) {
  if (k < 1) {
    return Result::failure("partition.k.positive", "k = " + std::to_string(k));
  }
  std::vector<char> hit(static_cast<std::size_t>(k), 0);
  for (std::size_t v = 0; v < part.size(); ++v) {
    const ordinal_t p = part[v];
    if (p < 0 || p >= k) {
      return Result::failure("partition.labels.in_range",
                             "vertex " + std::to_string(v) + ": part " + std::to_string(p) +
                                 " outside [0, " + std::to_string(k) + ")");
    }
    hit[static_cast<std::size_t>(p)] = 1;
  }
  if (require_nonempty_parts && part.size() >= static_cast<std::size_t>(k)) {
    for (ordinal_t p = 0; p < k; ++p) {
      if (!hit[static_cast<std::size_t>(p)]) {
        return Result::failure("partition.parts.nonempty",
                               "part " + std::to_string(p) + " is empty");
      }
    }
  }
  return Result::pass();
}

Result validate_prolongator(const graph::CrsMatrix& p, ordinal_t fine_rows,
                            ordinal_t coarse_rows, bool require_column_partition) {
  if (p.num_rows != fine_rows || p.num_cols != coarse_rows) {
    return Result::failure("prolongator.shape",
                           std::to_string(p.num_rows) + " x " + std::to_string(p.num_cols) +
                               ", expected " + std::to_string(fine_rows) + " x " +
                               std::to_string(coarse_rows));
  }
  if (const Result r = validate(p); !r.ok) return r;
  std::vector<char> hit(static_cast<std::size_t>(coarse_rows), 0);
  for (ordinal_t v = 0; v < p.num_rows; ++v) {
    const ordinal_t deg = p.degree(v);
    if (deg < 1) {
      return Result::failure("prolongator.rows.nonempty",
                             at_row(v) + "no coarse contribution");
    }
    if (require_column_partition && deg != 1) {
      return Result::failure("prolongator.column_partition",
                             at_row(v) + std::to_string(deg) + " entries; a tentative "
                                 "prolongator maps each fine row to exactly one aggregate");
    }
    for (const ordinal_t c : p.row(v)) hit[static_cast<std::size_t>(c)] = 1;
  }
  for (ordinal_t c = 0; c < coarse_rows; ++c) {
    if (!hit[static_cast<std::size_t>(c)]) {
      return Result::failure("prolongator.columns.covered",
                             "coarse column " + std::to_string(c) + " unreferenced");
    }
  }
  return Result::pass();
}

Result validate_hierarchy(const std::vector<multilevel::OperatorLevel>& ops) {
  if (ops.empty()) {
    return Result::failure("hierarchy.levels.nonempty", "no operator levels");
  }
  for (std::size_t l = 0; l < ops.size(); ++l) {
    const multilevel::OperatorLevel& lvl = ops[l];
    const std::string at = "level " + std::to_string(l) + ": ";
    MatrixChecks mc;
    mc.require_square = true;
    if (const Result r = validate(lvl.a, mc); !r.ok) {
      return Result::failure("hierarchy." + r.invariant, at + r.message);
    }
    if (lvl.inv_diag.size() != static_cast<std::size_t>(lvl.a.num_rows)) {
      return Result::failure("hierarchy.inv_diag.size",
                             at + std::to_string(lvl.inv_diag.size()) + " inverse-diagonal "
                                 "entries for " + std::to_string(lvl.a.num_rows) + " rows");
    }
    const bool coarsest = l + 1 == ops.size();
    if (coarsest) {
      if (lvl.p.num_rows != 0 || lvl.r.num_rows != 0) {
        return Result::failure("hierarchy.coarsest.transfer_free",
                               at + "coarsest level carries transfers");
      }
      continue;
    }
    const ordinal_t coarse = ops[l + 1].a.num_rows;
    if (const Result r = validate_prolongator(lvl.p, lvl.a.num_rows, coarse); !r.ok) {
      return Result::failure("hierarchy." + r.invariant, at + r.message);
    }
    if (lvl.r.num_rows != coarse || lvl.r.num_cols != lvl.a.num_rows ||
        lvl.r.num_entries() != lvl.p.num_entries()) {
      return Result::failure("hierarchy.restriction.transpose_shape",
                             at + "R is " + std::to_string(lvl.r.num_rows) + " x " +
                                 std::to_string(lvl.r.num_cols) + " with " +
                                 std::to_string(lvl.r.num_entries()) + " entries; expected "
                                 "the transpose of P");
    }
  }
  return Result::pass();
}

Result validate_steps(ordinal_t fine_rows, const std::vector<multilevel::Step>& steps) {
  ordinal_t rows = fine_rows;
  for (std::size_t l = 0; l < steps.size(); ++l) {
    const multilevel::Step& s = steps[l];
    const std::string at = "step " + std::to_string(l) + ": ";
    if (const Result r = validate(s.aggregation, rows); !r.ok) {
      return Result::failure("steps." + r.invariant, at + r.message);
    }
    if (s.coarse.graph.num_rows != s.aggregation.num_aggregates) {
      return Result::failure("steps.coarse.rows",
                             at + "coarse graph has " + std::to_string(s.coarse.graph.num_rows) +
                                 " rows for " + std::to_string(s.aggregation.num_aggregates) +
                                 " aggregates");
    }
    GraphChecks gc;
    gc.require_loop_free = true;
    if (const Result r = validate(graph::GraphView(s.coarse.graph), gc); !r.ok) {
      return Result::failure("steps." + r.invariant, at + r.message);
    }
    if (!s.coarse.vertex_weight.empty() &&
        s.coarse.vertex_weight.size() != static_cast<std::size_t>(s.coarse.graph.num_rows)) {
      return Result::failure("steps.vertex_weight.parallel",
                             at + std::to_string(s.coarse.vertex_weight.size()) +
                                 " vertex weights for " +
                                 std::to_string(s.coarse.graph.num_rows) + " rows");
    }
    if (!s.coarse.edge_weight.empty() &&
        s.coarse.edge_weight.size() != static_cast<std::size_t>(s.coarse.graph.num_entries())) {
      return Result::failure("steps.edge_weight.parallel",
                             at + std::to_string(s.coarse.edge_weight.size()) +
                                 " edge weights for " +
                                 std::to_string(s.coarse.graph.num_entries()) + " entries");
    }
    rows = s.coarse.graph.num_rows;
  }
  return Result::pass();
}

bool all_finite(std::span<const scalar_t> v) {
  for (const scalar_t x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::int64_t first_non_finite(std::span<const scalar_t> v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return static_cast<std::int64_t>(i);
  }
  return -1;
}

}  // namespace parmis::check
