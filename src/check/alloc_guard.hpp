#pragma once
/// \file alloc_guard.hpp
/// \brief `check::AllocGuard`: mechanical enforcement of the
/// zero-allocation warm-run contract.
///
/// Since PR 2 every hot object in this library (Mis2Handle, CoarsenHandle,
/// SolveHandle, the multilevel SetupWorkspace) promises that *warm* runs —
/// repeated calls whose scratch capacity already suffices — perform zero
/// heap allocations. Until now that promise was policed indirectly, by
/// watching `scratch_bytes()` / `scratch_grows` stay flat, which misses
/// any allocation the capacity bookkeeping cannot see (a transient
/// temporary, a stray `std::string`, a container the workspace forgot to
/// own).
///
/// In `PARMIS_CHECK_INVARIANTS` builds this header arms a global
/// `operator new`/`operator delete` interposer that counts allocations in
/// a per-thread counter (thread-safe by construction: each thread counts
/// only its own calls). `AllocGuard` snapshots the calling thread's count
/// on construction; `allocations()` reports how many heap allocations the
/// scope performed. The handles wrap their run paths with a guard and
/// `PARMIS_CHECK` that a run which did not grow scratch allocated nothing
/// — the contract, enforced at the allocator itself.
///
/// In normal builds the interposer is absent (`counting_available()` is
/// false), `AllocGuard` compiles to a pair of no-op calls, and global
/// new/delete are untouched — the interposer never rides into a release
/// binary.

#include <cstdint>

namespace parmis::check {

/// True when this build interposes global new/delete and per-thread
/// allocation counting works (i.e. the library was compiled with
/// PARMIS_CHECK_INVARIANTS). Tests gate AllocGuard assertions on this.
[[nodiscard]] bool counting_available();

/// Number of heap allocations (global operator new calls, all variants)
/// performed by the calling thread so far. Always 0 when
/// `counting_available()` is false.
[[nodiscard]] std::uint64_t thread_allocations();

/// Number of heap deallocations performed by the calling thread so far.
[[nodiscard]] std::uint64_t thread_deallocations();

/// RAII allocation scope: counts the calling thread's heap allocations
/// between construction and the query. Nestable and re-entrant; costs two
/// thread-local reads. Not a memory profiler — it counts events, not
/// bytes, which is exactly what a zero-allocation contract needs.
class AllocGuard {
 public:
  AllocGuard() : start_(thread_allocations()) {}

  /// Allocations performed by this thread since construction.
  [[nodiscard]] std::uint64_t allocations() const { return thread_allocations() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace parmis::check
