#include "check/alloc_guard.hpp"

#include <cstddef>
#include <cstdlib>
#include <new>

namespace parmis::check {

#ifdef PARMIS_CHECK_INVARIANTS

namespace detail {
// Plain thread_local integers: each thread counts only its own allocator
// traffic, so the counters are race-free without atomics and a guard on
// the master thread is blind to worker-thread noise (the handles' scratch
// is always touched from the calling thread).
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_deallocs = 0;
}  // namespace detail

bool counting_available() { return true; }
std::uint64_t thread_allocations() { return detail::t_allocs; }
std::uint64_t thread_deallocations() { return detail::t_deallocs; }

#else

bool counting_available() { return false; }
std::uint64_t thread_allocations() { return 0; }
std::uint64_t thread_deallocations() { return 0; }

#endif  // PARMIS_CHECK_INVARIANTS

}  // namespace parmis::check

#ifdef PARMIS_CHECK_INVARIANTS

// ---------------------------------------------------------------------------
// Global new/delete interposer (check builds only). Replaces the four
// replaceable allocation functions and their sized/aligned/nothrow
// variants; every path funnels through counted_alloc/counted_free. Linked
// into any binary that uses the parmis library (this translation unit also
// defines counting_available(), so the object file is always pulled in).
// ---------------------------------------------------------------------------

namespace {

void* counted_alloc(std::size_t size, std::size_t align) {
  ++parmis::check::detail::t_allocs;
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  ++parmis::check::detail::t_deallocs;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, 0);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }

#endif  // PARMIS_CHECK_INVARIANTS
