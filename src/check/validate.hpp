#pragma once
/// \file validate.hpp
/// \brief Structural invariant validators for every core data structure:
/// CRS graphs/matrices, aggregations, partitions, prolongators, and whole
/// multilevel hierarchies.
///
/// Each validator walks one structure and returns a `check::Result` that
/// either passes or **names the violated invariant** (a stable dotted
/// identifier like `"crs.entries.sorted"`) plus a located diagnostic
/// (`"row 17: entry 42 out of range [0, 40)"`). Callers decide severity:
///  - hot paths assert them behind `PARMIS_CHECK_OK(...)` (check/check.hpp),
///    active only in `PARMIS_CHECK_INVARIANTS` builds;
///  - the input loaders (Matrix Market, `gen:` specs) call them
///    unconditionally and convert failures into exceptions, so corrupt
///    input is reported at the boundary instead of constructing a graph
///    that misbehaves three subsystems later.
///
/// Validators are deliberately serial and allocation-light: they are
/// debug/boundary tooling, never part of a measured path.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/aggregation.hpp"
#include "graph/crs.hpp"
#include "multilevel/hierarchy.hpp"

namespace parmis::check {

/// Outcome of one validator: pass, or the violated invariant's stable name
/// plus a located human-readable message.
struct Result {
  bool ok = true;
  std::string invariant;  ///< dotted id of the violated invariant ("" when ok)
  std::string message;    ///< what/where, e.g. "row 3: entry 7 >= num_cols 6"

  [[nodiscard]] static Result pass() { return Result{}; }
  [[nodiscard]] static Result failure(std::string inv, std::string msg) {
    return Result{false, std::move(inv), std::move(msg)};
  }

  explicit operator bool() const { return ok; }

  /// One-line "invariant violated: <invariant>: <message>" (pass: "ok").
  [[nodiscard]] std::string diagnostic() const;
};

/// Which optional CRS structure invariants to require on top of the
/// always-checked ones (row_map shape/monotonicity, entry range).
struct GraphChecks {
  bool require_sorted = true;     ///< rows ascending
  bool require_unique = true;     ///< no duplicate column in a row
  bool require_loop_free = false; ///< no diagonal entry (adjacency inputs)
  bool require_symmetric = false; ///< entry (v,c) implies (c,v); O(E log d)
};

/// Structural validation of a CRS graph (or the structure of a matrix via
/// the implicit GraphView conversions). Checks, in order: nonnegative
/// dims, `row_map` size/front/back, monotone offsets, in-range entries,
/// then the requested `GraphChecks`.
[[nodiscard]] Result validate(graph::GraphView g, const GraphChecks& opts = {});

/// Additional matrix invariants on top of the structural ones.
struct MatrixChecks {
  GraphChecks structure;
  bool require_finite = true;  ///< no NaN/Inf values
  bool require_square = false; ///< num_rows == num_cols
};

/// Structural + value validation of a CRS matrix (values array parallel to
/// entries, finite values, optionally square).
[[nodiscard]] Result validate(const graph::CrsMatrix& a, const MatrixChecks& opts = {});

/// Aggregation validity over `num_fine` fine vertices: label array sized
/// `num_fine`, every label in [0, num_aggregates), every aggregate
/// non-empty (the map is surjective), and — when roots are present — one
/// root per aggregate, each labeled with its own aggregate.
[[nodiscard]] Result validate(const core::Aggregation& agg, ordinal_t num_fine);

/// Partition validity: every label in [0, k), and (optionally) every part
/// non-empty.
[[nodiscard]] Result validate_partition(std::span<const ordinal_t> part, ordinal_t k,
                                        bool require_nonempty_parts = true);

/// Prolongator validity: shape `fine_rows x coarse_rows`, structurally
/// valid rows, at least one entry per row, finite values, and every coarse
/// column hit by some row (the column-partition property of aggregation-
/// based transfers). `require_column_partition` additionally requires
/// exactly one entry per row (a tentative/unsmoothed prolongator).
[[nodiscard]] Result validate_prolongator(const graph::CrsMatrix& p, ordinal_t fine_rows,
                                          ordinal_t coarse_rows,
                                          bool require_column_partition = false);

/// Whole-hierarchy validation of Galerkin operator levels: every A square
/// and finite, every transfer chain dimension-consistent level to level
/// (P_l: rows(A_l) x rows(A_{l+1}), R_l = P_lᵀ shape, inv_diag sized), and
/// the coarsest level transfer-free.
[[nodiscard]] Result validate_hierarchy(const std::vector<multilevel::OperatorLevel>& ops);

/// Whole-hierarchy validation of coarsening steps (topology/weighted
/// builds): level-to-level label chains sized to the previous level's
/// rows, coarse graphs sized to the aggregate counts, and weight arrays
/// (when present) parallel to their graphs.
[[nodiscard]] Result validate_steps(ordinal_t fine_rows,
                                    const std::vector<multilevel::Step>& steps);

/// True iff every element is finite (no NaN/Inf). Cheap enough for
/// check-build exit assertions on solution vectors.
[[nodiscard]] bool all_finite(std::span<const scalar_t> v);

/// Index of the first NaN/Inf element, or -1 when all are finite (the
/// located variant the resilience layer's NonFiniteInput diagnostics use).
[[nodiscard]] std::int64_t first_non_finite(std::span<const scalar_t> v);

}  // namespace parmis::check
