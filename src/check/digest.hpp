#pragma once
/// \file digest.hpp
/// \brief FNV-1a digests of arrays and core structures — the compact way
/// to assert (and report) bit-identical results across backends.
///
/// The paper's headline property is that every kernel produces the *same
/// bits* on any backend at any thread count. Checking that used to mean
/// hauling whole label/value vectors around and comparing element-wise;
/// a 64-bit digest carries the same evidence in one word, which
///  - lets the determinism sweeps (tests/test_determinism.cpp) compare
///    dozens of configurations without storing each result,
///  - gives every driver a `--digest` mode that prints a hash a user can
///    diff across machines/backends ("same digest = same bits"), and
///  - feeds `PARMIS_CHECK` sites that want to pin a result cheaply.
///
/// FNV-1a (64-bit) is used deliberately: byte-order-sensitive, trivially
/// portable, zero dependencies, and fast enough to hash every value array
/// in a hierarchy without showing up in a profile. It is **not**
/// cryptographic and not meant to be — it detects divergence, not
/// adversaries. Floating-point data is hashed by bit pattern, which is
/// exactly right for a bit-identity contract (+0.0 and -0.0 differ).

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/crs.hpp"

namespace parmis::check {

/// FNV-1a 64-bit offset basis / prime.
inline constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Incremental FNV-1a hasher. Feed byte ranges or trivially copyable
/// spans; `value()` can be read at any point.
class Digest {
 public:
  /// Absorb `n` raw bytes.
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = h_;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
    h_ = h;
  }

  /// Absorb a span of trivially copyable elements by bit pattern.
  template <typename T>
  void update(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    update(v.data(), v.size_bytes());
  }

  /// Absorb one trivially copyable value by bit pattern.
  template <typename T>
  void update_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    update(&v, sizeof(T));
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvBasis;
};

/// Digest of one span (the common case: a label or value array).
template <typename T>
[[nodiscard]] std::uint64_t digest(std::span<const T> v) {
  Digest d;
  d.update(v);
  return d.value();
}

/// Digest of a vector (deduces the span overload).
template <typename T>
[[nodiscard]] std::uint64_t digest(const std::vector<T>& v) {
  return digest(std::span<const T>(v));
}

/// Structure digest of a CRS graph: dims + row_map + entries.
[[nodiscard]] std::uint64_t digest(const graph::CrsGraph& g);

/// Full digest of a CRS matrix: structure + value bit patterns.
[[nodiscard]] std::uint64_t digest(const graph::CrsMatrix& a);

/// Combine two digests order-sensitively (h1 then h2).
[[nodiscard]] std::uint64_t digest_combine(std::uint64_t h1, std::uint64_t h2);

/// Fixed-width lowercase hex rendering ("0x" + 16 digits) for driver
/// output — diffable across runs, machines, and backends.
[[nodiscard]] std::string digest_hex(std::uint64_t h);

}  // namespace parmis::check
