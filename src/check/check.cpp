#include "check/check.hpp"

namespace parmis::check {

void fail(const char* file, int line, const std::string& diagnostic) {
  // Strip the build-tree prefix so messages are stable across checkouts.
  std::string f = file;
  if (const std::size_t pos = f.rfind("src/"); pos != std::string::npos) f = f.substr(pos);
  throw CheckError(f + ":" + std::to_string(line) + ": " + diagnostic);
}

}  // namespace parmis::check
