#include "check/digest.hpp"

namespace parmis::check {

std::uint64_t digest(const graph::CrsGraph& g) {
  Digest d;
  d.update_value(g.num_rows);
  d.update_value(g.num_cols);
  d.update(std::span<const offset_t>(g.row_map));
  d.update(std::span<const ordinal_t>(g.entries));
  return d.value();
}

std::uint64_t digest(const graph::CrsMatrix& a) {
  Digest d;
  d.update_value(a.num_rows);
  d.update_value(a.num_cols);
  d.update(std::span<const offset_t>(a.row_map));
  d.update(std::span<const ordinal_t>(a.entries));
  d.update(std::span<const scalar_t>(a.values));
  return d.value();
}

std::uint64_t digest_combine(std::uint64_t h1, std::uint64_t h2) {
  Digest d;
  d.update_value(h1);
  d.update_value(h2);
  return d.value();
}

std::string digest_hex(std::uint64_t h) {
  static const char* hex = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(hex[(h >> shift) & 0xF]);
  }
  return out;
}

}  // namespace parmis::check
