/// \file graph_partition.cpp
/// \brief Batch partitioning driver over the pluggable `Partitioner`
/// registry: run any set of registered algorithms over any set of graphs
/// and print a quality comparison table (paper §II/§VII use case).
///
/// Usage:
///   graph_partition [--algos=a,b,...|all] [--graphs=SPEC,SPEC,...]
///                   [--k=K] [--scale=F] [--json] [--trace=FILE]
///                   [--trace-sample=N] [--list]
///
/// `--json` rows are `obs::Report` objects (same telemetry schema as
/// linear_solve and the benches); `--trace=FILE` records obs spans for
/// the whole batch into a Chrome trace-event file.
///
/// Graph SPECs are shared with parmis_tool (see graph_inputs.hpp):
///   file.mtx | gen:laplace2d:NX | gen:laplace3d:NX | gen:elasticity:NX |
///   gen:rgg:N:DEG | gen:powerlaw:N[:EXP] | reg:NAME | reg:table2
///
/// Examples:
///   graph_partition --list
///   graph_partition --algos=multilevel-mis2,ldg,lp-grow --k=8
///   graph_partition --graphs=reg:Serena,gen:laplace2d:300 --scale=0.05 --json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/digest.hpp"
#include "graph_inputs.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "partition/interface.hpp"
#include "resilience/fault.hpp"

namespace {

using namespace parmis;
using examples::split_csv;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algos=a,b,...|all] [--graphs=SPEC,...] [--k=K] [--scale=F]\n"
               "          [--json] [--digest] [--trace=FILE] [--trace-sample=N] [--list]\n"
               "  SPEC: file.mtx | gen:laplace2d:NX | gen:laplace3d:NX | gen:elasticity:NX |\n"
               "        gen:rgg:N:DEG | gen:powerlaw:N[:EXP] | reg:NAME | reg:table2\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> algos;
  std::vector<std::string> graphs;
  ordinal_t k = 8;
  double scale = 0.05;
  bool json = false;
  // --digest: print check::digest_hex of each labeling — one word a user
  // can diff across machines/backends ("same digest = same bits").
  bool digest = false;
  std::string trace_path;
  int trace_sample = 1;

  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--algos=", 8)) {
      const std::string v = s + 8;
      algos = v == "all" ? partition::partitioner_names() : split_csv(v);
    } else if (!std::strncmp(s, "--graphs=", 9)) {
      graphs = split_csv(s + 9);
    } else if (!std::strncmp(s, "--k=", 4)) {
      k = static_cast<ordinal_t>(std::atoi(s + 4));
    } else if (!std::strncmp(s, "--scale=", 8)) {
      scale = std::atof(s + 8);
    } else if (!std::strcmp(s, "--json")) {
      json = true;
    } else if (!std::strcmp(s, "--digest")) {
      digest = true;
    } else if (!std::strncmp(s, "--trace=", 8)) {
      trace_path = s + 8;
    } else if (!std::strncmp(s, "--trace-sample=", 15)) {
      trace_sample = std::atoi(s + 15);
    } else if (!std::strcmp(s, "--list")) {
      std::printf("registered partitioners:\n");
      for (const partition::PartitionerSpec& spec : partition::partitioner_registry()) {
        std::printf("  %-16s %s\n", spec.name.c_str(), spec.description.c_str());
      }
      return 0;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (k < 1) {
    std::fprintf(stderr, "--k must be a positive integer\n");
    return 1;
  }
  // Fault points (e.g. partition.bisect_fail) armed from the environment;
  // compiled out unless the build configures PARMIS_CHECK_INVARIANTS.
  resilience::arm_faults_from_env();
  if (algos.empty()) algos = partition::partitioner_names();
  if (graphs.empty()) graphs = {"gen:rgg:100000:14"};

  // reg:table2 expands to the full Table II suite.
  {
    std::vector<std::string> expanded;
    for (const std::string& spec : graphs) {
      if (spec == "reg:table2") {
        for (const graph::MatrixSpec& m : graph::table2_matrices()) {
          expanded.push_back("reg:" + m.name);
        }
      } else {
        expanded.push_back(spec);
      }
    }
    graphs = std::move(expanded);
  }

  // Fail fast on unknown algorithm names before loading any graph.
  std::vector<std::unique_ptr<partition::Partitioner>> partitioners;
  for (const std::string& name : algos) {
    try {
      partitioners.push_back(partition::make_partitioner(name));
    } catch (const std::out_of_range& e) {
      std::fprintf(stderr, "%s (try --list)\n", e.what());
      return 1;
    }
  }

  if (!trace_path.empty()) obs::set_tracing(true, trace_sample);

  bool any_failed = false;
  for (const std::string& spec : graphs) {
    graph::CrsGraph g;
    try {
      g = examples::load_graph(spec, scale);
    } catch (const std::exception& e) {
      // Report and keep going: a typo in one spec must not throw away the
      // rest of a long batch.
      std::fprintf(stderr, "cannot load '%s': %s\n", spec.c_str(), e.what());
      any_failed = true;
      continue;
    }
    const partition::WeightedGraph wg = partition::WeightedGraph::unit(std::move(g));
    // --json keeps stdout pure JSON-lines (one object per run) so the
    // output pipes straight into jq; the human table goes to stdout only
    // in the default mode.
    if (!json) {
      std::printf("\n%s: %d vertices, %lld edges, k=%d\n", spec.c_str(), wg.graph.num_rows,
                  static_cast<long long>(wg.graph.num_entries() / 2), k);
      std::printf("  %-16s %12s %7s %10s %9s %7s %6s %9s\n", "algorithm", "cut", "cut%",
                  "commvol", "boundary%", "imbal%", "empty", "time(s)");
    }
    for (const auto& p : partitioners) {
      const partition::PartitionResult r = p->run(wg, k);
      const partition::QualityReport& q = r.quality;
      const std::string pdigest =
          digest ? check::digest_hex(check::digest(r.part)) : std::string{};
      if (json) {
        obs::Report report;
        obs::add_graph(report, spec, wg.graph.num_rows, wg.graph.num_entries());
        report.set("algorithm", p->name());
        report.set("k", static_cast<std::int64_t>(k));
        report.set("seconds", r.seconds);
        if (digest) report.set("part_digest", pdigest);
        report.set_raw("quality", q.to_json());
        std::printf("%s\n", report.to_json().c_str());
      } else {
        std::printf("  %-16s %12lld %6.2f%% %10lld %8.2f%% %6.2f%% %6d %9.3f%s%s\n",
                    p->name().c_str(), static_cast<long long>(q.edge_cut),
                    100.0 * q.cut_fraction(), static_cast<long long>(q.comm_volume),
                    100.0 * q.boundary_fraction, 100.0 * q.imbalance, q.empty_parts, r.seconds,
                    digest ? "  " : "", pdigest.c_str());
      }
    }
  }

  if (!trace_path.empty()) {
    obs::set_tracing(false);
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "cannot write trace file '%s'\n", trace_path.c_str());
      any_failed = true;
    } else if (!json) {
      std::printf("\ntrace: %llu events -> %s (load in chrome://tracing or Perfetto)\n",
                  static_cast<unsigned long long>(obs::total_events()), trace_path.c_str());
    }
  }
  return any_failed ? 1 : 0;
}
