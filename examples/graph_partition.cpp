/// \file graph_partition.cpp
/// \brief The multilevel-partitioning use case end to end: partition a
/// mesh-like graph into k parts with MIS-2 coarsening (paper §II/§VII,
/// Gilbert et al.) and compare against heavy-edge-matching coarsening.
///
/// Run: ./graph_partition [n] [k]

#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "graph/rgg.hpp"
#include "partition/partitioner.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t n = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 100000;
  const ordinal_t k = argc > 2 ? static_cast<ordinal_t>(std::atoi(argv[2])) : 8;

  const graph::CrsGraph g = graph::random_geometric_3d(n, 14.0, 11);
  const std::int64_t edges = g.num_entries() / 2;
  std::printf("partitioning RGG: %d vertices, %lld edges into k=%d parts\n", g.num_rows,
              static_cast<long long>(edges), k);

  for (partition::CoarseningScheme scheme :
       {partition::CoarseningScheme::Mis2Aggregation,
        partition::CoarseningScheme::HeavyEdgeMatching}) {
    partition::PartitionOptions opts;
    opts.coarsening = scheme;
    Timer t;
    const partition::Partition p = partition::partition_graph(g, k, opts);
    std::printf("  %-18s: cut %8lld (%.2f%% of edges), imbalance %5.2f%%, %.3f s\n",
                scheme == partition::CoarseningScheme::Mis2Aggregation ? "MIS-2 coarsening"
                                                                       : "HEM coarsening",
                static_cast<long long>(p.edge_cut), 100.0 * p.edge_cut / edges,
                100.0 * p.imbalance, t.seconds());
  }
  return 0;
}
