/// \file cluster_gs_gmres.cpp
/// \brief The Table VI scenario as an application: GMRES preconditioned by
/// symmetric Gauss-Seidel, comparing the classic point multicolor method
/// against the paper's cluster multicolor method (Algorithm 4).
///
/// Run: ./cluster_gs_gmres [grid_side]

#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "solver/cluster_gs.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/gmres.hpp"
#include "solver/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t side = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 20;

  // An elasticity-like problem — the matrix family where Table VI shows
  // the largest cluster-GS gains.
  const graph::CrsMatrix a = graph::elasticity3d(side, side, side);
  std::printf("Elasticity3D %d^3: %d unknowns, %lld entries\n", side, a.num_rows,
              static_cast<long long>(a.num_entries()));

  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 7);
  solver::IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 800;  // the paper's cap

  {
    Timer setup;
    solver::PointGsPreconditioner prec(a);
    const double setup_s = setup.seconds();
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    Timer apply;
    const solver::IterResult r = solver::gmres(a, b, x, opts, &prec);
    std::printf("point   multicolor SGS: %3d colors | setup %.4f s | solve %.3f s | %d iters%s\n",
                prec.gs().num_colors(), setup_s, apply.seconds(), r.iterations,
                r.converged ? "" : " (no convergence)");
  }
  {
    Timer setup;
    solver::ClusterGsPreconditioner prec(a);
    const double setup_s = setup.seconds();
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    Timer apply;
    const solver::IterResult r = solver::gmres(a, b, x, opts, &prec);
    std::printf("cluster multicolor SGS: %3d colors | setup %.4f s | solve %.3f s | %d iters%s\n",
                prec.gs().num_colors(), setup_s, apply.seconds(), r.iterations,
                r.converged ? "" : " (no convergence)");
    std::printf("  (%d clusters over %d rows; coloring ran on the %.1fx smaller coarse graph)\n",
                prec.gs().num_clusters(), a.num_rows,
                static_cast<double>(a.num_rows) / prec.gs().num_clusters());
  }
  return 0;
}
