/// \file cluster_gs_gmres.cpp
/// \brief The Table VI scenario as an application: GMRES preconditioned by
/// symmetric Gauss-Seidel, comparing the classic point multicolor method
/// against the paper's cluster multicolor method (Algorithm 4) — driven
/// through the registry-keyed `SolveHandle` API.
///
/// Run: ./cluster_gs_gmres [grid_side]

#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "solver/cluster_gs.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/handle.hpp"
#include "solver/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t side = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 20;

  // An elasticity-like problem — the matrix family where Table VI shows
  // the largest cluster-GS gains.
  const graph::CrsMatrix a = graph::elasticity3d(side, side, side);
  std::printf("Elasticity3D %d^3: %d unknowns, %lld entries\n", side, a.num_rows,
              static_cast<long long>(a.num_entries()));

  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 7);
  solver::IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 800;  // the paper's cap

  auto run = [&](const char* prec, const char* label) {
    solver::SolveHandle handle("gmres", prec);
    Timer setup;
    handle.setup(a);  // preconditioner built here, reused by every solve
    const double setup_s = setup.seconds();
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    Timer apply;
    const solver::IterResult& r = handle.solve(a, b, x, opts);
    std::printf("%s: setup %.4f s | solve %.3f s | %d iters%s\n", label, setup_s,
                apply.seconds(), r.iterations, r.converged ? "" : " (no convergence)");
    return handle;
  };

  (void)run("gs", "point   multicolor SGS");
  const solver::SolveHandle handle = run("cluster-gs", "cluster multicolor SGS");

  // The cached preconditioner stays inspectable through the handle.
  const auto* cluster =
      dynamic_cast<const solver::ClusterGsPreconditioner*>(handle.preconditioner());
  if (cluster) {
    std::printf("  (%d clusters over %d rows in %d colors; coloring ran on the %.1fx "
                "smaller coarse graph)\n",
                cluster->gs().num_clusters(), a.num_rows, cluster->gs().num_colors(),
                static_cast<double>(a.num_rows) / cluster->gs().num_clusters());
  }
  std::printf("  handle telemetry: %llu solve(s), %llu iterations, %llu prec setup(s)\n",
              static_cast<unsigned long long>(handle.stats().solves),
              static_cast<unsigned long long>(handle.stats().iterations),
              static_cast<unsigned long long>(handle.stats().prec_setups));
  return 0;
}
