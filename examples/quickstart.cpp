/// \file quickstart.cpp
/// \brief Smallest end-to-end use of the library: build a graph, compute a
/// distance-2 maximal independent set, verify it, and aggregate around it.
///
/// Run: ./quickstart [grid_side]

#include <cstdio>
#include <cstdlib>

#include "core/aggregation.hpp"
#include "core/mis2.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t side = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 50;

  // 1. Build a problem: a `side x side` 2D Poisson matrix, then take its
  //    loop-free adjacency (all MIS/coarsening algorithms operate on
  //    symmetric adjacency structure, not on matrix values).
  const graph::CrsMatrix a = graph::laplace2d(side, side);
  const graph::CrsGraph g = graph::remove_self_loops(graph::GraphView(a));
  std::printf("graph: %d vertices, %lld edges (avg degree %.2f)\n", g.num_rows,
              static_cast<long long>(g.num_entries() / 2), graph::GraphView(g).avg_degree());

  // 2. Compute the MIS-2 (Algorithm 1 of the paper). Options default to
  //    all four optimizations (xorshift* priorities, worklists, packed
  //    tuples, SIMD).
  const core::Mis2Result mis = core::mis2(g);
  std::printf("MIS-2: %d vertices in %d iterations\n", mis.set_size(), mis.iterations);
  std::printf("first members:");
  for (ordinal_t i = 0; i < std::min<ordinal_t>(8, mis.set_size()); ++i) {
    std::printf(" %d", mis.members[static_cast<std::size_t>(i)]);
  }
  std::printf(" ...\n");

  // 3. Verify independence + maximality (cheap: O(V + E) with 2-hop scans).
  std::printf("valid MIS-2: %s\n", core::verify_mis2(g, mis.in_set) ? "yes" : "NO (bug!)");

  // 4. Coarsen the graph around the MIS-2 roots (Algorithm 3).
  const core::Aggregation agg = core::aggregate_mis2(g);
  const core::AggregationStats stats = core::aggregation_stats(agg);
  std::printf("aggregation: %d aggregates (coarsening ratio %.1fx), sizes %d..%d avg %.1f\n",
              stats.num_aggregates, static_cast<double>(g.num_rows) / stats.num_aggregates,
              stats.min_size, stats.max_size, stats.avg_size);
  return 0;
}
