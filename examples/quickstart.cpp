/// \file quickstart.cpp
/// \brief Smallest end-to-end use of the library: build a graph, compute a
/// distance-2 maximal independent set under an explicit execution context,
/// verify it, and aggregate around it through a reusable handle.
///
/// Run: ./quickstart [grid_side]

#include <cstdio>
#include <cstdlib>

#include "core/aggregation.hpp"
#include "core/mis2.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "parallel/context.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t side = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 50;

  // 1. Build a problem: a `side x side` 2D Poisson matrix, then take its
  //    loop-free adjacency (all MIS/coarsening algorithms operate on
  //    symmetric adjacency structure, not on matrix values).
  const graph::CrsMatrix a = graph::laplace2d(side, side);
  const graph::CrsGraph g = graph::remove_self_loops(graph::GraphView(a));
  std::printf("graph: %d vertices, %lld edges (avg degree %.2f)\n", g.num_rows,
              static_cast<long long>(g.num_entries() / 2), graph::GraphView(g).avg_degree());

  // 2. Pick an execution context explicitly (OpenMP with the hardware
  //    default thread count here; Context::serial() forces the reference
  //    backend). validate() reports what the request resolves to in this
  //    build — e.g. an OpenMP request in a serial-only build falls back.
  const Context ctx = Context::openmp();
  const Context::Validation v = ctx.validate();
  if (v.fell_back) std::printf("context: %s\n", v.message.c_str());

  // 3. Compute the MIS-2 (Algorithm 1 of the paper) through a handle. The
  //    handle owns all scratch; rerunning it (other graphs, other levels)
  //    allocates nothing once warm. Options default to all four
  //    optimizations (xorshift* priorities, worklists, packed tuples,
  //    SIMD). One-shot callers can use core::mis2(g) instead.
  core::Mis2Handle mis_handle(ctx);
  const core::Mis2Result& mis = mis_handle.run(g);
  std::printf("MIS-2: %d vertices in %d iterations\n", mis.set_size(), mis.iterations);
  std::printf("first members:");
  for (ordinal_t i = 0; i < std::min<ordinal_t>(8, mis.set_size()); ++i) {
    std::printf(" %d", mis.members[static_cast<std::size_t>(i)]);
  }
  std::printf(" ...\n");

  // 4. Verify independence + maximality (cheap: O(V + E) with 2-hop scans).
  std::printf("valid MIS-2: %s\n", core::verify_mis2(g, mis.in_set) ? "yes" : "NO (bug!)");

  // 5. Coarsen the graph around MIS-2 roots (Algorithm 3) with a coarsen
  //    handle — the same shape AMG setup and the multilevel partitioners
  //    reuse across hierarchy levels.
  core::CoarsenHandle coarsen_handle(ctx);
  const core::Aggregation& agg = coarsen_handle.aggregate_mis2(g);
  const core::AggregationStats stats = core::aggregation_stats(agg);
  std::printf("aggregation: %d aggregates (coarsening ratio %.1fx), sizes %d..%d avg %.1f\n",
              stats.num_aggregates, static_cast<double>(g.num_rows) / stats.num_aggregates,
              stats.min_size, stats.max_size, stats.avg_size);
  std::printf("warm handle scratch: %.1f KiB (reused on every further call)\n",
              static_cast<double>(coarsen_handle.scratch_bytes()) / 1024.0);
  return 0;
}
