/// \file multilevel_coarsening.cpp
/// \brief The multilevel-partitioning use case (paper §II, Gilbert et al.):
/// recursively coarsen a graph until it is small enough for a direct
/// method, reporting per-level statistics. The per-level scheme comes from
/// the core Coarsener registry ("mis2", "mis2-basic", "hem").
///
/// Run: ./multilevel_coarsening [n] [target] [coarsener]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.hpp"
#include "core/coarsen.hpp"
#include "core/coarsener.hpp"
#include "graph/rgg.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t n = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 200000;
  const ordinal_t target = argc > 2 ? static_cast<ordinal_t>(std::atoi(argv[2])) : 64;
  const std::string coarsener = argc > 3 ? argv[3] : "mis2";

  // A mesh-like unstructured graph (what a partitioner would see).
  const graph::CrsGraph g = graph::random_geometric_3d(n, 16.0, 1);
  std::printf("input: %d vertices, %lld edges\n", g.num_rows,
              static_cast<long long>(g.num_entries() / 2));
  std::printf("coarsener: %s (%s)\n", coarsener.c_str(),
              core::find_coarsener(coarsener).description.c_str());

  core::MultilevelOptions opts;
  opts.target_vertices = target;
  opts.coarsener = coarsener;
  // One handle across all levels: every aggregation after the first level
  // reuses the same scratch (the Context/handle API's reuse contract).
  core::CoarsenHandle handle;
  Timer timer;
  const core::MultilevelHierarchy h = core::multilevel_coarsen(g, opts, handle);
  const double elapsed = timer.seconds();

  std::printf("%-6s %12s %14s %10s %8s\n", "level", "vertices", "edges", "ratio", "mis2-it");
  ordinal_t prev = g.num_rows;
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    const auto& lvl = h.levels[l];
    std::printf("%-6zu %12d %14lld %9.2fx %8d\n", l + 1, lvl.graph.num_rows,
                static_cast<long long>(lvl.graph.num_entries() / 2),
                static_cast<double>(prev) / lvl.graph.num_rows,
                lvl.aggregation.phase1_iterations + lvl.aggregation.phase2_iterations);
    prev = lvl.graph.num_rows;
  }
  std::printf("coarsened %d -> %d vertices in %zu levels, %.3f s total\n", g.num_rows, prev,
              h.levels.size(), elapsed);

  // Partition-style sanity: project every fine vertex to its coarse id.
  std::vector<ordinal_t> part(static_cast<std::size_t>(g.num_rows));
  for (ordinal_t v = 0; v < g.num_rows; ++v) part[static_cast<std::size_t>(v)] = h.project(v);
  std::printf("projection of vertex 0 -> coarse vertex %d\n", part[0]);
  return 0;
}
