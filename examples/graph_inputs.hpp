#pragma once
/// \file graph_inputs.hpp
/// \brief Shared graph-spec loader for the example binaries.
///
/// Spec syntax (the same across parmis_tool and graph_partition):
///   path/to/matrix.mtx          any Matrix Market coordinate file
///   gen:laplace3d:NX            NX^3 7-point grid
///   gen:laplace2d:NX            NX^2 5-point grid
///   gen:elasticity:NX           NX^3 27-point, 3 dof
///   gen:rgg:N:DEG               3D random geometric graph
///   gen:powerlaw:N[:EXP]        power-law degrees, exponent EXP (default 2.2)
///   reg:NAME                    a Table II surrogate (e.g. reg:Serena)
///
/// Every input is symmetrized and stripped of self loops, so general
/// matrices are accepted.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/validate.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"
#include "graph/rgg.hpp"

namespace parmis::examples {

/// Comma-separated argument lists (--algos=a,b / --solvers=s,... / ...),
/// shared by the batch drivers. Empty fields are dropped.
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Build the adjacency described by `spec`; `scale` applies to registry
/// surrogates only (fraction of the paper |V|). Throws std::runtime_error
/// on a malformed spec, unknown generator/registry name, or unreadable
/// file, so batch drivers can report the spec and keep going.
inline graph::CrsGraph load_graph(const std::string& spec, double scale = 1.0) {
  // idx-th colon-separated field; empty when the spec has too few fields.
  auto field = [&](std::size_t idx) -> std::string {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < idx; ++i) {
      pos = spec.find(':', pos);
      if (pos == std::string::npos) return "";
      ++pos;
    }
    const std::size_t end = spec.find(':', pos);
    return spec.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
  };
  auto bad_spec = [&](const std::string& why) {
    return std::runtime_error("bad graph spec '" + spec + "': " + why);
  };
  // Checked numeric fields: std::atoi silently truncates garbage to 0 and
  // wraps overflowing sizes, so "gen:rgg:9999999999:14" used to become a
  // tiny (or negative) graph instead of an error.
  auto parse_ordinal = [&](const std::string& text, const char* what) -> ordinal_t {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) {
      throw bad_spec(std::string(what) + " is not an integer: '" + text + "'");
    }
    if (errno == ERANGE || v < 0 || v > max_ordinal) {
      throw bad_spec(std::string(what) + " overflows the 32-bit vertex ordinal: '" + text + "'");
    }
    return static_cast<ordinal_t>(v);
  };
  auto parse_double = [&](const std::string& text, const char* what) -> double {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() || !std::isfinite(v)) {
      throw bad_spec(std::string(what) + " is not a finite number: '" + text + "'");
    }
    return v;
  };
  // Grid generators produce f(nx) vertices (nx^2, nx^3, 3*nx^3); reject
  // sizes whose vertex count overflows ordinal_t before generating.
  auto check_grid_cells = [&](ordinal_t nx, int dims, ordinal_t dof) {
    std::int64_t cells = dof;
    for (int d = 0; d < dims; ++d) cells *= nx;
    if (cells > max_ordinal) {
      throw bad_spec("grid of " + std::to_string(cells) +
                     " vertices overflows the 32-bit vertex ordinal");
    }
  };

  graph::CrsMatrix m;
  if (spec.rfind("gen:", 0) == 0) {
    const std::string kind = field(1);
    if (kind == "laplace3d" || kind == "laplace2d" || kind == "elasticity") {
      const ordinal_t nx = parse_ordinal(field(2), "grid size");
      if (nx < 2) throw bad_spec("needs a grid size >= 2, e.g. gen:laplace2d:100");
      check_grid_cells(nx, kind == "laplace2d" ? 2 : 3, kind == "elasticity" ? 3 : 1);
      m = kind == "laplace3d"   ? graph::laplace3d(nx, nx, nx)
          : kind == "laplace2d" ? graph::laplace2d(nx, nx)
                                : graph::elasticity3d(nx, nx, nx);
    } else if (kind == "rgg") {
      const ordinal_t n = parse_ordinal(field(2), "N");
      const double deg = parse_double(field(3), "DEG");
      if (n < 1 || deg <= 0) throw bad_spec("needs N and DEG, e.g. gen:rgg:100000:14");
      return graph::random_geometric_3d(n, deg, 1);
    } else if (kind == "powerlaw") {
      const ordinal_t n = parse_ordinal(field(2), "N");
      const double exp = field(3).empty() ? 2.2 : parse_double(field(3), "EXP");
      if (n < 1 || exp <= 1) throw bad_spec("needs N [EXP>1], e.g. gen:powerlaw:100000:2.2");
      return graph::power_law_graph(n, exp, 4, std::max<ordinal_t>(64, n / 60), 42);
    } else {
      throw bad_spec("unknown generator");
    }
  } else if (spec.rfind("reg:", 0) == 0) {
    m = graph::find_matrix(spec.substr(4)).build(scale);
  } else {
    m = graph::read_matrix_market(spec);
  }
  graph::CrsGraph g = graph::remove_self_loops(graph::symmetrize(graph::GraphView(m)));
  // Boundary validation, unconditional: whatever the source, a graph
  // handed to the drivers satisfies the kernel preconditions.
  if (const check::Result res = check::validate(
          graph::GraphView(g), {.require_loop_free = true, .require_symmetric = true});
      !res) {
    throw std::runtime_error("graph spec '" + spec + "': " + res.diagnostic());
  }
  return g;
}

}  // namespace parmis::examples
