#pragma once
/// \file graph_inputs.hpp
/// \brief Shared graph-spec loader for the example binaries.
///
/// Spec syntax (the same across parmis_tool and graph_partition):
///   path/to/matrix.mtx          any Matrix Market coordinate file
///   gen:laplace3d:NX            NX^3 7-point grid
///   gen:laplace2d:NX            NX^2 5-point grid
///   gen:elasticity:NX           NX^3 27-point, 3 dof
///   gen:rgg:N:DEG               3D random geometric graph
///   gen:powerlaw:N[:EXP]        power-law degrees, exponent EXP (default 2.2)
///   reg:NAME                    a Table II surrogate (e.g. reg:Serena)
///
/// Every input is symmetrized and stripped of self loops, so general
/// matrices are accepted.

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"
#include "graph/rgg.hpp"

namespace parmis::examples {

/// Comma-separated argument lists (--algos=a,b / --solvers=s,... / ...),
/// shared by the batch drivers. Empty fields are dropped.
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Build the adjacency described by `spec`; `scale` applies to registry
/// surrogates only (fraction of the paper |V|). Throws std::runtime_error
/// on a malformed spec, unknown generator/registry name, or unreadable
/// file, so batch drivers can report the spec and keep going.
inline graph::CrsGraph load_graph(const std::string& spec, double scale = 1.0) {
  // idx-th colon-separated field; empty when the spec has too few fields.
  auto field = [&](std::size_t idx) -> std::string {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < idx; ++i) {
      pos = spec.find(':', pos);
      if (pos == std::string::npos) return "";
      ++pos;
    }
    const std::size_t end = spec.find(':', pos);
    return spec.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
  };
  auto bad_spec = [&](const char* why) {
    return std::runtime_error("bad graph spec '" + spec + "': " + why);
  };

  graph::CrsMatrix m;
  if (spec.rfind("gen:", 0) == 0) {
    const std::string kind = field(1);
    if (kind == "laplace3d" || kind == "laplace2d" || kind == "elasticity") {
      const ordinal_t nx = std::atoi(field(2).c_str());
      if (nx < 2) throw bad_spec("needs a grid size >= 2, e.g. gen:laplace2d:100");
      m = kind == "laplace3d"   ? graph::laplace3d(nx, nx, nx)
          : kind == "laplace2d" ? graph::laplace2d(nx, nx)
                                : graph::elasticity3d(nx, nx, nx);
    } else if (kind == "rgg") {
      const ordinal_t n = std::atoi(field(2).c_str());
      const double deg = std::atof(field(3).c_str());
      if (n < 1 || deg <= 0) throw bad_spec("needs N and DEG, e.g. gen:rgg:100000:14");
      return graph::random_geometric_3d(n, deg, 1);
    } else if (kind == "powerlaw") {
      const ordinal_t n = std::atoi(field(2).c_str());
      const double exp = field(3).empty() ? 2.2 : std::atof(field(3).c_str());
      if (n < 1 || exp <= 1) throw bad_spec("needs N [EXP>1], e.g. gen:powerlaw:100000:2.2");
      return graph::power_law_graph(n, exp, 4, std::max<ordinal_t>(64, n / 60), 42);
    } else {
      throw bad_spec("unknown generator");
    }
  } else if (spec.rfind("reg:", 0) == 0) {
    m = graph::find_matrix(spec.substr(4)).build(scale);
  } else {
    m = graph::read_matrix_market(spec);
  }
  return graph::remove_self_loops(graph::symmetrize(graph::GraphView(m)));
}

}  // namespace parmis::examples
