/// \file linear_solve.cpp
/// \brief Batch linear-solve driver over the solver-stack registries: run
/// any set of registered solvers × preconditioners (× coarseners, for the
/// entries that coarsen) over any set of graphs and print a convergence
/// comparison table — the solver-side mirror of `graph_partition`.
///
/// Each graph spec is turned into an SPD system A = Laplacian(G) + I and
/// solved from x = 0 with b deterministic, so runs are comparable across
/// machines. One `SolveHandle` per (preconditioner, coarsener) row group:
/// the preconditioner is set up once and every solver reuses it, which is
/// exactly the handle workflow a service uses.
///
/// Usage:
///   linear_solve [--solvers=s,...|all] [--precs=p,...|all]
///                [--coarseners=c,...] [--graphs=SPEC,...] [--scale=F]
///                [--tol=T] [--maxit=N] [--rebuilds=N] [--batch=K] [--json]
///                [--fallback=CHAIN] [--timeout-ms=F] [--stagnation-window=N]
///                [--fault=SPEC[@N],...] [--trace=FILE] [--trace-sample=N]
///                [--list]
///
/// `--batch=K` solves K right-hand sides per row in one
/// `SolveHandle::solve_batch` call (rhs seeds 1..K, so column 0 is the
/// unbatched run's system): one table row (or `--json` Report) per RHS
/// carrying that column's taxonomy status and digest, plus an aggregate
/// row with the batch wall clock and converged count. Pair with
/// `--solvers=block-cg` to exercise the fused SpMM cores; the per-column
/// results are bit-identical to `--solvers=cg` one RHS at a time.
///
/// Resilience flags: `--fallback=amg+cg,jacobi+cg,none+gmres` declares a
/// fallback chain on every row's handle (replacing that row's
/// solver/preconditioner selection — narrow --solvers/--precs to one entry
/// when chaining) and skips the up-front setup so the chain owns setup
/// failures too. `--timeout-ms` bounds each solve's wall clock;
/// `--stagnation-window` arms the no-progress guard. `--fault` arms
/// deterministic fault points (check builds only; see
/// resilience/fault.hpp), e.g. `--fault=cg.pap@3` breaks the third CG
/// iteration. Every row reports its taxonomy `status`; `--json` rows add
/// the per-attempt chain record.
///
/// `--json` rows are `obs::Report` objects carrying the multilevel
/// hierarchy telemetry for the "amg" preconditioner (levels,
/// operator/grid complexity — the exact keys bench/hierarchy_ablation
/// emits, one schema everywhere). `--rebuilds=N` additionally exercises N
/// warm value-only rebuilds of the AMG hierarchy (the time-stepping
/// workflow: fixed structure, new values) and reports the mean rebuild
/// time per row. `--trace=FILE` records obs spans for the whole batch and
/// writes a Chrome trace-event JSON (chrome://tracing / Perfetto);
/// per-chunk spans are sampled every N chunked loops (`--trace-sample`,
/// default 1 = every loop).
///
/// Graph SPECs are shared with parmis_tool / graph_partition
/// (see graph_inputs.hpp):
///   file.mtx | gen:laplace2d:NX | gen:laplace3d:NX | gen:elasticity:NX |
///   gen:rgg:N:DEG | gen:powerlaw:N[:EXP] | reg:NAME | reg:table2
///
/// Examples:
///   linear_solve --list
///   linear_solve --solvers=cg,gmres --precs=jacobi,cluster-gs,amg
///   linear_solve --precs=amg --coarseners=mis2,hem --graphs=gen:laplace3d:30 --json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "check/digest.hpp"
#include "core/coarsener.hpp"
#include "graph/generators.hpp"
#include "graph_inputs.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "resilience/fault.hpp"
#include "resilience/status.hpp"
#include "solver/amg.hpp"
#include "solver/handle.hpp"
#include "solver/multivector.hpp"
#include "solver/vector_ops.hpp"

namespace {

using namespace parmis;
using examples::split_csv;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--solvers=s,...|all] [--precs=p,...|all] [--coarseners=c,...]\n"
               "          [--graphs=SPEC,...] [--scale=F] [--tol=T] [--maxit=N] "
               "[--rebuilds=N] [--batch=K] [--json] [--digest]\n"
               "          [--fallback=PREC+SOLVER,...] [--timeout-ms=F] "
               "[--stagnation-window=N] [--fault=NAME[@N],...]\n"
               "          [--trace=FILE] [--trace-sample=N] [--list]\n"
               "  SPEC: file.mtx | gen:laplace2d:NX | gen:laplace3d:NX | gen:elasticity:NX |\n"
               "        gen:rgg:N:DEG | gen:powerlaw:N[:EXP] | reg:NAME | reg:table2\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> solvers;
  std::vector<std::string> precs;
  std::vector<std::string> coarseners;
  std::vector<std::string> graphs;
  double scale = 0.05;
  double tol = 1e-8;
  int maxit = 1000;
  int rebuilds = 0;
  int batch = 1;
  bool json = false;
  // --digest: print check::digest_hex of each solution vector — one word a
  // user can diff across machines/backends ("same digest = same bits").
  bool digest = false;
  std::string trace_path;
  int trace_sample = 1;
  std::string fallback_spec;
  double timeout_ms = 0;
  int stagnation_window = 0;
  std::string fault_spec;

  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--solvers=", 10)) {
      const std::string v = s + 10;
      solvers = v == "all" ? solver::solver_names() : split_csv(v);
    } else if (!std::strncmp(s, "--precs=", 8)) {
      const std::string v = s + 8;
      precs = v == "all" ? solver::preconditioner_names() : split_csv(v);
    } else if (!std::strncmp(s, "--coarseners=", 13)) {
      const std::string v = s + 13;
      coarseners = v == "all" ? core::coarsener_names() : split_csv(v);
    } else if (!std::strncmp(s, "--graphs=", 9)) {
      graphs = split_csv(s + 9);
    } else if (!std::strncmp(s, "--scale=", 8)) {
      scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--tol=", 6)) {
      tol = std::atof(s + 6);
    } else if (!std::strncmp(s, "--maxit=", 8)) {
      maxit = std::atoi(s + 8);
    } else if (!std::strncmp(s, "--rebuilds=", 11)) {
      rebuilds = std::atoi(s + 11);
    } else if (!std::strncmp(s, "--batch=", 8)) {
      batch = std::atoi(s + 8);
    } else if (!std::strcmp(s, "--json")) {
      json = true;
    } else if (!std::strcmp(s, "--digest")) {
      digest = true;
    } else if (!std::strncmp(s, "--fallback=", 11)) {
      fallback_spec = s + 11;
    } else if (!std::strncmp(s, "--timeout-ms=", 13)) {
      timeout_ms = std::atof(s + 13);
    } else if (!std::strncmp(s, "--stagnation-window=", 20)) {
      stagnation_window = std::atoi(s + 20);
    } else if (!std::strncmp(s, "--fault=", 8)) {
      fault_spec = s + 8;
    } else if (!std::strncmp(s, "--trace=", 8)) {
      trace_path = s + 8;
    } else if (!std::strncmp(s, "--trace-sample=", 15)) {
      trace_sample = std::atoi(s + 15);
    } else if (!std::strcmp(s, "--list")) {
      std::printf("registered solvers:\n");
      for (const solver::SolverSpec& spec : solver::solver_registry()) {
        std::printf("  %-12s %s\n", spec.name.c_str(), spec.description.c_str());
      }
      std::printf("registered preconditioners:\n");
      for (const solver::PreconditionerSpec& spec : solver::preconditioner_registry()) {
        std::printf("  %-12s %s\n", spec.name.c_str(), spec.description.c_str());
      }
      std::printf("registered coarseners (for --precs=cluster-gs,amg):\n");
      for (const core::CoarsenerSpec& spec : core::coarsener_registry()) {
        std::printf("  %-12s %s\n", spec.name.c_str(), spec.description.c_str());
      }
      return 0;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (solvers.empty()) solvers = solver::solver_names();
  if (precs.empty()) precs = solver::preconditioner_names();
  if (coarseners.empty()) coarseners = {"mis2"};
  if (graphs.empty()) graphs = {"gen:laplace3d:20"};
  if (tol <= 0 || maxit < 1) {
    std::fprintf(stderr, "--tol must be positive and --maxit >= 1\n");
    return 1;
  }
  if (batch < 1) {
    std::fprintf(stderr, "--batch must be >= 1\n");
    return 1;
  }

  // Fail fast on unknown registry names before loading any graph.
  try {
    for (const std::string& name : solvers) (void)solver::find_solver(name);
    for (const std::string& name : precs) (void)solver::find_preconditioner(name);
    for (const std::string& name : coarseners) (void)core::find_coarsener(name);
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "%s (try --list)\n", e.what());
    return 1;
  }

  // Fault points: armed from --fault and/or the PARMIS_FAULTS environment
  // variable. In release builds every PARMIS_FAULT_POINT is compiled out,
  // so arming would silently do nothing — say so instead.
  resilience::arm_faults_from_env();
  if (!fault_spec.empty()) {
    if (!PARMIS_FAULT_ENABLED) {
      std::fprintf(stderr,
                   "--fault ignored: fault points are compiled out in this build "
                   "(configure with -DPARMIS_CHECK_INVARIANTS=ON)\n");
    }
    try {
      resilience::arm_faults_spec(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --fault spec: %s\n", e.what());
      return 1;
    }
  }
  // Validate the fallback chain once up front (it is applied per handle).
  if (!fallback_spec.empty()) {
    try {
      solver::SolveHandle probe;
      probe.set_fallback(fallback_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --fallback chain: %s (try --list)\n", e.what());
      return 1;
    }
  }

  solver::IterOptions opts;
  opts.tolerance = tol;
  opts.max_iterations = maxit;
  opts.timeout_ms = timeout_ms;
  opts.stagnation_window = stagnation_window;

  // Tracing covers the whole batch; per-chunk spans record on the worker
  // threads (so the trace shows every tid), decimated by --trace-sample.
  if (!trace_path.empty()) obs::set_tracing(true, trace_sample);

  bool any_failed = false;
  for (const std::string& spec : graphs) {
    graph::CrsGraph g;
    try {
      g = examples::load_graph(spec, scale);
    } catch (const std::exception& e) {
      // Report and keep going: a typo in one spec must not throw away the
      // rest of a long batch.
      std::fprintf(stderr, "cannot load '%s': %s\n", spec.c_str(), e.what());
      any_failed = true;
      continue;
    }
    // A = Laplacian(G) + I: SPD with unit-bounded smallest eigenvalue, so
    // the same stack configuration behaves comparably across inputs. The
    // driver.singular_matrix fault drops the +I shift, leaving the graph
    // Laplacian's constant null space in place (Krylov stagnates, Jacobi
    // setup sees zero diagonals on isolated vertices, the AMG coarse block
    // is singular — the whole setup-failure surface from one switch).
    const scalar_t diag_shift = PARMIS_FAULT_POINT("driver.singular_matrix") ? 0.0 : 1.0;
    const graph::CrsMatrix a = graph::laplacian_matrix(g, diag_shift);
    std::vector<scalar_t> b = solver::random_vector(a.num_rows, 1);
    // driver.poison_b: the NonFiniteInput path — rejected by SolveHandle
    // before any attempt runs.
    if (PARMIS_FAULT_POINT("driver.poison_b")) {
      b[0] = std::numeric_limits<scalar_t>::quiet_NaN();
    }

    if (!json) {
      std::printf("\n%s: %d unknowns, %lld entries, tol=%.1e\n", spec.c_str(), a.num_rows,
                  static_cast<long long>(a.num_entries()), tol);
      std::printf("  %-10s %-12s %-11s %6s %10s %9s %9s\n", "solver", "prec", "coarsener",
                  "iters", "relres", "setup(s)", "solve(s)");
    }
    for (const std::string& pname : precs) {
      // Only the coarsening preconditioners fan out over --coarseners.
      const std::vector<std::string> row_coarseners =
          solver::find_preconditioner(pname).uses_coarsener ? coarseners
                                                            : std::vector<std::string>{"-"};
      for (const std::string& cname : row_coarseners) {
        // One handle per row group: the preconditioner sets up once and is
        // shared by every solver below.
        solver::SolveHandle handle;
        handle.set_preconditioner(pname);
        if (cname != "-") {
          handle.prec_options().coarsener = cname;
          handle.prec_options().amg.coarsener = cname;
        }
        if (!fallback_spec.empty()) handle.set_fallback(fallback_spec);
        Timer setup_timer;
        if (fallback_spec.empty()) {
          // Eager setup separates setup cost from solve cost in the table.
          // With a fallback chain the chain owns setup (and its failures):
          // a setup throw becomes a classified attempt, not a dropped row.
          try {
            handle.setup(a);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "setup %s/%s on '%s': %s\n", pname.c_str(), cname.c_str(),
                         spec.c_str(), e.what());
            any_failed = true;
            continue;
          }
        }
        const double setup_s = setup_timer.seconds();

        // Warm-rebuild smoke (--rebuilds=N): the time-stepping workflow.
        // A fixed-structure hierarchy is rebuilt with perturbed values N
        // times; the multilevel handle replays the Galerkin products
        // value-only (zero allocations inside the handle).
        double rebuild_s = 0;
        if (rebuilds > 0 && pname == "amg") {
          // prec_options().amg already carries the row's coarsener.
          solver::AmgHierarchy hierarchy =
              solver::AmgHierarchy::build(a, handle.prec_options().amg);
          graph::CrsMatrix a2 = a;
          for (scalar_t& v : a2.values) v *= 1.01;
          Timer rebuild_timer;
          for (int i = 0; i < rebuilds; ++i) hierarchy.rebuild(a2);
          rebuild_s = rebuild_timer.seconds() / rebuilds;
        }

        for (const std::string& sname : solvers) {
          handle.set_solver(sname);
          if (batch > 1) {
            // Batched path: K systems in one solve_batch call. Column c's
            // rhs is random_vector(n, 1 + c), so column 0 is the unbatched
            // run's system and the two paths are digest-comparable.
            const std::size_t un = static_cast<std::size_t>(a.num_rows);
            const std::size_t uk = static_cast<std::size_t>(batch);
            std::vector<scalar_t> bmv(un * uk);
            std::vector<scalar_t> xmv(un * uk, 0);
            std::vector<scalar_t> col(un);
            for (int c = 0; c < batch; ++c) {
              solver::random_fill(col, static_cast<std::uint64_t>(1 + c));
              solver::scatter_column(col, a.num_rows, batch, c, bmv);
            }
            Timer solve_timer;
            const solver::BatchResult& br = handle.solve_batch(a, bmv, xmv, batch, opts);
            const double batch_s = solve_timer.seconds();
            int converged_cols = 0;
            for (int c = 0; c < batch; ++c) {
              const solver::IterResult& r = br.results[static_cast<std::size_t>(c)];
              if (r.converged) {
                ++converged_cols;
              } else {
                any_failed = true;
              }
              std::string xdigest;
              if (digest) {
                solver::gather_column(xmv, a.num_rows, batch, c, col);
                xdigest = check::digest_hex(check::digest(col));
              }
              if (json) {
                obs::Report report;
                obs::add_graph(report, spec, a.num_rows, a.num_entries());
                report.set("solver", sname);
                report.set("prec", pname);
                report.set("coarsener", cname);
                report.set("batch", batch);
                report.set("batch_index", c);
                obs::add_iter_result(report, r);
                report.set("setup_seconds", setup_s);
                report.set("batch_seconds", batch_s);
                if (digest) report.set("solution_digest", xdigest);
                std::printf("%s\n", report.to_json().c_str());
              } else {
                std::string tag;
                if (!r.converged) {
                  tag = std::string("  (") + resilience::to_string(r.status) + ")";
                }
                const std::string label = sname + '[' + std::to_string(c) + ']';
                std::printf("  %-10s %-12s %-11s %6d %10.2e %9.4f %9.4f%s%s%s\n",
                            label.c_str(), pname.c_str(), cname.c_str(), r.iterations,
                            r.relative_residual, setup_s, batch_s, digest ? "  " : "",
                            xdigest.c_str(), tag.c_str());
              }
            }
            // Aggregate row: the batch as one unit of work.
            if (json) {
              obs::Report report;
              obs::add_graph(report, spec, a.num_rows, a.num_entries());
              report.set("solver", sname);
              report.set("prec", pname);
              report.set("coarsener", cname);
              report.set("batch", batch);
              report.set("aggregate", true);
              report.set("converged_columns", converged_cols);
              report.set("setup_seconds", setup_s);
              report.set("batch_seconds", batch_s);
              report.set("solves_per_second",
                         batch_s > 0 ? static_cast<double>(batch) / batch_s : 0.0);
              std::printf("%s\n", report.to_json().c_str());
            } else {
              std::printf("  %-10s %-12s %-11s batch=%d: %d/%d converged, %.4fs"
                          " (%.1f solves/s)\n",
                          sname.c_str(), pname.c_str(), cname.c_str(), batch, converged_cols,
                          batch, batch_s,
                          batch_s > 0 ? static_cast<double>(batch) / batch_s : 0.0);
            }
            continue;
          }
          std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
          Timer solve_timer;
          const solver::IterResult& r = handle.solve(a, b, x, opts);
          const double solve_s = solve_timer.seconds();
          if (!r.converged) any_failed = true;
          const std::string xdigest =
              digest ? check::digest_hex(check::digest(x)) : std::string{};
          if (json) {
            // --json keeps stdout pure JSON-lines so the output pipes
            // straight into jq. Rows are obs::Report objects — the same
            // telemetry adapters (and so the same keys) the benches use.
            obs::Report report;
            obs::add_graph(report, spec, a.num_rows, a.num_entries());
            report.set("solver", sname);
            report.set("prec", pname);
            report.set("coarsener", cname);
            obs::add_iter_result(report, r);
            report.set("setup_seconds", setup_s);
            report.set("solve_seconds", solve_s);
            if (const auto* amg =
                    dynamic_cast<const solver::AmgHierarchy*>(handle.preconditioner())) {
              obs::add_hierarchy(report, amg->hierarchy_stats());
            }
            if (rebuilds > 0 && pname == "amg") {
              report.set("warm_rebuild_seconds", rebuild_s);
            }
            if (digest) report.set("solution_digest", xdigest);
            obs::add_spgemm_counters(report);
            std::printf("%s\n", report.to_json().c_str());
          } else {
            // Failed rows name their taxonomy status; chained rows append
            // the attempt sequence so recovery is visible in the table.
            std::string tag;
            if (!r.converged) {
              tag = std::string("  (") + resilience::to_string(r.status) + ")";
            }
            if (r.attempts.size() > 1) {
              tag += "  [";
              for (std::size_t ai = 0; ai < r.attempts.size(); ++ai) {
                if (ai) tag += " -> ";
                tag += r.attempts[ai].prec + '+' + r.attempts[ai].solver + ':' +
                       resilience::to_string(r.attempts[ai].status);
              }
              tag += ']';
            }
            std::printf("  %-10s %-12s %-11s %6d %10.2e %9.4f %9.4f%s%s%s\n", sname.c_str(),
                        pname.c_str(), cname.c_str(), r.iterations, r.relative_residual,
                        setup_s, solve_s, digest ? "  " : "", xdigest.c_str(), tag.c_str());
          }
        }
      }
    }
  }

  if (!trace_path.empty()) {
    obs::set_tracing(false);
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "cannot write trace file '%s'\n", trace_path.c_str());
      any_failed = true;
    } else if (!json) {
      std::printf("\ntrace: %llu events -> %s (load in chrome://tracing or Perfetto)\n",
                  static_cast<unsigned long long>(obs::total_events()), trace_path.c_str());
    }
  }
  return any_failed ? 1 : 0;
}
