/// \file parmis_tool.cpp
/// \brief Command-line front end: run the library's algorithms on a Matrix
/// Market file or a generated problem.
///
/// Usage:
///   parmis_tool <input> <command> [k]
///
/// input:
///   path/to/matrix.mtx          any Matrix Market coordinate file
///   gen:laplace3d:NX            NX^3 7-point grid
///   gen:laplace2d:NX            NX^2 5-point grid
///   gen:elasticity:NX           NX^3 27-point, 3 dof
///   gen:rgg:N:DEG               3D random geometric graph
///   reg:NAME                    a Table II surrogate (e.g. reg:Serena)
///
/// command: stats | mis2 | aggregate | color-d1 | color-d2 | partition K
///
/// The input matrix is symmetrized and stripped of self loops before any
/// graph algorithm runs, so general matrices are accepted.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/timer.hpp"
#include "coloring/d1_coloring.hpp"
#include "coloring/d2_coloring.hpp"
#include "coloring/verify.hpp"
#include "core/aggregation.hpp"
#include "core/mis2.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"
#include "graph/rgg.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace parmis;

graph::CrsGraph load_graph(const std::string& spec) {
  auto field = [&](std::size_t idx) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < idx; ++i) pos = spec.find(':', pos) + 1;
    const std::size_t end = spec.find(':', pos);
    return spec.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
  };

  graph::CrsMatrix m;
  if (spec.rfind("gen:", 0) == 0) {
    const std::string kind = field(1);
    if (kind == "laplace3d") {
      const ordinal_t nx = std::atoi(field(2).c_str());
      m = graph::laplace3d(nx, nx, nx);
    } else if (kind == "laplace2d") {
      const ordinal_t nx = std::atoi(field(2).c_str());
      m = graph::laplace2d(nx, nx);
    } else if (kind == "elasticity") {
      const ordinal_t nx = std::atoi(field(2).c_str());
      m = graph::elasticity3d(nx, nx, nx);
    } else if (kind == "rgg") {
      const ordinal_t n = std::atoi(field(2).c_str());
      const double deg = std::atof(field(3).c_str());
      return graph::random_geometric_3d(n, deg, 1);
    } else {
      std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
      std::exit(1);
    }
  } else if (spec.rfind("reg:", 0) == 0) {
    m = graph::find_matrix(spec.substr(4)).build(1.0);
  } else {
    m = graph::read_matrix_market(spec);
  }
  return graph::remove_self_loops(graph::symmetrize(graph::GraphView(m)));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <input> <stats|mis2|aggregate|color-d1|color-d2|partition K>\n"
                 "  input: file.mtx | gen:laplace3d:NX | gen:laplace2d:NX |\n"
                 "         gen:elasticity:NX | gen:rgg:N:DEG | reg:NAME\n",
                 argv[0]);
    return 1;
  }
  const graph::CrsGraph g = load_graph(argv[1]);
  const std::string cmd = argv[2];

  const graph::DegreeStats stats = graph::degree_stats(g);
  std::printf("graph: %d vertices, %lld edges, degree min/avg/max = %d/%.2f/%d\n", g.num_rows,
              static_cast<long long>(g.num_entries() / 2), stats.min_degree, stats.avg_degree,
              stats.max_degree);
  if (cmd == "stats") return 0;

  Timer timer;
  if (cmd == "mis2") {
    const core::Mis2Result r = core::mis2(g);
    std::printf("MIS-2: %d vertices, %d iterations, %.3f s, valid=%s\n", r.set_size(),
                r.iterations, timer.seconds(), core::verify_mis2(g, r.in_set) ? "yes" : "NO");
  } else if (cmd == "aggregate") {
    const core::Aggregation agg = core::aggregate_mis2(g);
    const core::AggregationStats s = core::aggregation_stats(agg);
    std::printf("aggregation: %d aggregates (%.1fx), sizes %d..%d avg %.1f, %.3f s, valid=%s\n",
                s.num_aggregates, static_cast<double>(g.num_rows) / s.num_aggregates,
                s.min_size, s.max_size, s.avg_size, timer.seconds(),
                core::verify_aggregation(g, agg) ? "yes" : "NO");
  } else if (cmd == "color-d1") {
    const coloring::Coloring c = coloring::parallel_d1_coloring(g);
    std::printf("distance-1 coloring: %d colors, %d rounds, %.3f s, valid=%s\n", c.num_colors,
                c.rounds, timer.seconds(), coloring::verify_d1_coloring(g, c) ? "yes" : "NO");
  } else if (cmd == "color-d2") {
    const coloring::Coloring c = coloring::parallel_d2_coloring(g);
    std::printf("distance-2 coloring: %d colors, %d rounds, %.3f s, valid=%s\n", c.num_colors,
                c.rounds, timer.seconds(), coloring::verify_d2_coloring(g, c) ? "yes" : "NO");
  } else if (cmd == "partition") {
    const ordinal_t k = argc > 3 ? static_cast<ordinal_t>(std::atoi(argv[3])) : 8;
    const partition::Partition p = partition::partition_graph(g, k);
    std::printf("partition k=%d: edge cut %lld (%.2f%% of edges), imbalance %.2f%%, %.3f s\n", k,
                static_cast<long long>(p.edge_cut),
                100.0 * static_cast<double>(p.edge_cut) / std::max<std::int64_t>(1, g.num_entries() / 2),
                100.0 * p.imbalance, timer.seconds());
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
  }
  return 0;
}
