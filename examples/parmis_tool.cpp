/// \file parmis_tool.cpp
/// \brief Command-line front end: run the library's algorithms on a Matrix
/// Market file or a generated problem.
///
/// Usage:
///   parmis_tool [--trace=FILE] [--trace-sample=N] [--digest] <input> <command> [k]
///
/// input:
///   path/to/matrix.mtx          any Matrix Market coordinate file
///   gen:laplace3d:NX            NX^3 7-point grid
///   gen:laplace2d:NX            NX^2 5-point grid
///   gen:elasticity:NX           NX^3 27-point, 3 dof
///   gen:rgg:N:DEG               3D random geometric graph
///   gen:powerlaw:N[:EXP]        power-law degrees, exponent EXP (default 2.2)
///   reg:NAME                    a Table II surrogate (e.g. reg:Serena)
///
/// command: stats | mis2 | aggregate | color-d1 | color-d2 | partition K [ALGO]
///
/// `partition` accepts any registered partitioner name (see
/// `graph_partition --list`); the default is multilevel-mis2.
///
/// The input matrix is symmetrized and stripped of self loops before any
/// graph algorithm runs, so general matrices are accepted.
///
/// `--trace=FILE` records obs spans for the run and writes a Chrome
/// trace-event file (chrome://tracing / Perfetto).
///
/// `--digest` appends a `digest: 0x...` line hashing the command's result
/// array (check::digest, FNV-1a) — one word to diff across machines and
/// backends when checking the bit-identity contract.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/digest.hpp"
#include "coloring/d1_coloring.hpp"
#include "coloring/d2_coloring.hpp"
#include "coloring/verify.hpp"
#include "core/aggregation.hpp"
#include "core/mis2.hpp"
#include "core/verify.hpp"
#include "graph_inputs.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "partition/interface.hpp"

namespace {

using namespace parmis;
using examples::load_graph;

}  // namespace

int main(int argc, char** argv) {
  // Leading options are consumed before the positional arguments.
  std::string trace_path;
  int trace_sample = 1;
  bool want_digest = false;
  int first = 1;
  for (; first < argc; ++first) {
    if (!std::strncmp(argv[first], "--trace=", 8)) {
      trace_path = argv[first] + 8;
    } else if (!std::strncmp(argv[first], "--trace-sample=", 15)) {
      trace_sample = std::atoi(argv[first] + 15);
    } else if (!std::strcmp(argv[first], "--digest")) {
      want_digest = true;
    } else {
      break;
    }
  }
  argv += first - 1;
  argc -= first - 1;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s [--trace=FILE] [--trace-sample=N] [--digest] <input> "
                 "<stats|mis2|aggregate|color-d1|color-d2|partition K [ALGO]>\n"
                 "  input: file.mtx | gen:laplace3d:NX | gen:laplace2d:NX |\n"
                 "         gen:elasticity:NX | gen:rgg:N:DEG | gen:powerlaw:N[:EXP] | reg:NAME\n",
                 argv[0]);
    return 1;
  }
  if (!trace_path.empty()) obs::set_tracing(true, trace_sample);
  graph::CrsGraph g;
  try {
    g = load_graph(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot load '%s': %s\n", argv[1], e.what());
    return 1;
  }
  const std::string cmd = argv[2];
  // `digest: 0x...` trailer for --digest; same digest = same bits.
  auto print_digest = [&](std::uint64_t h) {
    if (want_digest) std::printf("digest: %s\n", check::digest_hex(h).c_str());
  };

  const graph::DegreeStats stats = graph::degree_stats(g);
  std::printf("graph: %d vertices, %lld edges, degree min/avg/max = %d/%.2f/%d\n", g.num_rows,
              static_cast<long long>(g.num_entries() / 2), stats.min_degree, stats.avg_degree,
              stats.max_degree);
  if (cmd == "stats") {
    print_digest(check::digest(g));
    return 0;
  }

  Timer timer;
  if (cmd == "mis2") {
    const core::Mis2Result r = core::mis2(g);
    std::printf("MIS-2: %d vertices, %d iterations, %.3f s, valid=%s\n", r.set_size(),
                r.iterations, timer.seconds(), core::verify_mis2(g, r.in_set) ? "yes" : "NO");
    print_digest(check::digest(r.in_set));
  } else if (cmd == "aggregate") {
    const core::Aggregation agg = core::aggregate_mis2(g);
    const core::AggregationStats s = core::aggregation_stats(agg);
    std::printf("aggregation: %d aggregates (%.1fx), sizes %d..%d avg %.1f, %.3f s, valid=%s\n",
                s.num_aggregates, static_cast<double>(g.num_rows) / s.num_aggregates,
                s.min_size, s.max_size, s.avg_size, timer.seconds(),
                core::verify_aggregation(g, agg) ? "yes" : "NO");
    print_digest(check::digest(agg.labels));
  } else if (cmd == "color-d1") {
    const coloring::Coloring c = coloring::parallel_d1_coloring(g);
    std::printf("distance-1 coloring: %d colors, %d rounds, %.3f s, valid=%s\n", c.num_colors,
                c.rounds, timer.seconds(), coloring::verify_d1_coloring(g, c) ? "yes" : "NO");
    print_digest(check::digest(c.colors));
  } else if (cmd == "color-d2") {
    const coloring::Coloring c = coloring::parallel_d2_coloring(g);
    std::printf("distance-2 coloring: %d colors, %d rounds, %.3f s, valid=%s\n", c.num_colors,
                c.rounds, timer.seconds(), coloring::verify_d2_coloring(g, c) ? "yes" : "NO");
    print_digest(check::digest(c.colors));
  } else if (cmd == "partition") {
    const ordinal_t k = argc > 3 ? static_cast<ordinal_t>(std::atoi(argv[3])) : 8;
    if (k < 1) {
      std::fprintf(stderr, "partition: K must be a positive integer\n");
      return 1;
    }
    const std::string algo = argc > 4 ? argv[4] : "multilevel-mis2";
    std::unique_ptr<partition::Partitioner> p;
    try {
      p = partition::make_partitioner(algo);
    } catch (const std::out_of_range& e) {
      std::fprintf(stderr, "%s (see graph_partition --list)\n", e.what());
      return 1;
    }
    const partition::WeightedGraph wg = partition::WeightedGraph::unit(std::move(g));
    const partition::PartitionResult r = p->run(wg, k);
    std::printf("partition k=%d (%s): edge cut %lld (%.2f%% of edges), comm volume %lld,\n"
                "  boundary %.2f%%, imbalance %.2f%%, %.3f s\n",
                k, algo.c_str(), static_cast<long long>(r.quality.edge_cut),
                100.0 * r.quality.cut_fraction(), static_cast<long long>(r.quality.comm_volume),
                100.0 * r.quality.boundary_fraction, 100.0 * r.quality.imbalance, r.seconds);
    print_digest(check::digest(r.part));
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
  }

  if (!trace_path.empty()) {
    obs::set_tracing(false);
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "cannot write trace file '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace: %llu events -> %s (load in chrome://tracing or Perfetto)\n",
                static_cast<unsigned long long>(obs::total_events()), trace_path.c_str());
  }
  return 0;
}
