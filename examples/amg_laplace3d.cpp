/// \file amg_laplace3d.cpp
/// \brief The Table V scenario as an application: solve a 3D Poisson
/// problem with CG preconditioned by smoothed-aggregation AMG, using MIS-2
/// aggregation (Algorithm 3) for the hierarchy.
///
/// Run: ./amg_laplace3d [grid_side] [scheme]
///   scheme in {serial, serial-d2c, nb-d2c, mis2-basic, mis2-agg}

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "solver/amg.hpp"
#include "solver/cg.hpp"
#include "solver/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t side = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 40;
  solver::AggregationScheme scheme = solver::AggregationScheme::Mis2Agg;
  if (argc > 2) {
    const char* s = argv[2];
    if (!std::strcmp(s, "serial")) scheme = solver::AggregationScheme::SerialAgg;
    else if (!std::strcmp(s, "serial-d2c")) scheme = solver::AggregationScheme::SerialD2C;
    else if (!std::strcmp(s, "nb-d2c")) scheme = solver::AggregationScheme::NBD2C;
    else if (!std::strcmp(s, "mis2-basic")) scheme = solver::AggregationScheme::Mis2Basic;
    else if (!std::strcmp(s, "mis2-agg")) scheme = solver::AggregationScheme::Mis2Agg;
    else { std::fprintf(stderr, "unknown scheme %s\n", s); return 1; }
  }

  std::printf("Laplace3D %d^3 (%d unknowns), aggregation: %s\n", side, side * side * side,
              solver::to_string(scheme));

  graph::CrsMatrix a = graph::laplace3d(side, side, side);

  // Setup: build the AMG hierarchy (aggregation + prolongators + RAP).
  solver::AmgOptions amg_opts;
  amg_opts.scheme = scheme;
  const solver::AmgHierarchy amg = solver::AmgHierarchy::build(std::move(a), amg_opts);
  std::printf("hierarchy: %d levels, operator complexity %.2f\n", amg.num_levels(),
              amg.operator_complexity());
  for (int l = 0; l < amg.num_levels(); ++l) {
    std::printf("  level %d: %8d rows, %10lld entries\n", l, amg.level(l).a.num_rows,
                static_cast<long long>(amg.level(l).a.num_entries()));
  }
  std::printf("setup: %.3f s (aggregation %.3f s)\n", amg.setup_seconds(),
              amg.aggregation_seconds());

  // Solve to the paper's tolerance (1e-12) with 2-sweep Jacobi smoothing.
  const graph::CrsMatrix& a0 = amg.level(0).a;
  const std::vector<scalar_t> b = solver::random_vector(a0.num_rows, 42);
  std::vector<scalar_t> x(static_cast<std::size_t>(a0.num_rows), 0);
  solver::IterOptions cg_opts;
  cg_opts.tolerance = 1e-12;
  cg_opts.max_iterations = 500;

  Timer solve_timer;
  const solver::IterResult r = solver::cg(a0, b, x, cg_opts, &amg);
  std::printf("solve: %s in %d iterations, %.3f s (relative residual %.2e)\n",
              r.converged ? "converged" : "DID NOT CONVERGE", r.iterations,
              solve_timer.seconds(), r.relative_residual);
  return r.converged ? 0 : 1;
}
