/// \file amg_laplace3d.cpp
/// \brief The Table V scenario as an application: solve a 3D Poisson
/// problem with CG preconditioned by smoothed-aggregation AMG, using MIS-2
/// aggregation (Algorithm 3) for the hierarchy.
///
/// Run: ./amg_laplace3d [grid_side] [scheme]
///   scheme in {serial, serial-d2c, nb-d2c, mis2-basic, mis2-agg}
///   or any registered coarsener name ("mis2", "hem", ... — see
///   `linear_solve --list`), routed through `AmgOptions::coarsener`.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/timer.hpp"
#include "core/coarsener.hpp"
#include "graph/generators.hpp"
#include "solver/amg.hpp"
#include "solver/cg.hpp"
#include "solver/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t side = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 40;
  solver::AmgOptions amg_opts;
  std::string scheme_name = solver::to_string(amg_opts.scheme);
  if (argc > 2) {
    const char* s = argv[2];
    if (!std::strcmp(s, "serial")) amg_opts.scheme = solver::AggregationScheme::SerialAgg;
    else if (!std::strcmp(s, "serial-d2c")) amg_opts.scheme = solver::AggregationScheme::SerialD2C;
    else if (!std::strcmp(s, "nb-d2c")) amg_opts.scheme = solver::AggregationScheme::NBD2C;
    else if (!std::strcmp(s, "mis2-basic")) amg_opts.scheme = solver::AggregationScheme::Mis2Basic;
    else if (!std::strcmp(s, "mis2-agg")) amg_opts.scheme = solver::AggregationScheme::Mis2Agg;
    else {
      // Not a Table V scheme: try the core coarsener registry.
      try {
        (void)core::find_coarsener(s);
      } catch (const std::out_of_range&) {
        std::fprintf(stderr, "unknown scheme %s\n", s);
        return 1;
      }
      amg_opts.coarsener = s;
    }
    scheme_name = amg_opts.coarsener.empty() ? solver::to_string(amg_opts.scheme)
                                             : amg_opts.coarsener;
  }

  std::printf("Laplace3D %d^3 (%d unknowns), aggregation: %s\n", side, side * side * side,
              scheme_name.c_str());

  graph::CrsMatrix a = graph::laplace3d(side, side, side);

  // Setup: build the AMG hierarchy (aggregation + prolongators + RAP).
  const solver::AmgHierarchy amg = solver::AmgHierarchy::build(std::move(a), amg_opts);
  std::printf("hierarchy: %d levels, operator complexity %.2f\n", amg.num_levels(),
              amg.operator_complexity());
  for (int l = 0; l < amg.num_levels(); ++l) {
    std::printf("  level %d: %8d rows, %10lld entries\n", l, amg.level(l).a.num_rows,
                static_cast<long long>(amg.level(l).a.num_entries()));
  }
  std::printf("setup: %.3f s (aggregation %.3f s)\n", amg.setup_seconds(),
              amg.aggregation_seconds());

  // Solve to the paper's tolerance (1e-12) with 2-sweep Jacobi smoothing.
  const graph::CrsMatrix& a0 = amg.level(0).a;
  const std::vector<scalar_t> b = solver::random_vector(a0.num_rows, 42);
  std::vector<scalar_t> x(static_cast<std::size_t>(a0.num_rows), 0);
  solver::IterOptions cg_opts;
  cg_opts.tolerance = 1e-12;
  cg_opts.max_iterations = 500;

  Timer solve_timer;
  const solver::IterResult r = solver::cg(a0, b, x, cg_opts, &amg);
  std::printf("solve: %s in %d iterations, %.3f s (relative residual %.2e)\n",
              r.converged ? "converged" : "DID NOT CONVERGE", r.iterations,
              solve_timer.seconds(), r.relative_residual);
  return r.converged ? 0 : 1;
}
