/// \file parmis_serve.cpp
/// \brief The serving-runtime driver: build snapshots offline, inspect
/// them, and replay request streams against a `serve::Service`.
///
/// Subcommands (osrm-style extract/customize/route split):
///
///   parmis_serve build --graph=SPEC --snapshot=FILE [--scale=F]
///                      [--coarsener=NAME] [--no-hierarchy]
///     Load/generate a graph, form A = Laplacian(G) + I, build the Galerkin
///     hierarchy (unless --no-hierarchy), and save both to a versioned,
///     checksummed snapshot — the expensive setup, paid once, offline.
///
///   parmis_serve inspect --snapshot=FILE
///     Open (mmap + full validation) and print the section table. A
///     corrupted, truncated, or version-mismatched file is rejected here
///     with the located SnapshotError — exit 2.
///
///   parmis_serve replay --snapshot=FILE [--requests=N] [--threads=N]
///                       [--customize-at=K] [--value-scale=F] [--pool=N]
///                       [--solver=S] [--prec=P] [--fallback=CHAIN]
///                       [--tol=T] [--maxit=N] [--seed=N] [--batch=K] [--json]
///                       [--fault=NAME[@N],...]
///     Serve N requests across worker threads from a `HandlePool`.
///     `--batch=K` serves requests in K-wide multi-RHS waves through
///     `Service::solve_batch` (pair with `--solver=block-cg` for the fused
///     cores) and routes the customize swap through the async
///     `CustomizePipeline`; outcomes and the combined digest stay
///     bit-identical to the unbatched replay.
///     `--customize-at=K` publishes refreshed values (scaled by
///     `--value-scale`) once request K-1 is dispatched: requests >= K pin
///     the new epoch, so the replay's combined digest is bit-identical at
///     every thread count *including across the live swap* — run once with
///     --threads=1 and once with --threads=N and diff `combined_digest`.
///     `--json` emits one line per request (status, iterations, latency,
///     solution digest, `bottom_solve`, and the per-attempt `attempts`
///     array when a fallback chain ran) followed by a summary line with
///     p50/p99/mean latency, solves/sec, and pool telemetry.
///
/// Graph SPECs are shared with linear_solve / graph_partition
/// (see graph_inputs.hpp).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/digest.hpp"
#include "graph/generators.hpp"
#include "graph_inputs.hpp"
#include "multilevel/builder.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"
#include "resilience/fault.hpp"
#include "resilience/status.hpp"
#include "serve/replay.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "solver/amg.hpp"
#include "solver/handle.hpp"

namespace {

using namespace parmis;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s build   --graph=SPEC --snapshot=FILE [--scale=F] [--coarsener=NAME]\n"
      "                  [--no-hierarchy]\n"
      "       %s inspect --snapshot=FILE\n"
      "       %s replay  --snapshot=FILE [--requests=N] [--threads=N] [--customize-at=K]\n"
      "                  [--value-scale=F] [--pool=N] [--solver=S] [--prec=P]\n"
      "                  [--fallback=CHAIN] [--tol=T] [--maxit=N] [--seed=N] [--batch=K]\n"
      "                  [--json]\n"
      "                  [--fault=NAME[@N],...]\n"
      "  SPEC: file.mtx | gen:laplace2d:NX | gen:laplace3d:NX | gen:elasticity:NX |\n"
      "        gen:rgg:N:DEG | gen:powerlaw:N[:EXP] | reg:NAME\n",
      argv0, argv0, argv0);
}

/// The multilevel configuration `build` snapshots with — the same mapping
/// AMG setup uses, so a served hierarchy is exactly what `--prec=amg`
/// would have built online.
multilevel::Options hierarchy_options(const std::string& coarsener) {
  const solver::AmgOptions amg;  // serving defaults = AMG defaults
  multilevel::Options mo;
  mo.max_levels = amg.max_levels - 1;
  mo.min_coarse_size = amg.coarse_size;
  mo.rate_floor = amg.coarsening_rate_floor;
  mo.complexity_cap = amg.operator_complexity_cap;
  mo.prolongator_omega = amg.prolongator_omega;
  mo.mis2 = amg.mis2;
  mo.coarsener = coarsener.empty() ? "mis2" : coarsener;
  return mo;
}

int cmd_build(const std::string& graph_spec, const std::string& snapshot_path, double scale,
              const std::string& coarsener, bool with_hierarchy) {
  graph::CrsGraph g;
  try {
    g = examples::load_graph(graph_spec, scale);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot load '%s': %s\n", graph_spec.c_str(), e.what());
    return 1;
  }
  const graph::CrsMatrix a = graph::laplacian_matrix(g, 1.0);
  obs::Timer timer;
  multilevel::HierarchyHandle h;
  if (with_hierarchy) {
    const multilevel::Builder builder(hierarchy_options(coarsener));
    (void)builder.build_galerkin(a, h);
  }
  const double build_s = timer.seconds();
  timer.reset();
  try {
    serve::save_snapshot(snapshot_path, a, with_hierarchy ? &h : nullptr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot save snapshot: %s\n", e.what());
    return 1;
  }
  const double save_s = timer.seconds();
  const serve::SnapshotView view = serve::SnapshotView::open(snapshot_path);
  std::printf("snapshot %s: %llu bytes, %zu sections, matrix %d rows / %lld entries\n",
              snapshot_path.c_str(), static_cast<unsigned long long>(view.file_size()),
              view.sections().size(), a.num_rows, static_cast<long long>(a.num_entries()));
  if (with_hierarchy) {
    std::printf("hierarchy: %d levels (workspace %s), built in %.3fs\n",
                view.hierarchy_levels("hierarchy"),
                view.hierarchy_has_workspace("hierarchy") ? "kept" : "absent", build_s);
  }
  std::printf("values digest %s, saved in %.3fs\n",
              check::digest_hex(check::digest(a.values)).c_str(), save_s);
  return 0;
}

int cmd_inspect(const std::string& snapshot_path) {
  serve::SnapshotView view;
  try {
    view = serve::SnapshotView::open(snapshot_path);
  } catch (const serve::SnapshotError& e) {
    // The located rejection is the product here: file, section, and what
    // failed validation — never UB, never a half-mapped solver input.
    std::fprintf(stderr, "rejected: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot open '%s': %s\n", snapshot_path.c_str(), e.what());
    return 2;
  }
  std::printf("%s: %llu bytes, format v%u, %zu sections\n", snapshot_path.c_str(),
              static_cast<unsigned long long>(view.file_size()), serve::kSnapshotVersion,
              view.sections().size());
  std::printf("  %-28s %-8s %12s %12s  %s\n", "section", "kind", "offset", "bytes", "digest");
  for (const serve::SectionInfo& s : view.sections()) {
    const char* kind = "?";
    switch (static_cast<serve::SectionKind>(s.kind)) {
      case serve::SectionKind::Meta: kind = "meta"; break;
      case serve::SectionKind::OffsetArray: kind = "offset"; break;
      case serve::SectionKind::OrdinalArray: kind = "ordinal"; break;
      case serve::SectionKind::ScalarArray: kind = "scalar"; break;
    }
    std::printf("  %-28s %-8s %12llu %12llu  %s\n", s.name, kind,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size),
                check::digest_hex(s.digest).c_str());
  }
  if (view.contains("hierarchy")) {
    std::printf("hierarchy: %d levels, rebuild workspace %s\n",
                view.hierarchy_levels("hierarchy"),
                view.hierarchy_has_workspace("hierarchy") ? "kept" : "absent");
  }
  return 0;
}

void print_attempts_json(obs::Report& report, const std::vector<solver::AttemptInfo>& attempts) {
  if (attempts.size() <= 1) return;
  std::string out = "[";
  obs::Report row;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (i) out += ", ";
    row = obs::Report();
    row.set("solver", attempts[i].solver);
    row.set("prec", attempts[i].prec);
    row.set("status", std::string(resilience::to_string(attempts[i].status)));
    row.set("iterations", attempts[i].iterations);
    row.set("relative_residual", attempts[i].relative_residual);
    row.set("seconds", attempts[i].seconds);
    out += row.to_json();
  }
  out += ']';
  report.set_raw("attempts", std::move(out));
}

struct ReplayArgs {
  std::string snapshot_path;
  std::size_t requests = 32;
  int threads = 1;
  std::size_t customize_at = 0;
  double value_scale = 1.25;
  std::size_t pool_size = 4;
  std::string solver = "cg";
  std::string prec = "amg";
  std::string fallback;
  double tol = 1e-8;
  int maxit = 1000;
  std::uint64_t seed = 1;
  int batch = 1;
  bool json = false;
};

int cmd_replay(const ReplayArgs& args) {
  serve::Service::Options sopts;
  sopts.pool.solver = args.solver;
  sopts.pool.prec = args.prec;
  sopts.pool.fallback = args.fallback;
  sopts.pool.size = args.pool_size;
  sopts.iter.tolerance = args.tol;
  sopts.iter.max_iterations = args.maxit;

  serve::SnapshotView snap;
  try {
    snap = serve::SnapshotView::open(args.snapshot_path);
  } catch (const serve::SnapshotError& e) {
    std::fprintf(stderr, "rejected: %s\n", e.what());
    return 2;
  }
  serve::Service service = serve::Service::from_snapshot(sopts, snap);

  const std::uint64_t epoch0 = service.epoch();
  const std::vector<serve::ServeRequest> requests =
      serve::make_requests(args.requests, args.seed, epoch0, args.customize_at);
  serve::ReplayOptions ropts;
  ropts.threads = args.threads;
  ropts.customize_at = args.customize_at;
  ropts.value_scale = args.value_scale;
  ropts.batch = args.batch;

  serve::ReplayResult result;
  try {
    result = serve::replay(service, requests, ropts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay failed: %s\n", e.what());
    return 1;
  }
  const serve::ReplayStats& st = result.stats;
  const serve::PoolStats pstats = service.pool().stats();

  if (args.json) {
    for (const serve::RequestOutcome& o : result.outcomes) {
      obs::Report report;
      report.set("id", o.id);
      report.set("epoch", o.epoch);
      report.set("status", std::string(resilience::to_string(o.status)));
      report.set("converged", o.converged);
      report.set("iterations", o.iterations);
      report.set("relative_residual", o.relative_residual);
      report.set("seconds", o.seconds);
      report.set("solution_digest", check::digest_hex(o.solution_digest));
      if (o.bottom_solve[0] != '\0') report.set("bottom_solve", o.bottom_solve);
      print_attempts_json(report, o.attempts);
      std::printf("%s\n", report.to_json().c_str());
    }
    obs::Report summary;
    summary.set("summary", true);
    summary.set("threads", st.threads);
    summary.set("pool", static_cast<std::int64_t>(args.pool_size));
    summary.set("solver", args.solver);
    summary.set("prec", args.prec);
    summary.set("customize_at", static_cast<std::int64_t>(args.customize_at));
    summary.set("batch", args.batch);
    summary.set("final_epoch", st.final_epoch);
    summary.set("converged", st.converged);
    std::vector<double> lat(result.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) lat[i] = result.outcomes[i].seconds;
    obs::add_latency_stats(summary, lat, st.wall_seconds);
    summary.set("combined_digest", check::digest_hex(st.combined_digest));
    summary.set("pool_warm_hits", pstats.warm_hits);
    summary.set("pool_cache_hits", pstats.cache_hits);
    summary.set("pool_level_adoptions", pstats.level_adoptions);
    summary.set("pool_prec_builds", pstats.prec_builds);
    summary.set("pool_evictions", pstats.evictions);
    std::printf("%s\n", summary.to_json().c_str());
  } else {
    std::printf("%zu requests, %d threads, pool %zu: %llu converged, final epoch %llu\n",
                st.requests, st.threads, args.pool_size,
                static_cast<unsigned long long>(st.converged),
                static_cast<unsigned long long>(st.final_epoch));
    std::printf("latency p50 %.3f ms, p99 %.3f ms, mean %.3f ms; %.1f solves/sec (%.3fs wall)\n",
                st.p50_ms, st.p99_ms, st.mean_ms, st.solves_per_sec, st.wall_seconds);
    std::printf("pool: %llu warm hits, %llu cache hits, %llu level adoptions, %llu builds\n",
                static_cast<unsigned long long>(pstats.warm_hits),
                static_cast<unsigned long long>(pstats.cache_hits),
                static_cast<unsigned long long>(pstats.level_adoptions),
                static_cast<unsigned long long>(pstats.prec_builds));
    std::printf("combined digest %s\n", check::digest_hex(st.combined_digest).c_str());
  }
  return st.converged == st.requests ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  const std::string cmd = argv[1];

  std::string graph_spec;
  std::string snapshot_path;
  double scale = 0.05;
  std::string coarsener;
  bool with_hierarchy = true;
  std::string fault_spec;
  ReplayArgs rargs;

  for (int i = 2; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--graph=", 8)) {
      graph_spec = s + 8;
    } else if (!std::strncmp(s, "--snapshot=", 11)) {
      snapshot_path = s + 11;
      rargs.snapshot_path = snapshot_path;
    } else if (!std::strncmp(s, "--scale=", 8)) {
      scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--coarsener=", 12)) {
      coarsener = s + 12;
    } else if (!std::strcmp(s, "--no-hierarchy")) {
      with_hierarchy = false;
    } else if (!std::strncmp(s, "--requests=", 11)) {
      rargs.requests = static_cast<std::size_t>(std::atoll(s + 11));
    } else if (!std::strncmp(s, "--threads=", 10)) {
      rargs.threads = std::atoi(s + 10);
    } else if (!std::strncmp(s, "--customize-at=", 15)) {
      rargs.customize_at = static_cast<std::size_t>(std::atoll(s + 15));
    } else if (!std::strncmp(s, "--value-scale=", 14)) {
      rargs.value_scale = std::atof(s + 14);
    } else if (!std::strncmp(s, "--pool=", 7)) {
      rargs.pool_size = static_cast<std::size_t>(std::atoll(s + 7));
    } else if (!std::strncmp(s, "--solver=", 9)) {
      rargs.solver = s + 9;
    } else if (!std::strncmp(s, "--prec=", 7)) {
      rargs.prec = s + 7;
    } else if (!std::strncmp(s, "--fallback=", 11)) {
      rargs.fallback = s + 11;
    } else if (!std::strncmp(s, "--tol=", 6)) {
      rargs.tol = std::atof(s + 6);
    } else if (!std::strncmp(s, "--maxit=", 8)) {
      rargs.maxit = std::atoi(s + 8);
    } else if (!std::strncmp(s, "--seed=", 7)) {
      rargs.seed = static_cast<std::uint64_t>(std::atoll(s + 7));
    } else if (!std::strncmp(s, "--batch=", 8)) {
      rargs.batch = std::atoi(s + 8);
    } else if (!std::strcmp(s, "--json")) {
      rargs.json = true;
    } else if (!std::strncmp(s, "--fault=", 8)) {
      fault_spec = s + 8;
    } else {
      usage(argv[0]);
      return 1;
    }
  }

  resilience::arm_faults_from_env();
  if (!fault_spec.empty()) {
    if (!PARMIS_FAULT_ENABLED) {
      std::fprintf(stderr,
                   "--fault ignored: fault points are compiled out in this build "
                   "(configure with -DPARMIS_CHECK_INVARIANTS=ON)\n");
    }
    try {
      resilience::arm_faults_spec(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --fault spec: %s\n", e.what());
      return 1;
    }
  }
  if (!rargs.fallback.empty()) {
    try {
      solver::SolveHandle probe;
      probe.set_fallback(rargs.fallback);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --fallback chain: %s\n", e.what());
      return 1;
    }
  }
  if (snapshot_path.empty()) {
    std::fprintf(stderr, "--snapshot=FILE is required\n");
    return 1;
  }

  try {
    if (cmd == "build") {
      if (graph_spec.empty()) {
        std::fprintf(stderr, "build needs --graph=SPEC\n");
        return 1;
      }
      return cmd_build(graph_spec, snapshot_path, scale, coarsener, with_hierarchy);
    }
    if (cmd == "inspect") return cmd_inspect(snapshot_path);
    if (cmd == "replay") return cmd_replay(rargs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  usage(argv[0]);
  return 1;
}
