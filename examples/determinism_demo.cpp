/// \file determinism_demo.cpp
/// \brief Demonstrates the paper's headline property: Algorithm 1 returns
/// a bit-identical MIS-2 on every backend and thread count, and on every
/// repetition — here expressed through explicit execution contexts and a
/// reusable handle (one scratch allocation for the whole sweep).
///
/// Run: ./determinism_demo [n]

#include <cstdio>
#include <cstdlib>

#include "core/mis2.hpp"
#include "graph/rgg.hpp"
#include "parallel/context.hpp"
#include "random/hash.hpp"

namespace {

/// Order-sensitive checksum of the member list.
std::uint64_t checksum(const std::vector<parmis::ordinal_t>& members) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (parmis::ordinal_t v : members) {
    h = (h ^ static_cast<std::uint64_t>(v)) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parmis;
  const ordinal_t n = argc > 1 ? static_cast<ordinal_t>(std::atoi(argv[1])) : 100000;
  const graph::CrsGraph g = graph::random_geometric_3d(n, 16.0, 3);

  struct Config {
    const char* name;
    Context ctx;
  };
  const Config configs[] = {
      {"serial", Context::serial()},       {"openmp-1", Context::openmp(1)},
      {"openmp-2", Context::openmp(2)},    {"openmp-8", Context::openmp(8)},
      {"openmp-max", Context::openmp(0)},
  };

  std::printf("MIS-2 on RGG n=%d across execution contexts:\n", n);
  core::Mis2Handle handle;  // one handle: scratch is reused across the sweep
  std::uint64_t reference = 0;
  bool all_equal = true;
  for (const Config& c : configs) {
    handle.set_context(c.ctx);
    const Context::Validation v = c.ctx.validate();
    const core::Mis2Result& r = handle.run(g);
    const std::uint64_t sum = checksum(r.members);
    if (reference == 0) reference = sum;
    all_equal = all_equal && sum == reference;
    std::printf("  %-10s -> |MIS-2| = %6d, iterations = %2d, checksum = %016llx%s\n", c.name,
                r.set_size(), r.iterations, static_cast<unsigned long long>(sum),
                v.fell_back ? "  (fell back to Serial)" : "");
  }
  std::printf(all_equal ? "all contexts agree bit-for-bit\n" : "MISMATCH DETECTED (bug!)\n");
  return all_equal ? 0 : 1;
}
