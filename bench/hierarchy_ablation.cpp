/// \file hierarchy_ablation.cpp
/// \brief Multilevel-hierarchy ablation: cold-build vs warm-rebuild time
/// and per-level operator complexity for every registered coarsener on the
/// RGG and power-law generators, in Galerkin mode through the unified
/// `multilevel::Builder`.
///
/// The hierarchy-side companion of bench/solver_ablation: quantifies what
/// the coarsening scheme costs at setup time, what the operator-complexity
/// cap saves on skewed inputs (the AMG+HEM power-law blowup fix), and what
/// the reusable `SetupWorkspace` buys when a fixed-structure hierarchy is
/// rebuilt with new values (time-stepping): warm rebuilds replay the
/// Galerkin products value-only with zero heap allocations.
///
/// Emits one JSON object per (graph, coarsener) cell (stdout + `--out`,
/// default BENCH_hierarchy_ablation.json). Rows are `obs::Report` objects
/// built by `obs::add_hierarchy`, so the telemetry keys (levels,
/// operator/grid complexity, cold/warm build times) are exactly the ones
/// `linear_solve --json` and bench/solver_ablation report.
///
/// Usage: bench_hierarchy_ablation [--scale=F] [--trials=N] [--cap=C]
///                                 [--out=PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/coarsener.hpp"
#include "graph/generators.hpp"
#include "graph/rgg.hpp"
#include "multilevel/builder.hpp"
#include "obs/telemetry.hpp"

namespace parmis {
namespace {

struct Options {
  double scale = 0.25;
  int trials = 3;
  double cap = 10.0;
  std::string out = "BENCH_hierarchy_ablation.json";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--scale=", 8)) {
      o.scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--trials=", 9)) {
      o.trials = std::atoi(s + 9);
    } else if (!std::strncmp(s, "--cap=", 6)) {
      o.cap = std::atof(s + 6);
    } else if (!std::strncmp(s, "--out=", 6)) {
      o.out = s + 6;
    } else if (!std::strcmp(s, "--full")) {
      o.scale = 1.0;
    } else {
      std::fprintf(stderr, "usage: %s [--scale=F] [--trials=N] [--cap=C] [--out=PATH]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  return o;
}

}  // namespace
}  // namespace parmis

int main(int argc, char** argv) {
  using namespace parmis;
  const Options opt = parse(argc, argv);

  struct Input {
    std::string name;
    graph::CrsGraph g;
  };
  const ordinal_t n = std::max<ordinal_t>(4000, static_cast<ordinal_t>(100000 * opt.scale));
  std::vector<Input> inputs;
  inputs.push_back({"rgg_uniform", graph::random_geometric_3d(n, 12.0, 7)});
  inputs.push_back(
      {"power_law_skewed",
       graph::power_law_graph(n, 2.2, 4, std::max<ordinal_t>(64, n / 60), 42)});

  obs::JsonArrayWriter out(opt.out);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    return 1;
  }

  std::printf("# hierarchy_ablation: trials=%d scale=%.3f cap=%.1f\n", opt.trials, opt.scale,
              opt.cap);

  for (const Input& in : inputs) {
    const graph::CrsMatrix a = graph::laplacian_matrix(in.g, 1.0);
    // The value-perturbed matrix warm rebuilds replay (same structure).
    graph::CrsMatrix a2 = a;
    for (scalar_t& v : a2.values) v *= 1.01;

    for (const core::CoarsenerSpec& spec : core::coarsener_registry()) {
      multilevel::Options mo;
      mo.coarsener = spec.name;
      mo.min_coarse_size = 200;
      mo.complexity_cap = opt.cap;
      mo.rate_floor = 0.9;
      const multilevel::Builder builder(mo);

      multilevel::HierarchyHandle handle;
      Timer cold_timer;
      (void)builder.build_galerkin(a, handle);
      const double cold_s = cold_timer.seconds();

      const double warm_s = bench::time_mean_s(opt.trials, [&] {
        (void)builder.rebuild_galerkin(a2, handle);
      });

      obs::Report report;
      report.set("bench", "hierarchy_ablation");
      obs::add_graph(report, in.name, a.num_rows, a.num_entries());
      report.set("coarsener", spec.name);
      obs::add_hierarchy(report, handle.build_stats());
      // The adapter reports the builder's own timings; this bench's
      // numbers are externally timed means over --trials, so overwrite
      // the two time keys with the measured values (same key names).
      report.set("cold_build_seconds", cold_s);
      report.set("warm_rebuild_seconds", warm_s);
      report.set("scratch_bytes", static_cast<std::uint64_t>(handle.scratch_bytes()));
      report.set("scratch_grows", handle.stats().scratch_grows);
      const std::string json = report.to_json();
      std::printf("%s\n", json.c_str());
      out.row(json);
    }
  }
  if (!out.close()) {
    std::fprintf(stderr, "write error on %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", opt.out.c_str());
  return 0;
}
