/// \file hierarchy_ablation.cpp
/// \brief Multilevel-hierarchy ablation: cold-build vs warm-rebuild time
/// and per-level operator complexity for every registered coarsener on the
/// RGG and power-law generators, in Galerkin mode through the unified
/// `multilevel::Builder`.
///
/// The hierarchy-side companion of bench/solver_ablation: quantifies what
/// the coarsening scheme costs at setup time, what the operator-complexity
/// cap saves on skewed inputs (the AMG+HEM power-law blowup fix), and what
/// the reusable `SetupWorkspace` buys when a fixed-structure hierarchy is
/// rebuilt with new values (time-stepping): warm rebuilds replay the
/// Galerkin products value-only with zero heap allocations.
///
/// Emits one JSON object per (graph, coarsener) cell (stdout + `--out`,
/// default BENCH_hierarchy_ablation.json). The telemetry fields (levels,
/// operator/grid complexity) use the same schema `linear_solve --json`
/// reports, so the driver and the ablation agree.
///
/// Usage: bench_hierarchy_ablation [--scale=F] [--trials=N] [--cap=C]
///                                 [--out=PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/coarsener.hpp"
#include "graph/generators.hpp"
#include "graph/rgg.hpp"
#include "multilevel/builder.hpp"

namespace parmis {
namespace {

struct Options {
  double scale = 0.25;
  int trials = 3;
  double cap = 10.0;
  std::string out = "BENCH_hierarchy_ablation.json";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--scale=", 8)) {
      o.scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--trials=", 9)) {
      o.trials = std::atoi(s + 9);
    } else if (!std::strncmp(s, "--cap=", 6)) {
      o.cap = std::atof(s + 6);
    } else if (!std::strncmp(s, "--out=", 6)) {
      o.out = s + 6;
    } else if (!std::strcmp(s, "--full")) {
      o.scale = 1.0;
    } else {
      std::fprintf(stderr, "usage: %s [--scale=F] [--trials=N] [--cap=C] [--out=PATH]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  return o;
}

}  // namespace
}  // namespace parmis

int main(int argc, char** argv) {
  using namespace parmis;
  const Options opt = parse(argc, argv);

  struct Input {
    std::string name;
    graph::CrsGraph g;
  };
  const ordinal_t n = std::max<ordinal_t>(4000, static_cast<ordinal_t>(100000 * opt.scale));
  std::vector<Input> inputs;
  inputs.push_back({"rgg_uniform", graph::random_geometric_3d(n, 12.0, 7)});
  inputs.push_back(
      {"power_law_skewed",
       graph::power_law_graph(n, 2.2, 4, std::max<ordinal_t>(64, n / 60), 42)});

  std::FILE* out = std::fopen(opt.out.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  bool first_row = true;
  auto emit = [&](const std::string& json) {
    std::printf("%s\n", json.c_str());
    std::fprintf(out, "%s%s", first_row ? "" : ",\n", json.c_str());
    first_row = false;
  };

  std::printf("# hierarchy_ablation: trials=%d scale=%.3f cap=%.1f\n", opt.trials, opt.scale,
              opt.cap);

  for (const Input& in : inputs) {
    const graph::CrsMatrix a = graph::laplacian_matrix(in.g, 1.0);
    // The value-perturbed matrix warm rebuilds replay (same structure).
    graph::CrsMatrix a2 = a;
    for (scalar_t& v : a2.values) v *= 1.01;

    for (const core::CoarsenerSpec& spec : core::coarsener_registry()) {
      multilevel::Options mo;
      mo.coarsener = spec.name;
      mo.min_coarse_size = 200;
      mo.complexity_cap = opt.cap;
      mo.rate_floor = 0.9;
      const multilevel::Builder builder(mo);

      multilevel::HierarchyHandle handle;
      Timer cold_timer;
      (void)builder.build_galerkin(a, handle);
      const double cold_s = cold_timer.seconds();

      const double warm_s = bench::time_mean_s(opt.trials, [&] {
        (void)builder.rebuild_galerkin(a2, handle);
      });

      const multilevel::HierarchyStats& st = handle.build_stats();
      std::string level_rows = "[";
      std::string level_nnz = "[";
      for (std::size_t l = 0; l < st.level_rows.size(); ++l) {
        char num[32];
        std::snprintf(num, sizeof(num), "%s%d", l ? "," : "", st.level_rows[l]);
        level_rows += num;
        std::snprintf(num, sizeof(num), "%s%lld", l ? "," : "",
                      static_cast<long long>(st.level_entries[l]));
        level_nnz += num;
      }
      level_rows += "]";
      level_nnz += "]";

      // Assembled in a string: the per-level arrays are unbounded, so a
      // fixed snprintf buffer could silently truncate deep hierarchies.
      char head[512];
      std::snprintf(
          head, sizeof(head),
          "{\"bench\":\"hierarchy_ablation\",\"graph\":\"%s\",\"num_rows\":%d,"
          "\"num_entries\":%lld,\"coarsener\":\"%s\",\"levels\":%d,"
          "\"operator_complexity\":%.4f,\"grid_complexity\":%.4f,\"stop\":\"%s\",",
          in.name.c_str(), a.num_rows, static_cast<long long>(a.num_entries()),
          spec.name.c_str(), st.levels, st.operator_complexity, st.grid_complexity,
          multilevel::to_string(st.stop));
      char tail[256];
      std::snprintf(tail, sizeof(tail),
                    "\"cold_build_seconds\":%.6e,\"warm_rebuild_seconds\":%.6e,"
                    "\"aggregation_seconds\":%.6e,\"scratch_bytes\":%zu,"
                    "\"scratch_grows\":%llu}",
                    cold_s, warm_s, st.aggregation_seconds, handle.scratch_bytes(),
                    static_cast<unsigned long long>(handle.stats().scratch_grows));
      emit(std::string(head) + "\"level_rows\":" + level_rows +
           ",\"level_entries\":" + level_nnz + "," + tail);
    }
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::printf("# wrote %s\n", opt.out.c_str());
  return 0;
}
