/// \file table3_scaling.cpp
/// \brief Reproduces Table III: MIS-2 size and iteration count for varying
/// structured problem sizes (Galeri Elasticity3D and Laplace3D). These are
/// the paper's exact generators, so this table runs at paper scale
/// regardless of --scale.
///
/// Expected shape: |MIS-2| stays proportional to |V| within a problem type
/// (0.7% of |V| for Elasticity, ~9% for Laplace), and iterations grow by
/// 1-2 when the grid grows 4-8x.

#include <cstdio>

#include "bench_common.hpp"
#include "core/mis2.hpp"
#include "graph/generators.hpp"

namespace {

struct Row {
  const char* label;
  bool elasticity;
  parmis::ordinal_t nx, ny, nz;
  long long paper_mis;  // |MIS-2| in the paper
  int paper_iters;
};

constexpr Row kRows[] = {
    {"Elasticity 30x30x30", true, 30, 30, 30, 634, 8},
    {"Elasticity 60x30x30", true, 60, 30, 30, 1291, 10},
    {"Elasticity 60x60x30", true, 60, 60, 30, 2454, 10},
    {"Elasticity 60x60x60", true, 60, 60, 60, 4833, 10},
    {"Laplace 50x50x50", false, 50, 50, 50, 11469, 9},
    {"Laplace 100x50x50", false, 100, 50, 50, 22909, 9},
    {"Laplace 100x100x50", false, 100, 100, 50, 45333, 9},
    {"Laplace 100x100x100", false, 100, 100, 100, 90041, 10},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace parmis;
  (void)bench::Args::parse(argc, argv);

  std::printf("Table III: MIS-2 size and iterations on structured problems (paper scale)\n");
  std::printf("%-22s %10s | %10s %6s %8s | %10s %6s\n", "problem", "|V|", "|MIS-2|", "iters",
              "MIS/|V|", "paper-MIS", "p-it");
  bench::print_rule(95);

  for (const Row& row : kRows) {
    const graph::CrsMatrix m = row.elasticity ? graph::elasticity3d(row.nx, row.ny, row.nz)
                                              : graph::laplace3d(row.nx, row.ny, row.nz);
    const graph::CrsGraph g = graph::remove_self_loops(graph::GraphView(m));
    const core::Mis2Result r = core::mis2(g);
    std::printf("%-22s %10d | %10d %6d %7.2f%% | %10lld %6d\n", row.label, g.num_rows,
                r.set_size(), r.iterations, 100.0 * r.set_size() / g.num_rows, row.paper_mis,
                row.paper_iters);
  }
  return 0;
}
