/// \file table5_muelu.cpp
/// \brief Reproduces Table V: a smoothed-aggregation multigrid V-cycle
/// preconditioner for CG on Laplace3D, setup with each of the five
/// aggregation schemes. Reports CG iterations to 1e-12, aggregation time,
/// total setup time, solve time, and measured determinism.
///
/// Paper (100^3 Laplace3D on V100): Serial Agg 25 it / 0.673s agg;
/// Serial D2C 23 it; NB D2C 31.3 it; MIS2 Basic 49 it; MIS2 Agg 22 it with
/// 0.0352s agg — the shape to reproduce: MIS2 Agg has the fewest
/// iterations and near-fastest aggregation; MIS2 Basic aggregates fastest
/// but needs ~2x the iterations; Serial Agg's aggregation is orders of
/// magnitude slower.
///
/// Default --scale=0.25 gives a 63^3 grid; --full gives the paper's 100^3.

#include <cstdio>
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "parallel/execution.hpp"
#include "solver/amg.hpp"
#include "solver/cg.hpp"
#include "solver/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);
  const ordinal_t side =
      std::max<ordinal_t>(16, static_cast<ordinal_t>(std::lround(100.0 * std::cbrt(args.scale))));

  std::printf("Table V: MueLu-style SA-AMG on Laplace3D %d^3 (CG tol 1e-12, 2 Jacobi sweeps)\n",
              side);
  std::printf("%-12s %6s %10s %10s %10s %6s\n", "scheme", "iters", "agg(s)", "setup(s)",
              "solve(s)", "det");
  bench::print_rule(65);

  const solver::AggregationScheme schemes[] = {
      solver::AggregationScheme::SerialAgg, solver::AggregationScheme::SerialD2C,
      solver::AggregationScheme::NBD2C, solver::AggregationScheme::Mis2Basic,
      solver::AggregationScheme::Mis2Agg};

  for (solver::AggregationScheme scheme : schemes) {
    graph::CrsMatrix a = graph::laplace3d(side, side, side);

    solver::AmgOptions amg_opts;
    amg_opts.scheme = scheme;
    const solver::AmgHierarchy amg = solver::AmgHierarchy::build(std::move(a), amg_opts);

    const graph::CrsMatrix& a0 = amg.level(0).a;
    const std::vector<scalar_t> b = solver::random_vector(a0.num_rows, 11);
    std::vector<scalar_t> x(static_cast<std::size_t>(a0.num_rows), 0);
    solver::IterOptions cg_opts;
    cg_opts.tolerance = 1e-12;
    cg_opts.max_iterations = 500;
    solver::IterResult r;
    const double solve_s = bench::time_once_s(
        "table5.solve", [&] { r = solver::cg(a0, b, x, cg_opts, &amg); });

    // Measured determinism: identical aggregation labels across two thread
    // counts and a repeat run.
    const graph::CrsGraph adj =
        graph::remove_self_loops(graph::GraphView(graph::laplace3d(side, side, side)));
    bool deterministic = true;
    {
      core::Aggregation ref;
      {
        par::ScopedExecution scope(par::Backend::OpenMP, 1);
        ref = solver::run_aggregation(adj, scheme, amg_opts.mis2);
      }
      for (int threads : {0, 0}) {  // two full-parallel repeats
        par::ScopedExecution scope(par::Backend::OpenMP, threads);
        const core::Aggregation again = solver::run_aggregation(adj, scheme, amg_opts.mis2);
        deterministic = deterministic && again.labels == ref.labels;
      }
    }

    std::printf("%-12s %6d %10.4f %10.4f %10.4f %6s%s\n", solver::to_string(scheme),
                r.iterations, amg.aggregation_seconds(), amg.setup_seconds(), solve_s,
                deterministic ? "yes" : "no", r.converged ? "" : "  (NOT CONVERGED)");
  }
  std::printf("\n(paper, 100^3 on V100: SerialAgg 25it/0.673s agg; SerialD2C 23it; NB D2C\n"
              " 31.3it; MIS2 Basic 49it/0.0226s; MIS2 Agg 22it/0.0352s agg, det: Serial Agg,\n"
              " MIS2 Basic and MIS2 Agg only)\n");
  return 0;
}
