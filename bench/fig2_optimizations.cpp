/// \file fig2_optimizations.cpp
/// \brief Reproduces Fig. 2: cumulative speedup of the four §V
/// optimizations over the Bell et al. baseline, per matrix and as a
/// geometric mean.
///
/// Ladder (each stage keeps all previous optimizations):
///   Baseline      = Bell/Dalton/Olson general MIS-k (k=2): fixed
///                   priorities, all vertices each round, 3-field tuples
///   +RandPriority = same skeleton, per-round xorshift* priorities (§V-A)
///   +Worklists    = the worklist-driven Algorithm 1 skeleton (§V-B)
///   +Packed       = single-word compressed tuples (§V-C)
///   +SIMD         = vector-level inner loops, degree>=16 heuristic (§V-D)
///
/// Paper (V100): worklists 2.55x, random priority 1.28x, packed 1.72x,
/// SIMD 1.37x; all four combined 8.97x (geometric means). On CPUs the
/// paper itself expects SIMD to be neutral (§V-D).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bell_misk.hpp"
#include "core/mis2.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  // The cumulative ladder. Stage 1 keeps Bell's skeleton and only adds the
  // §V-A per-round priority refresh (matching the paper's ladder, where
  // 1.28x comes from the round-count drop alone). Stage 2 is the
  // worklist-driven Algorithm 1 skeleton; stages 3-4 toggle tuple packing
  // and SIMD on top.
  core::Mis2Options worklists;  // stage 2
  worklists.priority = core::PriorityScheme::XorshiftStar;
  worklists.use_worklists = true;
  worklists.packed_tuples = false;
  worklists.simd = false;

  core::Mis2Options packed = worklists;  // stage 3
  packed.packed_tuples = true;

  core::Mis2Options simd = packed;  // stage 4 (= Algorithm 1 defaults)
  simd.simd = true;

  std::printf("Fig. 2: cumulative speedups over the Bell baseline (scale=%.2f, %d trials)\n",
              args.scale, args.trials);
  std::printf("%-18s %10s | %9s %9s %9s %9s\n", "matrix", "base(ms)", "+RandPri", "+Worklist",
              "+Packed", "+SIMD");
  bench::print_rule(80);

  std::vector<double> sp1, sp2, sp3, sp4;
  for (const graph::MatrixSpec& spec : graph::table2_matrices()) {
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);

    const double base_s = bench::time_mean_s(args.trials, [&] { (void)core::bell_misk(g, 2); });
    const double s1 = bench::time_mean_s(
        args.trials, [&] { (void)core::bell_misk(g, 2, 0, /*per_round_priorities=*/true); });
    const double s2 = bench::time_mean_s(args.trials, [&] { (void)core::mis2(g, worklists); });
    const double s3 = bench::time_mean_s(args.trials, [&] { (void)core::mis2(g, packed); });
    const double s4 = bench::time_mean_s(args.trials, [&] { (void)core::mis2(g, simd); });

    sp1.push_back(base_s / s1);
    sp2.push_back(base_s / s2);
    sp3.push_back(base_s / s3);
    sp4.push_back(base_s / s4);
    std::printf("%-18s %10.2f | %8.2fx %8.2fx %8.2fx %8.2fx\n", spec.name.c_str(), 1e3 * base_s,
                base_s / s1, base_s / s2, base_s / s3, base_s / s4);
  }
  bench::print_rule(80);
  std::printf("%-18s %10s | %8.2fx %8.2fx %8.2fx %8.2fx   (geometric mean)\n", "GEOMEAN", "",
              bench::geomean(sp1), bench::geomean(sp2), bench::geomean(sp3), bench::geomean(sp4));
  std::printf("\n(paper, V100: +RandPri 1.28x, +Worklists cumulative ~3.3x, +Packed ~5.6x,\n"
              " all four 8.97x; SIMD is expected to be neutral on CPUs, §V-D)\n");
  return 0;
}
