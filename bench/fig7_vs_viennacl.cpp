/// \file fig7_vs_viennacl.cpp
/// \brief Reproduces Fig. 7: MIS-2 *plus basic coarsening* (Algorithm 2),
/// Algorithm 1 versus the ViennaCL approach, on the 17 matrices.
///
/// ViennaCL exposes coarsening (not MIS-2 alone) and implements the Bell
/// algorithm for the MIS-2 step and Algorithm-2-style growth for the
/// aggregation; the surrogate pairs our Bell reimplementation with the
/// same growth phase (DESIGN.md §4). Paper: 3-8x speedup on V100.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/aggregation.hpp"
#include "core/bell_misk.hpp"
#include "core/mis2.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf(
      "Fig. 7: MIS-2 + basic coarsening, Algorithm 1 vs ViennaCL-surrogate (scale=%.2f)\n",
      args.scale);
  std::printf("%-18s %12s %12s %10s\n", "matrix", "vcl(ms)", "kk(ms)", "speedup");
  bench::print_rule(60);

  std::vector<double> speedups;
  for (const graph::MatrixSpec& spec : graph::table2_matrices()) {
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);
    const double vcl_s = bench::time_mean_s(args.trials, [&] {
      const core::Mis2Result mis = core::bell_misk(g, 2);
      (void)core::aggregate_from_mis(g, mis);
    });
    const double kk_s = bench::time_mean_s(args.trials, [&] {
      const core::Mis2Result mis = core::mis2(g);
      (void)core::aggregate_from_mis(g, mis);
    });
    speedups.push_back(vcl_s / kk_s);
    std::printf("%-18s %12.2f %12.2f %9.2fx\n", spec.name.c_str(), 1e3 * vcl_s, 1e3 * kk_s,
                vcl_s / kk_s);
  }
  bench::print_rule(60);
  std::printf("%-18s %12s %12s %9.2fx   (geometric mean; paper: 3-8x)\n", "GEOMEAN", "", "",
              bench::geomean(speedups));
  return 0;
}
