/// \file ablation_partitioning.cpp
/// \brief Extension experiment (paper §VII future work / §II, Gilbert et
/// al.): every partitioner in the pluggable registry — multilevel with
/// MIS-2 aggregation vs heavy-edge matching, the streaming LDG and
/// label-propagation algorithms, and the block baseline — compared on edge
/// cut, communication volume, balance, and time over mesh-like inputs.
/// The closing geomean reproduces the original MIS-2-vs-HEM ablation.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "partition/interface.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  struct Case {
    const char* name;
    graph::CrsGraph g;
  };
  const double s = args.scale;
  std::vector<Case> cases;
  cases.push_back({"grid2d", graph::remove_self_loops(graph::GraphView(graph::laplace2d(
                                 static_cast<ordinal_t>(600 * std::sqrt(s)),
                                 static_cast<ordinal_t>(600 * std::sqrt(s)))))});
  cases.push_back({"grid3d", graph::remove_self_loops(graph::GraphView(graph::laplace3d(
                                 static_cast<ordinal_t>(70 * std::cbrt(s)),
                                 static_cast<ordinal_t>(70 * std::cbrt(s)),
                                 static_cast<ordinal_t>(70 * std::cbrt(s)))))});
  cases.push_back({"rgg3d", graph::random_geometric_3d(
                                static_cast<ordinal_t>(400000 * s), 14.0, 3)});
  cases.push_back({"rgg2d", graph::random_geometric_2d(
                                static_cast<ordinal_t>(400000 * s), 7.0, 4)});

  const ordinal_t k = 8;
  std::printf("Extension: k=%d partitioning across the full algorithm registry (scale=%.2f)\n",
              k, args.scale);
  std::printf("%-10s %10s %-16s | %12s %7s %10s %8s %7s | %8s\n", "graph", "|V|", "algorithm",
              "cut", "cut%", "commvol", "bdry%", "imbal%", "time");
  bench::print_rule(110);

  std::vector<double> mis2_cuts, hem_cuts;
  for (const Case& c : cases) {
    const partition::WeightedGraph wg = partition::WeightedGraph::unit(c.g);
    for (const partition::PartitionerSpec& spec : partition::partitioner_registry()) {
      const partition::PartitionResult r = spec.make()->run(wg, k);
      const partition::QualityReport& q = r.quality;
      std::printf("%-10s %10d %-16s | %12lld %6.2f%% %10lld %7.2f%% %6.2f%% | %7.2fs\n", c.name,
                  c.g.num_rows, spec.name.c_str(), static_cast<long long>(q.edge_cut),
                  100.0 * q.cut_fraction(), static_cast<long long>(q.comm_volume),
                  100.0 * q.boundary_fraction, 100.0 * q.imbalance, r.seconds);
      if (spec.name == "multilevel-mis2") mis2_cuts.push_back(static_cast<double>(q.edge_cut));
      if (spec.name == "multilevel-hem") hem_cuts.push_back(static_cast<double>(q.edge_cut));
    }
    bench::print_rule(110);
  }

  std::vector<double> ratios;
  for (std::size_t i = 0; i < mis2_cuts.size() && i < hem_cuts.size(); ++i) {
    ratios.push_back(hem_cuts[i] == 0 ? 1.0 : mis2_cuts[i] / hem_cuts[i]);
  }
  std::printf("geomean cut ratio (mis2/hem, <1 means MIS-2 coarsening wins): %.3f\n",
              bench::geomean(ratios));
  return 0;
}
