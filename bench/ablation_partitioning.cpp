/// \file ablation_partitioning.cpp
/// \brief Extension experiment (paper §VII future work / §II, Gilbert et
/// al.): MIS-2 aggregation vs heavy-edge matching as the coarsening inside
/// a multilevel k-way partitioner. Gilbert et al. found MIS-2 coarsening
/// outperforms HEM for regular graphs; this bench reports edge cut,
/// imbalance, and time for both schemes on mesh-like inputs.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "partition/partitioner.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  struct Case {
    const char* name;
    graph::CrsGraph g;
  };
  const double s = args.scale;
  std::vector<Case> cases;
  cases.push_back({"grid2d", graph::remove_self_loops(graph::GraphView(graph::laplace2d(
                                 static_cast<ordinal_t>(600 * std::sqrt(s)),
                                 static_cast<ordinal_t>(600 * std::sqrt(s)))))});
  cases.push_back({"grid3d", graph::remove_self_loops(graph::GraphView(graph::laplace3d(
                                 static_cast<ordinal_t>(70 * std::cbrt(s)),
                                 static_cast<ordinal_t>(70 * std::cbrt(s)),
                                 static_cast<ordinal_t>(70 * std::cbrt(s)))))});
  cases.push_back({"rgg3d", graph::random_geometric_3d(
                                static_cast<ordinal_t>(400000 * s), 14.0, 3)});
  cases.push_back({"rgg2d", graph::random_geometric_2d(
                                static_cast<ordinal_t>(400000 * s), 7.0, 4)});

  const ordinal_t k = 8;
  std::printf("Extension: multilevel k=%d partitioning, MIS-2 vs HEM coarsening "
              "(scale=%.2f)\n", k, args.scale);
  std::printf("%-10s %10s | %12s %9s %8s | %12s %9s %8s | %8s\n", "graph", "|V|", "mis2-cut",
              "imbal", "time", "hem-cut", "imbal", "time", "cutratio");
  bench::print_rule(110);

  std::vector<double> ratios;
  for (const Case& c : cases) {
    partition::PartitionOptions mis2_opts;
    mis2_opts.coarsening = partition::CoarseningScheme::Mis2Aggregation;
    partition::PartitionOptions hem_opts;
    hem_opts.coarsening = partition::CoarseningScheme::HeavyEdgeMatching;

    Timer tm;
    const partition::Partition pm = partition::partition_graph(c.g, k, mis2_opts);
    const double mis2_s = tm.seconds();
    Timer th;
    const partition::Partition ph = partition::partition_graph(c.g, k, hem_opts);
    const double hem_s = th.seconds();

    const double ratio = ph.edge_cut == 0
                             ? 1.0
                             : static_cast<double>(pm.edge_cut) / static_cast<double>(ph.edge_cut);
    ratios.push_back(ratio);
    std::printf("%-10s %10d | %12lld %8.2f%% %7.2fs | %12lld %8.2f%% %7.2fs | %8.3f\n", c.name,
                c.g.num_rows, static_cast<long long>(pm.edge_cut), 100 * pm.imbalance, mis2_s,
                static_cast<long long>(ph.edge_cut), 100 * ph.imbalance, hem_s, ratio);
  }
  bench::print_rule(110);
  std::printf("geomean cut ratio (mis2/hem, <1 means MIS-2 coarsening wins): %.3f\n",
              bench::geomean(ratios));
  return 0;
}
