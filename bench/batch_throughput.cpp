/// \file batch_throughput.cpp
/// \brief Batched multi-RHS throughput: `solve_batch` through the fused
/// block-Krylov cores (SpMM + K-wide reductions) versus the same K
/// right-hand sides solved one at a time.
///
/// The claim being priced: a K-wide batch reads the matrix once per
/// block iteration where the looped baseline reads it once per column
/// per iteration, so on bandwidth-bound operators the batch should clear
/// >= 2x solves/sec at K = 8. Every cell also cross-checks per-column
/// digests — block-CG is per-column CG run in lockstep, so column c of
/// the batch must equal the single-RHS solve of the same seed *bit for
/// bit* — and a final serving cell replays a request stream in batched
/// waves across a live async customize swap, whose combined digest must
/// match the serial unbatched replay. The bench exits nonzero on any
/// mismatch, so the JSON doubles as a correctness artifact.
///
/// Emits one JSON object per cell (stdout + `--out`, default
/// BENCH_batch_throughput.json) through `obs::Report`.
///
/// Usage: bench_batch_throughput [--scale=F] [--batch=K] [--trials=N]
///                               [--out=PATH] [--full]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "check/digest.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"
#include "serve/replay.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "solver/handle.hpp"
#include "solver/multivector.hpp"
#include "solver/vector_ops.hpp"

namespace parmis {
namespace {

struct Options {
  double scale = 0.25;
  int batch = 8;
  int trials = 5;
  std::string out = "BENCH_batch_throughput.json";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--scale=", 8)) {
      o.scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--batch=", 8)) {
      o.batch = std::atoi(s + 8);
    } else if (!std::strncmp(s, "--trials=", 9)) {
      o.trials = std::atoi(s + 9);
    } else if (!std::strncmp(s, "--out=", 6)) {
      o.out = s + 6;
    } else if (!std::strcmp(s, "--full")) {
      o.scale = 1.0;
    } else {
      std::fprintf(stderr, "usage: %s [--scale=F] [--batch=K] [--trials=N] [--out=PATH] [--full]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  if (o.batch < 1) o.batch = 1;
  if (o.trials < 1) o.trials = 1;
  return o;
}

struct KernelCell {
  std::string name;
  graph::CrsMatrix a;
};

/// One (graph, K) cell: K looped single-RHS solves vs one K-wide
/// solve_batch, both warm (timed runs reuse the handle's workspace).
/// Returns false on any per-column digest mismatch.
bool run_kernel_cell(const KernelCell& cell, const Options& opt, obs::JsonArrayWriter& out) {
  const graph::CrsMatrix& a = cell.a;
  const ordinal_t n = a.num_rows;
  const int k = opt.batch;
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t uk = static_cast<std::size_t>(k);
  solver::IterOptions iopts;
  iopts.tolerance = 1e-8;
  iopts.max_iterations = 2000;

  // --- looped baseline: K independent single-RHS solves through "cg" ----
  solver::SolveHandle looped;
  looped.set_solver("cg");
  looped.set_preconditioner("jacobi");
  std::vector<scalar_t> b(un);
  std::vector<scalar_t> x(un);
  std::vector<std::uint64_t> looped_digests(uk);
  std::int64_t looped_iters = 0;
  bool looped_converged = true;
  auto run_looped = [&] {
    looped_iters = 0;
    for (int c = 0; c < k; ++c) {
      solver::random_fill(b, static_cast<std::uint64_t>(1 + c));
      solver::fill(x, 0.0);
      const solver::IterResult& r = looped.solve(a, b, x, iopts);
      looped_converged = looped_converged && r.converged;
      looped_iters += r.iterations;
      looped_digests[static_cast<std::size_t>(c)] = check::digest(x);
    }
  };
  const double looped_s = bench::time_best_s(opt.trials, run_looped);

  // --- batched: one K-wide solve through the fused "block-cg" core ------
  solver::SolveHandle batched;
  batched.set_solver("block-cg");
  batched.set_preconditioner("jacobi");
  std::vector<scalar_t> bm(un * uk);
  std::vector<scalar_t> xm(un * uk);
  for (int c = 0; c < k; ++c) {
    solver::random_fill(b, static_cast<std::uint64_t>(1 + c));
    solver::scatter_column(b, n, k, c, bm);
  }
  std::int64_t batched_iters = 0;
  bool batched_converged = true;
  auto run_batched = [&] {
    solver::fill(xm, 0.0);
    const solver::BatchResult& br = batched.solve_batch(a, bm, xm, k, iopts);
    batched_converged = br.all_converged();
    batched_iters = 0;
    for (int c = 0; c < k; ++c) {
      batched_iters = std::max(
          batched_iters, static_cast<std::int64_t>(br.results[static_cast<std::size_t>(c)].iterations));
    }
  };
  const double batched_s = bench::time_best_s(opt.trials, run_batched);

  bool digests_match = true;
  for (int c = 0; c < k; ++c) {
    solver::gather_column(xm, n, k, c, std::span<scalar_t>(x));
    const std::uint64_t d = check::digest(x);
    if (d != looped_digests[static_cast<std::size_t>(c)]) {
      std::fprintf(stderr, "DIGEST MISMATCH: %s column %d batched %s != looped %s\n",
                   cell.name.c_str(), c, check::digest_hex(d).c_str(),
                   check::digest_hex(looped_digests[static_cast<std::size_t>(c)]).c_str());
      digests_match = false;
    }
  }

  const double looped_rate = looped_s > 0.0 ? static_cast<double>(k) / looped_s : 0.0;
  const double batched_rate = batched_s > 0.0 ? static_cast<double>(k) / batched_s : 0.0;
  const double speedup = looped_rate > 0.0 ? batched_rate / looped_rate : 0.0;

  obs::Report report;
  report.set("bench", "batch_throughput");
  obs::add_graph(report, cell.name, a.num_rows, a.num_entries());
  report.set("mode", "kernel");
  report.set("batch", k);
  report.set("trials", opt.trials);
  report.set("looped_solver", "cg");
  report.set("batched_solver", "block-cg");
  report.set("prec", "jacobi");
  report.set("looped_seconds", looped_s);
  report.set("batched_seconds", batched_s);
  report.set("looped_solves_per_sec", looped_rate);
  report.set("batched_solves_per_sec", batched_rate);
  report.set("speedup", speedup);
  report.set("looped_iterations", looped_iters);
  report.set("batched_block_iterations", batched_iters);
  report.set("converged", looped_converged && batched_converged);
  report.set("digests_match", digests_match);
  const std::string json = report.to_json();
  std::printf("%s\n", json.c_str());
  out.row(json);
  return digests_match;
}

/// Serving cell: one request stream replayed three ways — serial
/// unbatched (the reference digest), serial batched waves, and threaded
/// batched waves — all across a live customize swap, the batched runs
/// routing it through the async pipeline. All three combined digests
/// must be equal.
bool run_serve_cell(const Options& opt, obs::JsonArrayWriter& out) {
  const ordinal_t nx = std::max<ordinal_t>(12, static_cast<ordinal_t>(24 * opt.scale));
  const graph::CrsMatrix a = graph::laplace3d(nx, nx, nx);
  const std::string snap_path = "bench_batch_throughput.snap";
  serve::save_snapshot(snap_path, a, nullptr);
  const serve::SnapshotView snap = serve::SnapshotView::open(snap_path);

  const std::size_t requests = static_cast<std::size_t>(4 * opt.batch);
  const std::size_t customize_at = requests / 2;

  struct Cell {
    const char* name;
    int threads;
    int batch;
  };
  const std::vector<Cell> cells = {
      {"serve_serial", 1, 1},
      {"serve_batched", 1, opt.batch},
      {"serve_batched_threaded", 2, opt.batch},
  };

  bool ok = true;
  std::uint64_t expect = 0;
  for (const Cell& cell : cells) {
    serve::Service::Options sopts;
    sopts.pool.solver = cell.batch > 1 ? "block-cg" : "cg";
    sopts.pool.prec = "jacobi";
    sopts.pool.size = 4;
    serve::Service service = serve::Service::from_snapshot(sopts, snap);
    const std::vector<serve::ServeRequest> reqs =
        serve::make_requests(requests, 1, service.epoch(), customize_at);
    serve::ReplayOptions ropts;
    ropts.threads = cell.threads;
    ropts.customize_at = customize_at;
    ropts.batch = cell.batch;
    const serve::ReplayResult result = serve::replay(service, reqs, ropts);
    const serve::ReplayStats& st = result.stats;

    if (cell.batch == 1) {
      expect = st.combined_digest;
    } else if (st.combined_digest != expect) {
      std::fprintf(stderr, "DIGEST MISMATCH: %s %s != serial unbatched %s\n", cell.name,
                   check::digest_hex(st.combined_digest).c_str(),
                   check::digest_hex(expect).c_str());
      ok = false;
    }

    obs::Report report;
    report.set("bench", "batch_throughput");
    obs::add_graph(report, "laplace3d", a.num_rows, a.num_entries());
    report.set("mode", cell.name);
    report.set("threads", st.threads);
    report.set("batch", cell.batch);
    report.set("customize_at", static_cast<std::int64_t>(customize_at));
    report.set("converged", st.converged);
    report.set("requests", static_cast<std::int64_t>(st.requests));
    report.set("solves_per_sec", st.solves_per_sec);
    report.set("combined_digest", check::digest_hex(st.combined_digest));
    report.set("final_epoch", st.final_epoch);
    const std::string json = report.to_json();
    std::printf("%s\n", json.c_str());
    out.row(json);
  }
  std::remove(snap_path.c_str());
  return ok;
}

}  // namespace
}  // namespace parmis

int main(int argc, char** argv) {
  using namespace parmis;
  const Options opt = parse(argc, argv);

  obs::JsonArrayWriter out(opt.out);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    return 1;
  }

  const ordinal_t nx = std::max<ordinal_t>(16, static_cast<ordinal_t>(32 * opt.scale));
  const ordinal_t npl = std::max<ordinal_t>(4000, static_cast<ordinal_t>(20000 * opt.scale));
  std::printf("# batch_throughput: K=%d, laplace3d nx=%d, power_law n=%d, trials=%d\n", opt.batch,
              nx, npl, opt.trials);

  std::vector<KernelCell> cells;
  cells.push_back({"laplace3d", graph::laplace3d(nx, nx, nx)});
  {
    const graph::CrsGraph g =
        graph::power_law_graph(npl, 2.2, 4, std::max<ordinal_t>(64, npl / 60), 42);
    cells.push_back({"power_law", graph::laplacian_matrix(g, 1.0)});
  }

  bool ok = true;
  for (const KernelCell& cell : cells) ok = run_kernel_cell(cell, opt, out) && ok;
  ok = run_serve_cell(opt, out) && ok;

  if (!out.close()) {
    std::fprintf(stderr, "write error on %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", opt.out.c_str());
  return ok ? 0 : 1;
}
