/// \file table1_priorities.cpp
/// \brief Reproduces Table I: MIS-2 iteration counts for the three random
/// priority methods (Fixed = Bell et al., Xor Hash, Xor* Hash) on the
/// 17-matrix suite. Paper values are printed alongside for comparison.
///
/// Expected shape (paper §V-A): Xor* needs the fewest iterations; Fixed
/// sits in the middle; plain Xor is erratic — on the high-degree matrices
/// it degrades badly (see EXPERIMENTS.md for where our hash composition
/// diverges from the paper's exact bit behavior).

#include <cstdio>

#include "bench_common.hpp"
#include "core/mis2.hpp"

namespace {

struct PaperRow {
  const char* name;
  int fixed, xorhash, xorstar;
};

// Table I of the paper (iteration counts on the real matrices).
constexpr PaperRow kPaper[] = {
    {"af_shell7", 11, 23, 8},    {"ecology2", 12, 11, 8},      {"Hook_1498", 14, 26, 11},
    {"PFlow_742", 14, 39, 12},   {"thermal2", 12, 17, 9},      {"apache2", 13, 21, 10},
    {"Elasticity3D_60", 13, 23, 10}, {"Fault_639", 13, 26, 10}, {"Laplace3D_100", 14, 20, 10},
    {"Serena", 14, 22, 11},      {"tmt_sym", 12, 18, 8},       {"audikw_1", 14, 22, 10},
    {"Emilia_923", 13, 20, 11},  {"Geo_1438", 14, 26, 11},     {"ldoor", 11, 16, 8},
    {"parabolic_fem", 11, 9, 9}, {"StocF-1465", 14, 28, 10},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Table I: MIS-2 iteration counts for three priority methods (scale=%.2f)\n",
              args.scale);
  std::printf("%-18s | %8s %8s %8s | %8s %8s %8s\n", "", "-- this", "reprod", "uction--",
              "--paper", "(Table", "I)--");
  std::printf("%-18s | %8s %8s %8s | %8s %8s %8s\n", "matrix", "Fixed", "Xor", "Xor*", "Fixed",
              "Xor", "Xor*");
  bench::print_rule();

  for (const PaperRow& row : kPaper) {
    const graph::MatrixSpec& spec = graph::find_matrix(row.name);
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);

    auto iters = [&](core::PriorityScheme scheme) {
      core::Mis2Options opts;
      opts.priority = scheme;
      return core::mis2(g, opts).iterations;
    };
    std::printf("%-18s | %8d %8d %8d | %8d %8d %8d\n", row.name,
                iters(core::PriorityScheme::Fixed), iters(core::PriorityScheme::Xorshift),
                iters(core::PriorityScheme::XorshiftStar), row.fixed, row.xorhash, row.xorstar);
  }
  return 0;
}
