/// \file micro_kernels.cpp
/// \brief google-benchmark microbenchmarks for the primitives the paper's
/// cost analysis (§IV) charges: prefix sums, worklist compaction, the hash
/// generators, tuple packing, SpMV/SpGEMM, small end-to-end MIS-2, and the
/// warm-vs-cold handle-reuse comparison (the zero-allocation contract).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/aggregation.hpp"
#include "core/coarsen.hpp"
#include "core/mis2.hpp"
#include "core/status_tuple.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "graph/spgemm.hpp"
#include "graph/spmv.hpp"
#include "parallel/parallel_scan.hpp"
#include "random/hash.hpp"

namespace {

using namespace parmis;

void BM_exclusive_scan(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n), 1);
  for (auto _ : state) {
    std::vector<std::int64_t> copy = data;
    benchmark::DoNotOptimize(par::exclusive_scan_inplace(std::span<std::int64_t>(copy)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_exclusive_scan)->Arg(1 << 14)->Arg(1 << 20);

void BM_compact(benchmark::State& state) {
  const ordinal_t n = static_cast<ordinal_t>(state.range(0));
  std::vector<ordinal_t> out;
  for (auto _ : state) {
    par::compact_into(
        n, [](ordinal_t i) { return (i & 3) == 0; }, [](ordinal_t i) { return i; }, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_compact)->Arg(1 << 20);

void BM_hash_xorshift_star(benchmark::State& state) {
  std::uint64_t acc = 0, i = 0;
  for (auto _ : state) {
    acc ^= rng::hash_xorshift_star(7, i++);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_hash_xorshift_star);

void BM_tuple_pack(benchmark::State& state) {
  const core::TupleCodec<> codec(1000000);
  std::uint64_t i = 0;
  std::uint32_t acc = 0;
  for (auto _ : state) {
    acc ^= codec.pack(rng::xorshift64star(i), static_cast<ordinal_t>(i % 1000000));
    ++i;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_tuple_pack);

void BM_spmv_laplace3d(benchmark::State& state) {
  const ordinal_t side = static_cast<ordinal_t>(state.range(0));
  const graph::CrsMatrix a = graph::laplace3d(side, side, side);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 1.0);
  std::vector<scalar_t> y(x.size());
  for (auto _ : state) {
    graph::spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.num_entries());
}
BENCHMARK(BM_spmv_laplace3d)->Arg(32)->Arg(64);

void BM_spgemm_square(benchmark::State& state) {
  const ordinal_t side = static_cast<ordinal_t>(state.range(0));
  const graph::CrsMatrix a = graph::laplace2d(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::spgemm(a, a));
  }
}
BENCHMARK(BM_spgemm_square)->Arg(64)->Arg(128);

void BM_mis2_rgg(benchmark::State& state) {
  const ordinal_t n = static_cast<ordinal_t>(state.range(0));
  const graph::CrsGraph g = graph::random_geometric_3d(n, 16.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mis2(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_mis2_rgg)->Arg(1 << 14)->Arg(1 << 17);

void BM_mis2_laplace3d(benchmark::State& state) {
  const ordinal_t side = static_cast<ordinal_t>(state.range(0));
  const graph::CrsGraph g =
      graph::remove_self_loops(graph::GraphView(graph::laplace3d(side, side, side)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mis2(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_mis2_laplace3d)->Arg(32)->Arg(64);

// --- Warm vs cold handle reuse ------------------------------------------
//
// The Context/handle API exists so repeated invocations (a multilevel
// hierarchy, AMG setup, a high-traffic service) stop paying the scratch
// allocation + first-touch cost on every call. These pairs quantify the
// saving: "cold" constructs a fresh handle per run (the old free-function
// behavior), "warm" reuses one handle whose scratch capacity is stable.

void BM_mis2_handle_cold(benchmark::State& state) {
  const ordinal_t n = static_cast<ordinal_t>(state.range(0));
  const graph::CrsGraph g = graph::random_geometric_3d(n, 16.0, 5);
  for (auto _ : state) {
    core::Mis2Handle handle;
    benchmark::DoNotOptimize(handle.run(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_mis2_handle_cold)->Arg(1 << 14)->Arg(1 << 17);

void BM_mis2_handle_warm(benchmark::State& state) {
  const ordinal_t n = static_cast<ordinal_t>(state.range(0));
  const graph::CrsGraph g = graph::random_geometric_3d(n, 16.0, 5);
  core::Mis2Handle handle;
  handle.run(g);  // prime the scratch
  for (auto _ : state) {
    benchmark::DoNotOptimize(handle.run(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_mis2_handle_warm)->Arg(1 << 14)->Arg(1 << 17);

void BM_aggregate_handle_cold(benchmark::State& state) {
  const ordinal_t n = static_cast<ordinal_t>(state.range(0));
  const graph::CrsGraph g = graph::random_geometric_3d(n, 16.0, 5);
  for (auto _ : state) {
    core::CoarsenHandle handle;
    benchmark::DoNotOptimize(handle.aggregate_mis2(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_aggregate_handle_cold)->Arg(1 << 14)->Arg(1 << 17);

void BM_aggregate_handle_warm(benchmark::State& state) {
  const ordinal_t n = static_cast<ordinal_t>(state.range(0));
  const graph::CrsGraph g = graph::random_geometric_3d(n, 16.0, 5);
  core::CoarsenHandle handle;
  handle.aggregate_mis2(g);  // prime the scratch
  for (auto _ : state) {
    benchmark::DoNotOptimize(handle.aggregate_mis2(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_aggregate_handle_warm)->Arg(1 << 14)->Arg(1 << 17);

// Full multilevel hierarchies with one handle across all levels vs a fresh
// handle per build — the hierarchy case the redesign targets.
void BM_multilevel_handle_cold(benchmark::State& state) {
  const graph::CrsGraph g = graph::random_geometric_3d(1 << 15, 16.0, 5);
  core::MultilevelOptions opts;
  opts.target_vertices = 64;
  for (auto _ : state) {
    core::CoarsenHandle handle;
    benchmark::DoNotOptimize(core::multilevel_coarsen(g, opts, handle));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_multilevel_handle_cold);

void BM_multilevel_handle_warm(benchmark::State& state) {
  const graph::CrsGraph g = graph::random_geometric_3d(1 << 15, 16.0, 5);
  core::MultilevelOptions opts;
  opts.target_vertices = 64;
  core::CoarsenHandle handle;
  benchmark::DoNotOptimize(core::multilevel_coarsen(g, opts, handle));  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::multilevel_coarsen(g, opts, handle));
  }
  state.SetItemsProcessed(state.iterations() * g.num_entries());
}
BENCHMARK(BM_multilevel_handle_warm);

}  // namespace
